// City survey: the end-to-end workflow a city planner would run. Generates
// a city, trains CMSF on the known labels, scores EVERY region (not just
// the labeled ones), prints an ASCII detection map and a ranked
// renovation-priority list, and saves the trained model for reuse.
//
//   ./build/examples/city_survey [scale] [out_model.bin]

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/cmsf_detector.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  const std::string model_path = argc > 2 ? argv[2] : "/tmp/cmsf_survey.bin";

  auto city = uv::synth::GenerateCity(uv::synth::FuzhouLike(scale, 99));
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  // Train on every available label (deployment setting: no held-out fold).
  std::vector<int> train_ids = urg.LabeledIds();
  std::vector<int> train_labels(train_ids.size());
  for (size_t i = 0; i < train_ids.size(); ++i) {
    train_labels[i] = urg.labels[train_ids[i]];
  }
  uv::core::CmsfConfig config;
  config.num_clusters = 40;
  config.master_epochs = 80;
  uv::core::CmsfDetector detector(config);
  detector.Train(urg, train_ids, train_labels);

  // Score every region in the city.
  std::vector<int> all_ids(urg.num_regions());
  std::iota(all_ids.begin(), all_ids.end(), 0);
  auto scores = detector.Score(urg, all_ids);

  // ASCII detection map: top 3% of ALL regions are flagged.
  const int top_k = std::max(1, urg.num_regions() * 3 / 100);
  std::vector<int> order = all_ids;
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<char> cell(urg.num_regions(), '.');
  for (int i = 0; i < urg.num_regions(); ++i) {
    if (urg.is_uv[i]) cell[i] = 'G';
  }
  for (int i = 0; i < top_k; ++i) {
    const int id = order[i];
    cell[id] = urg.is_uv[id] ? '#' : '?';
  }
  std::printf("\nDetection map (G missed UV, # detected UV, ? flagged "
              "non-UV):\n");
  for (int r = 0; r < std::min(urg.grid.height, 48); ++r) {
    for (int c = 0; c < std::min(urg.grid.width, 96); ++c) {
      std::putchar(cell[urg.grid.RegionId(r, c)]);
    }
    std::putchar('\n');
  }

  // Renovation priority list: the strongest *previously unknown* candidates.
  std::printf("\nTop 10 previously-unlabeled UV candidates:\n");
  std::printf("%-6s %-10s %-8s %s\n", "rank", "region", "score", "truth");
  int rank = 0;
  for (int id : order) {
    if (urg.labels[id] != -1) continue;  // Skip already-known regions.
    ++rank;
    std::printf("%-6d (%3d,%3d)  %.3f    %s\n", rank, urg.grid.RowOf(id),
                urg.grid.ColOf(id), scores[id],
                urg.is_uv[id] ? "true UV" : "not a UV");
    if (rank == 10) break;
  }

  // Detection quality against the full ground truth.
  int hits = 0, truth = 0;
  for (int i = 0; i < top_k; ++i) hits += (urg.is_uv[order[i]] != 0);
  for (uint8_t u : urg.is_uv) truth += (u != 0);
  std::printf("\nflagged %d regions; %d are true UVs (%.0f%% precision); "
              "city has %d true UV cells\n",
              top_k, hits, 100.0 * hits / top_k, truth);

  const auto status = detector.SaveModel(urg, model_path);
  std::printf("model checkpoint: %s (%s)\n", model_path.c_str(),
              status.ok() ? "saved" : status.ToString().c_str());
  return 0;
}
