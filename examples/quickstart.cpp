// Quickstart: generate a small synthetic city, build its Urban Region Graph,
// train the CMSF detector, and print detection metrics on a held-out fold.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [scale]

#include <cstdio>
#include <cstdlib>

#include "core/cmsf_detector.h"
#include "eval/metrics.h"
#include "eval/splits.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

  // 1. Generate a Shenzhen-like synthetic city (substitutes the paper's
  //    proprietary Baidu Maps data; see DESIGN.md).
  uv::synth::CityConfig config = uv::synth::ShenzhenLike(scale, /*seed=*/42);
  uv::synth::City city = uv::synth::GenerateCity(config);

  // 2. Build the Urban Region Graph: spatial + road edges, POI + image
  //    features (paper Section IV).
  uv::urg::UrgOptions urg_options;
  uv::urg::UrbanRegionGraph urg = uv::urg::BuildUrg(city, urg_options);

  // 3. Split the labeled regions with the paper's coarse 10x10-block rule.
  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), /*k=*/3,
                           /*block_size=*/10, &rng);
  const auto& fold = folds[0];
  std::vector<int> train_labels(fold.train_ids.size());
  for (size_t i = 0; i < fold.train_ids.size(); ++i) {
    train_labels[i] = urg.labels[fold.train_ids[i]];
  }

  // 4. Train CMSF: master stage (Algorithm 1) + slave stage (Algorithm 2).
  //    The fold span + scope make UV_TRACE / UV_METRICS output match the
  //    cross-validation runner's shape (set the env vars to capture them).
  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = 80;
  cmsf.slave_epochs = 20;
  uv::core::CmsfDetector detector(cmsf);
  std::vector<float> scores;
  {
    uv::obs::SpanGuard fold_span("fold", uv::obs::SpanLevel::kCoarse, "run",
                                 0, "fold", 0);
    uv::obs::FoldScope fold_scope(/*run=*/0, /*fold=*/0);
    detector.Train(urg, fold.train_ids, train_labels);

    // 5. Score the held-out regions and report the paper's metrics.
    scores = detector.Score(urg, fold.test_ids);
  }
  std::vector<int> test_labels(fold.test_ids.size());
  for (size_t i = 0; i < fold.test_ids.size(); ++i) {
    test_labels[i] = urg.labels[fold.test_ids[i]];
  }
  const auto metrics = uv::eval::ComputeDetectionMetrics(scores, test_labels);

  std::printf("\nCMSF quickstart on %s-like city (%d regions, %zu labeled)\n",
              config.name.c_str(), urg.num_regions(),
              urg.LabeledIds().size());
  std::printf("  AUC          : %.3f\n", metrics.auc);
  std::printf("  Recall@3%%    : %.3f\n", metrics.at3.recall);
  std::printf("  Precision@3%% : %.3f\n", metrics.at3.precision);
  std::printf("  F1@3%%        : %.3f\n", metrics.at3.f1);
  std::printf("  Recall@5%%    : %.3f\n", metrics.at5.recall);
  std::printf("  Precision@5%% : %.3f\n", metrics.at5.precision);
  std::printf("  F1@5%%        : %.3f\n", metrics.at5.f1);
  std::printf("  parameters   : %lld\n",
              static_cast<long long>(detector.NumParameters()));
  return 0;
}
