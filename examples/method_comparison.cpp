// Method comparison: cross-validated evaluation of CMSF against three
// representative baselines (MLP, GAT, UVLens) on one synthetic city, using
// the paper's protocol (block-level 3-fold CV, AUC + top-p% metrics).
//
//   ./build/examples/method_comparison [scale] [epochs] [--json stats.json]
//                                      [--checkpoint model.uvck]
//                                      [--drift-report]
//
// --json dumps the cross-validation stats as a perf ledger through the
// same obs::Report writer the bench binaries use; the stdout table is
// unchanged whether or not the flag is given.
//
// --checkpoint exercises the UVCK save/load round trip after the table:
// a CMSF detector is trained on one block fold, saved to the given path,
// reloaded into a fresh detector, and both are scored on the held-out
// fold. The reloaded model must reproduce every score bit-for-bit (and
// therefore every metric); the binary exits non-zero if it does not.
//
// --drift-report replaces the comparison table with a self-checking
// model-quality demo: train a CMSF detector on one fold, save the v2
// checkpoint (which embeds the training-time quality baseline), reload
// it, and serve two cities through a ScoringServer with a QualityMonitor
// attached — the training city unchanged, then a copy whose POI features
// have been deterministically shifted. Prints a PSI/ECE summary table and
// exits non-zero unless the unshifted run reports PSI exactly 0 with no
// alert AND the shifted run trips the drift alert, so CI can run this
// flag directly as its drift leg.

#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/cmsf_detector.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/splits.h"
#include "infer/server.h"
#include "obs/quality.h"
#include "obs/report.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/table.h"

namespace {

// Train on fold 0, save, reload into a fresh detector, and require the
// reloaded model's held-out scores to match the trained model's exactly.
// Returns false (after printing the mismatch) if anything differs.
bool RunCheckpointRoundTrip(const uv::urg::UrbanRegionGraph& urg,
                            int epochs, const std::string& path) {
  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  const auto& fold = folds[0];
  std::vector<int> train_labels(fold.train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[fold.train_ids[i]];
  }
  std::vector<int> eval_labels(fold.test_ids.size());
  for (size_t i = 0; i < eval_labels.size(); ++i) {
    eval_labels[i] = urg.labels[fold.test_ids[i]];
  }

  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = epochs;
  uv::core::CmsfDetector trained(cmsf);
  trained.Train(urg, fold.train_ids, train_labels);
  const std::vector<float> scores = trained.Score(urg, fold.test_ids);

  if (auto status = trained.SaveModel(urg, path); !status.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 status.message().c_str());
    return false;
  }
  // A fresh detector with a default config: LoadModel validates the
  // checkpoint against this URG and adopts the saved config.
  uv::core::CmsfDetector reloaded(uv::core::CmsfConfig{});
  if (auto status = reloaded.LoadModel(urg, path); !status.ok()) {
    std::fprintf(stderr, "checkpoint load failed: %s\n",
                 status.message().c_str());
    return false;
  }
  const std::vector<float> reloaded_scores = reloaded.Score(urg, fold.test_ids);

  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != reloaded_scores[i]) {
      std::fprintf(stderr,
                   "checkpoint round trip NOT bit-identical at eval row %zu "
                   "(%g vs %g)\n",
                   i, scores[i], reloaded_scores[i]);
      return false;
    }
  }
  const double auc = uv::eval::Auc(scores, eval_labels);
  const double reloaded_auc = uv::eval::Auc(reloaded_scores, eval_labels);
  std::printf(
      "checkpoint %s: round trip bit-identical over %zu held-out regions "
      "(AUC %.4f == %.4f)\n",
      path.c_str(), scores.size(), auc, reloaded_auc);
  return true;
}

// One serving leg of the drift report: score every region of `serve_urg`
// through a ScoringServer with a fresh QualityMonitor seeded from the
// checkpoint baseline, feed the labeled regions back as delayed ground
// truth, and return the resulting drift + calibration reports.
void ServeWithMonitor(const uv::core::CmsfDetector& detector,
                      const uv::obs::QualityBaseline& baseline,
                      const uv::urg::UrbanRegionGraph& serve_urg,
                      uv::obs::DriftReport* drift,
                      uv::obs::CalibrationReport* calib) {
  auto engine = uv::baselines::MakeEngine(detector, serve_urg);
  uv::obs::QualityMonitor monitor(baseline);
  engine->SetQualityMonitor(&monitor);
  uv::infer::ScoringServer server(engine.get());

  std::vector<int> all_ids(serve_urg.num_regions());
  std::iota(all_ids.begin(), all_ids.end(), 0);
  const std::vector<float> served = server.Score(all_ids);

  std::vector<float> fb_scores;
  std::vector<int> fb_labels;
  for (int id : serve_urg.LabeledIds()) {
    fb_scores.push_back(served[id]);
    fb_labels.push_back(serve_urg.labels[id]);
  }
  server.Feedback(fb_scores.data(), fb_labels.data(),
                  static_cast<int>(fb_labels.size()));
  monitor.Publish();
  *drift = monitor.ComputeDrift();
  *calib = monitor.ComputeCalibration();
  engine->SetQualityMonitor(nullptr);
}

// Self-checking drift demo (--drift-report): see the header comment.
bool RunDriftReport(const uv::urg::UrbanRegionGraph& urg, int epochs) {
  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  const auto& fold = folds[0];
  std::vector<int> train_labels(fold.train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[fold.train_ids[i]];
  }

  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = epochs;
  uv::core::CmsfDetector trained(cmsf);
  trained.Train(urg, fold.train_ids, train_labels);

  // Round-trip through the v2 checkpoint so the baseline the monitors use
  // is the one that actually rides inside the file.
  const std::string path = "/tmp/method_comparison_drift.uvck";
  if (auto status = trained.SaveModel(urg, path); !status.ok()) {
    std::fprintf(stderr, "drift report: save failed: %s\n",
                 status.message().c_str());
    return false;
  }
  uv::core::CmsfDetector reloaded(uv::core::CmsfConfig{});
  if (auto status = reloaded.LoadModel(urg, path); !status.ok()) {
    std::fprintf(stderr, "drift report: load failed: %s\n",
                 status.message().c_str());
    return false;
  }
  const uv::obs::QualityBaseline& baseline = reloaded.baseline(urg);

  // Leg 1: the training city unchanged. The monitor sees exactly the
  // distribution the baseline sketched, so PSI must be exactly zero.
  uv::obs::DriftReport clean_drift;
  uv::obs::CalibrationReport clean_calib;
  ServeWithMonitor(reloaded, baseline, urg, &clean_drift, &clean_calib);

  // Leg 2: the same city with every POI feature deterministically shifted
  // and rescaled — upstream drift that propagates through the encoder into
  // the region representations the monitor sketches.
  uv::urg::UrbanRegionGraph shifted = urg;
  float* poi = shifted.poi_features.data();
  const int64_t poi_n = static_cast<int64_t>(shifted.poi_features.rows()) *
                        shifted.poi_features.cols();
  for (int64_t i = 0; i < poi_n; ++i) poi[i] = poi[i] * 1.6f + 0.8f;

  uv::obs::DriftReport shifted_drift;
  uv::obs::CalibrationReport shifted_calib;
  ServeWithMonitor(reloaded, baseline, shifted, &shifted_drift,
                   &shifted_calib);

  uv::TextTable table({"Serve run", "Feat PSI max", "Score PSI", "Score KL",
                       "ECE", "Prec@0.5", "Rec@0.5", "Alert"});
  auto add_row = [&](const char* name, const uv::obs::DriftReport& d,
                     const uv::obs::CalibrationReport& c) {
    char buf[7][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.6f", d.feature_psi_max);
    std::snprintf(buf[1], sizeof(buf[1]), "%.6f", d.score_psi);
    std::snprintf(buf[2], sizeof(buf[2]), "%.6f", d.score_kl);
    std::snprintf(buf[3], sizeof(buf[3]), "%.6f", c.ece);
    std::snprintf(buf[4], sizeof(buf[4]), "%.4f", c.precision);
    std::snprintf(buf[5], sizeof(buf[5]), "%.4f", c.recall);
    std::snprintf(buf[6], sizeof(buf[6]), "%s", d.alert ? "YES" : "no");
    table.AddRow({name, buf[0], buf[1], buf[2], buf[3], buf[4], buf[5],
                  buf[6]});
  };
  add_row("training city", clean_drift, clean_calib);
  add_row("shifted city", shifted_drift, shifted_calib);
  std::printf("\n");
  table.Print();
  std::printf("baseline ECE (training-time, from checkpoint): %.6f\n",
              clean_calib.baseline_ece);

  bool ok = true;
  if (clean_drift.feature_psi_max != 0.0 || clean_drift.score_psi != 0.0) {
    std::fprintf(stderr,
                 "FAIL: unshifted serve should report PSI exactly 0 "
                 "(got feature %.9f, score %.9f)\n",
                 clean_drift.feature_psi_max, clean_drift.score_psi);
    ok = false;
  }
  if (clean_drift.alert) {
    std::fprintf(stderr, "FAIL: unshifted serve raised the drift alert\n");
    ok = false;
  }
  if (!shifted_drift.alert) {
    std::fprintf(stderr,
                 "FAIL: shifted serve did not trip the drift alert "
                 "(feature PSI max %.6f, score PSI %.6f, threshold %.2f)\n",
                 shifted_drift.feature_psi_max, shifted_drift.score_psi,
                 uv::obs::QualityOptions::FromEnv().psi_alert);
    ok = false;
  }
  if (ok) {
    std::printf(
        "drift report: unshifted PSI exactly 0, shifted city tripped the "
        "alert (feature PSI max %.4f)\n",
        shifted_drift.feature_psi_max);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string checkpoint_path;
  bool drift_report = false;
  double positional[2] = {0.015, 80.0};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      checkpoint_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--drift-report") == 0) {
      drift_report = true;
    } else if (npos < 2) {
      positional[npos++] = std::atof(argv[i]);
    }
  }
  const double scale = positional[0];
  const int epochs = static_cast<int>(positional[1]);

  auto city = uv::synth::GenerateCity(uv::synth::ShenzhenLike(scale, 7));
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  if (drift_report) {
    return RunDriftReport(urg, epochs) ? 0 : 1;
  }

  uv::eval::RunnerOptions runner;
  runner.num_folds = 3;

  uv::obs::Report report("method_comparison");
  report.SetConfig("scale", scale);
  report.SetConfig("epochs", static_cast<int64_t>(epochs));

  uv::TextTable table({"Method", "AUC", "R@3", "P@3", "F1@3"});
  for (const std::string method : {"MLP", "GAT", "UVLens", "CMSF"}) {
    auto stats = uv::eval::RunCrossValidation(
        urg,
        [&](uint64_t seed) {
          uv::baselines::TrainOptions options;
          options.epochs = epochs;
          options.seed = seed;
          uv::core::CmsfConfig cmsf;
          cmsf.num_clusters = 30;
          cmsf.master_epochs = epochs;
          return uv::baselines::MakeDetector(method, options, cmsf);
        },
        runner);
    uv::eval::AppendRunStats(&report, method, stats);
    table.AddRow({method, uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                  uv::FormatMeanStd(stats.recall3.mean, stats.recall3.std),
                  uv::FormatMeanStd(stats.precision3.mean, stats.precision3.std),
                  uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
    std::fprintf(stderr, "%s done\n", method.c_str());
  }
  std::printf("\n");
  table.Print();
  if (!json_path.empty() && report.WriteFile(json_path)) {
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!checkpoint_path.empty() &&
      !RunCheckpointRoundTrip(urg, epochs, checkpoint_path)) {
    return 1;
  }
  return 0;
}
