// Method comparison: cross-validated evaluation of CMSF against three
// representative baselines (MLP, GAT, UVLens) on one synthetic city, using
// the paper's protocol (block-level 3-fold CV, AUC + top-p% metrics).
//
//   ./build/examples/method_comparison [scale] [epochs] [--json stats.json]
//                                      [--checkpoint model.uvck]
//
// --json dumps the cross-validation stats as a perf ledger through the
// same obs::Report writer the bench binaries use; the stdout table is
// unchanged whether or not the flag is given.
//
// --checkpoint exercises the UVCK save/load round trip after the table:
// a CMSF detector is trained on one block fold, saved to the given path,
// reloaded into a fresh detector, and both are scored on the held-out
// fold. The reloaded model must reproduce every score bit-for-bit (and
// therefore every metric); the binary exits non-zero if it does not.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "core/cmsf_detector.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "eval/splits.h"
#include "obs/report.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/table.h"

namespace {

// Train on fold 0, save, reload into a fresh detector, and require the
// reloaded model's held-out scores to match the trained model's exactly.
// Returns false (after printing the mismatch) if anything differs.
bool RunCheckpointRoundTrip(const uv::urg::UrbanRegionGraph& urg,
                            int epochs, const std::string& path) {
  uv::Rng rng(7);
  const auto folds =
      uv::eval::BlockKFold(urg.grid, urg.LabeledIds(), 3, 10, &rng);
  const auto& fold = folds[0];
  std::vector<int> train_labels(fold.train_ids.size());
  for (size_t i = 0; i < train_labels.size(); ++i) {
    train_labels[i] = urg.labels[fold.train_ids[i]];
  }
  std::vector<int> eval_labels(fold.test_ids.size());
  for (size_t i = 0; i < eval_labels.size(); ++i) {
    eval_labels[i] = urg.labels[fold.test_ids[i]];
  }

  uv::core::CmsfConfig cmsf;
  cmsf.num_clusters = 30;
  cmsf.master_epochs = epochs;
  uv::core::CmsfDetector trained(cmsf);
  trained.Train(urg, fold.train_ids, train_labels);
  const std::vector<float> scores = trained.Score(urg, fold.test_ids);

  if (auto status = trained.SaveModel(path); !status.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 status.message().c_str());
    return false;
  }
  // A fresh detector with a default config: LoadModel validates the
  // checkpoint against this URG and adopts the saved config.
  uv::core::CmsfDetector reloaded(uv::core::CmsfConfig{});
  if (auto status = reloaded.LoadModel(urg, path); !status.ok()) {
    std::fprintf(stderr, "checkpoint load failed: %s\n",
                 status.message().c_str());
    return false;
  }
  const std::vector<float> reloaded_scores = reloaded.Score(urg, fold.test_ids);

  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != reloaded_scores[i]) {
      std::fprintf(stderr,
                   "checkpoint round trip NOT bit-identical at eval row %zu "
                   "(%g vs %g)\n",
                   i, scores[i], reloaded_scores[i]);
      return false;
    }
  }
  const double auc = uv::eval::Auc(scores, eval_labels);
  const double reloaded_auc = uv::eval::Auc(reloaded_scores, eval_labels);
  std::printf(
      "checkpoint %s: round trip bit-identical over %zu held-out regions "
      "(AUC %.4f == %.4f)\n",
      path.c_str(), scores.size(), auc, reloaded_auc);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string checkpoint_path;
  double positional[2] = {0.015, 80.0};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      checkpoint_path = argv[i] + 13;
    } else if (npos < 2) {
      positional[npos++] = std::atof(argv[i]);
    }
  }
  const double scale = positional[0];
  const int epochs = static_cast<int>(positional[1]);

  auto city = uv::synth::GenerateCity(uv::synth::ShenzhenLike(scale, 7));
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  uv::eval::RunnerOptions runner;
  runner.num_folds = 3;

  uv::obs::Report report("method_comparison");
  report.SetConfig("scale", scale);
  report.SetConfig("epochs", static_cast<int64_t>(epochs));

  uv::TextTable table({"Method", "AUC", "R@3", "P@3", "F1@3"});
  for (const std::string method : {"MLP", "GAT", "UVLens", "CMSF"}) {
    auto stats = uv::eval::RunCrossValidation(
        urg,
        [&](uint64_t seed) {
          uv::baselines::TrainOptions options;
          options.epochs = epochs;
          options.seed = seed;
          uv::core::CmsfConfig cmsf;
          cmsf.num_clusters = 30;
          cmsf.master_epochs = epochs;
          return uv::baselines::MakeDetector(method, options, cmsf);
        },
        runner);
    uv::eval::AppendRunStats(&report, method, stats);
    table.AddRow({method, uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                  uv::FormatMeanStd(stats.recall3.mean, stats.recall3.std),
                  uv::FormatMeanStd(stats.precision3.mean, stats.precision3.std),
                  uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
    std::fprintf(stderr, "%s done\n", method.c_str());
  }
  std::printf("\n");
  table.Print();
  if (!json_path.empty() && report.WriteFile(json_path)) {
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!checkpoint_path.empty() &&
      !RunCheckpointRoundTrip(urg, epochs, checkpoint_path)) {
    return 1;
  }
  return 0;
}
