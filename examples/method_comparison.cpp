// Method comparison: cross-validated evaluation of CMSF against three
// representative baselines (MLP, GAT, UVLens) on one synthetic city, using
// the paper's protocol (block-level 3-fold CV, AUC + top-p% metrics).
//
//   ./build/examples/method_comparison [scale] [epochs] [--json stats.json]
//
// --json dumps the cross-validation stats as a perf ledger through the
// same obs::Report writer the bench binaries use; the stdout table is
// unchanged whether or not the flag is given.

#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/registry.h"
#include "eval/runner.h"
#include "obs/report.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/table.h"

int main(int argc, char** argv) {
  std::string json_path;
  double positional[2] = {0.015, 80.0};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (npos < 2) {
      positional[npos++] = std::atof(argv[i]);
    }
  }
  const double scale = positional[0];
  const int epochs = static_cast<int>(positional[1]);

  auto city = uv::synth::GenerateCity(uv::synth::ShenzhenLike(scale, 7));
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  uv::eval::RunnerOptions runner;
  runner.num_folds = 3;

  uv::obs::Report report("method_comparison");
  report.SetConfig("scale", scale);
  report.SetConfig("epochs", static_cast<int64_t>(epochs));

  uv::TextTable table({"Method", "AUC", "R@3", "P@3", "F1@3"});
  for (const std::string method : {"MLP", "GAT", "UVLens", "CMSF"}) {
    auto stats = uv::eval::RunCrossValidation(
        urg,
        [&](uint64_t seed) {
          uv::baselines::TrainOptions options;
          options.epochs = epochs;
          options.seed = seed;
          uv::core::CmsfConfig cmsf;
          cmsf.num_clusters = 30;
          cmsf.master_epochs = epochs;
          return uv::baselines::MakeDetector(method, options, cmsf);
        },
        runner);
    uv::eval::AppendRunStats(&report, method, stats);
    table.AddRow({method, uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                  uv::FormatMeanStd(stats.recall3.mean, stats.recall3.std),
                  uv::FormatMeanStd(stats.precision3.mean, stats.precision3.std),
                  uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
    std::fprintf(stderr, "%s done\n", method.c_str());
  }
  std::printf("\n");
  table.Print();
  if (!json_path.empty() && report.WriteFile(json_path)) {
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
