// Method comparison: cross-validated evaluation of CMSF against three
// representative baselines (MLP, GAT, UVLens) on one synthetic city, using
// the paper's protocol (block-level 3-fold CV, AUC + top-p% metrics).
//
//   ./build/examples/method_comparison [scale] [epochs]

#include <cstdio>

#include "baselines/registry.h"
#include "eval/runner.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.015;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 80;

  auto city = uv::synth::GenerateCity(uv::synth::ShenzhenLike(scale, 7));
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  uv::eval::RunnerOptions runner;
  runner.num_folds = 3;

  uv::TextTable table({"Method", "AUC", "R@3", "P@3", "F1@3"});
  for (const std::string method : {"MLP", "GAT", "UVLens", "CMSF"}) {
    auto stats = uv::eval::RunCrossValidation(
        urg,
        [&](uint64_t seed) {
          uv::baselines::TrainOptions options;
          options.epochs = epochs;
          options.seed = seed;
          uv::core::CmsfConfig cmsf;
          cmsf.num_clusters = 30;
          cmsf.master_epochs = epochs;
          return uv::baselines::MakeDetector(method, options, cmsf);
        },
        runner);
    table.AddRow({method, uv::FormatMeanStd(stats.auc.mean, stats.auc.std),
                  uv::FormatMeanStd(stats.recall3.mean, stats.recall3.std),
                  uv::FormatMeanStd(stats.precision3.mean, stats.precision3.std),
                  uv::FormatMeanStd(stats.f13.mean, stats.f13.std)});
    std::fprintf(stderr, "%s done\n", method.c_str());
  }
  std::printf("\n");
  table.Print();
  return 0;
}
