// What-if policy analysis: a downstream scenario built on the public API.
// A planner renovates the top-ranked detected urban villages (their regions
// become formal residential areas), the city data is regenerated to reflect
// the renovation, and CMSF is retrained to find the *next* renovation
// candidates. Demonstrates dataset surgery + model reuse.
//
//   ./build/examples/whatif_policy [scale]

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "core/cmsf_detector.h"
#include "synth/city.h"
#include "urg/urban_region_graph.h"

namespace {

// Trains CMSF on all labels of `urg` and returns scores for all regions.
std::vector<float> TrainAndScoreAll(const uv::urg::UrbanRegionGraph& urg) {
  std::vector<int> ids = urg.LabeledIds();
  std::vector<int> labels(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) labels[i] = urg.labels[ids[i]];
  uv::core::CmsfConfig config;
  config.num_clusters = 30;
  config.master_epochs = 70;
  uv::core::CmsfDetector detector(config);
  detector.Train(urg, ids, labels);
  std::vector<int> all(urg.num_regions());
  std::iota(all.begin(), all.end(), 0);
  return detector.Score(urg, all);
}

int CountTrueUvInTop(const uv::urg::UrbanRegionGraph& urg,
                     const std::vector<float>& scores, int top_k) {
  std::vector<int> order(urg.num_regions());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                    [&](int a, int b) { return scores[a] > scores[b]; });
  int hits = 0;
  for (int i = 0; i < top_k; ++i) hits += (urg.is_uv[order[i]] != 0);
  return hits;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1  ? std::atof(argv[1]) : 0.012;
  auto config = uv::synth::ShenzhenLike(scale, 21);
  auto city = uv::synth::GenerateCity(config);
  uv::urg::UrgOptions urg_options;
  auto urg = uv::urg::BuildUrg(city, urg_options);

  // Round 1: detect.
  auto scores = TrainAndScoreAll(urg);
  const int top_k = std::max(1, urg.num_regions() * 2 / 100);
  std::printf("round 1: %d of the top-%d flagged regions are true UVs\n",
              CountTrueUvInTop(urg, scores, top_k), top_k);

  // Policy: renovate the top-ranked TRUE urban villages (verified on the
  // ground before demolition, as the paper's workflow suggests).
  std::vector<int> order(urg.num_regions());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  int renovated = 0;
  for (int id : order) {
    if (renovated >= top_k / 2) break;
    if (!city.is_uv[id]) continue;
    // The village becomes formal residential housing.
    city.archetypes[id] = uv::synth::Archetype::kFormalResidential;
    city.is_uv[id] = 0;
    city.uv_overlap[id] = 0.0f;
    if (city.labels[id] == 1) city.labels[id] = 0;
    ++renovated;
  }
  std::printf("renovated %d urban-village regions\n", renovated);

  // Round 2: rebuild the URG on the post-renovation city and retrain.
  auto urg2 = uv::urg::BuildUrg(city, urg_options);
  auto scores2 = TrainAndScoreAll(urg2);
  int remaining_truth = 0;
  for (uint8_t u : urg2.is_uv) remaining_truth += (u != 0);
  std::printf(
      "round 2: %d of the top-%d flagged regions are true UVs "
      "(%d UV cells remain city-wide)\n",
      CountTrueUvInTop(urg2, scores2, top_k), top_k, remaining_truth);
  std::printf("the detector keeps finding the remaining villages after the "
              "first renovation wave.\n");
  return 0;
}
