#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/cmsf_detector.h"
#include "core/cmsf_model.h"
#include "eval/metrics.h"
#include "eval/splits.h"
#include "io/serialize.h"
#include "test_helpers.h"

namespace uv::core {
namespace {

// Shared fixture data: one tiny URG + one CV fold, built once.
class CmsfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    fold_ = new eval::Fold(folds[0]);
    train_labels_ = new std::vector<int>();
    for (int id : fold_->train_ids) train_labels_->push_back(urg_->labels[id]);
    test_labels_ = new std::vector<int>();
    for (int id : fold_->test_ids) test_labels_->push_back(urg_->labels[id]);
  }

  static CmsfConfig FastConfig() {
    CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 30;
    config.slave_epochs = 8;
    config.learning_rate = 5e-3;
    return config;
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Fold* fold_;
  static std::vector<int>* train_labels_;
  static std::vector<int>* test_labels_;
};

urg::UrbanRegionGraph* CmsfTest::urg_ = nullptr;
eval::Fold* CmsfTest::fold_ = nullptr;
std::vector<int>* CmsfTest::train_labels_ = nullptr;
std::vector<int>* CmsfTest::test_labels_ = nullptr;

TEST_F(CmsfTest, MakeLabelTensorAndWeights) {
  Tensor labels = MakeLabelTensor({1, 0, 1, 0, 0, 0});
  EXPECT_FLOAT_EQ(labels.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(labels.at(1, 0), 0.0f);
  // Auto pos weight = neg/pos = 4/2.
  Tensor w = MakeBceWeights({1, 0, 1, 0, 0, 0}, 0.0);
  EXPECT_FLOAT_EQ(w.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(w.at(1, 0), 1.0f);
  // Explicit weight.
  Tensor w2 = MakeBceWeights({1, 0}, 7.0);
  EXPECT_FLOAT_EQ(w2.at(0, 0), 7.0f);
}

TEST_F(CmsfTest, ModelShapesAcrossVariants) {
  Rng rng(5);
  for (bool use_maga : {true, false}) {
    for (bool use_hierarchy : {true, false}) {
      CmsfConfig config = FastConfig();
      config.use_maga = use_maga;
      config.use_hierarchy = use_hierarchy;
      config.use_gate = use_hierarchy;
      CmsfModel model(config, urg_->poi_features.cols(),
                      urg_->image_features.cols(), &rng);
      auto inputs = CmsfInputs::FromUrg(*urg_);
      auto fwd = model.Forward(inputs, nullptr);
      EXPECT_EQ(fwd.master_logits->rows(), urg_->num_regions());
      EXPECT_EQ(fwd.master_logits->cols(), 1);
      EXPECT_FALSE(fwd.master_logits->value.HasNonFinite());
      if (use_hierarchy) {
        EXPECT_EQ(fwd.assignment->cols(), config.num_clusters);
        EXPECT_EQ(fwd.cluster_repr->rows(), config.num_clusters);
      } else {
        EXPECT_EQ(fwd.assignment, nullptr);
      }
    }
  }
}

TEST_F(CmsfTest, MasterTrainingReducesLoss) {
  Rng rng(6);
  CmsfConfig config = FastConfig();
  config.master_epochs = 3;
  CmsfModel model(config, urg_->poi_features.cols(),
                  urg_->image_features.cols(), &rng);
  auto inputs = CmsfInputs::FromUrg(*urg_);
  auto early =
      TrainMaster(&model, inputs, fold_->train_ids, *train_labels_);

  Rng rng2(6);
  CmsfConfig config2 = FastConfig();
  CmsfModel model2(config2, urg_->poi_features.cols(),
                   urg_->image_features.cols(), &rng2);
  auto late =
      TrainMaster(&model2, inputs, fold_->train_ids, *train_labels_);
  EXPECT_LT(late.final_loss, early.final_loss);
}

TEST_F(CmsfTest, FrozenAssignmentFromMasterTraining) {
  Rng rng(7);
  CmsfConfig config = FastConfig();
  config.master_epochs = 5;
  CmsfModel model(config, urg_->poi_features.cols(),
                  urg_->image_features.cols(), &rng);
  auto inputs = CmsfInputs::FromUrg(*urg_);
  auto result = TrainMaster(&model, inputs, fold_->train_ids, *train_labels_);
  EXPECT_EQ(result.frozen.soft.rows(), urg_->num_regions());
  EXPECT_EQ(result.frozen.soft.cols(), config.num_clusters);
  EXPECT_EQ(result.frozen.hard.size(),
            static_cast<size_t>(urg_->num_regions()));
  EXPECT_EQ(result.frozen.pseudo_labels.size(),
            static_cast<size_t>(config.num_clusters));
  // At least one cluster must contain a known UV.
  int positive_clusters = 0;
  for (int p : result.frozen.pseudo_labels) positive_clusters += p;
  EXPECT_GT(positive_clusters, 0);
}

TEST_F(CmsfTest, SlaveStageRunsAndKeepsLossFinite) {
  Rng rng(8);
  CmsfConfig config = FastConfig();
  config.master_epochs = 10;
  CmsfModel model(config, urg_->poi_features.cols(),
                  urg_->image_features.cols(), &rng);
  auto inputs = CmsfInputs::FromUrg(*urg_);
  auto master = TrainMaster(&model, inputs, fold_->train_ids, *train_labels_);
  auto slave = TrainSlave(&model, inputs, master.frozen, fold_->train_ids,
                          *train_labels_);
  EXPECT_GT(slave.seconds_per_epoch, 0.0);
  EXPECT_TRUE(std::isfinite(slave.final_loss));
}

TEST_F(CmsfTest, PredictReturnsProbabilities) {
  CmsfConfig config = FastConfig();
  CmsfDetector detector(config);
  detector.Train(*urg_, fold_->train_ids, *train_labels_);
  auto scores = detector.Score(*urg_, fold_->test_ids);
  ASSERT_EQ(scores.size(), fold_->test_ids.size());
  for (float s : scores) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 1.0f);
  }
}

TEST_F(CmsfTest, LearnsBetterThanChance) {
  CmsfConfig config = FastConfig();
  config.master_epochs = 60;
  CmsfDetector detector(config);
  detector.Train(*urg_, fold_->train_ids, *train_labels_);
  auto scores = detector.Score(*urg_, fold_->test_ids);
  const double auc = eval::Auc(scores, *test_labels_);
  EXPECT_GT(auc, 0.7) << "CMSF should be well above chance on the tiny city";
}

TEST_F(CmsfTest, DeterministicGivenSeed) {
  CmsfConfig config = FastConfig();
  config.master_epochs = 10;
  config.slave_epochs = 3;
  CmsfDetector a(config), b(config);
  a.Train(*urg_, fold_->train_ids, *train_labels_);
  b.Train(*urg_, fold_->train_ids, *train_labels_);
  auto sa = a.Score(*urg_, fold_->test_ids);
  auto sb = b.Score(*urg_, fold_->test_ids);
  for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
}

TEST_F(CmsfTest, VariantsTrainAndScore) {
  for (const char* name : {"CMSF-M", "CMSF-G", "CMSF-H"}) {
    CmsfConfig config = FastConfig();
    config.master_epochs = 8;
    config.slave_epochs = 3;
    if (std::string(name) == "CMSF-M") config.use_maga = false;
    if (std::string(name) == "CMSF-G") config.use_gate = false;
    if (std::string(name) == "CMSF-H") {
      config.use_hierarchy = false;
      config.use_gate = false;
    }
    CmsfDetector detector(config, name);
    detector.Train(*urg_, fold_->train_ids, *train_labels_);
    auto scores = detector.Score(*urg_, fold_->test_ids);
    EXPECT_EQ(scores.size(), fold_->test_ids.size()) << name;
    EXPECT_GT(detector.NumParameters(), 0) << name;
  }
}

TEST_F(CmsfTest, GateAddsParameters) {
  Rng rng(9);
  CmsfConfig with_gate = FastConfig();
  CmsfConfig no_gate = FastConfig();
  no_gate.use_gate = false;
  CmsfModel a(with_gate, urg_->poi_features.cols(),
              urg_->image_features.cols(), &rng);
  Rng rng2(9);
  CmsfModel b(no_gate, urg_->poi_features.cols(),
              urg_->image_features.cols(), &rng2);
  int64_t pa = 0, pb = 0;
  for (const auto& p : a.AllParams()) pa += p->value.size();
  for (const auto& p : b.AllParams()) pb += p->value.size();
  EXPECT_GT(pa, pb);
}

TEST_F(CmsfTest, SaveLoadRoundTripPreservesPredictions) {
  CmsfConfig config = FastConfig();
  config.master_epochs = 10;
  config.slave_epochs = 3;
  CmsfDetector trained(config);
  trained.Train(*urg_, fold_->train_ids, *train_labels_);
  auto expected = trained.Score(*urg_, fold_->test_ids);

  const std::string path = ::testing::TempDir() + "/cmsf_checkpoint.bin";
  ASSERT_TRUE(trained.SaveModel(*urg_, path).ok());

  // Fresh detector with a different seed: loading the checkpoint must
  // reproduce the trained predictions exactly (parameters AND the frozen
  // stage-one assignment round-trip).
  CmsfConfig config2 = config;
  config2.seed = 999;
  CmsfDetector loaded(config2);
  ASSERT_TRUE(loaded.LoadModel(*urg_, path).ok());
  auto got = loaded.Score(*urg_, fold_->test_ids);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-6f) << i;
  }
}

TEST_F(CmsfTest, SaveBeforeTrainFails) {
  CmsfDetector detector(FastConfig());
  EXPECT_FALSE(
      detector.SaveModel(urg::UrbanRegionGraph(), "/tmp/never.bin").ok());
}

}  // namespace
}  // namespace uv::core
