#include <gtest/gtest.h>

#include "features/poi_features.h"
#include "tensor/tensor_ops.h"
#include "synth/city.h"
#include "test_helpers.h"
#include "urg/urban_region_graph.h"

namespace uv::urg {
namespace {

synth::City MakeTestCity() {
  return synth::GenerateCity(uv::testing::TinyCityConfig());
}

UrgOptions SmallOptions() {
  UrgOptions options;
  options.image_feature_dim = 32;
  return options;
}

TEST(UrgTest, BasicShapes) {
  synth::City city = MakeTestCity();
  UrbanRegionGraph urg = BuildUrg(city, SmallOptions());
  EXPECT_EQ(urg.num_regions(), city.num_regions());
  EXPECT_EQ(urg.poi_features.rows(), city.num_regions());
  EXPECT_EQ(urg.poi_features.cols(), features::kPoiFeatureDim);
  EXPECT_EQ(urg.image_features.rows(), city.num_regions());
  EXPECT_EQ(urg.image_features.cols(), 32);
  EXPECT_EQ(urg.labels, city.labels);
  EXPECT_FALSE(urg.poi_features.HasNonFinite());
  EXPECT_FALSE(urg.image_features.HasNonFinite());
}

TEST(UrgTest, SelfLoopsPresent) {
  synth::City city = MakeTestCity();
  UrbanRegionGraph urg = BuildUrg(city, SmallOptions());
  for (int i = 0; i < urg.num_regions(); i += 37) {
    EXPECT_TRUE(urg.adjacency.HasEdge(i, i));
  }
}

TEST(UrgTest, EdgeCountsAdditive) {
  synth::City city = MakeTestCity();
  UrgOptions both = SmallOptions();
  UrgOptions spatial_only = SmallOptions();
  spatial_only.use_road_edges = false;
  UrgOptions road_only = SmallOptions();
  road_only.use_spatial_edges = false;

  UrbanRegionGraph urg_both = BuildUrg(city, both);
  UrbanRegionGraph urg_s = BuildUrg(city, spatial_only);
  UrbanRegionGraph urg_r = BuildUrg(city, road_only);

  EXPECT_GT(urg_s.num_spatial_edges, 0);
  EXPECT_EQ(urg_s.num_road_edges, 0);
  EXPECT_GT(urg_r.num_road_edges, 0);
  EXPECT_EQ(urg_r.num_spatial_edges, 0);
  // Union is at most the sum (relations can overlap) and at least the max.
  EXPECT_LE(urg_both.num_edges,
            urg_s.num_spatial_edges + urg_r.num_road_edges);
  EXPECT_GE(urg_both.num_edges,
            std::max(urg_s.num_spatial_edges, urg_r.num_road_edges));
}

TEST(UrgTest, AdjacencyIsSymmetric) {
  synth::City city = MakeTestCity();
  UrbanRegionGraph urg = BuildUrg(city, SmallOptions());
  for (int a = 0; a < urg.num_regions(); a += 11) {
    for (int b : urg.adjacency.InNeighbors(a)) {
      EXPECT_TRUE(urg.adjacency.HasEdge(a, b)) << a << " <-> " << b;
    }
  }
}

TEST(UrgTest, RoadHopsWidenReach) {
  synth::City city = MakeTestCity();
  UrgOptions hops1 = SmallOptions();
  hops1.road_max_hops = 1;
  UrgOptions hops5 = SmallOptions();
  hops5.road_max_hops = 5;
  EXPECT_LT(BuildUrg(city, hops1).num_road_edges,
            BuildUrg(city, hops5).num_road_edges);
}

TEST(UrgTest, StandardizationCentersColumns) {
  synth::City city = MakeTestCity();
  UrbanRegionGraph urg = BuildUrg(city, SmallOptions());
  Tensor mean = ColumnMean(urg.poi_features);
  for (int c = 0; c < mean.cols(); ++c) {
    EXPECT_NEAR(mean.at(0, c), 0.0f, 1e-3f);
  }
}

TEST(UrgTest, LabeledIdsSortedAndMatchLabels) {
  synth::City city = MakeTestCity();
  UrbanRegionGraph urg = BuildUrg(city, SmallOptions());
  auto ids = urg.LabeledIds();
  EXPECT_FALSE(ids.empty());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (int id : ids) EXPECT_GE(urg.labels[id], 0);
  size_t labeled_count = 0;
  for (int l : urg.labels) labeled_count += (l >= 0);
  EXPECT_EQ(ids.size(), labeled_count);
}

// ------------------------- Feature ablations -------------------------------

TEST(UrgAblationTest, NoCateZeroesCategoryColumns) {
  synth::City city = MakeTestCity();
  UrgOptions options = SmallOptions();
  options.feature_ablation = FeatureAblation::kNoCate;
  options.standardize_features = false;
  UrbanRegionGraph urg = BuildUrg(city, options);
  for (int r = 0; r < urg.poi_features.rows(); r += 13) {
    for (int c = 0; c < 48; ++c) EXPECT_FLOAT_EQ(urg.poi_features.at(r, c), 0.0f);
  }
  // Radius columns survive.
  double radius_norm = 0.0;
  for (int r = 0; r < urg.poi_features.rows(); ++r) {
    for (int c = 48; c < 63; ++c) radius_norm += urg.poi_features.at(r, c);
  }
  EXPECT_GT(radius_norm, 0.0);
}

TEST(UrgAblationTest, NoRadZeroesRadiusColumns) {
  synth::City city = MakeTestCity();
  UrgOptions options = SmallOptions();
  options.feature_ablation = FeatureAblation::kNoRad;
  options.standardize_features = false;
  UrbanRegionGraph urg = BuildUrg(city, options);
  for (int r = 0; r < urg.poi_features.rows(); r += 13) {
    for (int c = 48; c < 63; ++c) {
      EXPECT_FLOAT_EQ(urg.poi_features.at(r, c), 0.0f);
    }
  }
}

TEST(UrgAblationTest, NoIndexZeroesIndexColumn) {
  synth::City city = MakeTestCity();
  UrgOptions options = SmallOptions();
  options.feature_ablation = FeatureAblation::kNoIndex;
  options.standardize_features = false;
  UrbanRegionGraph urg = BuildUrg(city, options);
  for (int r = 0; r < urg.poi_features.rows(); ++r) {
    EXPECT_FLOAT_EQ(urg.poi_features.at(r, 63), 0.0f);
  }
}

TEST(UrgAblationTest, NoImageShrinksImageBlock) {
  synth::City city = MakeTestCity();
  UrgOptions options = SmallOptions();
  options.feature_ablation = FeatureAblation::kNoImage;
  UrbanRegionGraph urg = BuildUrg(city, options);
  // Zero placeholder block: every entry zero.
  EXPECT_DOUBLE_EQ(urg.image_features.Norm(), 0.0);
}

// ------------------------ Main urban area rule ------------------------------

TEST(MainUrbanAreaTest, FullFractionKeepsEverything) {
  synth::City city = MakeTestCity();
  auto bounds = MainUrbanAreaBounds(city, 1.0);
  EXPECT_EQ(bounds[0], 0);
  EXPECT_EQ(bounds[1], 0);
  EXPECT_EQ(bounds[2], city.grid.height - 1);
  EXPECT_EQ(bounds[3], city.grid.width - 1);
}

TEST(MainUrbanAreaTest, NinetyPercentCropsSparseRim) {
  synth::City city = MakeTestCity();
  auto bounds = MainUrbanAreaBounds(city, 0.9);
  // Bounds stay valid and ordered.
  EXPECT_LE(bounds[0], bounds[2]);
  EXPECT_LE(bounds[1], bounds[3]);
  EXPECT_GE(bounds[0], 0);
  EXPECT_LT(bounds[2], city.grid.height);
  // Count POIs inside the frame: must be >= 90%.
  int64_t inside = 0;
  for (const auto& poi : city.pois) {
    const int id = city.grid.RegionAt(poi.x, poi.y);
    const int r = city.grid.RowOf(id), c = city.grid.ColOf(id);
    if (r >= bounds[0] && r <= bounds[2] && c >= bounds[1] && c <= bounds[3]) {
      ++inside;
    }
  }
  EXPECT_GE(static_cast<double>(inside) / city.pois.size(), 0.9);
}

TEST(MainUrbanAreaTest, SmallFractionShrinksFrame) {
  synth::City city = MakeTestCity();
  auto b90 = MainUrbanAreaBounds(city, 0.9);
  auto b50 = MainUrbanAreaBounds(city, 0.5);
  const int area90 = (b90[2] - b90[0] + 1) * (b90[3] - b90[1] + 1);
  const int area50 = (b50[2] - b50[0] + 1) * (b50[3] - b50[1] + 1);
  EXPECT_LE(area50, area90);
}

}  // namespace
}  // namespace uv::urg
