#include <gtest/gtest.h>

#include <cmath>

#include "autograd/grad_check.h"
#include "nn/gat.h"
#include "nn/gcn.h"
#include "nn/graph_context.h"
#include "nn/gscm.h"
#include "nn/linear.h"
#include "nn/maga.h"
#include "nn/ms_gate.h"
#include "tensor/tensor_ops.h"

namespace uv::nn {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

// A fixed 4-node graph: 0-1, 1-2, 2-3 (sym) + self loops.
GraphContext PathGraph() {
  auto g = graph::CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}},
                                      /*symmetrize=*/true,
                                      /*add_self_loops=*/true);
  return GraphContext::FromCsr(g);
}

TEST(GraphContextTest, IndicesConsistent) {
  GraphContext ctx = PathGraph();
  EXPECT_EQ(ctx.num_nodes, 4);
  ASSERT_EQ(ctx.offsets->size(), 5u);
  EXPECT_EQ(ctx.src_ids->size(), ctx.dst_ids->size());
  // dst ids are segment-consistent.
  for (int i = 0; i < 4; ++i) {
    for (int e = (*ctx.offsets)[i]; e < (*ctx.offsets)[i + 1]; ++e) {
      EXPECT_EQ((*ctx.dst_ids)[e], i);
    }
  }
}

TEST(GraphContextTest, GcnNormSymmetric) {
  GraphContext ctx = PathGraph();
  // Edge weight for (i, j) must be 1/sqrt(deg_i deg_j) and symmetric.
  const auto& off = *ctx.offsets;
  const auto& src = *ctx.src_ids;
  auto weight_of = [&](int s, int d) -> float {
    for (int e = off[d]; e < off[d + 1]; ++e) {
      if (src[e] == s) return ctx.gcn_norm->value.at(e, 0);
    }
    return -1.0f;
  };
  EXPECT_FLOAT_EQ(weight_of(0, 1), weight_of(1, 0));
  EXPECT_GT(weight_of(0, 0), 0.0f);
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin(3, 2, &rng);
  auto x = ag::MakeConst(RandomTensor(5, 3, 2));
  auto y = lin.Forward(x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 2);
  EXPECT_EQ(lin.Params().size(), 2u);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear lin(3, 2, &rng);
  auto x = ag::MakeConst(RandomTensor(4, 3, 3));
  auto result = ag::CheckGradients(lin.Params(), [&]() {
    auto y = lin.Forward(x);
    return ag::SumAll(ag::Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MlpTest, TwoLayerShape) {
  Rng rng(3);
  Mlp mlp(6, 4, 1, &rng);
  auto x = ag::MakeConst(RandomTensor(7, 6, 4));
  auto y = mlp.Forward(x);
  EXPECT_EQ(y->cols(), 1);
  EXPECT_EQ(mlp.Params().size(), 4u);
}

TEST(GcnLayerTest, MatchesDenseReference) {
  Rng rng(4);
  GcnLayer layer(3, 2, &rng);
  GraphContext ctx = PathGraph();
  auto x = ag::MakeConst(RandomTensor(4, 3, 5));
  auto y = layer.Forward(x, ctx);

  // Dense reference: A_hat X W + broadcast bias, A_hat = D^-1/2 (A+I) D^-1/2.
  const auto params = layer.Params();
  const Tensor& w = params[0]->value;
  const Tensor& b = params[1]->value;
  Tensor xw = MatMul(x->value, w);
  Tensor expected(4, 2);
  auto g = graph::CsrGraph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}}, true, true);
  for (int i = 0; i < 4; ++i) {
    for (int j : g.InNeighbors(i)) {
      const float norm = 1.0f / std::sqrt(static_cast<float>(g.Degree(i)) *
                                          g.Degree(j));
      for (int c = 0; c < 2; ++c) {
        expected.at(i, c) += norm * (xw.at(j, c) + b.at(0, c));
      }
    }
  }
  // GcnLayer adds bias before aggregation (bias rides through the norm), so
  // compare against the same formulation.
  EXPECT_LT(MaxAbsDiff(y->value, expected), 1e-4f);
}

TEST(AttentionHeadTest, SharedTransformReusesWeights) {
  Rng rng(5);
  AttentionHead shared(3, 3, 2, /*share_transform=*/true, &rng);
  EXPECT_EQ(shared.Params().size(), 3u);  // W, a_dst, a_src.
  AttentionHead split(3, 4, 2, /*share_transform=*/false, &rng);
  EXPECT_EQ(split.Params().size(), 4u);
}

TEST(AttentionHeadTest, OutputShapeAndGradCheck) {
  Rng rng(6);
  AttentionHead head(3, 3, 2, true, &rng);
  GraphContext ctx = PathGraph();
  auto x = ag::MakeConst(RandomTensor(4, 3, 7));
  auto y = head.Forward(x, x, ctx);
  EXPECT_EQ(y->rows(), 4);
  EXPECT_EQ(y->cols(), 2);
  auto result = ag::CheckGradients(head.Params(), [&]() {
    auto out = head.Forward(x, x, ctx);
    return ag::SumAll(ag::Mul(out, out));
  }, 1e-3, 3e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GatLayerTest, MultiHeadConcatWidth) {
  Rng rng(7);
  GatLayer layer(5, 6, 3, &rng);
  GraphContext ctx = PathGraph();
  auto x = ag::MakeConst(RandomTensor(4, 5, 8));
  auto y = layer.Forward(x, ctx);
  EXPECT_EQ(y->cols(), 6);
}

TEST(AggregatePairTest, SumAndConcat) {
  auto u = ag::MakeConst(Tensor(2, 2, {1, 2, 3, 4}));
  auto v = ag::MakeConst(Tensor(2, 2, {10, 20, 30, 40}));
  auto s = AggregatePair(AggKind::kSum, u, v, nullptr);
  EXPECT_FLOAT_EQ(s->value.at(1, 1), 44.0f);
  auto c = AggregatePair(AggKind::kConcat, u, v, nullptr);
  EXPECT_EQ(c->cols(), 4);
}

TEST(AggregatePairTest, AttentionIsConvexCombination) {
  auto u = ag::MakeConst(Tensor(1, 2, {0.0f, 0.0f}));
  auto v = ag::MakeConst(Tensor(1, 2, {1.0f, 1.0f}));
  auto q = ag::MakeConst(RandomTensor(2, 1, 9));
  auto out = AggregatePair(AggKind::kAttention, u, v, q);
  // Result lies between u and v elementwise.
  for (int c = 0; c < 2; ++c) {
    EXPECT_GE(out->value.at(0, c), 0.0f);
    EXPECT_LE(out->value.at(0, c), 1.0f);
  }
}

class MagaAggTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(MagaAggTest, OutputWidthsAndFinite) {
  Rng rng(10);
  MagaLayer layer(5, 4, 6, 2, GetParam(), &rng);
  GraphContext ctx = PathGraph();
  auto p = ag::MakeConst(RandomTensor(4, 5, 11));
  auto i = ag::MakeConst(RandomTensor(4, 4, 12));
  auto out = layer.Forward(p, i, ctx);
  EXPECT_EQ(out.p->cols(), layer.out_width());
  EXPECT_EQ(out.i->cols(), layer.out_width());
  EXPECT_FALSE(out.p->value.HasNonFinite());
  EXPECT_FALSE(out.i->value.HasNonFinite());
  const int expected =
      GetParam() == AggKind::kConcat ? 12 : 6;
  EXPECT_EQ(layer.out_width(), expected);
}

INSTANTIATE_TEST_SUITE_P(Aggs, MagaAggTest,
                         ::testing::Values(AggKind::kSum, AggKind::kConcat,
                                           AggKind::kAttention));

TEST(MagaLayerTest, GradCheckSmall) {
  Rng rng(13);
  MagaLayer layer(2, 2, 2, 1, AggKind::kSum, &rng);
  GraphContext ctx = PathGraph();
  auto p = ag::MakeConst(RandomTensor(4, 2, 14));
  auto i = ag::MakeConst(RandomTensor(4, 2, 15));
  auto result = ag::CheckGradients(layer.Params(), [&]() {
    auto out = layer.Forward(p, i, ctx);
    return ag::SumAll(ag::Add(ag::Mul(out.p, out.p), ag::Mul(out.i, out.i)));
  }, 1e-3, 4e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MagaLayerTest, InterModalContextMatters) {
  // Changing only the image features must change the POI-side output
  // (the inter-modal path) even with frozen parameters.
  Rng rng(16);
  MagaLayer layer(3, 3, 4, 1, AggKind::kSum, &rng);
  GraphContext ctx = PathGraph();
  auto p = ag::MakeConst(RandomTensor(4, 3, 17));
  auto i1 = ag::MakeConst(RandomTensor(4, 3, 18));
  auto i2 = ag::MakeConst(RandomTensor(4, 3, 19));
  auto out1 = layer.Forward(p, i1, ctx);
  auto out2 = layer.Forward(p, i2, ctx);
  EXPECT_GT(MaxAbsDiff(out1.p->value, out2.p->value), 1e-5f);
}

// ------------------------------- GSCM ---------------------------------------

TEST(GscmTest, AssignmentRowsSumToOne) {
  Rng rng(20);
  Gscm::Options options;
  options.in_dim = 4;
  options.num_clusters = 3;
  options.temperature = 0.5f;
  Gscm gscm(options, &rng);
  auto x = ag::MakeConst(RandomTensor(6, 4, 21));
  auto out = gscm.Forward(x);
  for (int r = 0; r < 6; ++r) {
    double total = 0.0;
    for (int k = 0; k < 3; ++k) total += out.assignment->value.at(r, k);
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  EXPECT_EQ(out.hard_assignment.size(), 6u);
  for (int k : out.hard_assignment) {
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 3);
  }
}

TEST(GscmTest, HardAssignmentIsArgmaxOfSoft) {
  Rng rng(22);
  Gscm::Options options;
  options.in_dim = 4;
  options.num_clusters = 5;
  options.temperature = 1.0f;
  Gscm gscm(options, &rng);
  auto x = ag::MakeConst(RandomTensor(8, 4, 23));
  auto out = gscm.Forward(x);
  for (int r = 0; r < 8; ++r) {
    int best = 0;
    for (int k = 1; k < 5; ++k) {
      if (out.assignment->value.at(r, k) >
          out.assignment->value.at(r, best)) {
        best = k;
      }
    }
    EXPECT_EQ(out.hard_assignment[r], best);
  }
}

TEST(GscmTest, OutputWidths) {
  Rng rng(24);
  Gscm::Options options;
  options.in_dim = 4;
  options.num_clusters = 3;
  options.agg = AggKind::kSum;
  Gscm sum_gscm(options, &rng);
  EXPECT_EQ(sum_gscm.out_width(), 4);
  options.agg = AggKind::kConcat;
  Gscm cat_gscm(options, &rng);
  EXPECT_EQ(cat_gscm.out_width(), 8);
}

TEST(GscmTest, FrozenForwardUsesGivenAssignment) {
  Rng rng(25);
  Gscm::Options options;
  options.in_dim = 3;
  options.num_clusters = 2;
  Gscm gscm(options, &rng);
  auto x = ag::MakeConst(RandomTensor(5, 3, 26));
  Tensor soft(5, 2);
  for (int r = 0; r < 5; ++r) {
    soft.at(r, r % 2) = 1.0f;
  }
  std::vector<int> hard = {0, 1, 0, 1, 0};
  auto out = gscm.ForwardFrozen(x, soft, hard);
  EXPECT_EQ(out.hard_assignment, hard);
  EXPECT_LT(MaxAbsDiff(out.assignment->value, soft), 1e-9f);
}

TEST(GscmTest, GradCheck) {
  Rng rng(27);
  Gscm::Options options;
  options.in_dim = 3;
  options.num_clusters = 2;
  options.temperature = 1.0f;
  Gscm gscm(options, &rng);
  auto x = ag::MakeConst(RandomTensor(5, 3, 28));
  // The hard argmax is non-differentiable; at a generic point the argmax is
  // locally constant, so finite differences remain valid.
  auto result = ag::CheckGradients(gscm.Params(), [&]() {
    auto out = gscm.Forward(x);
    return ag::SumAll(ag::Mul(out.region_repr, out.region_repr));
  }, 1e-3, 4e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(PseudoLabelTest, FlagsClustersWithKnownUvs) {
  std::vector<int> hard = {0, 0, 1, 2, 2};
  std::vector<int> labels = {1, 0, -1, 0, -1};
  auto pseudo = ComputeClusterPseudoLabels(hard, labels, 3);
  EXPECT_EQ(pseudo, (std::vector<int>{1, 0, 0}));
}

TEST(PseudoLabelTest, UnlabeledNeverCounts) {
  std::vector<int> hard = {0, 1};
  std::vector<int> labels = {-1, -1};
  auto pseudo = ComputeClusterPseudoLabels(hard, labels, 2);
  EXPECT_EQ(pseudo, (std::vector<int>{0, 0}));
}

// ------------------------------ MS-Gate -------------------------------------

MsGate::Options GateOptions() {
  MsGate::Options options;
  options.num_clusters = 3;
  options.cluster_repr_dim = 4;
  options.context_dim = 2;
  options.classifier_in = 4;
  options.classifier_hidden = 3;
  return options;
}

TEST(MsGateTest, InclusionProbabilitiesInUnitInterval) {
  Rng rng(30);
  MsGate gate(GateOptions(), &rng);
  auto h = ag::MakeConst(RandomTensor(3, 4, 31));
  auto inc = gate.EstimateInclusion(h);
  EXPECT_EQ(inc->rows(), 3);
  EXPECT_EQ(inc->cols(), 1);
  for (int k = 0; k < 3; ++k) {
    EXPECT_GT(inc->value.at(k, 0), 0.0f);
    EXPECT_LT(inc->value.at(k, 0), 1.0f);
  }
}

TEST(MsGateTest, ContextVectorShape) {
  Rng rng(32);
  MsGate gate(GateOptions(), &rng);
  auto b = ag::MakeConst(RowSoftmax(RandomTensor(6, 3, 33), 1.0f));
  auto inc = ag::MakeConst(Tensor(3, 1, {0.9f, 0.1f, 0.5f}));
  auto q = gate.ContextVector(b, inc);
  EXPECT_EQ(q->rows(), 6);
  EXPECT_EQ(q->cols(), 2);
  for (int64_t i = 0; i < q->value.size(); ++i) {
    EXPECT_GT(q->value[i], 0.0f);
    EXPECT_LT(q->value[i], 1.0f);
  }
}

TEST(MsGateTest, ForwardProducesPerRegionLogits) {
  Rng rng(34);
  MsGate gate(GateOptions(), &rng);
  Mlp master(4, 3, 1, &rng);
  auto x = ag::MakeConst(RandomTensor(6, 4, 35));
  auto b = ag::MakeConst(RowSoftmax(RandomTensor(6, 3, 36), 1.0f));
  auto h = ag::MakeConst(RandomTensor(3, 4, 37));
  auto inc = gate.EstimateInclusion(h);
  auto logits = gate.Forward(x, b, inc, master);
  EXPECT_EQ(logits->rows(), 6);
  EXPECT_EQ(logits->cols(), 1);
  EXPECT_FALSE(logits->value.HasNonFinite());
}

TEST(MsGateTest, DifferentContextsDeriveDifferentSlaves) {
  Rng rng(38);
  MsGate gate(GateOptions(), &rng);
  Mlp master(4, 3, 1, &rng);
  // Keep the hidden layer active (zero-initialized biases plus unlucky
  // weights could otherwise yield all-dead ReLUs and identical 0 logits).
  master.layer1().b()->value.Fill(1.0f);
  master.layer2().b()->value.Fill(0.2f);
  Tensor x(2, 4);
  x.Fill(1.0f);  // Identical region representations.
  Tensor b(2, 3);
  b.at(0, 0) = 1.0f;  // Region 0 fully in cluster 0.
  b.at(1, 2) = 1.0f;  // Region 1 fully in cluster 2.
  auto inc = ag::MakeConst(Tensor(3, 1, {0.95f, 0.5f, 0.05f}));
  auto logits = gate.Forward(ag::MakeConst(x), ag::MakeConst(b), inc, master);
  EXPECT_NE(logits->value.at(0, 0), logits->value.at(1, 0));
}

TEST(MsGateTest, EndToEndGradCheck) {
  Rng rng(39);
  MsGate gate(GateOptions(), &rng);
  Mlp master(4, 3, 1, &rng);
  auto x = ag::MakeConst(RandomTensor(4, 4, 40));
  auto b = ag::MakeConst(RowSoftmax(RandomTensor(4, 3, 41), 1.0f));
  auto h = ag::MakeConst(RandomTensor(3, 4, 42));
  std::vector<ag::VarPtr> params = gate.Params();
  auto mparams = master.Params();
  params.insert(params.end(), mparams.begin(), mparams.end());
  auto result = ag::CheckGradients(params, [&]() {
    auto inc = gate.EstimateInclusion(h);
    auto logits = gate.Forward(x, b, inc, master);
    return ag::SumAll(ag::Mul(logits, logits));
  }, 1e-3, 4e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace uv::nn
