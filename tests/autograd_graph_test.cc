#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "util/rng.h"

namespace uv::ag {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

std::shared_ptr<const std::vector<int>> Ids(std::vector<int> v) {
  return std::make_shared<const std::vector<int>>(std::move(v));
}

VarPtr SquaredReadout(const VarPtr& x) { return SumAll(Mul(x, x)); }

// A small 3-node graph grouped by destination:
//   node0 <- {1, 2}; node1 <- {0}; node2 <- {} (empty segment).
struct TinyGraph {
  std::shared_ptr<const std::vector<int>> offsets = Ids({0, 2, 3, 3});
  std::shared_ptr<const std::vector<int>> src = Ids({1, 2, 0});
};

TEST(GatherRowsTest, Forward) {
  auto x = MakeConst(Tensor(3, 2, {1, 2, 3, 4, 5, 6}));
  auto g = GatherRows(x, Ids({2, 2, 0}));
  EXPECT_EQ(g->rows(), 3);
  EXPECT_FLOAT_EQ(g->value.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g->value.at(2, 1), 2.0f);
}

TEST(GatherRowsTest, BackwardScatterAdds) {
  auto x = MakeParam(Tensor(3, 1, {1, 2, 3}));
  // Row 2 gathered twice: its gradient doubles.
  auto loss = SumAll(GatherRows(x, Ids({2, 2, 0})));
  Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x->grad.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(x->grad.at(2, 0), 2.0f);
}

TEST(GatherRowsTest, GradCheck) {
  auto x = MakeParam(RandomTensor(4, 3, 5));
  auto idx = Ids({1, 3, 3, 0, 2});
  auto result = CheckGradients(
      {x}, [&]() { return SquaredReadout(GatherRows(x, idx)); });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SegmentSoftmaxTest, SegmentsSumToOne) {
  TinyGraph g;
  auto scores = MakeConst(Tensor(3, 1, {1.0f, -2.0f, 0.5f}));
  auto alpha = SegmentSoftmax(scores, g.offsets);
  EXPECT_NEAR(alpha->value.at(0, 0) + alpha->value.at(1, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(alpha->value.at(2, 0), 1.0f, 1e-6f);  // Singleton segment.
}

TEST(SegmentSoftmaxTest, LargeScoresStable) {
  TinyGraph g;
  auto scores = MakeConst(Tensor(3, 1, {500.0f, -500.0f, 900.0f}));
  auto alpha = SegmentSoftmax(scores, g.offsets);
  EXPECT_FALSE(alpha->value.HasNonFinite());
  EXPECT_NEAR(alpha->value.at(0, 0), 1.0f, 1e-5f);
}

TEST(SegmentSoftmaxTest, GradCheck) {
  TinyGraph g;
  auto scores = MakeParam(RandomTensor(3, 1, 6));
  auto result = CheckGradients({scores}, [&]() {
    return SquaredReadout(SegmentSoftmax(scores, g.offsets));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SegmentWeightedSumTest, Forward) {
  TinyGraph g;
  auto alpha = MakeConst(Tensor(3, 1, {0.25f, 0.75f, 1.0f}));
  auto feats = MakeConst(Tensor(3, 2, {4, 0, 0, 8, 2, 2}));
  auto out = SegmentWeightedSum(alpha, feats, g.offsets);
  EXPECT_EQ(out->rows(), 3);
  EXPECT_FLOAT_EQ(out->value.at(0, 0), 1.0f);   // 0.25*4.
  EXPECT_FLOAT_EQ(out->value.at(0, 1), 6.0f);   // 0.75*8.
  EXPECT_FLOAT_EQ(out->value.at(1, 0), 2.0f);   // 1.0*2.
  EXPECT_FLOAT_EQ(out->value.at(2, 0), 0.0f);   // Empty segment.
}

TEST(SegmentWeightedSumTest, GradCheckBothInputs) {
  TinyGraph g;
  auto alpha = MakeParam(RandomTensor(3, 1, 7));
  auto feats = MakeParam(RandomTensor(3, 2, 8));
  auto result = CheckGradients({alpha, feats}, [&]() {
    return SquaredReadout(SegmentWeightedSum(alpha, feats, g.offsets));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SegmentSumByIdsTest, ForwardDropsNegativeIds) {
  auto x = MakeConst(Tensor(4, 2, {1, 1, 2, 2, 3, 3, 4, 4}));
  auto ids = Ids({0, 1, 0, -1});
  auto out = SegmentSumByIds(x, ids, 2);
  EXPECT_FLOAT_EQ(out->value.at(0, 0), 4.0f);  // rows 0 + 2.
  EXPECT_FLOAT_EQ(out->value.at(1, 1), 2.0f);  // row 1.
}

TEST(SegmentSumByIdsTest, GradCheck) {
  auto x = MakeParam(RandomTensor(5, 3, 9));
  auto ids = Ids({0, 2, 1, 2, 0});
  auto result = CheckGradients({x}, [&]() {
    return SquaredReadout(SegmentSumByIds(x, ids, 3));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

// Attention-style composition over a random graph: the full per-edge score
// -> segment softmax -> weighted aggregation path used by GAT/MAGA.
class AttentionPathTest : public ::testing::TestWithParam<int> {};

TEST_P(AttentionPathTest, GradCheckOnRandomGraph) {
  const int n = 5;
  Rng rng(GetParam());
  // Random edges grouped by destination.
  std::vector<int> offsets = {0};
  std::vector<int> src;
  for (int i = 0; i < n; ++i) {
    const int deg = 1 + rng.UniformInt(3);
    for (int e = 0; e < deg; ++e) src.push_back(rng.UniformInt(n));
    offsets.push_back(static_cast<int>(src.size()));
  }
  auto off = Ids(offsets);
  auto src_ids = Ids(src);
  std::vector<int> dst;
  for (int i = 0; i < n; ++i) {
    for (int e = offsets[i]; e < offsets[i + 1]; ++e) dst.push_back(i);
  }
  auto dst_ids = Ids(dst);

  auto x = MakeConst(RandomTensor(n, 3, 50 + GetParam()));
  auto w = MakeParam(RandomTensor(3, 2, 60 + GetParam()));
  auto a_src = MakeParam(RandomTensor(2, 1, 70 + GetParam()));
  auto a_dst = MakeParam(RandomTensor(2, 1, 80 + GetParam()));

  auto build = [&]() {
    auto h = MatMul(x, w);
    auto s = Add(GatherRows(MatMul(h, a_dst), dst_ids),
                 GatherRows(MatMul(h, a_src), src_ids));
    auto alpha = SegmentSoftmax(LeakyRelu(s, 0.2f), off);
    auto out = SegmentWeightedSum(alpha, GatherRows(h, src_ids), off);
    return SquaredReadout(out);
  };
  auto result = CheckGradients({w, a_src, a_dst}, build, 1e-3, 3e-2);
  EXPECT_TRUE(result.ok) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttentionPathTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace uv::ag
