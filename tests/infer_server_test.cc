#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "eval/splits.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "obs/metrics.h"
#include "test_helpers.h"

namespace uv::infer {
namespace {

class InferServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    const eval::Fold& fold = folds[0];
    std::vector<int> train_labels;
    for (int id : fold.train_ids) train_labels.push_back(urg_->labels[id]);

    baselines::TrainOptions options;
    options.epochs = 8;
    core::CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 8;
    config.slave_epochs = 3;
    detector_ = baselines::MakeDetector("CMSF", options, config).release();
    detector_->Train(*urg_, fold.train_ids, train_labels);
    engine_ = baselines::MakeEngine(*detector_, *urg_).release();

    // Ground truth for every region, scored directly (no server).
    all_ids_ = new std::vector<int>();
    for (int id = 0; id < urg_->num_regions(); ++id) all_ids_->push_back(id);
    expected_ = new std::vector<float>(engine_->Score(*all_ids_));
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Detector* detector_;
  static Engine* engine_;
  static std::vector<int>* all_ids_;
  static std::vector<float>* expected_;
};

urg::UrbanRegionGraph* InferServerTest::urg_ = nullptr;
eval::Detector* InferServerTest::detector_ = nullptr;
Engine* InferServerTest::engine_ = nullptr;
std::vector<int>* InferServerTest::all_ids_ = nullptr;
std::vector<float>* InferServerTest::expected_ = nullptr;

TEST_F(InferServerTest, OptionsFromEnv) {
  unsetenv("UV_SERVE_BATCH");
  unsetenv("UV_SERVE_DEADLINE_US");
  ServerOptions defaults = ServerOptions::FromEnv();
  EXPECT_EQ(defaults.max_batch, 64);
  EXPECT_EQ(defaults.deadline_us, 200);
  setenv("UV_SERVE_BATCH", "7", 1);
  setenv("UV_SERVE_DEADLINE_US", "1234", 1);
  ServerOptions overridden = ServerOptions::FromEnv();
  EXPECT_EQ(overridden.max_batch, 7);
  EXPECT_EQ(overridden.deadline_us, 1234);
  setenv("UV_SERVE_BATCH", "bogus", 1);
  EXPECT_EQ(ServerOptions::FromEnv().max_batch, 64);
  unsetenv("UV_SERVE_BATCH");
  unsetenv("UV_SERVE_DEADLINE_US");
}

TEST_F(InferServerTest, SingleClientMatchesDirectScoring) {
  ScoringServer server(engine_);
  const std::vector<float> got = server.Score(*all_ids_);
  EXPECT_EQ(got, *expected_);
}

// Results must be bit-identical no matter how the dispatcher happens to
// group requests: exercise extreme batching configurations.
TEST_F(InferServerTest, DeterministicAcrossBatchCompositions) {
  for (const int max_batch : {1, 3, 64, 4096}) {
    for (const int deadline_us : {0, 500}) {
      ServerOptions options;
      options.max_batch = max_batch;
      options.deadline_us = deadline_us;
      ScoringServer server(engine_, options);
      EXPECT_EQ(server.Score(*all_ids_), *expected_)
          << "max_batch=" << max_batch << " deadline=" << deadline_us;
    }
  }
}

TEST_F(InferServerTest, ConcurrentClientsAllGetExactScores) {
  ServerOptions options;
  options.max_batch = 16;  // Force plenty of mixed-request batches.
  options.deadline_us = 100;
  ScoringServer server(engine_, options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([t, &server, &mismatches] {
      const int n = urg_->num_regions();
      for (int round = 0; round < kRounds; ++round) {
        // Each client scores a different stride of the id space.
        std::vector<int> ids;
        for (int id = (t + round) % 5; id < n; id += 5) ids.push_back(id);
        const std::vector<float> got = server.Score(ids);
        for (size_t i = 0; i < ids.size(); ++i) {
          if (got[i] != (*expected_)[ids[i]]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(InferServerTest, RecordsServingHistograms) {
  obs::Registry::Global().ResetAll();
  {
    ScoringServer server(engine_);
    server.Score(*all_ids_);
    server.Score(*all_ids_);
  }
  const obs::RegistrySnapshot snapshot = obs::Registry::Global().Snapshot();
  bool saw_queue = false, saw_batch = false, saw_latency = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "serve.queue_wait_us") saw_queue = h.count >= 2;
    if (h.name == "serve.batch_size") {
      saw_batch = h.count >= 2;
      // Both calls scored every region across one or more batches.
      EXPECT_EQ(h.sum, static_cast<uint64_t>(2 * urg_->num_regions()));
    }
    if (h.name == "serve.latency_us") saw_latency = h.count >= 2;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_latency);
}

TEST_F(InferServerTest, ShutdownDrainsAndIsIdempotent) {
  ScoringServer server(engine_);
  EXPECT_EQ(server.Score(*all_ids_), *expected_);
  server.Shutdown();
  server.Shutdown();  // Second call is a no-op.
}

TEST_F(InferServerTest, EmptyRequestIsANoop) {
  ScoringServer server(engine_);
  std::vector<float> out = server.Score(std::vector<int>{});
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace uv::infer
