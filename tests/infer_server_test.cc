#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "eval/splits.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "test_helpers.h"

namespace uv::infer {
namespace {

class InferServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    const eval::Fold& fold = folds[0];
    std::vector<int> train_labels;
    for (int id : fold.train_ids) train_labels.push_back(urg_->labels[id]);

    baselines::TrainOptions options;
    options.epochs = 8;
    core::CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 8;
    config.slave_epochs = 3;
    detector_ = baselines::MakeDetector("CMSF", options, config).release();
    detector_->Train(*urg_, fold.train_ids, train_labels);
    engine_ = baselines::MakeEngine(*detector_, *urg_).release();

    // Ground truth for every region, scored directly (no server).
    all_ids_ = new std::vector<int>();
    for (int id = 0; id < urg_->num_regions(); ++id) all_ids_->push_back(id);
    expected_ = new std::vector<float>(engine_->Score(*all_ids_));
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Detector* detector_;
  static Engine* engine_;
  static std::vector<int>* all_ids_;
  static std::vector<float>* expected_;
};

urg::UrbanRegionGraph* InferServerTest::urg_ = nullptr;
eval::Detector* InferServerTest::detector_ = nullptr;
Engine* InferServerTest::engine_ = nullptr;
std::vector<int>* InferServerTest::all_ids_ = nullptr;
std::vector<float>* InferServerTest::expected_ = nullptr;

TEST_F(InferServerTest, OptionsFromEnv) {
  unsetenv("UV_SERVE_BATCH");
  unsetenv("UV_SERVE_DEADLINE_US");
  ServerOptions defaults = ServerOptions::FromEnv();
  EXPECT_EQ(defaults.max_batch, 64);
  EXPECT_EQ(defaults.deadline_us, 200);
  setenv("UV_SERVE_BATCH", "7", 1);
  setenv("UV_SERVE_DEADLINE_US", "1234", 1);
  ServerOptions overridden = ServerOptions::FromEnv();
  EXPECT_EQ(overridden.max_batch, 7);
  EXPECT_EQ(overridden.deadline_us, 1234);
  setenv("UV_SERVE_BATCH", "bogus", 1);
  EXPECT_EQ(ServerOptions::FromEnv().max_batch, 64);
  unsetenv("UV_SERVE_BATCH");
  unsetenv("UV_SERVE_DEADLINE_US");
}

TEST_F(InferServerTest, SingleClientMatchesDirectScoring) {
  ScoringServer server(engine_);
  const std::vector<float> got = server.Score(*all_ids_);
  EXPECT_EQ(got, *expected_);
}

// Results must be bit-identical no matter how the dispatcher happens to
// group requests: exercise extreme batching configurations.
TEST_F(InferServerTest, DeterministicAcrossBatchCompositions) {
  for (const int max_batch : {1, 3, 64, 4096}) {
    for (const int deadline_us : {0, 500}) {
      ServerOptions options;
      options.max_batch = max_batch;
      options.deadline_us = deadline_us;
      ScoringServer server(engine_, options);
      EXPECT_EQ(server.Score(*all_ids_), *expected_)
          << "max_batch=" << max_batch << " deadline=" << deadline_us;
    }
  }
}

TEST_F(InferServerTest, ConcurrentClientsAllGetExactScores) {
  ServerOptions options;
  options.max_batch = 16;  // Force plenty of mixed-request batches.
  options.deadline_us = 100;
  ScoringServer server(engine_, options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([t, &server, &mismatches] {
      const int n = urg_->num_regions();
      for (int round = 0; round < kRounds; ++round) {
        // Each client scores a different stride of the id space.
        std::vector<int> ids;
        for (int id = (t + round) % 5; id < n; id += 5) ids.push_back(id);
        const std::vector<float> got = server.Score(ids);
        for (size_t i = 0; i < ids.size(); ++i) {
          if (got[i] != (*expected_)[ids[i]]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(InferServerTest, RecordsServingHistograms) {
  obs::Registry::Global().ResetAll();
  {
    ScoringServer server(engine_);
    server.Score(*all_ids_);
    server.Score(*all_ids_);
  }
  const obs::RegistrySnapshot snapshot = obs::Registry::Global().Snapshot();
  bool saw_queue = false, saw_batch = false, saw_latency = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "serve.queue_wait_us") saw_queue = h.count >= 2;
    if (h.name == "serve.batch_size") {
      saw_batch = h.count >= 2;
      // Both calls scored every region across one or more batches.
      EXPECT_EQ(h.sum, static_cast<uint64_t>(2 * urg_->num_regions()));
    }
    if (h.name == "serve.latency_us") saw_latency = h.count >= 2;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_latency);
}

TEST_F(InferServerTest, ShutdownDrainsAndIsIdempotent) {
  ScoringServer server(engine_);
  EXPECT_EQ(server.Score(*all_ids_), *expected_);
  server.Shutdown();
  server.Shutdown();  // Second call is a no-op.
}

TEST_F(InferServerTest, EmptyRequestIsANoop) {
  ScoringServer server(engine_);
  std::vector<float> out = server.Score(std::vector<int>{});
  EXPECT_TRUE(out.empty());
}

// --- Request lifecycle telemetry -------------------------------------------

TEST_F(InferServerTest, RequestIdsAndEventsAreRecorded) {
  obs::Registry::Global().ResetAll();
  ServerOptions options;
  options.event_capacity = 64;
  ScoringServer server(engine_, options);
  const int n = urg_->num_regions();
  float out[8];
  int ids[8];
  constexpr int kRequests = 10;
  for (int r = 0; r < kRequests; ++r) {
    for (int i = 0; i < 8; ++i) ids[i] = (r * 8 + i) % n;
    server.Score(ids, 8, out);
  }
  const std::vector<RequestEvent> events = server.RecentEvents();
  ASSERT_EQ(events.size(), static_cast<size_t>(kRequests));
  for (size_t i = 0; i < events.size(); ++i) {
    // One synchronous client: ids are assigned in call order, from 1.
    EXPECT_EQ(events[i].id, i + 1);
    EXPECT_GE(events[i].batch, 1u);
    EXPECT_EQ(events[i].n, 8);
    EXPECT_GE(events[i].latency_us, events[i].queue_wait_us);
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_total, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(stats.regions_total, static_cast<uint64_t>(kRequests) * 8);
  EXPECT_GE(stats.batches_total, 1u);
}

TEST_F(InferServerTest, EventRingKeepsOnlyTheMostRecent) {
  ServerOptions options;
  options.event_capacity = 4;
  ScoringServer server(engine_, options);
  int id = 0;
  float out;
  for (int r = 0; r < 10; ++r) server.Score(&id, 1, &out);
  const std::vector<RequestEvent> events = server.RecentEvents();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and only the last four requests survive.
  EXPECT_EQ(events[0].id, 7u);
  EXPECT_EQ(events[3].id, 10u);
}

// The ISSUE acceptance check: Stats()'s rolling-window p99 must equal a
// post-hoc percentile computed from the recorded per-request events. Both
// sides use the same power-of-two buckets and nearest-rank convention, so
// over an un-rotated window the match is exact, not approximate.
TEST_F(InferServerTest, StatsWindowPercentilesMatchPostHocEventMath) {
  obs::Registry::Global().ResetAll();
  ServerOptions options;
  options.event_capacity = 4096;
  ScoringServer server(engine_, options);
  const int n = urg_->num_regions();
  for (int pass = 0; pass < 3; ++pass) {
    int ids[32];
    float out[32];
    int filled = 0;
    for (int id = 0; id < n; ++id) {
      ids[filled++] = id;
      if (filled == 32) {
        server.Score(ids, filled, out);
        filled = 0;
      }
    }
    if (filled > 0) server.Score(ids, filled, out);
  }
  const std::vector<RequestEvent> events = server.RecentEvents();
  const ServerStats stats = server.Stats();
  ASSERT_EQ(stats.window_count, events.size());

  uint64_t latency_counts[obs::Histogram::kNumBuckets] = {};
  uint64_t wait_counts[obs::Histogram::kNumBuckets] = {};
  for (const RequestEvent& e : events) {
    ++latency_counts[obs::Histogram::BucketIndex(e.latency_us)];
    ++wait_counts[obs::Histogram::BucketIndex(e.queue_wait_us)];
  }
  EXPECT_EQ(stats.latency_p50_us,
            obs::Histogram::PercentileFromCounts(latency_counts, 50.0));
  EXPECT_EQ(stats.latency_p95_us,
            obs::Histogram::PercentileFromCounts(latency_counts, 95.0));
  EXPECT_EQ(stats.latency_p99_us,
            obs::Histogram::PercentileFromCounts(latency_counts, 99.0));
  EXPECT_EQ(stats.queue_wait_p99_us,
            obs::Histogram::PercentileFromCounts(wait_counts, 99.0));
  // And the windowed view agrees with the cumulative histogram, which saw
  // exactly the same samples since ResetAll.
  EXPECT_EQ(stats.latency_p99_us,
            obs::Registry::Global().GetHistogram("serve.latency_us")
                .Percentile(99.0));
}

TEST_F(InferServerTest, LifecycleGaugesDrainToZero) {
  obs::Registry::Global().ResetAll();
  {
    ScoringServer server(engine_);
    server.Score(*all_ids_);
    const ServerStats busy = server.Stats();
    EXPECT_GE(busy.requests_total, 1u);
  }
  obs::Registry& reg = obs::Registry::Global();
  EXPECT_EQ(reg.GetGauge("serve.queue_depth").Value(), 0);
  EXPECT_EQ(reg.GetGauge("serve.inflight").Value(), 0);
}

TEST_F(InferServerTest, EveryRequestEmitsAJsonlRecord) {
  const std::string path =
      ::testing::TempDir() + "/serve_requests.jsonl";
  obs::OpenMetricsLog(path);
  constexpr int kRequests = 6;
  {
    ScoringServer server(engine_);
    int id = 1;
    float out;
    for (int r = 0; r < kRequests; ++r) server.Score(&id, 1, &out);
  }
  obs::CloseMetricsLog();
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int requests = 0;
  while (std::getline(in, line)) {
    if (line.find("\"kind\":\"request\"") == std::string::npos) continue;
    ++requests;
    EXPECT_NE(line.find("\"req\":"), std::string::npos);
    EXPECT_NE(line.find("\"batch\":"), std::string::npos);
    EXPECT_NE(line.find("\"queue_wait_us\":"), std::string::npos);
    EXPECT_NE(line.find("\"latency_us\":"), std::string::npos);
  }
  EXPECT_EQ(requests, kRequests);
  std::remove(path.c_str());
}

TEST_F(InferServerTest, SampledSpansCarryRequestAndBatchIds) {
  const double saved_rate = obs::TraceSampleRate();
  const std::string path = ::testing::TempDir() + "/serve_trace.json";

  obs::SetTraceSampleRate(1.0);
  obs::StartTrace(path);
  {
    ScoringServer server(engine_);
    server.Score(*all_ids_);
  }  // Shutdown before StopTrace: all spans recorded.
  ASSERT_TRUE(obs::StopTrace());
  std::string trace;
  {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    trace = ss.str();
  }
  EXPECT_NE(trace.find("\"name\":\"serve.dispatch\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"serve.score\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"serve.enqueue\""), std::string::npos);
  EXPECT_NE(trace.find("\"req\":"), std::string::npos);
  EXPECT_NE(trace.find("\"batch\":"), std::string::npos);

  // Rate 0: batch spans remain, per-request spans vanish.
  obs::SetTraceSampleRate(0.0);
  obs::StartTrace(path);
  {
    ScoringServer server(engine_);
    server.Score(*all_ids_);
  }
  ASSERT_TRUE(obs::StopTrace());
  {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    trace = ss.str();
  }
  EXPECT_NE(trace.find("\"name\":\"serve.dispatch\""), std::string::npos);
  EXPECT_EQ(trace.find("\"name\":\"serve.enqueue\""), std::string::npos);

  obs::SetTraceSampleRate(saved_rate);
  std::remove(path.c_str());
}

TEST_F(InferServerTest, FakeClockDrivesWindowExpiry) {
  obs::Registry::Global().ResetAll();
  obs::FakeClock clock;
  clock.Set(1);
  ServerOptions options;
  options.deadline_us = 0;  // A frozen clock never ages the oldest request.
  options.clock = &clock;
  options.slo_window_s = 8;  // 1-second epochs.
  ScoringServer server(engine_, options);
  int id = 0;
  float out;
  server.Score(&id, 1, &out);
  EXPECT_EQ(server.Stats().window_count, 1u);
  // Jump past the whole window: the sample rolls out of the SLO view but
  // stays in the cumulative totals.
  clock.Set(10ull * 1000 * 1000);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.window_count, 0u);
  EXPECT_EQ(stats.latency_p99_us, 0.0);
  EXPECT_EQ(stats.requests_total, 1u);
  server.Shutdown();
  obs::Registry::Global().ResetAll();
}

}  // namespace
}  // namespace uv::infer
