#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "eval/splits.h"
#include "infer/engine.h"
#include "test_helpers.h"

namespace uv::infer {
namespace {

// The engine's contract is bit-identity with the autograd Score path of the
// full-graph detector: both run the same shared forward kernels, so every
// comparison below is exact float equality, not an epsilon.
class InferEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    fold_ = new eval::Fold(folds[0]);
    train_labels_ = new std::vector<int>();
    for (int id : fold_->train_ids) train_labels_->push_back(urg_->labels[id]);
  }

  static std::unique_ptr<eval::Detector> TrainDetector(
      const std::string& name) {
    baselines::TrainOptions options;
    options.epochs = 8;
    core::CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 8;
    config.slave_epochs = 3;
    auto detector = baselines::MakeDetector(name, options, config);
    detector->Train(*urg_, fold_->train_ids, *train_labels_);
    return detector;
  }

  static void ExpectEngineMatchesDetector(const std::string& name) {
    auto detector = TrainDetector(name);
    const std::vector<float> expected =
        detector->Score(*urg_, fold_->test_ids);
    auto engine = baselines::MakeEngine(*detector, *urg_);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->num_regions(), urg_->num_regions());

    // Full batch.
    const std::vector<float> got = engine->Score(fold_->test_ids);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << name << " id " << fold_->test_ids[i];
    }

    // One id at a time: the tail is row-wise, so batch composition must not
    // change a single bit.
    for (size_t i = 0; i < fold_->test_ids.size(); ++i) {
      float one = 0.0f;
      engine->ScoreInto(&fold_->test_ids[i], 1, &one);
      EXPECT_EQ(one, expected[i]) << name << " id " << fold_->test_ids[i];
    }

    // Ragged batches (mixed sizes, duplicate ids).
    std::vector<int> ragged;
    for (size_t i = 0; i < fold_->test_ids.size(); ++i) {
      ragged.push_back(fold_->test_ids[i]);
      if (i % 3 == 0) ragged.push_back(fold_->test_ids[i]);
    }
    std::vector<float> ragged_out(ragged.size());
    engine->ScoreInto(ragged.data(), static_cast<int>(ragged.size()),
                      ragged_out.data());
    size_t j = 0;
    for (size_t i = 0; i < fold_->test_ids.size(); ++i) {
      EXPECT_EQ(ragged_out[j++], expected[i]);
      if (i % 3 == 0) EXPECT_EQ(ragged_out[j++], expected[i]);
    }
    ASSERT_EQ(j, ragged.size());
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Fold* fold_;
  static std::vector<int>* train_labels_;
};

urg::UrbanRegionGraph* InferEngineTest::urg_ = nullptr;
eval::Fold* InferEngineTest::fold_ = nullptr;
std::vector<int>* InferEngineTest::train_labels_ = nullptr;

TEST_F(InferEngineTest, CmsfFullExactMatch) {
  ExpectEngineMatchesDetector("CMSF");
}

TEST_F(InferEngineTest, CmsfNoMagaExactMatch) {
  ExpectEngineMatchesDetector("CMSF-M");
}

TEST_F(InferEngineTest, CmsfNoGateExactMatch) {
  ExpectEngineMatchesDetector("CMSF-G");
}

TEST_F(InferEngineTest, CmsfNoHierarchyExactMatch) {
  ExpectEngineMatchesDetector("CMSF-H");
}

TEST_F(InferEngineTest, GcnBaselineExactMatch) {
  ExpectEngineMatchesDetector("GCN");
}

TEST_F(InferEngineTest, GatBaselineExactMatch) {
  ExpectEngineMatchesDetector("GAT");
}

TEST_F(InferEngineTest, UnsupportedDetectorReturnsNull) {
  auto detector = TrainDetector("MLP");
  EXPECT_EQ(baselines::MakeEngine(*detector, *urg_), nullptr);
}

TEST_F(InferEngineTest, RepeatedCallsReuseWorkspaces) {
  auto detector = TrainDetector("CMSF");
  auto engine = baselines::MakeEngine(*detector, *urg_);
  ASSERT_NE(engine, nullptr);
  const std::vector<float> first = engine->Score(fold_->test_ids);
  // Many repeated calls (same and different sizes) must stay stable.
  for (int round = 0; round < 10; ++round) {
    const std::vector<float> again = engine->Score(fold_->test_ids);
    EXPECT_EQ(again, first);
    const std::vector<int> half(fold_->test_ids.begin(),
                                fold_->test_ids.begin() +
                                    fold_->test_ids.size() / 2);
    const std::vector<float> half_out = engine->Score(half);
    for (size_t i = 0; i < half.size(); ++i) {
      EXPECT_EQ(half_out[i], first[i]);
    }
  }
}

}  // namespace
}  // namespace uv::infer
