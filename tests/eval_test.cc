#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "eval/metrics.h"
#include "eval/splits.h"
#include "util/rng.h"

namespace uv::eval {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.9f}, {0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0.1f, 0.9f}, {1, 1}), 0.5);
}

TEST(AucTest, PartialOrdering) {
  // One inversion among 2x2 pairs: AUC = 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.9f, 0.3f, 0.5f, 0.1f}, {1, 1, 0, 0}), 0.75);
}

TEST(AucTest, TiesGetMidrank) {
  // pos at 0.5, neg at 0.5 and 0.1: tie contributes 0.5 -> AUC = 0.75.
  EXPECT_DOUBLE_EQ(Auc({0.5f, 0.5f, 0.1f}, {1, 0, 0}), 0.75);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  std::vector<float> s = {0.1f, 0.7f, 0.3f, 0.9f, 0.5f};
  std::vector<int> y = {0, 1, 0, 1, 1};
  std::vector<float> s2;
  for (float v : s) s2.push_back(v * v * 10.0f);
  EXPECT_DOUBLE_EQ(Auc(s, y), Auc(s2, y));
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(5);
  std::vector<float> s(4000);
  std::vector<int> y(4000);
  for (int i = 0; i < 4000; ++i) {
    s[i] = static_cast<float>(rng.Uniform());
    y[i] = rng.Bernoulli(0.1) ? 1 : 0;
  }
  EXPECT_NEAR(Auc(s, y), 0.5, 0.05);
}

TEST(TopPercentTest, CountsPredictions) {
  std::vector<float> s(100);
  std::vector<int> y(100, 0);
  for (int i = 0; i < 100; ++i) s[i] = i / 100.0f;
  y[99] = y[98] = y[97] = 1;  // Top three scores are the positives.
  auto m = TopPercent(s, y, 3.0);
  EXPECT_EQ(m.num_predicted, 3);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(TopPercentTest, PartialRecall) {
  std::vector<float> s = {0.9f, 0.8f, 0.7f, 0.1f, 0.05f,
                          0.04f, 0.03f, 0.02f, 0.01f, 0.005f};
  std::vector<int> y = {1, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  auto m = TopPercent(s, y, 30.0);  // Top 3 of 10.
  EXPECT_EQ(m.num_predicted, 3);
  EXPECT_DOUBLE_EQ(m.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

TEST(TopPercentTest, AtLeastOnePrediction) {
  auto m = TopPercent({0.3f, 0.1f}, {1, 0}, 1.0);
  EXPECT_EQ(m.num_predicted, 1);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(TopPercentTest, NoPositivesZeroRecall) {
  auto m = TopPercent({0.5f, 0.4f, 0.3f}, {0, 0, 0}, 50.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(DetectionMetricsTest, CombinesAll) {
  std::vector<float> s(100);
  std::vector<int> y(100, 0);
  for (int i = 0; i < 100; ++i) s[i] = i / 100.0f;
  for (int i = 95; i < 100; ++i) y[i] = 1;
  auto m = ComputeDetectionMetrics(s, y);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
  EXPECT_EQ(m.at3.num_predicted, 3);
  EXPECT_EQ(m.at5.num_predicted, 5);
  EXPECT_DOUBLE_EQ(m.at5.recall, 1.0);
}

TEST(AggregateTest, MeanAndStd) {
  auto a = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_NEAR(a.std, std::sqrt(2.0 / 3.0), 1e-12);
  auto single = Aggregate({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.std, 0.0);
  auto empty = Aggregate({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

// ------------------------------ Splits --------------------------------------

class BlockKFoldTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockKFoldTest, PartitionProperties) {
  const int k = GetParam();
  graph::GridSpec grid{40, 40, 128.0};
  Rng rng(77);
  // Label a scattered subset.
  std::vector<int> labeled;
  for (int id = 0; id < grid.num_regions(); ++id) {
    if (rng.Bernoulli(0.15)) labeled.push_back(id);
  }
  auto folds = BlockKFold(grid, labeled, k, 10, &rng);
  ASSERT_EQ(folds.size(), static_cast<size_t>(k));

  // Every labeled id appears in exactly one test fold and k-1 train folds.
  std::map<int, int> test_count;
  for (const auto& fold : folds) {
    std::set<int> train(fold.train_ids.begin(), fold.train_ids.end());
    for (int id : fold.test_ids) {
      EXPECT_EQ(train.count(id), 0u) << "train/test overlap";
      ++test_count[id];
    }
  }
  for (int id : labeled) {
    EXPECT_EQ(test_count[id], 1) << "id " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, BlockKFoldTest, ::testing::Values(2, 3, 5));

TEST(BlockKFoldTest, BlockIntegrity) {
  // All labeled cells of one 10x10 block land in the same fold.
  graph::GridSpec grid{40, 40, 128.0};
  Rng rng(78);
  std::vector<int> labeled;
  for (int id = 0; id < grid.num_regions(); ++id) {
    if (rng.Bernoulli(0.2)) labeled.push_back(id);
  }
  auto folds = BlockKFold(grid, labeled, 3, 10, &rng);
  auto block_of = [&](int id) {
    return (grid.RowOf(id) / 10) * 4 + (grid.ColOf(id) / 10);
  };
  std::map<int, int> fold_of_block;
  for (size_t f = 0; f < folds.size(); ++f) {
    for (int id : folds[f].test_ids) {
      const int b = block_of(id);
      auto it = fold_of_block.find(b);
      if (it == fold_of_block.end()) {
        fold_of_block[b] = static_cast<int>(f);
      } else {
        EXPECT_EQ(it->second, static_cast<int>(f))
            << "block " << b << " split across folds";
      }
    }
  }
}

TEST(BlockKFoldTest, DeterministicGivenRngState) {
  graph::GridSpec grid{20, 20, 128.0};
  std::vector<int> labeled;
  for (int id = 0; id < grid.num_regions(); id += 3) labeled.push_back(id);
  Rng r1(5), r2(5);
  auto f1 = BlockKFold(grid, labeled, 3, 10, &r1);
  auto f2 = BlockKFold(grid, labeled, 3, 10, &r2);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(f1[k].test_ids, f2[k].test_ids);
  }
}

TEST(MaskLabeledRatioTest, KeepsRequestedFraction) {
  std::vector<int> ids;
  std::vector<int> labels(1000, 0);
  for (int i = 0; i < 1000; ++i) ids.push_back(i);
  labels[7] = 1;
  Rng rng(9);
  auto kept = MaskLabeledRatio(ids, labels, 0.25, &rng);
  EXPECT_NEAR(static_cast<double>(kept.size()), 250.0, 2.0);
}

TEST(MaskLabeledRatioTest, AlwaysKeepsAPositive) {
  std::vector<int> ids = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> labels(10, 0);
  labels[3] = 1;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto kept = MaskLabeledRatio(ids, labels, 0.2, &rng);
    bool has_pos = false;
    for (int id : kept) has_pos |= (labels[id] == 1);
    EXPECT_TRUE(has_pos) << "seed " << seed;
  }
}

}  // namespace
}  // namespace uv::eval
