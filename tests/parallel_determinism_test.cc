// Asserts the parallel-compute determinism contract: for a fixed seed,
// every kernel and the full cross-validation runner produce bit-identical
// results for any UV_THREADS value. Each case computes the same quantity
// under a 1-thread and a 4-thread global pool and compares exactly (no
// tolerances). The suite is also registered with ctest a second time with
// UV_THREADS=4 in the environment to exercise the env-sized global pool.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "baselines/registry.h"
#include "eval/runner.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"
#include "util/buffer_pool.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace uv {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

// Runs fn under an n-thread global pool and restores a 4-thread pool after
// (so suite ordering never leaves a surprising global behind).
template <typename T>
T WithThreads(int n, const std::function<T()>& fn) {
  ThreadPool::SetGlobalThreads(n);
  T result = fn();
  ThreadPool::SetGlobalThreads(4);
  return result;
}

void ExpectBitIdentical(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0f);
}

TEST(ParallelDeterminismTest, GemmAllTransposeCombos) {
  // Sizes above the parallel threshold so the 4-thread run actually forks.
  const Tensor a = RandomTensor(111, 96, 1);
  const Tensor at = Transpose(a);
  const Tensor b = RandomTensor(96, 103, 2);
  const Tensor bt = Transpose(b);
  const Tensor c0 = RandomTensor(111, 103, 3);
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      std::function<Tensor()> run = [&] {
        Tensor c = c0;
        Gemm(ta, tb, 0.7f, ta ? at : a, tb ? bt : b, 0.3f, &c);
        return c;
      };
      ExpectBitIdentical(WithThreads(1, run), WithThreads(4, run));
    }
  }
}

TEST(ParallelDeterminismTest, Gemm512Cube) {
  const Tensor a = RandomTensor(512, 512, 11);
  const Tensor b = RandomTensor(512, 512, 12);
  std::function<Tensor()> run = [&] { return MatMul(a, b); };
  ExpectBitIdentical(WithThreads(1, run), WithThreads(4, run));
}

TEST(ParallelDeterminismTest, ElementwiseOps) {
  const Tensor x = RandomTensor(256, 200, 21);  // 51200 >= threshold
  const Tensor y = RandomTensor(256, 200, 22);
  std::function<Tensor()> axpy = [&] {
    Tensor out = y;
    Axpy(0.37f, x, &out);
    return out;
  };
  std::function<Tensor()> mul = [&] { return Mul(x, y); };
  std::function<Tensor()> scale = [&] { return Scale(x, -1.7f); };
  std::function<Tensor()> transpose = [&] { return Transpose(x); };
  ExpectBitIdentical(WithThreads(1, axpy), WithThreads(4, axpy));
  ExpectBitIdentical(WithThreads(1, mul), WithThreads(4, mul));
  ExpectBitIdentical(WithThreads(1, scale), WithThreads(4, scale));
  ExpectBitIdentical(WithThreads(1, transpose), WithThreads(4, transpose));
}

struct ConvResult {
  Tensor y, gx, gw, gb;
};

TEST(ParallelDeterminismTest, ConvForwardBackward) {
  const ag::Conv2dSpec spec{3, 10, 10, 6, 3, 1, 1};
  const int n = 10;  // Spans multiple image chunks.
  const Tensor x0 = RandomTensor(n, 3 * 10 * 10, 31);
  const Tensor w0 = RandomTensor(6, 3 * 9, 32);
  const Tensor b0 = RandomTensor(1, 6, 33);
  std::function<ConvResult()> run = [&] {
    auto x = ag::MakeParam(x0);
    auto w = ag::MakeParam(w0);
    auto b = ag::MakeParam(b0);
    auto y = ag::Conv2d(x, w, b, spec);
    ag::Backward(ag::SumAll(ag::Mul(y, y)));
    return ConvResult{y->value, x->grad, w->grad, b->grad};
  };
  const ConvResult serial = WithThreads(1, run);
  const ConvResult parallel = WithThreads(4, run);
  ExpectBitIdentical(serial.y, parallel.y);
  ExpectBitIdentical(serial.gx, parallel.gx);
  ExpectBitIdentical(serial.gw, parallel.gw);
  ExpectBitIdentical(serial.gb, parallel.gb);
}

struct GraphResult {
  Tensor y, galpha, gfeats;
};

TEST(ParallelDeterminismTest, SegmentOpsForwardBackward) {
  // A CSR-style segment layout with uneven segment sizes, including empty.
  const int num_segments = 300;
  auto offsets = std::make_shared<std::vector<int>>();
  offsets->push_back(0);
  Rng rng(41);
  for (int i = 0; i < num_segments; ++i) {
    offsets->push_back(offsets->back() + rng.UniformInt(7));
  }
  const int num_edges = offsets->back();
  const Tensor scores0 = RandomTensor(num_edges, 1, 42);
  const Tensor feats0 = RandomTensor(num_edges, 24, 43);
  std::shared_ptr<const std::vector<int>> off = offsets;
  std::function<GraphResult()> run = [&] {
    auto scores = ag::MakeParam(scores0);
    auto feats = ag::MakeParam(feats0);
    auto alpha = ag::SegmentSoftmax(scores, off);
    auto y = ag::SegmentWeightedSum(alpha, feats, off);
    ag::Backward(ag::SumAll(ag::Mul(y, y)));
    return GraphResult{y->value, scores->grad, feats->grad};
  };
  const GraphResult serial = WithThreads(1, run);
  const GraphResult parallel = WithThreads(4, run);
  ExpectBitIdentical(serial.y, parallel.y);
  ExpectBitIdentical(serial.galpha, parallel.galpha);
  ExpectBitIdentical(serial.gfeats, parallel.gfeats);
}

TEST(ParallelDeterminismTest, ScatterOpsForwardBackward) {
  const int num_rows = 900;
  const int num_segments = 40;
  auto ids = std::make_shared<std::vector<int>>(num_rows);
  auto gather = std::make_shared<std::vector<int>>();
  Rng rng(51);
  for (int r = 0; r < num_rows; ++r) {
    (*ids)[r] = rng.UniformInt(num_segments + 1) - 1;  // -1 = dropped.
  }
  for (int e = 0; e < 1200; ++e) gather->push_back(rng.UniformInt(num_rows));
  const Tensor x0 = RandomTensor(num_rows, 16, 52);
  std::function<GraphResult()> run = [&] {
    auto x = ag::MakeParam(x0);
    auto pooled = ag::SegmentSumByIds(x, ids, num_segments);
    auto gathered = ag::GatherRows(x, gather);
    ag::Backward(ag::SumAll(ag::Add(ag::SumAll(ag::Mul(pooled, pooled)),
                                    ag::SumAll(ag::Mul(gathered, gathered)))));
    return GraphResult{pooled->value, gathered->value, x->grad};
  };
  const GraphResult serial = WithThreads(1, run);
  const GraphResult parallel = WithThreads(4, run);
  ExpectBitIdentical(serial.y, parallel.y);
  ExpectBitIdentical(serial.galpha, parallel.galpha);
  ExpectBitIdentical(serial.gfeats, parallel.gfeats);
}

TEST(ParallelDeterminismTest, RunCrossValidationMetricsBitIdentical) {
  const urg::UrbanRegionGraph urg = uv::testing::TinyUrg();
  std::function<eval::RunStats()> run = [&] {
    eval::RunnerOptions options;
    options.num_folds = 3;
    options.num_runs = 2;
    options.block_size = 8;
    options.seed = 99;
    return eval::RunCrossValidation(
        urg,
        [](uint64_t seed) {
          baselines::TrainOptions train;
          train.epochs = 8;
          train.seed = seed;
          core::CmsfConfig cmsf;
          cmsf.hidden_dim = 16;
          cmsf.num_clusters = 8;
          return baselines::MakeDetector("GCN", train, cmsf);
        },
        options);
  };
  const eval::RunStats serial = WithThreads(1, run);
  const eval::RunStats parallel = WithThreads(4, run);
  EXPECT_EQ(serial.auc.mean, parallel.auc.mean);
  EXPECT_EQ(serial.auc.std, parallel.auc.std);
  EXPECT_EQ(serial.recall3.mean, parallel.recall3.mean);
  EXPECT_EQ(serial.precision3.mean, parallel.precision3.mean);
  EXPECT_EQ(serial.f13.mean, parallel.f13.mean);
  EXPECT_EQ(serial.recall5.mean, parallel.recall5.mean);
  EXPECT_EQ(serial.precision5.mean, parallel.precision5.mean);
  EXPECT_EQ(serial.f15.mean, parallel.f15.mean);
  EXPECT_EQ(serial.num_parameters, parallel.num_parameters);
  EXPECT_GT(parallel.num_parameters, 0);
  EXPECT_GT(parallel.wall_seconds, 0.0);
}

// The BufferPool must be invisible to numerics: a recycled slab only ever
// reaches code that either zeroes it (Tensor(r, c), EnsureGrad) or fully
// overwrites it (Tensor::Uninit call sites), so metrics are bit-identical
// across pool on/off crossed with every thread count. This is the
// end-to-end check that no Uninit call site reads unwritten bytes.
TEST(ParallelDeterminismTest, PoolOnOffTimesThreadsMetricsBitIdentical) {
  const urg::UrbanRegionGraph urg = uv::testing::TinyUrg();
  std::function<eval::RunStats()> run = [&] {
    eval::RunnerOptions options;
    options.num_folds = 3;
    options.num_runs = 1;
    options.block_size = 8;
    options.seed = 77;
    return eval::RunCrossValidation(
        urg,
        [](uint64_t seed) {
          baselines::TrainOptions train;
          train.epochs = 6;
          train.seed = seed;
          core::CmsfConfig cmsf;
          cmsf.hidden_dim = 16;
          cmsf.num_clusters = 8;
          return baselines::MakeDetector("CMSF", train, cmsf);
        },
        options);
  };
  const bool was_enabled = BufferPool::Enabled();
  std::vector<eval::RunStats> results;
  for (const bool pool_on : {true, false}) {
    BufferPool::SetEnabled(pool_on);
    for (const int threads : {1, 4}) {
      results.push_back(WithThreads(threads, run));
    }
  }
  BufferPool::SetEnabled(was_enabled);
  const eval::RunStats& ref = results.front();
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(ref.auc.mean, results[i].auc.mean) << "config " << i;
    EXPECT_EQ(ref.auc.std, results[i].auc.std) << "config " << i;
    EXPECT_EQ(ref.f13.mean, results[i].f13.mean) << "config " << i;
    EXPECT_EQ(ref.f15.mean, results[i].f15.mean) << "config " << i;
    EXPECT_EQ(ref.recall3.mean, results[i].recall3.mean) << "config " << i;
    EXPECT_EQ(ref.precision3.mean, results[i].precision3.mean)
        << "config " << i;
  }
}

// Kernel-level pool parity: the same forward/backward graph produces
// bit-identical tensors with recycling on and off (dirty slabs included —
// the first pool-on pass leaves used slabs behind for the second).
TEST(ParallelDeterminismTest, KernelResultsPoolOnOffBitIdentical) {
  const ag::Conv2dSpec spec{3, 10, 10, 6, 3, 1, 1};
  const Tensor x0 = RandomTensor(10, 3 * 10 * 10, 61);
  const Tensor w0 = RandomTensor(6, 3 * 9, 62);
  const Tensor b0 = RandomTensor(1, 6, 63);
  auto run = [&] {
    auto x = ag::MakeParam(x0);
    auto w = ag::MakeParam(w0);
    auto b = ag::MakeParam(b0);
    auto y = ag::Conv2d(x, w, b, spec);
    ag::Backward(ag::SumAll(ag::Mul(y, y)));
    return ConvResult{y->value, x->grad, w->grad, b->grad};
  };
  const bool was_enabled = BufferPool::Enabled();
  BufferPool::SetEnabled(true);
  const ConvResult warm = run();  // Dirties pool slabs.
  const ConvResult pooled = run();
  BufferPool::SetEnabled(false);
  const ConvResult unpooled = run();
  BufferPool::SetEnabled(was_enabled);
  ExpectBitIdentical(warm.y, pooled.y);
  ExpectBitIdentical(pooled.y, unpooled.y);
  ExpectBitIdentical(pooled.gx, unpooled.gx);
  ExpectBitIdentical(pooled.gw, unpooled.gw);
  ExpectBitIdentical(pooled.gb, unpooled.gb);
}

}  // namespace
}  // namespace uv
