// Exercises the BufferPool recycling contract: bucket-rounded reuse, the
// explicit-zeroing split between Tensor(r, c) and Tensor::Uninit, slab
// migration across threads, the UV_POOL=0 escape hatch, in-place
// ResizeUninit, and the allocation counters.

#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "tensor/tensor.h"

namespace uv {
namespace {

// Every case starts from an empty, enabled pool with zeroed counters and
// restores the process-wide enabled state afterwards, so the suite composes
// with the UV_POOL env override and with any test ordering.
class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = BufferPool::Enabled();
    BufferPool::SetEnabled(true);
    BufferPool::Trim();
    BufferPool::ResetStats();
  }
  void TearDown() override {
    BufferPool::Trim();
    BufferPool::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(BufferPoolTest, BucketCapacityRounding) {
  EXPECT_EQ(BufferPool::BucketCapacity(0), 0u);
  EXPECT_EQ(BufferPool::BucketCapacity(1), 256u);
  EXPECT_EQ(BufferPool::BucketCapacity(256), 256u);
  EXPECT_EQ(BufferPool::BucketCapacity(257), 512u);
  EXPECT_EQ(BufferPool::BucketCapacity(4096), 4096u);
  EXPECT_EQ(BufferPool::BucketCapacity(4097), 8192u);
  // Jumbo requests (beyond the largest bucket) pass through unrounded.
  const size_t jumbo = (size_t{1} << 30) + 1;
  EXPECT_EQ(BufferPool::BucketCapacity(jumbo), jumbo);
}

TEST_F(BufferPoolTest, ReleasedSlabIsReusedForSameBucket) {
  void* first = BufferPool::Acquire(1000);
  ASSERT_NE(first, nullptr);
  BufferPool::Release(first, 1000);
  // 900 rounds to the same 1024-byte bucket as 1000 → same slab comes back.
  void* second = BufferPool::Acquire(900);
  EXPECT_EQ(second, first);
  BufferPool::Release(second, 900);

  const MemStatsSnapshot s = BufferPool::Stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.heap_allocs, 1u);
  EXPECT_EQ(s.releases, 2u);
}

TEST_F(BufferPoolTest, DifferentBucketMisses) {
  void* small = BufferPool::Acquire(300);
  BufferPool::Release(small, 300);
  // 5000 rounds to 8192, not 512 — the cached slab must not be handed out.
  void* large = BufferPool::Acquire(5000);
  EXPECT_NE(large, small);
  BufferPool::Release(large, 5000);
  EXPECT_EQ(BufferPool::Stats().hits, 0u);
}

TEST_F(BufferPoolTest, ZeroFilledTensorIsZeroOnRecycledSlab) {
  // Dirty a slab through one tensor, then construct a zero-contract tensor
  // of the same bucket: it must read all zeros even though Acquire itself
  // never clears bytes.
  const int rows = 16, cols = 16;
  {
    Tensor dirty = Tensor::Uninit(rows, cols);
    for (int64_t i = 0; i < dirty.size(); ++i) dirty[i] = -7.5f;
  }
  Tensor zeroed(rows, cols);
  for (int64_t i = 0; i < zeroed.size(); ++i) {
    ASSERT_EQ(zeroed[i], 0.0f) << "element " << i;
  }
}

TEST_F(BufferPoolTest, UninitTensorHasShapeButNoContract) {
  Tensor t = Tensor::Uninit(7, 9);
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 9);
  ASSERT_NE(t.data(), nullptr);
  // Contents are unspecified; the only requirement is that writes stick.
  t.Fill(3.0f);
  EXPECT_EQ(t.at(6, 8), 3.0f);
}

TEST_F(BufferPoolTest, ResizeUninitReusesSlabWithinBucket) {
  Tensor t = Tensor::Uninit(10, 10);  // 400 B → 512-byte bucket.
  const float* slab = t.data();
  t.ResizeUninit(8, 16);  // 512 B → same bucket, same slab.
  EXPECT_EQ(t.data(), slab);
  EXPECT_EQ(t.rows(), 8);
  EXPECT_EQ(t.cols(), 16);
  t.ResizeUninit(100, 100);  // 40 KB → different bucket, new slab.
  EXPECT_EQ(t.rows(), 100);
  EXPECT_EQ(t.cols(), 100);
  t.Fill(1.0f);
  EXPECT_EQ(t.at(99, 99), 1.0f);
}

TEST_F(BufferPoolTest, SlabsMigrateAcrossThreads) {
  // Release on a worker thread, acquire on this thread: the slab must be
  // reachable (via the global pool) rather than stranded or double-freed.
  constexpr size_t kBytes = 1 << 20;  // Above the TLS cap path's noise.
  std::vector<void*> released;
  std::thread producer([&] {
    // Overflow the per-thread cache so slabs provably spill to the global
    // pool, then let thread teardown flush the rest.
    for (int i = 0; i < 12; ++i) {
      released.push_back(BufferPool::Acquire(kBytes));
    }
    for (void* p : released) BufferPool::Release(p, kBytes);
  });
  producer.join();

  BufferPool::ResetStats();
  std::vector<void*> got;
  for (int i = 0; i < 12; ++i) got.push_back(BufferPool::Acquire(kBytes));
  EXPECT_EQ(BufferPool::Stats().hits, 12u);
  for (void* p : got) {
    EXPECT_NE(std::find(released.begin(), released.end(), p),
              released.end());
    BufferPool::Release(p, kBytes);
  }
}

TEST_F(BufferPoolTest, DisabledPoolBypassesCaches) {
  BufferPool::SetEnabled(false);
  BufferPool::ResetStats();
  void* a = BufferPool::Acquire(1024);
  BufferPool::Release(a, 1024);
  void* b = BufferPool::Acquire(1024);
  BufferPool::Release(b, 1024);
  const MemStatsSnapshot s = BufferPool::Stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.heap_allocs, 2u);
  // Capacities stay bucket-rounded in both modes, so tensors built with the
  // pool off interoperate with a later re-enable.
  EXPECT_EQ(BufferPool::BucketCapacity(1000), 1024u);
  BufferPool::SetEnabled(true);
  Tensor t(33, 17);
  EXPECT_EQ(t.Sum(), 0.0);
}

TEST_F(BufferPoolTest, TensorResultsIdenticalPoolOnAndOff) {
  // The zeroing contract, not the allocator, defines tensor contents:
  // the same construction sequence yields bit-identical values either way.
  auto build = [] {
    Tensor a(5, 6);
    for (int64_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i) * 0.5f;
    Tensor b = a;       // copy
    Tensor c(5, 6);     // zeros
    for (int64_t i = 0; i < c.size(); ++i) c[i] = b[i] - a[i];
    return c;
  };
  const Tensor with_pool = build();
  BufferPool::SetEnabled(false);
  const Tensor without_pool = build();
  BufferPool::SetEnabled(true);
  ASSERT_TRUE(with_pool.SameShape(without_pool));
  EXPECT_EQ(std::memcmp(with_pool.data(), without_pool.data(),
                        static_cast<size_t>(with_pool.size()) * sizeof(float)),
            0);
}

TEST_F(BufferPoolTest, StatsCountersBalance) {
  {
    Tensor a(64, 64);
    Tensor b = Tensor::Uninit(32, 32);
    b.Fill(2.0f);
  }
  const MemStatsSnapshot s = BufferPool::Stats();
  EXPECT_EQ(s.acquires, s.releases);  // Every tensor above was destroyed.
  EXPECT_GE(s.acquires, 2u);
  EXPECT_GT(s.heap_bytes, 0u);
  BufferPool::ResetStats();
  const MemStatsSnapshot z = BufferPool::Stats();
  EXPECT_EQ(z.acquires, 0u);
  EXPECT_EQ(z.heap_allocs, 0u);
}

}  // namespace
}  // namespace uv
