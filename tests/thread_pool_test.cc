#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uv {
namespace {

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.RunChunks(5, [&](int64_t c) { order.push_back(static_cast<int>(c)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.RunChunks(kChunks, [&](int64_t c) { hits[c].fetch_add(1); });
  for (int c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1) << c;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.RunChunks(17, [&](int64_t c) { sum.fetch_add(c); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.RunChunks(8, [&](int64_t outer) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // A nested region from inside a chunk must not deadlock; it executes
    // inline on the current thread.
    pool.RunChunks(8, [&](int64_t inner) {
      hits[outer * 8 + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.RunChunks(100,
                     [&](int64_t c) {
                       if (c == 37) throw std::runtime_error("chunk failed");
                     }),
      std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<int> ok{0};
  pool.RunChunks(10, [&](int64_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool::SetGlobalThreads(4);
  constexpr int64_t kN = 100001;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 1024, [&](int64_t lo, int64_t hi) {
    ASSERT_LT(lo, hi);
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, RespectsNonZeroBegin) {
  ThreadPool::SetGlobalThreads(4);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(10, 40, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 40) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  ThreadPool::SetGlobalThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 4, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(0, 3, 64, [&](int64_t lo, int64_t hi) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 3);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, GlobalThreadCountIsAdjustable) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
  ThreadPool::SetGlobalThreads(4);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 4);
}

TEST(ThreadPoolTest, EnvThreadCountFloorsAtOne) {
  // NumThreadsFromEnv never returns < 1 regardless of the environment.
  EXPECT_GE(ThreadPool::NumThreadsFromEnv(), 1);
}

}  // namespace
}  // namespace uv
