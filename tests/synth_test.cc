#include <gtest/gtest.h>

#include <set>
#include <cmath>

#include "synth/city.h"
#include "synth/image_renderer.h"
#include "synth/road_generator.h"
#include "synth/poi_types.h"
#include "test_helpers.h"

namespace uv::synth {
namespace {

City MakeTestCity(uint64_t seed = 11) {
  return GenerateCity(uv::testing::TinyCityConfig(seed));
}

TEST(PoiTypesTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (int c = 0; c < kNumPoiCategories; ++c) {
    names.insert(PoiCategoryName(static_cast<PoiCategory>(c)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumPoiCategories));
}

TEST(PoiTypesTest, HostCategoryMapping) {
  EXPECT_EQ(HostCategory(RadiusType::kHospital), PoiCategory::kMedicine);
  EXPECT_EQ(HostCategory(RadiusType::kBusStop),
            PoiCategory::kTransportationFacility);
  EXPECT_EQ(HostCategory(RadiusType::kShop), PoiCategory::kShoppingPlace);
}

TEST(PoiTypesTest, FacilityMapping) {
  EXPECT_EQ(FacilityOf(RadiusType::kHospital), FacilityType::kMedicalService);
  EXPECT_EQ(FacilityOf(RadiusType::kAirport), FacilityType::kNone);
  EXPECT_EQ(FacilityOfCategory(PoiCategory::kFoodService),
            FacilityType::kFoodService);
  EXPECT_EQ(FacilityOfCategory(PoiCategory::kHotel), FacilityType::kNone);
}

TEST(ArchetypeTest, ProfilesAreSane) {
  for (int a = 0; a < kNumArchetypes; ++a) {
    const auto& prof = GetProfile(static_cast<Archetype>(a));
    EXPECT_GT(prof.poi_intensity, 0.0);
    EXPECT_GE(prof.building_density, 0.0f);
    EXPECT_LE(prof.building_density, 1.0f);
    EXPECT_GE(prof.regularity, 0.0f);
    EXPECT_LE(prof.regularity, 1.0f);
    double total = 0.0;
    for (double w : prof.category_weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(ArchetypeTest, UrbanVillageSignatureVsFormal) {
  const auto& uv = GetProfile(Archetype::kUrbanVillage);
  const auto& formal = GetProfile(Archetype::kFormalResidential);
  // Denser, smaller, more chaotic buildings.
  EXPECT_GT(uv.building_density, formal.building_density);
  EXPECT_LT(uv.building_size, formal.building_size);
  EXPECT_LT(uv.regularity, formal.regularity);
  // Fewer hospitals/schools per cell, more food stalls.
  EXPECT_LT(uv.radius_rate[static_cast<int>(RadiusType::kHospital)],
            formal.radius_rate[static_cast<int>(RadiusType::kHospital)]);
  EXPECT_GT(uv.category_weights[static_cast<int>(PoiCategory::kFoodService)],
            formal.category_weights[static_cast<int>(PoiCategory::kFoodService)]);
}

TEST(CityConfigTest, PresetsScaleWithArea) {
  auto small = ShenzhenLike(0.01, 1);
  auto large = ShenzhenLike(0.04, 1);
  EXPECT_LT(small.num_regions(), large.num_regions());
  EXPECT_LE(small.labeled_uv_target, large.labeled_uv_target);
  // Area scales linearly with `scale` (quadratic in the linear dims).
  EXPECT_NEAR(static_cast<double>(large.num_regions()) / small.num_regions(),
              4.0, 1.2);
}

TEST(CityConfigTest, PresetClassRatiosFollowTableI) {
  // Shenzhen 1:23, Fuzhou 1:13, Beijing 1:53 (approximately).
  auto sz = ShenzhenLike(0.05, 1);
  auto fz = FuzhouLike(0.05, 1);
  auto bj = BeijingLike(0.05, 1);
  EXPECT_NEAR(static_cast<double>(sz.labeled_nonuv_target) /
                  sz.labeled_uv_target, 23.0, 4.0);
  EXPECT_NEAR(static_cast<double>(fz.labeled_nonuv_target) /
                  fz.labeled_uv_target, 13.0, 3.0);
  EXPECT_NEAR(static_cast<double>(bj.labeled_nonuv_target) /
                  bj.labeled_uv_target, 53.0, 10.0);
}

TEST(CityGeneratorTest, DeterministicForSeed) {
  City a = MakeTestCity(5);
  City b = MakeTestCity(5);
  EXPECT_EQ(a.pois.size(), b.pois.size());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.is_uv, b.is_uv);
  ASSERT_EQ(a.images->size(), b.images->size());
  EXPECT_EQ((*a.images)[100], (*b.images)[100]);
}

TEST(CityGeneratorTest, SeedsChangeTheCity) {
  City a = MakeTestCity(5);
  City b = MakeTestCity(6);
  EXPECT_NE(a.labels, b.labels);
}

TEST(CityGeneratorTest, ShapesConsistent) {
  City city = MakeTestCity();
  const int n = city.num_regions();
  EXPECT_EQ(static_cast<int>(city.archetypes.size()), n);
  EXPECT_EQ(static_cast<int>(city.district.size()), n);
  EXPECT_EQ(static_cast<int>(city.labels.size()), n);
  EXPECT_EQ(static_cast<int>(city.is_uv.size()), n);
  EXPECT_EQ(static_cast<int>(city.pois_by_region.size()), n);
  ASSERT_NE(city.images, nullptr);
  EXPECT_EQ(city.images->rows(), n);
  EXPECT_EQ(city.images->cols(), 3 * 16 * 16);
}

TEST(CityGeneratorTest, OverlapRuleMatchesGroundTruth) {
  City city = MakeTestCity();
  for (int i = 0; i < city.num_regions(); ++i) {
    EXPECT_EQ(city.is_uv[i] != 0, city.uv_overlap[i] > 0.2f) << "region " << i;
    if (city.is_uv[i]) {
      EXPECT_EQ(city.archetypes[i], Archetype::kUrbanVillage);
    }
  }
}

TEST(CityGeneratorTest, LabelsConsistentWithGroundTruth) {
  City city = MakeTestCity();
  int uv_labels = 0, nonuv_labels = 0;
  for (int i = 0; i < city.num_regions(); ++i) {
    if (city.labels[i] == 1) {
      EXPECT_TRUE(city.is_uv[i]) << "labeled UV must be a true UV";
      ++uv_labels;
    } else if (city.labels[i] == 0) {
      EXPECT_FALSE(city.is_uv[i]) << "labeled non-UV must not be a true UV";
      ++nonuv_labels;
    }
  }
  EXPECT_EQ(uv_labels, city.NumLabeledUv());
  EXPECT_EQ(nonuv_labels, city.NumLabeledNonUv());
  EXPECT_GT(uv_labels, 0);
  EXPECT_LE(uv_labels, city.config.labeled_uv_target);
  EXPECT_LE(nonuv_labels, city.config.labeled_nonuv_target);
  // Labels are scarce relative to the whole city.
  EXPECT_LT(uv_labels + nonuv_labels, city.num_regions());
}

TEST(CityGeneratorTest, SomeUvsRemainUndiscovered) {
  // The detection task needs true UVs beyond the labeled ones.
  City city = MakeTestCity();
  EXPECT_GT(city.NumTrueUv(), city.NumLabeledUv());
}

TEST(CityGeneratorTest, PoisLieInTheirRegion) {
  City city = MakeTestCity();
  for (int id = 0; id < city.num_regions(); ++id) {
    for (int pid : city.pois_by_region[id]) {
      const Poi& poi = city.pois[pid];
      EXPECT_EQ(city.grid.RegionAt(poi.x, poi.y), id);
    }
  }
}

TEST(CityGeneratorTest, DistrictIdsInRange) {
  City city = MakeTestCity();
  for (int d : city.district) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, city.config.num_districts);
  }
}

TEST(CityGeneratorTest, ImagesInUnitRange) {
  City city = MakeTestCity();
  for (int64_t i = 0; i < city.images->size(); ++i) {
    ASSERT_GE((*city.images)[i], 0.0f);
    ASSERT_LE((*city.images)[i], 1.0f);
  }
}

TEST(CityGeneratorTest, SkipImagesFlag) {
  auto config = uv::testing::TinyCityConfig();
  config.generate_images = false;
  City city = GenerateCity(config);
  EXPECT_EQ(city.images, nullptr);
}

TEST(CityGeneratorTest, RoadNetworkNonTrivial) {
  City city = MakeTestCity();
  EXPECT_GT(city.roads.num_intersections(), 10);
  EXPECT_GT(city.roads.num_segments(), 10);
}

TEST(CityGeneratorTest, UvCellsFormBlobs) {
  // Each true-UV cell has at least one UV 4-neighbour in all but
  // pathological cases (planted as contiguous blobs of >= 3 cells).
  City city = MakeTestCity();
  int isolated = 0, total = 0;
  for (int id = 0; id < city.num_regions(); ++id) {
    if (!city.is_uv[id]) continue;
    ++total;
    const int r = city.grid.RowOf(id), c = city.grid.ColOf(id);
    bool has_uv_neighbor = false;
    const int drs[] = {-1, 1, 0, 0}, dcs[] = {0, 0, -1, 1};
    for (int k = 0; k < 4; ++k) {
      if (city.grid.InBounds(r + drs[k], c + dcs[k]) &&
          city.is_uv[city.grid.RegionId(r + drs[k], c + dcs[k])]) {
        has_uv_neighbor = true;
      }
    }
    isolated += !has_uv_neighbor;
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(isolated) / total, 0.2);
}

TEST(RoadGeneratorTest, ArterialsSpanTheGridAndCarryNodes) {
  auto config = uv::testing::TinyCityConfig();
  graph::GridSpec grid{config.height, config.width, config.cell_meters};
  std::vector<float> development(grid.num_regions(), 0.5f);
  Rng rng(7);
  auto result = GenerateRoadNetwork(config, grid, development, &rng);
  // At least one horizontal and one vertical arterial.
  int h_cells = 0, v_cells = 0;
  for (int id = 0; id < grid.num_regions(); ++id) {
    h_cells += result.has_arterial_h[id];
    v_cells += result.has_arterial_v[id];
  }
  EXPECT_GE(h_cells, grid.width);   // A full row at minimum.
  EXPECT_GE(v_cells, grid.height);  // A full column at minimum.
  // Arterial rows are complete spans.
  EXPECT_EQ(h_cells % grid.width, 0);
  EXPECT_EQ(v_cells % grid.height, 0);
  // The network is non-trivial and intersections sit inside the grid.
  EXPECT_GT(result.network.num_intersections(), 0);
  for (int i = 0; i < result.network.num_intersections(); ++i) {
    const auto& node = result.network.intersection(i);
    EXPECT_GE(node.x, 0.0);
    EXPECT_LE(node.x, grid.width * grid.cell_meters);
    EXPECT_GE(node.y, 0.0);
    EXPECT_LE(node.y, grid.height * grid.cell_meters);
  }
}

TEST(RoadGeneratorTest, DevelopmentDensifiesLocalStreets) {
  auto config = uv::testing::TinyCityConfig();
  graph::GridSpec grid{config.height, config.width, config.cell_meters};
  Rng rng1(7), rng2(7);
  std::vector<float> empty(grid.num_regions(), 0.0f);
  std::vector<float> dense(grid.num_regions(), 1.0f);
  auto sparse_net = GenerateRoadNetwork(config, grid, empty, &rng1);
  auto dense_net = GenerateRoadNetwork(config, grid, dense, &rng2);
  EXPECT_GT(dense_net.network.num_intersections(),
            sparse_net.network.num_intersections());
}

TEST(MixProfilesTest, EndpointsAndMidpoint) {
  const auto& a = GetProfile(Archetype::kFormalResidential);
  const auto& b = GetProfile(Archetype::kUrbanVillage);
  const auto at0 = MixProfiles(a, b, 0.0f);
  EXPECT_DOUBLE_EQ(at0.poi_intensity, a.poi_intensity);
  EXPECT_FLOAT_EQ(at0.regularity, a.regularity);
  const auto at1 = MixProfiles(a, b, 1.0f);
  EXPECT_DOUBLE_EQ(at1.poi_intensity, b.poi_intensity);
  const auto mid = MixProfiles(a, b, 0.5f);
  EXPECT_NEAR(mid.building_density,
              0.5 * (a.building_density + b.building_density), 1e-6);
  EXPECT_NEAR(mid.category_weights[0],
              0.5 * (a.category_weights[0] + b.category_weights[0]), 1e-9);
  EXPECT_NEAR(mid.radius_rate[0],
              0.5 * (a.radius_rate[0] + b.radius_rate[0]), 1e-9);
}

TEST(CityGeneratorTest, InformalityAssignedToUvAndOldTownOnly) {
  City city = MakeTestCity();
  int uv_with_style = 0, uv_total = 0;
  for (int id = 0; id < city.num_regions(); ++id) {
    const Archetype a = city.archetypes[id];
    if (a == Archetype::kUrbanVillage) {
      ++uv_total;
      uv_with_style += (city.informality[id] > 0.0f);
      EXPECT_LE(city.informality[id], 1.0f);
    } else if (a != Archetype::kOldTown) {
      EXPECT_FLOAT_EQ(city.informality[id], 0.0f) << "region " << id;
    }
  }
  ASSERT_GT(uv_total, 0);
  EXPECT_EQ(uv_with_style, uv_total);
}

TEST(CityGeneratorTest, InformalityRangeRespectsConfig) {
  auto config = uv::testing::TinyCityConfig();
  config.uv_informality_min = 0.9;
  City city = GenerateCity(config);
  for (int id = 0; id < city.num_regions(); ++id) {
    if (city.archetypes[id] == Archetype::kUrbanVillage) {
      EXPECT_GE(city.informality[id], 0.9f);
    }
  }
}

TEST(CityGeneratorTest, OldTownConfusersExistAndAreNonUv) {
  City city = MakeTestCity();
  int old_town = 0, labeled_old_town = 0;
  for (int id = 0; id < city.num_regions(); ++id) {
    if (city.archetypes[id] == Archetype::kOldTown) {
      ++old_town;
      EXPECT_FALSE(city.is_uv[id]);
      EXPECT_NE(city.labels[id], 1);
      labeled_old_town += (city.labels[id] == 0);
    }
  }
  EXPECT_GT(old_town, 0) << "confuser archetype should be planted";
  EXPECT_GT(labeled_old_town, 0)
      << "some confusers must enter the labeled non-UV set";
}

// ----------------------------- Renderer -------------------------------------

TEST(ImageRendererTest, OutputInRangeAndDeterministic) {
  const float tint[3] = {0.0f, 0.0f, 0.0f};
  std::vector<float> a(3 * 24 * 24), b(3 * 24 * 24);
  Rng r1(3), r2(3);
  RenderTile(GetProfile(Archetype::kUrbanVillage), tint, true, false, 24, &r1,
             a.data());
  RenderTile(GetProfile(Archetype::kUrbanVillage), tint, true, false, 24, &r2,
             b.data());
  EXPECT_EQ(a, b);
  for (float v : a) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

TEST(ImageRendererTest, ArchetypesLookDifferent) {
  const float tint[3] = {0.0f, 0.0f, 0.0f};
  std::vector<float> uv(3 * 24 * 24), green(3 * 24 * 24);
  Rng r1(3), r2(3);
  RenderTile(GetProfile(Archetype::kUrbanVillage), tint, false, false, 24,
             &r1, uv.data());
  RenderTile(GetProfile(Archetype::kGreenland), tint, false, false, 24, &r2,
             green.data());
  double diff = 0.0;
  for (size_t i = 0; i < uv.size(); ++i) diff += std::fabs(uv[i] - green[i]);
  EXPECT_GT(diff / uv.size(), 0.05);
}

}  // namespace
}  // namespace uv::synth
