#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace uv {
namespace {

// --------------------------- Status ---------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad K");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad K");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad K");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// ----------------------------- Rng -----------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, UniformIntRangeAndCoverage) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.02);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(37);
  for (int rep = 0; rep < 50; ++rep) {
    auto d = rng.Dirichlet({0.5, 1.0, 2.0, 4.0});
    double total = 0.0;
    for (double x : d) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(41);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.06) << "shape=" << shape;
  }
}

TEST(RngTest, PoissonMean) {
  Rng rng(43);
  for (double mean : {0.3, 2.0, 12.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05)) << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(99), b(99);
  Rng child_a = a.Fork();
  Rng child_b = b.Fork();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng a(99);
  Rng child = a.Fork();
  Rng parent_replay(99);
  parent_replay.Fork();  // Advance identically to `a`.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (child.NextU64() == parent_replay.NextU64());
  }
  EXPECT_LT(same, 2) << "child stream must differ from the parent stream";
}

// ---------------------------- Table ----------------------------------------

TEST(TableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(TableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.8374, 3), "0.837");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(TableTest, FormatMeanStdPaperStyle) {
  EXPECT_EQ(FormatMeanStd(0.837, 0.001), "0.837 (.001)");
  EXPECT_EQ(FormatMeanStd(0.5, 0.012), "0.500 (.012)");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double x = 0;
  for (int i = 0; i < 1000000; ++i) x += i;
  (void)x;
  EXPECT_GE(t.Seconds(), 0.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

}  // namespace
}  // namespace uv
