#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "util/rng.h"

namespace uv::ag {
namespace {

// Quadratic bowl: loss = sum((x - target)^2); both optimizers must converge.
double Quadratic(Optimizer* opt, const VarPtr& x, const Tensor& target,
                 int steps) {
  double last = 0.0;
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGradients();
    auto diff = Sub(x, MakeConst(target));
    auto loss = SumAll(Mul(diff, diff));
    last = loss->value.at(0, 0);
    Backward(loss);
    opt->Step();
  }
  return last;
}

TEST(AdamTest, ConvergesOnQuadratic) {
  auto x = MakeParam(Tensor(2, 3));
  Tensor target(2, 3, {1, -2, 3, -4, 5, -6});
  AdamOptimizer::Options options;
  options.learning_rate = 0.1;
  AdamOptimizer opt({x}, options);
  const double final_loss = Quadratic(&opt, x, target, 300);
  EXPECT_LT(final_loss, 1e-3);
  EXPECT_NEAR(x->value.at(1, 2), -6.0f, 0.05f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  auto x = MakeParam(Tensor(1, 4));
  Tensor target(1, 4, {2, 2, -2, -2});
  SgdOptimizer opt({x}, 0.05);
  const double final_loss = Quadratic(&opt, x, target, 200);
  EXPECT_LT(final_loss, 1e-4);
}

TEST(AdamTest, LearningRateDecay) {
  AdamOptimizer::Options options;
  options.learning_rate = 1.0;
  AdamOptimizer opt({MakeParam(Tensor(1, 1))}, options);
  opt.DecayLearningRate(0.5);
  opt.DecayLearningRate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.25);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  auto used = MakeParam(Tensor(1, 1, {1.0f}));
  auto unused = MakeParam(Tensor(1, 1, {5.0f}));
  AdamOptimizer::Options options;
  options.learning_rate = 0.5;
  AdamOptimizer opt({used, unused}, options);
  opt.ZeroGradients();
  Backward(SumAll(Mul(used, used)));
  opt.Step();
  EXPECT_NE(used->value.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(unused->value.at(0, 0), 5.0f);
}

TEST(AdamTest, ClipNormBoundsUpdate) {
  auto x = MakeParam(Tensor(1, 1, {0.0f}));
  AdamOptimizer::Options options;
  options.learning_rate = 0.1;
  options.clip_norm = 1e-3;  // Extremely tight clip.
  AdamOptimizer clipped({x}, options);
  clipped.ZeroGradients();
  // Huge gradient.
  auto loss = SumAll(ScalarMul(x, 1e6f));
  Backward(loss);
  clipped.Step();
  // Adam normalizes by sqrt(v), so the step magnitude stays ~lr; with
  // clipping the first-step estimate is unchanged in direction but finite.
  EXPECT_TRUE(std::isfinite(x->value.at(0, 0)));
  EXPECT_LT(std::fabs(x->value.at(0, 0)), 0.2f);
}

TEST(AdamTest, NumParameters) {
  AdamOptimizer::Options options;
  AdamOptimizer opt({MakeParam(Tensor(3, 4)), MakeParam(Tensor(1, 5))},
                    options);
  EXPECT_EQ(opt.NumParameters(), 17);
}

TEST(OptimizerTest, ZeroGradientsClearsAll) {
  auto x = MakeParam(Tensor(2, 2, {1, 1, 1, 1}));
  SgdOptimizer opt({x}, 0.1);
  Backward(SumAll(Mul(x, x)));
  EXPECT_GT(x->grad.Norm(), 0.0);
  opt.ZeroGradients();
  EXPECT_DOUBLE_EQ(x->grad.Norm(), 0.0);
}

TEST(AdamTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    Tensor init(2, 2);
    init.RandomNormal(&rng, 1.0f);
    auto x = MakeParam(init);
    AdamOptimizer::Options options;
    options.learning_rate = 0.05;
    AdamOptimizer opt({x}, options);
    Tensor target(2, 2, {1, 2, 3, 4});
    Quadratic(&opt, x, target, 50);
    return x->value;
  };
  Tensor a = run(7), b = run(7);
  EXPECT_EQ(a.at(0, 0), b.at(0, 0));
  EXPECT_EQ(a.at(1, 1), b.at(1, 1));
}

}  // namespace
}  // namespace uv::ag
