#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "eval/runner.h"
#include "test_helpers.h"

namespace uv {
namespace {

// Full-pipeline tests: city generation -> URG -> cross-validated training
// and evaluation through the experiment runner, exactly the path the
// benchmark harness uses.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
  }

  static eval::DetectorFactory Factory(const std::string& name, int epochs) {
    return [name, epochs](uint64_t seed) {
      baselines::TrainOptions options;
      options.epochs = epochs;
      options.learning_rate = 5e-3;
      options.seed = seed;
      core::CmsfConfig cmsf;
      cmsf.hidden_dim = 16;
      cmsf.image_reduce_dim = 16;
      cmsf.num_clusters = 8;
      cmsf.classifier_hidden = 8;
      cmsf.context_dim = 4;
      cmsf.slave_epochs = 5;
      return baselines::MakeDetector(name, options, cmsf);
    };
  }

  static urg::UrbanRegionGraph* urg_;
};

urg::UrbanRegionGraph* IntegrationTest::urg_ = nullptr;

TEST_F(IntegrationTest, RunnerProducesCompleteStats) {
  eval::RunnerOptions options;
  options.num_folds = 3;
  options.num_runs = 1;
  options.block_size = 8;
  auto stats =
      eval::RunCrossValidation(*urg_, Factory("MLP", 30), options);
  EXPECT_GT(stats.auc.mean, 0.5);
  EXPECT_GE(stats.auc.std, 0.0);
  EXPECT_GE(stats.recall3.mean, 0.0);
  EXPECT_LE(stats.recall3.mean, 1.0);
  EXPECT_GE(stats.precision5.mean, 0.0);
  EXPECT_GT(stats.num_parameters, 0);
  EXPECT_GT(stats.train_seconds_per_epoch, 0.0);
}

TEST_F(IntegrationTest, MultipleRunsReduceToMoreSamples) {
  eval::RunnerOptions one;
  one.num_folds = 2;
  one.num_runs = 1;
  one.block_size = 8;
  eval::RunnerOptions two = one;
  two.num_runs = 2;
  auto s1 = eval::RunCrossValidation(*urg_, Factory("MLP", 10), one);
  auto s2 = eval::RunCrossValidation(*urg_, Factory("MLP", 10), two);
  // Same protocol, more samples: both valid; just check determinism of the
  // one-run case across invocations.
  auto s1b = eval::RunCrossValidation(*urg_, Factory("MLP", 10), one);
  EXPECT_DOUBLE_EQ(s1.auc.mean, s1b.auc.mean);
  EXPECT_GE(s2.auc.std, 0.0);
}

TEST_F(IntegrationTest, LabelRatioMaskLowersTrainingData) {
  eval::RunnerOptions full;
  full.num_folds = 2;
  full.block_size = 8;
  eval::RunnerOptions masked = full;
  masked.label_ratio = 0.25;
  // Both must complete and produce sane metrics.
  auto sf = eval::RunCrossValidation(*urg_, Factory("MLP", 20), full);
  auto sm = eval::RunCrossValidation(*urg_, Factory("MLP", 20), masked);
  EXPECT_GE(sf.auc.mean, 0.4);
  EXPECT_GE(sm.auc.mean, 0.4);
}

TEST_F(IntegrationTest, CmsfThroughRunner) {
  // CMSF needs ~80 epochs to converge on the tiny city (see the epoch
  // probes in the repo history); the runner path must match direct use.
  eval::RunnerOptions options;
  options.num_folds = 2;
  options.block_size = 8;
  auto stats = eval::RunCrossValidation(*urg_, Factory("CMSF", 90), options);
  EXPECT_GT(stats.auc.mean, 0.6);
  EXPECT_GT(stats.num_parameters, 0);
}

TEST_F(IntegrationTest, AblationOrderingIsComputable) {
  // The Fig. 5(a) harness path: all variants must run under the same
  // protocol and yield well-formed metrics. (Quality orderings need full
  // bench-scale training; this checks the plumbing, not the ordering.)
  eval::RunnerOptions options;
  options.num_folds = 2;
  options.block_size = 8;
  for (const char* name : {"CMSF", "CMSF-M", "CMSF-G", "CMSF-H"}) {
    auto stats = eval::RunCrossValidation(*urg_, Factory(name, 15), options);
    EXPECT_GE(stats.auc.mean, 0.0) << name;
    EXPECT_LE(stats.auc.mean, 1.0) << name;
    EXPECT_GE(stats.f13.mean, 0.0) << name;
    EXPECT_LE(stats.f13.mean, 1.0) << name;
  }
}

}  // namespace
}  // namespace uv
