#ifndef UV_TESTS_TEST_HELPERS_H_
#define UV_TESTS_TEST_HELPERS_H_

#include "synth/city.h"
#include "urg/urban_region_graph.h"

namespace uv::testing {

// A deterministic miniature city config that generates in milliseconds,
// with enough labeled UVs for 3-fold CV. Shared across the test suites.
inline synth::CityConfig TinyCityConfig(uint64_t seed = 11) {
  synth::CityConfig c;
  c.name = "TestVille";
  c.seed = seed;
  c.height = 24;
  c.width = 24;
  c.num_centers = 1;
  c.num_districts = 2;
  c.industrial_patches = 1.0;
  c.green_patches = 1.0;
  c.num_uv_blobs = 8;
  c.uv_blob_min_cells = 3;
  c.uv_blob_max_cells = 8;
  // Tests want a learnable signal in few epochs: villages are clearly
  // informal in the test city.
  c.uv_informality_min = 0.85;
  c.labeled_uv_target = 24;
  c.labeled_nonuv_target = 160;
  c.image_size = 16;
  return c;
}

inline urg::UrbanRegionGraph TinyUrg(uint64_t seed = 11) {
  urg::UrgOptions options;
  options.image_feature_dim = 32;
  return urg::BuildUrg(synth::GenerateCity(TinyCityConfig(seed)), options);
}

}  // namespace uv::testing

#endif  // UV_TESTS_TEST_HELPERS_H_
