#include <gtest/gtest.h>

#include <vector>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "util/rng.h"

namespace uv::ag {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

// Direct convolution reference (no im2col) for one sample.
float NaiveConvAt(const Tensor& x, const Tensor& w, const Tensor& b, int img,
                  const Conv2dSpec& s, int oc, int oy, int ox) {
  float acc = b.at(0, oc);
  const float* image = x.row(img);
  for (int c = 0; c < s.in_channels; ++c) {
    for (int ky = 0; ky < s.kernel; ++ky) {
      for (int kx = 0; kx < s.kernel; ++kx) {
        const int iy = oy * s.stride + ky - s.pad;
        const int ix = ox * s.stride + kx - s.pad;
        if (iy < 0 || iy >= s.in_h || ix < 0 || ix >= s.in_w) continue;
        const float xv = image[(c * s.in_h + iy) * s.in_w + ix];
        const float wv = w.at(oc, (c * s.kernel + ky) * s.kernel + kx);
        acc += xv * wv;
      }
    }
  }
  return acc;
}

TEST(Conv2dTest, OutputShape) {
  Conv2dSpec s{3, 8, 8, 4, 3, 1, 1};
  EXPECT_EQ(s.out_h(), 8);
  EXPECT_EQ(s.out_w(), 8);
  Conv2dSpec s2{3, 8, 8, 4, 3, 2, 0};
  EXPECT_EQ(s2.out_h(), 3);
}

class Conv2dForwardTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Conv2dForwardTest, MatchesNaiveReference) {
  const auto [stride, pad, out_c] = GetParam();
  Conv2dSpec s{2, 6, 6, out_c, 3, stride, pad};
  if (s.out_h() <= 0 || s.out_w() <= 0) GTEST_SKIP();
  auto x = MakeConst(RandomTensor(2, 2 * 6 * 6, 1));
  auto w = MakeConst(RandomTensor(out_c, 2 * 9, 2));
  auto b = MakeConst(RandomTensor(1, out_c, 3));
  auto y = Conv2d(x, w, b, s);
  ASSERT_EQ(y->cols(), out_c * s.out_h() * s.out_w());
  for (int img = 0; img < 2; ++img) {
    for (int oc = 0; oc < out_c; ++oc) {
      for (int oy = 0; oy < s.out_h(); ++oy) {
        for (int ox = 0; ox < s.out_w(); ++ox) {
          const float expected =
              NaiveConvAt(x->value, w->value, b->value, img, s, oc, oy, ox);
          const float got =
              y->value.at(img, (oc * s.out_h() + oy) * s.out_w() + ox);
          ASSERT_NEAR(got, expected, 1e-4f)
              << "img=" << img << " oc=" << oc << " oy=" << oy
              << " ox=" << ox;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometry, Conv2dForwardTest,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(0, 1),
                                            ::testing::Values(1, 3)));

TEST(Conv2dTest, GradCheckSmall) {
  Conv2dSpec s{1, 4, 4, 2, 3, 1, 1};
  auto x = MakeParam(RandomTensor(2, 16, 10));
  auto w = MakeParam(RandomTensor(2, 9, 11));
  auto b = MakeParam(RandomTensor(1, 2, 12));
  auto result = CheckGradients({x, w, b}, [&]() {
    auto y = Conv2d(x, w, b, s);
    return SumAll(Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(MaxPool2dTest, ForwardPicksMaximum) {
  // One 4x4 single-channel image.
  Tensor img(1, 16, {1, 2, 3, 4,
                     5, 6, 7, 8,
                     9, 10, 11, 12,
                     13, 14, 15, 16});
  auto y = MaxPool2d(MakeConst(img), 1, 4, 4, 2, 2);
  EXPECT_EQ(y->cols(), 4);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(y->value.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(y->value.at(0, 3), 16.0f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  Tensor img(1, 16);
  img.at(0, 5) = 10.0f;  // Winner of the top-left window.
  auto x = MakeParam(img);
  auto loss = SumAll(MaxPool2d(x, 1, 4, 4, 2, 2));
  Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.at(0, 5), 1.0f);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f);
}

TEST(MaxPool2dTest, GradCheck) {
  // Distinct values avoid argmax ties that would break differentiability.
  Tensor img(1, 2 * 16);
  Rng rng(13);
  std::vector<int> perm(32);
  for (int i = 0; i < 32; ++i) perm[i] = i;
  rng.Shuffle(&perm);
  for (int i = 0; i < 32; ++i) img[i] = perm[i] * 0.37f;
  auto x = MakeParam(img);
  auto result = CheckGradients({x}, [&]() {
    auto y = MaxPool2d(x, 2, 4, 4, 2, 2);
    return SumAll(Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(GlobalAvgPoolTest, Forward) {
  Tensor img(1, 2 * 4, {1, 2, 3, 4, 10, 10, 10, 10});
  auto y = GlobalAvgPool(MakeConst(img), 2, 2, 2);
  EXPECT_EQ(y->cols(), 2);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y->value.at(0, 1), 10.0f);
}

TEST(GlobalAvgPoolTest, GradCheck) {
  auto x = MakeParam(RandomTensor(3, 2 * 9, 14));
  auto result = CheckGradients({x}, [&]() {
    auto y = GlobalAvgPool(x, 2, 3, 3);
    return SumAll(Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(ConvStackTest, EndToEndGradCheck) {
  // conv -> relu -> pool -> gap -> squared sum, the MUVFCN-style path.
  Conv2dSpec s{1, 6, 6, 2, 3, 1, 1};
  auto x = MakeConst(RandomTensor(2, 36, 20));
  auto w = MakeParam(RandomTensor(2, 9, 21));
  auto b = MakeParam(RandomTensor(1, 2, 22));
  auto result = CheckGradients({w, b}, [&]() {
    auto y = Relu(Conv2d(x, w, b, s));
    y = MaxPool2d(y, 2, 6, 6, 2, 2);
    y = GlobalAvgPool(y, 2, 3, 3);
    return SumAll(Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace uv::ag
