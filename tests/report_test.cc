// Tests for the perf-ledger module (obs/report.h): the JSON writer's
// escaping and comma discipline, robust statistics, the environment
// fingerprint, the repeat-isolation contract of Report::RunTimed, and the
// canonical serialized ledger shape that tools/bench_diff.py and
// tools/check_trace.py --ledger consume.

#include "obs/report.h"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace uv::obs {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(JsonEscape("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonWriterTest, NestedStructureIsDeterministic) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a").Int(1);
  w.Key("b").BeginArray();
  w.Double(0.5).Bool(true).String("x");
  w.EndArray();
  w.Key("c").BeginObject();
  w.Key("d").UInt(7);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[0.5,true,\"x\"],\"c\":{\"d\":7}}");
}

TEST(JsonWriterTest, EmptyContainersAndRawSplice) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_obj").BeginObject().EndObject();
  w.Key("empty_arr").BeginArray().EndArray();
  w.Key("raw").Raw("[1,2]");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"empty_obj\":{},\"empty_arr\":[],\"raw\":[1,2]}");
}

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  // A non-finite measurement must stay visible as null (which the ledger
  // validators reject where a number is required), not turn into a
  // plausible-looking 0 that could pass a lower-is-better gate.
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(RobustStatsTest, KnownSample) {
  const RobustStats s = ComputeRobustStats({100.0, 2.0, 3.0, 1.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);  // Nearest rank, robust to the outlier.
  EXPECT_DOUBLE_EQ(s.p95, 100.0);
  // Deviations from the median: {2, 1, 0, 1, 97} -> median 1.
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
}

TEST(RobustStatsTest, EmptyAndSingleton) {
  const RobustStats empty = ComputeRobustStats({});
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.mad, 0.0);
  const RobustStats one = ComputeRobustStats({4.5});
  EXPECT_DOUBLE_EQ(one.min, 4.5);
  EXPECT_DOUBLE_EQ(one.p50, 4.5);
  EXPECT_DOUBLE_EQ(one.p95, 4.5);
  EXPECT_DOUBLE_EQ(one.mad, 0.0);
}

TEST(EnvFingerprintTest, CapturesHardwareAndToolchain) {
  const EnvFingerprint env = CaptureEnvFingerprint();
  EXPECT_GT(env.hardware_threads, 0);
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.build_type.empty());
}

TEST(ReportTest, SerializesCanonicalSchema) {
  Report report("unit");
  report.SetConfig("scale", 0.25);
  report.SetConfig("epochs", static_cast<int64_t>(7));
  report.SetConfig("city", "Fuzhou");
  auto& entry = report.Bench("alpha");
  entry.AddMetric("auc", 0.9, Direction::kHigherIsBetter);
  entry.AddMetric("wall_seconds", 1.5, Direction::kLowerIsBetter);
  entry.AddMetric("params", 123.0);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"uv-perf-ledger-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"suite\":\"unit\""), std::string::npos);
  for (const char* key :
       {"\"hardware_threads\":", "\"compiler\":", "\"build_type\":",
        "\"git_sha\":", "\"uv_threads\":", "\"uv_pool\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Config keys keep call order.
  const size_t scale_pos = json.find("\"scale\":0.25");
  const size_t epochs_pos = json.find("\"epochs\":7");
  const size_t city_pos = json.find("\"city\":\"Fuzhou\"");
  ASSERT_NE(scale_pos, std::string::npos);
  ASSERT_NE(epochs_pos, std::string::npos);
  ASSERT_NE(city_pos, std::string::npos);
  EXPECT_LT(scale_pos, epochs_pos);
  EXPECT_LT(epochs_pos, city_pos);
  // Directions serialize by name.
  EXPECT_NE(json.find("\"auc\":{\"value\":0.9,\"direction\":\"higher\""),
            std::string::npos);
  EXPECT_NE(json.find("\"direction\":\"lower\""), std::string::npos);
  EXPECT_NE(json.find("\"params\":{\"value\":123,\"direction\":\"info\""),
            std::string::npos);
}

TEST(ReportTest, BenchmarkKeysKeepInsertionOrder) {
  Report report("unit");
  report.Bench("zeta").AddMetric("v", 1.0);
  report.Bench("alpha").AddMetric("v", 2.0);
  report.Bench("zeta").AddMetric("w", 3.0);  // Reuses the existing entry.
  const std::string json = report.ToJson();
  const size_t zeta_pos = json.find("\"zeta\":{");
  const size_t alpha_pos = json.find("\"alpha\":{");
  ASSERT_NE(zeta_pos, std::string::npos);
  ASSERT_NE(alpha_pos, std::string::npos);
  EXPECT_LT(zeta_pos, alpha_pos);
  // One entry for zeta, holding both metrics.
  EXPECT_EQ(json.find("\"zeta\":{", zeta_pos + 1), std::string::npos);
  EXPECT_NE(json.find("\"w\":{\"value\":3"), std::string::npos);
}

TEST(ReportTest, RunTimedIsolatesCounterDeltasPerRepeat) {
  Registry::Global().ResetAll();
  Counter& counter = Registry::Global().GetCounter("mem.report_test_events");
  Report report("unit");
  int calls = 0;
  auto& entry = report.RunTimed("timed", /*warmup=*/2, /*repeats=*/3, [&] {
    ++calls;
    counter.Inc(5);
  });
  EXPECT_EQ(calls, 5);  // 2 warmup + 3 timed.
  EXPECT_EQ(entry.warmup(), 2);
  ASSERT_EQ(entry.repeats().size(), 3u);
  uint64_t last_ts = 0;
  for (const RepeatSample& rep : entry.repeats()) {
    EXPECT_GE(rep.seconds, 0.0);
    EXPECT_GE(rep.ts_us, last_ts);
    last_ts = rep.ts_us;
    // The registry is reset before each repeat, so the snapshot holds this
    // repeat's 5 events, not a cumulative total.
    bool found = false;
    for (const auto& [name, value] : rep.counters) {
      if (name == "mem.report_test_events") {
        EXPECT_EQ(value, 5u);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  const RobustStats stats = entry.Stats();
  EXPECT_LE(stats.min, stats.p50);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.max);
  Registry::Global().ResetAll();
}

TEST(ReportTest, RunTimedCapturesRelevantHistograms) {
  Registry::Global().ResetAll();
  Histogram& hist =
      Registry::Global().GetHistogram("threadpool.report_test_us");
  Report report("unit");
  auto& entry = report.RunTimed("hist", /*warmup=*/0, /*repeats=*/2, [&] {
    hist.Record(10);
    hist.Record(100);
  });
  ASSERT_EQ(entry.histograms().size(), 1u);
  EXPECT_EQ(entry.histograms()[0].name, "threadpool.report_test_us");
  // Post-reset, the final repeat's histogram covers that repeat alone.
  EXPECT_EQ(entry.histograms()[0].count, 2u);
  Registry::Global().ResetAll();
}

TEST(ReportTest, IgnoresCountersOutsideLedgerFamilies) {
  Registry::Global().ResetAll();
  Counter& other = Registry::Global().GetCounter("unrelated.events");
  Report report("unit");
  auto& entry =
      report.RunTimed("timed", /*warmup=*/0, /*repeats=*/1, [&] { other.Inc(); });
  ASSERT_EQ(entry.repeats().size(), 1u);
  for (const auto& [name, value] : entry.repeats()[0].counters) {
    EXPECT_NE(name, "unrelated.events");
  }
  Registry::Global().ResetAll();
}

TEST(ReportTest, WriteFileRoundTrips) {
  Report report("unit");
  report.Bench("only").AddMetric("v", 1.0);
  const std::string path =
      testing::TempDir() + "/uv_report_test_ledger.json";
  ASSERT_TRUE(report.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_EQ(contents, report.ToJson() + "\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uv::obs
