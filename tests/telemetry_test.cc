// Production-telemetry suite: rolling SLO windows (obs::WindowedHistogram
// under a FakeClock, including concurrent Record during rotation), the
// sharded registry's sorted-snapshot contract, deterministic trace
// sampling, tracer drop counters, and the Prometheus/JSON exporter
// (render formats and the atomic-rewrite guarantee).

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/clock.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/windowed.h"

namespace uv::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- WindowedHistogram -----------------------------------------------------

TEST(WindowedHistogramTest, EmptyWindowReportsZeros) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  const WindowedHistogramSnapshot snap = w.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p95, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
  EXPECT_EQ(snap.window_us, 8000u);
}

TEST(WindowedHistogramTest, MatchesCumulativeHistogramWithinOneEpoch) {
  FakeClock clock;
  clock.Set(1);  // Stay inside epoch 0's slot.
  WindowedHistogram w(/*window_us=*/8ull * 1000 * 1000, &clock);
  uint64_t counts[Histogram::kNumBuckets] = {};
  uint64_t sum = 0;
  for (uint64_t v : {0ull, 1ull, 3ull, 100ull, 1000ull, 1000ull, 65536ull}) {
    w.Record(v);
    ++counts[Histogram::BucketIndex(v)];
    sum += v;
  }
  const WindowedHistogramSnapshot snap = w.Snapshot();
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.p50, Histogram::PercentileFromCounts(counts, 50.0));
  EXPECT_EQ(snap.p95, Histogram::PercentileFromCounts(counts, 95.0));
  EXPECT_EQ(snap.p99, Histogram::PercentileFromCounts(counts, 99.0));
}

TEST(WindowedHistogramTest, SamplesExpireOnceTheWindowPasses) {
  FakeClock clock;
  // 8 slots x 1000us epochs.
  WindowedHistogram w(/*window_us=*/8000, &clock);
  w.Record(500);
  EXPECT_EQ(w.Snapshot().count, 1u);
  // Still inside the window 7 epochs later...
  clock.Set(7 * 1000);
  EXPECT_EQ(w.Snapshot().count, 1u);
  // ...gone the epoch after that.
  clock.Set(8 * 1000);
  EXPECT_EQ(w.Snapshot().count, 0u);
  EXPECT_EQ(w.Snapshot().p99, 0.0);
}

TEST(WindowedHistogramTest, PartialExpiryKeepsRecentEpochsOnly) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  w.Record(64);  // Epoch 0.
  clock.Set(5 * 1000);
  w.Record(128);  // Epoch 5.
  EXPECT_EQ(w.Snapshot().count, 2u);
  clock.Set(9 * 1000);  // Epoch 9: epoch 0 expired, epoch 5 still live.
  const WindowedHistogramSnapshot snap = w.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 128u);
  clock.Set(14 * 1000);  // Epoch 14: everything expired.
  EXPECT_EQ(w.Snapshot().count, 0u);
}

TEST(WindowedHistogramTest, SlotReuseClearsTheOldEpoch) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  for (int i = 0; i < 5; ++i) w.Record(10);
  // Epoch 8 maps onto epoch 0's slot; its 5 samples must not leak into
  // the new epoch's counts.
  clock.Set(8 * 1000);
  w.Record(20);
  const WindowedHistogramSnapshot snap = w.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 20u);
}

TEST(WindowedHistogramTest, ResetDropsEverything) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  for (int i = 0; i < 10; ++i) w.Record(100);
  ASSERT_EQ(w.Snapshot().count, 10u);
  w.Reset();
  EXPECT_EQ(w.Snapshot().count, 0u);
  // Still usable after Reset.
  w.Record(7);
  EXPECT_EQ(w.Snapshot().count, 1u);
}

// Concurrent writers with the clock walking across epochs but staying
// inside one window: nothing expires, so every sample must land exactly
// once — exact count and sum.
TEST(WindowedHistogramTest, ConcurrentRecordWithinOneWindowIsExact) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) w.Record(3);
    });
  }
  while (ready.load() < kThreads) {
  }
  // Walk the clock across 7 epoch boundaries (one short of expiry) while
  // the writers run.
  for (int e = 1; e <= 7; ++e) {
    clock.Set(static_cast<uint64_t>(e) * 1000);
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  const WindowedHistogramSnapshot snap = w.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.sum, static_cast<uint64_t>(kThreads) * kPerThread * 3);
}

// The satellite-3 race test: the clock walks far enough (12 epochs on an
// 8-slot ring) that rotations land on slots with writers in flight. Phase
// 1 runs under the moving clock; phase 2 runs with the clock frozen, so
// all of its samples sit in the final epoch and none may expire. The
// invariants catch both failure modes of a rotation race: a half-counted
// sample breaks sum == 3 * count (bucket increment survives the clear but
// the sum increment does not, or vice versa), and a lost phase-2 sample
// drops count below the phase-2 total.
TEST(WindowedHistogramTest, ConcurrentRecordDuringRotationLosesNothing) {
  FakeClock clock;
  WindowedHistogram w(/*window_us=*/8000, &clock);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<int> ready{0};
  std::atomic<int> phase1_done{0};
  std::atomic<bool> phase2_go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) w.Record(3);
      phase1_done.fetch_add(1);
      while (!phase2_go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) w.Record(3);
    });
  }
  while (ready.load() < kThreads) {
  }
  // Phase 1: cross 12 epoch boundaries — slots 0..4 get rotated while the
  // writers hammer them.
  for (int e = 1; e <= 12; ++e) {
    clock.Set(static_cast<uint64_t>(e) * 1000);
    std::this_thread::yield();
  }
  while (phase1_done.load() < kThreads) {
  }
  // Phase 2: clock frozen at epoch 12; these samples must all survive.
  phase2_go.store(true);
  for (auto& t : threads) t.join();
  const WindowedHistogramSnapshot snap = w.Snapshot();
  const uint64_t phase2 = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_GE(snap.count, phase2);       // No phase-2 sample lost.
  EXPECT_LE(snap.count, 2 * phase2);   // No sample double-counted.
  EXPECT_EQ(snap.sum, 3 * snap.count);  // No sample half-counted.
}

// --- Registry --------------------------------------------------------------

TEST(RegistryWindowedTest, GetWindowedReturnsSameInstanceAndSnapshot) {
  Registry& reg = Registry::Global();
  WindowedHistogram& a = reg.GetWindowed("telemetry.win_a", 8000);
  WindowedHistogram& b = reg.GetWindowed("telemetry.win_a", 999999);
  EXPECT_EQ(&a, &b);  // First call fixes the window.
  EXPECT_EQ(a.window_us(), 8000u);
  a.Record(42);
  const RegistrySnapshot snap = reg.Snapshot();
  bool found = false;
  for (const auto& w : snap.windowed) {
    if (w.name == "telemetry.win_a") {
      found = true;
      EXPECT_GE(w.count, 1u);
      EXPECT_EQ(w.window_us, 8000u);
    }
  }
  EXPECT_TRUE(found);
  reg.ResetAll();
  EXPECT_EQ(a.Snapshot().count, 0u);
}

// Satellite 2: snapshot order is sorted by name, no matter in which order
// (or from which shard) metrics were registered.
TEST(RegistrySortedSnapshotTest, EverySectionIsSortedByName) {
  Registry& reg = Registry::Global();
  // Deliberately register in reverse lexical order, with names chosen to
  // spread over different hash shards.
  for (const char* name : {"telemetry.sort_z", "telemetry.sort_m",
                           "telemetry.sort_b", "telemetry.sort_a"}) {
    reg.GetCounter(name).Inc();
    reg.GetGauge(std::string(name) + ".g").Set(1);
    reg.GetHistogram(std::string(name) + ".h").Record(1);
    reg.GetWindowed(std::string(name) + ".w").Record(1);
  }
  const RegistrySnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
  for (size_t i = 1; i < snap.gauges.size(); ++i) {
    EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);
  }
  for (size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
  for (size_t i = 1; i < snap.windowed.size(); ++i) {
    EXPECT_LT(snap.windowed[i - 1].name, snap.windowed[i].name);
  }
  reg.ResetAll();
}

// --- Trace sampling --------------------------------------------------------

TEST(TraceSamplingTest, RateOneKeepsEverythingRateZeroNothing) {
  const double saved = TraceSampleRate();
  SetTraceSampleRate(1.0);
  for (uint64_t id = 1; id <= 1000; ++id) EXPECT_TRUE(TraceSampleForId(id));
  SetTraceSampleRate(0.0);
  for (uint64_t id = 1; id <= 1000; ++id) EXPECT_FALSE(TraceSampleForId(id));
  SetTraceSampleRate(saved);
}

TEST(TraceSamplingTest, DecisionIsDeterministicPerId) {
  const double saved = TraceSampleRate();
  SetTraceSampleRate(0.37);
  std::vector<bool> first;
  for (uint64_t id = 1; id <= 2000; ++id) {
    first.push_back(TraceSampleForId(id));
  }
  for (uint64_t id = 1; id <= 2000; ++id) {
    EXPECT_EQ(TraceSampleForId(id), first[id - 1]) << "id " << id;
  }
  SetTraceSampleRate(saved);
}

TEST(TraceSamplingTest, KeptFractionTracksTheRate) {
  const double saved = TraceSampleRate();
  SetTraceSampleRate(0.5);
  int kept = 0;
  constexpr int kIds = 20000;
  for (uint64_t id = 1; id <= kIds; ++id) {
    if (TraceSampleForId(id)) ++kept;
  }
  // splitmix64 over sequential ids is uniform enough that 50% +- 5pp holds
  // with enormous margin at n=20000.
  EXPECT_GT(kept, kIds * 45 / 100);
  EXPECT_LT(kept, kIds * 55 / 100);
  SetTraceSampleRate(saved);
}

TEST(TraceSamplingTest, OutOfRangeRatesAreClamped) {
  const double saved = TraceSampleRate();
  SetTraceSampleRate(7.5);
  EXPECT_EQ(TraceSampleRate(), 1.0);
  SetTraceSampleRate(-2.0);
  EXPECT_EQ(TraceSampleRate(), 0.0);
  SetTraceSampleRate(saved);
}

// Satellite 1: buffer-full drops surface as registry counters.
TEST(TraceDropCountersTest, OverflowingTheFineBufferCountsDrops) {
  Registry& reg = Registry::Global();
  reg.ResetAll();
  const std::string path = testing::TempDir() + "/drop_trace.json";
  StartTrace(path);
  // The fine buffer holds 2^16 spans; push past it from one thread.
  for (int i = 0; i < (1 << 16) + 500; ++i) {
    RecordSpan("drop.fill", SpanLevel::kFine, 0, 1);
  }
  EXPECT_GT(TraceDroppedSpans(), 0u);
  EXPECT_TRUE(StopTrace());
  EXPECT_GE(reg.GetCounter("trace.dropped_fine").Value(), 500u);
  EXPECT_EQ(reg.GetCounter("trace.dropped_coarse").Value(), 0u);
  std::remove(path.c_str());
  reg.ResetAll();
}

// --- Exporter --------------------------------------------------------------

TEST(ExporterRenderTest, PrometheusFormatIsWellFormed) {
  RegistrySnapshot snap;
  snap.counters.emplace_back("serve.requests", 17);
  snap.gauges.emplace_back("serve.queue_depth", -3);
  HistogramSnapshot h;
  h.name = "serve.latency_us";
  h.buckets.assign(Histogram::kNumBuckets, 0);
  h.buckets[0] = 2;  // Two zeros.
  h.buckets[5] = 3;  // Three in [16, 32).
  h.count = 5;
  h.sum = 60;
  snap.histograms.push_back(h);
  WindowedHistogramSnapshot w;
  w.name = "serve.latency_us";
  w.window_us = 60ull * 1000 * 1000;
  w.count = 5;
  w.p50 = 16.0;
  w.p95 = 16.0;
  w.p99 = 16.0;
  snap.windowed.push_back(w);

  const std::string prom = RenderPrometheus(snap, /*ts_us=*/123456);
  EXPECT_NE(prom.find("# TYPE uv_serve_requests_total counter\n"
                      "uv_serve_requests_total 17\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uv_serve_queue_depth -3\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE uv_serve_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("uv_serve_latency_us_bucket{le=\"0\"} 2\n"),
            std::string::npos);
  // Cumulative by le: the [16,32) bucket's upper edge is 31.
  EXPECT_NE(prom.find("uv_serve_latency_us_bucket{le=\"31\"} 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uv_serve_latency_us_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("uv_serve_latency_us_sum 60\n"), std::string::npos);
  EXPECT_NE(prom.find("uv_serve_latency_us_count 5\n"), std::string::npos);
  EXPECT_NE(
      prom.find(
          "uv_serve_latency_us_window{quantile=\"0.99\",window_s=\"60\"} 16\n"),
      std::string::npos);
  EXPECT_NE(prom.find("uv_export_timestamp_us 123456\n"), std::string::npos);
  EXPECT_EQ(prom.substr(prom.size() - 6), "# EOF\n");
}

TEST(ExporterRenderTest, JsonExportCarriesSchemaAndSections) {
  RegistrySnapshot snap;
  snap.counters.emplace_back("a.count", 1);
  WindowedHistogramSnapshot w;
  w.name = "a.win";
  w.window_us = 1000;
  w.count = 2;
  w.sum = 10;
  w.p50 = 4;
  w.p95 = 8;
  w.p99 = 8;
  snap.windowed.push_back(w);
  const std::string json = RenderJsonExport(snap, /*ts_us=*/99);
  EXPECT_NE(json.find("\"schema\":\"uv-metrics-export-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ts_us\":99"), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"a.win\":{\"window_us\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{}"), std::string::npos);
}

TEST(ExporterTest, ExportNowWritesBothFiles) {
  Registry& reg = Registry::Global();
  reg.GetCounter("telemetry.export_probe").Inc(5);
  const std::string path = testing::TempDir() + "/export_now.prom";
  ASSERT_TRUE(ExportNow(path));
  const std::string prom = ReadFile(path);
  EXPECT_NE(prom.find("uv_telemetry_export_probe_total"), std::string::npos);
  EXPECT_EQ(prom.substr(prom.size() - 6), "# EOF\n");
  const std::string json = ReadFile(path + ".json");
  EXPECT_NE(json.find("uv-metrics-export-v1"), std::string::npos);
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
  reg.ResetAll();
}

// Satellite-3 exporter half: rewrites are atomic. A reader sampling the
// file while a writer loops ExportNow must always observe a complete
// export (non-empty, "# EOF"-terminated) — never a torn or truncated one.
TEST(ExporterTest, ConcurrentReaderNeverSeesATornFile) {
  Registry& reg = Registry::Global();
  reg.GetCounter("telemetry.atomic_probe").Inc();
  const std::string path = testing::TempDir() + "/atomic.prom";
  ASSERT_TRUE(ExportNow(path));  // Seed so the reader always has a file.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string prom = ReadFile(path);
      if (prom.empty() ||
          prom.size() < 6 || prom.substr(prom.size() - 6) != "# EOF\n") {
        torn.fetch_add(1);
      }
      reads.fetch_add(1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("telemetry.atomic_probe").Inc();
    ASSERT_TRUE(ExportNow(path));
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0) << "torn reads out of " << reads.load();
  EXPECT_GT(reads.load(), 0);
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
  reg.ResetAll();
}

TEST(ExporterTest, BackgroundThreadRewritesAndStopsCleanly) {
  Registry& reg = Registry::Global();
  reg.GetCounter("telemetry.bg_probe").Inc();
  const std::string path = testing::TempDir() + "/bg.prom";
  ExporterOptions opts;
  opts.path = path;
  opts.interval_ms = 10;
  const uint64_t before = ExporterWriteCount();
  ASSERT_TRUE(StartExporter(opts));
  EXPECT_TRUE(ExporterEnabled());
  EXPECT_FALSE(StartExporter(opts));  // Already running.
  // Await at least two cycles (the first fires immediately).
  while (ExporterWriteCount() < before + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  StopExporter();
  EXPECT_FALSE(ExporterEnabled());
  const uint64_t after = ExporterWriteCount();
  EXPECT_GE(after, before + 3);  // Two cycles + the final flush.
  const std::string prom = ReadFile(path);
  EXPECT_NE(prom.find("uv_telemetry_bg_probe_total"), std::string::npos);
  EXPECT_EQ(prom.substr(prom.size() - 6), "# EOF\n");
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
  reg.ResetAll();
}

}  // namespace
}  // namespace uv::obs
