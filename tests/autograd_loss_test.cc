#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gated_mlp.h"
#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "util/rng.h"

namespace uv::ag {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, scale);
  return t;
}

// ------------------------------ BCE ----------------------------------------

TEST(BceTest, MatchesClosedForm) {
  // loss(z, y) = max(z,0) - z*y + log(1+exp(-|z|)).
  auto z = MakeConst(Tensor(2, 1, {0.8f, -1.2f}));
  Tensor y(2, 1, {1.0f, 0.0f});
  auto loss = BceWithLogits(z, y, nullptr);
  const double l0 = 0.8 - 0.8 + std::log1p(std::exp(-0.8));
  const double l1 = 0.0 - 0.0 + std::log1p(std::exp(-1.2));
  EXPECT_NEAR(loss->value.at(0, 0), (l0 + l1) / 2.0, 1e-6);
}

TEST(BceTest, PerfectPredictionNearZero) {
  auto z = MakeConst(Tensor(2, 1, {30.0f, -30.0f}));
  Tensor y(2, 1, {1.0f, 0.0f});
  EXPECT_NEAR(BceWithLogits(z, y, nullptr)->value.at(0, 0), 0.0, 1e-6);
}

TEST(BceTest, ExtremeLogitsStayFinite) {
  auto z = MakeParam(Tensor(2, 1, {2000.0f, -2000.0f}));
  Tensor y(2, 1, {0.0f, 1.0f});
  auto loss = BceWithLogits(z, y, nullptr);
  EXPECT_FALSE(loss->value.HasNonFinite());
  Backward(loss);
  EXPECT_FALSE(z->grad.HasNonFinite());
}

TEST(BceTest, GradientIsSigmoidMinusLabel) {
  auto z = MakeParam(Tensor(1, 1, {0.5f}));
  Tensor y(1, 1, {1.0f});
  Backward(BceWithLogits(z, y, nullptr));
  const double p = 1.0 / (1.0 + std::exp(-0.5));
  EXPECT_NEAR(z->grad.at(0, 0), p - 1.0, 1e-6);
}

TEST(BceTest, SampleWeightsShiftTheLoss) {
  auto z = MakeConst(Tensor(2, 1, {1.0f, 1.0f}));
  Tensor y(2, 1, {1.0f, 0.0f});
  Tensor w_pos(2, 1, {10.0f, 1.0f});
  // Up-weighting the already-correct positive lowers the weighted mean loss.
  const float plain = BceWithLogits(z, y, nullptr)->value.at(0, 0);
  const float weighted = BceWithLogits(z, y, &w_pos)->value.at(0, 0);
  EXPECT_LT(weighted, plain);
}

TEST(BceTest, GradCheck) {
  auto z = MakeParam(RandomTensor(6, 1, 31));
  Tensor y(6, 1);
  for (int i = 0; i < 6; ++i) y.at(i, 0) = i % 2 ? 1.0f : 0.0f;
  Tensor w(6, 1);
  for (int i = 0; i < 6; ++i) w.at(i, 0) = 1.0f + i * 0.5f;
  auto result =
      CheckGradients({z}, [&]() { return BceWithLogits(z, y, &w); });
  EXPECT_TRUE(result.ok) << result.detail;
}

// --------------------------- PU rank loss ----------------------------------

TEST(PuRankLossTest, PerfectSeparationByMarginOne) {
  // s_pos - s_neg = 1 makes every pair term (1 - 1)^2 = 0.
  auto s = MakeConst(Tensor(3, 1, {1.0f, 0.0f, 0.0f}));
  auto loss = PuRankLoss(s, {0}, {1, 2});
  EXPECT_NEAR(loss->value.at(0, 0), 0.0, 1e-8);
}

TEST(PuRankLossTest, EqualScoresGiveUnitLoss) {
  auto s = MakeConst(Tensor(2, 1, {0.5f, 0.5f}));
  auto loss = PuRankLoss(s, {0}, {1});
  EXPECT_NEAR(loss->value.at(0, 0), 1.0, 1e-6);
}

TEST(PuRankLossTest, EmptyPositivesIsZeroWithNoGrad) {
  auto s = MakeParam(Tensor(3, 1, {0.1f, 0.2f, 0.3f}));
  auto loss = PuRankLoss(s, {}, {0, 1, 2});
  EXPECT_FLOAT_EQ(loss->value.at(0, 0), 0.0f);
  Backward(loss);
  // No pairs -> no gradient contribution.
  if (!s->grad.empty()) {
    EXPECT_FLOAT_EQ(static_cast<float>(s->grad.Norm()), 0.0f);
  }
}

TEST(PuRankLossTest, GradCheck) {
  auto s = MakeParam(RandomTensor(5, 1, 33));
  auto result = CheckGradients(
      {s}, [&]() { return PuRankLoss(s, {0, 2}, {1, 3, 4}); });
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(PuRankLossTest, DescendingOnLossSeparatesScores) {
  // A few SGD steps should push positive scores above unlabeled ones.
  auto s = MakeParam(Tensor(4, 1, {0.0f, 0.0f, 0.0f, 0.0f}));
  for (int it = 0; it < 200; ++it) {
    ZeroGrads({s});
    auto loss = PuRankLoss(s, {0, 1}, {2, 3});
    Backward(loss);
    for (int i = 0; i < 4; ++i) {
      s->value.at(i, 0) -= 0.05f * s->grad.at(i, 0);
    }
  }
  EXPECT_GT(s->value.at(0, 0), s->value.at(2, 0) + 0.5f);
  EXPECT_GT(s->value.at(1, 0), s->value.at(3, 0) + 0.5f);
}

// ----------------------------- GatedMlp -------------------------------------

TEST(GatedMlpTest, FilterSize) {
  EXPECT_EQ(GatedMlpFilterSize(4, 3), 4 * 3 + 3 + 3 + 1);
}

// With an all-ones filter the gated MLP must equal the plain master MLP.
TEST(GatedMlpTest, UnitFilterEqualsMasterMlp) {
  const int n = 5, d_in = 4, d_h = 3;
  auto x = MakeConst(RandomTensor(n, d_in, 40));
  auto w1 = MakeConst(RandomTensor(d_in, d_h, 41));
  auto b1 = MakeConst(RandomTensor(1, d_h, 42));
  auto w2 = MakeConst(RandomTensor(d_h, 1, 43));
  auto b2 = MakeConst(RandomTensor(1, 1, 44));
  Tensor ones(n, GatedMlpFilterSize(d_in, d_h));
  ones.Fill(1.0f);
  auto gated = GatedMlp(x, MakeConst(ones), w1, b1, w2, b2);
  auto plain = AddRowBroadcast(
      MatMul(Relu(AddRowBroadcast(MatMul(x, w1), b1)), w2), b2);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(gated->value.at(i, 0), plain->value.at(i, 0), 1e-5f);
  }
}

// A zero filter wipes every parameter: all logits are exactly zero.
TEST(GatedMlpTest, ZeroFilterGivesZeroLogits) {
  const int n = 3, d_in = 4, d_h = 2;
  auto x = MakeConst(RandomTensor(n, d_in, 45));
  auto w1 = MakeConst(RandomTensor(d_in, d_h, 46));
  auto b1 = MakeConst(RandomTensor(1, d_h, 47));
  auto w2 = MakeConst(RandomTensor(d_h, 1, 48));
  auto b2 = MakeConst(RandomTensor(1, 1, 49));
  auto gated = GatedMlp(x, MakeConst(Tensor(n, GatedMlpFilterSize(d_in, d_h))),
                        w1, b1, w2, b2);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(gated->value.at(i, 0), 0.0f);
}

// Different rows of the filter derive genuinely different slave models.
TEST(GatedMlpTest, PerRegionFiltersDiffer) {
  const int d_in = 3, d_h = 2;
  const int p = GatedMlpFilterSize(d_in, d_h);
  Tensor x(2, d_in, {1, 1, 1, 1, 1, 1});  // Identical inputs.
  Tensor filt(2, p);
  for (int c = 0; c < p; ++c) {
    filt.at(0, c) = 1.0f;
    filt.at(1, c) = 0.5f;
  }
  auto w1 = MakeConst(RandomTensor(d_in, d_h, 50));
  auto b1 = MakeConst(RandomTensor(1, d_h, 51));
  auto w2 = MakeConst(RandomTensor(d_h, 1, 52));
  auto b2 = MakeConst(RandomTensor(1, 1, 53));
  auto out = GatedMlp(MakeConst(x), MakeConst(filt), w1, b1, w2, b2);
  EXPECT_NE(out->value.at(0, 0), out->value.at(1, 0));
}

TEST(GatedMlpTest, GradCheckAllInputs) {
  const int n = 3, d_in = 3, d_h = 2;
  const int p = GatedMlpFilterSize(d_in, d_h);
  auto x = MakeParam(RandomTensor(n, d_in, 60));
  // Keep the filter strictly inside (0,1) and away from ReLU kinks.
  Tensor f(n, p);
  Rng rng(61);
  for (int64_t i = 0; i < f.size(); ++i) {
    f[i] = 0.3f + 0.4f * static_cast<float>(rng.Uniform());
  }
  auto filt = MakeParam(std::move(f));
  auto w1 = MakeParam(RandomTensor(d_in, d_h, 62));
  auto b1 = MakeParam(RandomTensor(1, d_h, 63));
  auto w2 = MakeParam(RandomTensor(d_h, 1, 64));
  auto b2 = MakeParam(RandomTensor(1, 1, 65));
  auto result = CheckGradients({x, filt, w1, b1, w2, b2}, [&]() {
    auto y = GatedMlp(x, filt, w1, b1, w2, b2);
    return SumAll(Mul(y, y));
  });
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace uv::ag
