#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace uv {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

// Naive O(mnk) reference for gemm correctness checks.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const int m = ta ? a.cols() : a.rows();
  const int k = ta ? a.rows() : a.cols();
  const int n = tb ? b.rows() : b.cols();
  Tensor c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += av * bv;
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  EXPECT_FALSE(t.empty());
  t.at(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(2, 3), 5.0f);
  EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
}

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
}

TEST(TensorTest, FromVector) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t(2, 3);
  t.Fill(7.5f);
  EXPECT_DOUBLE_EQ(t.Sum(), 7.5 * 6);
  t.Zero();
  EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
}

TEST(TensorTest, NormAndMaxAbs) {
  Tensor t(1, 2, {3, -4});
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
  EXPECT_FLOAT_EQ(t.MaxAbs(), 4.0f);
}

TEST(TensorTest, HasNonFinite) {
  Tensor t(1, 3, {1, 2, 3});
  EXPECT_FALSE(t.HasNonFinite());
  t.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(t.HasNonFinite());
  t.at(0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(t.HasNonFinite());
}

TEST(TensorTest, GlorotUniformWithinLimit) {
  Rng rng(3);
  Tensor t(30, 20);
  t.GlorotUniform(&rng);
  const float limit = std::sqrt(6.0f / 50.0f);
  EXPECT_LE(t.MaxAbs(), limit + 1e-6f);
  EXPECT_GT(t.Norm(), 0.0);
}

TEST(TensorTest, RandomNormalStddev) {
  Rng rng(5);
  Tensor t(100, 100);
  t.RandomNormal(&rng, 2.0f);
  const double var = t.Norm() * t.Norm() / t.size();
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, ShapeString) {
  EXPECT_EQ(Tensor(3, 4).ShapeString(), "Tensor(3x4)");
}

// Parameterized gemm correctness over shapes and transpose flags.
using GemmParam = std::tuple<int, int, int, bool, bool>;
class GemmTest : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, k, n, ta, tb] = GetParam();
  Tensor a = ta ? RandomTensor(k, m, 1) : RandomTensor(m, k, 1);
  Tensor b = tb ? RandomTensor(n, k, 2) : RandomTensor(k, n, 2);
  Tensor c(m, n);
  Gemm(ta, tb, 1.0f, a, b, 0.0f, &c);
  Tensor ref = NaiveMatMul(a, b, ta, tb);
  EXPECT_LT(MaxAbsDiff(c, ref), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Combine(::testing::Values(1, 3, 17), ::testing::Values(1, 8, 33),
                       ::testing::Values(1, 5, 19), ::testing::Bool(),
                       ::testing::Bool()));

TEST(GemmTest, AlphaBetaAccumulate) {
  Tensor a = RandomTensor(4, 5, 10);
  Tensor b = RandomTensor(5, 3, 11);
  Tensor c = RandomTensor(4, 3, 12);
  Tensor expected = c;
  Tensor prod = NaiveMatMul(a, b, false, false);
  for (int64_t i = 0; i < expected.size(); ++i) {
    expected[i] = 0.5f * expected[i] + 2.0f * prod[i];
  }
  Gemm(false, false, 2.0f, a, b, 0.5f, &c);
  EXPECT_LT(MaxAbsDiff(c, expected), 1e-3f);
}

TEST(TensorOpsTest, AddSubMulScale) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 2, {10, 20, 30, 40});
  EXPECT_FLOAT_EQ(Add(a, b).at(1, 1), 44.0f);
  EXPECT_FLOAT_EQ(Sub(b, a).at(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(0, 1), 40.0f);
  EXPECT_FLOAT_EQ(Scale(a, 3.0f).at(1, 0), 9.0f);
}

TEST(TensorOpsTest, Axpy) {
  Tensor x(1, 3, {1, 2, 3});
  Tensor y(1, 3, {10, 10, 10});
  Axpy(2.0f, x, &y);
  EXPECT_FLOAT_EQ(y.at(0, 2), 16.0f);
}

TEST(TensorOpsTest, AddRowVector) {
  Tensor a(2, 3);
  Tensor v(1, 3, {1, 2, 3});
  AddRowVectorInPlace(v, &a);
  AddRowVectorInPlace(v, &a);
  EXPECT_FLOAT_EQ(a.at(1, 2), 6.0f);
}

TEST(TensorOpsTest, TransposeRoundTrip) {
  Tensor a = RandomTensor(5, 7, 20);
  Tensor t = Transpose(Transpose(a));
  EXPECT_LT(MaxAbsDiff(a, t), 1e-9f);
  EXPECT_FLOAT_EQ(Transpose(a).at(3, 2), a.at(2, 3));
}

TEST(TensorOpsTest, RowSoftmaxSumsToOne) {
  Tensor a = RandomTensor(6, 9, 21);
  for (float temp : {0.05f, 1.0f, 4.0f}) {
    Tensor s = RowSoftmax(a, temp);
    for (int r = 0; r < s.rows(); ++r) {
      double total = 0.0;
      for (int c = 0; c < s.cols(); ++c) {
        EXPECT_GE(s.at(r, c), 0.0f);
        total += s.at(r, c);
      }
      EXPECT_NEAR(total, 1.0, 1e-5);
    }
  }
}

TEST(TensorOpsTest, RowSoftmaxTemperatureSharpness) {
  Tensor a(1, 3, {1.0f, 2.0f, 3.0f});
  Tensor sharp = RowSoftmax(a, 0.1f);
  Tensor smooth = RowSoftmax(a, 10.0f);
  EXPECT_GT(sharp.at(0, 2), smooth.at(0, 2));
  EXPECT_GT(sharp.at(0, 2), 0.99f);
}

TEST(TensorOpsTest, RowSoftmaxOverflowStability) {
  Tensor a(1, 2, {1000.0f, -1000.0f});
  Tensor s = RowSoftmax(a, 1.0f);
  EXPECT_FALSE(s.HasNonFinite());
  EXPECT_NEAR(s.at(0, 0), 1.0f, 1e-5f);
}

TEST(TensorOpsTest, RowArgmax) {
  Tensor a(2, 3, {1, 5, 2, 9, 0, 3});
  const auto idx = RowArgmax(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(TensorOpsTest, RowL2Normalize) {
  Tensor a(2, 2, {3, 4, 0, 0});
  Tensor n = RowL2Normalize(a);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-6f);
  // Zero rows stay zero (no NaN).
  EXPECT_FLOAT_EQ(n.at(1, 0), 0.0f);
}

TEST(TensorOpsTest, ColumnMeanStd) {
  Tensor a(3, 2, {1, 10, 2, 20, 3, 30});
  Tensor mean = ColumnMean(a);
  EXPECT_FLOAT_EQ(mean.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mean.at(0, 1), 20.0f);
  Tensor std = ColumnStd(a, mean);
  EXPECT_NEAR(std.at(0, 0), std::sqrt(2.0 / 3.0), 1e-5);
}

TEST(TensorOpsTest, StandardizeColumns) {
  Tensor a = RandomTensor(200, 4, 22);
  for (int r = 0; r < a.rows(); ++r) a.at(r, 2) = a.at(r, 2) * 10 + 100;
  StandardizeColumnsInPlace(&a);
  Tensor mean = ColumnMean(a);
  Tensor std = ColumnStd(a, mean);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(mean.at(0, c), 0.0f, 1e-4f);
    EXPECT_NEAR(std.at(0, c), 1.0f, 1e-3f);
  }
}

TEST(TensorOpsTest, StandardizeConstantColumnIsSafe) {
  Tensor a(4, 1);
  a.Fill(5.0f);
  StandardizeColumnsInPlace(&a);
  EXPECT_FALSE(a.HasNonFinite());
  EXPECT_NEAR(a.at(0, 0), 0.0f, 1e-6f);
}

TEST(TensorOpsTest, ConcatAndSlice) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 1, {9, 8});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(1, 2), 8.0f);
  Tensor back = SliceCols(c, 0, 2);
  EXPECT_LT(MaxAbsDiff(a, back), 1e-9f);
  Tensor last = SliceCols(c, 2, 3);
  EXPECT_LT(MaxAbsDiff(b, last), 1e-9f);
}

TEST(TensorOpsTest, GatherRows) {
  Tensor a(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.at(2, 1), 6.0f);
}

TEST(TensorOpsTest, MaxAbsDiff) {
  Tensor a(1, 2, {1, 2});
  Tensor b(1, 2, {1.5f, 2});
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 0.5f);
}

}  // namespace
}  // namespace uv
