#include "urg/neighbor_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "baselines/registry.h"
#include "core/cmsf_detector.h"
#include "core/cmsf_model.h"
#include "eval/runner.h"
#include "obs/metrics.h"
#include "synth/city.h"
#include "test_helpers.h"
#include "util/buffer_pool.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace uv::urg {
namespace {

std::shared_ptr<const synth::City> TinyCity(uint64_t seed = 11) {
  return std::make_shared<const synth::City>(
      synth::GenerateCity(uv::testing::TinyCityConfig(seed)));
}

UrgOptions SmallOptions() {
  UrgOptions options;
  options.image_feature_dim = 32;
  return options;
}

UrbanRegionGraph Dense(const std::shared_ptr<const synth::City>& city) {
  return BuildUrg(*city, SmallOptions());
}

UrbanRegionGraph Sharded(const std::shared_ptr<const synth::City>& city,
                         int num_shards) {
  ShardOptions shard;
  shard.num_shards = num_shards;
  // Statistics over the whole tiny city so lazy features match eager ones.
  shard.feature_store.stats_sample = 1 << 20;
  return BuildShardedUrg(city, SmallOptions(), shard);
}

// All (dst -> sorted global sources) segments reconstructed from the
// sharded representation.
std::vector<std::vector<int>> ShardedSegments(const UrbanRegionGraph& urg) {
  const ShardedUrg& s = *urg.sharded;
  std::vector<std::vector<int>> segs(s.num_regions());
  for (const auto& shard : s.shards) {
    const auto& off = *shard.local.offsets();
    const auto& nbr = *shard.local.neighbors();
    for (int l = 0; l < shard.num_owned; ++l) {
      const int dst = shard.GlobalOf(s.grid, l);
      for (int e = off[l]; e < off[l + 1]; ++e) {
        segs[dst].push_back(shard.GlobalOf(s.grid, nbr[e]));
      }
    }
  }
  for (auto& v : segs) std::sort(v.begin(), v.end());
  return segs;
}

void ExpectSubgraphsIdentical(const SampledSubgraph& a,
                              const SampledSubgraph& b) {
  ASSERT_EQ(a.nodes, b.nodes);
  ASSERT_EQ(a.num_seeds, b.num_seeds);
  ASSERT_EQ(*a.offsets, *b.offsets);
  ASSERT_EQ(*a.src_ids, *b.src_ids);
  ASSERT_EQ(*a.dst_ids, *b.dst_ids);
  ASSERT_EQ(a.gcn_norm.rows(), b.gcn_norm.rows());
  ASSERT_EQ(0, std::memcmp(a.gcn_norm.data(), b.gcn_norm.data(),
                           sizeof(float) * a.gcn_norm.size()));
}

TEST(ShardedUrgTest, ReconstructsDenseAdjacencyExactly) {
  auto city = TinyCity();
  const UrbanRegionGraph dense = Dense(city);
  const int n = dense.num_regions();
  for (const int shards : {1, 4, 6}) {
    const UrbanRegionGraph sh = Sharded(city, shards);
    ASSERT_NE(sh.sharded, nullptr);
    EXPECT_GE(static_cast<int>(sh.sharded->shards.size()), 1);
    const auto segs = ShardedSegments(sh);
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(segs[r], dense.adjacency.InNeighbors(r))
          << "dst " << r << " shards " << shards;
      EXPECT_EQ(sh.sharded->global_degree[r], dense.adjacency.Degree(r));
    }
    EXPECT_EQ(sh.num_edges, dense.num_edges);
    EXPECT_EQ(sh.num_spatial_edges, dense.num_spatial_edges);
    EXPECT_EQ(sh.num_road_edges, dense.num_road_edges);
  }
}

TEST(ShardedUrgTest, HaloRegionsAreSortedNonOwnedSources) {
  auto city = TinyCity();
  const UrbanRegionGraph sh = Sharded(city, 4);
  const ShardedUrg& s = *sh.sharded;
  ASSERT_GT(static_cast<int>(s.shards.size()), 1);
  for (const auto& shard : s.shards) {
    // Sorted, unique, and outside the shard's owned tile.
    ASSERT_TRUE(std::is_sorted(shard.halo.begin(), shard.halo.end()));
    ASSERT_EQ(std::adjacent_find(shard.halo.begin(), shard.halo.end()),
              shard.halo.end());
    for (const int id : shard.halo) {
      const int r = s.grid.RowOf(id), c = s.grid.ColOf(id);
      EXPECT_FALSE(r >= shard.bounds[0] && r < shard.bounds[2] &&
                   c >= shard.bounds[1] && c < shard.bounds[3])
          << "halo id " << id << " is owned by shard " << shard.shard_id;
    }
    // Every halo slot is referenced by at least one in-edge.
    std::vector<char> used(shard.halo.size(), 0);
    for (const int src : *shard.local.neighbors()) {
      if (src >= shard.num_owned) used[src - shard.num_owned] = 1;
    }
    for (size_t i = 0; i < used.size(); ++i) {
      EXPECT_TRUE(used[i]) << "unreferenced halo entry " << shard.halo[i];
    }
  }
}

TEST(NeighborSamplerTest, KHopClosureMatchesBruteForce) {
  auto city = TinyCity();
  const UrbanRegionGraph dense = Dense(city);
  const NeighborView view(dense);
  const std::vector<int> seeds = {0, 37, 201, 514};
  MinibatchConfig cfg;
  cfg.fanout = 0;  // Exact closure.
  cfg.hops = 2;
  const SampledSubgraph sg = SampleKHop(view, seeds, cfg);
  ASSERT_EQ(sg.num_seeds, static_cast<int>(seeds.size()));

  // Brute-force level sets over the dense adjacency.
  std::set<int> level0(seeds.begin(), seeds.end());
  auto expand = [&](const std::set<int>& frontier) {
    std::set<int> out = frontier;
    for (const int id : frontier) {
      for (const int src : dense.adjacency.InNeighbors(id)) out.insert(src);
    }
    return out;
  };
  const std::set<int> level1 = expand(level0);
  const std::set<int> level2 = expand(level1);
  const std::set<int> got(sg.nodes.begin(), sg.nodes.end());
  EXPECT_EQ(got, level2);

  // Nodes below the last hop keep their full in-segments; frontier nodes
  // carry only a self loop.
  const auto& off = *sg.offsets;
  const auto& src = *sg.src_ids;
  for (int l = 0; l < sg.num_nodes(); ++l) {
    const int global = sg.nodes[l];
    std::vector<int> sources;
    for (int e = off[l]; e < off[l + 1]; ++e) {
      sources.push_back(sg.nodes[src[e]]);
    }
    std::sort(sources.begin(), sources.end());
    if (level1.count(global) > 0) {
      EXPECT_EQ(sources, dense.adjacency.InNeighbors(global))
          << "node " << global;
    } else {
      EXPECT_EQ(sources, std::vector<int>{global}) << "frontier " << global;
    }
  }
}

TEST(NeighborSamplerTest, FanoutSamplesAreValidAndBatchInvariant) {
  auto city = TinyCity();
  const UrbanRegionGraph dense = Dense(city);
  const NeighborView view(dense);
  MinibatchConfig cfg;
  cfg.fanout = 3;
  cfg.hops = 2;
  cfg.seed = 77;

  auto seed_sources = [&](const SampledSubgraph& sg) {
    std::vector<int> out;
    for (int e = (*sg.offsets)[0]; e < (*sg.offsets)[1]; ++e) {
      out.push_back(sg.nodes[(*sg.src_ids)[e]]);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const SampledSubgraph alone = SampleKHop(view, {5}, cfg);
  const SampledSubgraph batched = SampleKHop(view, {5, 99, 340}, cfg);
  const std::vector<int> sources = seed_sources(alone);

  // Same node, same cfg.seed => identical draw regardless of the batch.
  EXPECT_EQ(sources, seed_sources(batched));
  // Valid: a subset of the dense segment, self loop included, exactly
  // min(fanout, deg - 1) sampled neighbors + self.
  const std::vector<int> full = dense.adjacency.InNeighbors(5);
  for (const int s : sources) {
    EXPECT_TRUE(std::binary_search(full.begin(), full.end(), s));
  }
  EXPECT_TRUE(std::binary_search(sources.begin(), sources.end(), 5));
  const int expected =
      std::min(cfg.fanout, static_cast<int>(full.size()) - 1) + 1;
  EXPECT_EQ(static_cast<int>(sources.size()), expected);

  // Re-sampling with the same config is bit-identical.
  ExpectSubgraphsIdentical(batched, SampleKHop(view, {5, 99, 340}, cfg));
  // A different seed changes the draw for a high-degree node.
  MinibatchConfig other = cfg;
  other.seed = 78;
  bool any_differs = false;
  for (const int id : {5, 99, 340}) {
    if (seed_sources(SampleKHop(view, {id}, cfg)) !=
        seed_sources(SampleKHop(view, {id}, other))) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(NeighborSamplerTest, BitIdenticalAcrossThreadsPoolAndRepresentation) {
  const int original_threads = ThreadPool::Global().num_threads();
  const bool original_pool = BufferPool::Enabled();
  auto city = TinyCity();
  const std::vector<int> seeds = {3, 88, 212, 399, 555};
  MinibatchConfig cfg;
  cfg.fanout = 4;
  cfg.hops = 2;
  cfg.seed = 2023;

  const UrbanRegionGraph reference_urg = Dense(city);
  const SampledSubgraph reference =
      SampleKHop(NeighborView(reference_urg), seeds, cfg);

  for (const int threads : {1, 4}) {
    for (const bool pool : {true, false}) {
      ThreadPool::SetGlobalThreads(threads);
      BufferPool::SetEnabled(pool);
      const UrbanRegionGraph dense = Dense(city);
      const UrbanRegionGraph sharded = Sharded(city, 4);
      ExpectSubgraphsIdentical(reference,
                               SampleKHop(NeighborView(dense), seeds, cfg));
      ExpectSubgraphsIdentical(reference,
                               SampleKHop(NeighborView(sharded), seeds, cfg));
    }
  }
  ThreadPool::SetGlobalThreads(original_threads);
  BufferPool::SetEnabled(original_pool);
}

TEST(FeatureStoreTest, LazyRowsMatchEagerFeatures) {
  auto city = TinyCity();
  const UrbanRegionGraph dense = Dense(city);
  const UrbanRegionGraph sharded = Sharded(city, 2);
  ASSERT_EQ(sharded.PoiDim(), dense.poi_features.cols());
  ASSERT_EQ(sharded.ImageDim(), dense.image_features.cols());

  const std::vector<int> ids = {0, 5, 5, 123, 42, 575};
  Tensor poi, img;
  sharded.GatherPoiRows(ids, &poi);
  sharded.GatherImageRows(ids, &img);
  for (size_t i = 0; i < ids.size(); ++i) {
    for (int c = 0; c < poi.cols(); ++c) {
      EXPECT_FLOAT_EQ(poi.at(static_cast<int>(i), c),
                      dense.poi_features.at(ids[i], c));
    }
    for (int c = 0; c < img.cols(); ++c) {
      EXPECT_NEAR(img.at(static_cast<int>(i), c),
                  dense.image_features.at(ids[i], c), 1e-4)
          << "region " << ids[i] << " col " << c;
    }
  }

  // A second gather is served from the LRU cache and returns identical rows.
  auto store = std::dynamic_pointer_cast<LazyFeatureStore>(sharded.features);
  ASSERT_NE(store, nullptr);
  const uint64_t hits_before = store->cache_hits();
  Tensor again;
  sharded.GatherImageRows(ids, &again);
  EXPECT_GT(store->cache_hits(), hits_before);
  EXPECT_EQ(0, std::memcmp(img.data(), again.data(),
                           sizeof(float) * img.size()));
}

TEST(FeatureStoreTest, TilesRenderedCounterTracksOnDemandRenders) {
  auto city = TinyCity();
  auto& counter = obs::Registry::Global().GetCounter("synth.tiles_rendered");
  const uint64_t before = counter.Value();
  const UrbanRegionGraph sharded = Sharded(city, 2);
  // Construction encodes the statistics sample: the whole tiny city once.
  const uint64_t after_build = counter.Value();
  EXPECT_EQ(after_build - before,
            static_cast<uint64_t>(city->num_regions()));
  // A cold gather renders each unique requested region exactly once.
  Tensor img;
  sharded.GatherImageRows({7, 7, 19, 23}, &img);
  EXPECT_EQ(counter.Value() - after_build, 3u);
}

TEST(ParallelRenderTest, GenerateCityTilesDeterministicAcrossThreads) {
  const int original_threads = ThreadPool::Global().num_threads();
  synth::CityConfig config = uv::testing::TinyCityConfig();
  auto& counter = obs::Registry::Global().GetCounter("synth.tiles_rendered");

  ThreadPool::SetGlobalThreads(1);
  const uint64_t before = counter.Value();
  const synth::City serial = synth::GenerateCity(config);
  EXPECT_EQ(counter.Value() - before,
            static_cast<uint64_t>(serial.num_regions()));

  ThreadPool::SetGlobalThreads(4);
  const synth::City parallel = synth::GenerateCity(config);
  ThreadPool::SetGlobalThreads(original_threads);

  ASSERT_NE(serial.images, nullptr);
  ASSERT_NE(parallel.images, nullptr);
  ASSERT_EQ(serial.images->size(), parallel.images->size());
  EXPECT_EQ(0, std::memcmp(serial.images->data(), parallel.images->data(),
                           sizeof(float) * serial.images->size()));
}

TEST(GridTest, RegionCountIsInt64) {
  const graph::GridSpec grid{60000, 60000, 128.0};
  EXPECT_EQ(grid.num_regions(), 3600000000LL);
}

TEST(ParityTest, MasterPredictionsExactWithoutHierarchy) {
  auto city = TinyCity();
  const UrbanRegionGraph urg = Dense(city);
  core::CmsfConfig cfg;
  cfg.use_hierarchy = false;
  cfg.use_gate = false;
  Rng rng(3);
  const core::CmsfModel model(cfg, urg.PoiDim(), urg.ImageDim(), &rng);
  const core::CmsfInputs inputs = core::CmsfInputs::FromUrg(urg);

  std::vector<int> eval_ids;
  for (int i = 0; i < urg.num_regions(); i += 7) eval_ids.push_back(i);
  const auto full = core::PredictCmsf(model, inputs, nullptr, eval_ids);
  const auto chunked =
      core::PredictCmsfMinibatch(model, urg, nullptr, eval_ids);
  ASSERT_EQ(full.size(), chunked.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full[i], chunked[i], 1e-6) << "eval id " << eval_ids[i];
  }
}

TEST(ParityTest, FullAndMinibatchGcnMetricsMatch) {
  auto city = TinyCity();
  const UrbanRegionGraph urg = Dense(city);
  eval::RunnerOptions ropt;
  ropt.num_folds = 3;
  ropt.num_runs = 1;
  ropt.seed = 1234;

  auto factory = [&](int batch_size) {
    return [batch_size](uint64_t seed) {
      baselines::TrainOptions options;
      options.epochs = 12;
      options.seed = seed;
      options.batch_size = batch_size;  // One full-closure batch per epoch.
      options.fanout = 0;
      return baselines::MakeDetector("GCN", options, core::CmsfConfig{});
    };
  };
  const auto full = eval::RunCrossValidation(urg, factory(0), ropt);
  const auto mini = eval::RunCrossValidation(urg, factory(4096), ropt);
  // Identical splits, same loss on the seed rows; only float summation
  // order differs, so the metrics must agree tightly.
  EXPECT_NEAR(full.auc.mean, mini.auc.mean, 0.05);
  EXPECT_NEAR(full.recall3.mean, mini.recall3.mean, 0.15);
}

TEST(CmsfMinibatchTest, TrainsAndScoresOnShardedUrg) {
  auto city = TinyCity();
  const UrbanRegionGraph urg = Sharded(city, 2);
  core::CmsfConfig cfg;
  cfg.master_epochs = 3;
  cfg.slave_epochs = 2;
  cfg.batch_size = 64;
  cfg.fanout = 4;
  cfg.num_clusters = 10;
  cfg.seed = 5;
  core::CmsfDetector detector(cfg);

  const std::vector<int> labeled = urg.LabeledIds();
  ASSERT_GT(labeled.size(), 0u);
  std::vector<int> labels(labeled.size());
  for (size_t i = 0; i < labeled.size(); ++i) labels[i] = urg.labels[labeled[i]];
  detector.Train(urg, labeled, labels);

  EXPECT_EQ(static_cast<int>(detector.frozen().hard.size()),
            urg.num_regions());
  EXPECT_EQ(detector.frozen().soft.rows(), urg.num_regions());
  const auto scores = detector.Score(urg, labeled);
  ASSERT_EQ(scores.size(), labeled.size());
  for (const float p : scores) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

}  // namespace
}  // namespace uv::urg
