#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "core/cmsf_detector.h"
#include "eval/splits.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "test_helpers.h"

namespace uv::obs {
namespace {

// ---------------------------------------------------------------------------
// Binning rules and divergence math.
// ---------------------------------------------------------------------------

TEST(QualityMath, FeatureBinRules) {
  float edges[QualityBaseline::kFeatureBins - 1];
  for (int i = 0; i < QualityBaseline::kFeatureBins - 1; ++i) {
    edges[i] = static_cast<float>(i + 1);  // 1, 2, ..., 9.
  }
  EXPECT_EQ(QualityBaseline::FeatureBin(-5.0f, edges), 0);
  EXPECT_EQ(QualityBaseline::FeatureBin(0.5f, edges), 0);
  EXPECT_EQ(QualityBaseline::FeatureBin(1.0f, edges), 0);  // Equal falls low.
  EXPECT_EQ(QualityBaseline::FeatureBin(1.5f, edges), 1);
  EXPECT_EQ(QualityBaseline::FeatureBin(9.0f, edges), 8);
  EXPECT_EQ(QualityBaseline::FeatureBin(9.5f, edges), 9);
  EXPECT_EQ(QualityBaseline::FeatureBin(1e9f, edges), 9);
  EXPECT_EQ(QualityBaseline::FeatureBin(std::nanf(""), edges), 0);
}

TEST(QualityMath, ScoreAndCalibBinRules) {
  EXPECT_EQ(QualityBaseline::ScoreBin(0.0f), 0);
  EXPECT_EQ(QualityBaseline::ScoreBin(-1.0f), 0);
  EXPECT_EQ(QualityBaseline::ScoreBin(std::nanf("")), 0);
  EXPECT_EQ(QualityBaseline::ScoreBin(0.049f), 0);
  EXPECT_EQ(QualityBaseline::ScoreBin(0.051f), 1);
  EXPECT_EQ(QualityBaseline::ScoreBin(0.999f), 19);
  EXPECT_EQ(QualityBaseline::ScoreBin(1.0f), 19);  // Clamped top bin.
  EXPECT_EQ(QualityBaseline::CalibBin(0.0f), 0);
  EXPECT_EQ(QualityBaseline::CalibBin(0.55f), 5);
  EXPECT_EQ(QualityBaseline::CalibBin(1.0f), 9);
}

TEST(QualityMath, PsiExactlyZeroOnProportionalCounts) {
  // IEEE division is correctly rounded, so 6/20 == 3/10 bit-for-bit and
  // every term short-circuits before the epsilon floor.
  const uint64_t expected[4] = {3, 5, 2, 10};
  const uint64_t actual[4] = {6, 10, 4, 20};
  EXPECT_EQ(PopulationStabilityIndex(expected, actual, 4), 0.0);
  EXPECT_EQ(KlDivergence(expected, actual, 4), 0.0);
  // Identity, and the empty-side convention.
  EXPECT_EQ(PopulationStabilityIndex(expected, expected, 4), 0.0);
  const uint64_t zeros[4] = {0, 0, 0, 0};
  EXPECT_EQ(PopulationStabilityIndex(expected, zeros, 4), 0.0);
}

TEST(QualityMath, PsiHandComputedValue) {
  // p = {1/2, 1/2}, q = {3/4, 1/4}:
  //   (3/4 - 1/2) ln(3/2) + (1/4 - 1/2) ln(1/2) = ln(3) / 4.
  const uint64_t expected[2] = {1, 1};
  const uint64_t actual[2] = {3, 1};
  EXPECT_DOUBLE_EQ(PopulationStabilityIndex(expected, actual, 2),
                   std::log(3.0) / 4.0);
  // KL(q || p) = 3/4 ln(3/2) + 1/4 ln(1/2).
  EXPECT_DOUBLE_EQ(KlDivergence(expected, actual, 2),
                   0.75 * std::log(1.5) + 0.25 * std::log(0.5));
  EXPECT_GT(PopulationStabilityIndex(actual, expected, 2), 0.0);
}

TEST(QualityMath, EceHandComputedValue) {
  // One bin: 2 samples, mean confidence 0.7, accuracy 0.5 -> ECE 0.2.
  uint64_t count[2] = {2, 0};
  double score_sum[2] = {1.4, 0.0};
  uint64_t pos[2] = {1, 0};
  EXPECT_DOUBLE_EQ(ExpectedCalibrationError(count, score_sum, pos, 2), 0.2);
  // Two bins weight by population: add 2 perfectly calibrated samples.
  count[1] = 2;
  score_sum[1] = 1.0;
  pos[1] = 1;
  EXPECT_DOUBLE_EQ(ExpectedCalibrationError(count, score_sum, pos, 2), 0.1);
  const uint64_t empty[2] = {0, 0};
  EXPECT_EQ(ExpectedCalibrationError(empty, score_sum, pos, 2), 0.0);
}

// ---------------------------------------------------------------------------
// Baseline builder.
// ---------------------------------------------------------------------------

// Deterministic pseudo-data without drawing on util Rng: a splitmix-style
// scramble mapped into [0, 1).
float Synth(int64_t i) {
  uint64_t z = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<float>((z ^ (z >> 31)) >> 40) / 16777216.0f;
}

TEST(QualityBaselineBuild, CountsEdgesAndMoments) {
  const int64_t n = 200;
  const int d = 3;
  std::vector<float> features(n * d);
  std::vector<float> scores(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int c = 0; c < d; ++c) features[i * d + c] = Synth(i * d + c) + c;
    scores[i] = Synth(1000 + i);
  }
  std::vector<float> labeled(scores.begin(), scores.begin() + 40);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = i % 3 == 0 ? 1 : 0;

  const QualityBaseline base =
      BuildQualityBaseline(features.data(), n, d, scores.data(), n,
                           labeled.data(), labels.data(), 40);
  ASSERT_EQ(static_cast<int>(base.columns.size()), d);
  for (int c = 0; c < d; ++c) {
    const QualityBaseline::Column& col = base.columns[c];
    uint64_t total = 0;
    for (uint64_t count : col.counts) total += count;
    EXPECT_EQ(total, static_cast<uint64_t>(n));
    for (int e = 1; e < QualityBaseline::kFeatureBins - 1; ++e) {
      EXPECT_LE(col.edges[e - 1], col.edges[e]);
    }
    // Column c lives in [c, c+1): the mean must too, and deciles of a
    // near-uniform column put every bin within a loose band.
    EXPECT_GT(col.mean, static_cast<float>(c));
    EXPECT_LT(col.mean, static_cast<float>(c + 1));
    EXPECT_GT(col.stdev, 0.0f);
  }
  uint64_t score_total = 0;
  for (uint64_t count : base.score_counts) score_total += count;
  EXPECT_EQ(score_total, static_cast<uint64_t>(n));
  uint64_t calib_total = 0;
  for (uint64_t count : base.calib_count) calib_total += count;
  EXPECT_EQ(calib_total, 40u);

  // Determinism: rebuilding from the same inputs is bit-identical.
  const QualityBaseline again =
      BuildQualityBaseline(features.data(), n, d, scores.data(), n,
                           labeled.data(), labels.data(), 40);
  for (int c = 0; c < d; ++c) {
    for (int e = 0; e < QualityBaseline::kFeatureBins - 1; ++e) {
      EXPECT_EQ(base.columns[c].edges[e], again.columns[c].edges[e]);
    }
    EXPECT_EQ(base.columns[c].mean, again.columns[c].mean);
  }
}

// ---------------------------------------------------------------------------
// Monitor sketch determinism: one batch vs many batches vs many threads
// must produce bit-identical reports — the sketches are commutative
// integer accumulators by construction.
// ---------------------------------------------------------------------------

void ExpectSameDrift(const DriftReport& a, const DriftReport& b) {
  EXPECT_EQ(a.feature_rows, b.feature_rows);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.feature_psi_max, b.feature_psi_max);
  EXPECT_EQ(a.feature_psi_argmax, b.feature_psi_argmax);
  EXPECT_EQ(a.feature_psi_mean, b.feature_psi_mean);
  EXPECT_EQ(a.feature_mean_zshift_max, b.feature_mean_zshift_max);
  EXPECT_EQ(a.score_psi, b.score_psi);
  EXPECT_EQ(a.score_kl, b.score_kl);
  EXPECT_EQ(a.alert, b.alert);
}

TEST(QualityMonitorDeterminism, BatchCompositionAndThreadsAreIrrelevant) {
  const int64_t n = 257;  // Deliberately not a multiple of anything.
  const int d = 4;
  std::vector<float> features(n * d);
  std::vector<float> scores(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int c = 0; c < d; ++c) {
      features[i * d + c] = 2.0f * Synth(i * d + c) - 0.3f;
    }
    scores[i] = Synth(5000 + i);
  }
  const QualityBaseline base = BuildQualityBaseline(
      features.data(), n / 2, d, scores.data(), n / 2, nullptr, nullptr, 0);

  QualityOptions opts;
  opts.publish_every_batches = 0;  // Manual publish only.

  // (a) One monolithic batch.
  QualityMonitor mono(base, opts);
  mono.ObserveBatch(features.data(), static_cast<int>(n), d, scores.data());

  // (b) Serial ragged batches: 1, 2, 3, ... rows at a time.
  QualityMonitor ragged(base, opts);
  for (int64_t at = 0, step = 1; at < n; at += step, ++step) {
    const int take = static_cast<int>(std::min<int64_t>(step, n - at));
    ragged.ObserveBatch(features.data() + at * d, take, d,
                        scores.data() + at);
  }

  // (c) Four threads, interleaved stripes of 7 rows.
  QualityMonitor threaded(base, opts);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int64_t at = 7 * t; at < n; at += 28) {
        const int take = static_cast<int>(std::min<int64_t>(7, n - at));
        threaded.ObserveBatch(features.data() + at * d, take, d,
                              scores.data() + at);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const DriftReport want = mono.ComputeDrift();
  EXPECT_EQ(want.feature_rows, static_cast<uint64_t>(n));
  ExpectSameDrift(want, ragged.ComputeDrift());
  ExpectSameDrift(want, threaded.ComputeDrift());
}

TEST(QualityMonitorDeterminism, LabelFeedbackOrderIndependentEce) {
  QualityOptions opts;
  opts.label_window = 512;
  const QualityBaseline base;  // Calibration needs no baseline.

  const int n = 96;
  std::vector<float> scores(n);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = Synth(42 + i);
    labels[i] = Synth(900 + i) > 0.6f ? 1 : 0;
  }

  QualityMonitor serial(base, opts);
  serial.ObserveLabels(scores.data(), labels.data(), n);

  QualityMonitor threaded(base, opts);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int at = t; at < n; at += 4) {
        threaded.ObserveLabels(scores.data() + at, labels.data() + at, 1);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const CalibrationReport a = serial.ComputeCalibration();
  const CalibrationReport b = threaded.ComputeCalibration();
  EXPECT_EQ(a.labels, static_cast<uint64_t>(n));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.ece, b.ece);  // Fixed-point bin sums commute exactly.
  // Ring order differs across threads but the tp/fp/fn multiset does not.
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_GT(a.ece, 0.0);
}

TEST(QualityMonitor, CalibrationHandComputed) {
  const QualityBaseline base;
  QualityOptions opts;
  opts.label_window = 8;
  QualityMonitor monitor(base, opts);
  // Two samples in bin 7 (confidence 0.75, accuracy 0.5), two in bin 2
  // (confidence 0.25, accuracy 0.5): ECE = 0.25.
  const float scores[4] = {0.75f, 0.75f, 0.25f, 0.25f};
  const int labels[4] = {1, 0, 1, 0};
  monitor.ObserveLabels(scores, labels, 4);
  const CalibrationReport calib = monitor.ComputeCalibration();
  EXPECT_EQ(calib.labels, 4u);
  EXPECT_NEAR(calib.ece, 0.25, 1e-6);  // Fixed-point score quantization.
  // At threshold 0.5: predictions {1,1,0,0}, truths {1,0,1,0}.
  EXPECT_DOUBLE_EQ(calib.precision, 0.5);
  EXPECT_DOUBLE_EQ(calib.recall, 0.5);
}

TEST(QualityOptionsEnv, ParsesAndIgnoresGarbage) {
  unsetenv("UV_PSI_ALERT");
  unsetenv("UV_LABEL_WINDOW");
  const QualityOptions defaults = QualityOptions::FromEnv();
  EXPECT_DOUBLE_EQ(defaults.psi_alert, 0.2);
  EXPECT_EQ(defaults.label_window, 4096);
  setenv("UV_PSI_ALERT", "0.5", 1);
  setenv("UV_LABEL_WINDOW", "128", 1);
  const QualityOptions overridden = QualityOptions::FromEnv();
  EXPECT_DOUBLE_EQ(overridden.psi_alert, 0.5);
  EXPECT_EQ(overridden.label_window, 128);
  setenv("UV_PSI_ALERT", "-3", 1);
  setenv("UV_LABEL_WINDOW", "bogus", 1);
  const QualityOptions garbage = QualityOptions::FromEnv();
  EXPECT_DOUBLE_EQ(garbage.psi_alert, 0.2);
  EXPECT_EQ(garbage.label_window, 4096);
  unsetenv("UV_PSI_ALERT");
  unsetenv("UV_LABEL_WINDOW");
}

}  // namespace
}  // namespace uv::obs

// ---------------------------------------------------------------------------
// End to end: checkpoint baseline -> engine hook -> server -> drift/shadow.
// ---------------------------------------------------------------------------

namespace uv::infer {
namespace {

class QualityServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    const eval::Fold& fold = folds[0];
    std::vector<int> train_labels;
    for (int id : fold.train_ids) train_labels.push_back(urg_->labels[id]);

    core::CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 8;
    config.slave_epochs = 3;
    core::CmsfDetector trained(config);
    trained.Train(*urg_, fold.train_ids, train_labels);

    // The baseline the monitors use must be the one that survives the
    // UVCK round trip, not the in-memory copy.
    const std::string path =
        ::testing::TempDir() + "/quality_serving_test.uvck";
    ASSERT_TRUE(trained.SaveModel(*urg_, path).ok());
    detector_ = new core::CmsfDetector(core::CmsfConfig{});
    ASSERT_TRUE(detector_->LoadModel(*urg_, path).ok());

    all_ids_ = new std::vector<int>(urg_->num_regions());
    std::iota(all_ids_->begin(), all_ids_->end(), 0);
    auto engine = baselines::MakeEngine(*detector_, *urg_);
    expected_ = new std::vector<float>(engine->Score(*all_ids_));
  }

  static obs::QualityOptions ManualPublish() {
    obs::QualityOptions opts;
    opts.publish_every_batches = 0;
    return opts;
  }

  static urg::UrbanRegionGraph* urg_;
  static core::CmsfDetector* detector_;
  static std::vector<int>* all_ids_;
  static std::vector<float>* expected_;
};

urg::UrbanRegionGraph* QualityServingTest::urg_ = nullptr;
core::CmsfDetector* QualityServingTest::detector_ = nullptr;
std::vector<int>* QualityServingTest::all_ids_ = nullptr;
std::vector<float>* QualityServingTest::expected_ = nullptr;

TEST_F(QualityServingTest, PsiExactlyZeroServingTheTrainingCity) {
  auto engine = baselines::MakeEngine(*detector_, *urg_);
  obs::QualityMonitor monitor(detector_->baseline(*urg_), ManualPublish());
  engine->SetQualityMonitor(&monitor);
  ScoringServer server(engine.get());
  // Serve the full city twice, in uneven request sizes: counts are then
  // 2x the baseline's, and proportions are bit-identical.
  for (int pass = 0; pass < 2; ++pass) {
    size_t at = 0;
    size_t step = 1;
    while (at < all_ids_->size()) {
      const size_t take = std::min(step, all_ids_->size() - at);
      std::vector<float> out(take);
      server.Score(all_ids_->data() + at, static_cast<int>(take),
                   out.data());
      at += take;
      step = step * 2 + 1;
    }
  }
  const obs::DriftReport drift = monitor.ComputeDrift();
  EXPECT_TRUE(drift.has_baseline);
  EXPECT_EQ(drift.feature_rows,
            static_cast<uint64_t>(2 * urg_->num_regions()));
  EXPECT_EQ(drift.feature_psi_max, 0.0);  // Exactly, not approximately.
  EXPECT_EQ(drift.feature_psi_mean, 0.0);
  EXPECT_EQ(drift.score_psi, 0.0);
  EXPECT_EQ(drift.score_kl, 0.0);
  EXPECT_FALSE(drift.alert);
}

TEST_F(QualityServingTest, ShiftedCityTripsThePsiAlert) {
  urg::UrbanRegionGraph shifted = *urg_;
  float* poi = shifted.poi_features.data();
  const int64_t n = static_cast<int64_t>(shifted.poi_features.rows()) *
                    shifted.poi_features.cols();
  for (int64_t i = 0; i < n; ++i) poi[i] = poi[i] * 1.6f + 0.8f;

  auto engine = baselines::MakeEngine(*detector_, shifted);
  obs::QualityMonitor monitor(detector_->baseline(*urg_), ManualPublish());
  engine->SetQualityMonitor(&monitor);
  ScoringServer server(engine.get());
  (void)server.Score(*all_ids_);

  const obs::DriftReport drift = monitor.ComputeDrift();
  EXPECT_GT(drift.feature_psi_max, monitor.options().psi_alert);
  EXPECT_GE(drift.feature_psi_argmax, 0);
  EXPECT_TRUE(drift.alert);

  // Publish twice: the alert counter records the rising edge only once.
  obs::Counter& alerts = obs::Registry::Global().GetCounter("drift.alerts");
  const uint64_t before = alerts.Value();
  monitor.Publish();
  monitor.Publish();
  EXPECT_EQ(alerts.Value(), before + 1);
  EXPECT_EQ(obs::Registry::Global().GetGauge("drift.alert").Value(), 1);
}

TEST_F(QualityServingTest, ShadowBitIdenticalWithSameCheckpoint) {
  auto primary = baselines::MakeEngine(*detector_, *urg_);
  auto candidate = baselines::MakeEngine(*detector_, *urg_);
  ServerOptions options;
  options.shadow = candidate.get();
  options.shadow_sample = 1.0;
  ScoringServer server(primary.get(), options);
  const std::vector<float> got = server.Score(*all_ids_);
  server.Shutdown();  // Flush: shadow totals update after clients wake.
  EXPECT_EQ(got, *expected_);
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shadow_requests, 1u);
  EXPECT_EQ(stats.shadow_regions,
            static_cast<uint64_t>(urg_->num_regions()));
  EXPECT_EQ(stats.shadow_disagreements, 0u);
}

TEST_F(QualityServingTest, ShadowSampleZeroDisablesReScoring) {
  auto primary = baselines::MakeEngine(*detector_, *urg_);
  auto candidate = baselines::MakeEngine(*detector_, *urg_);
  ServerOptions options;
  options.shadow = candidate.get();
  options.shadow_sample = 0.0;
  ScoringServer server(primary.get(), options);
  EXPECT_EQ(server.Score(*all_ids_), *expected_);
  server.Shutdown();
  EXPECT_EQ(server.Stats().shadow_regions, 0u);
  EXPECT_EQ(server.Stats().shadow_requests, 0u);
}

TEST_F(QualityServingTest, ShadowDisagreementLeavesPrimaryUntouched) {
  auto primary = baselines::MakeEngine(*detector_, *urg_);
  // A constant always-positive candidate: logit 10 for every region, so
  // every primary score below 0.5 is a recorded decision flip.
  const int n = urg_->num_regions();
  auto candidate = MakeDenseTailEngine(
      Tensor(n, 1), Tensor(1, 1), Tensor(1, 1), kern::Activation::kRelu,
      Tensor(1, 1), Tensor(1, 1, {10.0f}));
  uint64_t below = 0;
  for (float s : *expected_) below += s < 0.5f ? 1 : 0;
  ASSERT_GT(below, 0u);  // The tiny city is mostly non-UV.

  ServerOptions options;
  options.shadow = candidate.get();
  options.shadow_sample = 1.0;
  ScoringServer server(primary.get(), options);
  const std::vector<float> got = server.Score(*all_ids_);
  server.Shutdown();
  EXPECT_EQ(got, *expected_);  // Served results never see the shadow.
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shadow_regions, static_cast<uint64_t>(n));
  EXPECT_EQ(stats.shadow_disagreements, below);
}

TEST_F(QualityServingTest, FeedbackRoutesToTheMonitor) {
  auto engine = baselines::MakeEngine(*detector_, *urg_);
  ScoringServer bare(engine.get());
  const float score = 0.9f;
  const int label = 1;
  EXPECT_FALSE(bare.Feedback(&score, &label, 1));  // No monitor attached.
  bare.Shutdown();

  obs::QualityMonitor monitor(detector_->baseline(*urg_), ManualPublish());
  engine->SetQualityMonitor(&monitor);
  ScoringServer server(engine.get());
  EXPECT_TRUE(server.Feedback(&score, &label, 1));
  EXPECT_EQ(monitor.ComputeCalibration().labels, 1u);
}

}  // namespace
}  // namespace uv::infer
