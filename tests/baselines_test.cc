#include <gtest/gtest.h>

#include <memory>

#include "baselines/registry.h"
#include "eval/metrics.h"
#include "eval/splits.h"
#include "test_helpers.h"

namespace uv::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    fold_ = new eval::Fold(folds[0]);
    train_labels_ = new std::vector<int>();
    for (int id : fold_->train_ids) train_labels_->push_back(urg_->labels[id]);
    test_labels_ = new std::vector<int>();
    for (int id : fold_->test_ids) test_labels_->push_back(urg_->labels[id]);
  }

  static TrainOptions FastOptions(uint64_t seed = 1) {
    TrainOptions options;
    options.epochs = 15;
    options.learning_rate = 5e-3;
    options.seed = seed;
    return options;
  }

  static core::CmsfConfig FastCmsf() {
    core::CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.slave_epochs = 5;
    return config;
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Fold* fold_;
  static std::vector<int>* train_labels_;
  static std::vector<int>* test_labels_;
};

urg::UrbanRegionGraph* BaselinesTest::urg_ = nullptr;
eval::Fold* BaselinesTest::fold_ = nullptr;
std::vector<int>* BaselinesTest::train_labels_ = nullptr;
std::vector<int>* BaselinesTest::test_labels_ = nullptr;

TEST_F(BaselinesTest, RegistryListsPaperOrder) {
  auto names = AllDetectorNames();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names.front(), "MLP");
  EXPECT_EQ(names.back(), "CMSF");
}

// Every method in the registry trains, scores in [0,1], reports parameters
// and timing, and is deterministic under a fixed seed.
class EveryDetectorTest : public BaselinesTest,
                          public ::testing::WithParamInterface<std::string> {};

TEST_P(EveryDetectorTest, TrainsAndScores) {
  auto detector = MakeDetector(GetParam(), FastOptions(), FastCmsf());
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), GetParam());
  detector->Train(*urg_, fold_->train_ids, *train_labels_);
  auto scores = detector->Score(*urg_, fold_->test_ids);
  ASSERT_EQ(scores.size(), fold_->test_ids.size());
  for (float s : scores) {
    ASSERT_GE(s, 0.0f);
    ASSERT_LE(s, 1.0f);
  }
  EXPECT_GT(detector->NumParameters(), 0);
  EXPECT_GE(detector->TrainSecondsPerEpoch(), 0.0);
  EXPECT_GE(detector->LastInferenceSeconds(), 0.0);
}

TEST_P(EveryDetectorTest, DeterministicGivenSeed) {
  auto a = MakeDetector(GetParam(), FastOptions(7), FastCmsf());
  auto b = MakeDetector(GetParam(), FastOptions(7), FastCmsf());
  a->Train(*urg_, fold_->train_ids, *train_labels_);
  b->Train(*urg_, fold_->train_ids, *train_labels_);
  auto sa = a->Score(*urg_, fold_->test_ids);
  auto sb = b->Score(*urg_, fold_->test_ids);
  for (size_t i = 0; i < sa.size(); ++i) ASSERT_EQ(sa[i], sb[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EveryDetectorTest,
    ::testing::Values("MLP", "GCN", "GAT", "MMRE", "UVLens", "MUVFCN",
                      "ImGAGN", "CMSF", "CMSF-M", "CMSF-G", "CMSF-H"));

TEST_F(BaselinesTest, MlpLearnsSignal) {
  TrainOptions options = FastOptions();
  options.epochs = 80;
  auto detector = MakeDetector("MLP", options, FastCmsf());
  detector->Train(*urg_, fold_->train_ids, *train_labels_);
  auto scores = detector->Score(*urg_, fold_->test_ids);
  EXPECT_GT(eval::Auc(scores, *test_labels_), 0.65);
}

TEST_F(BaselinesTest, ModelSizeOrdering) {
  // UVLens (FC stack on flattened maps) must dwarf MLP, mirroring the
  // Table III model-size ordering.
  auto mlp = MakeDetector("MLP", FastOptions(), FastCmsf());
  auto uvlens = MakeDetector("UVLens", FastOptions(), FastCmsf());
  mlp->Train(*urg_, fold_->train_ids, *train_labels_);
  uvlens->Train(*urg_, fold_->train_ids, *train_labels_);
  EXPECT_GT(uvlens->NumParameters(), 3 * mlp->NumParameters());
}

TEST_F(BaselinesTest, CommonHelpers) {
  Tensor features(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  auto rows = GatherConstRows(features, {3, 0});
  EXPECT_FLOAT_EQ(rows->value.at(0, 1), 8.0f);
  EXPECT_FLOAT_EQ(rows->value.at(1, 0), 1.0f);
  EXPECT_FALSE(rows->requires_grad);

  Tensor logits(3, 1, {0.0f, 100.0f, -100.0f});
  auto probs = SigmoidRows(logits, {0, 1, 2});
  EXPECT_NEAR(probs[0], 0.5f, 1e-6f);
  EXPECT_NEAR(probs[1], 1.0f, 1e-6f);
  EXPECT_NEAR(probs[2], 0.0f, 1e-6f);
}

}  // namespace
}  // namespace uv::baselines
