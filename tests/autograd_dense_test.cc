#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/grad_check.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace uv::ag {
namespace {

Tensor RandomTensor(int r, int c, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, scale);
  return t;
}

// Sums all elements after squaring, a non-trivial scalar readout that keeps
// every gradient path exercised.
VarPtr SquaredReadout(const VarPtr& x) { return SumAll(Mul(x, x)); }

TEST(VariableTest, LeafFlags) {
  auto p = MakeParam(Tensor(2, 2));
  auto c = MakeConst(Tensor(2, 2));
  EXPECT_TRUE(p->requires_grad);
  EXPECT_FALSE(c->requires_grad);
  EXPECT_STREQ(p->op_name, "leaf");
}

TEST(VariableTest, OpInheritsRequiresGrad) {
  auto p = MakeParam(RandomTensor(2, 2, 1));
  auto c = MakeConst(RandomTensor(2, 2, 2));
  EXPECT_TRUE(Add(p, c)->requires_grad);
  EXPECT_FALSE(Add(c, c)->requires_grad);
}

TEST(VariableTest, AccumGradAdds) {
  auto p = MakeParam(Tensor(1, 2));
  Tensor g(1, 2, {1, 2});
  p->AccumGrad(g);
  p->AccumGrad(g);
  EXPECT_FLOAT_EQ(p->grad.at(0, 1), 4.0f);
}

TEST(BackwardTest, SimpleChain) {
  // loss = sum((2x)^2) = 4*sum(x^2) => dloss/dx = 8x.
  auto x = MakeParam(Tensor(1, 3, {1, 2, 3}));
  auto loss = SumAll(Mul(ScalarMul(x, 2.0f), ScalarMul(x, 2.0f)));
  Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(x->grad.at(0, 2), 24.0f);
}

TEST(BackwardTest, DiamondGraphAccumulates) {
  // y = x + x => dy/dx = 2 everywhere.
  auto x = MakeParam(Tensor(2, 2, {1, 2, 3, 4}));
  auto loss = SumAll(Add(x, x));
  Backward(loss);
  for (int64_t i = 0; i < x->grad.size(); ++i) {
    EXPECT_FLOAT_EQ(x->grad[i], 2.0f);
  }
}

TEST(BackwardTest, SharedSubexpressionVisitedOnce) {
  auto x = MakeParam(Tensor(1, 2, {3, 4}));
  auto h = ScalarMul(x, 2.0f);
  auto loss = SumAll(Add(h, h));  // d/dx = 4.
  Backward(loss);
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(x->grad.at(0, 1), 4.0f);
}

TEST(BackwardTest, ZeroGrads) {
  auto x = MakeParam(Tensor(1, 1, {2}));
  Backward(SquaredReadout(x));
  EXPECT_NE(x->grad.at(0, 0), 0.0f);
  ZeroGrads({x});
  EXPECT_FLOAT_EQ(x->grad.at(0, 0), 0.0f);
}

// ---------------- Finite-difference checks per op --------------------------

struct OpCase {
  const char* name;
  std::function<VarPtr(const std::vector<VarPtr>&)> apply;
  std::vector<std::pair<int, int>> shapes;  // Parameter shapes.
};

class DenseOpGradTest : public ::testing::TestWithParam<int> {};

const std::vector<OpCase>& Cases() {
  static const auto* cases = new std::vector<OpCase>{
      {"matmul",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(MatMul(p[0], p[1]));
       },
       {{3, 4}, {4, 2}}},
      {"add",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(Add(p[0], p[1]));
       },
       {{3, 3}, {3, 3}}},
      {"sub",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(Sub(p[0], p[1]));
       },
       {{2, 4}, {2, 4}}},
      {"mul",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(Mul(p[0], p[1]));
       },
       {{3, 2}, {3, 2}}},
      {"scalar_mul",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(ScalarMul(p[0], -1.7f));
       },
       {{2, 3}}},
      {"add_row_broadcast",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(AddRowBroadcast(p[0], p[1]));
       },
       {{4, 3}, {1, 3}}},
      {"mul_col_broadcast",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(MulColBroadcast(p[0], p[1]));
       },
       {{4, 3}, {4, 1}}},
      {"mul_row_vector",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(MulRowVector(p[0], p[1]));
       },
       {{4, 3}, {1, 3}}},
      {"transpose",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(Transpose(p[0]));
       },
       {{3, 5}}},
      {"concat_cols",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(ConcatCols(p[0], p[1]));
       },
       {{3, 2}, {3, 4}}},
      {"concat_rows",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(ConcatRows(p[0], p[1]));
       },
       {{2, 3}, {4, 3}}},
      {"slice_cols",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(SliceCols(p[0], 1, 3));
       },
       {{3, 5}}},
      {"row_softmax",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(RowSoftmax(p[0], 0.7f));
       },
       {{3, 4}}},
      {"sigmoid",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(Sigmoid(p[0]));
       },
       {{3, 3}}},
      {"tanh",
       [](const std::vector<VarPtr>& p) { return SquaredReadout(Tanh(p[0])); },
       {{3, 3}}},
      {"leaky_relu",
       [](const std::vector<VarPtr>& p) {
         return SquaredReadout(LeakyRelu(p[0], 0.2f));
       },
       {{4, 4}}},
      {"mean_all",
       [](const std::vector<VarPtr>& p) {
         auto m = MeanAll(Mul(p[0], p[0]));
         return m;
       },
       {{3, 4}}},
  };
  return *cases;
}

TEST_P(DenseOpGradTest, MatchesFiniteDifferences) {
  const OpCase& c = Cases()[GetParam()];
  std::vector<VarPtr> params;
  for (size_t i = 0; i < c.shapes.size(); ++i) {
    // Offset from zero so ReLU-style kinks are unlikely at the test point.
    Tensor t = RandomTensor(c.shapes[i].first, c.shapes[i].second, 100 + i);
    for (int64_t j = 0; j < t.size(); ++j) {
      if (std::fabs(t[j]) < 0.05f) t[j] += 0.1f;
    }
    params.push_back(MakeParam(std::move(t)));
  }
  auto result = CheckGradients(params, [&]() { return c.apply(params); });
  EXPECT_TRUE(result.ok) << c.name << ": " << result.detail
                         << " (max rel err " << result.max_rel_error << ")";
}

INSTANTIATE_TEST_SUITE_P(AllOps, DenseOpGradTest,
                         ::testing::Range(0, static_cast<int>(Cases().size())),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return Cases()[info.param].name;
                         });

TEST(DenseOpsTest, ReluForward) {
  auto x = MakeConst(Tensor(1, 4, {-2, -0.5f, 0.5f, 2}));
  auto y = Relu(x);
  EXPECT_FLOAT_EQ(y->value.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y->value.at(0, 3), 2.0f);
}

TEST(DenseOpsTest, SigmoidRange) {
  auto x = MakeConst(RandomTensor(5, 5, 7, 10.0f));
  auto y = Sigmoid(x);
  for (int64_t i = 0; i < y->value.size(); ++i) {
    // Float rounding may saturate to exactly 0 or 1 for huge |x|.
    EXPECT_GE(y->value[i], 0.0f);
    EXPECT_LE(y->value[i], 1.0f);
  }
  EXPECT_FALSE(y->value.HasNonFinite());
}

TEST(DenseOpsTest, CompositionDeepChainGradCheck) {
  auto w1 = MakeParam(RandomTensor(3, 4, 1, 0.5f));
  auto w2 = MakeParam(RandomTensor(4, 2, 2, 0.5f));
  auto b = MakeParam(RandomTensor(1, 2, 3, 0.5f));
  auto x = MakeConst(RandomTensor(5, 3, 4));
  auto build = [&]() {
    auto h = Tanh(MatMul(x, w1));
    auto o = Sigmoid(AddRowBroadcast(MatMul(h, w2), b));
    return SumAll(Mul(o, o));
  };
  auto result = CheckGradients({w1, w2, b}, build);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(DenseOpsTest, DenseBiasActGradCheckAllActivations) {
  const kern::Activation acts[] = {
      kern::Activation::kNone, kern::Activation::kRelu,
      kern::Activation::kLeakyRelu, kern::Activation::kSigmoid};
  for (kern::Activation act : acts) {
    auto x = MakeParam(RandomTensor(5, 3, 21));
    auto w = MakeParam(RandomTensor(3, 4, 22, 0.5f));
    auto b = MakeParam(RandomTensor(1, 4, 23, 0.5f));
    // Nudge pre-activations away from the ReLU kink so finite differences
    // stay on one side of it.
    Tensor pre = Tensor::Uninit(5, 4);
    GemmBiasAct(false, false, 1.0f, x->value, w->value, 0.0f, &pre, &b->value,
                kern::Activation::kNone);
    for (int64_t i = 0; i < pre.size(); ++i) {
      if (std::fabs(pre[i]) < 0.05f) {
        b->value[i % 4] += 0.1f;
      }
    }
    auto build = [&]() {
      return SquaredReadout(DenseBiasAct(x, w, b, act, 0.2f));
    };
    auto result = CheckGradients({x, w, b}, build);
    EXPECT_TRUE(result.ok)
        << "act=" << static_cast<int>(act) << ": " << result.detail
        << " (max rel err " << result.max_rel_error << ")";
  }
}

TEST(DenseOpsTest, DenseBiasActForwardMatchesUnfusedOps) {
  auto x = MakeConst(RandomTensor(7, 5, 31));
  auto w = MakeConst(RandomTensor(5, 6, 32, 0.5f));
  auto b = MakeConst(RandomTensor(1, 6, 33, 0.5f));
  auto fused = DenseBiasAct(x, w, b, kern::Activation::kRelu);
  auto unfused = Relu(AddRowBroadcast(MatMul(x, w), b));
  ASSERT_EQ(fused->value.size(), unfused->value.size());
  for (int64_t i = 0; i < fused->value.size(); ++i) {
    EXPECT_EQ(fused->value[i], unfused->value[i]) << "index " << i;
  }
}

TEST(DenseOpsTest, ConstInputsReceiveNoGrad) {
  auto c = MakeConst(RandomTensor(2, 2, 9));
  auto p = MakeParam(RandomTensor(2, 2, 10));
  auto loss = SumAll(Mul(c, p));
  Backward(loss);
  EXPECT_TRUE(c->grad.empty());
  EXPECT_FALSE(p->grad.empty());
}

}  // namespace
}  // namespace uv::ag
