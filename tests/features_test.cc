#include <gtest/gtest.h>

#include <cmath>

#include "features/image_encoder.h"
#include "tensor/tensor_ops.h"
#include "features/poi_features.h"
#include "synth/city.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace uv::features {
namespace {

synth::City MakeTestCity() {
  return synth::GenerateCity(uv::testing::TinyCityConfig());
}

// Hand-built city with full control over POI placement.
synth::City HandCity(int size = 8) {
  synth::City city;
  city.config = uv::testing::TinyCityConfig();
  city.config.height = city.config.width = size;
  city.config.generate_images = false;
  city.grid = {size, size, 128.0};
  const int n = city.grid.num_regions();
  city.archetypes.assign(n, synth::Archetype::kSuburbResidential);
  city.district.assign(n, 0);
  city.uv_overlap.assign(n, 0.0f);
  city.is_uv.assign(n, 0);
  city.labels.assign(n, -1);
  city.pois_by_region.assign(n, {});
  return city;
}

void AddPoi(synth::City* city, int row, int col, synth::PoiCategory cat,
            synth::RadiusType rt = synth::RadiusType::kNone) {
  synth::Poi poi;
  poi.category = cat;
  poi.radius_type = rt;
  poi.facility_type = rt != synth::RadiusType::kNone
                          ? synth::FacilityOf(rt)
                          : synth::FacilityOfCategory(cat);
  poi.x = (col + 0.5) * 128.0;
  poi.y = (row + 0.5) * 128.0;
  const int id = city->grid.RegionId(row, col);
  city->pois_by_region[id].push_back(static_cast<int>(city->pois.size()));
  city->pois.push_back(poi);
}

TEST(PoiFeaturesTest, DimensionIs64) {
  synth::City city = MakeTestCity();
  Tensor f = BuildPoiFeatures(city);
  EXPECT_EQ(f.rows(), city.num_regions());
  EXPECT_EQ(f.cols(), kPoiFeatureDim);
  EXPECT_EQ(kPoiFeatureDim, 64);
  EXPECT_FALSE(f.HasNonFinite());
}

TEST(PoiFeaturesTest, CategoryDistributionSumsToOne) {
  synth::City city = MakeTestCity();
  Tensor f = BuildPoiFeatures(city);
  for (int r = 0; r < f.rows(); ++r) {
    if (city.pois_by_region[r].empty()) continue;
    double own = 0.0, win = 0.0;
    for (int c = 0; c < 23; ++c) own += f.at(r, c);
    for (int c = 24; c < 47; ++c) win += f.at(r, c);
    EXPECT_NEAR(own, 1.0, 1e-4) << "region " << r;
    EXPECT_NEAR(win, 1.0, 1e-4) << "region " << r;
  }
}

TEST(PoiFeaturesTest, EmptyRegionHasZeroDistribution) {
  synth::City city = HandCity();
  Tensor f = BuildPoiFeatures(city);
  for (int c = 0; c < 24; ++c) EXPECT_FLOAT_EQ(f.at(0, c), 0.0f);
}

TEST(PoiFeaturesTest, CategoryHistogramCountsCorrectly) {
  synth::City city = HandCity();
  AddPoi(&city, 2, 2, synth::PoiCategory::kFoodService);
  AddPoi(&city, 2, 2, synth::PoiCategory::kFoodService);
  AddPoi(&city, 2, 2, synth::PoiCategory::kHotel);
  Tensor f = BuildPoiFeatures(city);
  const int id = city.grid.RegionId(2, 2);
  EXPECT_NEAR(f.at(id, 0), 2.0 / 3.0, 1e-5);  // FoodService ratio.
  EXPECT_NEAR(f.at(id, 1), 1.0 / 3.0, 1e-5);  // Hotel ratio.
}

TEST(PoiFeaturesTest, WindowDistributionIncludesNeighbors) {
  synth::City city = HandCity();
  AddPoi(&city, 3, 3, synth::PoiCategory::kFoodService);
  AddPoi(&city, 3, 4, synth::PoiCategory::kHotel);  // Neighbour cell.
  Tensor f = BuildPoiFeatures(city);
  const int id = city.grid.RegionId(3, 3);
  // Own distribution sees only FoodService; window sees both.
  EXPECT_NEAR(f.at(id, 0), 1.0, 1e-5);
  EXPECT_NEAR(f.at(id, 24 + 0), 0.5, 1e-5);
  EXPECT_NEAR(f.at(id, 24 + 1), 0.5, 1e-5);
}

TEST(PoiFeaturesTest, RadiusBucketsQuantized) {
  synth::City city = MakeTestCity();
  Tensor f = BuildPoiFeatures(city);
  for (int r = 0; r < f.rows(); ++r) {
    for (int c = 48; c < 63; ++c) {
      const float v = f.at(r, c);
      const bool valid = v == 0.0f || std::fabs(v - 1.0f / 3) < 1e-5 ||
                         std::fabs(v - 2.0f / 3) < 1e-5 || v == 1.0f;
      ASSERT_TRUE(valid) << "region " << r << " col " << c << " = " << v;
    }
  }
}

TEST(PoiFeaturesTest, RadiusBucketBoundaries) {
  // A hospital 4 cells away (~512m) falls in the 0.5-1.5km bucket; one in
  // the same cell falls in the <0.5km bucket.
  synth::City city = HandCity();
  AddPoi(&city, 0, 0, synth::PoiCategory::kMedicine,
         synth::RadiusType::kHospital);
  Tensor f = BuildPoiFeatures(city);
  const int hosp_col = 48 + static_cast<int>(synth::RadiusType::kHospital);
  EXPECT_FLOAT_EQ(f.at(city.grid.RegionId(0, 0), hosp_col), 0.0f);
  EXPECT_NEAR(f.at(city.grid.RegionId(0, 4), hosp_col), 1.0f / 3, 1e-5);
  EXPECT_NEAR(f.at(city.grid.RegionId(7, 7), hosp_col), 2.0f / 3, 1e-5);
}

TEST(PoiFeaturesTest, NoAnchorMeansFarthestBucket) {
  synth::City city = HandCity();
  Tensor f = BuildPoiFeatures(city);
  // No hospitals anywhere: all regions in the >3km bucket.
  const int hosp_col = 48 + static_cast<int>(synth::RadiusType::kHospital);
  for (int r = 0; r < f.rows(); ++r) EXPECT_FLOAT_EQ(f.at(r, hosp_col), 1.0f);
}

TEST(PoiFeaturesTest, FacilityIndexIsBinary) {
  synth::City city = MakeTestCity();
  Tensor f = BuildPoiFeatures(city);
  for (int r = 0; r < f.rows(); ++r) {
    ASSERT_TRUE(f.at(r, 63) == 0.0f || f.at(r, 63) == 1.0f);
  }
}

TEST(PoiFeaturesTest, FacilityIndexRequiresAllNineTypes) {
  synth::City city = HandCity();
  // Plant 8 of the 9 facility types at cell (4,4) -> index stays 0.
  AddPoi(&city, 4, 4, synth::PoiCategory::kMedicine, synth::RadiusType::kHospital);
  AddPoi(&city, 4, 4, synth::PoiCategory::kShoppingPlace, synth::RadiusType::kShop);
  AddPoi(&city, 4, 4, synth::PoiCategory::kSportsFitness);
  AddPoi(&city, 4, 4, synth::PoiCategory::kEducation, synth::RadiusType::kSchool);
  AddPoi(&city, 4, 4, synth::PoiCategory::kFoodService);
  AddPoi(&city, 4, 4, synth::PoiCategory::kFinancialService);
  AddPoi(&city, 4, 4, synth::PoiCategory::kCulturalMedia);
  AddPoi(&city, 4, 4, synth::PoiCategory::kGovernmentApparatus,
         synth::RadiusType::kPoliceStation);
  Tensor f8 = BuildPoiFeatures(city);
  EXPECT_FLOAT_EQ(f8.at(city.grid.RegionId(4, 4), 63), 0.0f);
  // Add the 9th (transportation) -> index becomes 1 nearby.
  AddPoi(&city, 4, 4, synth::PoiCategory::kTransportationFacility,
         synth::RadiusType::kBusStop);
  Tensor f9 = BuildPoiFeatures(city);
  EXPECT_FLOAT_EQ(f9.at(city.grid.RegionId(4, 4), 63), 1.0f);
  // A cell 12+ cells away (>1km in BFS metric) stays 0.
  EXPECT_FLOAT_EQ(f9.at(city.grid.RegionId(0, 0), 63), 0.0f);
}

TEST(NearestAnchorDistanceTest, BfsMetric) {
  synth::City city = HandCity();
  AddPoi(&city, 0, 0, synth::PoiCategory::kMedicine,
         synth::RadiusType::kHospital);
  auto dist = NearestAnchorDistance(city, [](const synth::Poi& p) {
    return p.radius_type == synth::RadiusType::kHospital;
  });
  EXPECT_FLOAT_EQ(dist[city.grid.RegionId(0, 0)], 0.0f);
  EXPECT_FLOAT_EQ(dist[city.grid.RegionId(0, 3)], 3 * 128.0f);
  // Manhattan path on the 4-connected grid.
  EXPECT_FLOAT_EQ(dist[city.grid.RegionId(2, 2)], 4 * 128.0f);
}

TEST(NearestAnchorDistanceTest, NoAnchorsGivesInfinity) {
  synth::City city = HandCity();
  auto dist = NearestAnchorDistance(
      city, [](const synth::Poi&) { return false; });
  EXPECT_TRUE(std::isinf(dist[0]));
}

// ----------------------------- ConvEncoder ----------------------------------

TEST(ConvEncoderTest, OutputShape) {
  ConvEncoder::Options options;
  options.image_size = 16;
  options.out_dim = 48;
  ConvEncoder encoder(options);
  Rng rng(5);
  Tensor images(7, 3 * 16 * 16);
  images.RandomNormal(&rng, 0.3f);
  Tensor out = encoder.Encode(images);
  EXPECT_EQ(out.rows(), 7);
  EXPECT_EQ(out.cols(), 48);
  EXPECT_FALSE(out.HasNonFinite());
}

TEST(ConvEncoderTest, DeterministicAcrossInstances) {
  ConvEncoder::Options options;
  options.image_size = 16;
  options.out_dim = 32;
  ConvEncoder a(options), b(options);
  Rng rng(9);
  Tensor images(3, 3 * 16 * 16);
  images.RandomNormal(&rng, 0.3f);
  Tensor fa = a.Encode(images);
  Tensor fb = b.Encode(images);
  EXPECT_EQ(fa.at(2, 31), fb.at(2, 31));
}

TEST(ConvEncoderTest, BatchBoundaryConsistent) {
  ConvEncoder::Options options;
  options.image_size = 16;
  options.out_dim = 16;
  options.batch_size = 2;  // Force multiple chunks.
  ConvEncoder chunked(options);
  options.batch_size = 64;
  ConvEncoder whole(options);
  Rng rng(9);
  Tensor images(5, 3 * 16 * 16);
  images.RandomNormal(&rng, 0.3f);
  Tensor fa = chunked.Encode(images);
  Tensor fb = whole.Encode(images);
  EXPECT_LT(MaxAbsDiff(fa, fb), 1e-4f);
}

TEST(ConvEncoderTest, DifferentImagesDifferentFeatures) {
  ConvEncoder::Options options;
  options.image_size = 16;
  options.out_dim = 32;
  ConvEncoder encoder(options);
  Tensor images(2, 3 * 16 * 16);
  for (int c = 0; c < images.cols(); ++c) images.at(1, c) = 1.0f;
  Tensor f = encoder.Encode(images);
  float diff = 0.0f;
  for (int c = 0; c < 32; ++c) diff += std::fabs(f.at(0, c) - f.at(1, c));
  EXPECT_GT(diff, 1e-3f);
}

// -------------------------- HistogramEqualize -------------------------------

TEST(HistogramEqualizeTest, OutputInUnitRange) {
  Rng rng(4);
  Tensor images(4, 3 * 64);
  for (int64_t i = 0; i < images.size(); ++i) {
    images[i] = static_cast<float>(rng.Uniform()) * 0.3f;  // Low contrast.
  }
  Tensor eq = HistogramEqualize(images, 3);
  for (int64_t i = 0; i < eq.size(); ++i) {
    ASSERT_GE(eq[i], 0.0f);
    ASSERT_LE(eq[i], 1.0f);
  }
}

TEST(HistogramEqualizeTest, StretchesLowContrast) {
  Rng rng(4);
  Tensor images(1, 3 * 256);
  for (int64_t i = 0; i < images.size(); ++i) {
    images[i] = 0.4f + 0.05f * static_cast<float>(rng.Uniform());
  }
  Tensor eq = HistogramEqualize(images, 3);
  float min_v = 1.0f, max_v = 0.0f;
  for (int64_t i = 0; i < eq.size(); ++i) {
    min_v = std::min(min_v, eq[i]);
    max_v = std::max(max_v, eq[i]);
  }
  EXPECT_GT(max_v - min_v, 0.5f);
}

TEST(HistogramEqualizeTest, PreservesOrdering) {
  Tensor images(1, 8, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f});
  Tensor eq = HistogramEqualize(images, 1);
  for (int c = 1; c < 8; ++c) {
    EXPECT_LE(eq.at(0, c - 1), eq.at(0, c));
  }
}

}  // namespace
}  // namespace uv::features
