#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "io/serialize.h"
#include "io/urg_io.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace uv::io {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

Tensor RandomTensor(int r, int c, uint64_t seed) {
  Rng rng(seed);
  Tensor t(r, c);
  t.RandomNormal(&rng, 1.0f);
  return t;
}

TEST(SerializeTest, TensorsRoundTrip) {
  const std::string path = TempPath("tensors.bin");
  std::vector<Tensor> tensors = {RandomTensor(3, 4, 1), RandomTensor(1, 1, 2),
                                 Tensor(0, 5)};
  ASSERT_TRUE(SaveTensors(path, tensors).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& got = loaded.value();
  ASSERT_EQ(got.size(), 3u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].rows(), tensors[i].rows());
    EXPECT_EQ(got[i].cols(), tensors[i].cols());
    if (got[i].size() > 0) {
      EXPECT_LT(MaxAbsDiff(got[i], tensors[i]), 1e-9f);
    }
  }
}

TEST(SerializeTest, EmptyList) {
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(SaveTensors(path, {}).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto loaded = LoadTensors(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("JUNKJUNK", 1, 8, f);
  std::fclose(f);
  auto loaded = LoadTensors(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, TruncatedFileRejected) {
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveTensors(path, {RandomTensor(10, 10, 3)}).ok());
  // Truncate the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto loaded = LoadTensors(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, ParamsRoundTrip) {
  Rng rng(5);
  nn::Linear layer(4, 3, &rng);
  const std::string path = TempPath("params.bin");
  ASSERT_TRUE(SaveParams(path, layer.Params()).ok());

  Rng rng2(99);
  nn::Linear other(4, 3, &rng2);
  ASSERT_TRUE(LoadParams(path, other.Params()).ok());
  EXPECT_LT(MaxAbsDiff(layer.w()->value, other.w()->value), 1e-9f);
  EXPECT_LT(MaxAbsDiff(layer.b()->value, other.b()->value), 1e-9f);
}

TEST(SerializeTest, ParamCountMismatchRejected) {
  Rng rng(6);
  nn::Linear layer(4, 3, &rng);
  const std::string path = TempPath("mismatch.bin");
  ASSERT_TRUE(SaveParams(path, layer.Params()).ok());
  nn::Mlp mlp(4, 3, 1, &rng);
  Status status = LoadParams(path, mlp.Params());
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ParamShapeMismatchRejected) {
  Rng rng(7);
  nn::Linear a(4, 3, &rng);
  nn::Linear b(3, 4, &rng);
  const std::string path = TempPath("shape_mismatch.bin");
  ASSERT_TRUE(SaveParams(path, a.Params()).ok());
  Status status = LoadParams(path, b.Params());
  EXPECT_FALSE(status.ok());
}

TEST(UrgIoTest, RoundTripPreservesEverything) {
  auto urg = uv::testing::TinyUrg();
  const std::string path = TempPath("urg.bin");
  ASSERT_TRUE(SaveUrg(path, urg).ok());
  auto loaded_or = LoadUrg(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const auto& loaded = loaded_or.value();

  EXPECT_EQ(loaded.city_name, urg.city_name);
  EXPECT_EQ(loaded.grid.height, urg.grid.height);
  EXPECT_EQ(loaded.grid.width, urg.grid.width);
  EXPECT_DOUBLE_EQ(loaded.grid.cell_meters, urg.grid.cell_meters);
  EXPECT_EQ(loaded.labels, urg.labels);
  EXPECT_EQ(loaded.is_uv, urg.is_uv);
  EXPECT_EQ(loaded.num_edges, urg.num_edges);
  EXPECT_EQ(loaded.num_spatial_edges, urg.num_spatial_edges);
  EXPECT_EQ(loaded.num_road_edges, urg.num_road_edges);
  EXPECT_LT(MaxAbsDiff(loaded.poi_features, urg.poi_features), 1e-9f);
  EXPECT_LT(MaxAbsDiff(loaded.image_features, urg.image_features), 1e-9f);
  // Adjacency structure preserved exactly.
  ASSERT_EQ(loaded.adjacency.num_edges(), urg.adjacency.num_edges());
  EXPECT_EQ(*loaded.adjacency.offsets(), *urg.adjacency.offsets());
  EXPECT_EQ(*loaded.adjacency.neighbors(), *urg.adjacency.neighbors());
  // Raw tiles preserved.
  ASSERT_NE(loaded.images, nullptr);
  EXPECT_LT(MaxAbsDiff(*loaded.images, *urg.images), 1e-9f);
  EXPECT_EQ(loaded.image_size, urg.image_size);
}

TEST(UrgIoTest, RoundTripWithoutImages) {
  auto urg = uv::testing::TinyUrg();
  urg.images = nullptr;
  const std::string path = TempPath("urg_noimg.bin");
  ASSERT_TRUE(SaveUrg(path, urg).ok());
  auto loaded = LoadUrg(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().images, nullptr);
}

TEST(UrgIoTest, RejectsGarbage) {
  const std::string path = TempPath("urg_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOPE", 1, 4, f);
  std::fclose(f);
  EXPECT_FALSE(LoadUrg(path).ok());
  EXPECT_FALSE(LoadUrg(TempPath("urg_missing.bin")).ok());
}

TEST(UrgIoTest, LoadedUrgKeepsLabeledIds) {
  auto urg = uv::testing::TinyUrg();
  const std::string path = TempPath("urg_train.bin");
  ASSERT_TRUE(SaveUrg(path, urg).ok());
  auto loaded = LoadUrg(path).value();
  EXPECT_EQ(loaded.LabeledIds(), urg.LabeledIds());
}

TEST(SerializeTest, CsvOutput) {
  const std::string path = TempPath("matrix.csv");
  Tensor t(2, 2, {1.5f, 2.0f, 3.0f, 4.25f});
  ASSERT_TRUE(SaveTensorCsv(path, t).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  buf[n] = '\0';
  std::fclose(f);
  EXPECT_STREQ(buf, "1.5,2\n3,4.25\n");
}

}  // namespace
}  // namespace uv::io
