#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "graph/road_network.h"

namespace uv::graph {
namespace {

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g = CsrGraph::FromEdges(3, {}, false, false);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(g.Degree(i), 0);
}

TEST(CsrGraphTest, GroupsByDestination) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {2, 1}, {1, 0}}, false, false);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(2), 0);
  auto in1 = g.InNeighbors(1);
  EXPECT_EQ(in1.size(), 2u);
  EXPECT_TRUE(std::is_sorted(in1.begin(), in1.end()));
}

TEST(CsrGraphTest, DeduplicatesEdges) {
  CsrGraph g = CsrGraph::FromEdges(2, {{0, 1}, {0, 1}, {0, 1}}, false, false);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CsrGraphTest, Symmetrize) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}, {1, 2}}, true, false);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(CsrGraphTest, SelfLoops) {
  CsrGraph g = CsrGraph::FromEdges(3, {{0, 1}}, false, true);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(g.HasEdge(i, i));
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(CsrGraphTest, OffsetsAreMonotone) {
  CsrGraph g =
      CsrGraph::FromEdges(5, {{0, 4}, {1, 4}, {3, 2}, {2, 0}}, true, true);
  const auto& off = *g.offsets();
  ASSERT_EQ(off.size(), 6u);
  for (size_t i = 1; i < off.size(); ++i) EXPECT_LE(off[i - 1], off[i]);
  EXPECT_EQ(off.back(), g.num_edges());
}

TEST(CsrGraphTest, SurvivesMoveWithoutDangling) {
  CsrGraph g = CsrGraph::FromEdges(4, {{0, 1}, {2, 3}}, true, false);
  CsrGraph moved = std::move(g);
  EXPECT_EQ(moved.num_edges(), 4);
  EXPECT_TRUE(moved.HasEdge(3, 2));
  // The shared offsets pointer must still be valid after the move.
  EXPECT_EQ(moved.offsets()->back(), 4);
}

// ------------------------------- Grid --------------------------------------

TEST(GridTest, IdRoundTrip) {
  GridSpec grid{5, 7, 128.0};
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 7; ++c) {
      const int id = grid.RegionId(r, c);
      EXPECT_EQ(grid.RowOf(id), r);
      EXPECT_EQ(grid.ColOf(id), c);
    }
  }
  EXPECT_EQ(grid.num_regions(), 35);
}

TEST(GridTest, RegionAtClampsToBounds) {
  GridSpec grid{4, 4, 100.0};
  EXPECT_EQ(grid.RegionAt(-50.0, -50.0), grid.RegionId(0, 0));
  EXPECT_EQ(grid.RegionAt(1e9, 1e9), grid.RegionId(3, 3));
  EXPECT_EQ(grid.RegionAt(150.0, 250.0), grid.RegionId(2, 1));
}

TEST(GridTest, CenterDistance) {
  GridSpec grid{3, 3, 128.0};
  EXPECT_DOUBLE_EQ(
      grid.CenterDistanceMeters(grid.RegionId(0, 0), grid.RegionId(0, 1)),
      128.0);
  EXPECT_NEAR(
      grid.CenterDistanceMeters(grid.RegionId(0, 0), grid.RegionId(1, 1)),
      128.0 * std::sqrt(2.0), 1e-9);
}

TEST(GridTest, SpatialProximityDegreeByPosition) {
  GridSpec grid{4, 4, 128.0};
  CsrGraph g = CsrGraph::FromEdges(grid.num_regions(),
                                   BuildSpatialProximityEdges(grid), false,
                                   false);
  // Corner: 3 neighbours; edge: 5; interior: 8.
  EXPECT_EQ(g.Degree(grid.RegionId(0, 0)), 3);
  EXPECT_EQ(g.Degree(grid.RegionId(0, 1)), 5);
  EXPECT_EQ(g.Degree(grid.RegionId(1, 1)), 8);
}

TEST(GridTest, SpatialProximityIsSymmetric) {
  GridSpec grid{3, 5, 128.0};
  CsrGraph g = CsrGraph::FromEdges(grid.num_regions(),
                                   BuildSpatialProximityEdges(grid), false,
                                   false);
  for (int a = 0; a < grid.num_regions(); ++a) {
    for (int b : g.InNeighbors(a)) {
      EXPECT_TRUE(g.HasEdge(a, b)) << a << "<->" << b;
    }
  }
}

TEST(GridTest, WindowRegions) {
  GridSpec grid{5, 5, 128.0};
  EXPECT_EQ(WindowRegions(grid, grid.RegionId(2, 2), 1).size(), 9u);
  EXPECT_EQ(WindowRegions(grid, grid.RegionId(0, 0), 1).size(), 4u);
  EXPECT_EQ(WindowRegions(grid, grid.RegionId(2, 2), 2).size(), 25u);
  // The window contains the centre itself.
  auto w = WindowRegions(grid, 12, 1);
  EXPECT_NE(std::find(w.begin(), w.end(), 12), w.end());
}

// ---------------------------- Road network ---------------------------------

TEST(RoadNetworkTest, AddAndQuery) {
  RoadNetwork net;
  const int a = net.AddIntersection(10, 10);
  const int b = net.AddIntersection(20, 10);
  net.AddSegment(a, b);
  EXPECT_EQ(net.num_intersections(), 2);
  EXPECT_EQ(net.num_segments(), 1);
  EXPECT_EQ(net.Neighbors(a).size(), 1u);
}

TEST(RoadNetworkTest, DuplicateSegmentIgnored) {
  RoadNetwork net;
  const int a = net.AddIntersection(0, 0);
  const int b = net.AddIntersection(1, 1);
  net.AddSegment(a, b);
  net.AddSegment(a, b);
  net.AddSegment(b, a);
  EXPECT_EQ(net.num_segments(), 1);
}

TEST(RoadNetworkTest, HopDistanceOnPath) {
  RoadNetwork net;
  std::vector<int> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(net.AddIntersection(i, 0));
  for (int i = 0; i + 1 < 6; ++i) net.AddSegment(nodes[i], nodes[i + 1]);
  EXPECT_EQ(net.HopDistance(nodes[0], nodes[5]), 5);
  EXPECT_EQ(net.HopDistance(nodes[2], nodes[2]), 0);
}

TEST(RoadNetworkTest, HopDistanceUnreachable) {
  RoadNetwork net;
  const int a = net.AddIntersection(0, 0);
  const int b = net.AddIntersection(5, 5);
  EXPECT_EQ(net.HopDistance(a, b), -1);
}

// The paper's rule: regions are road-connected iff intersections in them are
// within 5 road hops. Build a 7-node path spanning 7 cells and verify the
// 5-hop cutoff exactly (paper Fig. 1(b) semantics).
TEST(RoadNetworkTest, FiveHopConnectivityRule) {
  GridSpec grid{1, 7, 100.0};
  RoadNetwork net;
  std::vector<int> nodes;
  for (int c = 0; c < 7; ++c) {
    nodes.push_back(net.AddIntersection(c * 100.0 + 50.0, 50.0));
  }
  for (int c = 0; c + 1 < 7; ++c) net.AddSegment(nodes[c], nodes[c + 1]);

  auto edges = net.BuildRegionConnectivityEdges(grid, 5);
  CsrGraph g = CsrGraph::FromEdges(grid.num_regions(), edges, false, false);
  // Cell 0 and cell 5 are 5 hops apart -> connected.
  EXPECT_TRUE(g.HasEdge(0, 5));
  // Cell 0 and cell 6 are 6 hops apart -> NOT connected.
  EXPECT_FALSE(g.HasEdge(0, 6));
  // Symmetry.
  EXPECT_TRUE(g.HasEdge(5, 0));
}

TEST(RoadNetworkTest, ConnectivitySkipsSameRegionPairs) {
  GridSpec grid{1, 2, 100.0};
  RoadNetwork net;
  const int a = net.AddIntersection(10, 50);
  const int b = net.AddIntersection(30, 50);  // Same cell as a.
  net.AddSegment(a, b);
  auto edges = net.BuildRegionConnectivityEdges(grid, 5);
  EXPECT_TRUE(edges.empty());
}

TEST(RoadNetworkTest, ConnectivityProducesBothDirections) {
  GridSpec grid{1, 3, 100.0};
  RoadNetwork net;
  const int a = net.AddIntersection(50, 50);
  const int b = net.AddIntersection(250, 50);
  net.AddSegment(a, b);
  auto edges = net.BuildRegionConnectivityEdges(grid, 5);
  EXPECT_EQ(edges.size(), 2u);
}

}  // namespace
}  // namespace uv::graph
