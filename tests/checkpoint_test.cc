#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/cmsf_detector.h"
#include "core/config_codec.h"
#include "eval/splits.h"
#include "io/checkpoint.h"
#include "test_helpers.h"

namespace uv::core {
namespace {

// Shared fixture: one tiny URG + a trained CMSF detector + its saved
// checkpoint, built once (training dominates the suite's runtime).
class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    fold_ = new eval::Fold(folds[0]);
    train_labels_ = new std::vector<int>();
    for (int id : fold_->train_ids) train_labels_->push_back(urg_->labels[id]);

    detector_ = new CmsfDetector(FastConfig());
    detector_->Train(*urg_, fold_->train_ids, *train_labels_);
    expected_ = new std::vector<float>(
        detector_->Score(*urg_, fold_->test_ids));
    path_ = new std::string(::testing::TempDir() + "/uvck_fixture.bin");
    ASSERT_TRUE(detector_->SaveModel(*path_).ok());
  }

  static CmsfConfig FastConfig() {
    CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 10;
    config.slave_epochs = 3;
    config.learning_rate = 5e-3;
    return config;
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Fold* fold_;
  static std::vector<int>* train_labels_;
  static CmsfDetector* detector_;
  static std::vector<float>* expected_;
  static std::string* path_;
};

urg::UrbanRegionGraph* CheckpointTest::urg_ = nullptr;
eval::Fold* CheckpointTest::fold_ = nullptr;
std::vector<int>* CheckpointTest::train_labels_ = nullptr;
CmsfDetector* CheckpointTest::detector_ = nullptr;
std::vector<float>* CheckpointTest::expected_ = nullptr;
std::string* CheckpointTest::path_ = nullptr;

TEST_F(CheckpointTest, ConfigCodecRoundTrip) {
  CmsfConfig config;
  config.image_reduce_dim = 96;
  config.hidden_dim = 48;
  config.maga_layers = 3;
  config.maga_heads = 4;
  config.maga_agg = nn::AggKind::kConcat;
  config.num_clusters = 123;
  config.temperature = 0.25f;
  config.gscm_agg = nn::AggKind::kAttention;
  config.classifier_hidden = 17;
  config.context_dim = 9;
  config.use_maga = false;
  config.use_hierarchy = true;
  config.use_gate = false;
  config.master_epochs = 77;
  config.slave_epochs = 13;
  config.learning_rate = 3.5e-4;
  config.lr_decay_per_epoch = 0.99;
  config.lambda = 0.7;
  config.pos_weight = 2.5;
  config.clip_norm = 1.25;
  config.seed = 0xdeadbeefULL;
  config.batch_size = 256;
  config.fanout = 12;

  auto decoded = DecodeCmsfConfig(EncodeCmsfConfig(config));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const CmsfConfig& got = decoded.value();
  EXPECT_EQ(got.image_reduce_dim, config.image_reduce_dim);
  EXPECT_EQ(got.hidden_dim, config.hidden_dim);
  EXPECT_EQ(got.maga_layers, config.maga_layers);
  EXPECT_EQ(got.maga_heads, config.maga_heads);
  EXPECT_EQ(got.maga_agg, config.maga_agg);
  EXPECT_EQ(got.num_clusters, config.num_clusters);
  EXPECT_EQ(got.temperature, config.temperature);
  EXPECT_EQ(got.gscm_agg, config.gscm_agg);
  EXPECT_EQ(got.classifier_hidden, config.classifier_hidden);
  EXPECT_EQ(got.context_dim, config.context_dim);
  EXPECT_EQ(got.use_maga, config.use_maga);
  EXPECT_EQ(got.use_hierarchy, config.use_hierarchy);
  EXPECT_EQ(got.use_gate, config.use_gate);
  EXPECT_EQ(got.master_epochs, config.master_epochs);
  EXPECT_EQ(got.slave_epochs, config.slave_epochs);
  EXPECT_EQ(got.learning_rate, config.learning_rate);
  EXPECT_EQ(got.lr_decay_per_epoch, config.lr_decay_per_epoch);
  EXPECT_EQ(got.lambda, config.lambda);
  EXPECT_EQ(got.pos_weight, config.pos_weight);
  EXPECT_EQ(got.clip_norm, config.clip_norm);
  EXPECT_EQ(got.seed, config.seed);
  EXPECT_EQ(got.batch_size, config.batch_size);
  EXPECT_EQ(got.fanout, config.fanout);
}

TEST_F(CheckpointTest, ConfigCodecRejectsMalformedBlobs) {
  const std::vector<uint8_t> blob = EncodeCmsfConfig(CmsfConfig());
  // Every strict prefix must be rejected (no partial decode).
  for (size_t len = 0; len < blob.size(); ++len) {
    std::vector<uint8_t> truncated(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(DecodeCmsfConfig(truncated).ok()) << "prefix " << len;
  }
  // Trailing bytes are rejected too.
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DecodeCmsfConfig(padded).ok());
  // Unknown codec version.
  std::vector<uint8_t> wrong_version = blob;
  wrong_version[0] = 0xff;
  EXPECT_FALSE(DecodeCmsfConfig(wrong_version).ok());
}

TEST_F(CheckpointTest, FingerprintMatchesSelfOnly) {
  const io::UrgFingerprint a = io::UrgFingerprint::FromUrg(*urg_);
  EXPECT_TRUE(a.Matches(io::UrgFingerprint::FromUrg(*urg_)));
  EXPECT_EQ(a.num_regions, urg_->num_regions());

  const urg::UrbanRegionGraph other = uv::testing::TinyUrg(/*seed=*/12);
  const io::UrgFingerprint b = io::UrgFingerprint::FromUrg(other);
  EXPECT_FALSE(a.Matches(b));
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST_F(CheckpointTest, RoundTripIsBitIdentical) {
  // Fresh detector with a different seed and different (to-be-overwritten)
  // shape knobs: LoadModel must adopt the checkpoint's config and reproduce
  // the trained predictions bit-for-bit.
  CmsfConfig other = FastConfig();
  other.seed = 999;
  other.hidden_dim = 32;
  CmsfDetector loaded(other);
  ASSERT_TRUE(loaded.LoadModel(*urg_, *path_).ok());
  const auto got = loaded.Score(*urg_, fold_->test_ids);
  ASSERT_EQ(got.size(), expected_->size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], (*expected_)[i]) << "prediction " << i;
  }
}

TEST_F(CheckpointTest, RejectsWrongModelName) {
  CmsfDetector variant(FastConfig(), "CMSF-G");
  const Status status = variant.LoadModel(*urg_, *path_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CMSF-G"), std::string::npos);
}

TEST_F(CheckpointTest, RejectsWrongUrgFingerprint) {
  const urg::UrbanRegionGraph other = uv::testing::TinyUrg(/*seed=*/12);
  CmsfDetector loaded(FastConfig());
  EXPECT_FALSE(loaded.LoadModel(other, *path_).ok());
}

TEST_F(CheckpointTest, RejectsUnsupportedVersion) {
  auto ck = io::LoadCheckpoint(*path_);
  ASSERT_TRUE(ck.ok());
  io::Checkpoint bad = std::move(ck).value();
  bad.version = 99;
  // The writer itself refuses unknown versions...
  const std::string bad_path = ::testing::TempDir() + "/uvck_badver.bin";
  EXPECT_FALSE(io::SaveCheckpoint(bad_path, bad).ok());
  // ...so forge one on disk by patching the version field after the magic.
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  const int32_t forged = 99;
  std::memcpy(bytes.data() + 4, &forged, sizeof(forged));
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = io::LoadCheckpoint(bad_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(bad_path.c_str());
}

TEST_F(CheckpointTest, RejectsTruncationAndTrailingBytes) {
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  const std::string tmp = ::testing::TempDir() + "/uvck_mangled.bin";
  // Truncations at several depths: header, fingerprint, tensor payload.
  for (const size_t keep :
       {size_t{2}, size_t{10}, size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(io::LoadCheckpoint(tmp).ok()) << "kept " << keep;
  }
  // A trailing byte after the tensor list is also a corrupt file.
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.put('\0');
  }
  EXPECT_FALSE(io::LoadCheckpoint(tmp).ok());
  std::remove(tmp.c_str());
}

TEST_F(CheckpointTest, LoadedDetectorCanSaveAgainIdentically) {
  // Save -> load -> save must produce a byte-identical file: nothing about
  // the checkpoint depends on in-memory history.
  CmsfDetector loaded(FastConfig());
  ASSERT_TRUE(loaded.LoadModel(*urg_, *path_).ok());
  const std::string again = ::testing::TempDir() + "/uvck_again.bin";
  ASSERT_TRUE(loaded.SaveModel(again).ok());
  std::ifstream a(*path_, std::ios::binary), b(again, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(again.c_str());
}

}  // namespace
}  // namespace uv::core
