#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/cmsf_detector.h"
#include "core/config_codec.h"
#include "eval/splits.h"
#include "io/checkpoint.h"
#include "test_helpers.h"

namespace uv::core {
namespace {

// Shared fixture: one tiny URG + a trained CMSF detector + its saved
// checkpoint, built once (training dominates the suite's runtime).
class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    urg_ = new urg::UrbanRegionGraph(uv::testing::TinyUrg());
    Rng rng(3);
    auto folds = eval::BlockKFold(urg_->grid, urg_->LabeledIds(), 3, 8, &rng);
    fold_ = new eval::Fold(folds[0]);
    train_labels_ = new std::vector<int>();
    for (int id : fold_->train_ids) train_labels_->push_back(urg_->labels[id]);

    detector_ = new CmsfDetector(FastConfig());
    detector_->Train(*urg_, fold_->train_ids, *train_labels_);
    expected_ = new std::vector<float>(
        detector_->Score(*urg_, fold_->test_ids));
    path_ = new std::string(::testing::TempDir() + "/uvck_fixture.bin");
    ASSERT_TRUE(detector_->SaveModel(*urg_, *path_).ok());
  }

  static CmsfConfig FastConfig() {
    CmsfConfig config;
    config.hidden_dim = 16;
    config.image_reduce_dim = 16;
    config.num_clusters = 8;
    config.classifier_hidden = 8;
    config.context_dim = 4;
    config.master_epochs = 10;
    config.slave_epochs = 3;
    config.learning_rate = 5e-3;
    return config;
  }

  static urg::UrbanRegionGraph* urg_;
  static eval::Fold* fold_;
  static std::vector<int>* train_labels_;
  static CmsfDetector* detector_;
  static std::vector<float>* expected_;
  static std::string* path_;
};

urg::UrbanRegionGraph* CheckpointTest::urg_ = nullptr;
eval::Fold* CheckpointTest::fold_ = nullptr;
std::vector<int>* CheckpointTest::train_labels_ = nullptr;
CmsfDetector* CheckpointTest::detector_ = nullptr;
std::vector<float>* CheckpointTest::expected_ = nullptr;
std::string* CheckpointTest::path_ = nullptr;

TEST_F(CheckpointTest, ConfigCodecRoundTrip) {
  CmsfConfig config;
  config.image_reduce_dim = 96;
  config.hidden_dim = 48;
  config.maga_layers = 3;
  config.maga_heads = 4;
  config.maga_agg = nn::AggKind::kConcat;
  config.num_clusters = 123;
  config.temperature = 0.25f;
  config.gscm_agg = nn::AggKind::kAttention;
  config.classifier_hidden = 17;
  config.context_dim = 9;
  config.use_maga = false;
  config.use_hierarchy = true;
  config.use_gate = false;
  config.master_epochs = 77;
  config.slave_epochs = 13;
  config.learning_rate = 3.5e-4;
  config.lr_decay_per_epoch = 0.99;
  config.lambda = 0.7;
  config.pos_weight = 2.5;
  config.clip_norm = 1.25;
  config.seed = 0xdeadbeefULL;
  config.batch_size = 256;
  config.fanout = 12;

  auto decoded = DecodeCmsfConfig(EncodeCmsfConfig(config));
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const CmsfConfig& got = decoded.value();
  EXPECT_EQ(got.image_reduce_dim, config.image_reduce_dim);
  EXPECT_EQ(got.hidden_dim, config.hidden_dim);
  EXPECT_EQ(got.maga_layers, config.maga_layers);
  EXPECT_EQ(got.maga_heads, config.maga_heads);
  EXPECT_EQ(got.maga_agg, config.maga_agg);
  EXPECT_EQ(got.num_clusters, config.num_clusters);
  EXPECT_EQ(got.temperature, config.temperature);
  EXPECT_EQ(got.gscm_agg, config.gscm_agg);
  EXPECT_EQ(got.classifier_hidden, config.classifier_hidden);
  EXPECT_EQ(got.context_dim, config.context_dim);
  EXPECT_EQ(got.use_maga, config.use_maga);
  EXPECT_EQ(got.use_hierarchy, config.use_hierarchy);
  EXPECT_EQ(got.use_gate, config.use_gate);
  EXPECT_EQ(got.master_epochs, config.master_epochs);
  EXPECT_EQ(got.slave_epochs, config.slave_epochs);
  EXPECT_EQ(got.learning_rate, config.learning_rate);
  EXPECT_EQ(got.lr_decay_per_epoch, config.lr_decay_per_epoch);
  EXPECT_EQ(got.lambda, config.lambda);
  EXPECT_EQ(got.pos_weight, config.pos_weight);
  EXPECT_EQ(got.clip_norm, config.clip_norm);
  EXPECT_EQ(got.seed, config.seed);
  EXPECT_EQ(got.batch_size, config.batch_size);
  EXPECT_EQ(got.fanout, config.fanout);
}

TEST_F(CheckpointTest, ConfigCodecRejectsMalformedBlobs) {
  const std::vector<uint8_t> blob = EncodeCmsfConfig(CmsfConfig());
  // Every strict prefix must be rejected (no partial decode).
  for (size_t len = 0; len < blob.size(); ++len) {
    std::vector<uint8_t> truncated(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(DecodeCmsfConfig(truncated).ok()) << "prefix " << len;
  }
  // Trailing bytes are rejected too.
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DecodeCmsfConfig(padded).ok());
  // Unknown codec version.
  std::vector<uint8_t> wrong_version = blob;
  wrong_version[0] = 0xff;
  EXPECT_FALSE(DecodeCmsfConfig(wrong_version).ok());
}

TEST_F(CheckpointTest, FingerprintMatchesSelfOnly) {
  const io::UrgFingerprint a = io::UrgFingerprint::FromUrg(*urg_);
  EXPECT_TRUE(a.Matches(io::UrgFingerprint::FromUrg(*urg_)));
  EXPECT_EQ(a.num_regions, urg_->num_regions());

  const urg::UrbanRegionGraph other = uv::testing::TinyUrg(/*seed=*/12);
  const io::UrgFingerprint b = io::UrgFingerprint::FromUrg(other);
  EXPECT_FALSE(a.Matches(b));
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST_F(CheckpointTest, RoundTripIsBitIdentical) {
  // Fresh detector with a different seed and different (to-be-overwritten)
  // shape knobs: LoadModel must adopt the checkpoint's config and reproduce
  // the trained predictions bit-for-bit.
  CmsfConfig other = FastConfig();
  other.seed = 999;
  other.hidden_dim = 32;
  CmsfDetector loaded(other);
  ASSERT_TRUE(loaded.LoadModel(*urg_, *path_).ok());
  const auto got = loaded.Score(*urg_, fold_->test_ids);
  ASSERT_EQ(got.size(), expected_->size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], (*expected_)[i]) << "prediction " << i;
  }
}

TEST_F(CheckpointTest, RejectsWrongModelName) {
  CmsfDetector variant(FastConfig(), "CMSF-G");
  const Status status = variant.LoadModel(*urg_, *path_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("CMSF-G"), std::string::npos);
}

TEST_F(CheckpointTest, RejectsWrongUrgFingerprint) {
  const urg::UrbanRegionGraph other = uv::testing::TinyUrg(/*seed=*/12);
  CmsfDetector loaded(FastConfig());
  EXPECT_FALSE(loaded.LoadModel(other, *path_).ok());
}

TEST_F(CheckpointTest, RejectsUnsupportedVersion) {
  auto ck = io::LoadCheckpoint(*path_);
  ASSERT_TRUE(ck.ok());
  io::Checkpoint bad = std::move(ck).value();
  bad.version = 99;
  // The writer itself refuses unknown versions...
  const std::string bad_path = ::testing::TempDir() + "/uvck_badver.bin";
  EXPECT_FALSE(io::SaveCheckpoint(bad_path, bad).ok());
  // ...so forge one on disk by patching the version field after the magic.
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  const int32_t forged = 99;
  std::memcpy(bytes.data() + 4, &forged, sizeof(forged));
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = io::LoadCheckpoint(bad_path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(bad_path.c_str());
}

TEST_F(CheckpointTest, RejectsTruncationAndTrailingBytes) {
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  const std::string tmp = ::testing::TempDir() + "/uvck_mangled.bin";
  // Truncations at several depths: header, fingerprint, tensor payload.
  for (const size_t keep :
       {size_t{2}, size_t{10}, size_t{40}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(io::LoadCheckpoint(tmp).ok()) << "kept " << keep;
  }
  // A trailing byte after the tensor list is also a corrupt file.
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.put('\0');
  }
  EXPECT_FALSE(io::LoadCheckpoint(tmp).ok());
  std::remove(tmp.c_str());
}

TEST_F(CheckpointTest, RejectsV1FileWithActionableMessage) {
  // A v1 file is a current file with version 1 in the schema field: the
  // loader refuses at the version check, before interpreting anything the
  // schemas disagree on. The message must be actionable — found and
  // expected versions, the failing offset, and the remedy.
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  const int32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));
  const std::string v1_path = ::testing::TempDir() + "/uvck_v1.bin";
  {
    std::ofstream out(v1_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = io::LoadCheckpoint(v1_path);
  ASSERT_FALSE(loaded.ok());
  const std::string& msg = loaded.status().message();
  EXPECT_NE(msg.find("schema version 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expects version 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("re-save"), std::string::npos) << msg;
  std::remove(v1_path.c_str());
}

TEST_F(CheckpointTest, TruncationErrorsNameTheFailingOffset) {
  std::vector<char> bytes;
  {
    std::ifstream in(*path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const std::string tmp = ::testing::TempDir() + "/uvck_offset.bin";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), 10);
  }
  const auto loaded = io::LoadCheckpoint(tmp);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("byte offset"), std::string::npos)
      << loaded.status().message();
  std::remove(tmp.c_str());
}

TEST_F(CheckpointTest, BaselineRoundTripsThroughCheckpoint) {
  auto ck = io::LoadCheckpoint(*path_);
  ASSERT_TRUE(ck.ok()) << ck.status().message();
  const obs::QualityBaseline& base = ck.value().baseline;
  ASSERT_FALSE(base.empty());
  // Every trunk column was sketched over every region; the score histogram
  // covers all regions; the calibration bins cover the training ids.
  const auto n = static_cast<uint64_t>(urg_->num_regions());
  for (const obs::QualityBaseline::Column& col : base.columns) {
    uint64_t total = 0;
    for (const uint64_t c : col.counts) total += c;
    EXPECT_EQ(total, n);
  }
  uint64_t score_total = 0;
  for (const uint64_t c : base.score_counts) score_total += c;
  EXPECT_EQ(score_total, n);
  uint64_t calib_total = 0;
  for (const uint64_t c : base.calib_count) calib_total += c;
  EXPECT_EQ(calib_total, fold_->train_ids.size());
  // And the on-disk baseline is exactly the detector's cached one.
  const obs::QualityBaseline& live = detector_->baseline(*urg_);
  ASSERT_EQ(live.columns.size(), base.columns.size());
  for (size_t c = 0; c < live.columns.size(); ++c) {
    for (int e = 0; e < obs::QualityBaseline::kFeatureBins - 1; ++e) {
      EXPECT_EQ(live.columns[c].edges[e], base.columns[c].edges[e]);
    }
    for (int b = 0; b < obs::QualityBaseline::kFeatureBins; ++b) {
      EXPECT_EQ(live.columns[c].counts[b], base.columns[c].counts[b]);
    }
    EXPECT_EQ(live.columns[c].mean, base.columns[c].mean);
    EXPECT_EQ(live.columns[c].stdev, base.columns[c].stdev);
  }
}

TEST(CheckpointBaselineIo, SyntheticRoundTripAndCorruption) {
  // Direct io-layer round trip with a hand-built baseline (empty model
  // name/config, so the section's file offsets are deterministic).
  io::Checkpoint ck;
  Tensor t(1, 3);
  t.at(0, 0) = 1.0f;
  t.at(0, 1) = 2.0f;
  t.at(0, 2) = 3.0f;
  ck.tensors.push_back(std::move(t));
  obs::QualityBaseline base;
  base.columns.resize(2);
  for (int c = 0; c < 2; ++c) {
    for (int e = 0; e < obs::QualityBaseline::kFeatureBins - 1; ++e) {
      base.columns[c].edges[e] = static_cast<float>(c + e) * 0.25f;
    }
    for (int b = 0; b < obs::QualityBaseline::kFeatureBins; ++b) {
      base.columns[c].counts[b] = static_cast<uint64_t>(10 * c + b);
    }
    base.columns[c].mean = 0.5f + static_cast<float>(c);
    base.columns[c].stdev = 1.5f;
  }
  for (int b = 0; b < obs::QualityBaseline::kScoreBins; ++b) {
    base.score_counts[b] = static_cast<uint64_t>(b * b);
  }
  for (int b = 0; b < obs::QualityBaseline::kCalibBins; ++b) {
    base.calib_count[b] = static_cast<uint64_t>(b + 1);
    base.calib_score_sum[b] = 0.05 + 0.1 * b;
    base.calib_pos[b] = static_cast<uint64_t>(b);
  }
  ck.baseline = base;

  const std::string path = ::testing::TempDir() + "/uvck_baseline_io.bin";
  ASSERT_TRUE(io::SaveCheckpoint(path, ck).ok());
  auto loaded = io::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const obs::QualityBaseline& got = loaded.value().baseline;
  ASSERT_EQ(got.columns.size(), base.columns.size());
  for (size_t c = 0; c < base.columns.size(); ++c) {
    for (int e = 0; e < obs::QualityBaseline::kFeatureBins - 1; ++e) {
      EXPECT_EQ(got.columns[c].edges[e], base.columns[c].edges[e]);
    }
    for (int b = 0; b < obs::QualityBaseline::kFeatureBins; ++b) {
      EXPECT_EQ(got.columns[c].counts[b], base.columns[c].counts[b]);
    }
    EXPECT_EQ(got.columns[c].mean, base.columns[c].mean);
    EXPECT_EQ(got.columns[c].stdev, base.columns[c].stdev);
  }
  for (int b = 0; b < obs::QualityBaseline::kScoreBins; ++b) {
    EXPECT_EQ(got.score_counts[b], base.score_counts[b]);
  }
  for (int b = 0; b < obs::QualityBaseline::kCalibBins; ++b) {
    EXPECT_EQ(got.calib_count[b], base.calib_count[b]);
    EXPECT_EQ(got.calib_score_sum[b], base.calib_score_sum[b]);
    EXPECT_EQ(got.calib_pos[b], base.calib_pos[b]);
  }

  // Flip one byte inside the baseline blob: the section hash must catch
  // it. With empty name/config the blob starts at byte 77 (4 magic + 4
  // version + 4 + 4 empty blobs + 48 fingerprint + 8 hash + 1 flag +
  // 4 length).
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 90u);
  bytes[80] = static_cast<char>(bytes[80] ^ 0x40);
  const std::string bad = ::testing::TempDir() + "/uvck_baseline_bad.bin";
  {
    std::ofstream out(bad, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto corrupt = io::LoadCheckpoint(bad);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("baseline"), std::string::npos)
      << corrupt.status().message();
  std::remove(bad.c_str());
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, LoadedDetectorCanSaveAgainIdentically) {
  // Save -> load -> save must produce a byte-identical file: nothing about
  // the checkpoint depends on in-memory history.
  CmsfDetector loaded(FastConfig());
  ASSERT_TRUE(loaded.LoadModel(*urg_, *path_).ok());
  const std::string again = ::testing::TempDir() + "/uvck_again.bin";
  ASSERT_TRUE(loaded.SaveModel(*urg_, again).ok());
  std::ifstream a(*path_, std::ios::binary), b(again, std::ios::binary);
  const std::vector<char> bytes_a((std::istreambuf_iterator<char>(a)),
                                  std::istreambuf_iterator<char>());
  const std::vector<char> bytes_b((std::istreambuf_iterator<char>(b)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(again.c_str());
}

}  // namespace
}  // namespace uv::core
