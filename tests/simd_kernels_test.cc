#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "eval/runner.h"
#include "tensor/kernels/kernel_dispatch.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace uv {
namespace {

// ---------------------------------------------------------------------------
// Dispatch-level kernel tests: every KernelDispatch entry against a plain
// scalar reference, on awkward sizes (vector tails of 1..15 lanes) and
// misaligned bases, for every backend this machine can run; then
// scalar-vs-avx2 parity, per-backend bit-identity across thread counts,
// and an end-to-end train-metric parity run.
// ---------------------------------------------------------------------------

std::vector<kern::Backend> AvailableBackends() {
  std::vector<kern::Backend> backends{kern::Backend::kScalar};
  if (kern::BackendAvailable(kern::Backend::kAvx2)) {
    backends.push_back(kern::Backend::kAvx2);
  }
  return backends;
}

const char* Name(kern::Backend b) {
  return b == kern::Backend::kAvx2 ? "avx2" : "scalar";
}

// Restores the previous backend (and with it the UV_SIMD resolution) when
// the scope ends, so test order never leaks a forced backend.
class BackendScope {
 public:
  explicit BackendScope(kern::Backend b) : prev_(kern::ActiveBackend()) {
    kern::SetActiveBackend(b);
  }
  ~BackendScope() { kern::SetActiveBackend(prev_); }

 private:
  kern::Backend prev_;
};

// Deterministic fill that exercises signs, magnitudes, and exact zeros.
void FillPattern(float* p, int64_t n, uint64_t salt) {
  Rng rng(977 + salt);
  for (int64_t i = 0; i < n; ++i) {
    const float v = static_cast<float>(rng.Uniform() * 4.0 - 2.0);
    p[i] = (i % 13 == 7) ? 0.0f : v;
  }
}

// Sizes straddling every tail length 0..15 plus a couple of larger spans.
std::vector<int64_t> AwkwardSizes() {
  std::vector<int64_t> sizes;
  for (int64_t n = 1; n <= 33; ++n) sizes.push_back(n);
  sizes.push_back(100);
  sizes.push_back(1003);
  return sizes;
}

TEST(SimdKernelsTest, AxpyMatchesReferenceOnAwkwardSizesAndOffsets) {
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    for (const int64_t n : AwkwardSizes()) {
      for (const int64_t offset : {0, 1, 3}) {
        std::vector<float> x(n + offset), y(n + offset), ref(n + offset);
        FillPattern(x.data(), n + offset, 1);
        FillPattern(y.data(), n + offset, 2);
        ref = y;
        k.axpy(0.7f, x.data() + offset, y.data() + offset, n);
        for (int64_t i = 0; i < n; ++i) {
          const double want = static_cast<double>(ref[offset + i]) +
                              0.7 * static_cast<double>(x[offset + i]);
          EXPECT_NEAR(y[offset + i], want, 1e-5)
              << Name(backend) << " n=" << n << " off=" << offset
              << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, MulScaleAddRowVectorAreBitExact) {
  // mul / scale / the bias row add are single-operation-per-element
  // kernels: IEEE gives one correctly rounded answer, so every backend
  // must match the scalar expression bit for bit.
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    for (const int64_t n : AwkwardSizes()) {
      std::vector<float> a(n), b(n), out(n);
      FillPattern(a.data(), n, 3);
      FillPattern(b.data(), n, 4);
      k.mul(a.data(), b.data(), out.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], a[i] * b[i]) << Name(backend) << " n=" << n;
      }
      std::vector<float> s = a;
      k.scale(s.data(), -1.375f, n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(s[i], a[i] * -1.375f) << Name(backend) << " n=" << n;
      }
    }
    const int64_t rows = 5, cols = 19;
    std::vector<float> m(rows * cols), v(cols);
    FillPattern(m.data(), rows * cols, 5);
    FillPattern(v.data(), cols, 6);
    std::vector<float> ref = m;
    k.add_row_vector(v.data(), m.data(), rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        EXPECT_EQ(m[r * cols + c], ref[r * cols + c] + v[c])
            << Name(backend) << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(SimdKernelsTest, MaxAbsDiffMatchesReferenceExactly) {
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    for (const int64_t n : AwkwardSizes()) {
      std::vector<float> a(n), b(n);
      FillPattern(a.data(), n, 7);
      FillPattern(b.data(), n, 8);
      float want = 0.0f;
      for (int64_t i = 0; i < n; ++i) {
        want = std::max(want, std::fabs(a[i] - b[i]));
      }
      EXPECT_EQ(k.max_abs_diff(a.data(), b.data(), n), want)
          << Name(backend) << " n=" << n;
    }
  }
}

TEST(SimdKernelsTest, RowSoftmaxMatchesReferenceAndSumsToOne) {
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    for (const int64_t cols : {1, 7, 20, 50}) {
      const int64_t rows = 4;
      std::vector<float> in(rows * cols), out(rows * cols);
      FillPattern(in.data(), rows * cols, 9);
      const float temperature = 0.5f;
      k.row_softmax(in.data(), out.data(), rows, cols, 1.0f / temperature);
      for (int64_t r = 0; r < rows; ++r) {
        double mx = -1e300;
        for (int64_t c = 0; c < cols; ++c) {
          mx = std::max(mx, static_cast<double>(in[r * cols + c]) /
                                temperature);
        }
        double total = 0.0;
        std::vector<double> ref(cols);
        for (int64_t c = 0; c < cols; ++c) {
          ref[c] = std::exp(in[r * cols + c] / temperature - mx);
          total += ref[c];
        }
        double sum = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
          EXPECT_NEAR(out[r * cols + c], ref[c] / total, 1e-5)
              << Name(backend) << " cols=" << cols;
          sum += out[r * cols + c];
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
      }
    }
  }
}

TEST(SimdKernelsTest, RowL2NormalizeMatchesReferenceAndSkipsZeroRows) {
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    const int64_t rows = 3, cols = 21;
    std::vector<float> m(rows * cols);
    FillPattern(m.data(), rows * cols, 10);
    for (int64_t c = 0; c < cols; ++c) m[1 * cols + c] = 0.0f;  // Zero row.
    std::vector<float> ref = m;
    k.row_l2_normalize(m.data(), rows, cols);
    for (int64_t r = 0; r < rows; ++r) {
      double norm = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        norm += static_cast<double>(ref[r * cols + c]) * ref[r * cols + c];
      }
      norm = std::sqrt(norm);
      for (int64_t c = 0; c < cols; ++c) {
        const double want =
            norm < 1e-12 ? ref[r * cols + c] : ref[r * cols + c] / norm;
        EXPECT_NEAR(m[r * cols + c], want, 1e-5)
            << Name(backend) << " r=" << r << " c=" << c;
      }
    }
  }
}

TEST(SimdKernelsTest, BiasActRowsMatchesUnfusedFormulas) {
  using kern::Activation;
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const kern::KernelDispatch& k = kern::Active();
    const int64_t rows = 4, cols = 27;
    for (const Activation act :
         {Activation::kNone, Activation::kRelu, Activation::kLeakyRelu,
          Activation::kSigmoid}) {
      std::vector<float> m(rows * cols), bias(cols);
      FillPattern(m.data(), rows * cols, 11);
      FillPattern(bias.data(), cols, 12);
      std::vector<float> ref = m;
      const float slope = 0.2f;
      k.bias_act_rows(m.data(), bias.data(), rows, cols, act, slope);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          float x = ref[r * cols + c] + bias[c];
          switch (act) {
            case Activation::kNone:
              break;
            case Activation::kRelu:
              x = x > 0.0f ? x : 0.0f;
              break;
            case Activation::kLeakyRelu:
              x = x > 0.0f ? x : slope * x;
              break;
            case Activation::kSigmoid:
              x = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                            : std::exp(x) / (1.0f + std::exp(x));
              break;
          }
          EXPECT_NEAR(m[r * cols + c], x, 1e-6)
              << Name(backend) << " act=" << static_cast<int>(act);
        }
      }
    }
  }
}

// Naive triple-loop reference with double accumulation.
Tensor NaiveGemm(bool ta, bool tb, float alpha, const Tensor& a,
                 const Tensor& b, float beta, const Tensor& c0) {
  const int m = ta ? a.cols() : a.rows();
  const int k = ta ? a.rows() : a.cols();
  const int n = tb ? b.rows() : b.cols();
  Tensor c = c0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = alpha * static_cast<float>(acc) + beta * c0.at(i, j);
    }
  }
  return c;
}

TEST(SimdKernelsTest, PackedGemmMatchesNaiveForAllTransposeVariants) {
  Rng rng(31);
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    // Sizes chosen to hit partial microkernel tiles in both dimensions
    // (m % 6 != 0, n % 16 != 0) and a k crossing the kc=256 block edge.
    for (const auto& [m, k, n] : std::vector<std::array<int, 3>>{
             {1, 1, 1}, {3, 5, 7}, {6, 16, 16}, {7, 17, 19},
             {13, 33, 29}, {48, 300, 21}}) {
      for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
          Tensor a = ta ? Tensor(k, m) : Tensor(m, k);
          Tensor b = tb ? Tensor(n, k) : Tensor(k, n);
          Tensor c(m, n);
          a.RandomNormal(&rng, 1.0f);
          b.RandomNormal(&rng, 1.0f);
          c.RandomNormal(&rng, 1.0f);
          const Tensor want = NaiveGemm(ta, tb, 0.7f, a, b, 0.3f, c);
          Gemm(ta, tb, 0.7f, a, b, 0.3f, &c);
          float max_err = 0.0f;
          for (int64_t i = 0; i < c.size(); ++i) {
            max_err = std::max(max_err, std::fabs(c[i] - want[i]));
          }
          EXPECT_LT(max_err, 1e-3f)
              << Name(backend) << " m=" << m << " k=" << k << " n=" << n
              << " ta=" << ta << " tb=" << tb;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, FusedEpilogueMatchesSeparateOps) {
  Rng rng(47);
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    const int m = 23, k = 17, n = 35;
    Tensor a(m, k), b(k, n), bias(1, n);
    a.RandomNormal(&rng, 1.0f);
    b.RandomNormal(&rng, 1.0f);
    bias.RandomNormal(&rng, 1.0f);
    Tensor fused(m, n);
    GemmBiasAct(false, false, 1.0f, a, b, 0.0f, &fused, &bias,
                kern::Activation::kRelu);
    Tensor separate(m, n);
    Gemm(false, false, 1.0f, a, b, 0.0f, &separate);
    AddRowVectorInPlace(bias, &separate);
    for (int64_t i = 0; i < separate.size(); ++i) {
      separate[i] = separate[i] > 0.0f ? separate[i] : 0.0f;
    }
    // Same backend, same accumulation order: the fusion only changes when
    // the bias/activation pass runs, not any arithmetic, so this is exact.
    EXPECT_EQ(0, std::memcmp(fused.data(), separate.data(),
                             static_cast<size_t>(fused.size()) *
                                 sizeof(float)))
        << Name(backend);
  }
}

TEST(SimdKernelsTest, ScalarVsAvx2ParityPerKernel) {
  if (!kern::BackendAvailable(kern::Backend::kAvx2)) {
    GTEST_SKIP() << "AVX2 backend unavailable on this machine";
  }
  Rng rng(53);
  const int m = 37, k = 61, n = 43;
  Tensor a(m, k), b(k, n), c0(m, n), bias(1, n);
  a.RandomNormal(&rng, 1.0f);
  b.RandomNormal(&rng, 1.0f);
  c0.RandomNormal(&rng, 1.0f);
  bias.RandomNormal(&rng, 1.0f);

  // FMA-reordering kernels agree to tolerance...
  Tensor gemm_scalar = c0, gemm_avx2 = c0;
  Tensor soft_scalar, soft_avx2, l2_scalar, l2_avx2;
  {
    BackendScope scope(kern::Backend::kScalar);
    GemmBiasAct(false, false, 1.0f, a, b, 1.0f, &gemm_scalar, &bias,
                kern::Activation::kLeakyRelu, 0.2f);
    soft_scalar = RowSoftmax(a, 2.0f);
    l2_scalar = RowL2Normalize(a);
  }
  {
    BackendScope scope(kern::Backend::kAvx2);
    GemmBiasAct(false, false, 1.0f, a, b, 1.0f, &gemm_avx2, &bias,
                kern::Activation::kLeakyRelu, 0.2f);
    soft_avx2 = RowSoftmax(a, 2.0f);
    l2_avx2 = RowL2Normalize(a);
  }
  EXPECT_LT(MaxAbsDiff(gemm_scalar, gemm_avx2), 1e-4f);
  EXPECT_LT(MaxAbsDiff(soft_scalar, soft_avx2), 1e-6f);
  EXPECT_LT(MaxAbsDiff(l2_scalar, l2_avx2), 1e-5f);

  // ...single-rounding kernels agree exactly.
  Tensor mul_scalar, mul_avx2;
  float mad_scalar = 0.0f, mad_avx2 = 0.0f;
  {
    BackendScope scope(kern::Backend::kScalar);
    mul_scalar = Mul(c0, gemm_scalar);
    mad_scalar = MaxAbsDiff(c0, gemm_scalar);
  }
  {
    BackendScope scope(kern::Backend::kAvx2);
    mul_avx2 = Mul(c0, gemm_scalar);
    mad_avx2 = MaxAbsDiff(c0, gemm_scalar);
  }
  EXPECT_EQ(0, std::memcmp(mul_scalar.data(), mul_avx2.data(),
                           static_cast<size_t>(mul_scalar.size()) *
                               sizeof(float)));
  EXPECT_EQ(mad_scalar, mad_avx2);
}

TEST(SimdKernelsTest, PerBackendBitIdenticalAcrossThreadCounts) {
  Rng rng(59);
  // Big enough that every dispatched op takes its parallel path.
  const int m = 160, k = 300, n = 96;
  Tensor a(m, k), b(k, n), bias(1, n);
  a.RandomNormal(&rng, 1.0f);
  b.RandomNormal(&rng, 1.0f);
  bias.RandomNormal(&rng, 1.0f);
  for (const kern::Backend backend : AvailableBackends()) {
    BackendScope scope(backend);
    Tensor c1(m, n), c4(m, n);
    Tensor s1, s4;
    ThreadPool::SetGlobalThreads(1);
    GemmBiasAct(false, false, 1.0f, a, b, 0.0f, &c1, &bias,
                kern::Activation::kRelu);
    s1 = RowSoftmax(a, 0.7f);
    ThreadPool::SetGlobalThreads(4);
    GemmBiasAct(false, false, 1.0f, a, b, 0.0f, &c4, &bias,
                kern::Activation::kRelu);
    s4 = RowSoftmax(a, 0.7f);
    ThreadPool::SetGlobalThreads(ThreadPool::NumThreadsFromEnv());
    EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(),
                             static_cast<size_t>(c1.size()) * sizeof(float)))
        << Name(backend);
    EXPECT_EQ(0, std::memcmp(s1.data(), s4.data(),
                             static_cast<size_t>(s1.size()) * sizeof(float)))
        << Name(backend);
  }
}

// End-to-end: the quickstart-style train/eval path must report the same
// metrics on both backends up to float-accumulation divergence (documented
// tolerance: AUC within 0.05 on the tiny test city; the backends follow
// different-but-equally-valid float trajectories over many SGD steps).
TEST(SimdKernelsTest, TrainMetricParityAcrossBackends) {
  if (!kern::BackendAvailable(kern::Backend::kAvx2)) {
    GTEST_SKIP() << "AVX2 backend unavailable on this machine";
  }
  const urg::UrbanRegionGraph urg = uv::testing::TinyUrg();
  auto run = [&urg]() {
    eval::RunnerOptions options;
    options.num_folds = 2;
    options.num_runs = 1;
    options.block_size = 8;
    const auto factory = [](uint64_t seed) {
      baselines::TrainOptions train;
      train.epochs = 25;
      train.learning_rate = 5e-3;
      train.seed = seed;
      return baselines::MakeDetector("MLP", train, core::CmsfConfig{});
    };
    return eval::RunCrossValidation(urg, factory, options);
  };
  double auc_scalar = 0.0, auc_avx2 = 0.0;
  {
    BackendScope scope(kern::Backend::kScalar);
    auc_scalar = run().auc.mean;
  }
  {
    BackendScope scope(kern::Backend::kAvx2);
    auc_avx2 = run().auc.mean;
  }
  EXPECT_GT(auc_scalar, 0.5);
  EXPECT_NEAR(auc_scalar, auc_avx2, 0.05);
}

}  // namespace
}  // namespace uv
