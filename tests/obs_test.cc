// Tests for the observability layer: metrics registry exactness under
// concurrency, histogram bucket edges, trace-event JSON well-formedness,
// the JSONL metrics log, and the disabled-mode zero-allocation contract.
//
// The CMakeLists registers an obs_test_env4 variant with UV_THREADS=4 so
// the registry sees true multi-thread contention on CI.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace uv::obs {
namespace {

// --- operator new interposition (this binary only) -------------------------
// Counts heap allocations while g_counting is set, so tests can assert the
// disabled-mode hot path never allocates.

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocs{0};

void CountAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace
}  // namespace uv::obs

void* operator new(std::size_t n) {
  uv::obs::CountAlloc();
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  uv::obs::CountAlloc();
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace uv::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(RegistryTest, CounterExactUnderConcurrency) {
  Counter& c = Registry::Global().GetCounter("test.concurrent_counter");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncsPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kIncsPerThread);
}

TEST(RegistryTest, CounterDeltaAndSameReference) {
  Counter& a = Registry::Global().GetCounter("test.same_name");
  Counter& b = Registry::Global().GetCounter("test.same_name");
  EXPECT_EQ(&a, &b);  // Lookup is stable: one metric per name, forever.
  a.Reset();
  a.Inc(5);
  b.Inc(7);
  EXPECT_EQ(a.Value(), 12u);
}

TEST(RegistryTest, GaugeSetAddReset) {
  Gauge& g = Registry::Global().GetGauge("test.gauge");
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(RegistryTest, ParallelForIncrementsAreExact) {
  // The registry must stay exact when driven from the shared pool (the
  // obs_test_env4 variant runs this with UV_THREADS=4 workers).
  Counter& c = Registry::Global().GetCounter("test.parallel_for_counter");
  c.Reset();
  constexpr int64_t kN = 100000;
  ParallelFor(0, kN, 1024, [&c](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) c.Inc();
  });
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kN));
}

TEST(HistogramTest, BucketEdges) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // The top bucket is open-ended.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);
  // Round trip: every lower bound lands in its own bucket.
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(b)), b);
  }
}

TEST(HistogramTest, PercentilesAtBucketLowerBounds) {
  Histogram& h = Registry::Global().GetHistogram("test.percentiles");
  h.Reset();
  // 90 samples of 10 (bucket 4, lower bound 8), 10 samples of 5000
  // (bucket 13, lower bound 4096).
  for (int i = 0; i < 90; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(5000);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_EQ(h.Sum(), 90u * 10 + 10u * 5000);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 8.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95.0), 4096.0);
}

TEST(RegistryTest, SnapshotAndJsonContainRegisteredMetrics) {
  auto& reg = Registry::Global();
  reg.GetCounter("test.json_counter").Inc(3);
  reg.GetHistogram("test.json_hist").Record(7);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);

  const RegistrySnapshot snap = reg.Snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.json_counter") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, EmitsBalancedTraceEventJson) {
  if (TraceEnabled()) GTEST_SKIP() << "UV_TRACE active in the environment";
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  StartTrace(path);
  {
    SpanGuard outer("test_outer", SpanLevel::kCoarse, "run", 1, "fold", 2);
    SpanGuard inner("test_inner", SpanLevel::kFine, "rows", 32);
  }
  std::thread worker([] {
    SpanGuard span("test_thread_span", SpanLevel::kFine);
  });
  worker.join();
  ASSERT_TRUE(StopTrace());
  EXPECT_FALSE(TraceEnabled());

  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test_outer\""), std::string::npos);
  EXPECT_NE(text.find("\"test_inner\""), std::string::npos);
  EXPECT_NE(text.find("\"test_thread_span\""), std::string::npos);
  EXPECT_NE(text.find("\"run\":1"), std::string::npos);
  EXPECT_NE(text.find("\"fold\":2"), std::string::npos);
  // Every begin has a matching end (full validation, including per-thread
  // nesting, lives in tools/check_trace.py).
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"B\""),
            CountOccurrences(text, "\"ph\":\"E\""));
  EXPECT_EQ(CountOccurrences(text, "\"ph\":\"B\""), 3u);
  std::remove(path.c_str());
}

TEST(TraceTest, RestartClearsPreviousSpans) {
  if (TraceEnabled()) GTEST_SKIP() << "UV_TRACE active in the environment";
  const std::string path = testing::TempDir() + "/obs_test_trace2.json";
  StartTrace(path);
  { SpanGuard span("stale_span", SpanLevel::kCoarse); }
  StartTrace(path);  // Restart: the stale span must not leak into the file.
  { SpanGuard span("fresh_span", SpanLevel::kCoarse); }
  ASSERT_TRUE(StopTrace());
  const std::string text = ReadFile(path);
  EXPECT_EQ(text.find("\"stale_span\""), std::string::npos);
  EXPECT_NE(text.find("\"fresh_span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsLogTest, WritesJsonlWithAmbientLabelsAndRegistryDump) {
  if (MetricsLogEnabled()) {
    GTEST_SKIP() << "UV_METRICS active in the environment";
  }
  const std::string path = testing::TempDir() + "/obs_test_metrics.jsonl";
  OpenMetricsLog(path);
  {
    FoldScope scope(/*run=*/3, /*fold=*/1);
    EXPECT_EQ(CurrentRun(), 3);
    EXPECT_EQ(CurrentFold(), 1);
    MetricsRecord("epoch")
        .Str("stage", "master")
        .Int("epoch", 12)
        .Num("loss", 0.5)
        .Emit();
  }
  EXPECT_EQ(CurrentRun(), -1);  // Scope restored.
  MetricsRecord("summary").Num("auc_mean", 0.9).Emit();
  CloseMetricsLog();
  EXPECT_FALSE(MetricsLogEnabled());

  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_NE(lines[0].find("\"kind\":\"epoch\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"run\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"fold\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"loss\":0.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"summary\""), std::string::npos);
  // No ambient labels outside a FoldScope.
  EXPECT_EQ(lines[1].find("\"run\""), std::string::npos);
  // The close appends the full registry snapshot as the last record.
  EXPECT_NE(lines[2].find("\"kind\":\"registry\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"counters\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(OverheadTest, DisabledSpanAndRecordDoNotAllocate) {
  if (TraceEnabled() || MetricsLogEnabled()) {
    GTEST_SKIP() << "observability active in the environment";
  }
  // Warm up call-site statics (thread shard id, registry entries) so only
  // steady-state cost is measured.
  Counter& c = Registry::Global().GetCounter("test.overhead_counter");
  c.Inc();
  { SpanGuard warm("warmup", SpanLevel::kFine); }
  MetricsRecord("warmup").Emit();

  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    SpanGuard span("disabled_span", SpanLevel::kFine, "i", i);
    c.Inc();
    MetricsRecord("epoch").Int("epoch", i).Num("loss", 0.1).Emit();
  }
  g_counting.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace uv::obs
