file(REMOVE_RECURSE
  "CMakeFiles/autograd_dense_test.dir/autograd_dense_test.cc.o"
  "CMakeFiles/autograd_dense_test.dir/autograd_dense_test.cc.o.d"
  "autograd_dense_test"
  "autograd_dense_test.pdb"
  "autograd_dense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
