# Empty compiler generated dependencies file for cmsf_test.
# This may be replaced when dependencies are built.
