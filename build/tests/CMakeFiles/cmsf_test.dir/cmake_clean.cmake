file(REMOVE_RECURSE
  "CMakeFiles/cmsf_test.dir/cmsf_test.cc.o"
  "CMakeFiles/cmsf_test.dir/cmsf_test.cc.o.d"
  "cmsf_test"
  "cmsf_test.pdb"
  "cmsf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmsf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
