# Empty dependencies file for urg_test.
# This may be replaced when dependencies are built.
