file(REMOVE_RECURSE
  "CMakeFiles/urg_test.dir/urg_test.cc.o"
  "CMakeFiles/urg_test.dir/urg_test.cc.o.d"
  "urg_test"
  "urg_test.pdb"
  "urg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
