file(REMOVE_RECURSE
  "CMakeFiles/autograd_conv_test.dir/autograd_conv_test.cc.o"
  "CMakeFiles/autograd_conv_test.dir/autograd_conv_test.cc.o.d"
  "autograd_conv_test"
  "autograd_conv_test.pdb"
  "autograd_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
