# Empty dependencies file for autograd_conv_test.
# This may be replaced when dependencies are built.
