file(REMOVE_RECURSE
  "CMakeFiles/autograd_graph_test.dir/autograd_graph_test.cc.o"
  "CMakeFiles/autograd_graph_test.dir/autograd_graph_test.cc.o.d"
  "autograd_graph_test"
  "autograd_graph_test.pdb"
  "autograd_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autograd_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
