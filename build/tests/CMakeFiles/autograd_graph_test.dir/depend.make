# Empty dependencies file for autograd_graph_test.
# This may be replaced when dependencies are built.
