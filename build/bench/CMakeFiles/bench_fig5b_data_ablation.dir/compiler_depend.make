# Empty compiler generated dependencies file for bench_fig5b_data_ablation.
# This may be replaced when dependencies are built.
