# Empty dependencies file for bench_fig6a_cluster_k.
# This may be replaced when dependencies are built.
