# Empty dependencies file for bench_fig6c_label_ratio.
# This may be replaced when dependencies are built.
