file(REMOVE_RECURSE
  "CMakeFiles/uv_urg.dir/urban_region_graph.cc.o"
  "CMakeFiles/uv_urg.dir/urban_region_graph.cc.o.d"
  "libuv_urg.a"
  "libuv_urg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_urg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
