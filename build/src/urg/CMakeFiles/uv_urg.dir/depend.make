# Empty dependencies file for uv_urg.
# This may be replaced when dependencies are built.
