file(REMOVE_RECURSE
  "libuv_urg.a"
)
