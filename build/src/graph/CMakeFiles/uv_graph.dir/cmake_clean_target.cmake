file(REMOVE_RECURSE
  "libuv_graph.a"
)
