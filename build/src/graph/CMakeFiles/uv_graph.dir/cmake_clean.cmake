file(REMOVE_RECURSE
  "CMakeFiles/uv_graph.dir/csr_graph.cc.o"
  "CMakeFiles/uv_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/uv_graph.dir/grid.cc.o"
  "CMakeFiles/uv_graph.dir/grid.cc.o.d"
  "CMakeFiles/uv_graph.dir/road_network.cc.o"
  "CMakeFiles/uv_graph.dir/road_network.cc.o.d"
  "libuv_graph.a"
  "libuv_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
