# Empty dependencies file for uv_graph.
# This may be replaced when dependencies are built.
