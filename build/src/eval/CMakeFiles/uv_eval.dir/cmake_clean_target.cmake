file(REMOVE_RECURSE
  "libuv_eval.a"
)
