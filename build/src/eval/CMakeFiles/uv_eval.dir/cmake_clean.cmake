file(REMOVE_RECURSE
  "CMakeFiles/uv_eval.dir/metrics.cc.o"
  "CMakeFiles/uv_eval.dir/metrics.cc.o.d"
  "CMakeFiles/uv_eval.dir/runner.cc.o"
  "CMakeFiles/uv_eval.dir/runner.cc.o.d"
  "CMakeFiles/uv_eval.dir/splits.cc.o"
  "CMakeFiles/uv_eval.dir/splits.cc.o.d"
  "libuv_eval.a"
  "libuv_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
