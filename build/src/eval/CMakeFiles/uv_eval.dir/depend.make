# Empty dependencies file for uv_eval.
# This may be replaced when dependencies are built.
