
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/gated_mlp.cc" "src/autograd/CMakeFiles/uv_autograd.dir/gated_mlp.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/gated_mlp.cc.o.d"
  "/root/repo/src/autograd/grad_check.cc" "src/autograd/CMakeFiles/uv_autograd.dir/grad_check.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/grad_check.cc.o.d"
  "/root/repo/src/autograd/ops_conv.cc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_conv.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_conv.cc.o.d"
  "/root/repo/src/autograd/ops_dense.cc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_dense.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_dense.cc.o.d"
  "/root/repo/src/autograd/ops_graph.cc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_graph.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_graph.cc.o.d"
  "/root/repo/src/autograd/ops_loss.cc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_loss.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/ops_loss.cc.o.d"
  "/root/repo/src/autograd/optimizer.cc" "src/autograd/CMakeFiles/uv_autograd.dir/optimizer.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/optimizer.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/autograd/CMakeFiles/uv_autograd.dir/variable.cc.o" "gcc" "src/autograd/CMakeFiles/uv_autograd.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/uv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
