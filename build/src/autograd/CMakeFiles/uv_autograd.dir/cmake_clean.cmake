file(REMOVE_RECURSE
  "CMakeFiles/uv_autograd.dir/gated_mlp.cc.o"
  "CMakeFiles/uv_autograd.dir/gated_mlp.cc.o.d"
  "CMakeFiles/uv_autograd.dir/grad_check.cc.o"
  "CMakeFiles/uv_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/uv_autograd.dir/ops_conv.cc.o"
  "CMakeFiles/uv_autograd.dir/ops_conv.cc.o.d"
  "CMakeFiles/uv_autograd.dir/ops_dense.cc.o"
  "CMakeFiles/uv_autograd.dir/ops_dense.cc.o.d"
  "CMakeFiles/uv_autograd.dir/ops_graph.cc.o"
  "CMakeFiles/uv_autograd.dir/ops_graph.cc.o.d"
  "CMakeFiles/uv_autograd.dir/ops_loss.cc.o"
  "CMakeFiles/uv_autograd.dir/ops_loss.cc.o.d"
  "CMakeFiles/uv_autograd.dir/optimizer.cc.o"
  "CMakeFiles/uv_autograd.dir/optimizer.cc.o.d"
  "CMakeFiles/uv_autograd.dir/variable.cc.o"
  "CMakeFiles/uv_autograd.dir/variable.cc.o.d"
  "libuv_autograd.a"
  "libuv_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
