file(REMOVE_RECURSE
  "libuv_autograd.a"
)
