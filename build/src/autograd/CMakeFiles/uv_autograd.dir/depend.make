# Empty dependencies file for uv_autograd.
# This may be replaced when dependencies are built.
