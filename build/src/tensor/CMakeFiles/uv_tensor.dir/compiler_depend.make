# Empty compiler generated dependencies file for uv_tensor.
# This may be replaced when dependencies are built.
