file(REMOVE_RECURSE
  "libuv_tensor.a"
)
