file(REMOVE_RECURSE
  "CMakeFiles/uv_tensor.dir/tensor.cc.o"
  "CMakeFiles/uv_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/uv_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/uv_tensor.dir/tensor_ops.cc.o.d"
  "libuv_tensor.a"
  "libuv_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
