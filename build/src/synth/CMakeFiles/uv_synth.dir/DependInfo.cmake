
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/archetype.cc" "src/synth/CMakeFiles/uv_synth.dir/archetype.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/archetype.cc.o.d"
  "/root/repo/src/synth/city_config.cc" "src/synth/CMakeFiles/uv_synth.dir/city_config.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/city_config.cc.o.d"
  "/root/repo/src/synth/city_generator.cc" "src/synth/CMakeFiles/uv_synth.dir/city_generator.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/city_generator.cc.o.d"
  "/root/repo/src/synth/image_renderer.cc" "src/synth/CMakeFiles/uv_synth.dir/image_renderer.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/image_renderer.cc.o.d"
  "/root/repo/src/synth/poi_types.cc" "src/synth/CMakeFiles/uv_synth.dir/poi_types.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/poi_types.cc.o.d"
  "/root/repo/src/synth/road_generator.cc" "src/synth/CMakeFiles/uv_synth.dir/road_generator.cc.o" "gcc" "src/synth/CMakeFiles/uv_synth.dir/road_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/uv_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/uv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
