src/synth/CMakeFiles/uv_synth.dir/poi_types.cc.o: \
 /root/repo/src/synth/poi_types.cc /usr/include/stdc-predef.h \
 /root/repo/src/synth/poi_types.h
