# Empty dependencies file for uv_synth.
# This may be replaced when dependencies are built.
