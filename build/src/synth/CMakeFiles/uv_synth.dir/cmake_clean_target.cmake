file(REMOVE_RECURSE
  "libuv_synth.a"
)
