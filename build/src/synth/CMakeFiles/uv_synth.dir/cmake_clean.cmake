file(REMOVE_RECURSE
  "CMakeFiles/uv_synth.dir/archetype.cc.o"
  "CMakeFiles/uv_synth.dir/archetype.cc.o.d"
  "CMakeFiles/uv_synth.dir/city_config.cc.o"
  "CMakeFiles/uv_synth.dir/city_config.cc.o.d"
  "CMakeFiles/uv_synth.dir/city_generator.cc.o"
  "CMakeFiles/uv_synth.dir/city_generator.cc.o.d"
  "CMakeFiles/uv_synth.dir/image_renderer.cc.o"
  "CMakeFiles/uv_synth.dir/image_renderer.cc.o.d"
  "CMakeFiles/uv_synth.dir/poi_types.cc.o"
  "CMakeFiles/uv_synth.dir/poi_types.cc.o.d"
  "CMakeFiles/uv_synth.dir/road_generator.cc.o"
  "CMakeFiles/uv_synth.dir/road_generator.cc.o.d"
  "libuv_synth.a"
  "libuv_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
