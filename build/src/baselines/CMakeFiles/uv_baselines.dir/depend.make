# Empty dependencies file for uv_baselines.
# This may be replaced when dependencies are built.
