file(REMOVE_RECURSE
  "libuv_baselines.a"
)
