file(REMOVE_RECURSE
  "CMakeFiles/uv_baselines.dir/common.cc.o"
  "CMakeFiles/uv_baselines.dir/common.cc.o.d"
  "CMakeFiles/uv_baselines.dir/gat_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/gat_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/gcn_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/gcn_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/imgagn_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/imgagn_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/mlp_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/mlp_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/mmre_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/mmre_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/muvfcn_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/muvfcn_baseline.cc.o.d"
  "CMakeFiles/uv_baselines.dir/registry.cc.o"
  "CMakeFiles/uv_baselines.dir/registry.cc.o.d"
  "CMakeFiles/uv_baselines.dir/uvlens_baseline.cc.o"
  "CMakeFiles/uv_baselines.dir/uvlens_baseline.cc.o.d"
  "libuv_baselines.a"
  "libuv_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
