file(REMOVE_RECURSE
  "libuv_features.a"
)
