# Empty compiler generated dependencies file for uv_features.
# This may be replaced when dependencies are built.
