file(REMOVE_RECURSE
  "CMakeFiles/uv_features.dir/image_encoder.cc.o"
  "CMakeFiles/uv_features.dir/image_encoder.cc.o.d"
  "CMakeFiles/uv_features.dir/poi_features.cc.o"
  "CMakeFiles/uv_features.dir/poi_features.cc.o.d"
  "libuv_features.a"
  "libuv_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
