# Empty compiler generated dependencies file for uv_nn.
# This may be replaced when dependencies are built.
