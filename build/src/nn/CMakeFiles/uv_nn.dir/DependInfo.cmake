
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gat.cc" "src/nn/CMakeFiles/uv_nn.dir/gat.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/gat.cc.o.d"
  "/root/repo/src/nn/gcn.cc" "src/nn/CMakeFiles/uv_nn.dir/gcn.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/gcn.cc.o.d"
  "/root/repo/src/nn/graph_context.cc" "src/nn/CMakeFiles/uv_nn.dir/graph_context.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/graph_context.cc.o.d"
  "/root/repo/src/nn/gscm.cc" "src/nn/CMakeFiles/uv_nn.dir/gscm.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/gscm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/uv_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/maga.cc" "src/nn/CMakeFiles/uv_nn.dir/maga.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/maga.cc.o.d"
  "/root/repo/src/nn/ms_gate.cc" "src/nn/CMakeFiles/uv_nn.dir/ms_gate.cc.o" "gcc" "src/nn/CMakeFiles/uv_nn.dir/ms_gate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/uv_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/uv_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/uv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
