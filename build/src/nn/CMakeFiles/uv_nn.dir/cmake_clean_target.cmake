file(REMOVE_RECURSE
  "libuv_nn.a"
)
