file(REMOVE_RECURSE
  "CMakeFiles/uv_nn.dir/gat.cc.o"
  "CMakeFiles/uv_nn.dir/gat.cc.o.d"
  "CMakeFiles/uv_nn.dir/gcn.cc.o"
  "CMakeFiles/uv_nn.dir/gcn.cc.o.d"
  "CMakeFiles/uv_nn.dir/graph_context.cc.o"
  "CMakeFiles/uv_nn.dir/graph_context.cc.o.d"
  "CMakeFiles/uv_nn.dir/gscm.cc.o"
  "CMakeFiles/uv_nn.dir/gscm.cc.o.d"
  "CMakeFiles/uv_nn.dir/linear.cc.o"
  "CMakeFiles/uv_nn.dir/linear.cc.o.d"
  "CMakeFiles/uv_nn.dir/maga.cc.o"
  "CMakeFiles/uv_nn.dir/maga.cc.o.d"
  "CMakeFiles/uv_nn.dir/ms_gate.cc.o"
  "CMakeFiles/uv_nn.dir/ms_gate.cc.o.d"
  "libuv_nn.a"
  "libuv_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
