file(REMOVE_RECURSE
  "libuv_io.a"
)
