# Empty dependencies file for uv_io.
# This may be replaced when dependencies are built.
