file(REMOVE_RECURSE
  "CMakeFiles/uv_io.dir/serialize.cc.o"
  "CMakeFiles/uv_io.dir/serialize.cc.o.d"
  "CMakeFiles/uv_io.dir/urg_io.cc.o"
  "CMakeFiles/uv_io.dir/urg_io.cc.o.d"
  "libuv_io.a"
  "libuv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
