file(REMOVE_RECURSE
  "libuv_util.a"
)
