# Empty compiler generated dependencies file for uv_util.
# This may be replaced when dependencies are built.
