file(REMOVE_RECURSE
  "CMakeFiles/uv_util.dir/logging.cc.o"
  "CMakeFiles/uv_util.dir/logging.cc.o.d"
  "CMakeFiles/uv_util.dir/rng.cc.o"
  "CMakeFiles/uv_util.dir/rng.cc.o.d"
  "CMakeFiles/uv_util.dir/status.cc.o"
  "CMakeFiles/uv_util.dir/status.cc.o.d"
  "CMakeFiles/uv_util.dir/table.cc.o"
  "CMakeFiles/uv_util.dir/table.cc.o.d"
  "libuv_util.a"
  "libuv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
