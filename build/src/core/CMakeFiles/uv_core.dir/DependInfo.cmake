
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cmsf_detector.cc" "src/core/CMakeFiles/uv_core.dir/cmsf_detector.cc.o" "gcc" "src/core/CMakeFiles/uv_core.dir/cmsf_detector.cc.o.d"
  "/root/repo/src/core/cmsf_model.cc" "src/core/CMakeFiles/uv_core.dir/cmsf_model.cc.o" "gcc" "src/core/CMakeFiles/uv_core.dir/cmsf_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/uv_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/uv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/uv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/urg/CMakeFiles/uv_urg.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/uv_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/uv_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/uv_features.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/uv_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/uv_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
