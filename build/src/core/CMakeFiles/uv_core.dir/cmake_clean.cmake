file(REMOVE_RECURSE
  "CMakeFiles/uv_core.dir/cmsf_detector.cc.o"
  "CMakeFiles/uv_core.dir/cmsf_detector.cc.o.d"
  "CMakeFiles/uv_core.dir/cmsf_model.cc.o"
  "CMakeFiles/uv_core.dir/cmsf_model.cc.o.d"
  "libuv_core.a"
  "libuv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
