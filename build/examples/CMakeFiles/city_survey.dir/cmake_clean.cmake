file(REMOVE_RECURSE
  "CMakeFiles/city_survey.dir/city_survey.cpp.o"
  "CMakeFiles/city_survey.dir/city_survey.cpp.o.d"
  "city_survey"
  "city_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
