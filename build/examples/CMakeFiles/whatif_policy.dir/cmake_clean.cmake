file(REMOVE_RECURSE
  "CMakeFiles/whatif_policy.dir/whatif_policy.cpp.o"
  "CMakeFiles/whatif_policy.dir/whatif_policy.cpp.o.d"
  "whatif_policy"
  "whatif_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
