# Empty dependencies file for whatif_policy.
# This may be replaced when dependencies are built.
