#include "baselines/mlp_baseline.h"

#include "autograd/ops.h"
#include "core/cmsf_model.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
constexpr int kHidden = 64;  // Section VI-A hidden size.
}  // namespace

ag::VarPtr MlpBaseline::ForwardRows(const urg::UrbanRegionGraph& urg,
                                    const std::vector<int>& ids) const {
  ag::VarPtr poi = GatherConstRows(urg.poi_features, ids);
  ag::VarPtr img = GatherConstRows(urg.image_features, ids);
  ag::VarPtr hp = poi_fc_->Forward(poi, kern::Activation::kRelu);
  ag::VarPtr hi = img_fc_->Forward(img, kern::Activation::kRelu);
  return head_->Forward(ag::ConcatCols(hp, hi));
}

void MlpBaseline::Train(const urg::UrbanRegionGraph& urg,
                        const std::vector<int>& train_ids,
                        const std::vector<int>& train_labels) {
  Rng rng(options_.seed);
  poi_fc_ = std::make_unique<nn::Linear>(urg.poi_features.cols(), kHidden,
                                         &rng);
  img_fc_ = std::make_unique<nn::Linear>(urg.image_features.cols(), kHidden,
                                         &rng);
  head_ = std::make_unique<nn::Linear>(2 * kHidden, 1, &rng);

  const Tensor labels = core::MakeLabelTensor(train_labels);
  const Tensor weights =
      core::MakeBceWeights(train_labels, options_.pos_weight);
  std::vector<ag::VarPtr> params = poi_fc_->Params();
  auto add = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  add(img_fc_->Params());
  add(head_->Params());

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt(params, aopt);
  epoch_seconds_ =
      TrainLoop(&opt, options_.epochs, options_.lr_decay_per_epoch, [&]() {
        return ag::BceWithLogits(ForwardRows(urg, train_ids), labels,
                                 &weights);
      }, &epoch_history_, "MLP");
}

std::vector<float> MlpBaseline::Score(const urg::UrbanRegionGraph& urg,
                                      const std::vector<int>& eval_ids) {
  WallTimer timer;
  ag::VarPtr logits = ForwardRows(urg, eval_ids);
  std::vector<int> all(eval_ids.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  auto out = SigmoidRows(logits->value, all);
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t MlpBaseline::NumParameters() const {
  if (!poi_fc_) return 0;
  std::vector<ag::VarPtr> params = poi_fc_->Params();
  auto p2 = img_fc_->Params();
  auto p3 = head_->Params();
  params.insert(params.end(), p2.begin(), p2.end());
  params.insert(params.end(), p3.begin(), p3.end());
  return CountParams(params);
}

}  // namespace uv::baselines
