#include "baselines/mmre_baseline.h"

#include <cmath>

#include "autograd/ops.h"
#include "core/cmsf_model.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
constexpr int kEmbedDim = 64;
constexpr int kPoiHidden = 128;
constexpr int kNumPositive = 4;   // Paper: 4 positive samples.
constexpr int kNumNegative = 10;  // Paper: 10 negative samples.
constexpr float kLambdaImage = 0.5f;  // Autoencoder reconstruction weight.
constexpr float kLambdaSkip = 0.1f;   // SkipGram weight.

// Row-wise dot products of two same-shaped matrices -> (N x 1).
ag::VarPtr RowDot(const ag::VarPtr& a, const ag::VarPtr& b) {
  Tensor ones(a->cols(), 1);
  ones.Fill(1.0f);
  return ag::MatMul(ag::Mul(a, b), ag::MakeConst(std::move(ones)));
}

// -mean(log sigmoid(sign * s)) via the stable BCE-with-logits form.
ag::VarPtr LogSigmoidLoss(const ag::VarPtr& scores, bool positive) {
  Tensor labels(scores->rows(), 1);
  labels.Fill(positive ? 1.0f : 0.0f);
  return ag::BceWithLogits(scores, labels, nullptr);
}

}  // namespace

ag::VarPtr MmreBaseline::EmbedAll() const {
  ag::VarPtr img_code = enc3_->Forward(
      enc2_->Forward(enc1_->Forward(img_const_, kern::Activation::kRelu),
                     kern::Activation::kRelu),
      kern::Activation::kRelu);
  ag::VarPtr poi_code = ag::Relu(poi_g1_->Forward(poi_const_, *ctx_));
  poi_code = ag::Relu(poi_g2_->Forward(poi_code, *ctx_));
  return ag::Tanh(fuse_->Forward(ag::ConcatCols(poi_code, img_code)));
}

void MmreBaseline::Train(const urg::UrbanRegionGraph& urg,
                         const std::vector<int>& train_ids,
                         const std::vector<int>& train_labels) {
  Rng rng(options_.seed);
  ctx_ = nn::GraphContext::FromCsr(urg.adjacency);
  poi_const_ = ag::MakeConst(urg.poi_features);
  img_const_ = ag::MakeConst(urg.image_features);
  const int img_dim = urg.image_features.cols();

  enc1_ = std::make_unique<nn::Linear>(img_dim, 120, &rng);
  enc2_ = std::make_unique<nn::Linear>(120, 84, &rng);
  enc3_ = std::make_unique<nn::Linear>(84, kEmbedDim, &rng);
  dec1_ = std::make_unique<nn::Linear>(kEmbedDim, 84, &rng);
  dec2_ = std::make_unique<nn::Linear>(84, 120, &rng);
  dec3_ = std::make_unique<nn::Linear>(120, img_dim, &rng);
  poi_g1_ = std::make_unique<nn::GcnLayer>(urg.poi_features.cols(),
                                           kPoiHidden, &rng);
  poi_g2_ = std::make_unique<nn::GcnLayer>(kPoiHidden, kEmbedDim, &rng);
  fuse_ = std::make_unique<nn::Linear>(2 * kEmbedDim, kEmbedDim, &rng);
  head_ = std::make_unique<nn::Linear>(kEmbedDim, 1, &rng);

  std::vector<ag::VarPtr> embed_params;
  auto add = [&embed_params](std::vector<ag::VarPtr> p) {
    embed_params.insert(embed_params.end(), p.begin(), p.end());
  };
  add(enc1_->Params());
  add(enc2_->Params());
  add(enc3_->Params());
  add(dec1_->Params());
  add(dec2_->Params());
  add(dec3_->Params());
  add(poi_g1_->Params());
  add(poi_g2_->Params());
  add(fuse_->Params());

  const int n = urg.num_regions();

  // Unsupervised phase: denoising reconstruction + SkipGram with per-epoch
  // negative sampling (the expensive part the paper's Table III shows).
  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt(embed_params, aopt);
  const int unsup_epochs = std::max(10, options_.epochs / 2);
  epoch_seconds_ = TrainLoop(
      &opt, unsup_epochs, options_.lr_decay_per_epoch, [&]() -> ag::VarPtr {
        // Denoising autoencoder branch.
        Tensor noisy = urg.image_features;
        for (int64_t i = 0; i < noisy.size(); ++i) {
          noisy[i] += static_cast<float>(rng.Gaussian(0.0, 0.1));
        }
        ag::VarPtr corrupted = ag::MakeConst(std::move(noisy));
        ag::VarPtr code = enc3_->Forward(
            enc2_->Forward(
                enc1_->Forward(corrupted, kern::Activation::kRelu),
                kern::Activation::kRelu),
            kern::Activation::kRelu);
        ag::VarPtr recon = dec3_->Forward(
            dec2_->Forward(dec1_->Forward(code, kern::Activation::kRelu),
                           kern::Activation::kRelu));
        ag::VarPtr diff = ag::Sub(recon, img_const_);
        ag::VarPtr recon_loss = ag::MeanAll(ag::Mul(diff, diff));

        // SkipGram branch over the URG context.
        ag::VarPtr z = EmbedAll();
        auto centers = std::make_shared<std::vector<int>>();
        auto partners = std::make_shared<std::vector<int>>();
        auto neg_centers = std::make_shared<std::vector<int>>();
        auto negatives = std::make_shared<std::vector<int>>();
        // Sample a subset of centre nodes each epoch to bound the cost.
        const int num_centers = std::min(n, 1024);
        for (int s = 0; s < num_centers; ++s) {
          const int i = rng.UniformInt(n);
          const auto nbrs = urg.adjacency.InNeighbors(i);
          if (nbrs.empty()) continue;
          for (int k = 0; k < kNumPositive; ++k) {
            centers->push_back(i);
            partners->push_back(
                nbrs[rng.UniformInt(static_cast<int>(nbrs.size()))]);
          }
          for (int k = 0; k < kNumNegative; ++k) {
            neg_centers->push_back(i);
            negatives->push_back(rng.UniformInt(n));
          }
        }
        ag::VarPtr skip_loss;
        if (!centers->empty()) {
          ag::VarPtr pos_score =
              RowDot(ag::GatherRows(z, centers), ag::GatherRows(z, partners));
          ag::VarPtr neg_score = RowDot(ag::GatherRows(z, neg_centers),
                                        ag::GatherRows(z, negatives));
          skip_loss = ag::Add(LogSigmoidLoss(pos_score, true),
                              LogSigmoidLoss(neg_score, false));
        }
        ag::VarPtr loss = ag::ScalarMul(recon_loss, kLambdaImage);
        if (skip_loss) {
          loss = ag::Add(loss, ag::ScalarMul(skip_loss, kLambdaSkip));
        }
        return loss;
      }, &epoch_history_, "MMRE-unsup");

  // Freeze embeddings, then train the logistic head supervised.
  embeddings_ = EmbedAll()->value;
  const Tensor labels = core::MakeLabelTensor(train_labels);
  const Tensor weights =
      core::MakeBceWeights(train_labels, options_.pos_weight);
  ag::VarPtr train_embed = GatherConstRows(embeddings_, train_ids);
  ag::AdamOptimizer head_opt(head_->Params(), aopt);
  TrainLoop(&head_opt, options_.epochs, options_.lr_decay_per_epoch, [&]() {
    return ag::BceWithLogits(head_->Forward(train_embed), labels, &weights);
  }, nullptr, "MMRE-head");
}

std::vector<float> MmreBaseline::Score(const urg::UrbanRegionGraph& urg,
                                       const std::vector<int>& eval_ids) {
  (void)urg;
  WallTimer timer;
  // Embeddings are precomputed; inference is just the logistic head.
  ag::VarPtr logits = head_->Forward(GatherConstRows(embeddings_, eval_ids));
  std::vector<int> all(eval_ids.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  auto out = SigmoidRows(logits->value, all);
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t MmreBaseline::NumParameters() const {
  if (!enc1_) return 0;
  std::vector<ag::VarPtr> params;
  auto add = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  add(enc1_->Params());
  add(enc2_->Params());
  add(enc3_->Params());
  add(dec1_->Params());
  add(dec2_->Params());
  add(dec3_->Params());
  add(poi_g1_->Params());
  add(poi_g2_->Params());
  add(fuse_->Params());
  add(head_->Params());
  return CountParams(params);
}

}  // namespace uv::baselines
