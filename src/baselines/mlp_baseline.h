#ifndef UV_BASELINES_MLP_BASELINE_H_
#define UV_BASELINES_MLP_BASELINE_H_

#include <memory>

#include "baselines/common.h"
#include "nn/linear.h"

namespace uv::baselines {

// MLP baseline (paper Appendix I-A): one fully connected layer per modality,
// concatenated and fed to a logistic-regression head. Regions are treated
// independently, so training/inference touch only the requested rows.
class MlpBaseline : public eval::Detector {
 public:
  explicit MlpBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "MLP"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

 private:
  ag::VarPtr ForwardRows(const urg::UrbanRegionGraph& urg,
                         const std::vector<int>& ids) const;

  TrainOptions options_;
  std::unique_ptr<nn::Linear> poi_fc_;
  std::unique_ptr<nn::Linear> img_fc_;
  std::unique_ptr<nn::Linear> head_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_MLP_BASELINE_H_
