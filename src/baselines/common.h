#ifndef UV_BASELINES_COMMON_H_
#define UV_BASELINES_COMMON_H_

#include <functional>
#include <vector>

#include "autograd/optimizer.h"
#include "autograd/variable.h"
#include "eval/detector.h"
#include "nn/graph_context.h"
#include "tensor/tensor.h"
#include "urg/neighbor_sampler.h"

namespace uv::baselines {

// Hyper-parameters shared by every baseline (Section VI-A: Adam, initial
// learning rate 1e-4, hidden size 64; we default to the same faster rate as
// CmsfConfig for single-core budgets).
struct TrainOptions {
  int epochs = 120;
  double learning_rate = 2e-3;
  double lr_decay_per_epoch = 0.999;
  double pos_weight = 0.0;  // 0 = auto class balancing (num_neg/num_pos).
  double clip_norm = 5.0;
  uint64_t seed = 1;
  // Neighborhood-sampled minibatch training (paper-scale cities): > 0
  // switches the graph baselines to per-batch k-hop subgraphs of
  // O(batch_size * fanout^hops) nodes instead of a full-graph forward.
  int batch_size = 0;
  int fanout = 16;  // Sampled in-neighbors per node; 0 keeps them all.
};

// Runs a standard epoch loop: zero grads -> build_loss -> backward -> step.
// Returns mean wall-clock seconds per epoch. When epoch_seconds is non-null
// the per-epoch wall times are appended to it (in epoch order) so callers
// can report percentiles. Each epoch is traced as an "epoch" span and — when
// a UV_METRICS log is live — emitted as a JSONL record tagged with `stage`
// (the detector name by convention).
double TrainLoop(ag::Optimizer* optimizer, int epochs,
                 double lr_decay_per_epoch,
                 const std::function<ag::VarPtr()>& build_loss,
                 std::vector<double>* epoch_seconds = nullptr,
                 const char* stage = "train");

// Minibatch variant of TrainLoop: each epoch runs `num_batches` optimizer
// steps (zero grads -> build_batch_loss(epoch, batch) -> backward -> step),
// decaying the learning rate once per epoch so the schedule matches the
// full-graph loop. Epoch wall times cover all of the epoch's batches; the
// per-epoch metrics record reports the mean batch loss.
double TrainLoopBatched(
    ag::Optimizer* optimizer, int epochs, double lr_decay_per_epoch,
    int num_batches,
    const std::function<ag::VarPtr(int epoch, int batch)>& build_batch_loss,
    std::vector<double>* epoch_seconds = nullptr, const char* stage = "train");

// A two-modality graph forward over an arbitrary (sub)graph context:
// returns per-row logits. GCN/GAT/CMSF trunks all fit this shape, so the
// minibatch loop below is shared across detectors.
using SubgraphForward = std::function<ag::VarPtr(
    const nn::GraphContext& ctx, const ag::VarPtr& poi,
    const ag::VarPtr& img)>;

// Neighborhood-sampled minibatch training (options.batch_size > 0): each
// epoch shuffles `train_ids` deterministically (seeded by epoch), cuts them
// into batches, samples each batch's k-hop subgraph, gathers its features
// through the URG, and applies weighted BCE to the seed rows of
// forward(...). The positive-class weight is computed once from the FULL
// training set, so the effective loss matches full-graph training. Returns
// mean seconds per epoch.
double TrainMinibatched(ag::Optimizer* optimizer, const TrainOptions& options,
                        const urg::UrbanRegionGraph& urg,
                        const std::vector<int>& train_ids,
                        const std::vector<int>& train_labels,
                        const SubgraphForward& forward,
                        std::vector<double>* epoch_seconds,
                        const char* stage);

// Exact subgraph scoring for minibatch-trained models: eval_ids are scored
// in chunks whose k-hop closures keep EVERY in-neighbor (fanout = 0), so
// seed logits equal a full-graph forward pass bit-for-bit while memory
// stays O(chunk * deg^hops).
std::vector<float> ScoreMinibatched(const urg::UrbanRegionGraph& urg,
                                    const std::vector<int>& eval_ids,
                                    int hops, const SubgraphForward& forward);

// Copies the given rows of a feature matrix into a constant variable.
ag::VarPtr GatherConstRows(const Tensor& features,
                           const std::vector<int>& ids);

// Sigmoid over the given rows of a logit column (N x 1).
std::vector<float> SigmoidRows(const Tensor& logits,
                               const std::vector<int>& ids);

// Total scalar parameter count.
int64_t CountParams(const std::vector<ag::VarPtr>& params);

}  // namespace uv::baselines

#endif  // UV_BASELINES_COMMON_H_
