#ifndef UV_BASELINES_COMMON_H_
#define UV_BASELINES_COMMON_H_

#include <functional>
#include <vector>

#include "autograd/optimizer.h"
#include "autograd/variable.h"
#include "eval/detector.h"
#include "tensor/tensor.h"

namespace uv::baselines {

// Hyper-parameters shared by every baseline (Section VI-A: Adam, initial
// learning rate 1e-4, hidden size 64; we default to the same faster rate as
// CmsfConfig for single-core budgets).
struct TrainOptions {
  int epochs = 120;
  double learning_rate = 2e-3;
  double lr_decay_per_epoch = 0.999;
  double pos_weight = 0.0;  // 0 = auto class balancing (num_neg/num_pos).
  double clip_norm = 5.0;
  uint64_t seed = 1;
};

// Runs a standard epoch loop: zero grads -> build_loss -> backward -> step.
// Returns mean wall-clock seconds per epoch. When epoch_seconds is non-null
// the per-epoch wall times are appended to it (in epoch order) so callers
// can report percentiles. Each epoch is traced as an "epoch" span and — when
// a UV_METRICS log is live — emitted as a JSONL record tagged with `stage`
// (the detector name by convention).
double TrainLoop(ag::Optimizer* optimizer, int epochs,
                 double lr_decay_per_epoch,
                 const std::function<ag::VarPtr()>& build_loss,
                 std::vector<double>* epoch_seconds = nullptr,
                 const char* stage = "train");

// Copies the given rows of a feature matrix into a constant variable.
ag::VarPtr GatherConstRows(const Tensor& features,
                           const std::vector<int>& ids);

// Sigmoid over the given rows of a logit column (N x 1).
std::vector<float> SigmoidRows(const Tensor& logits,
                               const std::vector<int>& ids);

// Total scalar parameter count.
int64_t CountParams(const std::vector<ag::VarPtr>& params);

}  // namespace uv::baselines

#endif  // UV_BASELINES_COMMON_H_
