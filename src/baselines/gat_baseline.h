#ifndef UV_BASELINES_GAT_BASELINE_H_
#define UV_BASELINES_GAT_BASELINE_H_

#include <memory>
#include <optional>

#include "baselines/common.h"
#include "infer/engine.h"
#include "nn/gat.h"
#include "nn/linear.h"

namespace uv::baselines {

// GAT baseline (paper Appendix I-A): identical layout to the GCN baseline
// with attention-based aggregation.
class GatBaseline : public eval::Detector {
 public:
  explicit GatBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "GAT"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

  // Grad-free inference engine over this trained model (full-graph
  // semantics), as GcnBaseline::MakeEngine.
  std::unique_ptr<infer::Engine> MakeEngine(
      const urg::UrbanRegionGraph& urg) const;

 private:
  ag::VarPtr ForwardOn(const nn::GraphContext& ctx, const ag::VarPtr& poi,
                       const ag::VarPtr& img) const;
  ag::VarPtr ForwardAll() const;
  std::vector<ag::VarPtr> Params() const;

  TrainOptions options_;
  bool minibatch_ = false;
  std::optional<nn::GraphContext> ctx_;
  ag::VarPtr poi_const_, img_const_;
  std::unique_ptr<nn::Linear> img_reduce_;
  std::unique_ptr<nn::GatLayer> poi_g1_, poi_g2_, img_g1_, img_g2_;
  std::unique_ptr<nn::Linear> fuse_;
  std::unique_ptr<nn::Linear> head_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_GAT_BASELINE_H_
