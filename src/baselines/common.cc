#include "baselines/common.h"

#include <cmath>

#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

double TrainLoop(ag::Optimizer* optimizer, int epochs,
                 double lr_decay_per_epoch,
                 const std::function<ag::VarPtr()>& build_loss) {
  WallTimer timer;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    optimizer->ZeroGradients();
    ag::VarPtr loss = build_loss();
    ag::Backward(loss);
    optimizer->Step();
    optimizer->DecayLearningRate(lr_decay_per_epoch);
  }
  return epochs > 0 ? timer.Seconds() / epochs : 0.0;
}

ag::VarPtr GatherConstRows(const Tensor& features,
                           const std::vector<int>& ids) {
  Tensor out(static_cast<int>(ids.size()), features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int src = ids[i];
    UV_CHECK_GE(src, 0);
    UV_CHECK_LT(src, features.rows());
    std::copy(features.row(src), features.row(src) + features.cols(),
              out.row(static_cast<int>(i)));
  }
  return ag::MakeConst(std::move(out));
}

std::vector<float> SigmoidRows(const Tensor& logits,
                               const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const float z = logits.at(ids[i], 0);
    out[i] = 1.0f / (1.0f + std::exp(-z));
  }
  return out;
}

int64_t CountParams(const std::vector<ag::VarPtr>& params) {
  int64_t total = 0;
  for (const auto& p : params) total += p->value.size();
  return total;
}

}  // namespace uv::baselines
