#include "baselines/common.h"

#include <cmath>
#include <numeric>

#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

double TrainLoop(ag::Optimizer* optimizer, int epochs,
                 double lr_decay_per_epoch,
                 const std::function<ag::VarPtr()>& build_loss,
                 std::vector<double>* epoch_seconds, const char* stage) {
  double total = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    optimizer->ZeroGradients();
    ag::VarPtr loss = build_loss();
    const double loss_value = loss->value.at(0, 0);
    ag::Backward(loss);
    const double grad_norm = obs::MetricsLogEnabled()
                                 ? ag::GlobalGradNorm(optimizer->params())
                                 : 0.0;
    optimizer->Step();
    const double lr = optimizer->learning_rate();
    optimizer->DecayLearningRate(lr_decay_per_epoch);
    const double seconds = epoch_timer.Seconds();
    total += seconds;
    if (epoch_seconds != nullptr) epoch_seconds->push_back(seconds);
    obs::MetricsRecord("epoch")
        .Str("stage", stage)
        .Int("epoch", epoch)
        .Num("loss", loss_value)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", seconds)
        .Emit();
  }
  return epochs > 0 ? total / epochs : 0.0;
}

ag::VarPtr GatherConstRows(const Tensor& features,
                           const std::vector<int>& ids) {
  Tensor out(static_cast<int>(ids.size()), features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int src = ids[i];
    UV_CHECK_GE(src, 0);
    UV_CHECK_LT(src, features.rows());
    std::copy(features.row(src), features.row(src) + features.cols(),
              out.row(static_cast<int>(i)));
  }
  return ag::MakeConst(std::move(out));
}

std::vector<float> SigmoidRows(const Tensor& logits,
                               const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const float z = logits.at(ids[i], 0);
    out[i] = 1.0f / (1.0f + std::exp(-z));
  }
  return out;
}

int64_t CountParams(const std::vector<ag::VarPtr>& params) {
  int64_t total = 0;
  for (const auto& p : params) total += p->value.size();
  return total;
}

}  // namespace uv::baselines
