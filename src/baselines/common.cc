#include "baselines/common.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/ops.h"
#include "core/cmsf_model.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace uv::baselines {

double TrainLoop(ag::Optimizer* optimizer, int epochs,
                 double lr_decay_per_epoch,
                 const std::function<ag::VarPtr()>& build_loss,
                 std::vector<double>* epoch_seconds, const char* stage) {
  double total = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    optimizer->ZeroGradients();
    ag::VarPtr loss = build_loss();
    const double loss_value = loss->value.at(0, 0);
    ag::Backward(loss);
    const double grad_norm = obs::MetricsLogEnabled()
                                 ? ag::GlobalGradNorm(optimizer->params())
                                 : 0.0;
    optimizer->Step();
    const double lr = optimizer->learning_rate();
    optimizer->DecayLearningRate(lr_decay_per_epoch);
    const double seconds = epoch_timer.Seconds();
    total += seconds;
    if (epoch_seconds != nullptr) epoch_seconds->push_back(seconds);
    obs::MetricsRecord("epoch")
        .Str("stage", stage)
        .Int("epoch", epoch)
        .Num("loss", loss_value)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", seconds)
        .Emit();
  }
  return epochs > 0 ? total / epochs : 0.0;
}

double TrainLoopBatched(
    ag::Optimizer* optimizer, int epochs, double lr_decay_per_epoch,
    int num_batches,
    const std::function<ag::VarPtr(int epoch, int batch)>& build_batch_loss,
    std::vector<double>* epoch_seconds, const char* stage) {
  UV_CHECK_GT(num_batches, 0);
  double total = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    double loss_sum = 0.0;
    double grad_norm = 0.0;
    for (int batch = 0; batch < num_batches; ++batch) {
      optimizer->ZeroGradients();
      ag::VarPtr loss = build_batch_loss(epoch, batch);
      loss_sum += loss->value.at(0, 0);
      ag::Backward(loss);
      if (obs::MetricsLogEnabled()) {
        grad_norm = ag::GlobalGradNorm(optimizer->params());
      }
      optimizer->Step();
    }
    const double lr = optimizer->learning_rate();
    optimizer->DecayLearningRate(lr_decay_per_epoch);
    const double seconds = epoch_timer.Seconds();
    total += seconds;
    if (epoch_seconds != nullptr) epoch_seconds->push_back(seconds);
    obs::MetricsRecord("epoch")
        .Str("stage", stage)
        .Int("epoch", epoch)
        .Int("batches", num_batches)
        .Num("loss", loss_sum / num_batches)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", seconds)
        .Emit();
  }
  return epochs > 0 ? total / epochs : 0.0;
}

double TrainMinibatched(ag::Optimizer* optimizer, const TrainOptions& options,
                        const urg::UrbanRegionGraph& urg,
                        const std::vector<int>& train_ids,
                        const std::vector<int>& train_labels,
                        const SubgraphForward& forward,
                        std::vector<double>* epoch_seconds,
                        const char* stage) {
  UV_CHECK_GT(options.batch_size, 0);
  UV_CHECK_EQ(train_ids.size(), train_labels.size());
  const int num_train = static_cast<int>(train_ids.size());
  const int bs = std::min(options.batch_size, num_train);
  const int num_batches = (num_train + bs - 1) / bs;

  // Class balance from the FULL training set: per-batch balancing would
  // make the loss depend on batch composition.
  const Tensor full_weights =
      core::MakeBceWeights(train_labels, options.pos_weight);
  const float pos_w = [&] {
    for (size_t i = 0; i < train_labels.size(); ++i) {
      if (train_labels[i] > 0) return full_weights.at(static_cast<int>(i), 0);
    }
    return 1.0f;
  }();

  urg::NeighborView view(urg);
  std::vector<std::pair<int, int>> order(num_train);  // (id, label).
  for (int i = 0; i < num_train; ++i) {
    order[i] = {train_ids[i], train_labels[i]};
  }
  int shuffled_epoch = -1;

  return TrainLoopBatched(
      optimizer, options.epochs, options.lr_decay_per_epoch, num_batches,
      [&](int epoch, int batch) {
        if (epoch != shuffled_epoch) {
          shuffled_epoch = epoch;
          std::sort(order.begin(), order.end());
          Rng rng(urg::MixSeed(options.seed ^ 0xba7c4u, epoch));
          rng.Shuffle(&order);
        }
        const int begin = batch * bs;
        const int end = std::min(num_train, begin + bs);
        std::vector<int> seeds;
        std::vector<int> labels;
        seeds.reserve(end - begin);
        labels.reserve(end - begin);
        for (int i = begin; i < end; ++i) {
          seeds.push_back(order[i].first);
          labels.push_back(order[i].second);
        }

        urg::MinibatchConfig mb;
        mb.batch_size = bs;
        mb.fanout = options.fanout;
        mb.seed = urg::MixSeed(options.seed, epoch);
        const urg::SampledSubgraph sg = urg::SampleKHop(view, seeds, mb);
        const nn::GraphContext ctx = urg::ContextFromSubgraph(sg);
        const urg::SubgraphFeatures feats = GatherSubgraphFeatures(urg, sg);
        ag::VarPtr logits = forward(ctx, feats.poi, feats.image);

        auto seed_rows = std::make_shared<std::vector<int>>(sg.num_seeds);
        std::iota(seed_rows->begin(), seed_rows->end(), 0);
        const Tensor batch_labels = core::MakeLabelTensor(labels);
        Tensor batch_weights(static_cast<int>(labels.size()), 1);
        for (size_t i = 0; i < labels.size(); ++i) {
          batch_weights.at(static_cast<int>(i), 0) =
              labels[i] > 0 ? pos_w : 1.0f;
        }
        return ag::BceWithLogits(ag::GatherRows(logits, seed_rows),
                                 batch_labels, &batch_weights);
      },
      epoch_seconds, stage);
}

std::vector<float> ScoreMinibatched(const urg::UrbanRegionGraph& urg,
                                    const std::vector<int>& eval_ids,
                                    int hops, const SubgraphForward& forward) {
  constexpr int kChunk = 64;  // Bounds the fanout-unlimited closure size.
  urg::NeighborView view(urg);
  std::vector<float> out;
  out.reserve(eval_ids.size());
  for (size_t begin = 0; begin < eval_ids.size(); begin += kChunk) {
    const size_t end = std::min(eval_ids.size(), begin + kChunk);
    const std::vector<int> seeds(eval_ids.begin() + begin,
                                 eval_ids.begin() + end);
    urg::MinibatchConfig mb;
    mb.batch_size = static_cast<int>(seeds.size());
    mb.fanout = 0;  // Exact: keep every in-neighbor.
    mb.hops = hops;
    const urg::SampledSubgraph sg = urg::SampleKHop(view, seeds, mb);
    const nn::GraphContext ctx = urg::ContextFromSubgraph(sg);
    const urg::SubgraphFeatures feats = GatherSubgraphFeatures(urg, sg);
    const ag::VarPtr logits = forward(ctx, feats.poi, feats.image);
    for (int i = 0; i < sg.num_seeds; ++i) {
      const float z = logits->value.at(i, 0);
      out.push_back(1.0f / (1.0f + std::exp(-z)));
    }
  }
  return out;
}

ag::VarPtr GatherConstRows(const Tensor& features,
                           const std::vector<int>& ids) {
  Tensor out(static_cast<int>(ids.size()), features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int src = ids[i];
    UV_CHECK_GE(src, 0);
    UV_CHECK_LT(src, features.rows());
    std::copy(features.row(src), features.row(src) + features.cols(),
              out.row(static_cast<int>(i)));
  }
  return ag::MakeConst(std::move(out));
}

std::vector<float> SigmoidRows(const Tensor& logits,
                               const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const float z = logits.at(ids[i], 0);
    out[i] = 1.0f / (1.0f + std::exp(-z));
  }
  return out;
}

int64_t CountParams(const std::vector<ag::VarPtr>& params) {
  int64_t total = 0;
  for (const auto& p : params) total += p->value.size();
  return total;
}

}  // namespace uv::baselines
