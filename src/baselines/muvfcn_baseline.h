#ifndef UV_BASELINES_MUVFCN_BASELINE_H_
#define UV_BASELINES_MUVFCN_BASELINE_H_

#include <memory>

#include "autograd/ops.h"
#include "baselines/common.h"
#include "nn/linear.h"

namespace uv::baselines {

// MUVFCN baseline (paper Appendix I-A): fully convolutional network in the
// FCN-8s spirit over the tiles; average pooling on the output maps yields a
// 32-d feature vector for the final prediction. Mini-batched training on
// labeled tiles.
class MuvfcnBaseline : public eval::Detector {
 public:
  explicit MuvfcnBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "MUVFCN"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

 private:
  ag::VarPtr ForwardTiles(const ag::VarPtr& tiles) const;
  std::vector<ag::VarPtr> Params() const;

  TrainOptions options_;
  ag::Conv2dSpec spec1_, spec2_, spec3_;
  ag::VarPtr c1w_, c1b_, c2w_, c2b_, c3w_, c3b_;
  std::unique_ptr<nn::Linear> head_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_MUVFCN_BASELINE_H_
