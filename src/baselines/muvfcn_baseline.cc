#include "baselines/muvfcn_baseline.h"

#include <cmath>

#include "core/cmsf_model.h"
#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
constexpr int kBatch = 256;
}  // namespace

ag::VarPtr MuvfcnBaseline::ForwardTiles(const ag::VarPtr& tiles) const {
  ag::VarPtr x = ag::Relu(ag::Conv2d(tiles, c1w_, c1b_, spec1_));
  x = ag::MaxPool2d(x, spec1_.out_channels, spec1_.out_h(), spec1_.out_w(), 2,
                    2);
  x = ag::Relu(ag::Conv2d(x, c2w_, c2b_, spec2_));
  x = ag::MaxPool2d(x, spec2_.out_channels, spec2_.out_h(), spec2_.out_w(), 2,
                    2);
  x = ag::Relu(ag::Conv2d(x, c3w_, c3b_, spec3_));
  // FCN output maps -> average pooling -> 32-d feature vector (paper).
  x = ag::GlobalAvgPool(x, spec3_.out_channels, spec3_.out_h(),
                        spec3_.out_w());
  return head_->Forward(x);
}

std::vector<ag::VarPtr> MuvfcnBaseline::Params() const {
  std::vector<ag::VarPtr> params = {c1w_, c1b_, c2w_, c2b_, c3w_, c3b_};
  auto head = head_->Params();
  params.insert(params.end(), head.begin(), head.end());
  return params;
}

void MuvfcnBaseline::Train(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& train_ids,
                           const std::vector<int>& train_labels) {
  UV_CHECK(urg.images != nullptr);
  Rng rng(options_.seed);
  const int s = urg.image_size;
  spec1_ = {3, s, s, 16, 3, 1, 1};
  spec2_ = {16, s / 2, s / 2, 32, 3, 1, 1};
  spec3_ = {32, s / 4, s / 4, 32, 3, 1, 1};
  auto make_conv = [&rng](int out_c, int in_c, int k, ag::VarPtr* w,
                          ag::VarPtr* b) {
    Tensor wt(out_c, in_c * k * k);
    wt.RandomNormal(&rng, std::sqrt(2.0f / (in_c * k * k)));
    *w = ag::MakeParam(std::move(wt));
    *b = ag::MakeParam(Tensor(1, out_c));
  };
  make_conv(16, 3, 3, &c1w_, &c1b_);
  make_conv(32, 16, 3, &c2w_, &c2b_);
  make_conv(32, 32, 3, &c3w_, &c3b_);
  head_ = std::make_unique<nn::Linear>(32, 1, &rng);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt(Params(), aopt);

  const Tensor& images = *urg.images;
  const int n_train = static_cast<int>(train_ids.size());
  epoch_seconds_ = TrainLoop(
      &opt, options_.epochs, options_.lr_decay_per_epoch, [&]() {
        const int batch = std::min(kBatch, n_train);
        std::vector<int> pick_ids(batch);
        std::vector<int> pick_labels(batch);
        for (int i = 0; i < batch; ++i) {
          const int j = rng.UniformInt(n_train);
          pick_ids[i] = train_ids[j];
          pick_labels[i] = train_labels[j];
        }
        const Tensor labels = core::MakeLabelTensor(pick_labels);
        const Tensor weights =
            core::MakeBceWeights(pick_labels, options_.pos_weight);
        ag::VarPtr tiles = GatherConstRows(images, pick_ids);
        return ag::BceWithLogits(ForwardTiles(tiles), labels, &weights);
      }, &epoch_history_, "MUVFCN");
}

std::vector<float> MuvfcnBaseline::Score(const urg::UrbanRegionGraph& urg,
                                         const std::vector<int>& eval_ids) {
  WallTimer timer;
  std::vector<float> out;
  out.reserve(eval_ids.size());
  for (size_t begin = 0; begin < eval_ids.size(); begin += kBatch) {
    const size_t end = std::min(eval_ids.size(), begin + kBatch);
    std::vector<int> chunk(eval_ids.begin() + begin, eval_ids.begin() + end);
    ag::VarPtr logits = ForwardTiles(GatherConstRows(*urg.images, chunk));
    for (int i = 0; i < logits->rows(); ++i) {
      out.push_back(1.0f / (1.0f + std::exp(-logits->value.at(i, 0))));
    }
  }
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t MuvfcnBaseline::NumParameters() const {
  return head_ ? CountParams(Params()) : 0;
}

}  // namespace uv::baselines
