#ifndef UV_BASELINES_IMGAGN_BASELINE_H_
#define UV_BASELINES_IMGAGN_BASELINE_H_

#include <memory>
#include <optional>

#include "baselines/common.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace uv::baselines {

// ImGAGN baseline (paper Appendix I-A): imbalanced network embedding via a
// generative adversarial graph network. A 3-layer MLP generator synthesizes
// minority (UV) nodes as convex combinations of the real minority nodes and
// links them into the graph; a GCN discriminator jointly classifies
// real-vs-fake and UV-vs-non-UV. Training alternates discriminator and
// generator steps (the paper's lambda1 = 1.0 fake/minority ratio).
class ImGagnBaseline : public eval::Detector {
 public:
  explicit ImGagnBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "ImGAGN"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

 private:
  TrainOptions options_;
  // Combined [poi | image] features of the real regions.
  Tensor features_;
  std::unique_ptr<nn::Linear> gen1_, gen2_, gen3_;
  std::unique_ptr<nn::GcnLayer> disc_g1_, disc_g2_;
  std::unique_ptr<nn::Linear> head_uv_, head_fake_;
  // Final scores on all real regions after training.
  std::vector<float> scores_all_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_IMGAGN_BASELINE_H_
