#include "baselines/gat_baseline.h"

#include "autograd/ops.h"
#include "core/cmsf_model.h"
#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
constexpr int kHidden = 64;
constexpr int kImageReduce = 128;
constexpr int kHeads = 2;
}  // namespace

ag::VarPtr GatBaseline::ForwardOn(const nn::GraphContext& ctx,
                                  const ag::VarPtr& poi,
                                  const ag::VarPtr& img) const {
  ag::VarPtr p = ag::Relu(poi_g1_->Forward(poi, ctx));
  p = ag::Relu(poi_g2_->Forward(p, ctx));
  ag::VarPtr i = img_reduce_->Forward(img, kern::Activation::kRelu);
  i = ag::Relu(img_g1_->Forward(i, ctx));
  i = ag::Relu(img_g2_->Forward(i, ctx));
  ag::VarPtr fused =
      fuse_->Forward(ag::ConcatCols(p, i), kern::Activation::kRelu);
  return head_->Forward(fused);
}

ag::VarPtr GatBaseline::ForwardAll() const {
  return ForwardOn(*ctx_, poi_const_, img_const_);
}

std::vector<ag::VarPtr> GatBaseline::Params() const {
  std::vector<ag::VarPtr> params;
  auto add = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  add(img_reduce_->Params());
  add(poi_g1_->Params());
  add(poi_g2_->Params());
  add(img_g1_->Params());
  add(img_g2_->Params());
  add(fuse_->Params());
  add(head_->Params());
  return params;
}

void GatBaseline::Train(const urg::UrbanRegionGraph& urg,
                        const std::vector<int>& train_ids,
                        const std::vector<int>& train_labels) {
  Rng rng(options_.seed);
  minibatch_ = options_.batch_size > 0;
  img_reduce_ = std::make_unique<nn::Linear>(urg.ImageDim(), kImageReduce,
                                             &rng);
  poi_g1_ = std::make_unique<nn::GatLayer>(urg.PoiDim(), kHidden, kHeads,
                                           &rng);
  poi_g2_ = std::make_unique<nn::GatLayer>(kHidden, kHidden, kHeads, &rng);
  img_g1_ = std::make_unique<nn::GatLayer>(kImageReduce, kHidden, kHeads,
                                           &rng);
  img_g2_ = std::make_unique<nn::GatLayer>(kHidden, kHidden, kHeads, &rng);
  fuse_ = std::make_unique<nn::Linear>(2 * kHidden, kHidden, &rng);
  head_ = std::make_unique<nn::Linear>(kHidden, 1, &rng);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt(Params(), aopt);

  if (minibatch_) {
    epoch_seconds_ = TrainMinibatched(
        &opt, options_, urg, train_ids, train_labels,
        [this](const nn::GraphContext& ctx, const ag::VarPtr& poi,
               const ag::VarPtr& img) { return ForwardOn(ctx, poi, img); },
        &epoch_history_, "GAT");
    return;
  }

  ctx_ = nn::GraphContext::FromCsr(urg.adjacency);
  poi_const_ = ag::MakeConst(urg.poi_features);
  img_const_ = ag::MakeConst(urg.image_features);
  const Tensor labels = core::MakeLabelTensor(train_labels);
  const Tensor weights =
      core::MakeBceWeights(train_labels, options_.pos_weight);
  auto ids = std::make_shared<const std::vector<int>>(train_ids);
  epoch_seconds_ =
      TrainLoop(&opt, options_.epochs, options_.lr_decay_per_epoch, [&]() {
        return ag::BceWithLogits(ag::GatherRows(ForwardAll(), ids), labels,
                                 &weights);
      }, &epoch_history_, "GAT");
}

std::vector<float> GatBaseline::Score(const urg::UrbanRegionGraph& urg,
                                      const std::vector<int>& eval_ids) {
  WallTimer timer;
  std::vector<float> out;
  if (minibatch_) {
    out = ScoreMinibatched(
        urg, eval_ids, /*hops=*/2,
        [this](const nn::GraphContext& ctx, const ag::VarPtr& poi,
               const ag::VarPtr& img) { return ForwardOn(ctx, poi, img); });
  } else {
    ag::VarPtr logits = ForwardAll();
    out = SigmoidRows(logits->value, eval_ids);
  }
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t GatBaseline::NumParameters() const {
  return img_reduce_ ? CountParams(Params()) : 0;
}

std::unique_ptr<infer::Engine> GatBaseline::MakeEngine(
    const urg::UrbanRegionGraph& urg) const {
  UV_CHECK(img_reduce_ != nullptr);  // Train first.
  const nn::GraphContext ctx = nn::GraphContext::FromCsr(urg.adjacency);
  Tensor p = poi_g1_->ForwardRaw(urg.poi_features, ctx);
  ReluInPlace(&p);
  p = poi_g2_->ForwardRaw(p, ctx);
  ReluInPlace(&p);
  Tensor i = img_reduce_->ForwardRaw(urg.image_features,
                                     kern::Activation::kRelu);
  i = img_g1_->ForwardRaw(i, ctx);
  ReluInPlace(&i);
  i = img_g2_->ForwardRaw(i, ctx);
  ReluInPlace(&i);
  return infer::MakeDenseTailEngine(
      ConcatCols(p, i), fuse_->w()->value, fuse_->b()->value,
      kern::Activation::kRelu, head_->w()->value, head_->b()->value);
}

}  // namespace uv::baselines
