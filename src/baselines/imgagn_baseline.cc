#include "baselines/imgagn_baseline.h"

#include <algorithm>
#include <cmath>

#include "autograd/ops.h"
#include "core/cmsf_model.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
constexpr int kHidden = 64;
constexpr int kNoiseDim = 32;
constexpr int kLinksPerFake = 5;  // Fake nodes link to their top-5 weights.

// Extracts the (src, dst) edge list of a CSR graph, self loops included.
std::vector<graph::Edge> EdgeList(const graph::CsrGraph& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  const auto& off = *g.offsets();
  const auto& src = *g.neighbors();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int e = off[i]; e < off[i + 1]; ++e) edges.emplace_back(src[e], i);
  }
  return edges;
}

}  // namespace

void ImGagnBaseline::Train(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& train_ids,
                           const std::vector<int>& train_labels) {
  Rng rng(options_.seed);
  const int n = urg.num_regions();
  features_ = ConcatCols(urg.poi_features, urg.image_features);
  const int d = features_.cols();

  // Minority (UV) training nodes the generator imitates.
  std::vector<int> minority;
  for (size_t i = 0; i < train_ids.size(); ++i) {
    if (train_labels[i] == 1) minority.push_back(train_ids[i]);
  }
  const int m = static_cast<int>(minority.size());
  UV_CHECK_GT(m, 0);
  const int num_fake = m;  // lambda1 = 1.0.

  gen1_ = std::make_unique<nn::Linear>(kNoiseDim, kHidden, &rng);
  gen2_ = std::make_unique<nn::Linear>(kHidden, kHidden, &rng);
  gen3_ = std::make_unique<nn::Linear>(kHidden, m, &rng);
  disc_g1_ = std::make_unique<nn::GcnLayer>(d, kHidden, &rng);
  disc_g2_ = std::make_unique<nn::GcnLayer>(kHidden, kHidden, &rng);
  head_uv_ = std::make_unique<nn::Linear>(kHidden, 1, &rng);
  head_fake_ = std::make_unique<nn::Linear>(kHidden, 1, &rng);

  std::vector<ag::VarPtr> gen_params;
  std::vector<ag::VarPtr> disc_params;
  auto add = [](std::vector<ag::VarPtr>* dst, std::vector<ag::VarPtr> p) {
    dst->insert(dst->end(), p.begin(), p.end());
  };
  add(&gen_params, gen1_->Params());
  add(&gen_params, gen2_->Params());
  add(&gen_params, gen3_->Params());
  add(&disc_params, disc_g1_->Params());
  add(&disc_params, disc_g2_->Params());
  add(&disc_params, head_uv_->Params());
  add(&disc_params, head_fake_->Params());

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt_gen(gen_params, aopt);
  ag::AdamOptimizer opt_disc(disc_params, aopt);

  const std::vector<graph::Edge> base_edges = EdgeList(urg.adjacency);
  const ag::VarPtr real_features = ag::MakeConst(features_);
  const Tensor minority_features = GatherRows(features_, minority);

  // Generator forward: softmax weights over minority nodes -> fake features.
  auto generate = [&](Rng* noise_rng) {
    Tensor z(num_fake, kNoiseDim);
    z.RandomNormal(noise_rng, 1.0f);
    ag::VarPtr w = ag::RowSoftmax(
        gen3_->Forward(gen2_->Forward(
            gen1_->Forward(ag::MakeConst(z), kern::Activation::kRelu),
            kern::Activation::kRelu)),
        1.0f);
    ag::VarPtr fake = ag::MatMul(w, ag::MakeConst(minority_features));
    return std::make_pair(w, fake);
  };

  // Builds the augmented graph context from current fake->minority links.
  auto build_ctx = [&](const Tensor& weights) {
    std::vector<graph::Edge> edges = base_edges;
    for (int f = 0; f < num_fake; ++f) {
      // Top-k linked minority nodes per fake node.
      std::vector<int> order(m);
      for (int j = 0; j < m; ++j) order[j] = j;
      const int k = std::min(kLinksPerFake, m);
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](int a, int b) {
                          return weights.at(f, a) > weights.at(f, b);
                        });
      for (int j = 0; j < k; ++j) {
        edges.emplace_back(n + f, minority[order[j]]);
        edges.emplace_back(minority[order[j]], n + f);
      }
      edges.emplace_back(n + f, n + f);
    }
    return nn::GraphContext::FromCsr(graph::CsrGraph::FromEdges(
        n + num_fake, edges, /*symmetrize=*/false, /*add_self_loops=*/false));
  };

  // Discriminator forward on the augmented graph.
  auto discriminate = [&](const ag::VarPtr& fake_feats,
                          const nn::GraphContext& ctx) {
    ag::VarPtr x = ag::ConcatRows(real_features, fake_feats);
    x = ag::Relu(disc_g1_->Forward(x, ctx));
    x = ag::Relu(disc_g2_->Forward(x, ctx));
    return std::make_pair(head_uv_->Forward(x), head_fake_->Forward(x));
  };

  // Supervision tensors. UV head: labeled train nodes with their labels,
  // fake nodes counted as UVs. Fake head: labeled real nodes 0, fakes 1.
  auto uv_ids = std::make_shared<std::vector<int>>(train_ids);
  std::vector<int> uv_labels = train_labels;
  for (int f = 0; f < num_fake; ++f) {
    uv_ids->push_back(n + f);
    uv_labels.push_back(1);
  }
  const Tensor uv_label_tensor = core::MakeLabelTensor(uv_labels);
  const Tensor uv_weights =
      core::MakeBceWeights(uv_labels, options_.pos_weight);

  auto fake_ids = std::make_shared<std::vector<int>>();
  std::vector<int> fake_labels;
  for (int id : train_ids) {
    fake_ids->push_back(id);
    fake_labels.push_back(0);
  }
  for (int f = 0; f < num_fake; ++f) {
    fake_ids->push_back(n + f);
    fake_labels.push_back(1);
  }
  const Tensor fake_label_tensor = core::MakeLabelTensor(fake_labels);
  // Generator wants fakes classified as real (label 0 on fake rows).
  auto gen_target_ids = std::make_shared<std::vector<int>>();
  for (int f = 0; f < num_fake; ++f) gen_target_ids->push_back(n + f);
  Tensor gen_targets(num_fake, 1);  // All zeros = "real".

  const int outer = std::max(10, options_.epochs / 2);
  epoch_history_.clear();
  epoch_history_.reserve(outer);
  double gan_loss = 0.0;
  for (int epoch = 0; epoch < outer; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    // --- Discriminator step (fake features detached). ---
    auto [w_var, fake_var] = generate(&rng);
    const nn::GraphContext ctx = build_ctx(w_var->value);
    {
      ag::ZeroGrads(disc_params);
      ag::VarPtr detached = ag::MakeConst(fake_var->value);
      auto [uv_logits, fake_logits] = discriminate(detached, ctx);
      ag::VarPtr loss = ag::Add(
          ag::BceWithLogits(ag::GatherRows(uv_logits, uv_ids),
                            uv_label_tensor, &uv_weights),
          ag::BceWithLogits(ag::GatherRows(fake_logits, fake_ids),
                            fake_label_tensor, nullptr));
      gan_loss = loss->value.at(0, 0);
      ag::Backward(loss);
      opt_disc.Step();
    }
    // --- Generator step (discriminator gradients discarded). ---
    {
      ag::ZeroGrads(gen_params);
      ag::ZeroGrads(disc_params);
      auto [w2, fake2] = generate(&rng);
      auto [uv_logits, fake_logits] = discriminate(fake2, ctx);
      (void)uv_logits;
      ag::VarPtr loss = ag::BceWithLogits(
          ag::GatherRows(fake_logits, gen_target_ids), gen_targets, nullptr);
      ag::Backward(loss);
      opt_gen.Step();
    }
    opt_disc.DecayLearningRate(options_.lr_decay_per_epoch);
    opt_gen.DecayLearningRate(options_.lr_decay_per_epoch);
    epoch_history_.push_back(epoch_timer.Seconds());
    obs::MetricsRecord("epoch")
        .Str("stage", "ImGAGN")
        .Int("epoch", epoch)
        .Num("loss", gan_loss)
        .Num("seconds", epoch_history_.back())
        .Emit();
  }
  double total = 0.0;
  for (const double s : epoch_history_) total += s;
  epoch_seconds_ = total / outer;

  // Final scores from the UV head on the *original* graph (no fakes).
  {
    const nn::GraphContext plain_ctx =
        nn::GraphContext::FromCsr(urg.adjacency);
    ag::VarPtr x = ag::Relu(disc_g1_->Forward(real_features, plain_ctx));
    x = ag::Relu(disc_g2_->Forward(x, plain_ctx));
    ag::VarPtr logits = head_uv_->Forward(x);
    scores_all_.resize(n);
    for (int i = 0; i < n; ++i) {
      scores_all_[i] = 1.0f / (1.0f + std::exp(-logits->value.at(i, 0)));
    }
  }
}

std::vector<float> ImGagnBaseline::Score(const urg::UrbanRegionGraph& urg,
                                         const std::vector<int>& eval_ids) {
  (void)urg;
  WallTimer timer;
  std::vector<float> out(eval_ids.size());
  for (size_t i = 0; i < eval_ids.size(); ++i) {
    out[i] = scores_all_[eval_ids[i]];
  }
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t ImGagnBaseline::NumParameters() const {
  if (!gen1_) return 0;
  std::vector<ag::VarPtr> params;
  auto add = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  add(gen1_->Params());
  add(gen2_->Params());
  add(gen3_->Params());
  add(disc_g1_->Params());
  add(disc_g2_->Params());
  add(head_uv_->Params());
  add(head_fake_->Params());
  return CountParams(params);
}

}  // namespace uv::baselines
