#ifndef UV_BASELINES_UVLENS_BASELINE_H_
#define UV_BASELINES_UVLENS_BASELINE_H_

#include <memory>

#include "autograd/ops.h"
#include "baselines/common.h"
#include "nn/linear.h"

namespace uv::baselines {

// UVLens baseline (paper Appendix I-A, adapted exactly as the paper adapts
// it): histogram-equalized tiles, a CNN backbone extracting feature maps,
// and stacked fully connected layers for the final prediction. RPN and
// ROIPooling are omitted because the fixed grid already provides candidate
// boxes. Regions are independent, so training runs on labeled tiles only
// (mini-batched).
class UvLensBaseline : public eval::Detector {
 public:
  explicit UvLensBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "UVLens"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

 private:
  ag::VarPtr ForwardTiles(const ag::VarPtr& tiles) const;
  std::vector<ag::VarPtr> Params() const;

  TrainOptions options_;
  Tensor equalized_;  // Histogram-equalized tiles, built at Train time.
  ag::Conv2dSpec spec1_, spec2_;
  ag::VarPtr conv1_w_, conv1_b_, conv2_w_, conv2_b_;
  std::unique_ptr<nn::Linear> fc1_, fc2_, fc3_, head_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_UVLENS_BASELINE_H_
