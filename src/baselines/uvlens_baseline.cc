#include "baselines/uvlens_baseline.h"

#include <cmath>

#include "core/cmsf_model.h"
#include "features/image_encoder.h"
#include "util/check.h"
#include "util/timer.h"

namespace uv::baselines {

namespace {
// The paper's adapted UVLens stacks FC layers of 4096, 4096, 128, 64 units
// on the backbone features; at 32x32 tiles we keep the same shape scaled to
// the flattened map (1024 -> 512 -> 128 -> 64 -> 1).
constexpr int kFc1 = 512;
constexpr int kFc2 = 128;
constexpr int kFc3 = 64;
constexpr int kBatch = 256;
}  // namespace

ag::VarPtr UvLensBaseline::ForwardTiles(const ag::VarPtr& tiles) const {
  ag::VarPtr x = ag::Relu(ag::Conv2d(tiles, conv1_w_, conv1_b_, spec1_));
  x = ag::MaxPool2d(x, spec1_.out_channels, spec1_.out_h(), spec1_.out_w(), 2,
                    2);
  x = ag::Relu(ag::Conv2d(x, conv2_w_, conv2_b_, spec2_));
  x = ag::MaxPool2d(x, spec2_.out_channels, spec2_.out_h(), spec2_.out_w(), 2,
                    2);
  x = fc1_->Forward(x, kern::Activation::kRelu);
  x = fc2_->Forward(x, kern::Activation::kRelu);
  x = fc3_->Forward(x, kern::Activation::kRelu);
  return head_->Forward(x);
}

std::vector<ag::VarPtr> UvLensBaseline::Params() const {
  std::vector<ag::VarPtr> params = {conv1_w_, conv1_b_, conv2_w_, conv2_b_};
  auto add = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  add(fc1_->Params());
  add(fc2_->Params());
  add(fc3_->Params());
  add(head_->Params());
  return params;
}

void UvLensBaseline::Train(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& train_ids,
                           const std::vector<int>& train_labels) {
  UV_CHECK(urg.images != nullptr);
  Rng rng(options_.seed);
  const int s = urg.image_size;
  equalized_ = features::HistogramEqualize(*urg.images, 3);

  spec1_ = {3, s, s, 8, 3, 1, 1};
  spec2_ = {8, s / 2, s / 2, 16, 3, 1, 1};
  auto make_conv = [&rng](int out_c, int in_c, int k, ag::VarPtr* w,
                          ag::VarPtr* b) {
    Tensor wt(out_c, in_c * k * k);
    wt.RandomNormal(&rng, std::sqrt(2.0f / (in_c * k * k)));
    *w = ag::MakeParam(std::move(wt));
    *b = ag::MakeParam(Tensor(1, out_c));
  };
  make_conv(8, 3, 3, &conv1_w_, &conv1_b_);
  make_conv(16, 8, 3, &conv2_w_, &conv2_b_);
  const int flat = 16 * (s / 4) * (s / 4);
  fc1_ = std::make_unique<nn::Linear>(flat, kFc1, &rng);
  fc2_ = std::make_unique<nn::Linear>(kFc1, kFc2, &rng);
  fc3_ = std::make_unique<nn::Linear>(kFc2, kFc3, &rng);
  head_ = std::make_unique<nn::Linear>(kFc3, 1, &rng);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = options_.learning_rate;
  aopt.clip_norm = options_.clip_norm;
  ag::AdamOptimizer opt(Params(), aopt);

  const int n_train = static_cast<int>(train_ids.size());
  epoch_seconds_ = TrainLoop(
      &opt, options_.epochs, options_.lr_decay_per_epoch, [&]() {
        // Mini-batch sampled per epoch keeps single-core cost bounded.
        const int batch = std::min(kBatch, n_train);
        std::vector<int> pick_ids(batch);
        std::vector<int> pick_labels(batch);
        for (int i = 0; i < batch; ++i) {
          const int j = rng.UniformInt(n_train);
          pick_ids[i] = train_ids[j];
          pick_labels[i] = train_labels[j];
        }
        const Tensor labels = core::MakeLabelTensor(pick_labels);
        const Tensor weights =
            core::MakeBceWeights(pick_labels, options_.pos_weight);
        ag::VarPtr tiles = GatherConstRows(equalized_, pick_ids);
        return ag::BceWithLogits(ForwardTiles(tiles), labels, &weights);
      }, &epoch_history_, "UVLens");
}

std::vector<float> UvLensBaseline::Score(const urg::UrbanRegionGraph& urg,
                                         const std::vector<int>& eval_ids) {
  (void)urg;
  WallTimer timer;
  std::vector<float> out;
  out.reserve(eval_ids.size());
  for (size_t begin = 0; begin < eval_ids.size(); begin += kBatch) {
    const size_t end = std::min(eval_ids.size(), begin + kBatch);
    std::vector<int> chunk(eval_ids.begin() + begin, eval_ids.begin() + end);
    ag::VarPtr logits = ForwardTiles(GatherConstRows(equalized_, chunk));
    for (int i = 0; i < logits->rows(); ++i) {
      out.push_back(1.0f / (1.0f + std::exp(-logits->value.at(i, 0))));
    }
  }
  inference_seconds_ = timer.Seconds();
  return out;
}

int64_t UvLensBaseline::NumParameters() const {
  return fc1_ ? CountParams(Params()) : 0;
}

}  // namespace uv::baselines
