#include "baselines/registry.h"

#include "baselines/gat_baseline.h"
#include "baselines/gcn_baseline.h"
#include "baselines/imgagn_baseline.h"
#include "baselines/mlp_baseline.h"
#include "baselines/mmre_baseline.h"
#include "baselines/muvfcn_baseline.h"
#include "baselines/uvlens_baseline.h"
#include "core/cmsf_detector.h"
#include "util/check.h"

namespace uv::baselines {

std::vector<std::string> AllDetectorNames() {
  return {"MLP",    "GCN",    "GAT",    "MMRE",
          "UVLens", "MUVFCN", "ImGAGN", "CMSF"};
}

std::unique_ptr<eval::Detector> MakeDetector(
    const std::string& name, const TrainOptions& base_options,
    const core::CmsfConfig& cmsf_config) {
  // UV_BATCH / UV_FANOUT override the caller's minibatch settings so any
  // tool built on the registry can be switched to neighborhood-sampled
  // training without a flag of its own.
  TrainOptions options = base_options;
  {
    urg::MinibatchConfig mb;
    mb.batch_size = options.batch_size;
    mb.fanout = options.fanout;
    mb = urg::MinibatchConfig::FromEnv(mb);
    options.batch_size = mb.batch_size;
    options.fanout = mb.fanout;
  }
  if (name == "MLP") return std::make_unique<MlpBaseline>(options);
  if (name == "GCN") return std::make_unique<GcnBaseline>(options);
  if (name == "GAT") return std::make_unique<GatBaseline>(options);
  if (name == "MMRE") return std::make_unique<MmreBaseline>(options);
  if (name == "UVLens") return std::make_unique<UvLensBaseline>(options);
  if (name == "MUVFCN") return std::make_unique<MuvfcnBaseline>(options);
  if (name == "ImGAGN") return std::make_unique<ImGagnBaseline>(options);

  core::CmsfConfig cfg = cmsf_config;
  cfg.learning_rate = options.learning_rate;
  cfg.master_epochs = options.epochs;
  cfg.pos_weight = options.pos_weight;
  cfg.seed = options.seed;
  cfg.batch_size = options.batch_size;
  cfg.fanout = options.fanout;
  if (name == "CMSF") {
    return std::make_unique<core::CmsfDetector>(cfg, "CMSF");
  }
  if (name == "CMSF-M") {
    cfg.use_maga = false;
    return std::make_unique<core::CmsfDetector>(cfg, "CMSF-M");
  }
  if (name == "CMSF-G") {
    cfg.use_gate = false;
    return std::make_unique<core::CmsfDetector>(cfg, "CMSF-G");
  }
  if (name == "CMSF-H") {
    cfg.use_hierarchy = false;
    cfg.use_gate = false;
    return std::make_unique<core::CmsfDetector>(cfg, "CMSF-H");
  }
  UV_CHECK(false);
  return nullptr;
}

std::unique_ptr<infer::Engine> MakeEngine(const eval::Detector& detector,
                                          const urg::UrbanRegionGraph& urg) {
  if (const auto* cmsf = dynamic_cast<const core::CmsfDetector*>(&detector)) {
    UV_CHECK(cmsf->model() != nullptr);  // Train or LoadModel first.
    // Mirror Score: the frozen assignment participates only when the
    // hierarchy exists (MakeCmsfEngine further requires the gate for the
    // slave path).
    const core::CmsfModel::FrozenAssignment* frozen =
        cmsf->model()->config().use_hierarchy ? &cmsf->frozen() : nullptr;
    return infer::MakeCmsfEngine(*cmsf->model(), frozen, urg);
  }
  if (const auto* gcn = dynamic_cast<const GcnBaseline*>(&detector)) {
    return gcn->MakeEngine(urg);
  }
  if (const auto* gat = dynamic_cast<const GatBaseline*>(&detector)) {
    return gat->MakeEngine(urg);
  }
  return nullptr;
}

}  // namespace uv::baselines
