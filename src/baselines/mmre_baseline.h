#ifndef UV_BASELINES_MMRE_BASELINE_H_
#define UV_BASELINES_MMRE_BASELINE_H_

#include <memory>
#include <optional>

#include "baselines/common.h"
#include "nn/gcn.h"
#include "nn/linear.h"

namespace uv::baselines {

// MMRE baseline (paper Appendix I-A): multi-modal region embedding learned
// unsupervised with (1) a denoising autoencoder over image features
// (120-84-64 encoder, symmetric decoder), (2) a 2-layer GCN over POI
// features, and (3) a SkipGram objective with negative sampling that makes
// embeddings distinguish true contextual (adjacent) regions. A logistic
// head is then trained on the frozen embeddings. The transition
// -reconstruction term is omitted as in the paper (no taxi data).
class MmreBaseline : public eval::Detector {
 public:
  explicit MmreBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "MMRE"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

 private:
  // Embedding of all regions from the current parameters.
  ag::VarPtr EmbedAll() const;

  TrainOptions options_;
  std::optional<nn::GraphContext> ctx_;
  ag::VarPtr poi_const_, img_const_;
  std::unique_ptr<nn::Linear> enc1_, enc2_, enc3_;  // 120-84-64 encoder.
  std::unique_ptr<nn::Linear> dec1_, dec2_, dec3_;  // Symmetric decoder.
  std::unique_ptr<nn::GcnLayer> poi_g1_, poi_g2_;
  std::unique_ptr<nn::Linear> fuse_;
  std::unique_ptr<nn::Linear> head_;
  Tensor embeddings_;  // Frozen embeddings after the unsupervised phase.
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_MMRE_BASELINE_H_
