#ifndef UV_BASELINES_REGISTRY_H_
#define UV_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "core/cmsf_config.h"
#include "eval/detector.h"
#include "infer/engine.h"

namespace uv::baselines {

// Detector names in the row order of the paper's Table II.
std::vector<std::string> AllDetectorNames();

// Builds a detector by name. Baselines take `options`; "CMSF" and its
// Fig. 5(a) variants ("CMSF-M", "CMSF-G", "CMSF-H") take `cmsf_config`
// (epochs/lr/seed are copied from `options` for uniformity).
std::unique_ptr<eval::Detector> MakeDetector(const std::string& name,
                                             const TrainOptions& options,
                                             const core::CmsfConfig& cmsf_config);

// Grad-free inference engine for a trained detector over the given URG.
// Supported for CMSF (and its ablation variants), GCN, and GAT; returns
// null for detectors without an engine implementation. The detector and
// URG must outlive construction only — the engine owns all cached state.
std::unique_ptr<infer::Engine> MakeEngine(const eval::Detector& detector,
                                          const urg::UrbanRegionGraph& urg);

}  // namespace uv::baselines

#endif  // UV_BASELINES_REGISTRY_H_
