#ifndef UV_BASELINES_GCN_BASELINE_H_
#define UV_BASELINES_GCN_BASELINE_H_

#include <memory>
#include <optional>

#include "baselines/common.h"
#include "infer/engine.h"
#include "nn/gcn.h"
#include "nn/graph_context.h"
#include "nn/linear.h"

namespace uv::baselines {

// GCN baseline (paper Appendix I-A): image features linearly reduced, one
// 2-layer GCN per modality on the URG, linear multi-modal fusion, logistic
// head. Full-graph training by default; TrainOptions::batch_size > 0
// switches to neighborhood-sampled minibatches (required for sharded URGs,
// which have no global adjacency to forward over).
class GcnBaseline : public eval::Detector {
 public:
  explicit GcnBaseline(const TrainOptions& options) : options_(options) {}

  std::string name() const override { return "GCN"; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;
  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;
  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return epoch_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_history_;
  }
  double LastInferenceSeconds() const override { return inference_seconds_; }

  // Grad-free inference engine over this trained model (full-graph
  // semantics): precomputes the fused trunk features once, then serves the
  // dense fuse+head tail per request, bit-identical to full-graph Score.
  std::unique_ptr<infer::Engine> MakeEngine(
      const urg::UrbanRegionGraph& urg) const;

 private:
  ag::VarPtr ForwardOn(const nn::GraphContext& ctx, const ag::VarPtr& poi,
                       const ag::VarPtr& img) const;
  ag::VarPtr ForwardAll() const;
  std::vector<ag::VarPtr> Params() const;

  TrainOptions options_;
  bool minibatch_ = false;
  std::optional<nn::GraphContext> ctx_;
  ag::VarPtr poi_const_, img_const_;
  std::unique_ptr<nn::Linear> img_reduce_;
  std::unique_ptr<nn::GcnLayer> poi_g1_, poi_g2_, img_g1_, img_g2_;
  std::unique_ptr<nn::Linear> fuse_;
  std::unique_ptr<nn::Linear> head_;
  double epoch_seconds_ = 0.0;
  std::vector<double> epoch_history_;
  double inference_seconds_ = 0.0;
};

}  // namespace uv::baselines

#endif  // UV_BASELINES_GCN_BASELINE_H_
