#include "tensor/forward_ops.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace uv {

void ReluInPlace(Tensor* t) {
  float* d = t->data();
  for (int64_t i = 0; i < t->size(); ++i) d[i] = ReluScalar(d[i]);
}

void LeakyReluInPlace(float negative_slope, Tensor* t) {
  float* d = t->data();
  for (int64_t i = 0; i < t->size(); ++i) {
    d[i] = LeakyReluScalar(d[i], negative_slope);
  }
}

void SigmoidInPlace(Tensor* t) {
  float* d = t->data();
  for (int64_t i = 0; i < t->size(); ++i) d[i] = SigmoidScalar(d[i]);
}

void SegmentSoftmaxInto(const Tensor& scores, const std::vector<int>& offsets,
                        Tensor* out) {
  UV_CHECK_EQ(scores.cols(), 1);
  const int num_segments = static_cast<int>(offsets.size()) - 1;
  // Segments must tile [0, rows) exactly: that guarantees every element of
  // the uninitialized output below is written by exactly one segment.
  UV_CHECK_EQ(offsets.front(), 0);
  UV_CHECK_EQ(offsets.back(), scores.rows());
  out->ResizeUninit(scores.rows(), 1);
  const float* s = scores.data();
  float* o = out->data();
  const auto& off = offsets;
  ParallelFor(0, num_segments, kSegmentGrain, [&](int64_t s0, int64_t s1) {
    for (int64_t i = s0; i < s1; ++i) {
      const int lo = off[i], hi = off[i + 1];
      if (lo == hi) continue;
      float mx = -1e30f;
      for (int e = lo; e < hi; ++e) mx = std::max(mx, s[e]);
      double total = 0.0;
      for (int e = lo; e < hi; ++e) {
        o[e] = std::exp(s[e] - mx);
        total += o[e];
      }
      const float inv = total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
      for (int e = lo; e < hi; ++e) o[e] *= inv;
    }
  });
}

void SegmentWeightedSumInto(const Tensor& alpha, const Tensor& feats,
                            const std::vector<int>& offsets, Tensor* out) {
  UV_CHECK_EQ(alpha.cols(), 1);
  UV_CHECK_EQ(alpha.rows(), feats.rows());
  const int num_segments = static_cast<int>(offsets.size()) - 1;
  UV_CHECK_EQ(offsets.back(), feats.rows());
  const int d = feats.cols();
  out->ResizeUninit(num_segments, d);
  out->Zero();
  const float* a = alpha.data();
  const auto& off = offsets;
  ParallelFor(0, num_segments, kSegmentGrain, [&](int64_t s0, int64_t s1) {
    for (int64_t i = s0; i < s1; ++i) {
      float* dst = out->row(static_cast<int>(i));
      for (int e = off[i]; e < off[i + 1]; ++e) {
        const float w = a[e];
        const float* f = feats.row(e);
        for (int c = 0; c < d; ++c) dst[c] += w * f[c];
      }
    }
  });
}

SegmentDestIndex BuildSegmentDestIndex(const std::vector<int>& dest_of_source,
                                       int num_destinations) {
  SegmentDestIndex index;
  index.offsets.assign(num_destinations + 1, 0);
  for (const int d : dest_of_source) {
    if (d >= 0) ++index.offsets[d + 1];
  }
  for (int d = 0; d < num_destinations; ++d) {
    index.offsets[d + 1] += index.offsets[d];
  }
  index.sources.resize(index.offsets.back());
  std::vector<int> cursor(index.offsets.begin(), index.offsets.end() - 1);
  for (size_t s = 0; s < dest_of_source.size(); ++s) {
    const int d = dest_of_source[s];
    if (d >= 0) index.sources[cursor[d]++] = static_cast<int>(s);
  }
  return index;
}

void SegmentSumInto(const Tensor& x, const SegmentDestIndex& dest,
                    Tensor* out) {
  const int num_segments = static_cast<int>(dest.offsets.size()) - 1;
  const int cols = x.cols();
  out->ResizeUninit(num_segments, cols);
  out->Zero();
  ParallelFor(0, num_segments, kSegmentGrain, [&](int64_t k0, int64_t k1) {
    for (int64_t k = k0; k < k1; ++k) {
      float* dst = out->row(static_cast<int>(k));
      const int lo = dest.offsets[k];
      const int hi = dest.offsets[k + 1];
      for (int s = lo; s < hi; ++s) {
        const float* src = x.row(dest.sources[s]);
        for (int c = 0; c < cols; ++c) dst[c] += src[c];
      }
    }
  });
}

void MulColBroadcastInPlace(const Tensor& scale, Tensor* x) {
  UV_CHECK_EQ(scale.rows(), x->rows());
  UV_CHECK_EQ(scale.cols(), 1);
  for (int r = 0; r < x->rows(); ++r) {
    const float s = scale.at(r, 0);
    float* row = x->row(r);
    for (int c = 0; c < x->cols(); ++c) row[c] *= s;
  }
}

void MulRowVectorInPlace(const Tensor& v, Tensor* x) {
  UV_CHECK_EQ(v.rows(), 1);
  UV_CHECK_EQ(v.cols(), x->cols());
  const float* vd = v.data();
  for (int r = 0; r < x->rows(); ++r) {
    float* row = x->row(r);
    for (int c = 0; c < x->cols(); ++c) row[c] *= vd[c];
  }
}

int GatedMlpFilterSize(int d_in, int d_hidden) {
  return d_in * d_hidden + 2 * d_hidden + 1;
}

void GatedMlpForward(const Tensor& x, const Tensor& filter, const Tensor& w1,
                     const Tensor& b1, const Tensor& w2, const Tensor& b2,
                     Tensor* out, Tensor* hidden) {
  const int n = x.rows();
  const int d_in = x.cols();
  const int d_hidden = w1.cols();
  UV_CHECK_EQ(w1.rows(), d_in);
  UV_CHECK_EQ(b1.rows(), 1);
  UV_CHECK_EQ(b1.cols(), d_hidden);
  UV_CHECK_EQ(w2.rows(), d_hidden);
  UV_CHECK_EQ(w2.cols(), 1);
  UV_CHECK_EQ(b2.rows(), 1);
  UV_CHECK_EQ(b2.cols(), 1);
  UV_CHECK_EQ(filter.rows(), n);
  UV_CHECK_EQ(filter.cols(), GatedMlpFilterSize(d_in, d_hidden));

  // Filter row offsets for each parameter block.
  const int off_w1 = 0;
  const int off_b1 = d_in * d_hidden;
  const int off_w2 = off_b1 + d_hidden;
  const int off_b2 = off_w2 + d_hidden;

  out->ResizeUninit(n, 1);
  if (hidden != nullptr) hidden->ResizeUninit(n, d_hidden);
  // Small scratch row when the caller does not need the hidden activations.
  std::vector<float> scratch(hidden == nullptr ? d_hidden : 0);
  for (int i = 0; i < n; ++i) {
    const float* xi = x.row(i);
    const float* fi = filter.row(i);
    float* hi = hidden != nullptr ? hidden->row(i) : scratch.data();
    for (int c = 0; c < d_hidden; ++c) {
      float z = b1.at(0, c) * fi[off_b1 + c];
      for (int r = 0; r < d_in; ++r) {
        z += xi[r] * w1.at(r, c) * fi[off_w1 + r * d_hidden + c];
      }
      hi[c] = z > 0.0f ? z : 0.0f;
    }
    float logit = b2.at(0, 0) * fi[off_b2];
    for (int c = 0; c < d_hidden; ++c) {
      logit += hi[c] * w2.at(c, 0) * fi[off_w2 + c];
    }
    out->at(i, 0) = logit;
  }
}

}  // namespace uv
