#ifndef UV_TENSOR_TENSOR_H_
#define UV_TENSOR_TENSOR_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/buffer_pool.h"
#include "util/check.h"
#include "util/rng.h"

namespace uv {

// Dense row-major float matrix. Rank-2 is the native shape of everything in
// this library (N regions x d features, E edges x d, K clusters x d);
// vectors are represented as Nx1 or 1xd matrices.
//
// Storage is drawn from the process-wide BufferPool, so construction and
// destruction on the training hot path recycle slabs instead of hitting
// the heap. Tensor(r, c) keeps the historical all-zeros contract (recycled
// slabs are cleared explicitly); Tensor::Uninit(r, c) skips the clear for
// outputs that are fully overwritten — its contents are unspecified until
// written, and any code that reads them first is a determinism bug (the
// UV_POOL=0/1 parity tests catch exactly that).
class Tensor {
 public:
  Tensor() noexcept = default;
  Tensor(int rows, int cols) : Tensor(rows, cols, Raw{}) {
    if (data_ != nullptr) {
      std::memset(data_, 0, static_cast<size_t>(size()) * sizeof(float));
    }
  }
  Tensor(int rows, int cols, const std::vector<float>& data)
      : Tensor(rows, cols, Raw{}) {
    UV_CHECK_EQ(static_cast<long long>(rows) * cols,
                static_cast<long long>(data.size()));
    if (!data.empty()) {
      std::memcpy(data_, data.data(), data.size() * sizeof(float));
    }
  }

  // Pool slab with unspecified contents; every element must be written
  // before it is read.
  static Tensor Uninit(int rows, int cols) {
    return Tensor(rows, cols, Raw{});
  }

  Tensor(const Tensor& other) : Tensor(other.rows_, other.cols_, Raw{}) {
    if (other.size() > 0) {
      std::memcpy(data_, other.data_, other.size() * sizeof(float));
    }
  }
  Tensor& operator=(const Tensor& other) {
    if (this == &other) return *this;
    // Reuse the slab when the element count matches (the common case for
    // parameter updates and grad accumulation) instead of a release +
    // acquire round trip.
    if (size() != other.size()) {
      ReleaseStorage();
      AcquireStorage(other.size());
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
    if (other.size() > 0) {
      std::memcpy(data_, other.data_, other.size() * sizeof(float));
    }
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    ReleaseStorage();
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
    return *this;
  }
  ~Tensor() { ReleaseStorage(); }

  // Reshapes to rows x cols with unspecified contents, reusing the current
  // slab when its bucket capacity covers the new size (the steady state
  // for shape-stable kernel workspaces: no pool traffic at all).
  void ResizeUninit(int rows, int cols) {
    UV_CHECK_GE(rows, 0);
    UV_CHECK_GE(cols, 0);
    const int64_t n = static_cast<int64_t>(rows) * cols;
    if (BufferPool::BucketCapacity(static_cast<size_t>(n) * sizeof(float)) !=
        BufferPool::BucketCapacity(static_cast<size_t>(size()) *
                                   sizeof(float))) {
      ReleaseStorage();
      AcquireStorage(n);
    }
    rows_ = rows;
    cols_ = cols;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float* row(int r) { return data_ + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_ + static_cast<size_t>(r) * cols_;
  }

  float& at(int r, int c) {
    UV_CHECK_GE(r, 0);
    UV_CHECK_LT(r, rows_);
    UV_CHECK_GE(c, 0);
    UV_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    UV_CHECK_GE(r, 0);
    UV_CHECK_LT(r, rows_);
    UV_CHECK_GE(c, 0);
    UV_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // Unchecked flat accessors (hot loops).
  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Gaussian init with the given stddev.
  void RandomNormal(Rng* rng, float stddev);
  // Uniform init in [-limit, limit].
  void RandomUniform(Rng* rng, float limit);
  // Glorot/Xavier uniform init based on (fan_in, fan_out) = (rows, cols).
  void GlorotUniform(Rng* rng);

  // True if any element is NaN or infinite.
  bool HasNonFinite() const;

  // Frobenius norm.
  double Norm() const;
  double Sum() const;
  float MaxAbs() const;

  // Short debug description "Tensor(3x4)".
  std::string ShapeString() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  // Tag for the allocate-without-initializing ctor; a plain bool overload
  // would be selected by single-element brace inits like Tensor(1,1,{2.f}).
  struct Raw {};
  Tensor(int rows, int cols, Raw) : rows_(rows), cols_(cols) {
    UV_CHECK_GE(rows, 0);
    UV_CHECK_GE(cols, 0);
    AcquireStorage(size());
  }

  void AcquireStorage(int64_t n) {
    data_ = static_cast<float*>(
        BufferPool::Acquire(static_cast<size_t>(n) * sizeof(float)));
  }
  void ReleaseStorage() {
    if (data_ != nullptr) {
      BufferPool::Release(data_,
                          static_cast<size_t>(size()) * sizeof(float));
      data_ = nullptr;
    }
  }

  int rows_ = 0;
  int cols_ = 0;
  float* data_ = nullptr;
};

}  // namespace uv

#endif  // UV_TENSOR_TENSOR_H_
