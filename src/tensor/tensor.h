#ifndef UV_TENSOR_TENSOR_H_
#define UV_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace uv {

// Dense row-major float matrix. Rank-2 is the native shape of everything in
// this library (N regions x d features, E edges x d, K clusters x d);
// vectors are represented as Nx1 or 1xd matrices.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    UV_CHECK_GE(rows, 0);
    UV_CHECK_GE(cols, 0);
  }
  Tensor(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    UV_CHECK_EQ(static_cast<long long>(rows) * cols,
                static_cast<long long>(data_.size()));
  }

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int64_t size() const { return static_cast<int64_t>(rows_) * cols_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float& at(int r, int c) {
    UV_CHECK_GE(r, 0);
    UV_CHECK_LT(r, rows_);
    UV_CHECK_GE(c, 0);
    UV_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    UV_CHECK_GE(r, 0);
    UV_CHECK_LT(r, rows_);
    UV_CHECK_GE(c, 0);
    UV_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  // Unchecked flat accessors (hot loops).
  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Gaussian init with the given stddev.
  void RandomNormal(Rng* rng, float stddev);
  // Uniform init in [-limit, limit].
  void RandomUniform(Rng* rng, float limit);
  // Glorot/Xavier uniform init based on (fan_in, fan_out) = (rows, cols).
  void GlorotUniform(Rng* rng);

  // True if any element is NaN or infinite.
  bool HasNonFinite() const;

  // Frobenius norm.
  double Norm() const;
  double Sum() const;
  float MaxAbs() const;

  // Short debug description "Tensor(3x4)".
  std::string ShapeString() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

}  // namespace uv

#endif  // UV_TENSOR_TENSOR_H_
