#ifndef UV_TENSOR_TENSOR_OPS_H_
#define UV_TENSOR_TENSOR_OPS_H_

#include <vector>

#include "tensor/kernels/kernel_dispatch.h"
#include "tensor/tensor.h"

namespace uv {

// BLAS-lite kernels and elementwise helpers on Tensor. These are the raw
// (non-differentiable) building blocks; the autograd layer composes them.
// Every hot loop routes through the kern::KernelDispatch backend resolved
// at startup (UV_SIMD=auto|avx2|scalar).

// C = alpha * op(A) * op(B) + beta * C. Shapes must already agree.
void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c);

// Gemm with a fused epilogue: after the matrix product, adds the optional
// 1 x n bias row to every output row and applies the activation inside the
// still-hot output tile (one memory pass instead of three). bias may be
// null; act = kNone with a bias gives a plain fused bias add.
void GemmBiasAct(bool transpose_a, bool transpose_b, float alpha,
                 const Tensor& a, const Tensor& b, float beta, Tensor* c,
                 const Tensor* bias, kern::Activation act,
                 float leaky_slope = 0.0f);

// out = A * B (allocates the result).
Tensor MatMul(const Tensor& a, const Tensor& b);

// y += alpha * x (same shape).
void Axpy(float alpha, const Tensor& x, Tensor* y);

// Elementwise out-of-place operations (same shapes).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

// Adds a 1 x cols row vector to every row of a.
void AddRowVectorInPlace(const Tensor& row_vec, Tensor* a);

// Transposed copy.
Tensor Transpose(const Tensor& a);

// Writes a's transpose into out, which must already be a.cols() x a.rows().
// Lets callers reuse a persistent workspace instead of allocating.
void TransposeInto(const Tensor& a, Tensor* out);

// Row-wise softmax with temperature: out[r] = softmax(a[r] / temperature).
Tensor RowSoftmax(const Tensor& a, float temperature);

// Row-wise argmax indices.
std::vector<int> RowArgmax(const Tensor& a);

// Per-row L2 normalization (rows with near-zero norm are left as zeros).
Tensor RowL2Normalize(const Tensor& a);

// Column-wise statistics; each result is 1 x cols.
Tensor ColumnMean(const Tensor& a);
Tensor ColumnStd(const Tensor& a, const Tensor& mean);

// Standardizes columns to zero mean / unit variance (eps-guarded) in place.
void StandardizeColumnsInPlace(Tensor* a);

// Horizontal concatenation [a | b].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

// Column slice copy, [col_begin, col_end).
Tensor SliceCols(const Tensor& a, int col_begin, int col_end);

// Row gather: out[i] = a[indices[i]].
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

// Max absolute elementwise difference between two same-shaped tensors.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace uv

#endif  // UV_TENSOR_TENSOR_OPS_H_
