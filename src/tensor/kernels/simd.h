#ifndef UV_TENSOR_KERNELS_SIMD_H_
#define UV_TENSOR_KERNELS_SIMD_H_

#include <cmath>
#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define UV_SIMD_HAS_AVX2_TU 1
#endif

namespace uv::kern {

// ---------------------------------------------------------------------------
// Fixed-width 8-lane f32 vector wrappers. The kernel bodies in
// kernels_impl.h are templates over one of these types, so a new ISA
// (NEON would pair two float32x4_t) is a new struct here plus an explicit
// instantiation TU — the kernels themselves never change.
//
// Both types expose the same static-function surface:
//   Zero, Broadcast, Load, Store, Add, Sub, Mul, Fma(a,b,c)=a*b+c, Max,
//   ReduceSum, ReduceMax, kLanes.
// ReduceSum uses the same fixed pairwise tree in both backends
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) so that a lane-for-lane identical
// vector reduces to a bit-identical scalar regardless of backend.
// ---------------------------------------------------------------------------

// Portable fallback: a plain 8-float struct. Compilers unroll the fixed
// lane loops, but the semantics are exactly sequential scalar float math —
// no FMA contraction is implied (an fp-contract build may fuse, which is
// the per-build determinism the contract already allows).
struct ScalarF32x8 {
  static constexpr int kLanes = 8;
  float v[8];

  static ScalarF32x8 Zero() {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = 0.0f;
    return r;
  }
  static ScalarF32x8 Broadcast(float x) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = x;
    return r;
  }
  static ScalarF32x8 Load(const float* p) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  static void Store(float* p, ScalarF32x8 x) {
    for (int i = 0; i < kLanes; ++i) p[i] = x.v[i];
  }
  static ScalarF32x8 Add(ScalarF32x8 a, ScalarF32x8 b) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static ScalarF32x8 Sub(ScalarF32x8 a, ScalarF32x8 b) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static ScalarF32x8 Mul(ScalarF32x8 a, ScalarF32x8 b) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static ScalarF32x8 Fma(ScalarF32x8 a, ScalarF32x8 b, ScalarF32x8 c) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
    return r;
  }
  static ScalarF32x8 Max(ScalarF32x8 a, ScalarF32x8 b) {
    ScalarF32x8 r;
    for (int i = 0; i < kLanes; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }
  static float ReduceSum(ScalarF32x8 a) {
    return ((a.v[0] + a.v[4]) + (a.v[2] + a.v[6])) +
           ((a.v[1] + a.v[5]) + (a.v[3] + a.v[7]));
  }
  static float ReduceMax(ScalarF32x8 a) {
    float m = a.v[0];
    for (int i = 1; i < kLanes; ++i) m = a.v[i] > m ? a.v[i] : m;
    return m;
  }
};

#if defined(UV_SIMD_HAS_AVX2_TU)
// AVX2 + FMA. Loads/stores are unaligned (loadu/storeu): the pool hands out
// 64-byte-aligned bases but row strides are arbitrary, and on this
// microarchitecture loadu on aligned data costs the same as load.
struct Avx2F32x8 {
  static constexpr int kLanes = 8;
  __m256 v;

  static Avx2F32x8 Zero() { return {_mm256_setzero_ps()}; }
  static Avx2F32x8 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Avx2F32x8 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static void Store(float* p, Avx2F32x8 x) { _mm256_storeu_ps(p, x.v); }
  static Avx2F32x8 Add(Avx2F32x8 a, Avx2F32x8 b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  static Avx2F32x8 Sub(Avx2F32x8 a, Avx2F32x8 b) {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  static Avx2F32x8 Mul(Avx2F32x8 a, Avx2F32x8 b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }
  static Avx2F32x8 Fma(Avx2F32x8 a, Avx2F32x8 b, Avx2F32x8 c) {
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
  }
  static Avx2F32x8 Max(Avx2F32x8 a, Avx2F32x8 b) {
    return {_mm256_max_ps(a.v, b.v)};
  }
  static float ReduceSum(Avx2F32x8 a) {
    // Same fixed tree as ScalarF32x8::ReduceSum: hadd within 128-bit halves
    // pairs (l0+l1, l2+l3 | l4+l5, l6+l7)... but that tree differs from the
    // scalar one, so do it with explicit shuffles instead:
    // lo = (l0,l1,l2,l3), hi = (l4,l5,l6,l7); s = lo + hi gives (l0+l4,
    // l1+l5, l2+l6, l3+l7); then ((s0 + s2) + (s1 + s3)) matches
    // ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
    __m128 lo = _mm256_castps256_ps128(a.v);
    __m128 hi = _mm256_extractf128_ps(a.v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    __m128 shuf = _mm_movehl_ps(s, s);       // (s2, s3, -, -)
    __m128 sums = _mm_add_ps(s, shuf);       // (s0+s2, s1+s3, -, -)
    __m128 final_shuf = _mm_shuffle_ps(sums, sums, 0x1);
    return _mm_cvtss_f32(_mm_add_ss(sums, final_shuf));
  }
  static float ReduceMax(Avx2F32x8 a) {
    __m128 lo = _mm256_castps256_ps128(a.v);
    __m128 hi = _mm256_extractf128_ps(a.v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x1));
    return _mm_cvtss_f32(m);
  }
};
#endif  // UV_SIMD_HAS_AVX2_TU

}  // namespace uv::kern

#endif  // UV_TENSOR_KERNELS_SIMD_H_
