#ifndef UV_TENSOR_KERNELS_KERNELS_IMPL_H_
#define UV_TENSOR_KERNELS_KERNELS_IMPL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/kernels/kernel_dispatch.h"
#include "tensor/kernels/simd.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace uv::kern {

// ---------------------------------------------------------------------------
// Generic kernel bodies, templated over the 8-lane vector type from simd.h.
// Each backend TU (kernels_scalar.cc, kernels_avx2.cc) explicitly
// instantiates Kernels<ItsVectorType>, so both backends compile from ONE
// set of loop bodies: different template arguments produce different
// symbols, there is no ODR hazard, and a semantic fix lands in both
// backends at once.
//
// Per-element vector-lane vs scalar-tail assignment depends only on the
// span a kernel is handed. tensor_ops.cc chunks elementwise spans with a
// grain that is a multiple of V8::kLanes, so an element's treatment is a
// function of the problem size alone — never of UV_THREADS — which is what
// keeps the per-backend bit-identity contract intact.
// ---------------------------------------------------------------------------

template <class V8>
struct Kernels {
  static constexpr int kL = V8::kLanes;

  // GEMM register blocking: each microkernel invocation produces an
  // MR x NR tile of C out of MR broadcast lanes of packed A against two
  // V8 columns of packed B, keeping 12 accumulators + 2 B vectors + 1 A
  // broadcast in flight (15 of 16 ymm registers on AVX2).
  static constexpr int kMr = 6;
  static constexpr int kNr = 2 * kL;

  // ------------------------------------------------------------------
  // Elementwise / reduction kernels. All serial over [0, n): the caller
  // owns the parallel split.
  // ------------------------------------------------------------------

  static void Axpy(float alpha, const float* x, float* y, int64_t n) {
    const V8 va = V8::Broadcast(alpha);
    int64_t i = 0;
    for (; i + kL <= n; i += kL) {
      V8::Store(y + i, V8::Fma(va, V8::Load(x + i), V8::Load(y + i)));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
  }

  static void Mul(const float* a, const float* b, float* out, int64_t n) {
    int64_t i = 0;
    for (; i + kL <= n; i += kL) {
      V8::Store(out + i, V8::Mul(V8::Load(a + i), V8::Load(b + i)));
    }
    for (; i < n; ++i) out[i] = a[i] * b[i];
  }

  static void Scale(float* x, float s, int64_t n) {
    const V8 vs = V8::Broadcast(s);
    int64_t i = 0;
    for (; i + kL <= n; i += kL) {
      V8::Store(x + i, V8::Mul(V8::Load(x + i), vs));
    }
    for (; i < n; ++i) x[i] *= s;
  }

  static void AddRowVector(const float* v, float* rows, int64_t num_rows,
                           int64_t cols) {
    for (int64_t r = 0; r < num_rows; ++r) {
      float* row = rows + r * cols;
      int64_t c = 0;
      for (; c + kL <= cols; c += kL) {
        V8::Store(row + c, V8::Add(V8::Load(row + c), V8::Load(v + c)));
      }
      for (; c < cols; ++c) row[c] += v[c];
    }
  }

  static float MaxAbsDiff(const float* a, const float* b, int64_t n) {
    // |x| = max(x, -x); max is exact and order-free, so this reduction is
    // bit-identical across backends and chunkings.
    V8 acc = V8::Zero();
    int64_t i = 0;
    for (; i + kL <= n; i += kL) {
      const V8 va = V8::Load(a + i);
      const V8 vb = V8::Load(b + i);
      acc = V8::Max(acc, V8::Max(V8::Sub(va, vb), V8::Sub(vb, va)));
    }
    float m = V8::ReduceMax(acc);
    for (; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
  }

  static void RowSoftmax(const float* in, float* out, int64_t num_rows,
                         int64_t cols, float inv_temperature) {
    const V8 vinv = V8::Broadcast(inv_temperature);
    for (int64_t r = 0; r < num_rows; ++r) {
      const float* x = in + r * cols;
      float* o = out + r * cols;
      // Max pass over the temperature-scaled values (mul + max are exact,
      // so the vectorization cannot change the result).
      V8 vmx = V8::Broadcast(-1e30f);
      int64_t c = 0;
      for (; c + kL <= cols; c += kL) {
        vmx = V8::Max(vmx, V8::Mul(V8::Load(x + c), vinv));
      }
      float mx = V8::ReduceMax(vmx);
      for (; c < cols; ++c) mx = std::max(mx, x[c] * inv_temperature);
      // exp + sum stay scalar/sequential: a vectorized exp would be a
      // polynomial approximation, not a reorder, and the rows here are
      // K=20-ish cluster columns — the win is hoisting 1/temperature and
      // parallelizing rows, not vectorizing exp.
      double total = 0.0;
      for (c = 0; c < cols; ++c) {
        const float e = std::exp(x[c] * inv_temperature - mx);
        o[c] = e;
        total += e;
      }
      const float inv = total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
      const V8 vinv_total = V8::Broadcast(inv);
      for (c = 0; c + kL <= cols; c += kL) {
        V8::Store(o + c, V8::Mul(V8::Load(o + c), vinv_total));
      }
      for (; c < cols; ++c) o[c] *= inv;
    }
  }

  static void RowL2Normalize(float* rows, int64_t num_rows, int64_t cols) {
    for (int64_t r = 0; r < num_rows; ++r) {
      float* row = rows + r * cols;
      V8 acc = V8::Zero();
      int64_t c = 0;
      for (; c + kL <= cols; c += kL) {
        const V8 v = V8::Load(row + c);
        acc = V8::Fma(v, v, acc);
      }
      float sumsq = V8::ReduceSum(acc);
      for (; c < cols; ++c) sumsq += row[c] * row[c];
      const double norm = std::sqrt(static_cast<double>(sumsq));
      if (norm < 1e-12) continue;
      const float inv = static_cast<float>(1.0 / norm);
      const V8 vinv = V8::Broadcast(inv);
      for (c = 0; c + kL <= cols; c += kL) {
        V8::Store(row + c, V8::Mul(V8::Load(row + c), vinv));
      }
      for (; c < cols; ++c) row[c] *= inv;
    }
  }

  static void BiasActRows(float* rows, const float* bias, int64_t num_rows,
                          int64_t cols, Activation act, float leaky_slope) {
    if (act == Activation::kSigmoid) {
      // Numerically-stable sigmoid, scalar in both backends so the two
      // dispatch tables agree bit-for-bit on this epilogue.
      for (int64_t r = 0; r < num_rows; ++r) {
        float* row = rows + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          const float x = bias != nullptr ? row[c] + bias[c] : row[c];
          row[c] = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                             : std::exp(x) / (1.0f + std::exp(x));
        }
      }
      return;
    }
    const V8 zero = V8::Zero();
    const V8 vslope = V8::Broadcast(leaky_slope);
    for (int64_t r = 0; r < num_rows; ++r) {
      float* row = rows + r * cols;
      int64_t c = 0;
      for (; c + kL <= cols; c += kL) {
        V8 x = V8::Load(row + c);
        if (bias != nullptr) x = V8::Add(x, V8::Load(bias + c));
        switch (act) {
          case Activation::kNone:
            break;
          case Activation::kRelu:
            x = V8::Max(x, zero);
            break;
          case Activation::kLeakyRelu: {
            // max(x,0) + slope*min(x,0); min(x,0) = -max(-x,0).
            const V8 neg = V8::Sub(zero, x);
            x = V8::Fma(vslope, V8::Sub(zero, V8::Max(neg, zero)),
                        V8::Max(x, zero));
            break;
          }
          case Activation::kSigmoid:
            break;  // Handled above.
        }
        V8::Store(row + c, x);
      }
      for (; c < cols; ++c) {
        float x = bias != nullptr ? row[c] + bias[c] : row[c];
        switch (act) {
          case Activation::kNone:
            break;
          case Activation::kRelu:
            x = x > 0.0f ? x : 0.0f;
            break;
          case Activation::kLeakyRelu:
            x = (x > 0.0f ? x : 0.0f) +
                leaky_slope * (x < 0.0f ? x : 0.0f);
            break;
          case Activation::kSigmoid:
            break;
        }
        row[c] = x;
      }
    }
  }

  // ------------------------------------------------------------------
  // Packed GEMM. C += alpha * op(A) * op(B), then the optional fused
  // bias/activation epilogue per row panel. BLIS-style blocking: the K
  // dimension is tiled at kGemmKc; B is packed once per call into
  // zero-padded kNr column panels (the packing absorbs trans_b, so the
  // microkernel only ever sees the contiguous layout); row panels of C
  // are distributed over the thread pool, and each chunk packs its own
  // alpha-scaled A panels into a thread-local workspace (trans_a is
  // likewise absorbed by the pack).
  //
  // Accumulation order per C element: p ascending inside a kc block in
  // fixed vector lanes, kc blocks ascending, one add into C per block —
  // independent of the chunk layout, hence bit-identical across
  // UV_THREADS/UV_POOL for a fixed backend.
  // ------------------------------------------------------------------

  static void PackB(const GemmArgs& g, int pc, int pe, float* bp) {
    const int n = g.n;
    const int kc_len = pe - pc;
    const int np = (n + kNr - 1) / kNr;
    for (int jp = 0; jp < np; ++jp) {
      const int j0 = jp * kNr;
      const int jw = std::min(kNr, n - j0);
      float* panel = bp + static_cast<int64_t>(jp) * kc_len * kNr;
      if (!g.trans_b) {
        // B is k x n: copy kNr-wide slivers of kc_len consecutive rows.
        for (int p = 0; p < kc_len; ++p) {
          const float* src =
              g.b + static_cast<int64_t>(pc + p) * n + j0;
          float* dst = panel + static_cast<int64_t>(p) * kNr;
          int j = 0;
          for (; j < jw; ++j) dst[j] = src[j];
          for (; j < kNr; ++j) dst[j] = 0.0f;
        }
      } else {
        // B is n x k: column j of op(B) is row j0+j of B — contiguous in
        // p, strided kNr in the panel.
        for (int j = 0; j < jw; ++j) {
          const float* src =
              g.b + static_cast<int64_t>(j0 + j) * g.k + pc;
          for (int p = 0; p < kc_len; ++p) {
            panel[static_cast<int64_t>(p) * kNr + j] = src[p];
          }
        }
        for (int j = jw; j < kNr; ++j) {
          for (int p = 0; p < kc_len; ++p) {
            panel[static_cast<int64_t>(p) * kNr + j] = 0.0f;
          }
        }
      }
    }
  }

  // Packs rows [i0, i1) of op(A), k-slice [pc, pe), as kMr-row panels
  // with alpha folded in (matching the pre-existing kernel's
  // "alpha * a" accumulation order).
  static void PackA(const GemmArgs& g, int i0, int i1, int pc, int pe,
                    float* ap) {
    const int kc_len = pe - pc;
    const int rows = i1 - i0;
    const int mp = (rows + kMr - 1) / kMr;
    for (int ip = 0; ip < mp; ++ip) {
      const int r0 = i0 + ip * kMr;
      const int rw = std::min(kMr, i1 - r0);
      float* panel = ap + static_cast<int64_t>(ip) * kc_len * kMr;
      if (!g.trans_a) {
        // A is m x k: panel element (p, i) = alpha * A(r0+i, pc+p).
        for (int i = 0; i < rw; ++i) {
          const float* src =
              g.a + static_cast<int64_t>(r0 + i) * g.k + pc;
          for (int p = 0; p < kc_len; ++p) {
            panel[static_cast<int64_t>(p) * kMr + i] = g.alpha * src[p];
          }
        }
      } else {
        // A is k x m: op(A)(i, p) = A(p, i) — the pack IS the transpose,
        // so no separate materialized-transpose pass is needed.
        for (int p = 0; p < kc_len; ++p) {
          const float* src = g.a + static_cast<int64_t>(pc + p) * g.m + r0;
          float* dst = panel + static_cast<int64_t>(p) * kMr;
          for (int i = 0; i < rw; ++i) dst[i] = g.alpha * src[i];
        }
      }
      if (rw < kMr) {
        for (int p = 0; p < kc_len; ++p) {
          float* dst = panel + static_cast<int64_t>(p) * kMr;
          for (int i = rw; i < kMr; ++i) dst[i] = 0.0f;
        }
      }
    }
  }

  // One kMr x kNr tile: C[0:rows, 0:cols] += packed-A panel * packed-B
  // panel. 12 live accumulators; edge tiles spill through a stack buffer
  // (the accumulated values are identical either way).
  static void Micro(int kc_len, const float* ap, const float* bp, float* c,
                    int64_t ldc, int rows, int cols) {
    V8 acc00 = V8::Zero(), acc01 = V8::Zero();
    V8 acc10 = V8::Zero(), acc11 = V8::Zero();
    V8 acc20 = V8::Zero(), acc21 = V8::Zero();
    V8 acc30 = V8::Zero(), acc31 = V8::Zero();
    V8 acc40 = V8::Zero(), acc41 = V8::Zero();
    V8 acc50 = V8::Zero(), acc51 = V8::Zero();
    for (int p = 0; p < kc_len; ++p) {
      const V8 b0 = V8::Load(bp + static_cast<int64_t>(p) * kNr);
      const V8 b1 = V8::Load(bp + static_cast<int64_t>(p) * kNr + kL);
      const float* arow = ap + static_cast<int64_t>(p) * kMr;
      V8 a0 = V8::Broadcast(arow[0]);
      acc00 = V8::Fma(a0, b0, acc00);
      acc01 = V8::Fma(a0, b1, acc01);
      a0 = V8::Broadcast(arow[1]);
      acc10 = V8::Fma(a0, b0, acc10);
      acc11 = V8::Fma(a0, b1, acc11);
      a0 = V8::Broadcast(arow[2]);
      acc20 = V8::Fma(a0, b0, acc20);
      acc21 = V8::Fma(a0, b1, acc21);
      a0 = V8::Broadcast(arow[3]);
      acc30 = V8::Fma(a0, b0, acc30);
      acc31 = V8::Fma(a0, b1, acc31);
      a0 = V8::Broadcast(arow[4]);
      acc40 = V8::Fma(a0, b0, acc40);
      acc41 = V8::Fma(a0, b1, acc41);
      a0 = V8::Broadcast(arow[5]);
      acc50 = V8::Fma(a0, b0, acc50);
      acc51 = V8::Fma(a0, b1, acc51);
    }
    if (rows == kMr && cols == kNr) {
      float* c0 = c;
      V8::Store(c0, V8::Add(V8::Load(c0), acc00));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc01));
      c0 = c + ldc;
      V8::Store(c0, V8::Add(V8::Load(c0), acc10));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc11));
      c0 = c + 2 * ldc;
      V8::Store(c0, V8::Add(V8::Load(c0), acc20));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc21));
      c0 = c + 3 * ldc;
      V8::Store(c0, V8::Add(V8::Load(c0), acc30));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc31));
      c0 = c + 4 * ldc;
      V8::Store(c0, V8::Add(V8::Load(c0), acc40));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc41));
      c0 = c + 5 * ldc;
      V8::Store(c0, V8::Add(V8::Load(c0), acc50));
      V8::Store(c0 + kL, V8::Add(V8::Load(c0 + kL), acc51));
    } else {
      float buf[kMr * kNr];
      V8::Store(buf + 0 * kNr, acc00);
      V8::Store(buf + 0 * kNr + kL, acc01);
      V8::Store(buf + 1 * kNr, acc10);
      V8::Store(buf + 1 * kNr + kL, acc11);
      V8::Store(buf + 2 * kNr, acc20);
      V8::Store(buf + 2 * kNr + kL, acc21);
      V8::Store(buf + 3 * kNr, acc30);
      V8::Store(buf + 3 * kNr + kL, acc31);
      V8::Store(buf + 4 * kNr, acc40);
      V8::Store(buf + 4 * kNr + kL, acc41);
      V8::Store(buf + 5 * kNr, acc50);
      V8::Store(buf + 5 * kNr + kL, acc51);
      for (int r = 0; r < rows; ++r) {
        float* crow = c + static_cast<int64_t>(r) * ldc;
        for (int j = 0; j < cols; ++j) crow[j] += buf[r * kNr + j];
      }
    }
  }

  // Processes C rows [i0, i1): all kc blocks, then the fused epilogue.
  // bpack holds every kc block of packed B, laid out back to back.
  static void GemmRowChunk(const GemmArgs& g, const float* bpack, int i0,
                           int i1) {
    const int k = g.k;
    const int n = g.n;
    const int np = (n + kNr - 1) / kNr;
    thread_local Tensor apack;
    for (int pc = 0; pc < k; pc += kGemmKc) {
      const int pe = std::min(k, pc + kGemmKc);
      const int kc_len = pe - pc;
      const float* bblock =
          bpack + static_cast<int64_t>(pc) * (np * kNr);
      const int mp = (i1 - i0 + kMr - 1) / kMr;
      apack.ResizeUninit(mp * kMr, kc_len);
      PackA(g, i0, i1, pc, pe, apack.data());
      for (int ip = 0; ip < mp; ++ip) {
        const int r0 = i0 + ip * kMr;
        const int rw = std::min(kMr, i1 - r0);
        const float* apanel =
            apack.data() + static_cast<int64_t>(ip) * kc_len * kMr;
        for (int jp = 0; jp < np; ++jp) {
          const int j0 = jp * kNr;
          const int jw = std::min(kNr, n - j0);
          Micro(kc_len, apanel,
                bblock + static_cast<int64_t>(jp) * kc_len * kNr,
                g.c + static_cast<int64_t>(r0) * n + j0, n, rw, jw);
        }
      }
    }
    if (g.bias != nullptr || g.act != Activation::kNone) {
      BiasActRows(g.c + static_cast<int64_t>(i0) * n, g.bias, i1 - i0, n,
                  g.act, g.leaky_slope);
    }
  }

  static void Gemm(const GemmArgs& g) {
    const int m = g.m;
    const int n = g.n;
    const int k = g.k;
    if (m == 0 || n == 0) return;
    if (k == 0) {
      // Nothing to accumulate, but the fused epilogue still applies.
      if (g.bias != nullptr || g.act != Activation::kNone) {
        BiasActRows(g.c, g.bias, m, n, g.act, g.leaky_slope);
      }
      return;
    }
    // Pack all of B once (k x n_padded floats); the packing cost is
    // O(k*n) against O(m*n*k) compute. Thread-local so concurrent Gemm
    // callers (fold-level parallelism) never share a workspace; the
    // ParallelFor below nests inline, so workers reading bpack are
    // executing this caller's chunks.
    const int np = (n + kNr - 1) / kNr;
    thread_local Tensor bpack;
    bpack.ResizeUninit(k, np * kNr);
    for (int pc = 0; pc < k; pc += kGemmKc) {
      const int pe = std::min(k, pc + kGemmKc);
      PackB(g, pc, pe, bpack.data() + static_cast<int64_t>(pc) * (np * kNr));
    }
    const float* bpd = bpack.data();
    const bool parallel =
        static_cast<int64_t>(m) * n * k >= kGemmFlopThreshold;
    if (parallel) {
      ParallelFor(0, m, kGemmRowGrain, [&](int64_t i0, int64_t i1) {
        GemmRowChunk(g, bpd, static_cast<int>(i0), static_cast<int>(i1));
      });
    } else {
      GemmRowChunk(g, bpd, 0, m);
    }
  }

  // The dispatch table for this backend.
  static KernelDispatch Table(const char* name) {
    KernelDispatch t;
    t.name = name;
    t.gemm = &Kernels::Gemm;
    t.axpy = &Kernels::Axpy;
    t.mul = &Kernels::Mul;
    t.scale = &Kernels::Scale;
    t.add_row_vector = &Kernels::AddRowVector;
    t.max_abs_diff = &Kernels::MaxAbsDiff;
    t.row_softmax = &Kernels::RowSoftmax;
    t.row_l2_normalize = &Kernels::RowL2Normalize;
    t.bias_act_rows = &Kernels::BiasActRows;
    return t;
  }
};

}  // namespace uv::kern

#endif  // UV_TENSOR_KERNELS_KERNELS_IMPL_H_
