#ifndef UV_TENSOR_KERNELS_KERNEL_DISPATCH_H_
#define UV_TENSOR_KERNELS_KERNEL_DISPATCH_H_

#include <cstdint>

namespace uv::kern {

// ---------------------------------------------------------------------------
// Runtime-dispatched vectorized kernel backend. Every hot loop in
// tensor_ops.cc (and the fused dense forward in the autograd layer) routes
// through one KernelDispatch table, resolved once at startup from CPUID
// and the UV_SIMD environment variable (auto | avx2 | scalar). The same
// seam is where any future BLAS/GPU backend plugs in: implement the table,
// add a Backend enumerator, and teach Resolve() to pick it.
//
// Determinism contract: for a FIXED backend, every kernel is bit-identical
// across UV_THREADS and UV_POOL values (chunk layouts depend only on the
// problem shape, and accumulation order per output element is fixed).
// Across backends results agree only to floating-point-reassociation
// tolerance: the AVX2 path fuses multiply-adds and accumulates GEMM dot
// products in eight parallel lanes, which legitimately reorders sums.
// ---------------------------------------------------------------------------

// Activations a GEMM epilogue can fuse. Sigmoid is applied with the same
// numerically-stable scalar formula in both backends (vectorizing exp
// would introduce a polynomial approximation, not just a reorder).
enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid };

// One GEMM problem: C += alpha * op(A) * op(B), all row-major, with an
// optional fused epilogue (bias row add + activation) applied to each
// output row panel after its k-accumulation completes. The beta term must
// already be folded into C by the caller.
struct GemmArgs {
  int m = 0;
  int n = 0;
  int k = 0;
  bool trans_a = false;
  bool trans_b = false;
  float alpha = 1.0f;
  const float* a = nullptr;  // (trans_a ? k x m : m x k)
  const float* b = nullptr;  // (trans_b ? n x k : k x n)
  float* c = nullptr;        // m x n
  const float* bias = nullptr;  // Optional 1 x n row added to every C row.
  Activation act = Activation::kNone;
  float leaky_slope = 0.0f;
};

// The dispatch table. GEMM parallelizes internally (row panels over the
// global thread pool); the elementwise/reduction entries are serial over
// the range they are given — callers chunk them with ParallelFor so the
// parallel split stays in one place (tensor_ops.cc).
struct KernelDispatch {
  const char* name;  // "scalar" or "avx2"; lands in the perf-ledger env.

  // Packed GEMM with fused epilogue (see GemmArgs).
  void (*gemm)(const GemmArgs& args);

  // y[i] += alpha * x[i].
  void (*axpy)(float alpha, const float* x, float* y, int64_t n);
  // out[i] = a[i] * b[i].
  void (*mul)(const float* a, const float* b, float* out, int64_t n);
  // x[i] *= s.
  void (*scale)(float* x, float s, int64_t n);
  // rows[r][c] += v[c] for r in [0, num_rows).
  void (*add_row_vector)(const float* v, float* rows, int64_t num_rows,
                         int64_t cols);
  // max_i |a[i] - b[i]| (exact: max is order-independent).
  float (*max_abs_diff)(const float* a, const float* b, int64_t n);
  // Row-wise softmax(in * inv_temperature) for num_rows contiguous rows.
  void (*row_softmax)(const float* in, float* out, int64_t num_rows,
                      int64_t cols, float inv_temperature);
  // In-place per-row L2 normalization (near-zero rows left untouched).
  void (*row_l2_normalize)(float* rows, int64_t num_rows, int64_t cols);
  // In-place bias row add + activation over num_rows contiguous rows
  // (the standalone form of the GEMM epilogue).
  void (*bias_act_rows)(float* rows, const float* bias, int64_t num_rows,
                        int64_t cols, Activation act, float leaky_slope);
};

enum class Backend { kScalar = 0, kAvx2 = 1 };

// True when the backend is both compiled in and supported by this CPU.
// kScalar is always available.
bool BackendAvailable(Backend b);

// The active table, resolved on first use: UV_SIMD=scalar|avx2 forces a
// backend (avx2 falls back to scalar with a stderr note when unsupported);
// auto / unset picks the widest available.
const KernelDispatch& Active();
Backend ActiveBackend();
const char* ActiveName();

// Test/bench hook: swaps the active backend inside one process. CHECK-fails
// if the backend is unavailable; guard with BackendAvailable first.
void SetActiveBackend(Backend b);

// ---------------------------------------------------------------------------
// Shared blocking/threshold constants. The cutoffs only select serial vs
// parallel execution — never the per-element accumulation order — so
// results are bit-identical either way.
// ---------------------------------------------------------------------------
inline constexpr int64_t kGemmFlopThreshold = 1 << 16;
inline constexpr int64_t kElementwiseThreshold = 1 << 15;
inline constexpr int64_t kElementwiseGrain = 1 << 14;
// K-dimension cache block of the packed GEMM and the row grain its panel
// loop is parallelized with.
inline constexpr int kGemmKc = 256;
inline constexpr int kGemmRowGrain = 32;

}  // namespace uv::kern

#endif  // UV_TENSOR_KERNELS_KERNEL_DISPATCH_H_
