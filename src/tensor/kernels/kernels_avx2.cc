// AVX2+FMA-backend instantiation of the generic kernel bodies. This TU
// alone is compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt), so
// the rest of the library stays portable and the dispatcher only jumps
// here after CPUID says the instructions exist.

#include "tensor/kernels/kernels_impl.h"

#if !defined(UV_SIMD_HAS_AVX2_TU)
#error "kernels_avx2.cc must be compiled with -mavx2 -mfma"
#endif

namespace uv::kern {

template struct Kernels<Avx2F32x8>;

const KernelDispatch& GetAvx2Kernels() {
  static const KernelDispatch table = Kernels<Avx2F32x8>::Table("avx2");
  return table;
}

}  // namespace uv::kern
