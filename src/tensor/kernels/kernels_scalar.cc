// Portable-backend instantiation of the generic kernel bodies. Compiled
// with the project's baseline flags (no ISA extensions), so this TU is the
// fallback that must run anywhere the binary does.

#include "tensor/kernels/kernels_impl.h"

namespace uv::kern {

template struct Kernels<ScalarF32x8>;

const KernelDispatch& GetScalarKernels() {
  static const KernelDispatch table = Kernels<ScalarF32x8>::Table("scalar");
  return table;
}

}  // namespace uv::kern
