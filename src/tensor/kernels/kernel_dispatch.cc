#include "tensor/kernels/kernel_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/report.h"
#include "util/check.h"

namespace uv::kern {

// Backend tables, defined in their own TUs (the AVX2 one only exists when
// the toolchain could build it — UV_KERNELS_HAVE_AVX2 comes from
// src/tensor/CMakeLists.txt).
const KernelDispatch& GetScalarKernels();
#ifdef UV_KERNELS_HAVE_AVX2
const KernelDispatch& GetAvx2Kernels();
#endif

namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelDispatch* TableFor(Backend b) {
#ifdef UV_KERNELS_HAVE_AVX2
  if (b == Backend::kAvx2) return &GetAvx2Kernels();
#endif
  (void)b;
  return &GetScalarKernels();
}

// Resolved-once state. Plain atomics: Resolve() is idempotent, so a
// first-use race at worst resolves twice to the same answer.
std::atomic<const KernelDispatch*> g_active{nullptr};
std::atomic<int> g_backend{static_cast<int>(Backend::kScalar)};

Backend ResolveFromEnv() {
  const char* env = std::getenv("UV_SIMD");
  const bool avx2_ok = BackendAvailable(Backend::kAvx2);
  if (env == nullptr || std::strcmp(env, "auto") == 0 ||
      env[0] == '\0') {
    return avx2_ok ? Backend::kAvx2 : Backend::kScalar;
  }
  if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (avx2_ok) return Backend::kAvx2;
    std::fprintf(stderr,
                 "uv: UV_SIMD=avx2 requested but AVX2+FMA is unavailable "
                 "on this build/CPU; falling back to scalar kernels\n");
    return Backend::kScalar;
  }
  std::fprintf(stderr,
               "uv: unrecognized UV_SIMD=%s (expected auto|avx2|scalar); "
               "using auto\n",
               env);
  return avx2_ok ? Backend::kAvx2 : Backend::kScalar;
}

const KernelDispatch* ResolveAndPublish() {
  const Backend b = ResolveFromEnv();
  const KernelDispatch* table = TableFor(b);
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

// Stamps the active backend name into every perf-ledger env fingerprint
// without obs linking against the tensor layer: this object lives in the
// same TU as Active(), which every kernel call site references, so the
// registrar is always linked into any binary that computes.
struct SimdNameRegistrar {
  SimdNameRegistrar() { obs::RegisterSimdNameProvider(&ActiveName); }
} g_simd_name_registrar;

}  // namespace

bool BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#ifdef UV_KERNELS_HAVE_AVX2
      return CpuHasAvx2Fma();
#else
      return false;
#endif
  }
  return false;
}

const KernelDispatch& Active() {
  const KernelDispatch* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) table = ResolveAndPublish();
  return *table;
}

Backend ActiveBackend() {
  Active();  // Force resolution.
  return static_cast<Backend>(g_backend.load(std::memory_order_relaxed));
}

const char* ActiveName() { return Active().name; }

void SetActiveBackend(Backend b) {
  UV_CHECK(BackendAvailable(b));
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_active.store(TableFor(b), std::memory_order_release);
}

}  // namespace uv::kern
