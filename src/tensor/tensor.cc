#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uv {

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::RandomNormal(Rng* rng, float stddev) {
  for (auto& x : data_) x = static_cast<float>(rng->Gaussian(0.0, stddev));
}

void Tensor::RandomUniform(Rng* rng, float limit) {
  for (auto& x : data_) x = static_cast<float>(rng->Uniform(-limit, limit));
}

void Tensor::GlorotUniform(Rng* rng) {
  const double fan_sum = rows_ + cols_;
  const float limit =
      fan_sum > 0 ? static_cast<float>(std::sqrt(6.0 / fan_sum)) : 0.0f;
  RandomUniform(rng, limit);
}

bool Tensor::HasNonFinite() const {
  for (float x : data_) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

double Tensor::Norm() const {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (float x : data_) acc += x;
  return acc;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (float x : data_) m = std::max(m, std::fabs(x));
  return m;
}

std::string Tensor::ShapeString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Tensor(%dx%d)", rows_, cols_);
  return buf;
}

}  // namespace uv
