#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace uv {

void Tensor::Fill(float value) {
  std::fill(data_, data_ + size(), value);
}

void Tensor::RandomNormal(Rng* rng, float stddev) {
  for (int64_t i = 0; i < size(); ++i) {
    data_[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
  }
}

void Tensor::RandomUniform(Rng* rng, float limit) {
  for (int64_t i = 0; i < size(); ++i) {
    data_[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

void Tensor::GlorotUniform(Rng* rng) {
  const double fan_sum = rows_ + cols_;
  const float limit =
      fan_sum > 0 ? static_cast<float>(std::sqrt(6.0 / fan_sum)) : 0.0f;
  RandomUniform(rng, limit);
}

bool Tensor::HasNonFinite() const {
  for (int64_t i = 0; i < size(); ++i) {
    if (!std::isfinite(data_[i])) return true;
  }
  return false;
}

double Tensor::Norm() const {
  double acc = 0.0;
  for (int64_t i = 0; i < size(); ++i) {
    acc += static_cast<double>(data_[i]) * data_[i];
  }
  return std::sqrt(acc);
}

double Tensor::Sum() const {
  double acc = 0.0;
  for (int64_t i = 0; i < size(); ++i) acc += data_[i];
  return acc;
}

float Tensor::MaxAbs() const {
  float m = 0.0f;
  for (int64_t i = 0; i < size(); ++i) m = std::max(m, std::fabs(data_[i]));
  return m;
}

std::string Tensor::ShapeString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Tensor(%dx%d)", rows_, cols_);
  return buf;
}

}  // namespace uv
