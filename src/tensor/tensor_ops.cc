#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "tensor/kernels/kernel_dispatch.h"
#include "util/thread_pool.h"

namespace uv {
namespace {

using kern::kElementwiseGrain;
using kern::kElementwiseThreshold;

// In-place x *= s over a flat span, parallel above the threshold. The
// grain is a multiple of the vector width, so every chunk starts lane-
// aligned and the vector/tail split per element depends only on n.
void ScaleSpan(float* x, int64_t n, float s) {
  const kern::KernelDispatch& k = kern::Active();
  if (n >= kElementwiseThreshold) {
    ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      k.scale(x + lo, s, hi - lo);
    });
  } else {
    k.scale(x, s, n);
  }
}

// Row grain for kernels parallelized over matrix rows: aim for chunks of
// about one elementwise grain worth of elements.
int64_t RowGrain(int64_t cols) {
  return std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, cols));
}

}  // namespace

void GemmBiasAct(bool transpose_a, bool transpose_b, float alpha,
                 const Tensor& a, const Tensor& b, float beta, Tensor* c,
                 const Tensor* bias, kern::Activation act,
                 float leaky_slope) {
  const int m = transpose_a ? a.cols() : a.rows();
  const int k = transpose_a ? a.rows() : a.cols();
  const int kb = transpose_b ? b.cols() : b.rows();
  const int n = transpose_b ? b.rows() : b.cols();
  UV_CHECK_EQ(k, kb);
  UV_CHECK_EQ(c->rows(), m);
  UV_CHECK_EQ(c->cols(), n);
  if (bias != nullptr) {
    UV_CHECK_EQ(bias->rows(), 1);
    UV_CHECK_EQ(bias->cols(), n);
  }
  obs::SpanGuard span("gemm", obs::SpanLevel::kFine, "m", m, "n", n);

  if (beta == 0.0f) {
    c->Zero();
  } else if (beta != 1.0f) {
    ScaleSpan(c->data(), c->size(), beta);
  }

  kern::GemmArgs args;
  args.m = m;
  args.n = n;
  args.k = k;
  args.trans_a = transpose_a;
  args.trans_b = transpose_b;
  args.alpha = alpha;
  args.a = a.data();
  args.b = b.data();
  args.c = c->data();
  args.bias = bias != nullptr ? bias->data() : nullptr;
  args.act = act;
  args.leaky_slope = leaky_slope;
  kern::Active().gemm(args);
}

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  GemmBiasAct(transpose_a, transpose_b, alpha, a, b, beta, c, nullptr,
              kern::Activation::kNone, 0.0f);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  // Uninit: Gemm with beta == 0 zero-fills c itself before accumulating.
  Tensor c = Tensor::Uninit(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  UV_CHECK(x.SameShape(*y));
  float* yd = y->data();
  const float* xd = x.data();
  const kern::KernelDispatch& k = kern::Active();
  if (x.size() >= kElementwiseThreshold) {
    ParallelFor(0, x.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      k.axpy(alpha, xd + lo, yd + lo, hi - lo);
    });
    return;
  }
  k.axpy(alpha, xd, yd, x.size());
}

Tensor Add(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = a;
  Axpy(1.0f, b, &out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = a;
  Axpy(-1.0f, b, &out);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = Tensor::Uninit(a.rows(), a.cols());
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  const kern::KernelDispatch& k = kern::Active();
  if (a.size() >= kElementwiseThreshold) {
    ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      k.mul(ad + lo, bd + lo, od + lo, hi - lo);
    });
    return out;
  }
  k.mul(ad, bd, od, a.size());
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  ScaleSpan(out.data(), out.size(), s);
  return out;
}

void AddRowVectorInPlace(const Tensor& row_vec, Tensor* a) {
  UV_CHECK_EQ(row_vec.rows(), 1);
  UV_CHECK_EQ(row_vec.cols(), a->cols());
  const float* v = row_vec.data();
  float* ad = a->data();
  const int64_t cols = a->cols();
  const kern::KernelDispatch& k = kern::Active();
  if (a->size() >= kElementwiseThreshold && a->rows() > 1) {
    ParallelFor(0, a->rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      k.add_row_vector(v, ad + r0 * cols, r1 - r0, cols);
    });
    return;
  }
  k.add_row_vector(v, ad, a->rows(), cols);
}

void TransposeInto(const Tensor& a, Tensor* out) {
  UV_CHECK_EQ(out->rows(), a.cols());
  UV_CHECK_EQ(out->cols(), a.rows());
  const int acols = a.cols();
  const int arows = a.rows();
  float* od = out->data();
  auto rows = [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* arow = a.row(static_cast<int>(r));
      for (int c = 0; c < acols; ++c) {
        od[static_cast<size_t>(c) * arows + r] = arow[c];
      }
    }
  };
  if (a.size() >= kElementwiseThreshold && arows > 1) {
    ParallelFor(0, arows, RowGrain(acols), rows);
  } else {
    rows(0, arows);
  }
}

Tensor Transpose(const Tensor& a) {
  Tensor out = Tensor::Uninit(a.cols(), a.rows());
  TransposeInto(a, &out);
  return out;
}

Tensor RowSoftmax(const Tensor& a, float temperature) {
  UV_CHECK(temperature > 0.0f);
  Tensor out = Tensor::Uninit(a.rows(), a.cols());
  const float inv_temp = 1.0f / temperature;
  const float* in = a.data();
  float* o = out.data();
  const int64_t cols = a.cols();
  const kern::KernelDispatch& k = kern::Active();
  if (a.size() >= kElementwiseThreshold && a.rows() > 1) {
    ParallelFor(0, a.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      k.row_softmax(in + r0 * cols, o + r0 * cols, r1 - r0, cols, inv_temp);
    });
    return out;
  }
  k.row_softmax(in, o, a.rows(), cols, inv_temp);
  return out;
}

std::vector<int> RowArgmax(const Tensor& a) {
  std::vector<int> out(a.rows(), 0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r);
    int best = 0;
    for (int c = 1; c < a.cols(); ++c) {
      if (in[c] > in[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

Tensor RowL2Normalize(const Tensor& a) {
  Tensor out = a;
  float* od = out.data();
  const int64_t cols = out.cols();
  const kern::KernelDispatch& k = kern::Active();
  if (out.size() >= kElementwiseThreshold && out.rows() > 1) {
    ParallelFor(0, out.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      k.row_l2_normalize(od + r0 * cols, r1 - r0, cols);
    });
    return out;
  }
  k.row_l2_normalize(od, out.rows(), cols);
  return out;
}

Tensor ColumnMean(const Tensor& a) {
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  std::vector<double> acc(a.cols(), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.row(r);
    for (int c = 0; c < a.cols(); ++c) acc[c] += row[c];
  }
  for (int c = 0; c < a.cols(); ++c) {
    out.at(0, c) = static_cast<float>(acc[c] / a.rows());
  }
  return out;
}

Tensor ColumnStd(const Tensor& a, const Tensor& mean) {
  UV_CHECK_EQ(mean.rows(), 1);
  UV_CHECK_EQ(mean.cols(), a.cols());
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  std::vector<double> acc(a.cols(), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.row(r);
    for (int c = 0; c < a.cols(); ++c) {
      const double d = row[c] - mean.at(0, c);
      acc[c] += d * d;
    }
  }
  for (int c = 0; c < a.cols(); ++c) {
    out.at(0, c) = static_cast<float>(std::sqrt(acc[c] / a.rows()));
  }
  return out;
}

void StandardizeColumnsInPlace(Tensor* a) {
  const Tensor mean = ColumnMean(*a);
  const Tensor std = ColumnStd(*a, mean);
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->row(r);
    for (int c = 0; c < a->cols(); ++c) {
      const float s = std.at(0, c);
      row[c] = (row[c] - mean.at(0, c)) / (s > 1e-6f ? s : 1.0f);
    }
  }
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  UV_CHECK_EQ(a.rows(), b.rows());
  Tensor out = Tensor::Uninit(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    float* o = out.row(r);
    std::copy(a.row(r), a.row(r) + a.cols(), o);
    std::copy(b.row(r), b.row(r) + b.cols(), o + a.cols());
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int col_begin, int col_end) {
  UV_CHECK_GE(col_begin, 0);
  UV_CHECK_LE(col_end, a.cols());
  UV_CHECK_LE(col_begin, col_end);
  Tensor out = Tensor::Uninit(a.rows(), col_end - col_begin);
  for (int r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r) + col_begin, a.row(r) + col_end, out.row(r));
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  Tensor out = Tensor::Uninit(static_cast<int>(indices.size()), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    UV_CHECK_GE(src, 0);
    UV_CHECK_LT(src, a.rows());
    std::copy(a.row(src), a.row(src) + a.cols(),
              out.row(static_cast<int>(i)));
  }
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  const float* ad = a.data();
  const float* bd = b.data();
  const int64_t n = a.size();
  const kern::KernelDispatch& k = kern::Active();
  if (n >= kElementwiseThreshold) {
    // Per-chunk partial maxima land in slots indexed by chunk position;
    // max is exact and order-free, so the combine is trivially
    // deterministic.
    const int64_t num_chunks =
        (n + kElementwiseGrain - 1) / kElementwiseGrain;
    std::vector<float> partial(static_cast<size_t>(num_chunks), 0.0f);
    ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      partial[static_cast<size_t>(lo / kElementwiseGrain)] =
          k.max_abs_diff(ad + lo, bd + lo, hi - lo);
    });
    float m = 0.0f;
    for (const float p : partial) m = std::max(m, p);
    return m;
  }
  return k.max_abs_diff(ad, bd, n);
}

}  // namespace uv
