#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace uv {
namespace {

// Parallelization thresholds. Below these the dispatch overhead of waking
// the pool exceeds the work; the cutoffs only select serial-vs-parallel
// execution and never change per-element accumulation order, so results
// are bit-identical either way.
constexpr int64_t kGemmFlopThreshold = 1 << 16;
constexpr int64_t kElementwiseThreshold = 1 << 15;
constexpr int64_t kElementwiseGrain = 1 << 14;

// Cache blocking for the no-transpose kernel: the K dimension is tiled so
// a panel of B rows stays resident while a chunk of A/C rows streams over
// it. The k-accumulation order per output element (p ascending) is
// unchanged by the tiling.
constexpr int kGemmKc = 256;
constexpr int kGemmRowGrain = 32;

// C[i0:i1) += alpha * A[i0:i1) * B with A m x k, B k x n, all row-major.
void GemmNNRows(int i0, int i1, int k, int n, float alpha, const float* ad,
                const float* bd, float* cd) {
  for (int pc = 0; pc < k; pc += kGemmKc) {
    const int pe = std::min(k, pc + kGemmKc);
    for (int i = i0; i < i1; ++i) {
      const float* arow = ad + static_cast<size_t>(i) * k;
      float* crow = cd + static_cast<size_t>(i) * n;
      for (int p = pc; p < pe; ++p) {
        const float av = alpha * arow[p];
        const float* brow = bd + static_cast<size_t>(p) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

void Gemm(bool transpose_a, bool transpose_b, float alpha, const Tensor& a,
          const Tensor& b, float beta, Tensor* c) {
  const int m = transpose_a ? a.cols() : a.rows();
  const int k = transpose_a ? a.rows() : a.cols();
  const int kb = transpose_b ? b.cols() : b.rows();
  const int n = transpose_b ? b.rows() : b.cols();
  UV_CHECK_EQ(k, kb);
  UV_CHECK_EQ(c->rows(), m);
  UV_CHECK_EQ(c->cols(), n);
  obs::SpanGuard span("gemm", obs::SpanLevel::kFine, "m", m, "n", n);

  if (beta == 0.0f) {
    c->Zero();
  } else if (beta != 1.0f) {
    float* cd = c->data();
    for (int64_t i = 0; i < c->size(); ++i) cd[i] *= beta;
  }

  float* cd = c->data();
  const float* ad = a.data();
  const float* bd = b.data();
  const bool parallel =
      static_cast<int64_t>(m) * n * k >= kGemmFlopThreshold;
  if (!transpose_a && !transpose_b) {
    if (parallel) {
      ParallelFor(0, m, kGemmRowGrain, [&](int64_t i0, int64_t i1) {
        GemmNNRows(static_cast<int>(i0), static_cast<int>(i1), k, n, alpha,
                   ad, bd, cd);
      });
    } else {
      GemmNNRows(0, m, k, n, alpha, ad, bd, cd);
    }
  } else if (transpose_a && !transpose_b) {
    // A is k x m stored row-major; A^T(i,p) = A(p,i). Materializing the
    // contiguous transpose lets the blocked kernel stream A rows; the
    // per-element accumulation order (p ascending) matches the direct
    // strided walk exactly. The workspace persists per thread and is fully
    // overwritten before use, so recycling it is allocation-free and
    // deterministic.
    thread_local Tensor at;
    at.ResizeUninit(m, k);
    TransposeInto(a, &at);
    const float* atd = at.data();
    if (parallel) {
      ParallelFor(0, m, kGemmRowGrain, [&](int64_t i0, int64_t i1) {
        GemmNNRows(static_cast<int>(i0), static_cast<int>(i1), k, n, alpha,
                   atd, bd, cd);
      });
    } else {
      GemmNNRows(0, m, k, n, alpha, atd, bd, cd);
    }
  } else if (!transpose_a && transpose_b) {
    // B is n x k stored row-major; B^T(p,j) = B(j,p): dot products over
    // two contiguous rows — already vector-friendly, parallel over rows.
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = ad + static_cast<size_t>(i) * k;
        float* crow = cd + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) {
          const float* brow = bd + static_cast<size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += alpha * acc;
        }
      }
    };
    if (parallel) {
      ParallelFor(0, m, kGemmRowGrain, rows);
    } else {
      rows(0, m);
    }
  } else {
    for (int i = 0; i < m; ++i) {
      float* crow = cd + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a.at(p, i) * b.at(j, p);
        crow[j] += alpha * acc;
      }
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  // Uninit: Gemm with beta == 0 zero-fills c itself before accumulating.
  Tensor c = Tensor::Uninit(a.rows(), b.cols());
  Gemm(false, false, 1.0f, a, b, 0.0f, &c);
  return c;
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  UV_CHECK(x.SameShape(*y));
  float* yd = y->data();
  const float* xd = x.data();
  if (x.size() >= kElementwiseThreshold) {
    ParallelFor(0, x.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) yd[i] += alpha * xd[i];
    });
    return;
  }
  for (int64_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

Tensor Add(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = a;
  Axpy(1.0f, b, &out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = a;
  Axpy(-1.0f, b, &out);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  Tensor out = Tensor::Uninit(a.rows(), a.cols());
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  if (a.size() >= kElementwiseThreshold) {
    ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) od[i] = ad[i] * bd[i];
    });
    return out;
  }
  for (int64_t i = 0; i < a.size(); ++i) od[i] = ad[i] * bd[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  float* od = out.data();
  if (out.size() >= kElementwiseThreshold) {
    ParallelFor(0, out.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) od[i] *= s;
    });
    return out;
  }
  for (int64_t i = 0; i < out.size(); ++i) od[i] *= s;
  return out;
}

void AddRowVectorInPlace(const Tensor& row_vec, Tensor* a) {
  UV_CHECK_EQ(row_vec.rows(), 1);
  UV_CHECK_EQ(row_vec.cols(), a->cols());
  const float* v = row_vec.data();
  for (int r = 0; r < a->rows(); ++r) {
    float* arow = a->row(r);
    for (int c = 0; c < a->cols(); ++c) arow[c] += v[c];
  }
}

void TransposeInto(const Tensor& a, Tensor* out) {
  UV_CHECK_EQ(out->rows(), a.cols());
  UV_CHECK_EQ(out->cols(), a.rows());
  const int acols = a.cols();
  const int arows = a.rows();
  float* od = out->data();
  auto rows = [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* arow = a.row(static_cast<int>(r));
      for (int c = 0; c < acols; ++c) {
        od[static_cast<size_t>(c) * arows + r] = arow[c];
      }
    }
  };
  if (a.size() >= kElementwiseThreshold && arows > 1) {
    const int64_t grain =
        std::max<int64_t>(1, kElementwiseGrain / std::max(1, acols));
    ParallelFor(0, arows, grain, rows);
  } else {
    rows(0, arows);
  }
}

Tensor Transpose(const Tensor& a) {
  Tensor out = Tensor::Uninit(a.cols(), a.rows());
  TransposeInto(a, &out);
  return out;
}

Tensor RowSoftmax(const Tensor& a, float temperature) {
  UV_CHECK(temperature > 0.0f);
  Tensor out = Tensor::Uninit(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r);
    float* o = out.row(r);
    float mx = -1e30f;
    for (int c = 0; c < a.cols(); ++c) mx = std::max(mx, in[c] / temperature);
    double total = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      o[c] = std::exp(in[c] / temperature - mx);
      total += o[c];
    }
    const float inv = total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
    for (int c = 0; c < a.cols(); ++c) o[c] *= inv;
  }
  return out;
}

std::vector<int> RowArgmax(const Tensor& a) {
  std::vector<int> out(a.rows(), 0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* in = a.row(r);
    int best = 0;
    for (int c = 1; c < a.cols(); ++c) {
      if (in[c] > in[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

Tensor RowL2Normalize(const Tensor& a) {
  Tensor out = a;
  for (int r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    double norm = 0.0;
    for (int c = 0; c < out.cols(); ++c) norm += static_cast<double>(row[c]) * row[c];
    norm = std::sqrt(norm);
    if (norm < 1e-12) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (int c = 0; c < out.cols(); ++c) row[c] *= inv;
  }
  return out;
}

Tensor ColumnMean(const Tensor& a) {
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  std::vector<double> acc(a.cols(), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.row(r);
    for (int c = 0; c < a.cols(); ++c) acc[c] += row[c];
  }
  for (int c = 0; c < a.cols(); ++c) {
    out.at(0, c) = static_cast<float>(acc[c] / a.rows());
  }
  return out;
}

Tensor ColumnStd(const Tensor& a, const Tensor& mean) {
  UV_CHECK_EQ(mean.rows(), 1);
  UV_CHECK_EQ(mean.cols(), a.cols());
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  std::vector<double> acc(a.cols(), 0.0);
  for (int r = 0; r < a.rows(); ++r) {
    const float* row = a.row(r);
    for (int c = 0; c < a.cols(); ++c) {
      const double d = row[c] - mean.at(0, c);
      acc[c] += d * d;
    }
  }
  for (int c = 0; c < a.cols(); ++c) {
    out.at(0, c) = static_cast<float>(std::sqrt(acc[c] / a.rows()));
  }
  return out;
}

void StandardizeColumnsInPlace(Tensor* a) {
  const Tensor mean = ColumnMean(*a);
  const Tensor std = ColumnStd(*a, mean);
  for (int r = 0; r < a->rows(); ++r) {
    float* row = a->row(r);
    for (int c = 0; c < a->cols(); ++c) {
      const float s = std.at(0, c);
      row[c] = (row[c] - mean.at(0, c)) / (s > 1e-6f ? s : 1.0f);
    }
  }
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  UV_CHECK_EQ(a.rows(), b.rows());
  Tensor out = Tensor::Uninit(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    float* o = out.row(r);
    std::copy(a.row(r), a.row(r) + a.cols(), o);
    std::copy(b.row(r), b.row(r) + b.cols(), o + a.cols());
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int col_begin, int col_end) {
  UV_CHECK_GE(col_begin, 0);
  UV_CHECK_LE(col_end, a.cols());
  UV_CHECK_LE(col_begin, col_end);
  Tensor out = Tensor::Uninit(a.rows(), col_end - col_begin);
  for (int r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r) + col_begin, a.row(r) + col_end, out.row(r));
  }
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  Tensor out = Tensor::Uninit(static_cast<int>(indices.size()), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    UV_CHECK_GE(src, 0);
    UV_CHECK_LT(src, a.rows());
    std::copy(a.row(src), a.row(src) + a.cols(),
              out.row(static_cast<int>(i)));
  }
  return out;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  UV_CHECK(a.SameShape(b));
  float m = 0.0f;
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(ad[i] - bd[i]));
  }
  return m;
}

}  // namespace uv
