#ifndef UV_TENSOR_FORWARD_OPS_H_
#define UV_TENSOR_FORWARD_OPS_H_

// Raw forward-only kernels shared by the autograd ops (src/autograd) and
// the grad-free inference engine (src/infer). Bit-identical serving depends
// on both callers evaluating the exact same scalar formulas in the exact
// same accumulation order, so this header is the single source of truth:
// the autograd ops call these for their forward values and keep only the
// backward logic local. Every parallel loop here chunks by a fixed grain,
// never by thread count, so results are identical for every UV_THREADS.

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace uv {

// Segments (CSR rows) per parallel chunk in the segment kernels below.
inline constexpr int64_t kSegmentGrain = 64;

// Scalar activation formulas. The sigmoid is the numerically stable
// two-branch form: exp is never evaluated on a positive argument.
inline float ReluScalar(float x) { return x > 0.0f ? x : 0.0f; }
inline float LeakyReluScalar(float x, float negative_slope) {
  return x > 0.0f ? x : negative_slope * x;
}
inline float SigmoidScalar(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

void ReluInPlace(Tensor* t);
void LeakyReluInPlace(float negative_slope, Tensor* t);
void SigmoidInPlace(Tensor* t);

// Per-segment softmax over a column of scores (E x 1). `offsets` is a CSR
// row pointer of size num_segments + 1 tiling [0, E) exactly; empty
// segments are skipped. Resizes `out` to E x 1.
void SegmentSoftmaxInto(const Tensor& scores, const std::vector<int>& offsets,
                        Tensor* out);

// out[i] = sum over edges e of segment i of alpha[e] * feats.row(e).
// Resizes `out` to num_segments x feats.cols() and zero-fills it first, so
// the accumulation order matches the zero-initialized serial walk.
void SegmentWeightedSumInto(const Tensor& alpha, const Tensor& feats,
                            const std::vector<int>& offsets, Tensor* out);

// Inverse of a scatter map: for each destination row, the ascending list
// of source rows that write to it. Lets scatter-sums run partitioned by
// destination (race-free) while keeping the per-destination accumulation
// order identical to the serial ascending-source walk. Negative ids are
// dropped (unassigned rows).
struct SegmentDestIndex {
  std::vector<int> offsets;  // num_destinations + 1
  std::vector<int> sources;  // ascending within each destination
};

SegmentDestIndex BuildSegmentDestIndex(const std::vector<int>& dest_of_source,
                                       int num_destinations);

// out[k] = sum of x rows whose destination is k (ascending source order).
// Resizes `out` to dest.num_destinations x x.cols() and zero-fills it.
void SegmentSumInto(const Tensor& x, const SegmentDestIndex& dest,
                    Tensor* out);

// Row/column broadcast products (forward halves of ag::MulColBroadcast and
// ag::MulRowVector). `scale` is rows x 1; `v` is 1 x cols.
void MulColBroadcastInPlace(const Tensor& scale, Tensor* x);
void MulRowVectorInPlace(const Tensor& v, Tensor* x);

// Dynamic-filtered gated MLP (the slave classifier): per-row elementwise
// filter over a 2-layer ReLU MLP's weights. Filter layout per row:
// [w1 (d_in*d_hidden) | b1 (d_hidden) | w2 (d_hidden) | b2 (1)].
int GatedMlpFilterSize(int d_in, int d_hidden);

// Writes logits (n x 1) into `out`; if `hidden` is non-null, also writes
// the post-ReLU hidden activations (n x d_hidden) for the backward pass.
void GatedMlpForward(const Tensor& x, const Tensor& filter, const Tensor& w1,
                     const Tensor& b1, const Tensor& w2, const Tensor& b2,
                     Tensor* out, Tensor* hidden);

}  // namespace uv

#endif  // UV_TENSOR_FORWARD_OPS_H_
