#include "io/urg_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace uv::io {
namespace {

constexpr char kMagic[4] = {'U', 'V', 'G', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteI32(std::FILE* f, int32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteI64(std::FILE* f, int64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool WriteF64(std::FILE* f, double v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadI32(std::FILE* f, int32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadI64(std::FILE* f, int64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
bool ReadF64(std::FILE* f, double* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool WriteIntVector(std::FILE* f, const std::vector<int>& v) {
  if (!WriteI64(f, static_cast<int64_t>(v.size()))) return false;
  return v.empty() ||
         std::fwrite(v.data(), sizeof(int), v.size(), f) == v.size();
}

bool ReadIntVector(std::FILE* f, std::vector<int>* v) {
  int64_t n = 0;
  if (!ReadI64(f, &n) || n < 0) return false;
  v->resize(n);
  return n == 0 ||
         std::fread(v->data(), sizeof(int), v->size(), f) == v->size();
}

bool WriteTensor(std::FILE* f, const Tensor& t) {
  if (!WriteI32(f, t.rows()) || !WriteI32(f, t.cols())) return false;
  const size_t n = static_cast<size_t>(t.size());
  return n == 0 || std::fwrite(t.data(), sizeof(float), n, f) == n;
}

bool ReadTensor(std::FILE* f, Tensor* t) {
  int32_t rows = 0, cols = 0;
  if (!ReadI32(f, &rows) || !ReadI32(f, &cols) || rows < 0 || cols < 0) {
    return false;
  }
  *t = Tensor(rows, cols);
  const size_t n = static_cast<size_t>(t->size());
  return n == 0 || std::fread(t->data(), sizeof(float), n, f) == n;
}

}  // namespace

Status SaveUrg(const std::string& path, const urg::UrbanRegionGraph& urg) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::FILE* fp = f.get();

  bool ok = std::fwrite(kMagic, 1, 4, fp) == 4;
  // City metadata.
  ok = ok && WriteI32(fp, static_cast<int32_t>(urg.city_name.size()));
  ok = ok && (urg.city_name.empty() ||
              std::fwrite(urg.city_name.data(), 1, urg.city_name.size(),
                          fp) == urg.city_name.size());
  ok = ok && WriteI32(fp, urg.grid.height) && WriteI32(fp, urg.grid.width) &&
       WriteF64(fp, urg.grid.cell_meters);
  // Adjacency (CSR by destination).
  ok = ok && WriteIntVector(fp, *urg.adjacency.offsets());
  ok = ok && WriteIntVector(fp, *urg.adjacency.neighbors());
  // Features.
  ok = ok && WriteTensor(fp, urg.poi_features);
  ok = ok && WriteTensor(fp, urg.image_features);
  // Labels + ground truth.
  ok = ok && WriteIntVector(fp, urg.labels);
  std::vector<int> is_uv(urg.is_uv.begin(), urg.is_uv.end());
  ok = ok && WriteIntVector(fp, is_uv);
  // Edge statistics.
  ok = ok && WriteI64(fp, urg.num_spatial_edges) &&
       WriteI64(fp, urg.num_road_edges) && WriteI64(fp, urg.num_edges);
  // Raw tiles (optional).
  ok = ok && WriteI32(fp, urg.image_size);
  ok = ok && WriteI32(fp, urg.images != nullptr ? 1 : 0);
  if (urg.images != nullptr) ok = ok && WriteTensor(fp, *urg.images);
  return ok ? Status::Ok() : Status::IoError("write failed: " + path);
}

StatusOr<urg::UrbanRegionGraph> LoadUrg(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  std::FILE* fp = f.get();

  char magic[4];
  if (std::fread(magic, 1, 4, fp) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  urg::UrbanRegionGraph urg;
  int32_t name_len = 0;
  if (!ReadI32(fp, &name_len) || name_len < 0 || name_len > 4096) {
    return Status::IoError("bad header in " + path);
  }
  urg.city_name.resize(name_len);
  if (name_len > 0 && std::fread(urg.city_name.data(), 1, name_len, fp) !=
                          static_cast<size_t>(name_len)) {
    return Status::IoError("truncated header in " + path);
  }
  if (!ReadI32(fp, &urg.grid.height) || !ReadI32(fp, &urg.grid.width) ||
      !ReadF64(fp, &urg.grid.cell_meters)) {
    return Status::IoError("truncated grid in " + path);
  }

  std::vector<int> offsets, neighbors;
  if (!ReadIntVector(fp, &offsets) || !ReadIntVector(fp, &neighbors)) {
    return Status::IoError("truncated adjacency in " + path);
  }
  const int n = urg.grid.num_regions();
  if (static_cast<int>(offsets.size()) != n + 1 ||
      (offsets.empty() ? 0 : offsets.back()) !=
          static_cast<int>(neighbors.size())) {
    return Status::InvalidArgument("inconsistent adjacency in " + path);
  }
  // Rebuild the CSR graph through its public constructor path.
  std::vector<graph::Edge> edges;
  edges.reserve(neighbors.size());
  for (int dst = 0; dst < n; ++dst) {
    for (int e = offsets[dst]; e < offsets[dst + 1]; ++e) {
      edges.emplace_back(neighbors[e], dst);
    }
  }
  urg.adjacency = graph::CsrGraph::FromEdges(n, edges, /*symmetrize=*/false,
                                             /*add_self_loops=*/false);

  std::vector<int> is_uv;
  bool ok = ReadTensor(fp, &urg.poi_features) &&
            ReadTensor(fp, &urg.image_features) &&
            ReadIntVector(fp, &urg.labels) && ReadIntVector(fp, &is_uv);
  urg.is_uv.assign(is_uv.begin(), is_uv.end());
  ok = ok && ReadI64(fp, &urg.num_spatial_edges) &&
       ReadI64(fp, &urg.num_road_edges) && ReadI64(fp, &urg.num_edges);
  int32_t image_size = 0, has_images = 0;
  ok = ok && ReadI32(fp, &image_size) && ReadI32(fp, &has_images);
  urg.image_size = image_size;
  if (ok && has_images == 1) {
    auto images = std::make_shared<Tensor>();
    ok = ReadTensor(fp, images.get());
    urg.images = std::move(images);
  }
  if (!ok) return Status::IoError("truncated payload in " + path);
  if (urg.poi_features.rows() != n ||
      static_cast<int>(urg.labels.size()) != n) {
    return Status::InvalidArgument("inconsistent payload in " + path);
  }
  return urg;
}

}  // namespace uv::io
