#include "io/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "io/serialize.h"
#include "urg/urban_region_graph.h"

namespace uv::io {
namespace {

constexpr char kMagic[4] = {'U', 'V', 'C', 'K'};
// Names and config blobs are small; a multi-megabyte length is a corrupt
// header, not a real checkpoint.
constexpr int32_t kMaxBlobBytes = 1 << 20;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

void HashBytes(const void* data, size_t n, uint64_t* h) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;  // FNV-1a 64-bit prime.
  }
}

bool WriteFingerprint(std::FILE* f, const UrgFingerprint& fp) {
  return WritePod(f, fp.grid_height) && WritePod(f, fp.grid_width) &&
         WritePod(f, fp.cell_meters) && WritePod(f, fp.num_regions) &&
         WritePod(f, fp.num_spatial_edges) &&
         WritePod(f, fp.num_road_edges) && WritePod(f, fp.num_edges);
}

bool ReadFingerprint(std::FILE* f, UrgFingerprint* fp) {
  return ReadPod(f, &fp->grid_height) && ReadPod(f, &fp->grid_width) &&
         ReadPod(f, &fp->cell_meters) && ReadPod(f, &fp->num_regions) &&
         ReadPod(f, &fp->num_spatial_edges) &&
         ReadPod(f, &fp->num_road_edges) && ReadPod(f, &fp->num_edges);
}

}  // namespace

UrgFingerprint UrgFingerprint::FromUrg(const urg::UrbanRegionGraph& urg) {
  UrgFingerprint fp;
  fp.grid_height = urg.grid.height;
  fp.grid_width = urg.grid.width;
  fp.cell_meters = urg.grid.cell_meters;
  fp.num_regions = urg.num_regions();
  fp.num_spatial_edges = urg.num_spatial_edges;
  fp.num_road_edges = urg.num_road_edges;
  fp.num_edges = urg.num_edges;
  return fp;
}

uint64_t UrgFingerprint::Hash() const {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis.
  HashBytes(&grid_height, sizeof(grid_height), &h);
  HashBytes(&grid_width, sizeof(grid_width), &h);
  HashBytes(&cell_meters, sizeof(cell_meters), &h);
  HashBytes(&num_regions, sizeof(num_regions), &h);
  HashBytes(&num_spatial_edges, sizeof(num_spatial_edges), &h);
  HashBytes(&num_road_edges, sizeof(num_road_edges), &h);
  HashBytes(&num_edges, sizeof(num_edges), &h);
  return h;
}

bool UrgFingerprint::Matches(const UrgFingerprint& other) const {
  return grid_height == other.grid_height &&
         grid_width == other.grid_width &&
         cell_meters == other.cell_meters &&
         num_regions == other.num_regions &&
         num_spatial_edges == other.num_spatial_edges &&
         num_road_edges == other.num_road_edges &&
         num_edges == other.num_edges;
}

std::string UrgFingerprint::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%dx%d@%.1fm, %lld regions, %lld/%lld/%lld edges",
                grid_height, grid_width, cell_meters,
                static_cast<long long>(num_regions),
                static_cast<long long>(num_spatial_edges),
                static_cast<long long>(num_road_edges),
                static_cast<long long>(num_edges));
  return buf;
}

Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint) {
  // The writer only knows how to produce the current schema; refusing here
  // keeps a stale in-memory version field from minting files no loader
  // accepts.
  if (checkpoint.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(checkpoint.version));
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  const auto io_error = [&path] {
    return Status::IoError("write failed: " + path);
  };
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return io_error();
  if (!WritePod(f.get(), checkpoint.version)) return io_error();
  const int32_t name_len = static_cast<int32_t>(checkpoint.model_name.size());
  if (!WritePod(f.get(), name_len)) return io_error();
  if (name_len > 0 &&
      std::fwrite(checkpoint.model_name.data(), 1, name_len, f.get()) !=
          static_cast<size_t>(name_len)) {
    return io_error();
  }
  const int32_t config_len = static_cast<int32_t>(checkpoint.config.size());
  if (!WritePod(f.get(), config_len)) return io_error();
  if (config_len > 0 &&
      std::fwrite(checkpoint.config.data(), 1, config_len, f.get()) !=
          static_cast<size_t>(config_len)) {
    return io_error();
  }
  if (!WriteFingerprint(f.get(), checkpoint.fingerprint)) return io_error();
  if (!WritePod(f.get(), checkpoint.fingerprint.Hash())) return io_error();
  return WriteTensorList(f.get(), path, checkpoint.tensors);
}

StatusOr<Checkpoint> LoadCheckpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("not a UVCK checkpoint: " + path);
  }
  Checkpoint ck;
  if (!ReadPod(f.get(), &ck.version)) {
    return Status::IoError("truncated checkpoint header in " + path);
  }
  if (ck.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " + std::to_string(ck.version) +
        " in " + path + " (loader supports version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  int32_t name_len = 0;
  if (!ReadPod(f.get(), &name_len) || name_len < 0 ||
      name_len > kMaxBlobBytes) {
    return Status::IoError("bad model name length in " + path);
  }
  ck.model_name.resize(name_len);
  if (name_len > 0 &&
      std::fread(ck.model_name.data(), 1, name_len, f.get()) !=
          static_cast<size_t>(name_len)) {
    return Status::IoError("truncated checkpoint header in " + path);
  }
  int32_t config_len = 0;
  if (!ReadPod(f.get(), &config_len) || config_len < 0 ||
      config_len > kMaxBlobBytes) {
    return Status::IoError("bad config blob length in " + path);
  }
  ck.config.resize(config_len);
  if (config_len > 0 &&
      std::fread(ck.config.data(), 1, config_len, f.get()) !=
          static_cast<size_t>(config_len)) {
    return Status::IoError("truncated checkpoint header in " + path);
  }
  uint64_t stored_hash = 0;
  if (!ReadFingerprint(f.get(), &ck.fingerprint) ||
      !ReadPod(f.get(), &stored_hash)) {
    return Status::IoError("truncated checkpoint header in " + path);
  }
  if (stored_hash != ck.fingerprint.Hash()) {
    return Status::IoError("corrupt fingerprint in " + path);
  }
  auto tensors = ReadTensorList(f.get(), path);
  if (!tensors.ok()) return tensors.status();
  ck.tensors = std::move(tensors.value());
  // The tensor list must end the file exactly.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1) {
    return Status::IoError("trailing bytes after tensor list in " + path);
  }
  return ck;
}

Status ValidateCheckpoint(const Checkpoint& checkpoint,
                          const std::string& model_name,
                          const UrgFingerprint& fingerprint) {
  if (checkpoint.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(checkpoint.version));
  }
  if (checkpoint.model_name != model_name) {
    return Status::InvalidArgument("checkpoint is for model '" +
                                   checkpoint.model_name +
                                   "', expected '" + model_name + "'");
  }
  if (!checkpoint.fingerprint.Matches(fingerprint)) {
    return Status::InvalidArgument(
        "checkpoint URG fingerprint mismatch: checkpoint was trained on [" +
        checkpoint.fingerprint.ToString() + "], serving graph is [" +
        fingerprint.ToString() + "]");
  }
  return Status::Ok();
}

}  // namespace uv::io
