#include "io/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "io/serialize.h"
#include "urg/urban_region_graph.h"

namespace uv::io {
namespace {

constexpr char kMagic[4] = {'U', 'V', 'C', 'K'};
// Names and config blobs are small; a multi-megabyte length is a corrupt
// header, not a real checkpoint.
constexpr int32_t kMaxBlobBytes = 1 << 20;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

void HashBytes(const void* data, size_t n, uint64_t* h) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;  // FNV-1a 64-bit prime.
  }
}

// Byte offset of the current read/write position, for error messages. A
// failed fread leaves the position at the point the stream ran dry, so
// reporting ftell at detection time names where the file went bad.
std::string AtOffset(std::FILE* f, const std::string& path) {
  const long off = std::ftell(f);
  return " at byte offset " + std::to_string(off >= 0 ? off : 0) + " in " +
         path;
}

bool WriteFingerprint(std::FILE* f, const UrgFingerprint& fp) {
  return WritePod(f, fp.grid_height) && WritePod(f, fp.grid_width) &&
         WritePod(f, fp.cell_meters) && WritePod(f, fp.num_regions) &&
         WritePod(f, fp.num_spatial_edges) &&
         WritePod(f, fp.num_road_edges) && WritePod(f, fp.num_edges);
}

bool ReadFingerprint(std::FILE* f, UrgFingerprint* fp) {
  return ReadPod(f, &fp->grid_height) && ReadPod(f, &fp->grid_width) &&
         ReadPod(f, &fp->cell_meters) && ReadPod(f, &fp->num_regions) &&
         ReadPod(f, &fp->num_spatial_edges) &&
         ReadPod(f, &fp->num_road_edges) && ReadPod(f, &fp->num_edges);
}

// ---------------------------------------------------------------------------
// Quality-baseline section (v2). Serialized into a byte buffer first so the
// section carries its own length and FNV-1a hash: a flipped bit inside the
// baseline is caught at load instead of silently skewing drift detection.
// ---------------------------------------------------------------------------

template <typename T>
void AppendPod(std::vector<uint8_t>* buf, const T& value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  buf->insert(buf->end(), p, p + sizeof(T));
}

template <typename T>
bool TakePod(const uint8_t** p, const uint8_t* end, T* value) {
  if (static_cast<size_t>(end - *p) < sizeof(T)) return false;
  std::memcpy(value, *p, sizeof(T));
  *p += sizeof(T);
  return true;
}

// A baseline is persisted when it carries any signal; a column-less
// baseline with only score/calibration counts still round-trips.
bool BaselinePresent(const obs::QualityBaseline& b) {
  if (!b.columns.empty()) return true;
  for (const uint64_t c : b.score_counts) {
    if (c != 0) return true;
  }
  for (const uint64_t c : b.calib_count) {
    if (c != 0) return true;
  }
  return false;
}

std::vector<uint8_t> EncodeBaseline(const obs::QualityBaseline& b) {
  std::vector<uint8_t> buf;
  AppendPod(&buf, static_cast<int32_t>(b.columns.size()));
  // Bin-geometry echo: a loader built with different sketch constants must
  // refuse rather than misinterpret the counts.
  AppendPod(&buf, static_cast<int32_t>(obs::QualityBaseline::kFeatureBins));
  AppendPod(&buf, static_cast<int32_t>(obs::QualityBaseline::kScoreBins));
  AppendPod(&buf, static_cast<int32_t>(obs::QualityBaseline::kCalibBins));
  for (const obs::QualityBaseline::Column& col : b.columns) {
    for (const float e : col.edges) AppendPod(&buf, e);
    for (const uint64_t c : col.counts) AppendPod(&buf, c);
    AppendPod(&buf, col.mean);
    AppendPod(&buf, col.stdev);
  }
  for (const uint64_t c : b.score_counts) AppendPod(&buf, c);
  for (const uint64_t c : b.calib_count) AppendPod(&buf, c);
  for (const double s : b.calib_score_sum) AppendPod(&buf, s);
  for (const uint64_t c : b.calib_pos) AppendPod(&buf, c);
  return buf;
}

Status DecodeBaseline(const std::vector<uint8_t>& buf,
                      const std::string& path,
                      obs::QualityBaseline* out) {
  const uint8_t* p = buf.data();
  const uint8_t* end = buf.data() + buf.size();
  const auto truncated = [&path] {
    return Status::IoError("truncated quality baseline section in " + path);
  };
  int32_t columns = 0, feature_bins = 0, score_bins = 0, calib_bins = 0;
  if (!TakePod(&p, end, &columns) || !TakePod(&p, end, &feature_bins) ||
      !TakePod(&p, end, &score_bins) || !TakePod(&p, end, &calib_bins)) {
    return truncated();
  }
  if (feature_bins != obs::QualityBaseline::kFeatureBins ||
      score_bins != obs::QualityBaseline::kScoreBins ||
      calib_bins != obs::QualityBaseline::kCalibBins) {
    return Status::InvalidArgument(
        "quality baseline bin geometry mismatch in " + path + ": file has " +
        std::to_string(feature_bins) + "/" + std::to_string(score_bins) +
        "/" + std::to_string(calib_bins) +
        " feature/score/calibration bins, this build expects " +
        std::to_string(obs::QualityBaseline::kFeatureBins) + "/" +
        std::to_string(obs::QualityBaseline::kScoreBins) + "/" +
        std::to_string(obs::QualityBaseline::kCalibBins));
  }
  if (columns < 0 || columns > kMaxBlobBytes) {
    return Status::IoError("bad quality baseline column count in " + path);
  }
  out->columns.resize(static_cast<size_t>(columns));
  for (obs::QualityBaseline::Column& col : out->columns) {
    for (float& e : col.edges) {
      if (!TakePod(&p, end, &e)) return truncated();
    }
    for (uint64_t& c : col.counts) {
      if (!TakePod(&p, end, &c)) return truncated();
    }
    if (!TakePod(&p, end, &col.mean) || !TakePod(&p, end, &col.stdev)) {
      return truncated();
    }
  }
  for (uint64_t& c : out->score_counts) {
    if (!TakePod(&p, end, &c)) return truncated();
  }
  for (uint64_t& c : out->calib_count) {
    if (!TakePod(&p, end, &c)) return truncated();
  }
  for (double& s : out->calib_score_sum) {
    if (!TakePod(&p, end, &s)) return truncated();
  }
  for (uint64_t& c : out->calib_pos) {
    if (!TakePod(&p, end, &c)) return truncated();
  }
  if (p != end) {
    return Status::IoError("trailing bytes in quality baseline section in " +
                           path);
  }
  return Status::Ok();
}

uint64_t HashBlob(const std::vector<uint8_t>& buf) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis.
  HashBytes(buf.data(), buf.size(), &h);
  return h;
}

}  // namespace

UrgFingerprint UrgFingerprint::FromUrg(const urg::UrbanRegionGraph& urg) {
  UrgFingerprint fp;
  fp.grid_height = urg.grid.height;
  fp.grid_width = urg.grid.width;
  fp.cell_meters = urg.grid.cell_meters;
  fp.num_regions = urg.num_regions();
  fp.num_spatial_edges = urg.num_spatial_edges;
  fp.num_road_edges = urg.num_road_edges;
  fp.num_edges = urg.num_edges;
  return fp;
}

uint64_t UrgFingerprint::Hash() const {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis.
  HashBytes(&grid_height, sizeof(grid_height), &h);
  HashBytes(&grid_width, sizeof(grid_width), &h);
  HashBytes(&cell_meters, sizeof(cell_meters), &h);
  HashBytes(&num_regions, sizeof(num_regions), &h);
  HashBytes(&num_spatial_edges, sizeof(num_spatial_edges), &h);
  HashBytes(&num_road_edges, sizeof(num_road_edges), &h);
  HashBytes(&num_edges, sizeof(num_edges), &h);
  return h;
}

bool UrgFingerprint::Matches(const UrgFingerprint& other) const {
  return grid_height == other.grid_height &&
         grid_width == other.grid_width &&
         cell_meters == other.cell_meters &&
         num_regions == other.num_regions &&
         num_spatial_edges == other.num_spatial_edges &&
         num_road_edges == other.num_road_edges &&
         num_edges == other.num_edges;
}

std::string UrgFingerprint::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%dx%d@%.1fm, %lld regions, %lld/%lld/%lld edges",
                grid_height, grid_width, cell_meters,
                static_cast<long long>(num_regions),
                static_cast<long long>(num_spatial_edges),
                static_cast<long long>(num_road_edges),
                static_cast<long long>(num_edges));
  return buf;
}

Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint) {
  // The writer only knows how to produce the current schema; refusing here
  // keeps a stale in-memory version field from minting files no loader
  // accepts.
  if (checkpoint.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(checkpoint.version));
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  const auto io_error = [&path] {
    return Status::IoError("write failed: " + path);
  };
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return io_error();
  if (!WritePod(f.get(), checkpoint.version)) return io_error();
  const int32_t name_len = static_cast<int32_t>(checkpoint.model_name.size());
  if (!WritePod(f.get(), name_len)) return io_error();
  if (name_len > 0 &&
      std::fwrite(checkpoint.model_name.data(), 1, name_len, f.get()) !=
          static_cast<size_t>(name_len)) {
    return io_error();
  }
  const int32_t config_len = static_cast<int32_t>(checkpoint.config.size());
  if (!WritePod(f.get(), config_len)) return io_error();
  if (config_len > 0 &&
      std::fwrite(checkpoint.config.data(), 1, config_len, f.get()) !=
          static_cast<size_t>(config_len)) {
    return io_error();
  }
  if (!WriteFingerprint(f.get(), checkpoint.fingerprint)) return io_error();
  if (!WritePod(f.get(), checkpoint.fingerprint.Hash())) return io_error();
  const uint8_t has_baseline = BaselinePresent(checkpoint.baseline) ? 1 : 0;
  if (!WritePod(f.get(), has_baseline)) return io_error();
  if (has_baseline != 0) {
    const std::vector<uint8_t> blob = EncodeBaseline(checkpoint.baseline);
    const int32_t blob_len = static_cast<int32_t>(blob.size());
    if (!WritePod(f.get(), blob_len)) return io_error();
    if (std::fwrite(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
      return io_error();
    }
    if (!WritePod(f.get(), HashBlob(blob))) return io_error();
  }
  return WriteTensorList(f.get(), path, checkpoint.tensors);
}

StatusOr<Checkpoint> LoadCheckpoint(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("not a UVCK checkpoint: " + path);
  }
  Checkpoint ck;
  if (!ReadPod(f.get(), &ck.version)) {
    return Status::IoError("truncated checkpoint header" +
                           AtOffset(f.get(), path));
  }
  if (ck.version != kCheckpointVersion) {
    // Found-vs-expected and the field's offset, plus the remedy: v1 files
    // predate the embedded quality baseline and must be re-saved, not
    // loaded blind.
    return Status::InvalidArgument(
        "checkpoint schema version " + std::to_string(ck.version) +
        " found, this loader expects version " +
        std::to_string(kCheckpointVersion) + " (at byte offset 4 in " +
        path + "); re-save the model with the current build to embed the " +
        "v2 quality baseline");
  }
  int32_t name_len = 0;
  if (!ReadPod(f.get(), &name_len) || name_len < 0 ||
      name_len > kMaxBlobBytes) {
    return Status::IoError("bad model name length" + AtOffset(f.get(), path));
  }
  ck.model_name.resize(name_len);
  if (name_len > 0 &&
      std::fread(ck.model_name.data(), 1, name_len, f.get()) !=
          static_cast<size_t>(name_len)) {
    return Status::IoError("truncated checkpoint header" +
                           AtOffset(f.get(), path));
  }
  int32_t config_len = 0;
  if (!ReadPod(f.get(), &config_len) || config_len < 0 ||
      config_len > kMaxBlobBytes) {
    return Status::IoError("bad config blob length" + AtOffset(f.get(), path));
  }
  ck.config.resize(config_len);
  if (config_len > 0 &&
      std::fread(ck.config.data(), 1, config_len, f.get()) !=
          static_cast<size_t>(config_len)) {
    return Status::IoError("truncated checkpoint header" +
                           AtOffset(f.get(), path));
  }
  uint64_t stored_hash = 0;
  if (!ReadFingerprint(f.get(), &ck.fingerprint) ||
      !ReadPod(f.get(), &stored_hash)) {
    return Status::IoError("truncated checkpoint header" +
                           AtOffset(f.get(), path));
  }
  if (stored_hash != ck.fingerprint.Hash()) {
    return Status::IoError("corrupt fingerprint" + AtOffset(f.get(), path));
  }
  uint8_t has_baseline = 0;
  if (!ReadPod(f.get(), &has_baseline)) {
    return Status::IoError("truncated checkpoint header" +
                           AtOffset(f.get(), path));
  }
  if (has_baseline > 1) {
    return Status::IoError("bad quality baseline flag" +
                           AtOffset(f.get(), path));
  }
  if (has_baseline == 1) {
    int32_t blob_len = 0;
    if (!ReadPod(f.get(), &blob_len) || blob_len < 0 ||
        blob_len > kMaxBlobBytes) {
      return Status::IoError("bad quality baseline length" +
                             AtOffset(f.get(), path));
    }
    std::vector<uint8_t> blob(static_cast<size_t>(blob_len));
    if (blob_len > 0 &&
        std::fread(blob.data(), 1, blob.size(), f.get()) != blob.size()) {
      return Status::IoError("truncated quality baseline section" +
                             AtOffset(f.get(), path));
    }
    uint64_t baseline_hash = 0;
    if (!ReadPod(f.get(), &baseline_hash)) {
      return Status::IoError("truncated quality baseline section" +
                             AtOffset(f.get(), path));
    }
    if (baseline_hash != HashBlob(blob)) {
      return Status::IoError("corrupt quality baseline section" +
                             AtOffset(f.get(), path));
    }
    Status decoded = DecodeBaseline(blob, path, &ck.baseline);
    if (!decoded.ok()) return decoded;
  }
  auto tensors = ReadTensorList(f.get(), path);
  if (!tensors.ok()) return tensors.status();
  ck.tensors = std::move(tensors.value());
  // The tensor list must end the file exactly.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1) {
    return Status::IoError("trailing bytes after tensor list" +
                           AtOffset(f.get(), path));
  }
  return ck;
}

Status ValidateCheckpoint(const Checkpoint& checkpoint,
                          const std::string& model_name,
                          const UrgFingerprint& fingerprint) {
  if (checkpoint.version != kCheckpointVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(checkpoint.version));
  }
  if (checkpoint.model_name != model_name) {
    return Status::InvalidArgument("checkpoint is for model '" +
                                   checkpoint.model_name +
                                   "', expected '" + model_name + "'");
  }
  if (!checkpoint.fingerprint.Matches(fingerprint)) {
    return Status::InvalidArgument(
        "checkpoint URG fingerprint mismatch: checkpoint was trained on [" +
        checkpoint.fingerprint.ToString() + "], serving graph is [" +
        fingerprint.ToString() + "]");
  }
  return Status::Ok();
}

}  // namespace uv::io
