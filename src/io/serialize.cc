#include "io/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace uv::io {
namespace {

constexpr char kMagic[4] = {'U', 'V', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Bytes from the current position to the end of the stream, with the
// position restored. Used to reject corrupt headers (a huge tensor count or
// shape) before any allocation happens.
int64_t BytesRemaining(std::FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) return -1;
  return static_cast<int64_t>(end) - static_cast<int64_t>(pos);
}

}  // namespace

Status WriteTensorList(std::FILE* f, const std::string& path,
                       const std::vector<Tensor>& tensors) {
  if (std::fwrite(kMagic, 1, 4, f) != 4) {
    return Status::IoError("write failed: " + path);
  }
  const int32_t count = static_cast<int32_t>(tensors.size());
  if (std::fwrite(&count, sizeof(count), 1, f) != 1) {
    return Status::IoError("write failed: " + path);
  }
  for (const Tensor& t : tensors) {
    const int32_t rows = t.rows(), cols = t.cols();
    if (std::fwrite(&rows, sizeof(rows), 1, f) != 1 ||
        std::fwrite(&cols, sizeof(cols), 1, f) != 1) {
      return Status::IoError("write failed: " + path);
    }
    const size_t n = static_cast<size_t>(t.size());
    if (n > 0 && std::fwrite(t.data(), sizeof(float), n, f) != n) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<Tensor>> ReadTensorList(std::FILE* f,
                                             const std::string& path) {
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  int32_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 || count < 0) {
    return Status::IoError("bad tensor count in " + path);
  }
  int64_t remaining = BytesRemaining(f);
  if (remaining < 0) return Status::IoError("cannot size " + path);
  // Every tensor costs at least its 8-byte header, so a count the file
  // cannot possibly hold is rejected before the vector reserve below.
  if (static_cast<int64_t>(count) * 8 > remaining) {
    return Status::IoError("bad tensor count in " + path);
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (int32_t i = 0; i < count; ++i) {
    int32_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f) != 1 || rows < 0 ||
        cols < 0) {
      return Status::IoError("bad tensor header in " + path);
    }
    remaining -= 8;
    const int64_t n =
        static_cast<int64_t>(rows) * static_cast<int64_t>(cols);
    // Shape must fit both the int32 element count Tensor uses and the
    // bytes actually left in the stream.
    if (n > remaining / static_cast<int64_t>(sizeof(float)) ||
        n > INT32_MAX) {
      return Status::IoError("bad tensor header in " + path);
    }
    Tensor t = Tensor::Uninit(rows, cols);
    if (n > 0 && std::fread(t.data(), sizeof(float),
                            static_cast<size_t>(n),
                            f) != static_cast<size_t>(n)) {
      return Status::IoError("truncated tensor data in " + path);
    }
    remaining -= n * static_cast<int64_t>(sizeof(float));
    tensors.push_back(std::move(t));
  }
  return tensors;
}

Status SaveTensors(const std::string& path,
                   const std::vector<Tensor>& tensors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  return WriteTensorList(f.get(), path, tensors);
}

StatusOr<std::vector<Tensor>> LoadTensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  return ReadTensorList(f.get(), path);
}

Status SaveParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params) {
  std::vector<Tensor> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.push_back(p->value);
  return SaveTensors(path, tensors);
}

Status LoadParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params) {
  auto loaded = LoadTensors(path);
  if (!loaded.ok()) return loaded.status();
  const auto& tensors = loaded.value();
  if (tensors.size() != params.size()) {
    return Status::InvalidArgument("parameter count mismatch for " + path);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].SameShape(params[i]->value)) {
      return Status::InvalidArgument("parameter shape mismatch for " + path);
    }
    params[i]->value = tensors[i];
  }
  return Status::Ok();
}

Status SaveTensorCsv(const std::string& path, const Tensor& tensor) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  for (int r = 0; r < tensor.rows(); ++r) {
    for (int c = 0; c < tensor.cols(); ++c) {
      std::fprintf(f.get(), c ? ",%g" : "%g", tensor.at(r, c));
    }
    std::fputc('\n', f.get());
  }
  return Status::Ok();
}

}  // namespace uv::io
