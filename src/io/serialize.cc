#include "io/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace uv::io {
namespace {

constexpr char kMagic[4] = {'U', 'V', 'T', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status SaveTensors(const std::string& path,
                   const std::vector<Tensor>& tensors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return Status::IoError("write failed: " + path);
  }
  const int32_t count = static_cast<int32_t>(tensors.size());
  std::fwrite(&count, sizeof(count), 1, f.get());
  for (const Tensor& t : tensors) {
    const int32_t rows = t.rows(), cols = t.cols();
    std::fwrite(&rows, sizeof(rows), 1, f.get());
    std::fwrite(&cols, sizeof(cols), 1, f.get());
    const size_t n = static_cast<size_t>(t.size());
    if (n > 0 && std::fwrite(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<Tensor>> LoadTensors(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IoError("bad magic in " + path);
  }
  int32_t count = 0;
  if (std::fread(&count, sizeof(count), 1, f.get()) != 1 || count < 0) {
    return Status::IoError("bad tensor count in " + path);
  }
  std::vector<Tensor> tensors;
  tensors.reserve(count);
  for (int32_t i = 0; i < count; ++i) {
    int32_t rows = 0, cols = 0;
    if (std::fread(&rows, sizeof(rows), 1, f.get()) != 1 ||
        std::fread(&cols, sizeof(cols), 1, f.get()) != 1 || rows < 0 ||
        cols < 0) {
      return Status::IoError("bad tensor header in " + path);
    }
    Tensor t(rows, cols);
    const size_t n = static_cast<size_t>(t.size());
    if (n > 0 && std::fread(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::IoError("truncated tensor data in " + path);
    }
    tensors.push_back(std::move(t));
  }
  return tensors;
}

Status SaveParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params) {
  std::vector<Tensor> tensors;
  tensors.reserve(params.size());
  for (const auto& p : params) tensors.push_back(p->value);
  return SaveTensors(path, tensors);
}

Status LoadParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params) {
  auto loaded = LoadTensors(path);
  if (!loaded.ok()) return loaded.status();
  const auto& tensors = loaded.value();
  if (tensors.size() != params.size()) {
    return Status::InvalidArgument("parameter count mismatch for " + path);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].SameShape(params[i]->value)) {
      return Status::InvalidArgument("parameter shape mismatch for " + path);
    }
    params[i]->value = tensors[i];
  }
  return Status::Ok();
}

Status SaveTensorCsv(const std::string& path, const Tensor& tensor) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  for (int r = 0; r < tensor.rows(); ++r) {
    for (int c = 0; c < tensor.cols(); ++c) {
      std::fprintf(f.get(), c ? ",%g" : "%g", tensor.at(r, c));
    }
    std::fputc('\n', f.get());
  }
  return Status::Ok();
}

}  // namespace uv::io
