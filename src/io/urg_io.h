#ifndef UV_IO_URG_IO_H_
#define UV_IO_URG_IO_H_

#include <string>

#include "urg/urban_region_graph.h"
#include "util/status.h"

namespace uv::io {

// Binary persistence for a built UrbanRegionGraph ("UVG1" container).
// Building a URG is the expensive part of an experiment (road-connectivity
// BFS + tile encoding); saving it lets sweeps and repeated runs reload the
// dataset instead of regenerating. Raw satellite tiles are included when
// present so the image-based baselines keep working after a reload.
Status SaveUrg(const std::string& path, const urg::UrbanRegionGraph& urg);
StatusOr<urg::UrbanRegionGraph> LoadUrg(const std::string& path);

}  // namespace uv::io

#endif  // UV_IO_URG_IO_H_
