#ifndef UV_IO_CHECKPOINT_H_
#define UV_IO_CHECKPOINT_H_

// Versioned model checkpoint container ("UVCK" magic). A checkpoint wraps
// the UVT1 tensor list (serialize.h) with everything needed to refuse a
// wrong load: a schema version, the model name, an opaque model-config
// blob (the layering keeps io below core, so core serializes CmsfConfig
// into bytes via core::EncodeCmsfConfig), a fingerprint of the URG the
// model was trained on, and — since v2 — the training-time quality
// baseline that drift detection compares serving traffic against
// (obs/quality.h). On-disk layout, all fields host-endian like UVT1:
//
//   'U' 'V' 'C' 'K'
//   int32   version            (kCheckpointVersion; loader refuses others)
//   int32   model_name length, bytes
//   int32   config blob length, bytes
//   UrgFingerprint             (i32 h, i32 w, f64 cell_meters, 4 x i64)
//   uint64  FNV-1a hash of the fingerprint fields (corruption check)
//   uint8   has_baseline                                   [v2]
//   int32   baseline blob length, bytes, uint64 FNV hash   [v2, if present]
//   UVT1 tensor list           (WriteTensorList)
//
// Trailing bytes after the tensor list are rejected: a truncated or
// concatenated file never loads as a valid checkpoint. Loader errors name
// the byte offset where the read failed and, for version mismatches, both
// the found and the expected schema version.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/quality.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace uv::urg {
struct UrbanRegionGraph;
}  // namespace uv::urg

namespace uv::io {

// v1: name/config/fingerprint + tensor list. v2 adds the embedded quality
// baseline section. v1 files are *rejected* (with an actionable message),
// not silently upgraded: a served model without its training baseline
// would be blind to drift, so operators must re-save with the current
// build.
inline constexpr int32_t kCheckpointVersion = 2;

// Identity of the URG a model was trained on: grid spec plus edge counts.
// Two cities that agree on all of these are graph-isomorphic as far as the
// model's forward pass can observe at load time; anything less refuses.
struct UrgFingerprint {
  int32_t grid_height = 0;
  int32_t grid_width = 0;
  double cell_meters = 0.0;
  int64_t num_regions = 0;
  int64_t num_spatial_edges = 0;
  int64_t num_road_edges = 0;
  int64_t num_edges = 0;

  static UrgFingerprint FromUrg(const urg::UrbanRegionGraph& urg);
  uint64_t Hash() const;  // FNV-1a over the fields, in declaration order.
  bool Matches(const UrgFingerprint& other) const;
  std::string ToString() const;
};

struct Checkpoint {
  int32_t version = kCheckpointVersion;
  std::string model_name;
  std::vector<uint8_t> config;  // Opaque model-config blob.
  UrgFingerprint fingerprint;
  // Training-time quality baseline (empty() means "absent on disk" — a
  // writer may legitimately save a model that never computed one, and
  // loads round-trip the section byte-for-byte either way).
  obs::QualityBaseline baseline;
  std::vector<Tensor> tensors;
};

Status SaveCheckpoint(const std::string& path, const Checkpoint& checkpoint);

// Refuses unknown versions and corrupt/truncated files with a clean
// Status; never returns a partially-filled checkpoint.
StatusOr<Checkpoint> LoadCheckpoint(const std::string& path);

// Loader-side gate: the model name must match and the fingerprint must
// match the URG the checkpoint is about to serve.
Status ValidateCheckpoint(const Checkpoint& checkpoint,
                          const std::string& model_name,
                          const UrgFingerprint& fingerprint);

}  // namespace uv::io

#endif  // UV_IO_CHECKPOINT_H_
