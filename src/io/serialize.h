#ifndef UV_IO_SERIALIZE_H_
#define UV_IO_SERIALIZE_H_

#include <cstdio>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace uv::io {

// Binary tensor-list container ("UVT1" magic). Used for model checkpoints:
// parameters are written/read in their canonical Params() order.
Status SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);
StatusOr<std::vector<Tensor>> LoadTensors(const std::string& path);

// The inner UVT1 codec over an already-open stream, shared between the
// standalone files above and containers that embed a tensor list (the UVCK
// checkpoint). WriteTensorList emits magic + count + per-tensor records and
// checks every write; ReadTensorList validates the declared count and every
// tensor shape against the bytes actually remaining in the stream before
// allocating, so a corrupt header can neither trigger a huge allocation nor
// return partially-filled tensors. Reading stops at the end of the record:
// trailing bytes (a container's next section) are left unread.
Status WriteTensorList(std::FILE* f, const std::string& path,
                       const std::vector<Tensor>& tensors);
StatusOr<std::vector<Tensor>> ReadTensorList(std::FILE* f,
                                             const std::string& path);

// Convenience wrappers over a parameter list. Loading requires the shapes
// on disk to match the existing parameters exactly.
Status SaveParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params);
Status LoadParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params);

// Writes a tensor as CSV (one row per line), for external analysis.
Status SaveTensorCsv(const std::string& path, const Tensor& tensor);

}  // namespace uv::io

#endif  // UV_IO_SERIALIZE_H_
