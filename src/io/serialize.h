#ifndef UV_IO_SERIALIZE_H_
#define UV_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace uv::io {

// Binary tensor-list container ("UVT1" magic). Used for model checkpoints:
// parameters are written/read in their canonical Params() order.
Status SaveTensors(const std::string& path, const std::vector<Tensor>& tensors);
StatusOr<std::vector<Tensor>> LoadTensors(const std::string& path);

// Convenience wrappers over a parameter list. Loading requires the shapes
// on disk to match the existing parameters exactly.
Status SaveParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params);
Status LoadParams(const std::string& path,
                  const std::vector<ag::VarPtr>& params);

// Writes a tensor as CSV (one row per line), for external analysis.
Status SaveTensorCsv(const std::string& path, const Tensor& tensor);

}  // namespace uv::io

#endif  // UV_IO_SERIALIZE_H_
