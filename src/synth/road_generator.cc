#include "synth/road_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/check.h"

namespace uv::synth {
namespace {

// Chooses jittered arterial line positions along one axis.
std::vector<int> ArterialPositions(int extent, double spacing, Rng* rng) {
  std::vector<int> out;
  double pos = rng->Uniform(1.0, spacing);
  while (pos < extent - 1) {
    out.push_back(static_cast<int>(pos));
    pos += spacing * rng->Uniform(0.7, 1.3);
  }
  if (out.empty()) out.push_back(extent / 2);
  return out;
}

}  // namespace

RoadGenResult GenerateRoadNetwork(const CityConfig& config,
                                  const graph::GridSpec& grid,
                                  const std::vector<float>& development,
                                  Rng* rng) {
  UV_CHECK_EQ(static_cast<long long>(development.size()),
              static_cast<long long>(grid.num_regions()));
  RoadGenResult result;
  result.has_arterial_h.assign(grid.num_regions(), 0);
  result.has_arterial_v.assign(grid.num_regions(), 0);
  graph::RoadNetwork& net = result.network;
  // node id registered per cell, -1 if none (at most one hub node per cell).
  std::vector<int> node_of_cell(grid.num_regions(), -1);

  auto node_at_cell = [&](int row, int col) {
    const int cell = grid.RegionId(row, col);
    if (node_of_cell[cell] >= 0) return node_of_cell[cell];
    const double jitter = 0.30;
    const double x =
        (col + 0.5 + rng->Uniform(-jitter, jitter)) * grid.cell_meters;
    const double y =
        (row + 0.5 + rng->Uniform(-jitter, jitter)) * grid.cell_meters;
    const int id = net.AddIntersection(x, y);
    node_of_cell[cell] = id;
    return id;
  };

  const std::vector<int> arterial_rows =
      ArterialPositions(grid.height, config.arterial_spacing_cells, rng);
  const std::vector<int> arterial_cols =
      ArterialPositions(grid.width, config.arterial_spacing_cells, rng);

  // Arterials carry a node every other cell; consecutive nodes are linked.
  constexpr int kArterialStep = 2;
  for (int r : arterial_rows) {
    int prev = -1;
    for (int c = 0; c < grid.width; c += kArterialStep) {
      const int node = node_at_cell(r, c);
      if (prev >= 0 && prev != node) net.AddSegment(prev, node);
      prev = node;
    }
    for (int c = 0; c < grid.width; ++c) {
      result.has_arterial_h[grid.RegionId(r, c)] = 1;
    }
  }
  for (int c : arterial_cols) {
    int prev = -1;
    for (int r = 0; r < grid.height; r += kArterialStep) {
      const int node = node_at_cell(r, c);
      if (prev >= 0 && prev != node) net.AddSegment(prev, node);
      prev = node;
    }
    for (int r = 0; r < grid.height; ++r) {
      result.has_arterial_v[grid.RegionId(r, c)] = 1;
    }
  }

  // Local streets densify developed areas: each developed cell may get a
  // node linked to the nearest existing nodes within a 2-cell window.
  for (int r = 0; r < grid.height; ++r) {
    for (int c = 0; c < grid.width; ++c) {
      const int cell = grid.RegionId(r, c);
      if (node_of_cell[cell] >= 0) continue;
      const double p = config.local_road_density * development[cell];
      if (!rng->Bernoulli(p)) continue;
      const int node = node_at_cell(r, c);
      // Connect to up to three nearby nodes (prefer the closest cells).
      int connected = 0;
      for (int radius = 1; radius <= 2 && connected < 3; ++radius) {
        for (int dr = -radius; dr <= radius && connected < 3; ++dr) {
          for (int dc = -radius; dc <= radius && connected < 3; ++dc) {
            if (std::max(std::abs(dr), std::abs(dc)) != radius) continue;
            if (!grid.InBounds(r + dr, c + dc)) continue;
            const int other = node_of_cell[grid.RegionId(r + dr, c + dc)];
            if (other >= 0 && other != node) {
              net.AddSegment(node, other);
              ++connected;
            }
          }
        }
      }
    }
  }
  return result;
}

}  // namespace uv::synth
