#include "synth/city_config.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace uv::synth {
namespace {

int ScaledDim(int full, double scale) {
  return std::max(24, static_cast<int>(std::lround(full * std::sqrt(scale))));
}

int ScaledLabels(int full, double scale, int floor_count) {
  return std::max(floor_count,
                  static_cast<int>(std::lround(full * std::sqrt(scale))));
}

}  // namespace

CityConfig ShenzhenLike(double scale, uint64_t seed) {
  UV_CHECK(scale > 0.0);
  CityConfig c;
  c.name = "Shenzhen";
  c.seed = seed;
  // Full size 312 x 300 = 93,600 regions (Table I).
  c.height = ScaledDim(312, scale);
  c.width = ScaledDim(300, scale);
  c.num_centers = 2;
  c.num_districts = 4;
  c.downtown_radius = 0.30;
  c.industrial_patches = 7.0 * std::sqrt(scale * 25);
  c.green_patches = 5.0 * std::sqrt(scale * 25);
  c.labeled_uv_target = ScaledLabels(295, scale, 24);
  c.labeled_nonuv_target = ScaledLabels(6867, scale, 300);
  // Plant roughly 2x the labeled-UV count in true UV cells.
  c.num_uv_blobs =
      std::max(6, static_cast<int>(std::lround(2.2 * c.labeled_uv_target / 12.0)));
  c.arterial_spacing_cells = 9.0;
  c.local_road_density = 0.5;
  return c;
}

CityConfig FuzhouLike(double scale, uint64_t seed) {
  UV_CHECK(scale > 0.0);
  CityConfig c;
  c.name = "Fuzhou";
  c.seed = seed;
  // Full size 272 x 220 = 59,840 regions (~Table I's 59,872).
  c.height = ScaledDim(272, scale);
  c.width = ScaledDim(220, scale);
  c.num_centers = 1;
  c.num_districts = 3;
  c.downtown_radius = 0.33;
  c.industrial_patches = 4.0 * std::sqrt(scale * 25);
  c.green_patches = 6.0 * std::sqrt(scale * 25);
  c.labeled_uv_target = ScaledLabels(276, scale, 24);
  c.labeled_nonuv_target = ScaledLabels(3685, scale, 200);
  c.num_uv_blobs =
      std::max(6, static_cast<int>(std::lround(2.2 * c.labeled_uv_target / 12.0)));
  c.arterial_spacing_cells = 10.0;
  c.local_road_density = 0.42;
  return c;
}

CityConfig BeijingLike(double scale, uint64_t seed) {
  UV_CHECK(scale > 0.0);
  CityConfig c;
  c.name = "Beijing";
  c.seed = seed;
  // Full size 644 x 550 = 354,200 regions (~Table I's 354,316).
  c.height = ScaledDim(644, scale);
  c.width = ScaledDim(550, scale);
  c.num_centers = 3;
  c.num_districts = 6;
  c.downtown_radius = 0.24;
  c.industrial_patches = 9.0 * std::sqrt(scale * 25);
  c.green_patches = 10.0 * std::sqrt(scale * 25);
  c.labeled_uv_target = ScaledLabels(204, scale, 24);
  c.labeled_nonuv_target = ScaledLabels(10861, scale, 450);
  c.num_uv_blobs =
      std::max(6, static_cast<int>(std::lround(2.2 * c.labeled_uv_target / 12.0)));
  c.arterial_spacing_cells = 8.0;
  c.local_road_density = 0.48;
  return c;
}

bool CityScalePreset(const std::string& tag, uint64_t seed,
                     CityConfig* config) {
  UV_CHECK(config != nullptr);
  CityConfig c;
  if (tag == "93k") {
    c = ShenzhenLike(1.0, seed);
    c.name = "Shenzhen93k";
  } else if (tag == "175k") {
    c = ShenzhenLike(1.0, seed);
    c.name = "Shenzhen175k";
    c.height = 418;
    c.width = 419;  // 175,142 regions: the sweep's geometric midpoint.
  } else if (tag == "354k") {
    c = BeijingLike(1.0, seed);
    c.name = "Beijing354k";
    c.height = 566;
    c.width = 626;  // Exactly Table I's 354,316 regions.
  } else {
    return false;
  }
  c.generate_images = false;
  *config = c;
  return true;
}

}  // namespace uv::synth
