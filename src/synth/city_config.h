#ifndef UV_SYNTH_CITY_CONFIG_H_
#define UV_SYNTH_CITY_CONFIG_H_

#include <cstdint>
#include <string>

namespace uv::synth {

// Parameters of the procedural city generator. The three presets mimic the
// paper's datasets (Table I) at a configurable scale: label-class ratios and
// urban-morphology knobs differ per city, the grid size shrinks by `scale`.
struct CityConfig {
  std::string name = "city";
  uint64_t seed = 42;

  // Grid geometry (paper: 128m cells).
  int height = 64;
  int width = 64;
  double cell_meters = 128.0;

  // Urban morphology.
  int num_centers = 1;        // Downtown cores (polycentric cities > 1).
  int num_districts = 4;      // Districts with distinct UV/POI styles.
  double downtown_radius = 0.28;   // Fraction of the city diagonal.
  double industrial_patches = 5.0; // Expected industrial patches.
  double green_patches = 6.0;      // Expected greenland patches.

  // Urban villages. Blobs are planted in the downtown-suburb transition
  // ring; each blob covers a contiguous group of grids.
  int num_uv_blobs = 24;
  int uv_blob_min_cells = 4;
  int uv_blob_max_cells = 26;
  // Range of each blob's informality (how strongly its generation profile
  // leans toward the full urban-village signature). Narrow, high ranges
  // make the task easier; the default range creates genuine class overlap.
  double uv_informality_min = 0.4;
  double uv_informality_max = 1.0;

  // Labeling (the crowdsourced ground-truth substitution). Counts are
  // *targets*; the generator labels min(target, available) regions.
  int labeled_uv_target = 60;
  int labeled_nonuv_target = 1380;

  // Road network.
  double arterial_spacing_cells = 9.0;  // Mean spacing between arterials.
  double local_road_density = 0.45;     // Probability of local street per cell edge.

  // Satellite tiles.
  int image_size = 32;  // Pixels per side (3 channels).
  // Tile rasterization can be skipped for statistics-only workloads (e.g.
  // full-scale Table I runs where N x 3 x 32 x 32 floats would not fit).
  bool generate_images = true;

  int num_regions() const { return height * width; }
};

// Presets mirroring the paper's three cities. `scale` multiplies the region
// count (linear dimensions scale by sqrt(scale)); scale = 1 approximates the
// paper's full Table I sizes. Label targets scale with sqrt(scale) so that
// scarcity stays severe while keeping enough positives for stable folds.
CityConfig ShenzhenLike(double scale, uint64_t seed);
CityConfig FuzhouLike(double scale, uint64_t seed);
CityConfig BeijingLike(double scale, uint64_t seed);

// Paper-scale presets for the `bench_suite --city-scale` sweep. Tags:
//   "93k"  -> Shenzhen morphology at full size,   312 x 300 =  93,600
//   "175k" -> Shenzhen morphology, midpoint size, 418 x 419 = 175,142
//   "354k" -> Beijing morphology at Table I size, 566 x 626 = 354,316
// Eager tile rasterization is disabled (generate_images = false): at these
// sizes tiles are rendered on demand by the lazy feature store.
// Returns true and fills *config when `tag` is recognized.
bool CityScalePreset(const std::string& tag, uint64_t seed,
                     CityConfig* config);

}  // namespace uv::synth

#endif  // UV_SYNTH_CITY_CONFIG_H_
