#include "synth/archetype.h"

#include "util/check.h"

namespace uv::synth {

const char* ArchetypeName(Archetype a) {
  switch (a) {
    case Archetype::kDowntownCore: return "DowntownCore";
    case Archetype::kCommercial: return "Commercial";
    case Archetype::kFormalResidential: return "FormalResidential";
    case Archetype::kSuburbResidential: return "SuburbResidential";
    case Archetype::kIndustrial: return "Industrial";
    case Archetype::kGreenland: return "Greenland";
    case Archetype::kUrbanVillage: return "UrbanVillage";
    case Archetype::kOldTown: return "OldTown";
  }
  return "Unknown";
}

namespace {

// Category weight order follows PoiCategory:
//  0 FoodService, 1 Hotel, 2 ShoppingPlace, 3 LifeService, 4 BeautyIndustry,
//  5 ScenicSpot, 6 LeisureEntertainment, 7 SportsFitness, 8 Education,
//  9 CulturalMedia, 10 Medicine, 11 AutoService, 12 TransportationFacility,
// 13 FinancialService, 14 RealEstate, 15 Company, 16 GovernmentApparatus,
// 17 EntranceExit, 18 TopographicalObject, 19 Road, 20 Railway,
// 21 Greenland, 22 BusRoute.
//
// Radius rate order follows RadiusType:
//  0 Hospital, 1 Clinic, 2 College, 3 School, 4 BusStop, 5 SubwayStation,
//  6 Airport, 7 TrainStation, 8 CoachStation, 9 ShoppingMall,
// 10 Supermarket, 11 Market, 12 Shop, 13 PoliceStation, 14 ScenicSpot.

const ArchetypeProfile kDowntown = {
    /*poi_intensity=*/26.0,
    {8, 4, 9, 6, 4, 1, 6, 2.5, 2, 3, 2, 1.5, 4, 6, 3, 12, 2, 2, 0.5, 2, 0.5,
     0.5, 3},
    {0.035, 0.10, 0.02, 0.05, 0.55, 0.12, 0.0004, 0.004, 0.004, 0.06, 0.11,
     0.05, 0.85, 0.035, 0.012},
    {0.32f, 0.31f, 0.33f},
    {0.72f, 0.70f, 0.68f},
    0.52f, 8.5f, 0.72f, 0.05f,
};

const ArchetypeProfile kCommercial = {
    /*poi_intensity=*/18.0,
    {9, 2.5, 10, 7, 4, 0.8, 5, 2, 2, 2, 2, 2, 3, 4, 3, 7, 1.2, 1.5, 0.5, 2,
     0.4, 0.6, 2.5},
    {0.02, 0.08, 0.008, 0.04, 0.42, 0.06, 0.0003, 0.002, 0.003, 0.045, 0.10,
     0.06, 0.75, 0.025, 0.006},
    {0.36f, 0.34f, 0.34f},
    {0.66f, 0.63f, 0.60f},
    0.45f, 7.0f, 0.68f, 0.05f,
};

const ArchetypeProfile kFormalResidential = {
    /*poi_intensity=*/11.0,
    {6, 0.8, 5.5, 7, 3, 0.4, 2.5, 2.2, 3.5, 1.5, 2.5, 1.5, 2.5, 2.5, 4, 1.5,
     1, 2.5, 0.6, 1.8, 0.3, 1.8, 2.2},
    {0.016, 0.075, 0.006, 0.05, 0.38, 0.035, 0.0002, 0.001, 0.002, 0.02,
     0.085, 0.055, 0.45, 0.02, 0.004},
    {0.40f, 0.40f, 0.38f},
    {0.62f, 0.58f, 0.55f},
    0.34f, 6.0f, 0.90f, 0.04f,
};

const ArchetypeProfile kSuburbResidential = {
    /*poi_intensity=*/3.2,
    {4, 0.4, 2.5, 4, 1, 0.5, 1, 0.8, 1.2, 0.4, 0.9, 1.5, 1.2, 0.6, 1.2, 0.8,
     0.6, 1, 1.5, 2, 0.5, 2.5, 1},
    {0.002, 0.015, 0.001, 0.012, 0.10, 0.004, 0.0002, 0.0008, 0.002, 0.002,
     0.015, 0.015, 0.10, 0.005, 0.004},
    {0.42f, 0.44f, 0.36f},
    {0.58f, 0.54f, 0.50f},
    0.16f, 4.5f, 0.62f, 0.05f,
};

const ArchetypeProfile kIndustrial = {
    /*poi_intensity=*/4.5,
    {1.5, 0.3, 0.8, 1.5, 0.2, 0.1, 0.3, 0.3, 0.3, 0.3, 0.3, 4, 2, 0.5, 0.5,
     8, 0.5, 2, 0.8, 2.5, 1.2, 0.5, 1},
    {0.001, 0.01, 0.001, 0.004, 0.10, 0.006, 0.0006, 0.002, 0.004, 0.001,
     0.01, 0.008, 0.06, 0.006, 0.001},
    {0.45f, 0.44f, 0.44f},
    {0.70f, 0.69f, 0.70f},
    0.38f, 12.0f, 0.82f, 0.04f,
};

const ArchetypeProfile kGreenland = {
    /*poi_intensity=*/0.5,
    {0.2, 0.05, 0.1, 0.1, 0.02, 1.5, 0.3, 0.2, 0.02, 0.05, 0.02, 0.05, 0.3,
     0.02, 0.05, 0.05, 0.1, 0.3, 2, 0.8, 0.2, 5, 0.2},
    {0.0002, 0.001, 0.0002, 0.001, 0.02, 0.001, 0.0001, 0.0002, 0.0005,
     0.0002, 0.001, 0.001, 0.008, 0.001, 0.012},
    {0.22f, 0.42f, 0.22f},
    {0.35f, 0.48f, 0.32f},
    0.03f, 3.0f, 0.30f, 0.05f,
};

// Urban villages: crowded low-end service POIs (food stalls, small shops,
// life services), under-provisioned public facilities (hospitals, schools,
// sports, finance), and a dense-irregular building texture. The profile is
// deliberately a *moderate* shift from formal residential: with per-region
// sampling noise the classes overlap, as in the real task.
const ArchetypeProfile kUrbanVillage = {
    /*poi_intensity=*/13.0,
    {8.5, 1.0, 6.5, 8, 2.8, 0.2, 2.0, 0.9, 1.8, 0.8, 1.4, 1.2, 1.8, 1.2,
     2.0, 1.0, 0.6, 1.8, 0.5, 1.5, 0.25, 0.8, 1.7},
    {0.004, 0.04, 0.003, 0.025, 0.26, 0.015, 0.0001, 0.0007, 0.0015, 0.008,
     0.045, 0.05, 0.50, 0.010, 0.002},
    {0.38f, 0.36f, 0.33f},
    {0.55f, 0.50f, 0.45f},
    0.68f, 3.0f, 0.22f, 0.07f,
};

// Old town: dense historic-but-formal neighbourhoods. Close to the urban
// village in every marginal statistic; the separating signal is contextual
// (location band, surroundings), which is what the URG models exploit.
const ArchetypeProfile kOldTown = {
    /*poi_intensity=*/12.0,
    {7.5, 1.2, 6.0, 7.5, 2.6, 0.6, 2.2, 1.4, 2.6, 1.2, 2.0, 1.2, 2.2, 1.8,
     2.2, 1.6, 0.9, 2.0, 0.5, 1.6, 0.3, 1.2, 2.0},
    {0.012, 0.06, 0.005, 0.04, 0.30, 0.028, 0.0002, 0.001, 0.002, 0.016,
     0.07, 0.05, 0.40, 0.016, 0.003},
    {0.39f, 0.38f, 0.36f},
    {0.58f, 0.53f, 0.48f},
    0.62f, 3.8f, 0.42f, 0.06f,
};

}  // namespace

const ArchetypeProfile& GetProfile(Archetype a) {
  switch (a) {
    case Archetype::kDowntownCore: return kDowntown;
    case Archetype::kCommercial: return kCommercial;
    case Archetype::kFormalResidential: return kFormalResidential;
    case Archetype::kSuburbResidential: return kSuburbResidential;
    case Archetype::kIndustrial: return kIndustrial;
    case Archetype::kGreenland: return kGreenland;
    case Archetype::kUrbanVillage: return kUrbanVillage;
    case Archetype::kOldTown: return kOldTown;
  }
  UV_CHECK(false);
  return kSuburbResidential;
}

ArchetypeProfile MixProfiles(const ArchetypeProfile& a,
                             const ArchetypeProfile& b, float t) {
  UV_CHECK(t >= 0.0f && t <= 1.0f);
  auto mix = [t](double x, double y) { return (1.0 - t) * x + t * y; };
  ArchetypeProfile out;
  out.poi_intensity = mix(a.poi_intensity, b.poi_intensity);
  for (int c = 0; c < kNumPoiCategories; ++c) {
    out.category_weights[c] = mix(a.category_weights[c], b.category_weights[c]);
  }
  for (int r = 0; r < kNumRadiusTypes; ++r) {
    out.radius_rate[r] = mix(a.radius_rate[r], b.radius_rate[r]);
  }
  for (int k = 0; k < 3; ++k) {
    out.base_rgb[k] = static_cast<float>(mix(a.base_rgb[k], b.base_rgb[k]));
    out.building_rgb[k] =
        static_cast<float>(mix(a.building_rgb[k], b.building_rgb[k]));
  }
  out.building_density =
      static_cast<float>(mix(a.building_density, b.building_density));
  out.building_size = static_cast<float>(mix(a.building_size, b.building_size));
  out.regularity = static_cast<float>(mix(a.regularity, b.regularity));
  out.noise_level = static_cast<float>(mix(a.noise_level, b.noise_level));
  return out;
}

}  // namespace uv::synth
