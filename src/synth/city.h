#ifndef UV_SYNTH_CITY_H_
#define UV_SYNTH_CITY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/grid.h"
#include "graph/road_network.h"
#include "synth/archetype.h"
#include "synth/city_config.h"
#include "tensor/tensor.h"

namespace uv::synth {

// One point of interest on the map.
struct Poi {
  double x = 0.0;  // Metres from the grid origin.
  double y = 0.0;
  PoiCategory category = PoiCategory::kLifeService;
  RadiusType radius_type = RadiusType::kNone;
  FacilityType facility_type = FacilityType::kNone;
};

// A generated city: the raw multi-source urban data the paper collects from
// Baidu Maps, in synthetic form. Feature construction (src/features) and URG
// assembly (src/urg) consume this.
struct City {
  CityConfig config;
  graph::GridSpec grid;

  // Per-region latent state.
  std::vector<Archetype> archetypes;
  std::vector<int> district;       // District id per region.
  std::vector<float> uv_overlap;   // Fraction of cell covered by a UV blob.
  std::vector<uint8_t> is_uv;      // Ground truth: overlap > 20% (paper rule).
  // Style coefficient in [0,1] for UV and old-town cells: how far the
  // cell's generation profile is blended toward the full urban-village
  // profile (urbanization stage). 0 elsewhere.
  std::vector<float> informality;

  // Labels as released to the models: -1 unlabeled, 0 non-UV, 1 UV.
  std::vector<int> labels;

  // POI data.
  std::vector<Poi> pois;
  // POI ids per region (indices into `pois`).
  std::vector<std::vector<int>> pois_by_region;

  // Road network data.
  graph::RoadNetwork roads;
  // Per-region arterial flags from road generation, retained so tiles can
  // be re-rendered on demand (lazy feature store) after generation.
  std::vector<uint8_t> has_arterial_h;
  std::vector<uint8_t> has_arterial_v;
  // Per-district RGB tint applied to every tile of the district.
  std::vector<std::array<float, 3>> district_tints;

  // Satellite tiles: one row per region, 3 * image_size^2 floats in [0,1],
  // CHW order. Shared so downstream holders avoid copying ~100MB at scale.
  // Null when config.generate_images is off — render tiles on demand with
  // RenderRegionTile instead.
  std::shared_ptr<Tensor> images;

  int num_regions() const { return static_cast<int>(grid.num_regions()); }

  // Renders region `id`'s tile into out_chw (3 * image_size^2 floats).
  // Deterministic in (config.seed, id) alone — every region draws from its
  // own RNG stream — so eager-parallel rendering and lazy per-batch
  // rendering produce bit-identical pixels for any thread count.
  void RenderRegionTile(int id, float* out_chw) const;

  // Counts for the Table I statistics.
  int NumLabeledUv() const;
  int NumLabeledNonUv() const;
  int NumTrueUv() const;
};

// Per-region generation profile with the blob-level informality blend
// (urban villages interpolate FormalResidential -> UrbanVillage, old towns
// OldTown -> UrbanVillage). Shared by POI generation and tile rendering.
ArchetypeProfile EffectiveProfile(const City& city, int id);

// Seed of region `id`'s private tile-render RNG stream.
uint64_t TileSeed(uint64_t city_seed, int region_id);

// Generates a complete synthetic city from the config (deterministic in
// config.seed). See DESIGN.md section 1 for the fidelity argument.
City GenerateCity(const CityConfig& config);

}  // namespace uv::synth

#endif  // UV_SYNTH_CITY_H_
