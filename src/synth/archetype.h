#ifndef UV_SYNTH_ARCHETYPE_H_
#define UV_SYNTH_ARCHETYPE_H_

#include "synth/poi_types.h"

namespace uv::synth {

// Latent land-use archetype of a region grid. The generator assigns one per
// region; archetypes drive POI intensity/mix, image texture, and where urban
// villages can be planted (the downtown-suburb transition ring).
enum class Archetype {
  kDowntownCore = 0,
  kCommercial,
  kFormalResidential,
  kSuburbResidential,
  kIndustrial,
  kGreenland,
  kUrbanVillage,
  // Dense historic neighbourhoods: visually and functionally close to urban
  // villages but formally planned (labeled non-UV). These confusers keep
  // the detection task from being linearly separable from raw features,
  // mirroring the difficulty the paper reports.
  kOldTown,
};
inline constexpr int kNumArchetypes = 8;

const char* ArchetypeName(Archetype a);

// Generation profile for one archetype. POI weights are unnormalized;
// radius_rate are expected counts per region of the 15 radius-anchor POI
// types (hospitals etc. are sparse and concentrated in developed areas,
// which is what makes the paper's radius features discriminative).
struct ArchetypeProfile {
  double poi_intensity;  // Expected plain POIs per region grid.
  double category_weights[kNumPoiCategories];
  double radius_rate[kNumRadiusTypes];

  // Satellite-tile texture parameters.
  float base_rgb[3];
  float building_rgb[3];
  float building_density;  // Fraction of tile area covered by buildings.
  float building_size;     // Mean building footprint edge, in pixels.
  float regularity;        // 1 = regular grid layout, 0 = chaotic infill.
  float noise_level;       // Per-pixel brightness noise amplitude.
};

const ArchetypeProfile& GetProfile(Archetype a);

// Linear interpolation of two generation profiles: t = 0 returns `a`,
// t = 1 returns `b`. Used to give every urban-village / old-town blob its
// own degree of informality so the classes genuinely overlap in feature
// space (villages at different stages of urbanization).
ArchetypeProfile MixProfiles(const ArchetypeProfile& a,
                             const ArchetypeProfile& b, float t);

}  // namespace uv::synth

#endif  // UV_SYNTH_ARCHETYPE_H_
