#ifndef UV_SYNTH_ROAD_GENERATOR_H_
#define UV_SYNTH_ROAD_GENERATOR_H_

#include <vector>

#include "graph/grid.h"
#include "graph/road_network.h"
#include "synth/city_config.h"
#include "util/rng.h"

namespace uv::synth {

// Road synthesis output: the intersection graph plus per-cell arterial
// flags used by the tile renderer.
struct RoadGenResult {
  graph::RoadNetwork network;
  std::vector<uint8_t> has_arterial_h;  // Cell lies on a horizontal arterial.
  std::vector<uint8_t> has_arterial_v;  // Cell lies on a vertical arterial.
};

// Synthesizes a road network for the city: a jittered arterial grid whose
// spacing follows config.arterial_spacing_cells, densified with local
// streets near developed areas (controlled by `development`, a per-region
// weight in [0,1]; downtown ~1, empty suburb ~0). Intersections carry planar
// coordinates so graph::RoadNetwork::BuildRegionConnectivityEdges can apply
// the paper's 5-hop rule.
RoadGenResult GenerateRoadNetwork(const CityConfig& config,
                                  const graph::GridSpec& grid,
                                  const std::vector<float>& development,
                                  Rng* rng);

}  // namespace uv::synth

#endif  // UV_SYNTH_ROAD_GENERATOR_H_
