#include "synth/poi_types.h"

namespace uv::synth {

const char* PoiCategoryName(PoiCategory c) {
  switch (c) {
    case PoiCategory::kFoodService: return "FoodService";
    case PoiCategory::kHotel: return "Hotel";
    case PoiCategory::kShoppingPlace: return "ShoppingPlace";
    case PoiCategory::kLifeService: return "LifeService";
    case PoiCategory::kBeautyIndustry: return "BeautyIndustry";
    case PoiCategory::kScenicSpot: return "ScenicSpot";
    case PoiCategory::kLeisureEntertainment: return "LeisureEntertainment";
    case PoiCategory::kSportsFitness: return "SportsFitness";
    case PoiCategory::kEducation: return "Education";
    case PoiCategory::kCulturalMedia: return "CulturalMedia";
    case PoiCategory::kMedicine: return "Medicine";
    case PoiCategory::kAutoService: return "AutoService";
    case PoiCategory::kTransportationFacility: return "TransportationFacility";
    case PoiCategory::kFinancialService: return "FinancialService";
    case PoiCategory::kRealEstate: return "RealEstate";
    case PoiCategory::kCompany: return "Company";
    case PoiCategory::kGovernmentApparatus: return "GovernmentApparatus";
    case PoiCategory::kEntranceExit: return "EntranceExit";
    case PoiCategory::kTopographicalObject: return "TopographicalObject";
    case PoiCategory::kRoad: return "Road";
    case PoiCategory::kRailway: return "Railway";
    case PoiCategory::kGreenland: return "Greenland";
    case PoiCategory::kBusRoute: return "BusRoute";
  }
  return "Unknown";
}

const char* RadiusTypeName(RadiusType t) {
  switch (t) {
    case RadiusType::kNone: return "None";
    case RadiusType::kHospital: return "Hospital";
    case RadiusType::kClinic: return "Clinic";
    case RadiusType::kCollege: return "College";
    case RadiusType::kSchool: return "School";
    case RadiusType::kBusStop: return "BusStop";
    case RadiusType::kSubwayStation: return "SubwayStation";
    case RadiusType::kAirport: return "Airport";
    case RadiusType::kTrainStation: return "TrainStation";
    case RadiusType::kCoachStation: return "CoachStation";
    case RadiusType::kShoppingMall: return "ShoppingMall";
    case RadiusType::kSupermarket: return "Supermarket";
    case RadiusType::kMarket: return "Market";
    case RadiusType::kShop: return "Shop";
    case RadiusType::kPoliceStation: return "PoliceStation";
    case RadiusType::kScenicSpot: return "ScenicSpot";
  }
  return "Unknown";
}

const char* FacilityTypeName(FacilityType t) {
  switch (t) {
    case FacilityType::kNone: return "None";
    case FacilityType::kMedicalService: return "MedicalService";
    case FacilityType::kShoppingPlace: return "ShoppingPlace";
    case FacilityType::kSportsVenue: return "SportsVenue";
    case FacilityType::kEducationService: return "EducationService";
    case FacilityType::kFoodService: return "FoodService";
    case FacilityType::kFinancialService: return "FinancialService";
    case FacilityType::kCommunicationService: return "CommunicationService";
    case FacilityType::kPublicSecurityOrgan: return "PublicSecurityOrgan";
    case FacilityType::kTransportationFacility: return "TransportationFacility";
  }
  return "Unknown";
}

PoiCategory HostCategory(RadiusType t) {
  switch (t) {
    case RadiusType::kHospital:
    case RadiusType::kClinic:
      return PoiCategory::kMedicine;
    case RadiusType::kCollege:
    case RadiusType::kSchool:
      return PoiCategory::kEducation;
    case RadiusType::kBusStop:
    case RadiusType::kSubwayStation:
    case RadiusType::kAirport:
    case RadiusType::kTrainStation:
    case RadiusType::kCoachStation:
      return PoiCategory::kTransportationFacility;
    case RadiusType::kShoppingMall:
    case RadiusType::kSupermarket:
    case RadiusType::kMarket:
    case RadiusType::kShop:
      return PoiCategory::kShoppingPlace;
    case RadiusType::kPoliceStation:
      return PoiCategory::kGovernmentApparatus;
    case RadiusType::kScenicSpot:
      return PoiCategory::kScenicSpot;
    case RadiusType::kNone:
      break;
  }
  return PoiCategory::kLifeService;
}

FacilityType FacilityOf(RadiusType t) {
  switch (t) {
    case RadiusType::kHospital:
    case RadiusType::kClinic:
      return FacilityType::kMedicalService;
    case RadiusType::kCollege:
    case RadiusType::kSchool:
      return FacilityType::kEducationService;
    case RadiusType::kBusStop:
    case RadiusType::kSubwayStation:
    case RadiusType::kTrainStation:
    case RadiusType::kCoachStation:
      return FacilityType::kTransportationFacility;
    case RadiusType::kShoppingMall:
    case RadiusType::kSupermarket:
    case RadiusType::kMarket:
    case RadiusType::kShop:
      return FacilityType::kShoppingPlace;
    case RadiusType::kPoliceStation:
      return FacilityType::kPublicSecurityOrgan;
    case RadiusType::kAirport:
    case RadiusType::kScenicSpot:
    case RadiusType::kNone:
      break;
  }
  return FacilityType::kNone;
}

FacilityType FacilityOfCategory(PoiCategory c) {
  switch (c) {
    case PoiCategory::kFoodService:
      return FacilityType::kFoodService;
    case PoiCategory::kFinancialService:
      return FacilityType::kFinancialService;
    case PoiCategory::kCulturalMedia:
      return FacilityType::kCommunicationService;
    case PoiCategory::kSportsFitness:
      return FacilityType::kSportsVenue;
    default:
      break;
  }
  return FacilityType::kNone;
}

}  // namespace uv::synth
