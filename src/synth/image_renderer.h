#ifndef UV_SYNTH_IMAGE_RENDERER_H_
#define UV_SYNTH_IMAGE_RENDERER_H_

#include "synth/archetype.h"
#include "util/rng.h"

namespace uv::synth {

// Rasterizes one synthetic satellite tile (CHW float, 3 x size x size,
// values in [0,1]) for a region of the given archetype. The renderer
// reproduces the visual cues the paper's VGG features pick up: building
// density, footprint size, layout regularity (urban villages = dense,
// small, irregular), vegetation tone, and road strokes.
//
// `district_tint` is an RGB offset (about +-0.05) giving each district a
// slightly different look; `road_h` / `road_v` draw arterial bands.
void RenderTile(const ArchetypeProfile& profile, const float district_tint[3],
                bool road_h, bool road_v, int size, Rng* rng, float* out_chw);

}  // namespace uv::synth

#endif  // UV_SYNTH_IMAGE_RENDERER_H_
