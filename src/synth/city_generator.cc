#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "synth/city.h"
#include "synth/image_renderer.h"
#include "synth/road_generator.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace uv::synth {
namespace {

// Smooth value noise in [-1, 1]: Gaussians on a coarse lattice, bilinearly
// interpolated. Gives archetype boundaries an organic shape.
class ValueNoise {
 public:
  ValueNoise(int height, int width, int cell, Rng* rng)
      : cell_(cell),
        gh_(height / cell + 2),
        gw_(width / cell + 2),
        values_(static_cast<size_t>(gh_) * gw_) {
    for (auto& v : values_) {
      v = static_cast<float>(std::tanh(rng->Gaussian(0.0, 0.7)));
    }
  }

  float At(int row, int col) const {
    const float fr = static_cast<float>(row) / cell_;
    const float fc = static_cast<float>(col) / cell_;
    const int r0 = static_cast<int>(fr);
    const int c0 = static_cast<int>(fc);
    const float tr = fr - r0;
    const float tc = fc - c0;
    const float v00 = values_[r0 * gw_ + c0];
    const float v01 = values_[r0 * gw_ + c0 + 1];
    const float v10 = values_[(r0 + 1) * gw_ + c0];
    const float v11 = values_[(r0 + 1) * gw_ + c0 + 1];
    return (1 - tr) * ((1 - tc) * v00 + tc * v01) +
           tr * ((1 - tc) * v10 + tc * v11);
  }

 private:
  int cell_;
  int gh_;
  int gw_;
  std::vector<float> values_;
};

// Grows a contiguous blob of roughly `target` cells from `seed` by randomly
// expanding the frontier; `eligible` filters growable cells.
std::vector<int> GrowBlob(const graph::GridSpec& grid, int seed, int target,
                          const std::function<bool(int)>& eligible,
                          Rng* rng) {
  std::vector<int> blob;
  std::vector<uint8_t> in_blob(grid.num_regions(), 0);
  std::vector<int> frontier;
  blob.push_back(seed);
  in_blob[seed] = 1;
  frontier.push_back(seed);
  while (static_cast<int>(blob.size()) < target && !frontier.empty()) {
    const int pick = rng->UniformInt(static_cast<int>(frontier.size()));
    const int cur = frontier[pick];
    const int row = grid.RowOf(cur);
    const int col = grid.ColOf(cur);
    // Collect unvisited 4-neighbours.
    std::vector<int> options;
    const int drs[] = {-1, 1, 0, 0};
    const int dcs[] = {0, 0, -1, 1};
    for (int k = 0; k < 4; ++k) {
      const int nr = row + drs[k];
      const int nc = col + dcs[k];
      if (!grid.InBounds(nr, nc)) continue;
      const int id = grid.RegionId(nr, nc);
      if (!in_blob[id] && eligible(id)) options.push_back(id);
    }
    if (options.empty()) {
      frontier[pick] = frontier.back();
      frontier.pop_back();
      continue;
    }
    const int chosen = options[rng->UniformInt(static_cast<int>(options.size()))];
    in_blob[chosen] = 1;
    blob.push_back(chosen);
    frontier.push_back(chosen);
  }
  return blob;
}

float DevelopmentWeight(Archetype a) {
  switch (a) {
    case Archetype::kDowntownCore: return 1.0f;
    case Archetype::kCommercial: return 0.9f;
    case Archetype::kFormalResidential: return 0.7f;
    case Archetype::kUrbanVillage: return 0.8f;
    case Archetype::kIndustrial: return 0.5f;
    case Archetype::kSuburbResidential: return 0.3f;
    case Archetype::kGreenland: return 0.05f;
    case Archetype::kOldTown: return 0.75f;
  }
  return 0.3f;
}

}  // namespace

ArchetypeProfile EffectiveProfile(const City& city, int id) {
  const Archetype a = city.archetypes[id];
  if (a == Archetype::kUrbanVillage) {
    return MixProfiles(GetProfile(Archetype::kFormalResidential),
                       GetProfile(Archetype::kUrbanVillage),
                       city.informality[id]);
  }
  if (a == Archetype::kOldTown) {
    return MixProfiles(GetProfile(Archetype::kOldTown),
                       GetProfile(Archetype::kUrbanVillage),
                       city.informality[id]);
  }
  return GetProfile(a);
}

uint64_t TileSeed(uint64_t city_seed, int region_id) {
  // splitmix64 finalizer over (seed, id): every region gets its own RNG
  // stream, so tile pixels depend only on (config.seed, id) — not on which
  // thread renders the tile or whether rendering is eager or lazy.
  uint64_t z = city_seed + 0x9E3779B97F4A7C15ull *
                               (static_cast<uint64_t>(region_id) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void City::RenderRegionTile(int id, float* out_chw) const {
  UV_CHECK_GE(id, 0);
  UV_CHECK_LT(id, num_regions());
  Rng rng(TileSeed(config.seed, id));
  RenderTile(EffectiveProfile(*this, id), district_tints[district[id]].data(),
             has_arterial_h[id] != 0, has_arterial_v[id] != 0,
             config.image_size, &rng, out_chw);
}

int City::NumLabeledUv() const {
  int n = 0;
  for (int l : labels) n += (l == 1);
  return n;
}
int City::NumLabeledNonUv() const {
  int n = 0;
  for (int l : labels) n += (l == 0);
  return n;
}
int City::NumTrueUv() const {
  int n = 0;
  for (uint8_t u : is_uv) n += (u != 0);
  return n;
}

City GenerateCity(const CityConfig& config) {
  City city;
  city.config = config;
  city.grid = {config.height, config.width, config.cell_meters};
  const graph::GridSpec& grid = city.grid;
  const int n = grid.num_regions();
  UV_CHECK_GT(n, 0);

  Rng master(config.seed);
  Rng rng_layout = master.Fork();
  Rng rng_uv = master.Fork();
  Rng rng_poi = master.Fork();
  Rng rng_road = master.Fork();
  Rng rng_img = master.Fork();
  Rng rng_label = master.Fork();

  // --- Districts: Voronoi around random centres. -------------------------
  city.district.assign(n, 0);
  std::vector<std::pair<double, double>> district_centers;
  for (int d = 0; d < config.num_districts; ++d) {
    district_centers.emplace_back(rng_layout.Uniform(0, grid.height),
                                  rng_layout.Uniform(0, grid.width));
  }
  for (int id = 0; id < n; ++id) {
    const double r = grid.RowOf(id), c = grid.ColOf(id);
    int best = 0;
    double best_d = 1e30;
    for (int d = 0; d < config.num_districts; ++d) {
      const double dr = r - district_centers[d].first;
      const double dc = c - district_centers[d].second;
      const double dist = dr * dr + dc * dc;
      if (dist < best_d) {
        best_d = dist;
        best = d;
      }
    }
    city.district[id] = best;
  }

  // --- Downtown score field + base archetypes. ---------------------------
  std::vector<std::pair<double, double>> centers;
  for (int k = 0; k < config.num_centers; ++k) {
    centers.emplace_back(
        grid.height * rng_layout.Uniform(0.30, 0.70),
        grid.width * rng_layout.Uniform(0.30, 0.70));
  }
  const double diag = std::sqrt(static_cast<double>(grid.height) * grid.height +
                                static_cast<double>(grid.width) * grid.width);
  const double sigma = config.downtown_radius * diag * 0.55;
  ValueNoise noise(grid.height, grid.width,
                   std::max(4, static_cast<int>(diag / 14)), &rng_layout);

  std::vector<float> score(n);
  city.archetypes.assign(n, Archetype::kSuburbResidential);
  for (int id = 0; id < n; ++id) {
    const double r = grid.RowOf(id), c = grid.ColOf(id);
    double s = 0.0;
    for (const auto& ctr : centers) {
      const double dr = r - ctr.first;
      const double dc = c - ctr.second;
      s = std::max(s, std::exp(-(dr * dr + dc * dc) / (2 * sigma * sigma)));
    }
    s += 0.16 * noise.At(grid.RowOf(id), grid.ColOf(id));
    score[id] = static_cast<float>(s);
    if (s > 0.78) {
      city.archetypes[id] = Archetype::kDowntownCore;
    } else if (s > 0.58) {
      city.archetypes[id] = Archetype::kCommercial;
    } else if (s > 0.32) {
      city.archetypes[id] = Archetype::kFormalResidential;
    } else {
      city.archetypes[id] = Archetype::kSuburbResidential;
    }
  }

  // --- Industrial and greenland patches. ---------------------------------
  auto plant_patches = [&](double expected, Archetype kind, double lo,
                           double hi, int min_sz, int max_sz) {
    const int count = rng_layout.Poisson(expected);
    for (int k = 0; k < count; ++k) {
      // Rejection-sample a seed in the score band.
      int seed = -1;
      for (int tries = 0; tries < 200; ++tries) {
        const int cand = rng_layout.UniformInt(n);
        if (score[cand] >= lo && score[cand] <= hi &&
            city.archetypes[cand] != Archetype::kDowntownCore) {
          seed = cand;
          break;
        }
      }
      if (seed < 0) continue;
      const int target = min_sz + rng_layout.UniformInt(max_sz - min_sz + 1);
      const auto blob = GrowBlob(
          grid, seed, target,
          [&](int id) {
            return city.archetypes[id] != Archetype::kDowntownCore;
          },
          &rng_layout);
      for (int id : blob) city.archetypes[id] = kind;
    }
  };
  plant_patches(config.industrial_patches, Archetype::kIndustrial, 0.10, 0.45,
                12, 50);
  plant_patches(config.green_patches, Archetype::kGreenland, 0.0, 0.6, 15,
                70);

  city.informality.assign(n, 0.0f);

  // Old-town confusers: dense historic neighbourhoods whose band overlaps
  // the urban-village transition ring towards the centre. Roughly as many
  // blobs as urban villages so the non-UV labeled set contains hard cases;
  // each blob gets its own degree of UV-likeness.
  {
    const int count = rng_uv.Poisson(config.num_uv_blobs * 0.8);
    for (int b = 0; b < count; ++b) {
      int seed = -1;
      for (int tries = 0; tries < 300; ++tries) {
        const int cand = rng_uv.UniformInt(n);
        const Archetype a = city.archetypes[cand];
        if (score[cand] >= 0.35 && score[cand] <= 0.80 &&
            (a == Archetype::kFormalResidential ||
             a == Archetype::kCommercial)) {
          seed = cand;
          break;
        }
      }
      if (seed < 0) continue;
      const float uv_likeness = static_cast<float>(rng_uv.Uniform(0.2, 0.7));
      const int target = 4 + rng_uv.UniformInt(15);
      auto blob = GrowBlob(
          grid, seed, target,
          [&](int id) {
            const Archetype a = city.archetypes[id];
            return a != Archetype::kGreenland &&
                   a != Archetype::kDowntownCore &&
                   a != Archetype::kOldTown;
          },
          &rng_uv);
      for (int id : blob) {
        city.archetypes[id] = Archetype::kOldTown;
        city.informality[id] = uv_likeness;
      }
    }
  }

  // --- Urban village blobs in the transition ring. -----------------------
  // Each district leans toward a different village style; each blob draws
  // its own informality level around that lean. This is the region
  // diversity the paper's master-slave gate is designed to absorb.
  std::vector<double> district_uv_bias(config.num_districts);
  for (auto& bias : district_uv_bias) bias = rng_uv.Uniform(-0.18, 0.18);
  city.uv_overlap.assign(n, 0.0f);
  city.is_uv.assign(n, 0);
  std::vector<std::vector<int>> uv_blobs;
  for (int b = 0; b < config.num_uv_blobs; ++b) {
    int seed = -1;
    for (int tries = 0; tries < 400; ++tries) {
      const int cand = rng_uv.UniformInt(n);
      const Archetype a = city.archetypes[cand];
      if (score[cand] >= 0.24 && score[cand] <= 0.62 && !city.is_uv[cand] &&
          (a == Archetype::kFormalResidential ||
           a == Archetype::kSuburbResidential)) {
        seed = cand;
        break;
      }
    }
    if (seed < 0) continue;
    const float informality = static_cast<float>(std::clamp(
        rng_uv.Uniform(config.uv_informality_min, config.uv_informality_max) +
            district_uv_bias[city.district[seed]],
        config.uv_informality_min, 1.0));
    const int target =
        config.uv_blob_min_cells +
        rng_uv.UniformInt(config.uv_blob_max_cells - config.uv_blob_min_cells +
                          1);
    auto blob = GrowBlob(
        grid, seed, target,
        [&](int id) {
          const Archetype a = city.archetypes[id];
          return !city.is_uv[id] && a != Archetype::kGreenland &&
                 a != Archetype::kDowntownCore;
        },
        &rng_uv);
    std::vector<int> uv_cells;
    for (size_t i = 0; i < blob.size(); ++i) {
      const int id = blob[i];
      // Interior cells are fully covered; the blob fringe gets partial
      // overlap, which exercises the paper's ">20% overlap" labeling rule.
      const bool fringe = i + std::max<size_t>(2, blob.size() / 3) >= blob.size();
      const float overlap =
          fringe ? static_cast<float>(rng_uv.Uniform(0.05, 0.8)) : 1.0f;
      city.uv_overlap[id] = std::max(city.uv_overlap[id], overlap);
      if (overlap > 0.2f) {
        city.is_uv[id] = 1;
        city.archetypes[id] = Archetype::kUrbanVillage;
        city.informality[id] = informality;
        uv_cells.push_back(id);
      }
    }
    if (!uv_cells.empty()) uv_blobs.push_back(std::move(uv_cells));
  }

  // --- Roads. -------------------------------------------------------------
  std::vector<float> development(n);
  for (int id = 0; id < n; ++id) {
    development[id] = DevelopmentWeight(city.archetypes[id]);
  }
  RoadGenResult roads =
      GenerateRoadNetwork(config, grid, development, &rng_road);
  city.roads = std::move(roads.network);
  city.has_arterial_h = std::move(roads.has_arterial_h);
  city.has_arterial_v = std::move(roads.has_arterial_v);

  // --- POIs. ---------------------------------------------------------------
  // District-level taste perturbation: each district scales each category's
  // weight log-normally, so the same archetype looks slightly different
  // across districts (the diversity the MS-Gate is designed to absorb).
  std::vector<std::vector<double>> district_factor(
      config.num_districts, std::vector<double>(kNumPoiCategories, 1.0));
  for (auto& row : district_factor) {
    for (auto& f : row) f = std::exp(rng_poi.Gaussian(0.0, 0.45));
  }

  city.pois_by_region.assign(n, {});
  std::vector<double> weights(kNumPoiCategories);
  for (int id = 0; id < n; ++id) {
    const ArchetypeProfile prof = EffectiveProfile(city, id);
    const int d = city.district[id];
    const double x0 = grid.ColOf(id) * grid.cell_meters;
    const double y0 = grid.RowOf(id) * grid.cell_meters;
    // Plain category POIs.
    const double intensity =
        prof.poi_intensity * std::exp(rng_poi.Gaussian(0.0, 0.35));
    const int count = rng_poi.Poisson(intensity);
    for (int c = 0; c < kNumPoiCategories; ++c) {
      weights[c] = prof.category_weights[c] * district_factor[d][c];
    }
    for (int k = 0; k < count; ++k) {
      Poi poi;
      poi.category = static_cast<PoiCategory>(rng_poi.Categorical(weights));
      poi.radius_type = RadiusType::kNone;
      poi.facility_type = FacilityOfCategory(poi.category);
      poi.x = x0 + rng_poi.Uniform(0.0, grid.cell_meters);
      poi.y = y0 + rng_poi.Uniform(0.0, grid.cell_meters);
      city.pois_by_region[id].push_back(static_cast<int>(city.pois.size()));
      city.pois.push_back(poi);
    }
    // Radius-anchor POIs (hospitals, schools, stations, ...).
    for (int t = 0; t < kNumRadiusTypes; ++t) {
      const int anchors = rng_poi.Poisson(prof.radius_rate[t]);
      for (int k = 0; k < anchors; ++k) {
        Poi poi;
        poi.radius_type = static_cast<RadiusType>(t);
        poi.category = HostCategory(poi.radius_type);
        poi.facility_type = FacilityOf(poi.radius_type);
        poi.x = x0 + rng_poi.Uniform(0.0, grid.cell_meters);
        poi.y = y0 + rng_poi.Uniform(0.0, grid.cell_meters);
        city.pois_by_region[id].push_back(static_cast<int>(city.pois.size()));
        city.pois.push_back(poi);
      }
    }
  }

  // --- Satellite tiles. ----------------------------------------------------
  // District tints are drawn unconditionally (cheap, and the lazy feature
  // store needs them even when eager rasterization is skipped).
  city.district_tints.clear();
  for (int d = 0; d < config.num_districts; ++d) {
    city.district_tints.push_back(
        {static_cast<float>(rng_img.Uniform(-0.04, 0.04)),
         static_cast<float>(rng_img.Uniform(-0.04, 0.04)),
         static_cast<float>(rng_img.Uniform(-0.04, 0.04))});
  }
  if (config.generate_images) {
    const int s = config.image_size;
    city.images = std::make_shared<Tensor>(n, 3 * s * s);
    // Each region renders from its own TileSeed stream, so chunk layout
    // (and thread count) cannot change the pixels.
    auto& tiles_rendered =
        obs::Registry::Global().GetCounter("synth.tiles_rendered");
    ParallelFor(0, n, 64, [&](int begin, int end) {
      for (int id = begin; id < end; ++id) {
        city.RenderRegionTile(id, city.images->row(id));
      }
      tiles_rendered.Inc(static_cast<uint64_t>(end - begin));
    });
  }

  // --- Labels (crowdsourced ground truth substitution). --------------------
  city.labels.assign(n, -1);
  // Known UVs: whole blobs become known until the target is reached,
  // mimicking renovation plans / news reports that reveal entire villages.
  {
    std::vector<int> order(uv_blobs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    rng_label.Shuffle(&order);
    int labeled = 0;
    for (int bi : order) {
      if (labeled >= config.labeled_uv_target) break;
      for (int id : uv_blobs[bi]) {
        if (labeled >= config.labeled_uv_target) break;
        city.labels[id] = 1;
        ++labeled;
      }
    }
    if (labeled < config.labeled_uv_target) {
      UV_LOG_WARN("city %s: only %d of %d target labeled UVs available",
                  config.name.c_str(), labeled, config.labeled_uv_target);
    }
  }
  // Non-UV labels: sampled residential/commercial areas verified by the
  // crowd (paper Appendix I-C). Old-town cells are over-sampled: they are
  // exactly the UV-lookalikes a renovation survey would double-check, and
  // they keep the labeled classes from being trivially separable.
  {
    std::vector<int> candidates;
    for (int id = 0; id < n; ++id) {
      if (city.is_uv[id] || city.labels[id] != -1) continue;
      const Archetype a = city.archetypes[id];
      if (a == Archetype::kFormalResidential ||
          a == Archetype::kSuburbResidential ||
          a == Archetype::kCommercial || a == Archetype::kDowntownCore ||
          a == Archetype::kIndustrial) {
        candidates.push_back(id);
      } else if (a == Archetype::kOldTown) {
        candidates.push_back(id);
        candidates.push_back(id);  // Double weight in the shuffle draw.
      }
    }
    rng_label.Shuffle(&candidates);
    int taken = 0;
    for (int id : candidates) {
      if (taken >= config.labeled_nonuv_target) break;
      if (city.labels[id] != -1) continue;
      city.labels[id] = 0;
      ++taken;
    }
  }

  UV_LOG_INFO(
      "generated city %s: %dx%d=%d regions, %zu POIs, %d road nodes, "
      "%d true UV cells, %d labeled UV, %d labeled non-UV",
      config.name.c_str(), grid.height, grid.width, n, city.pois.size(),
      city.roads.num_intersections(), city.NumTrueUv(), city.NumLabeledUv(),
      city.NumLabeledNonUv());
  return city;
}

}  // namespace uv::synth
