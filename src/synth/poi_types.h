#ifndef UV_SYNTH_POI_TYPES_H_
#define UV_SYNTH_POI_TYPES_H_

namespace uv::synth {

// The 23 POI categories of the paper's Appendix Table IV (category
// distribution features are ratios over these).
enum class PoiCategory {
  kFoodService = 0,
  kHotel,
  kShoppingPlace,
  kLifeService,
  kBeautyIndustry,
  kScenicSpot,
  kLeisureEntertainment,
  kSportsFitness,
  kEducation,
  kCulturalMedia,
  kMedicine,
  kAutoService,
  kTransportationFacility,
  kFinancialService,
  kRealEstate,
  kCompany,
  kGovernmentApparatus,
  kEntranceExit,
  kTopographicalObject,
  kRoad,
  kRailway,
  kGreenland,
  kBusRoute,
};
inline constexpr int kNumPoiCategories = 23;

// The 15 POI types whose shortest distance defines the radius features
// (paper Appendix Table IV, middle row).
enum class RadiusType {
  kNone = -1,
  kHospital = 0,
  kClinic,
  kCollege,
  kSchool,
  kBusStop,
  kSubwayStation,
  kAirport,
  kTrainStation,
  kCoachStation,
  kShoppingMall,
  kSupermarket,
  kMarket,
  kShop,
  kPoliceStation,
  kScenicSpot,
};
inline constexpr int kNumRadiusTypes = 15;

// The 9 basic-living-facility types for the binary index feature (paper
// Appendix Table IV, bottom row): the index is 1 iff all 9 are within 1 km.
enum class FacilityType {
  kNone = -1,
  kMedicalService = 0,
  kShoppingPlace,
  kSportsVenue,
  kEducationService,
  kFoodService,
  kFinancialService,
  kCommunicationService,
  kPublicSecurityOrgan,
  kTransportationFacility,
};
inline constexpr int kNumFacilityTypes = 9;

const char* PoiCategoryName(PoiCategory c);
const char* RadiusTypeName(RadiusType t);
const char* FacilityTypeName(FacilityType t);

// Category that naturally hosts a given radius type (e.g. Hospital POIs are
// Medicine-category POIs). Used by the generator so radius-type POIs also
// contribute to the category histogram.
PoiCategory HostCategory(RadiusType t);

// Facility type satisfied by a POI of the given radius type, if any
// (e.g. Hospital satisfies MedicalService).
FacilityType FacilityOf(RadiusType t);

// Facility type satisfied directly by a plain category POI (for the
// facilities that are not one of the 15 radius types, e.g. FoodService).
FacilityType FacilityOfCategory(PoiCategory c);

}  // namespace uv::synth

#endif  // UV_SYNTH_POI_TYPES_H_
