#include "synth/image_renderer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace uv::synth {
namespace {

inline float Clamp01(float v) { return std::min(1.0f, std::max(0.0f, v)); }

struct Canvas {
  float* data;  // CHW.
  int size;

  void Set(int x, int y, float r, float g, float b) {
    if (x < 0 || x >= size || y < 0 || y >= size) return;
    const int plane = size * size;
    const int idx = y * size + x;
    data[idx] = Clamp01(r);
    data[plane + idx] = Clamp01(g);
    data[2 * plane + idx] = Clamp01(b);
  }

  void FillRect(int x0, int y0, int w, int h, float r, float g, float b) {
    for (int y = y0; y < y0 + h; ++y) {
      for (int x = x0; x < x0 + w; ++x) Set(x, y, r, g, b);
    }
  }
};

}  // namespace

void RenderTile(const ArchetypeProfile& profile, const float district_tint[3],
                bool road_h, bool road_v, int size, Rng* rng,
                float* out_chw) {
  UV_CHECK_GT(size, 7);
  Canvas canvas{out_chw, size};
  const int plane = size * size;

  // Background with per-pixel noise and the district tint.
  for (int i = 0; i < plane; ++i) {
    const float n =
        static_cast<float>(rng->Gaussian(0.0, profile.noise_level));
    out_chw[i] = Clamp01(profile.base_rgb[0] + district_tint[0] + n);
    out_chw[plane + i] = Clamp01(profile.base_rgb[1] + district_tint[1] + n);
    out_chw[2 * plane + i] =
        Clamp01(profile.base_rgb[2] + district_tint[2] + n);
  }

  // Buildings until target coverage. Regular layouts snap positions to a
  // grid with aligned sizes; irregular layouts scatter random footprints.
  const float target_px = profile.building_density * plane;
  const float mean_edge = profile.building_size;
  const float reg = profile.regularity;
  const int pitch = std::max(2, static_cast<int>(mean_edge + 2.0f));
  float covered = 0.0f;
  int guard = 0;
  while (covered < target_px && guard++ < 4 * plane) {
    int w = std::max(
        1, static_cast<int>(mean_edge * rng->Uniform(0.7, 1.4)));
    int h = std::max(
        1, static_cast<int>(mean_edge * rng->Uniform(0.7, 1.4)));
    if (reg > 0.5f) {
      // Regular blocks share the same footprint.
      w = std::max(2, static_cast<int>(mean_edge));
      h = w;
    }
    const int free_x = std::max(1, size - w);
    const int free_y = std::max(1, size - h);
    int x = rng->UniformInt(free_x);
    int y = rng->UniformInt(free_y);
    // Snap toward the lattice proportionally to the regularity.
    const int sx = (x / pitch) * pitch + 1;
    const int sy = (y / pitch) * pitch + 1;
    x = static_cast<int>(reg * sx + (1.0f - reg) * x);
    y = static_cast<int>(reg * sy + (1.0f - reg) * y);
    const float shade = static_cast<float>(rng->Uniform(0.85, 1.1));
    canvas.FillRect(x, y, w, h, profile.building_rgb[0] * shade,
                    profile.building_rgb[1] * shade,
                    profile.building_rgb[2] * shade);
    // One-pixel shadow along the bottom edge (sun from the north-west).
    canvas.FillRect(x, y + h, w, 1, profile.building_rgb[0] * 0.4f,
                    profile.building_rgb[1] * 0.4f,
                    profile.building_rgb[2] * 0.4f);
    covered += static_cast<float>(w) * h;
  }

  // Arterial road bands.
  const float road_tone = 0.55f;
  if (road_h) {
    const int y = size / 2 + rng->UniformInt(5) - 2;
    canvas.FillRect(0, y - 1, size, 3, road_tone, road_tone, road_tone);
  }
  if (road_v) {
    const int x = size / 2 + rng->UniformInt(5) - 2;
    canvas.FillRect(x - 1, 0, 3, size, road_tone, road_tone, road_tone);
  }
}

}  // namespace uv::synth
