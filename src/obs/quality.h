#ifndef UV_OBS_QUALITY_H_
#define UV_OBS_QUALITY_H_

// Model-quality observability: drift detection against a training-time
// baseline, score calibration tracking, and the sketches both are built on.
//
// A QualityBaseline is captured once at SaveModel time (per-feature-column
// quantile edges + bin counts + moments over the encoded region features,
// the training score histogram, and calibration bins over the labeled
// training ids) and rides inside the v2 UVCK checkpoint. A QualityMonitor
// then accumulates the same sketches over *served* batches and compares
// them to the baseline with PSI / KL divergence, publishing everything as
// the `quality.*` / `drift.*` registry families (exporter + JSONL sinks
// pick them up like any other metric).
//
// Determinism contract: every serving-side sketch is built exclusively
// from commutative integer atomics (bin counts, fixed-point sums), so the
// merged sketch is bit-identical regardless of UV_THREADS, UV_POOL, or how
// requests were batched together. PSI is computed from bin *proportions*;
// IEEE-754 division is correctly rounded, so serving the training city k
// times yields counts k*c_i over total k*N whose proportions equal the
// baseline's c_i/N bit-for-bit, every PSI term short-circuits on p == q,
// and the reported PSI is exactly 0.0 — a tested invariant, not an
// approximation.
//
// Layering: obs sits below tensor, so the observation API takes raw
// row-major float pointers; engines pass their gathered trunk workspace.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace uv::obs {

class Counter;
class Gauge;
class Histogram;
class WindowedHistogram;

// ---------------------------------------------------------------------------
// Baseline: the training-time reference distribution embedded in the
// checkpoint. Plain vectors/arrays so io can serialize it with the same
// pod-writer idiom as the rest of the UVCK container.
// ---------------------------------------------------------------------------

struct QualityBaseline {
  static constexpr int kFeatureBins = 10;  // Deciles of each feature column.
  static constexpr int kScoreBins = 20;    // Fixed-width bins over [0, 1].
  static constexpr int kCalibBins = 10;    // Reliability bins over [0, 1].

  struct Column {
    float edges[kFeatureBins - 1] = {};  // Ascending interior bin edges.
    uint64_t counts[kFeatureBins] = {};  // Training histogram over edges.
    float mean = 0.0f;
    float stdev = 0.0f;  // Population standard deviation.
  };

  std::vector<Column> columns;             // One per encoded feature column.
  uint64_t score_counts[kScoreBins] = {};  // Training score histogram.

  // Reliability bins over the labeled training ids: per predicted-score
  // bin, the sample count, the exact score sum, and the positive count.
  uint64_t calib_count[kCalibBins] = {};
  double calib_score_sum[kCalibBins] = {};
  uint64_t calib_pos[kCalibBins] = {};

  bool empty() const { return columns.empty(); }

  // Shared binning rules — the baseline builder and the serving monitor
  // MUST agree bit-for-bit, so they live here. FeatureBin returns the
  // first bin whose edge is >= v (values equal to an edge fall low);
  // Score/CalibBin clamp floor(v * bins) into [0, bins).
  static int FeatureBin(float v, const float* edges);
  static int ScoreBin(float s);
  static int CalibBin(float s);
};

// Builds the training-time baseline. `features` is n x d row-major (the
// encoded region representations), `scores` holds n_scores predicted
// probabilities (typically every region of the training city), and the
// labeled triple feeds the calibration bins (scores over the training ids
// paired with their ground-truth labels; pass n_labeled = 0 when labels
// are unavailable). Quantile edges are exact ranks of the sorted column,
// so the construction is deterministic for a fixed input.
QualityBaseline BuildQualityBaseline(const float* features, int64_t n, int d,
                                     const float* scores, int64_t n_scores,
                                     const float* labeled_scores,
                                     const int* labels, int64_t n_labeled);

// ---------------------------------------------------------------------------
// Divergence / calibration math, exposed for tests and tools. All operate
// on integer count arrays and convert to proportions internally; terms
// with identical proportions are skipped before any epsilon flooring, so
// proportional inputs give exactly 0.0.
// ---------------------------------------------------------------------------

double PopulationStabilityIndex(const uint64_t* expected,
                                const uint64_t* actual, int k);
double KlDivergence(const uint64_t* expected, const uint64_t* actual, int k);

// ECE over reliability bins: sum_b (count_b / total) *
// |score_sum_b / count_b - pos_b / count_b|.
double ExpectedCalibrationError(const uint64_t* count,
                                const double* score_sum, const uint64_t* pos,
                                int k);

// ---------------------------------------------------------------------------
// Streaming monitor.
// ---------------------------------------------------------------------------

struct QualityOptions {
  // PSI above this (feature max or score) raises the drift alert.
  double psi_alert = 0.2;

  // Rolling window (in labeled samples) for precision/recall; the ring is
  // preallocated. ECE uses cumulative integer bins instead, so it stays
  // order-independent.
  int label_window = 4096;

  // Auto-publish cadence: recompute drift and refresh the registry gauges
  // every this many observed batches (0 = manual Publish() only).
  int publish_every_batches = 32;

  // Reads UV_PSI_ALERT / UV_LABEL_WINDOW (non-positive or unset values
  // keep the defaults).
  static QualityOptions FromEnv();
};

struct DriftReport {
  bool has_baseline = false;
  uint64_t feature_rows = 0;  // Rows observed into the feature sketches.
  uint64_t scores = 0;        // Scores observed into the score histogram.
  int columns = 0;
  double feature_psi_max = 0.0;
  int feature_psi_argmax = -1;  // Column achieving the max (-1 when none).
  double feature_psi_mean = 0.0;
  // Max over columns of |serving mean - baseline mean| / max(stdev, 1e-6).
  double feature_mean_zshift_max = 0.0;
  double score_psi = 0.0;
  double score_kl = 0.0;  // KL(serving || baseline) over score bins.
  bool alert = false;     // PSI (feature max or score) above threshold.
};

struct CalibrationReport {
  uint64_t labels = 0;        // Cumulative labeled samples observed.
  double ece = 0.0;           // Cumulative serving ECE.
  double baseline_ece = 0.0;  // Training-time ECE from the checkpoint.
  uint64_t window_labels = 0;  // Samples in the rolling ring.
  double precision = 0.0;      // Rolling, threshold 0.5.
  double recall = 0.0;         // Rolling, threshold 0.5.
};

// Accumulates serving-side sketches and publishes drift/calibration
// metrics. ObserveBatch/ObserveLabels are thread-safe, wait-free (relaxed
// atomics only) and allocation-free; Compute*/Publish are mutex-guarded
// and cheap enough for a per-batch cadence.
//
// Registry families (micro-unit gauges carry doubles as round(v * 1e6)):
//   quality.feature_rows   counter   rows observed into feature sketches
//   quality.scores         counter   scores observed
//   quality.labels         counter   delayed labels observed
//   quality.score_e6       histogram + rolling window, score * 1e6
//   quality.ece_e6         gauge     cumulative serving ECE
//   quality.precision_e6   gauge     rolling precision at 0.5
//   quality.recall_e6      gauge     rolling recall at 0.5
//   drift.feature_psi_max_e6 / drift.feature_psi_mean_e6   gauges
//   drift.score_psi_e6 / drift.score_kl_e6                 gauges
//   drift.alert            gauge     1 while PSI exceeds the threshold
//   drift.alerts           counter   rising edges of drift.alert
class QualityMonitor {
 public:
  explicit QualityMonitor(QualityBaseline baseline,
                          QualityOptions options = QualityOptions::FromEnv());

  // Observes one served batch: n rows of d features (row-major) and their
  // n scores. Feature sketches require d == baseline columns; mismatched
  // batches still feed the score histogram but bump
  // quality.feature_dim_mismatch instead of corrupting the sketches.
  void ObserveBatch(const float* features, int n, int d, const float* scores);

  // Delayed ground-truth feedback: the scores the caller was *served*
  // paired with labels that arrived later. Feeds ECE bins and the rolling
  // precision/recall ring; never re-scores, so drift sketches stay pure.
  void ObserveLabels(const float* scores, const int* labels, int n);

  DriftReport ComputeDrift() const;
  CalibrationReport ComputeCalibration() const;

  // Recomputes both reports, refreshes every gauge, bumps drift.alerts on
  // a rising alert edge, and appends a {"kind":"quality",...} JSONL record
  // when the metrics log is open.
  void Publish();

  // Clears the serving-side sketches (not the baseline). Tests only.
  void Reset();

  const QualityBaseline& baseline() const { return baseline_; }
  const QualityOptions& options() const { return options_; }

 private:
  const QualityBaseline baseline_;
  const QualityOptions options_;

  // Serving-side sketches: flattened columns x kFeatureBins counts plus a
  // per-column fixed-point sum (v * 65536, llround) for mean drift.
  std::vector<std::atomic<uint64_t>> feature_counts_;
  std::vector<std::atomic<int64_t>> feature_sum_fp_;
  std::atomic<uint64_t> feature_rows_{0};
  std::atomic<uint64_t> score_counts_[QualityBaseline::kScoreBins] = {};
  std::atomic<uint64_t> scores_seen_{0};
  std::atomic<uint64_t> batches_seen_{0};

  // Calibration: cumulative integer bins (order-independent ECE; scores
  // enter as fixed-point score * 2^24) plus the rolling label ring.
  std::atomic<uint64_t> calib_count_[QualityBaseline::kCalibBins] = {};
  std::atomic<int64_t> calib_score_fp_[QualityBaseline::kCalibBins] = {};
  std::atomic<uint64_t> calib_pos_[QualityBaseline::kCalibBins] = {};
  std::atomic<uint64_t> labels_seen_{0};

  mutable std::mutex ring_mu_;
  std::vector<std::pair<float, int>> ring_;  // Preallocated label_window.
  size_t ring_next_ = 0;
  uint64_t ring_total_ = 0;

  std::mutex publish_mu_;
  bool last_alert_ = false;

  // Registry handles resolved once at construction (Get* takes a string;
  // the observation path must stay allocation-free).
  Counter& feature_rows_total_;
  Counter& scores_total_;
  Counter& labels_total_;
  Counter& dim_mismatch_total_;
  Counter& alerts_total_;
  Gauge& alert_gauge_;
  Gauge& feature_psi_max_gauge_;
  Gauge& feature_psi_mean_gauge_;
  Gauge& score_psi_gauge_;
  Gauge& score_kl_gauge_;
  Gauge& ece_gauge_;
  Gauge& precision_gauge_;
  Gauge& recall_gauge_;
  Histogram& score_hist_;
  WindowedHistogram& score_window_;
};

}  // namespace uv::obs

#endif  // UV_OBS_QUALITY_H_
