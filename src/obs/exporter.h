#ifndef UV_OBS_EXPORTER_H_
#define UV_OBS_EXPORTER_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace uv::obs {

// Live metrics exporter: a background thread that periodically snapshots
// the registry and atomically rewrites two sibling files —
//
//   <path>       Prometheus text exposition format (scrape it, or point
//                node_exporter's textfile collector at it)
//   <path>.json  the same snapshot as one JSON document
//                ("uv-metrics-export-v1"), for jq / dashboards
//
// Atomicity: each cycle writes to <file>.tmp in the same directory and
// renames over the target, so a concurrent reader always sees a complete
// file from some cycle, never a torn one.
//
// Activation: UV_EXPORT=<path> in the environment (interval from
// UV_EXPORT_INTERVAL_MS, default 1000) — the obs bootstrap starts the
// thread at process load and stops it (with one final export) at exit —
// or StartExporter/StopExporter programmatically.

struct ExporterOptions {
  std::string path;        // Prometheus file; "<path>.json" rides along.
  int interval_ms = 1000;  // Clamped to >= 10.

  // UV_EXPORT / UV_EXPORT_INTERVAL_MS; path empty when UV_EXPORT is unset.
  static ExporterOptions FromEnv();
};

// Starts the exporter thread. Returns false (and leaves any running
// exporter untouched) if one is already running or the path is empty.
bool StartExporter(const ExporterOptions& opts);

// Stops the thread after one final export. No-op when not running.
void StopExporter();

bool ExporterEnabled();

// Completed export cycles since StartExporter (tests poll this to await a
// rewrite).
uint64_t ExporterWriteCount();

// One synchronous export of the current registry state to <path> and
// <path>.json, with the same atomic-rename discipline as the background
// thread. Returns false if either file could not be written.
bool ExportNow(const std::string& path);

// Renderers behind ExportNow, exposed for tests and one-off dumps.
// ts_us is the export timestamp on the NowMicros timeline.
std::string RenderPrometheus(const RegistrySnapshot& snap, uint64_t ts_us);
std::string RenderJsonExport(const RegistrySnapshot& snap, uint64_t ts_us);

}  // namespace uv::obs

#endif  // UV_OBS_EXPORTER_H_
