#ifndef UV_OBS_WINDOWED_H_
#define UV_OBS_WINDOWED_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace uv::obs {

// Rolling-window histogram: percentiles over the last `window_us`
// microseconds rather than since process start. The window is a ring of
// kNumSlots per-epoch bucket arrays (same power-of-two bucket layout as
// Histogram, so windowed and cumulative views of one metric agree on
// bucket edges); an epoch is window_us / kNumSlots long, the slot for
// epoch e is e % kNumSlots, and slots are rotated lazily by whichever
// recorder first lands in a new epoch. Rotation is the only locked path;
// Record in the common case is a clock read plus three relaxed RMWs.
//
// Rotation safety: each slot carries its epoch tag and an in-flight writer
// count. A writer pins the slot (writers++), re-checks the tag, and only
// then records; the rotating thread (under rotate_mu_) waits for pinned
// writers to drain before zeroing, so no sample is ever half-counted or
// leaked across an epoch boundary. A writer whose epoch lost the race to a
// newer one folds its sample into the newer epoch (counted once, slightly
// late) instead of dropping it.
//
// The clock is injected (obs::Clock) so tests drive rotation with a
// FakeClock; registry-owned instances use DefaultClock().
class WindowedHistogram {
 public:
  static constexpr int kNumBuckets = Histogram::kNumBuckets;
  static constexpr int kNumSlots = 8;

  // window_us is rounded down to a multiple of kNumSlots (minimum one
  // microsecond per epoch). clock == nullptr means DefaultClock().
  explicit WindowedHistogram(uint64_t window_us,
                             const Clock* clock = nullptr);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Record(uint64_t value);

  // Merged view over the slots still inside the window (the snapshot is a
  // statistical read, not a consistent cut, like every registry metric).
  // Percentiles use the shared nearest-rank bucket-lower-bound convention.
  WindowedHistogramSnapshot Snapshot() const;

  uint64_t window_us() const { return epoch_us_ * kNumSlots; }

  // Drops every slot (ResetAll / tests). Waits for in-flight writers.
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};
    std::atomic<uint32_t> writers{0};
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };

  // Advances `slot` to `target_epoch` (zeroing its counts) unless another
  // thread already moved it at least that far.
  void Rotate(Slot& slot, uint64_t target_epoch);

  const Clock* const clock_;
  const uint64_t epoch_us_;
  mutable std::mutex rotate_mu_;
  Slot slots_[kNumSlots];
};

}  // namespace uv::obs

#endif  // UV_OBS_WINDOWED_H_
