#include "obs/metrics.h"

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace uv::obs {

namespace internal {

int ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards);
  return shard;
}

}  // namespace internal

double Histogram::Percentile(double p) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(p/100 * total) samples.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen > rank) return static_cast<double>(BucketLowerBound(b));
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

// Name-keyed tables. Metrics are held by unique_ptr for address stability
// and the whole Impl is leaked with the Registry, so references handed out
// by Get* stay valid through any phase of process teardown.
struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // Leaky singleton.
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot.reset(new Counter);
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (!slot) slot.reset(new Gauge);
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (!slot) slot.reset(new Histogram);
  return *slot;
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->Count();
    hs.sum = h->Sum();
    hs.p50 = h->Percentile(50.0);
    hs.p95 = h->Percentile(95.0);
    hs.p99 = h->Percentile(99.0);
    hs.buckets.resize(Histogram::kNumBuckets);
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      hs.buckets[b] = h->BucketCount(b);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string Registry::ToJson() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{";
    std::snprintf(buf, sizeof(buf), "\"count\":%llu,\"sum\":%llu",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.0f,\"p95\":%.0f,\"p99\":%.0f",
                  h.p50, h.p95, h.p99);
    out += buf;
    out += ",\"buckets\":[";
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (b > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
}

}  // namespace uv::obs
