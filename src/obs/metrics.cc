#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/windowed.h"

namespace uv::obs {

namespace internal {

int ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards);
  return shard;
}

}  // namespace internal

double Histogram::PercentileFromCounts(const uint64_t counts[kNumBuckets],
                                       double p) {
  uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) total += counts[b];
  if (total == 0) return 0.0;
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(p/100 * total) samples.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen > rank) return static_cast<double>(BucketLowerBound(b));
  }
  return static_cast<double>(BucketLowerBound(kNumBuckets - 1));
}

double Histogram::Percentile(double p) const {
  uint64_t counts[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return PercentileFromCounts(counts, p);
}

// Name-keyed tables, sharded by name hash: first-lookups from concurrently
// starting subsystems (kernels, server, exporter) take different mutexes.
// Metrics are held by unique_ptr for address stability and the whole Impl
// is leaked with the Registry, so references handed out by Get* stay valid
// through any phase of process teardown. Snapshot/ResetAll walk every
// shard; Snapshot sorts the merged result so output order is independent
// of both shard assignment and registration order.
struct Registry::Impl {
  static constexpr int kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
    std::unordered_map<std::string, std::unique_ptr<WindowedHistogram>>
        windowed;
  };

  Shard& ShardFor(const std::string& name) {
    return shards[std::hash<std::string>{}(name) % kShards];
  }

  Shard shards[kShards];
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Global() {
  static Registry* registry = new Registry;  // Leaky singleton.
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  Impl::Shard& shard = impl_->ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (!slot) slot.reset(new Counter);
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  Impl::Shard& shard = impl_->ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (!slot) slot.reset(new Gauge);
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  Impl::Shard& shard = impl_->ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (!slot) slot.reset(new Histogram);
  return *slot;
}

WindowedHistogram& Registry::GetWindowed(const std::string& name,
                                         uint64_t window_us,
                                         const Clock* clock) {
  Impl::Shard& shard = impl_->ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.windowed[name];
  if (!slot) slot.reset(new WindowedHistogram(window_us, clock));
  return *slot;
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  for (const Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) {
      snap.counters.emplace_back(name, c->Value());
    }
    for (const auto& [name, g] : shard.gauges) {
      snap.gauges.emplace_back(name, g->Value());
    }
    for (const auto& [name, h] : shard.histograms) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.count = h->Count();
      hs.sum = h->Sum();
      hs.p50 = h->Percentile(50.0);
      hs.p95 = h->Percentile(95.0);
      hs.p99 = h->Percentile(99.0);
      hs.buckets.resize(Histogram::kNumBuckets);
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        hs.buckets[b] = h->BucketCount(b);
      }
      snap.histograms.push_back(std::move(hs));
    }
    for (const auto& [name, w] : shard.windowed) {
      WindowedHistogramSnapshot ws = w->Snapshot();
      ws.name = name;
      snap.windowed.push_back(std::move(ws));
    }
  }
  // Deterministic emission order regardless of shard/registration
  // interleaving: exporter diffs and golden tests rely on it.
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.windowed.begin(), snap.windowed.end(),
            [](const WindowedHistogramSnapshot& a,
               const WindowedHistogramSnapshot& b) { return a.name < b.name; });
  return snap;
}

std::string Registry::ToJson() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += '"';
    out += name;
    out += "\":";
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += h.name;
    out += "\":{";
    std::snprintf(buf, sizeof(buf), "\"count\":%llu,\"sum\":%llu",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.0f,\"p95\":%.0f,\"p99\":%.0f",
                  h.p50, h.p95, h.p99);
    out += buf;
    out += ",\"buckets\":[";
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (b > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    out += "]}";
  }
  out += "},\"windowed\":{";
  first = true;
  for (const auto& w : snap.windowed) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += w.name;
    out += "\":{";
    std::snprintf(buf, sizeof(buf),
                  "\"window_us\":%llu,\"count\":%llu,\"sum\":%llu",
                  static_cast<unsigned long long>(w.window_us),
                  static_cast<unsigned long long>(w.count),
                  static_cast<unsigned long long>(w.sum));
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.0f,\"p95\":%.0f,\"p99\":%.0f",
                  w.p50, w.p95, w.p99);
    out += buf;
    out += '}';
  }
  out += "}}";
  return out;
}

void Registry::ResetAll() {
  for (Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, c] : shard.counters) c->Reset();
    for (auto& [name, g] : shard.gauges) g->Reset();
    for (auto& [name, h] : shard.histograms) h->Reset();
    for (auto& [name, w] : shard.windowed) w->Reset();
  }
}

}  // namespace uv::obs
