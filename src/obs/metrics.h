#ifndef UV_OBS_METRICS_H_
#define UV_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace uv::obs {

// ---------------------------------------------------------------------------
// Metric primitives. All three are wait-free on the write path (relaxed
// atomics only), safe to call from any thread at any point of the process
// lifetime, and never deallocated once registered — callers cache the
// reference returned by Registry::Get* in a function-local static and the
// per-update cost is one or two relaxed atomic RMWs.
// ---------------------------------------------------------------------------

namespace internal {
// Stable small id per thread, used to spread counter updates over shards so
// hot counters (BufferPool acquire/release) do not serialize on one cache
// line. Ids are assigned on first use and never reused; only id % kShards
// matters, so wraparound is harmless.
int ThreadShard();
}  // namespace internal

// Monotonic event counter, lock-sharded over cache-line-padded atomics.
class Counter {
 public:
  static constexpr int kShards = 8;

  void Inc(uint64_t delta = 1) {
    shards_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Sum over all shards. Monotone between Resets but not a consistent cut
  // against concurrent writers (like any statistical counter).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Last-writer-wins instantaneous value (queue depth, wait time, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket power-of-two histogram for non-negative integer samples
// (latencies in microseconds throughout this codebase). Bucket 0 holds the
// value 0; bucket b >= 1 holds [2^(b-1), 2^b); the last bucket is
// open-ended. Fixed buckets keep Record a single fetch_add with no
// allocation and make snapshots trivially mergeable.
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  static int BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    const int b = std::bit_width(value);  // floor(log2(v)) + 1 for v >= 1.
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  // Inclusive lower edge of bucket b.
  static uint64_t BucketLowerBound(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  // Nearest-rank percentile (p in [0, 100]), reported as the lower edge of
  // the bucket holding that rank — deterministic and never an invented
  // value between samples. Returns 0 on an empty histogram.
  double Percentile(double p) const;

  // The same nearest-rank bucket-lower-bound percentile over an externally
  // merged bucket array (kNumBuckets entries) — shared with
  // WindowedHistogram so windowed and cumulative views of one metric use
  // identical percentile math.
  static double PercentileFromCounts(const uint64_t counts[kNumBuckets],
                                     double p);

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Histogram() = default;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Registry: the process-wide name -> metric table, sharded by name hash so
// concurrent first-lookups from different subsystems do not serialize on
// one mutex. Lookup is expected once per call site (cache the reference in
// a static); the returned references stay valid forever (metrics are never
// destroyed, so updates during thread/process teardown are safe).
// ---------------------------------------------------------------------------

class Clock;
class WindowedHistogram;

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<uint64_t> buckets;  // kNumBuckets entries.
};

struct WindowedHistogramSnapshot {
  std::string name;
  uint64_t window_us = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Point-in-time copy of every registered metric. Every section is sorted
// by name — snapshot order is a documented contract (exporter output and
// golden tests diff cleanly), independent of registration interleaving or
// which hash shard a name lands in.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<WindowedHistogramSnapshot> windowed;
};

class Registry {
 public:
  // Leaky process-wide instance (safe during static teardown).
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Rolling-window companion to GetHistogram. The first call for a name
  // fixes its window (and clock — nullptr means DefaultClock()); later
  // calls return the same instance and ignore the arguments, like every
  // other Get*. Default window: 60 seconds.
  WindowedHistogram& GetWindowed(const std::string& name,
                                 uint64_t window_us = 60ull * 1000 * 1000,
                                 const Clock* clock = nullptr);

  RegistrySnapshot Snapshot() const;

  // Snapshot rendered as one JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{name:{...}},
  //    "windowed":{name:{...}}}
  std::string ToJson() const;

  // Zeroes every registered metric (tests/benchmarks).
  void ResetAll();

 private:
  Registry();
  struct Impl;
  Impl* const impl_;
};

}  // namespace uv::obs

#endif  // UV_OBS_METRICS_H_
