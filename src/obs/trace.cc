#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/metrics_log.h"

namespace uv::obs {
namespace {

// Per-thread bounded span storage. kCoarse spans number in the thousands
// for a full cross-validation (folds x epochs x a handful of components);
// kFine spans (every Gemm / conv image batch / parallel chunk) are orders
// of magnitude more frequent, so they get their own, larger buffer and
// overflow first without ever displacing the structural spans.
constexpr size_t kCoarseCap = size_t{1} << 14;  // 16384 spans.
constexpr size_t kFineCap = size_t{1} << 16;    // 65536 spans.

struct SpanRecord {
  const char* name;
  const char* k0;  // nullptr = no args.
  const char* k1;
  uint64_t begin_us;
  uint64_t dur_us;
  int64_t v0;
  int64_t v1;
};

struct SpanBuffer {
  explicit SpanBuffer(uint32_t tid_in) : tid(tid_in) {
    coarse.resize(kCoarseCap);
    fine.resize(kFineCap);
  }

  // Written only by the owning thread; sizes are published with release so
  // the flusher (after quiescing writers) reads complete records.
  std::vector<SpanRecord> coarse, fine;
  std::atomic<uint32_t> coarse_size{0}, fine_size{0};
  std::atomic<uint64_t> dropped{0};
  const uint32_t tid;

  void Push(SpanLevel level, const SpanRecord& rec) {
    std::vector<SpanRecord>& store =
        level == SpanLevel::kCoarse ? coarse : fine;
    std::atomic<uint32_t>& size =
        level == SpanLevel::kCoarse ? coarse_size : fine_size;
    const uint32_t n = size.load(std::memory_order_relaxed);
    if (n >= store.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    store[n] = rec;
    size.store(n + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<SpanBuffer*> buffers;  // Leaked; stable across thread exit.
  std::atomic<uint32_t> next_tid{1};
  std::string path;
  bool started = false;
};

// Function-local so any static-initialization-order interleaving (spans
// fired from other TUs' static constructors) finds a constructed state.
TraceState& State() {
  static TraceState* state = new TraceState;
  return *state;
}

thread_local SpanBuffer* tls_buffer = nullptr;

SpanBuffer* Buffer() {
  if (tls_buffer != nullptr) return tls_buffer;
  TraceState& state = State();
  auto* buf = new SpanBuffer(
      state.next_tid.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(buf);
  }
  tls_buffer = buf;
  return buf;
}

void WriteEvent(FILE* f, const SpanRecord& rec, uint32_t tid, char phase,
                uint64_t ts) {
  std::fprintf(f, ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%llu,"
               "\"pid\":1,\"tid\":%u",
               rec.name, phase, static_cast<unsigned long long>(ts), tid);
  if (phase == 'B' && rec.k0 != nullptr) {
    std::fprintf(f, ",\"args\":{\"%s\":%lld", rec.k0,
                 static_cast<long long>(rec.v0));
    if (rec.k1 != nullptr) {
      std::fprintf(f, ",\"%s\":%lld", rec.k1, static_cast<long long>(rec.v1));
    }
    std::fputs("}", f);
  }
  std::fputs("}", f);
}

void WriteBuffer(FILE* f, const SpanBuffer& buf,
                 const std::vector<SpanRecord>& store, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    const SpanRecord& rec = store[i];
    WriteEvent(f, rec, buf.tid, 'B', rec.begin_us);
    WriteEvent(f, rec, buf.tid, 'E', rec.begin_us + rec.dur_us);
  }
}

// Reads UV_TRACE / UV_METRICS at load time and flushes both sinks at exit.
// Lives in this TU so linking any span site pulls the bootstrap in.
struct ObsBootstrap {
  ObsBootstrap() {
    if (const char* path = std::getenv("UV_TRACE")) {
      if (path[0] != '\0') StartTrace(path);
    }
    if (const char* path = std::getenv("UV_METRICS")) {
      if (path[0] != '\0') OpenMetricsLog(path);
    }
  }
  ~ObsBootstrap() {
    if (TraceEnabled()) StopTrace();
    CloseMetricsLog();
  }
};
ObsBootstrap g_bootstrap;

}  // namespace

namespace internal {

std::atomic<bool> g_trace_on{false};

void EndSpan(const char* name, SpanLevel level, uint64_t begin_us,
             const char* k0, int64_t v0, const char* k1, int64_t v1) {
  // Re-check: StopTrace may have raced with this span's lifetime; dropping
  // the record keeps the flusher from reading a buffer mid-write.
  if (!TraceEnabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.k0 = k0;
  rec.k1 = k1;
  rec.begin_us = begin_us;
  rec.dur_us = NowMicros() - begin_us;
  rec.v0 = v0;
  rec.v1 = v1;
  Buffer()->Push(level, rec);
}

}  // namespace internal

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

bool ProfilingActive() { return TraceEnabled() || MetricsLogEnabled(); }

void StartTrace(const std::string& path) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (SpanBuffer* buf : state.buffers) {
    buf->coarse_size.store(0, std::memory_order_relaxed);
    buf->fine_size.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
  }
  state.path = path;
  state.started = true;
  internal::g_trace_on.store(true, std::memory_order_release);
}

bool StopTrace() {
  TraceState& state = State();
  internal::g_trace_on.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.started) return false;
  state.started = false;

  FILE* f = std::fopen(state.path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"uv-cmsf\"}}",
      f);
  for (const SpanBuffer* buf : state.buffers) {
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"uv thread %u\"}}",
                 buf->tid, buf->tid);
    WriteBuffer(f, *buf, buf->coarse,
                buf->coarse_size.load(std::memory_order_acquire));
    WriteBuffer(f, *buf, buf->fine,
                buf->fine_size.load(std::memory_order_acquire));
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

uint64_t TraceDroppedSpans() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const SpanBuffer* buf : state.buffers) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace uv::obs
