#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/metrics_log.h"

namespace uv::obs {
namespace {

// Per-thread bounded span storage. kCoarse spans number in the thousands
// for a full cross-validation (folds x epochs x a handful of components);
// kFine spans (every Gemm / conv image batch / parallel chunk) are orders
// of magnitude more frequent, so they get their own, larger buffer and
// overflow first without ever displacing the structural spans.
constexpr size_t kCoarseCap = size_t{1} << 14;  // 16384 spans.
constexpr size_t kFineCap = size_t{1} << 16;    // 65536 spans.

struct SpanRecord {
  const char* name;
  const char* k0;  // nullptr = no args.
  const char* k1;
  uint64_t begin_us;
  uint64_t dur_us;
  int64_t v0;
  int64_t v1;
};

struct SpanBuffer {
  explicit SpanBuffer(uint32_t tid_in) : tid(tid_in) {
    coarse.resize(kCoarseCap);
    fine.resize(kFineCap);
  }

  // Written only by the owning thread; sizes are published with release so
  // the flusher (after quiescing writers) reads complete records.
  std::vector<SpanRecord> coarse, fine;
  std::atomic<uint32_t> coarse_size{0}, fine_size{0};
  std::atomic<uint64_t> dropped_coarse{0}, dropped_fine{0};
  const uint32_t tid;

  void Push(SpanLevel level, const SpanRecord& rec) {
    std::vector<SpanRecord>& store =
        level == SpanLevel::kCoarse ? coarse : fine;
    std::atomic<uint32_t>& size =
        level == SpanLevel::kCoarse ? coarse_size : fine_size;
    const uint32_t n = size.load(std::memory_order_relaxed);
    if (n >= store.size()) {
      CountDrop(level);
      return;
    }
    store[n] = rec;
    size.store(n + 1, std::memory_order_release);
  }

  // Buffer-full drops are surfaced two ways: per-buffer atomics feed
  // TraceDroppedSpans (per Start/Stop experiment, reset on StartTrace) and
  // process-lifetime registry counters feed the exporter, so a scrape of a
  // running server shows trace loss without stopping the trace.
  void CountDrop(SpanLevel level) {
    static Counter& coarse_drops =
        Registry::Global().GetCounter("trace.dropped_coarse");
    static Counter& fine_drops =
        Registry::Global().GetCounter("trace.dropped_fine");
    if (level == SpanLevel::kCoarse) {
      dropped_coarse.fetch_add(1, std::memory_order_relaxed);
      coarse_drops.Inc();
    } else {
      dropped_fine.fetch_add(1, std::memory_order_relaxed);
      fine_drops.Inc();
    }
  }
};

struct TraceState {
  std::mutex mu;
  std::vector<SpanBuffer*> buffers;  // Leaked; stable across thread exit.
  std::atomic<uint32_t> next_tid{1};
  std::string path;
  bool started = false;
};

// Function-local so any static-initialization-order interleaving (spans
// fired from other TUs' static constructors) finds a constructed state.
TraceState& State() {
  static TraceState* state = new TraceState;
  return *state;
}

thread_local SpanBuffer* tls_buffer = nullptr;

SpanBuffer* Buffer() {
  if (tls_buffer != nullptr) return tls_buffer;
  TraceState& state = State();
  auto* buf = new SpanBuffer(
      state.next_tid.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(buf);
  }
  tls_buffer = buf;
  return buf;
}

void WriteEvent(FILE* f, const SpanRecord& rec, uint32_t tid, char phase,
                uint64_t ts) {
  std::fprintf(f, ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%llu,"
               "\"pid\":1,\"tid\":%u",
               rec.name, phase, static_cast<unsigned long long>(ts), tid);
  if (phase == 'B' && rec.k0 != nullptr) {
    std::fprintf(f, ",\"args\":{\"%s\":%lld", rec.k0,
                 static_cast<long long>(rec.v0));
    if (rec.k1 != nullptr) {
      std::fprintf(f, ",\"%s\":%lld", rec.k1, static_cast<long long>(rec.v1));
    }
    std::fputs("}", f);
  }
  std::fputs("}", f);
}

void WriteBuffer(FILE* f, const SpanBuffer& buf,
                 const std::vector<SpanRecord>& store, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    const SpanRecord& rec = store[i];
    WriteEvent(f, rec, buf.tid, 'B', rec.begin_us);
    WriteEvent(f, rec, buf.tid, 'E', rec.begin_us + rec.dur_us);
  }
}

// Sampling threshold over the full uint64 hash range. Stored alongside the
// raw rate so TraceSampleRate() reports back exactly what was set.
std::atomic<uint64_t> g_sample_threshold{~uint64_t{0}};
std::atomic<double> g_sample_rate{1.0};

// splitmix64 finalizer: sequential request ids map to well-spread hashes,
// so sampling at rate r keeps ~r of requests without aliasing against
// batch size or arrival order.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Reads UV_TRACE / UV_METRICS / UV_TRACE_SAMPLE / UV_EXPORT at load time
// and flushes every sink at exit. Lives in this TU so linking any span
// site pulls the bootstrap in.
struct ObsBootstrap {
  ObsBootstrap() {
    if (const char* path = std::getenv("UV_TRACE")) {
      if (path[0] != '\0') StartTrace(path);
    }
    if (const char* path = std::getenv("UV_METRICS")) {
      if (path[0] != '\0') OpenMetricsLog(path);
    }
    if (const char* rate = std::getenv("UV_TRACE_SAMPLE")) {
      if (rate[0] != '\0') SetTraceSampleRate(std::strtod(rate, nullptr));
    }
    const ExporterOptions opts = ExporterOptions::FromEnv();
    if (!opts.path.empty()) StartExporter(opts);
  }
  ~ObsBootstrap() {
    // Exporter first: its final write must not observe sinks mid-teardown.
    StopExporter();
    if (TraceEnabled()) StopTrace();
    CloseMetricsLog();
  }
};
ObsBootstrap g_bootstrap;

}  // namespace

namespace internal {

std::atomic<bool> g_trace_on{false};

void EndSpan(const char* name, SpanLevel level, uint64_t begin_us,
             const char* k0, int64_t v0, const char* k1, int64_t v1) {
  // Re-check: StopTrace may have raced with this span's lifetime; dropping
  // the record keeps the flusher from reading a buffer mid-write.
  if (!TraceEnabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.k0 = k0;
  rec.k1 = k1;
  rec.begin_us = begin_us;
  rec.dur_us = NowMicros() - begin_us;
  rec.v0 = v0;
  rec.v1 = v1;
  Buffer()->Push(level, rec);
}

}  // namespace internal

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

bool ProfilingActive() { return TraceEnabled() || MetricsLogEnabled(); }

void StartTrace(const std::string& path) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (SpanBuffer* buf : state.buffers) {
    buf->coarse_size.store(0, std::memory_order_relaxed);
    buf->fine_size.store(0, std::memory_order_relaxed);
    buf->dropped_coarse.store(0, std::memory_order_relaxed);
    buf->dropped_fine.store(0, std::memory_order_relaxed);
  }
  state.path = path;
  state.started = true;
  internal::g_trace_on.store(true, std::memory_order_release);
}

bool StopTrace() {
  TraceState& state = State();
  internal::g_trace_on.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.started) return false;
  state.started = false;

  FILE* f = std::fopen(state.path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n", f);
  std::fputs(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"uv-cmsf\"}}",
      f);
  for (const SpanBuffer* buf : state.buffers) {
    std::fprintf(f,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"uv thread %u\"}}",
                 buf->tid, buf->tid);
    WriteBuffer(f, *buf, buf->coarse,
                buf->coarse_size.load(std::memory_order_acquire));
    WriteBuffer(f, *buf, buf->fine,
                buf->fine_size.load(std::memory_order_acquire));
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

uint64_t TraceDroppedSpans() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const SpanBuffer* buf : state.buffers) {
    total += buf->dropped_coarse.load(std::memory_order_relaxed);
    total += buf->dropped_fine.load(std::memory_order_relaxed);
  }
  return total;
}

void RecordSpan(const char* name, SpanLevel level, uint64_t begin_us,
                uint64_t end_us, const char* k0, int64_t v0, const char* k1,
                int64_t v1) {
  if (!TraceEnabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.k0 = k0;
  rec.k1 = k1;
  rec.begin_us = begin_us;
  rec.dur_us = end_us >= begin_us ? end_us - begin_us : 0;
  rec.v0 = v0;
  rec.v1 = v1;
  Buffer()->Push(level, rec);
}

double TraceSampleRate() {
  return g_sample_rate.load(std::memory_order_relaxed);
}

void SetTraceSampleRate(double rate) {
  if (!(rate > 0.0)) rate = 0.0;  // NaN and negatives sample nothing.
  if (rate > 1.0) rate = 1.0;
  g_sample_rate.store(rate, std::memory_order_relaxed);
  g_sample_threshold.store(SampleThreshold(rate), std::memory_order_relaxed);
}

bool TraceSampleForId(uint64_t id) {
  return SampleIdAgainst(
             id, g_sample_threshold.load(std::memory_order_relaxed)) &&
         g_sample_rate.load(std::memory_order_relaxed) > 0.0;
}

uint64_t SampleThreshold(double rate) {
  if (!(rate > 0.0)) return 0;
  // rate == 1 must sample every id, so it maps to the max threshold with a
  // <= comparison rather than scaling (which could round down).
  if (rate >= 1.0) return ~uint64_t{0};
  return static_cast<uint64_t>(rate * 18446744073709551616.0 /* 2^64 */);
}

bool SampleIdAgainst(uint64_t id, uint64_t threshold) {
  return threshold != 0 && MixId(id) <= threshold;
}

}  // namespace uv::obs
