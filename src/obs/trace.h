#ifndef UV_OBS_TRACE_H_
#define UV_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace uv::obs {

// Scoped-span tracer emitting Chrome trace-event JSON ("traceEvents" with
// balanced B/E pairs and per-thread tracks) that loads directly in
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Activation: set UV_TRACE=<file> in the environment — tracing starts at
// process load and the trace is flushed to <file> at normal process exit —
// or drive StartTrace/StopTrace programmatically (tests do).
// UV_TRACE_SAMPLE=<rate in [0,1]> additionally sets the per-request
// sampling rate consulted by TraceSampleForId (default 1.0: every
// request).
//
// Storage is a bounded lock-free per-thread span buffer written only by its
// owning thread and read once at flush. When a buffer fills, *new* spans
// are dropped (and counted) rather than evicting old ones: early one-shot
// phases (URG construction, the first epochs) stay visible and every
// retained span keeps its balanced B/E pair. Two buffers per thread keep
// rare structural spans (fold/epoch/forward/...) from competing with
// high-frequency kernel spans for the same capacity.
//
// Overhead contract: with tracing compiled in but not enabled, a SpanGuard
// is one relaxed atomic load and a branch — no clock read, no allocation.

enum class SpanLevel : uint8_t {
  kCoarse = 0,  // Structural: fold, epoch, forward, backward, components.
  kFine = 1,    // Per-op / per-chunk: gemm, conv, scatters, pool chunks.
};

namespace internal {
extern std::atomic<bool> g_trace_on;
// Records a completed span into the calling thread's buffer. k0/k1 are
// optional static arg names (nullptr = absent) attached as integer args.
void EndSpan(const char* name, SpanLevel level, uint64_t begin_us,
             const char* k0, int64_t v0, const char* k1, int64_t v1);
}  // namespace internal

// Microseconds on the monotonic clock since process start (first use).
uint64_t NowMicros();

inline bool TraceEnabled() {
  return internal::g_trace_on.load(std::memory_order_relaxed);
}

// True when any observability sink is live (trace or UV_METRICS log);
// instrumentation sites use it to gate work that is pure overhead
// otherwise (extra clock reads, queue-wait accounting).
bool ProfilingActive();

// Enables span recording and remembers the flush destination. Clears any
// previously recorded spans so a Start/Stop pair brackets one experiment.
void StartTrace(const std::string& path);

// Disables recording and writes the trace-event JSON file. Returns false
// if tracing was never started or the file could not be written. Safe to
// call while worker threads are idle-parked (they only write spans inside
// parallel regions, which the caller has drained).
bool StopTrace();

// Spans dropped because a thread buffer was full (since StartTrace),
// summed over both levels. Per-level counts are also exported as the
// registry counters trace.dropped_coarse / trace.dropped_fine.
uint64_t TraceDroppedSpans();

// Records an already-timed span (begin/end on the NowMicros timeline).
// Used for retroactive spans whose lifetime does not fit a C++ scope —
// e.g. the server's per-request queue-wait span, emitted by the
// dispatcher after the fact. No-op when tracing is off.
void RecordSpan(const char* name, SpanLevel level, uint64_t begin_us,
                uint64_t end_us, const char* k0 = nullptr, int64_t v0 = 0,
                const char* k1 = nullptr, int64_t v1 = 0);

// ---------------------------------------------------------------------------
// Probabilistic per-request trace sampling. The decision is a pure hash of
// the request id against a threshold — deterministic for a given id and
// rate, no RNG state — so every span site observing one request agrees on
// whether it is sampled, across threads and without coordination.
// ---------------------------------------------------------------------------

// Current sampling rate in [0, 1]; 1.0 until overridden (UV_TRACE_SAMPLE
// or SetTraceSampleRate).
double TraceSampleRate();

// Sets the sampling rate; values are clamped to [0, 1]. Rate 1 samples
// every id, rate 0 none.
void SetTraceSampleRate(double rate);

// True iff spans for this request id should be recorded at the current
// rate. Cheap (one hash, one relaxed load); callers still gate on
// TraceEnabled() first.
bool TraceSampleForId(uint64_t id);

// The id-hash sampling scheme itself, exposed so other per-request
// samplers (shadow scoring) make the same deterministic decision without
// touching the trace rate. SampleThreshold maps a rate in [0, 1] to a
// threshold over the full uint64 hash range (0 = never, ~0 = always);
// SampleIdAgainst hashes the id (splitmix64 finalizer, so sequential ids
// spread uniformly) and compares it against that threshold.
uint64_t SampleThreshold(double rate);
bool SampleIdAgainst(uint64_t id, uint64_t threshold);

// RAII scope: records one span from construction to destruction. The name
// (and arg keys) must be string literals or otherwise outlive the trace.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name, SpanLevel level = SpanLevel::kFine) {
    if (TraceEnabled()) Arm(name, level);
  }
  SpanGuard(const char* name, SpanLevel level, const char* k0, int64_t v0) {
    if (TraceEnabled()) {
      Arm(name, level);
      k0_ = k0;
      v0_ = v0;
    }
  }
  SpanGuard(const char* name, SpanLevel level, const char* k0, int64_t v0,
            const char* k1, int64_t v1) {
    if (TraceEnabled()) {
      Arm(name, level);
      k0_ = k0;
      v0_ = v0;
      k1_ = k1;
      v1_ = v1;
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  ~SpanGuard() {
    if (name_ != nullptr) {
      internal::EndSpan(name_, level_, begin_us_, k0_, v0_, k1_, v1_);
    }
  }

 private:
  void Arm(const char* name, SpanLevel level) {
    name_ = name;
    level_ = level;
    begin_us_ = NowMicros();
  }

  const char* name_ = nullptr;
  const char* k0_ = nullptr;
  const char* k1_ = nullptr;
  int64_t v0_ = 0;
  int64_t v1_ = 0;
  uint64_t begin_us_ = 0;
  SpanLevel level_ = SpanLevel::kFine;
};

}  // namespace uv::obs

#endif  // UV_OBS_TRACE_H_
