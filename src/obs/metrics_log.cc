#include "obs/metrics_log.h"

#include <cstdio>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uv::obs {
namespace {

struct LogState {
  std::mutex mu;
  FILE* file = nullptr;
};

LogState& State() {
  static LogState* state = new LogState;  // Leaky: usable during teardown.
  return *state;
}

thread_local int tls_run = -1;
thread_local int tls_fold = -1;

void AppendInt(std::string* out, const char* key, long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key, value);
  *out += buf;
}

}  // namespace

namespace internal {

std::atomic<bool> g_metrics_on{false};

void EmitLine(const std::string& body) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), state.file);
  std::fputc('\n', state.file);
  std::fflush(state.file);
}

}  // namespace internal

void OpenMetricsLog(const std::string& path) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) std::fclose(state.file);
  state.file = std::fopen(path.c_str(), "w");
  internal::g_metrics_on.store(state.file != nullptr,
                               std::memory_order_release);
}

void CloseMetricsLog() {
  if (!MetricsLogEnabled()) return;
  // Final registry dump rides in the same stream so one file carries both
  // the time series and the end-of-run counter/histogram totals.
  std::string line = "{\"kind\":\"registry\",";
  AppendInt(&line, "ts_us", static_cast<long long>(NowMicros()));
  line += ",\"registry\":";
  line += Registry::Global().ToJson();
  line += "}";
  internal::EmitLine(line);

  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  internal::g_metrics_on.store(false, std::memory_order_release);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
}

int CurrentRun() { return tls_run; }
int CurrentFold() { return tls_fold; }

FoldScope::FoldScope(int run, int fold)
    : prev_run_(tls_run), prev_fold_(tls_fold) {
  tls_run = run;
  tls_fold = fold;
}

FoldScope::~FoldScope() {
  tls_run = prev_run_;
  tls_fold = prev_fold_;
}

MetricsRecord::MetricsRecord(const char* kind) {
  if (!MetricsLogEnabled()) return;
  active_ = true;
  body_.reserve(160);
  body_ = "{\"kind\":\"";
  body_ += kind;
  body_ += '"';
}

MetricsRecord& MetricsRecord::Int(const char* key, int64_t value) {
  if (active_) {
    body_ += ',';
    AppendInt(&body_, key, static_cast<long long>(value));
  }
  return *this;
}

MetricsRecord& MetricsRecord::Num(const char* key, double value) {
  if (active_) {
    char buf[80];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.10g", key, value);
    body_ += buf;
  }
  return *this;
}

MetricsRecord& MetricsRecord::Str(const char* key, const char* value) {
  if (active_) {
    body_ += ",\"";
    body_ += key;
    body_ += "\":\"";
    body_ += value;  // Callers pass literal identifiers; no escaping needed.
    body_ += '"';
  }
  return *this;
}

void MetricsRecord::Emit() {
  if (!active_) return;
  if (tls_run >= 0) {
    body_ += ',';
    AppendInt(&body_, "run", tls_run);
    body_ += ',';
    AppendInt(&body_, "fold", tls_fold);
  }
  body_ += ',';
  AppendInt(&body_, "ts_us", static_cast<long long>(NowMicros()));
  body_ += '}';
  internal::EmitLine(body_);
  active_ = false;
}

}  // namespace uv::obs
