#ifndef UV_OBS_METRICS_LOG_H_
#define UV_OBS_METRICS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace uv::obs {

// Training/eval time-series sink: one JSON object per line (JSONL).
// Activated by UV_METRICS=<file> in the environment (opened at process
// load, closed — with a final metrics-registry dump — at exit) or by
// OpenMetricsLog/CloseMetricsLog programmatically.
//
// Emitters build a record with MetricsRecord and call Emit(); when the log
// is disabled every call is a cheap no-op, so per-epoch emission sites can
// stay unconditional. Values that are *expensive to compute* (gradient
// norms) should still be gated on MetricsLogEnabled() at the call site.

namespace internal {
extern std::atomic<bool> g_metrics_on;
void EmitLine(const std::string& body);
}  // namespace internal

inline bool MetricsLogEnabled() {
  return internal::g_metrics_on.load(std::memory_order_relaxed);
}

void OpenMetricsLog(const std::string& path);
// Appends a {"kind":"registry",...} record with the full metrics-registry
// snapshot, then closes the file. No-op when the log is not open.
void CloseMetricsLog();

// Ambient (run, fold) labels for records and spans emitted from inside a
// cross-validation job. Thread-local, so parallel fold jobs each carry
// their own labels; nested kernels run inline on the same thread and
// inherit them. -1 = unset (e.g. the quickstart's single direct fold).
int CurrentRun();
int CurrentFold();

class FoldScope {
 public:
  FoldScope(int run, int fold);
  ~FoldScope();
  FoldScope(const FoldScope&) = delete;
  FoldScope& operator=(const FoldScope&) = delete;

 private:
  int prev_run_;
  int prev_fold_;
};

// Builder for one JSONL record. Usage:
//   obs::MetricsRecord("epoch").Str("stage", "master").Int("epoch", e)
//       .Num("loss", loss).Emit();
// Emit() appends the ambient run/fold labels (when set) and a monotonic
// "ts_us" timestamp, then writes the line. All methods are no-ops when the
// log is disabled.
class MetricsRecord {
 public:
  explicit MetricsRecord(const char* kind);
  MetricsRecord& Int(const char* key, int64_t value);
  MetricsRecord& Num(const char* key, double value);
  MetricsRecord& Str(const char* key, const char* value);
  void Emit();

 private:
  bool active_ = false;
  std::string body_;
};

}  // namespace uv::obs

#endif  // UV_OBS_METRICS_LOG_H_
