#include "obs/exporter.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/report.h"
#include "obs/trace.h"

namespace uv::obs {
namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use
// dotted lowercase ("serve.latency_us"), so mapping every other character
// to '_' is collision-free in practice and keeps the uv_ prefix grouping.
std::string PromName(const std::string& name) {
  std::string out = "uv_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

// Writes `content` to `path` atomically: tmp file in the same directory,
// then rename over the target, so concurrent readers never see a torn or
// truncated file.
bool AtomicWrite(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

struct ExporterState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool stop = false;
  ExporterOptions opts;
  std::atomic<uint64_t> writes{0};
};

ExporterState& State() {
  static ExporterState* state = new ExporterState;  // Leaky.
  return *state;
}

void ExporterLoop() {
  ExporterState& state = State();
  std::unique_lock<std::mutex> lock(state.mu);
  const ExporterOptions opts = state.opts;
  while (!state.stop) {
    lock.unlock();
    if (ExportNow(opts.path)) {
      state.writes.fetch_add(1, std::memory_order_release);
    }
    lock.lock();
    state.cv.wait_for(lock, std::chrono::milliseconds(opts.interval_ms),
                      [&state] { return state.stop; });
  }
}

}  // namespace

ExporterOptions ExporterOptions::FromEnv() {
  ExporterOptions opts;
  if (const char* path = std::getenv("UV_EXPORT")) opts.path = path;
  if (const char* ms = std::getenv("UV_EXPORT_INTERVAL_MS")) {
    if (ms[0] != '\0') opts.interval_ms = std::atoi(ms);
  }
  if (opts.interval_ms < 10) opts.interval_ms = 10;
  return opts;
}

bool StartExporter(const ExporterOptions& opts) {
  if (opts.path.empty()) return false;
  ExporterState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running) return false;
  state.opts = opts;
  if (state.opts.interval_ms < 10) state.opts.interval_ms = 10;
  state.stop = false;
  state.running = true;
  state.worker = std::thread(ExporterLoop);
  return true;
}

void StopExporter() {
  ExporterState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.running) return;
    state.stop = true;
  }
  state.cv.notify_all();
  state.worker.join();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.running = false;
    path = state.opts.path;
  }
  // Final export so the files reflect end-of-process totals even when the
  // last interval did not elapse.
  if (ExportNow(path)) {
    state.writes.fetch_add(1, std::memory_order_release);
  }
}

bool ExporterEnabled() {
  ExporterState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.running;
}

uint64_t ExporterWriteCount() {
  return State().writes.load(std::memory_order_acquire);
}

std::string RenderPrometheus(const RegistrySnapshot& snap, uint64_t ts_us) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name) + "_total";
    Append(out, "# TYPE %s counter\n", prom.c_str());
    Append(out, "%s %llu\n", prom.c_str(),
           static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    Append(out, "# TYPE %s gauge\n", prom.c_str());
    Append(out, "%s %lld\n", prom.c_str(), static_cast<long long>(value));
  }
  for (const auto& h : snap.histograms) {
    const std::string prom = PromName(h.name);
    Append(out, "# TYPE %s histogram\n", prom.c_str());
    // Bucket b of the power-of-two histogram covers [2^(b-1), 2^b) (bucket
    // 0 covers {0}), so its inclusive upper edge — Prometheus `le` — is
    // 2^b - 1. The last bucket is open-ended and only contributes to +Inf.
    uint64_t cumulative = 0;
    for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
      cumulative += h.buckets[b];
      const unsigned long long le =
          b == 0 ? 0ull : (uint64_t{1} << b) - 1;
      Append(out, "%s_bucket{le=\"%llu\"} %llu\n", prom.c_str(), le,
             static_cast<unsigned long long>(cumulative));
    }
    Append(out, "%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
           static_cast<unsigned long long>(h.count));
    Append(out, "%s_sum %llu\n", prom.c_str(),
           static_cast<unsigned long long>(h.sum));
    Append(out, "%s_count %llu\n", prom.c_str(),
           static_cast<unsigned long long>(h.count));
  }
  for (const auto& w : snap.windowed) {
    // Rolling-window percentiles are point-in-time values, so they export
    // as a gauge family (suffix _window keeps them distinct from the
    // cumulative histogram of the same registry name).
    const std::string prom = PromName(w.name) + "_window";
    const double window_s = static_cast<double>(w.window_us) / 1e6;
    Append(out, "# TYPE %s gauge\n", prom.c_str());
    Append(out, "%s{quantile=\"0.5\",window_s=\"%g\"} %.0f\n", prom.c_str(),
           window_s, w.p50);
    Append(out, "%s{quantile=\"0.95\",window_s=\"%g\"} %.0f\n", prom.c_str(),
           window_s, w.p95);
    Append(out, "%s{quantile=\"0.99\",window_s=\"%g\"} %.0f\n", prom.c_str(),
           window_s, w.p99);
    Append(out, "# TYPE %s_count gauge\n", prom.c_str());
    Append(out, "%s_count{window_s=\"%g\"} %llu\n", prom.c_str(), window_s,
           static_cast<unsigned long long>(w.count));
  }
  Append(out, "# TYPE uv_export_timestamp_us gauge\n");
  Append(out, "uv_export_timestamp_us %llu\n",
         static_cast<unsigned long long>(ts_us));
  out += "# EOF\n";
  return out;
}

std::string RenderJsonExport(const RegistrySnapshot& snap, uint64_t ts_us) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("uv-metrics-export-v1");
  w.Key("ts_us").UInt(ts_us);
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).UInt(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& h : snap.histograms) {
    w.Key(h.name).BeginObject();
    w.Key("count").UInt(h.count);
    w.Key("sum").UInt(h.sum);
    w.Key("p50").Double(h.p50);
    w.Key("p95").Double(h.p95);
    w.Key("p99").Double(h.p99);
    w.Key("buckets").BeginArray();
    for (uint64_t b : h.buckets) w.UInt(b);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("windowed").BeginObject();
  for (const auto& win : snap.windowed) {
    w.Key(win.name).BeginObject();
    w.Key("window_us").UInt(win.window_us);
    w.Key("count").UInt(win.count);
    w.Key("sum").UInt(win.sum);
    w.Key("p50").Double(win.p50);
    w.Key("p95").Double(win.p95);
    w.Key("p99").Double(win.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

bool ExportNow(const std::string& path) {
  if (path.empty()) return false;
  const RegistrySnapshot snap = Registry::Global().Snapshot();
  const uint64_t ts_us = NowMicros();
  const bool prom_ok = AtomicWrite(path, RenderPrometheus(snap, ts_us));
  const bool json_ok =
      AtomicWrite(path + ".json", RenderJsonExport(snap, ts_us));
  return prom_ok && json_ok;
}

}  // namespace uv::obs
