#include "obs/report.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace uv::obs {

namespace {

// Shortest round-trip decimal form, so ledgers diff cleanly and re-parsing
// reproduces the exact double. Non-finite values (which JSON cannot carry)
// serialize as null so a broken measurement stays visible — the validators
// (check_trace.py --ledger, bench_diff.py) reject null where a number is
// required instead of letting a silent 0 pass a lower-is-better gate.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

const char* DirectionName(Direction d) {
  switch (d) {
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kInfo: return "info";
  }
  return "info";
}

// Nearest-rank percentile over an already sorted sample vector.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Counters/histograms snapshotted into each repeat: the allocator,
// thread-pool, serving, and model-quality families, where a hot-path
// regression shows first (a dropped pool explodes mem.heap_allocs; a
// serialized GEMM empties threadpool.queue_wait_us; a stalled dispatcher
// inflates serve.latency_us; a monitored serve entry carries its
// quality.score_e6 sketch and drift gauges would surface in export).
bool LedgerRelevant(const std::string& name) {
  return HasPrefix(name, "mem.") || HasPrefix(name, "threadpool.") ||
         HasPrefix(name, "serve.") || HasPrefix(name, "quality.") ||
         HasPrefix(name, "drift.") || HasPrefix(name, "shadow.");
}

std::string EnvOrEmpty(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : std::string();
}

// Set before main() by the kernel dispatcher's static registrar; plain
// atomic because registration and capture never race in practice (capture
// happens from Report construction, well after static init).
std::atomic<const char* (*)()> g_simd_name_provider{nullptr};

}  // namespace

// ---------------------------------------------------------------------------
// JsonEscape / JsonWriter
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // This value was announced by Key(), which already placed the comma.
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = 1;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = 1;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  out_ += FormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

// ---------------------------------------------------------------------------
// Environment fingerprint
// ---------------------------------------------------------------------------

EnvFingerprint CaptureEnvFingerprint() {
  EnvFingerprint env;
  env.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
#ifdef __VERSION__
  env.compiler = __VERSION__;
#else
  env.compiler = "unknown";
#endif
#ifdef UV_BUILD_TYPE
  env.build_type = UV_BUILD_TYPE;
#else
  env.build_type = "unknown";
#endif
#ifdef UV_NATIVE_BUILD
  env.build_flags = "native";
#endif
#ifdef UV_SANITIZE_BUILD
  if (!env.build_flags.empty()) env.build_flags += ',';
  env.build_flags += "sanitize";
#endif
#ifdef UV_GIT_SHA
  env.git_sha = UV_GIT_SHA;
#else
  env.git_sha = "unknown";
#endif
  env.uv_threads = EnvOrEmpty("UV_THREADS");
  env.uv_pool = EnvOrEmpty("UV_POOL");
  const auto provider = g_simd_name_provider.load(std::memory_order_acquire);
  env.simd = provider != nullptr ? provider() : "none";
  return env;
}

void RegisterSimdNameProvider(const char* (*provider)()) {
  g_simd_name_provider.store(provider, std::memory_order_release);
}

void ResetAll() { Registry::Global().ResetAll(); }

// ---------------------------------------------------------------------------
// RobustStats
// ---------------------------------------------------------------------------

RobustStats ComputeRobustStats(std::vector<double> samples) {
  RobustStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.min = samples.front();
  stats.max = samples.back();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  stats.p50 = SortedPercentile(samples, 50.0);
  stats.p95 = SortedPercentile(samples, 95.0);
  std::vector<double> dev(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    dev[i] = std::abs(samples[i] - stats.p50);
  }
  std::sort(dev.begin(), dev.end());
  stats.mad = SortedPercentile(dev, 50.0);
  return stats;
}

// ---------------------------------------------------------------------------
// BenchmarkEntry
// ---------------------------------------------------------------------------

void BenchmarkEntry::AddRepeat(double seconds) {
  RepeatSample sample;
  sample.ts_us = NowMicros();
  sample.seconds = seconds;
  repeats_.push_back(std::move(sample));
}

void BenchmarkEntry::AddMetric(const std::string& name, double value,
                               Direction direction) {
  metrics_.push_back(MetricSample{name, value, direction});
}

RobustStats BenchmarkEntry::Stats() const {
  std::vector<double> seconds;
  seconds.reserve(repeats_.size());
  for (const RepeatSample& r : repeats_) seconds.push_back(r.seconds);
  return ComputeRobustStats(std::move(seconds));
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

Report::Report(const std::string& suite)
    : suite_(suite), env_(CaptureEnvFingerprint()) {}

Report::~Report() = default;

void Report::SetConfig(const std::string& key, const std::string& value) {
  config_.push_back({key, '"' + JsonEscape(value) + '"'});
}

void Report::SetConfig(const std::string& key, int64_t value) {
  config_.push_back({key, std::to_string(value)});
}

void Report::SetConfig(const std::string& key, double value) {
  config_.push_back({key, FormatDouble(value)});
}

void Report::SetRepeats(int warmup, int repeats) {
  default_warmup_ = warmup < 0 ? 0 : warmup;
  default_repeats_ = repeats < 1 ? 1 : repeats;
}

BenchmarkEntry& Report::Bench(const std::string& name) {
  for (BenchmarkEntry& b : benchmarks_) {
    if (b.name_ == name) return b;
  }
  benchmarks_.push_back(BenchmarkEntry(name));
  return benchmarks_.back();
}

BenchmarkEntry& Report::RunTimed(const std::string& name,
                                 const std::function<void()>& fn) {
  return RunTimed(name, default_warmup_, default_repeats_, fn);
}

BenchmarkEntry& Report::RunTimed(const std::string& name, int warmup,
                                 int repeats,
                                 const std::function<void()>& fn) {
  if (warmup < 0) warmup = 0;
  if (repeats < 1) repeats = 1;
  // Entries live in a deque, so this reference survives any appends fn()
  // might trigger through nested Bench() calls.
  BenchmarkEntry& entry = Bench(name);
  entry.warmup_ = warmup;

  for (int w = 0; w < warmup; ++w) fn();

  for (int r = 0; r < repeats; ++r) {
    // Isolation contract: every repeat starts from zeroed registry state,
    // so the counter deltas attached below describe this repeat alone.
    ResetAll();
    WallTimer timer;
    fn();
    const double seconds = timer.Seconds();

    RepeatSample sample;
    sample.ts_us = NowMicros();
    sample.seconds = seconds;
    const RegistrySnapshot snap = Registry::Global().Snapshot();
    for (const auto& [cname, value] : snap.counters) {
      if (LedgerRelevant(cname)) sample.counters.emplace_back(cname, value);
    }
    entry.repeats_.push_back(std::move(sample));

    if (r == repeats - 1) {
      // The final repeat's histograms (post-reset, so they cover exactly
      // one repeat) supply percentile views where available.
      entry.histograms_.clear();
      for (const HistogramSnapshot& h : snap.histograms) {
        if (!LedgerRelevant(h.name) || h.count == 0) continue;
        entry.histograms_.push_back(
            HistogramStat{h.name, h.count, h.sum, h.p50, h.p95});
      }
    }
  }
  return entry;
}

std::string Report::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("uv-perf-ledger-v1");
  w.Key("suite").String(suite_);

  w.Key("env").BeginObject();
  w.Key("hardware_threads").Int(env_.hardware_threads);
  w.Key("compiler").String(env_.compiler);
  w.Key("build_type").String(env_.build_type);
  w.Key("build_flags").String(env_.build_flags);
  w.Key("git_sha").String(env_.git_sha);
  w.Key("uv_threads").String(env_.uv_threads);
  w.Key("uv_pool").String(env_.uv_pool);
  w.Key("simd").String(env_.simd);
  w.EndObject();

  w.Key("config").BeginObject();
  for (const ConfigEntry& c : config_) {
    // Values were pre-rendered as JSON literals by SetConfig.
    w.Key(c.key);
    w.Raw(c.json_value);
  }
  w.EndObject();

  w.Key("benchmarks").BeginObject();
  for (const BenchmarkEntry& b : benchmarks_) {
    w.Key(b.name_).BeginObject();
    w.Key("warmup").Int(b.warmup_);
    w.Key("repeats").BeginArray();
    for (const RepeatSample& r : b.repeats_) {
      w.BeginObject();
      w.Key("ts_us").UInt(r.ts_us);
      w.Key("seconds").Double(r.seconds);
      if (!r.counters.empty()) {
        w.Key("counters").BeginObject();
        for (const auto& [name, value] : r.counters) {
          w.Key(name).UInt(value);
        }
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndArray();
    if (!b.repeats_.empty()) {
      const RobustStats stats = b.Stats();
      w.Key("stats").BeginObject();
      w.Key("min").Double(stats.min);
      w.Key("p50").Double(stats.p50);
      w.Key("p95").Double(stats.p95);
      w.Key("max").Double(stats.max);
      w.Key("mean").Double(stats.mean);
      w.Key("mad").Double(stats.mad);
      w.EndObject();
    }
    if (!b.histograms_.empty()) {
      w.Key("histograms").BeginObject();
      for (const HistogramStat& h : b.histograms_) {
        w.Key(h.name).BeginObject();
        w.Key("count").UInt(h.count);
        w.Key("sum").UInt(h.sum);
        w.Key("p50").Double(h.p50);
        w.Key("p95").Double(h.p95);
        w.EndObject();
      }
      w.EndObject();
    }
    if (!b.metrics_.empty()) {
      w.Key("metrics").BeginObject();
      for (const MetricSample& m : b.metrics_) {
        w.Key(m.name).BeginObject();
        w.Key("value").Double(m.value);
        w.Key("direction").String(DirectionName(m.direction));
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.Take();
}

bool Report::WriteFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs::Report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size()
                  && std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "obs::Report: short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace uv::obs
