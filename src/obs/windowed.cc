#include "obs/windowed.h"

#include <thread>

#include "obs/trace.h"

namespace uv::obs {

namespace {

// Epoch tag meaning "this slot is being zeroed": writers bounce and retry
// instead of racing the clear. Unreachable as a real epoch (it would take
// 2^64 microseconds of uptime).
constexpr uint64_t kRotating = ~uint64_t{0};

class MonotonicClock : public Clock {
 public:
  uint64_t NowMicros() const override { return obs::NowMicros(); }
};

}  // namespace

const Clock* DefaultClock() {
  static const MonotonicClock* clock = new MonotonicClock;  // Leaky.
  return clock;
}

WindowedHistogram::WindowedHistogram(uint64_t window_us, const Clock* clock)
    : clock_(clock != nullptr ? clock : DefaultClock()),
      epoch_us_(window_us / kNumSlots > 0 ? window_us / kNumSlots : 1) {
  // Seed each slot with the smallest epoch mapping to it (i % kNumSlots ==
  // i). These tags are stale relative to any running clock, so empty slots
  // never pollute a snapshot, and the invariant tag % kNumSlots == slot
  // index holds from the start.
  for (int i = 0; i < kNumSlots; ++i) {
    slots_[i].epoch.store(static_cast<uint64_t>(i),
                          std::memory_order_relaxed);
  }
}

void WindowedHistogram::Rotate(Slot& slot, uint64_t target_epoch) {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  // Under the mutex the tag is never kRotating (it is set and cleared
  // within one critical section), so this comparison is well-defined.
  if (slot.epoch.load(std::memory_order_acquire) >= target_epoch) return;
  // Block the slot first, then drain: writers that passed the tag check
  // before the sentinel landed are mid-record and must finish before the
  // clear; writers arriving after it bounce into Rotate and park on the
  // mutex, so the drain terminates.
  slot.epoch.store(kRotating, std::memory_order_release);
  while (slot.writers.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  slot.sum.store(0, std::memory_order_relaxed);
  slot.epoch.store(target_epoch, std::memory_order_release);
}

void WindowedHistogram::Record(uint64_t value) {
  const uint64_t epoch = clock_->NowMicros() / epoch_us_;
  Slot& slot = slots_[epoch % kNumSlots];
  const int bucket = Histogram::BucketIndex(value);
  for (;;) {
    slot.writers.fetch_add(1, std::memory_order_acq_rel);
    const uint64_t tag = slot.epoch.load(std::memory_order_acquire);
    if (tag != kRotating && tag >= epoch) {
      // tag > epoch: this recorder's epoch already rotated away while it
      // was en route; attribute the sample to the live epoch rather than
      // losing it (it is still counted exactly once).
      slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
      slot.sum.fetch_add(value, std::memory_order_relaxed);
      slot.writers.fetch_sub(1, std::memory_order_release);
      return;
    }
    slot.writers.fetch_sub(1, std::memory_order_release);
    Rotate(slot, epoch);
  }
}

WindowedHistogramSnapshot WindowedHistogram::Snapshot() const {
  const uint64_t now_epoch = clock_->NowMicros() / epoch_us_;
  const uint64_t min_epoch =
      now_epoch >= kNumSlots - 1 ? now_epoch - (kNumSlots - 1) : 0;
  uint64_t counts[kNumBuckets] = {};
  WindowedHistogramSnapshot snap;
  snap.window_us = window_us();
  for (const Slot& slot : slots_) {
    const uint64_t tag = slot.epoch.load(std::memory_order_acquire);
    // kRotating compares > now_epoch, so a slot mid-clear is skipped along
    // with expired ones.
    if (tag < min_epoch || tag > now_epoch) continue;
    for (int b = 0; b < kNumBuckets; ++b) {
      counts[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += slot.sum.load(std::memory_order_relaxed);
  }
  for (int b = 0; b < kNumBuckets; ++b) snap.count += counts[b];
  snap.p50 = Histogram::PercentileFromCounts(counts, 50.0);
  snap.p95 = Histogram::PercentileFromCounts(counts, 95.0);
  snap.p99 = Histogram::PercentileFromCounts(counts, 99.0);
  return snap;
}

void WindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (int i = 0; i < kNumSlots; ++i) {
    Slot& slot = slots_[i];
    slot.epoch.store(kRotating, std::memory_order_release);
    while (slot.writers.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
    slot.sum.store(0, std::memory_order_relaxed);
    // Back to the construction-time stale tag, so reset slots drop out of
    // snapshots instead of reporting zero-count epochs as live.
    slot.epoch.store(static_cast<uint64_t>(i), std::memory_order_release);
  }
}

}  // namespace uv::obs
