#ifndef UV_OBS_REPORT_H_
#define UV_OBS_REPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace uv::obs {

// ---------------------------------------------------------------------------
// Structured benchmark reports ("perf ledgers"). One Report is one run of
// one benchmark binary: an environment fingerprint, the benchmark-level
// configuration, and a sequence of named benchmark entries, each holding
// per-repeat timings plus registry-counter deltas and robust summary
// statistics. Serialized through the shared JsonWriter into the canonical
// ledger schema ("uv-perf-ledger-v1") that tools/bench_diff.py compares
// and tools/check_trace.py --ledger validates.
// ---------------------------------------------------------------------------

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, and control characters per RFC 8259).
std::string JsonEscape(const std::string& s);

// Minimal streaming JSON writer shared by every benchmark emitter. Key
// order is call order (deterministic), doubles serialize via the shortest
// round-trip representation (non-finite values as null, which the ledger
// validators reject where a number is required), and the writer owns its
// output buffer; it
// performs no validation beyond comma placement, so callers are expected
// to emit well-formed nesting (tests enforce the shapes they build).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  // Splices a pre-rendered JSON literal in value position (the Report
  // config table stores values already serialized).
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  // Comma bookkeeping shared by every value emitter: places the separator
  // unless this value was announced by a preceding Key().
  void BeforeValue();

  std::string out_;
  std::vector<char> has_value_;  // One flag per open scope.
  bool pending_key_ = false;
};

// Where a run happened: enough to decide whether two ledgers are
// comparable and to pin a regression to a commit. Captured once per
// Report from compile-time defines (UV_GIT_SHA, UV_BUILD_TYPE, UV_NATIVE
// fed through src/obs/CMakeLists.txt) and the process environment.
struct EnvFingerprint {
  int hardware_threads = 0;   // std::thread::hardware_concurrency().
  std::string compiler;       // __VERSION__.
  std::string build_type;     // CMake configuration (Release, ...).
  std::string build_flags;    // Extra toggles, e.g. "native", "sanitize".
  std::string git_sha;        // Configure-time short SHA ("unknown" outside git).
  std::string uv_threads;     // Raw UV_THREADS env value, "" = unset.
  std::string uv_pool;        // Raw UV_POOL env value, "" = unset.
  std::string simd;           // Active kernel backend ("avx2", "scalar").
};

EnvFingerprint CaptureEnvFingerprint();

// Supplies EnvFingerprint.simd without obs depending on the tensor layer:
// the kernel dispatcher registers its ActiveName() at static-init time
// (from a TU that every compute call site links), and ledgers written by
// binaries with no kernel layer at all record "none".
void RegisterSimdNameProvider(const char* (*provider)());

// Zeroes every registered metric (convenience alias for
// Registry::Global().ResetAll(), declared here so benchmark code does not
// need metrics.h for the one call it makes between repeats).
void ResetAll();

// Robust summary of a sample set: nearest-rank percentiles (p50/p95) plus
// the unscaled median absolute deviation, so noise-aware comparisons do
// not depend on outlier-sensitive mean/std. All zero for empty input.
struct RobustStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double mad = 0.0;  // median(|x - median|), unscaled.
};

RobustStats ComputeRobustStats(std::vector<double> samples);

// How bench_diff.py should gate a metric: timings shrink, quality metrics
// grow, informational values never gate.
enum class Direction { kLowerIsBetter, kHigherIsBetter, kInfo };

struct RepeatSample {
  uint64_t ts_us = 0;   // NowMicros() at the end of the repeat.
  double seconds = 0.0;
  // Deltas of every mem.* / threadpool.* registry counter over the repeat
  // (the registry is reset before each repeat, so these are isolated
  // per-repeat values, not cumulative totals).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

struct MetricSample {
  std::string name;
  double value = 0.0;
  Direction direction = Direction::kInfo;
};

// p50/p95 of one registry histogram over the final timed repeat.
struct HistogramStat {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// One named benchmark inside a Report: timed repeats and/or scalar
// metrics. Entries that only carry metrics (a table bench recording AUC
// per method) are valid; entries produced by Report::RunTimed carry
// repeats, counters, and histogram percentiles.
class BenchmarkEntry {
 public:
  // Appends one timed repeat, stamped with the monotonic clock. Does not
  // snapshot registry counters — Report::RunTimed does that; external
  // timings (google-benchmark captures, RunStats walls) use this directly.
  void AddRepeat(double seconds);

  void AddMetric(const std::string& name, double value,
                 Direction direction = Direction::kInfo);

  const std::string& name() const { return name_; }
  const std::vector<RepeatSample>& repeats() const { return repeats_; }
  const std::vector<MetricSample>& metrics() const { return metrics_; }
  const std::vector<HistogramStat>& histograms() const { return histograms_; }
  int warmup() const { return warmup_; }

  // Robust stats over the recorded repeat seconds.
  RobustStats Stats() const;

 private:
  friend class Report;
  explicit BenchmarkEntry(std::string name) : name_(std::move(name)) {}

  std::string name_;
  int warmup_ = 0;
  std::vector<RepeatSample> repeats_;
  std::vector<MetricSample> metrics_;
  std::vector<HistogramStat> histograms_;
};

class Report {
 public:
  // suite names the ledger ("micro", "table2", "scaling", ...).
  explicit Report(const std::string& suite);
  ~Report();
  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;
  Report(Report&&) = default;

  // Benchmark-level configuration echoed into the ledger (scale, epochs,
  // seed, ...). Key order in the output is call order.
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, int64_t value);
  void SetConfig(const std::string& key, double value);

  // Defaults for the RunTimed overload without explicit counts.
  void SetRepeats(int warmup, int repeats);

  // Finds or creates the entry with this name (insertion order is
  // preserved in the serialized ledger). Entries live in a deque, so the
  // returned reference stays valid across later Bench/RunTimed calls.
  BenchmarkEntry& Bench(const std::string& name);

  // The standard measurement protocol: runs fn `warmup` times untimed,
  // then `repeats` timed repeats. obs::ResetAll() is called before every
  // repeat so the mem.* / threadpool.* counter deltas attached to each
  // repeat are isolated rather than cumulative; after the final repeat
  // the matching registry histograms (threadpool.*) contribute p50/p95.
  BenchmarkEntry& RunTimed(const std::string& name,
                           const std::function<void()>& fn);
  BenchmarkEntry& RunTimed(const std::string& name, int warmup, int repeats,
                           const std::function<void()>& fn);

  const EnvFingerprint& env() const { return env_; }

  // The canonical ledger document.
  std::string ToJson() const;

  // ToJson() to a file (plus trailing newline). Returns false and logs to
  // stderr when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string json_value;  // Pre-rendered literal (string/int/double).
  };

  std::string suite_;
  EnvFingerprint env_;
  std::vector<ConfigEntry> config_;
  // Deque, not vector: Bench/RunTimed hand out references to entries, and
  // deque growth never invalidates references to existing elements.
  std::deque<BenchmarkEntry> benchmarks_;
  int default_warmup_ = 1;
  int default_repeats_ = 5;
};

}  // namespace uv::obs

#endif  // UV_OBS_REPORT_H_
