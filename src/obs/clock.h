#ifndef UV_OBS_CLOCK_H_
#define UV_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace uv::obs {

// Injectable time source for telemetry that depends on *when* a sample was
// taken (rolling SLO windows, request lifecycle timestamps). Production
// code uses DefaultClock(), which reads the process-relative monotonic
// clock (obs::NowMicros); tests inject a FakeClock to drive window
// rotation and latency math deterministically.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowMicros() const = 0;
};

// Leaky process-wide clock over obs::NowMicros() — microseconds on the
// steady clock since process start, the same timeline the tracer stamps
// spans with, so server timestamps double as span begin/end times.
const Clock* DefaultClock();

// Manually advanced clock for tests. Thread-safe: writers advance, any
// thread reads.
class FakeClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(uint64_t us) { now_.store(us, std::memory_order_relaxed); }
  void Advance(uint64_t us) { now_.fetch_add(us, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{0};
};

}  // namespace uv::obs

#endif  // UV_OBS_CLOCK_H_
