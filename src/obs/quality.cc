#include "obs/quality.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/metrics_log.h"
#include "obs/windowed.h"

namespace uv::obs {
namespace {

// Proportions below this are floored before taking logs so empty bins do
// not produce infinities. Applied only when the proportions already
// differ — identical proportions short-circuit first, preserving the
// exact-zero guarantee.
constexpr double kPsiEpsilon = 1e-6;

// Fixed-point scales for the commutative serving-side sums. Feature values
// use 16 fractional bits (they are encoder outputs, O(1) magnitude);
// scores are probabilities, so 24 bits keep the quantization below 1e-7.
constexpr double kFeatureFpScale = 65536.0;
constexpr double kScoreFpScale = 16777216.0;  // 2^24.

int64_t ToFixed(float v, double scale) {
  double d = static_cast<double>(v) * scale;
  if (!(d == d)) return 0;  // NaN observes as 0; binning sent it low too.
  if (d > 9.0e15) d = 9.0e15;  // Stay far from int64 overflow even after
  if (d < -9.0e15) d = -9.0e15;  // billions of accumulated samples.
  return std::llround(d);
}

int64_t ToMicro(double v) {
  if (!(v == v)) return 0;
  if (v > 9.0e12) v = 9.0e12;
  if (v < -9.0e12) v = -9.0e12;
  return std::llround(v * 1e6);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double parsed = std::strtod(v, nullptr);
  return parsed > 0.0 ? parsed : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

// ---------------------------------------------------------------------------
// Binning rules.
// ---------------------------------------------------------------------------

int QualityBaseline::FeatureBin(float v, const float* edges) {
  // First bin whose edge is >= v; values equal to an edge fall low, NaN
  // compares false and lands in bin 0. Linear scan: kFeatureBins is 10 and
  // the edges sit on one cache line.
  int b = 0;
  while (b < kFeatureBins - 1 && v > edges[b]) ++b;
  return b;
}

int QualityBaseline::ScoreBin(float s) {
  if (!(s > 0.0f)) return 0;  // Negatives and NaN clamp low.
  const int b = static_cast<int>(s * kScoreBins);
  return b < kScoreBins ? b : kScoreBins - 1;
}

int QualityBaseline::CalibBin(float s) {
  if (!(s > 0.0f)) return 0;
  const int b = static_cast<int>(s * kCalibBins);
  return b < kCalibBins ? b : kCalibBins - 1;
}

// ---------------------------------------------------------------------------
// Baseline construction.
// ---------------------------------------------------------------------------

QualityBaseline BuildQualityBaseline(const float* features, int64_t n, int d,
                                     const float* scores, int64_t n_scores,
                                     const float* labeled_scores,
                                     const int* labels, int64_t n_labeled) {
  QualityBaseline base;
  if (features != nullptr && n > 0 && d > 0) {
    base.columns.resize(static_cast<size_t>(d));
    std::vector<float> column(static_cast<size_t>(n));
    for (int c = 0; c < d; ++c) {
      QualityBaseline::Column& col = base.columns[static_cast<size_t>(c)];
      for (int64_t r = 0; r < n; ++r) column[static_cast<size_t>(r)] =
          features[r * d + c];
      // Moments first (in row order, single-threaded: deterministic).
      double sum = 0.0;
      for (int64_t r = 0; r < n; ++r) sum += column[static_cast<size_t>(r)];
      const double mean = sum / static_cast<double>(n);
      double var = 0.0;
      for (int64_t r = 0; r < n; ++r) {
        const double dlt = column[static_cast<size_t>(r)] - mean;
        var += dlt * dlt;
      }
      col.mean = static_cast<float>(mean);
      col.stdev =
          static_cast<float>(std::sqrt(var / static_cast<double>(n)));
      // Quantile edges at exact ranks of the sorted column, then the
      // training histogram through the same FeatureBin the monitor uses.
      std::sort(column.begin(), column.end());
      for (int e = 0; e < QualityBaseline::kFeatureBins - 1; ++e) {
        int64_t rank = (static_cast<int64_t>(e) + 1) * n /
                       QualityBaseline::kFeatureBins;
        if (rank >= n) rank = n - 1;
        col.edges[e] = column[static_cast<size_t>(rank)];
      }
      for (int64_t r = 0; r < n; ++r) {
        const int b = QualityBaseline::FeatureBin(
            features[r * d + c], col.edges);
        ++col.counts[b];
      }
    }
  }
  for (int64_t i = 0; i < n_scores; ++i) {
    ++base.score_counts[QualityBaseline::ScoreBin(scores[i])];
  }
  for (int64_t i = 0; i < n_labeled; ++i) {
    const int b = QualityBaseline::CalibBin(labeled_scores[i]);
    ++base.calib_count[b];
    base.calib_score_sum[b] += static_cast<double>(labeled_scores[i]);
    if (labels[i] != 0) ++base.calib_pos[b];
  }
  return base;
}

// ---------------------------------------------------------------------------
// Divergence / calibration math.
// ---------------------------------------------------------------------------

double PopulationStabilityIndex(const uint64_t* expected,
                                const uint64_t* actual, int k) {
  uint64_t te = 0, ta = 0;
  for (int i = 0; i < k; ++i) {
    te += expected[i];
    ta += actual[i];
  }
  if (te == 0 || ta == 0) return 0.0;
  double psi = 0.0;
  for (int i = 0; i < k; ++i) {
    double p = static_cast<double>(expected[i]) / static_cast<double>(te);
    double q = static_cast<double>(actual[i]) / static_cast<double>(ta);
    // Correctly-rounded IEEE division makes proportional counts compare
    // equal bit-for-bit; skipping before the epsilon floor is what makes
    // "serving the training city" report exactly 0.0.
    if (p == q) continue;
    if (p < kPsiEpsilon) p = kPsiEpsilon;
    if (q < kPsiEpsilon) q = kPsiEpsilon;
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

double KlDivergence(const uint64_t* expected, const uint64_t* actual,
                    int k) {
  uint64_t te = 0, ta = 0;
  for (int i = 0; i < k; ++i) {
    te += expected[i];
    ta += actual[i];
  }
  if (te == 0 || ta == 0) return 0.0;
  double kl = 0.0;
  for (int i = 0; i < k; ++i) {
    double p = static_cast<double>(expected[i]) / static_cast<double>(te);
    double q = static_cast<double>(actual[i]) / static_cast<double>(ta);
    if (p == q || q == 0.0) continue;  // q log(q/p): lim q->0 term is 0.
    if (p < kPsiEpsilon) p = kPsiEpsilon;
    kl += q * std::log(q / p);
  }
  return kl;
}

double ExpectedCalibrationError(const uint64_t* count,
                                const double* score_sum, const uint64_t* pos,
                                int k) {
  uint64_t total = 0;
  for (int i = 0; i < k; ++i) total += count[i];
  if (total == 0) return 0.0;
  double ece = 0.0;
  for (int i = 0; i < k; ++i) {
    if (count[i] == 0) continue;
    const double n = static_cast<double>(count[i]);
    const double confidence = score_sum[i] / n;
    const double accuracy = static_cast<double>(pos[i]) / n;
    ece += (n / static_cast<double>(total)) *
           std::fabs(confidence - accuracy);
  }
  return ece;
}

// ---------------------------------------------------------------------------
// Streaming monitor.
// ---------------------------------------------------------------------------

QualityOptions QualityOptions::FromEnv() {
  QualityOptions o;
  o.psi_alert = EnvDouble("UV_PSI_ALERT", o.psi_alert);
  o.label_window = EnvInt("UV_LABEL_WINDOW", o.label_window);
  return o;
}

QualityMonitor::QualityMonitor(QualityBaseline baseline,
                               QualityOptions options)
    : baseline_(std::move(baseline)),
      options_(options),
      feature_counts_(baseline_.columns.size() *
                      QualityBaseline::kFeatureBins),
      feature_sum_fp_(baseline_.columns.size()),
      ring_(options.label_window > 0 ? static_cast<size_t>(options.label_window)
                                     : size_t{1}),
      feature_rows_total_(
          Registry::Global().GetCounter("quality.feature_rows")),
      scores_total_(Registry::Global().GetCounter("quality.scores")),
      labels_total_(Registry::Global().GetCounter("quality.labels")),
      dim_mismatch_total_(
          Registry::Global().GetCounter("quality.feature_dim_mismatch")),
      alerts_total_(Registry::Global().GetCounter("drift.alerts")),
      alert_gauge_(Registry::Global().GetGauge("drift.alert")),
      feature_psi_max_gauge_(
          Registry::Global().GetGauge("drift.feature_psi_max_e6")),
      feature_psi_mean_gauge_(
          Registry::Global().GetGauge("drift.feature_psi_mean_e6")),
      score_psi_gauge_(Registry::Global().GetGauge("drift.score_psi_e6")),
      score_kl_gauge_(Registry::Global().GetGauge("drift.score_kl_e6")),
      ece_gauge_(Registry::Global().GetGauge("quality.ece_e6")),
      precision_gauge_(Registry::Global().GetGauge("quality.precision_e6")),
      recall_gauge_(Registry::Global().GetGauge("quality.recall_e6")),
      score_hist_(Registry::Global().GetHistogram("quality.score_e6")),
      score_window_(Registry::Global().GetWindowed("quality.score_e6")) {}

void QualityMonitor::ObserveBatch(const float* features, int n, int d,
                                  const float* scores) {
  if (n <= 0) return;
  const int cols = static_cast<int>(baseline_.columns.size());
  if (features != nullptr && cols > 0) {
    if (d == cols) {
      // Column-major with batch-local accumulators: one pass over the
      // batch costs <= kFeatureBins + 1 atomic RMWs per column instead of
      // two per value. Integer sums commute, so the merged sketch is
      // unchanged by the reassociation.
      for (int c = 0; c < d; ++c) {
        const float* edges = baseline_.columns[static_cast<size_t>(c)].edges;
        uint64_t local[QualityBaseline::kFeatureBins] = {};
        int64_t sum = 0;
        const float* v = features + c;
        for (int r = 0; r < n; ++r, v += d) {
          ++local[QualityBaseline::FeatureBin(*v, edges)];
          sum += ToFixed(*v, kFeatureFpScale);
        }
        std::atomic<uint64_t>* bins =
            feature_counts_.data() +
            static_cast<size_t>(c) * QualityBaseline::kFeatureBins;
        for (int b = 0; b < QualityBaseline::kFeatureBins; ++b) {
          if (local[b] != 0) {
            bins[b].fetch_add(local[b], std::memory_order_relaxed);
          }
        }
        if (sum != 0) {
          feature_sum_fp_[static_cast<size_t>(c)].fetch_add(
              sum, std::memory_order_relaxed);
        }
      }
      feature_rows_.fetch_add(static_cast<uint64_t>(n),
                              std::memory_order_relaxed);
      feature_rows_total_.Inc(static_cast<uint64_t>(n));
    } else {
      dim_mismatch_total_.Inc();
    }
  }
  if (scores != nullptr) {
    uint64_t local[QualityBaseline::kScoreBins] = {};
    for (int r = 0; r < n; ++r) {
      ++local[QualityBaseline::ScoreBin(scores[r])];
      const int64_t e6 = ToMicro(static_cast<double>(scores[r]));
      const uint64_t sample = e6 > 0 ? static_cast<uint64_t>(e6) : 0;
      score_hist_.Record(sample);
      score_window_.Record(sample);
    }
    for (int b = 0; b < QualityBaseline::kScoreBins; ++b) {
      if (local[b] != 0) {
        score_counts_[b].fetch_add(local[b], std::memory_order_relaxed);
      }
    }
    scores_seen_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
    scores_total_.Inc(static_cast<uint64_t>(n));
  }
  const uint64_t batch =
      batches_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.publish_every_batches > 0 &&
      batch % static_cast<uint64_t>(options_.publish_every_batches) == 0) {
    Publish();
  }
}

void QualityMonitor::ObserveLabels(const float* scores, const int* labels,
                                   int n) {
  if (n <= 0) return;
  for (int i = 0; i < n; ++i) {
    const int b = QualityBaseline::CalibBin(scores[i]);
    calib_count_[b].fetch_add(1, std::memory_order_relaxed);
    calib_score_fp_[b].fetch_add(ToFixed(scores[i], kScoreFpScale),
                                 std::memory_order_relaxed);
    if (labels[i] != 0) calib_pos_[b].fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (int i = 0; i < n; ++i) {
      ring_[ring_next_] = {scores[i], labels[i]};
      ring_next_ = (ring_next_ + 1) % ring_.size();
      ++ring_total_;
    }
  }
  labels_seen_.fetch_add(static_cast<uint64_t>(n),
                         std::memory_order_relaxed);
  labels_total_.Inc(static_cast<uint64_t>(n));
}

DriftReport QualityMonitor::ComputeDrift() const {
  DriftReport r;
  uint64_t base_scores = 0;
  for (const uint64_t c : baseline_.score_counts) base_scores += c;
  r.has_baseline = !baseline_.empty() || base_scores > 0;
  r.feature_rows = feature_rows_.load(std::memory_order_relaxed);
  r.scores = scores_seen_.load(std::memory_order_relaxed);
  r.columns = static_cast<int>(baseline_.columns.size());
  const uint64_t rows = r.feature_rows;
  if (r.columns > 0 && rows > 0) {
    double psi_sum = 0.0;
    uint64_t serving[QualityBaseline::kFeatureBins];
    for (int c = 0; c < r.columns; ++c) {
      const QualityBaseline::Column& col =
          baseline_.columns[static_cast<size_t>(c)];
      for (int b = 0; b < QualityBaseline::kFeatureBins; ++b) {
        serving[b] = feature_counts_[static_cast<size_t>(c) *
                                         QualityBaseline::kFeatureBins +
                                     static_cast<size_t>(b)]
                         .load(std::memory_order_relaxed);
      }
      const double psi = PopulationStabilityIndex(
          col.counts, serving, QualityBaseline::kFeatureBins);
      psi_sum += psi;
      if (psi > r.feature_psi_max) {
        r.feature_psi_max = psi;
        r.feature_psi_argmax = c;
      }
      const double serving_mean =
          (static_cast<double>(feature_sum_fp_[static_cast<size_t>(c)].load(
               std::memory_order_relaxed)) /
           kFeatureFpScale) /
          static_cast<double>(rows);
      const double denom =
          col.stdev > 1e-6f ? static_cast<double>(col.stdev) : 1e-6;
      const double zshift =
          std::fabs(serving_mean - static_cast<double>(col.mean)) / denom;
      if (zshift > r.feature_mean_zshift_max) {
        r.feature_mean_zshift_max = zshift;
      }
    }
    r.feature_psi_mean = psi_sum / static_cast<double>(r.columns);
  }
  if (r.scores > 0) {
    uint64_t serving[QualityBaseline::kScoreBins];
    for (int b = 0; b < QualityBaseline::kScoreBins; ++b) {
      serving[b] = score_counts_[b].load(std::memory_order_relaxed);
    }
    r.score_psi = PopulationStabilityIndex(baseline_.score_counts, serving,
                                           QualityBaseline::kScoreBins);
    r.score_kl = KlDivergence(baseline_.score_counts, serving,
                              QualityBaseline::kScoreBins);
  }
  r.alert = (r.feature_psi_max > options_.psi_alert ||
             r.score_psi > options_.psi_alert);
  return r;
}

CalibrationReport QualityMonitor::ComputeCalibration() const {
  CalibrationReport r;
  r.labels = labels_seen_.load(std::memory_order_relaxed);
  uint64_t count[QualityBaseline::kCalibBins];
  double score_sum[QualityBaseline::kCalibBins];
  uint64_t pos[QualityBaseline::kCalibBins];
  for (int b = 0; b < QualityBaseline::kCalibBins; ++b) {
    count[b] = calib_count_[b].load(std::memory_order_relaxed);
    score_sum[b] = static_cast<double>(calib_score_fp_[b].load(
                       std::memory_order_relaxed)) /
                   kScoreFpScale;
    pos[b] = calib_pos_[b].load(std::memory_order_relaxed);
  }
  r.ece = ExpectedCalibrationError(count, score_sum, pos,
                                   QualityBaseline::kCalibBins);
  r.baseline_ece = ExpectedCalibrationError(
      baseline_.calib_count, baseline_.calib_score_sum, baseline_.calib_pos,
      QualityBaseline::kCalibBins);
  uint64_t tp = 0, fp = 0, fn = 0;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const size_t filled = ring_total_ < ring_.size()
                              ? static_cast<size_t>(ring_total_)
                              : ring_.size();
    r.window_labels = filled;
    for (size_t i = 0; i < filled; ++i) {
      const bool predicted = ring_[i].first >= 0.5f;
      const bool actual = ring_[i].second != 0;
      if (predicted && actual) ++tp;
      if (predicted && !actual) ++fp;
      if (!predicted && actual) ++fn;
    }
  }
  r.precision = tp + fp > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0.0;
  r.recall = tp + fn > 0
                 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                 : 0.0;
  return r;
}

void QualityMonitor::Publish() {
  const DriftReport drift = ComputeDrift();
  const CalibrationReport calib = ComputeCalibration();
  std::lock_guard<std::mutex> lock(publish_mu_);
  feature_psi_max_gauge_.Set(ToMicro(drift.feature_psi_max));
  feature_psi_mean_gauge_.Set(ToMicro(drift.feature_psi_mean));
  score_psi_gauge_.Set(ToMicro(drift.score_psi));
  score_kl_gauge_.Set(ToMicro(drift.score_kl));
  ece_gauge_.Set(ToMicro(calib.ece));
  precision_gauge_.Set(ToMicro(calib.precision));
  recall_gauge_.Set(ToMicro(calib.recall));
  alert_gauge_.Set(drift.alert ? 1 : 0);
  if (drift.alert && !last_alert_) alerts_total_.Inc();
  last_alert_ = drift.alert;
  if (MetricsLogEnabled()) {
    MetricsRecord("quality")
        .Int("feature_rows", static_cast<int64_t>(drift.feature_rows))
        .Int("scores", static_cast<int64_t>(drift.scores))
        .Int("labels", static_cast<int64_t>(calib.labels))
        .Num("feature_psi_max", drift.feature_psi_max)
        .Num("feature_psi_mean", drift.feature_psi_mean)
        .Num("score_psi", drift.score_psi)
        .Num("score_kl", drift.score_kl)
        .Num("ece", calib.ece)
        .Num("precision", calib.precision)
        .Num("recall", calib.recall)
        .Int("alert", drift.alert ? 1 : 0)
        .Emit();
  }
}

void QualityMonitor::Reset() {
  for (auto& a : feature_counts_) a.store(0, std::memory_order_relaxed);
  for (auto& a : feature_sum_fp_) a.store(0, std::memory_order_relaxed);
  feature_rows_.store(0, std::memory_order_relaxed);
  for (auto& a : score_counts_) a.store(0, std::memory_order_relaxed);
  scores_seen_.store(0, std::memory_order_relaxed);
  batches_seen_.store(0, std::memory_order_relaxed);
  for (auto& a : calib_count_) a.store(0, std::memory_order_relaxed);
  for (auto& a : calib_score_fp_) a.store(0, std::memory_order_relaxed);
  for (auto& a : calib_pos_) a.store(0, std::memory_order_relaxed);
  labels_seen_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_next_ = 0;
    ring_total_ = 0;
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  last_alert_ = false;
}

}  // namespace uv::obs
