#ifndef UV_CORE_CMSF_DETECTOR_H_
#define UV_CORE_CMSF_DETECTOR_H_

#include <memory>
#include <optional>
#include <string>

#include "core/cmsf_model.h"
#include "eval/detector.h"
#include "io/checkpoint.h"
#include "util/status.h"

namespace uv::core {

// eval::Detector adapter for CMSF and its Fig. 5(a) ablation variants.
// Constructed per fold; Train runs both stages (Algorithms 1 and 2).
class CmsfDetector : public eval::Detector {
 public:
  CmsfDetector(const CmsfConfig& config, std::string name = "CMSF")
      : config_(config), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;

  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;

  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return train_epoch_seconds_; }
  double LastInferenceSeconds() const override { return inference_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_seconds_;
  }

  const CmsfModel* model() const { return model_.get(); }
  const CmsfModel::FrozenAssignment& frozen() const { return frozen_; }

  // Persists the trained model as a v2 UVCK checkpoint: all parameters
  // plus the frozen stage-one assignment, the serialized config, a
  // fingerprint of the URG the model was trained on, and the training-time
  // quality baseline (built on first save from the grad-free trunk over
  // the full graph — the same representation serving engines observe — and
  // cached thereafter, so save -> load -> save stays byte-identical).
  Status SaveModel(const urg::UrbanRegionGraph& urg, const std::string& path);
  // Restores a saved checkpoint: validates version / model name / URG
  // fingerprint, adopts the checkpoint's config and quality baseline, and
  // rebuilds the model.
  Status LoadModel(const urg::UrbanRegionGraph& urg, const std::string& path);

  // The training-time baseline for drift monitors. Built lazily by
  // SaveModel (or explicitly here); empty() until the detector has been
  // trained or loaded from a v2 checkpoint.
  const obs::QualityBaseline& baseline(const urg::UrbanRegionGraph& urg) {
    EnsureBaseline(urg);
    return baseline_;
  }

 private:
  void EnsureBaseline(const urg::UrbanRegionGraph& urg);

  CmsfConfig config_;
  std::string name_;
  bool minibatch_ = false;
  std::unique_ptr<CmsfModel> model_;
  std::optional<CmsfInputs> inputs_;
  CmsfModel::FrozenAssignment frozen_;
  io::UrgFingerprint fingerprint_;
  obs::QualityBaseline baseline_;
  // Retained from Train so the baseline's calibration bins can pair
  // training scores with ground truth; empty after LoadModel (the loaded
  // baseline already carries them).
  std::vector<int> train_ids_;
  std::vector<int> train_labels_;
  double train_epoch_seconds_ = 0.0;
  double inference_seconds_ = 0.0;
  // Master-stage epochs only, matching train_epoch_seconds_ (Table III
  // quotes the master stage as the training time).
  std::vector<double> epoch_seconds_;
};

}  // namespace uv::core

#endif  // UV_CORE_CMSF_DETECTOR_H_
