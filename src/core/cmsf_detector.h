#ifndef UV_CORE_CMSF_DETECTOR_H_
#define UV_CORE_CMSF_DETECTOR_H_

#include <memory>
#include <optional>
#include <string>

#include "core/cmsf_model.h"
#include "eval/detector.h"
#include "io/checkpoint.h"
#include "util/status.h"

namespace uv::core {

// eval::Detector adapter for CMSF and its Fig. 5(a) ablation variants.
// Constructed per fold; Train runs both stages (Algorithms 1 and 2).
class CmsfDetector : public eval::Detector {
 public:
  CmsfDetector(const CmsfConfig& config, std::string name = "CMSF")
      : config_(config), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  void Train(const urg::UrbanRegionGraph& urg,
             const std::vector<int>& train_ids,
             const std::vector<int>& train_labels) override;

  std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                           const std::vector<int>& eval_ids) override;

  int64_t NumParameters() const override;
  double TrainSecondsPerEpoch() const override { return train_epoch_seconds_; }
  double LastInferenceSeconds() const override { return inference_seconds_; }
  std::vector<double> EpochSecondsHistory() const override {
    return epoch_seconds_;
  }

  const CmsfModel* model() const { return model_.get(); }
  const CmsfModel::FrozenAssignment& frozen() const { return frozen_; }

  // Persists the trained model as a versioned UVCK checkpoint: all
  // parameters plus the frozen stage-one assignment, the serialized config,
  // and a fingerprint of the URG the model was trained on.
  Status SaveModel(const std::string& path) const;
  // Restores a saved checkpoint: validates version / model name / URG
  // fingerprint, adopts the checkpoint's config, and rebuilds the model.
  Status LoadModel(const urg::UrbanRegionGraph& urg, const std::string& path);

 private:
  CmsfConfig config_;
  std::string name_;
  bool minibatch_ = false;
  std::unique_ptr<CmsfModel> model_;
  std::optional<CmsfInputs> inputs_;
  CmsfModel::FrozenAssignment frozen_;
  io::UrgFingerprint fingerprint_;
  double train_epoch_seconds_ = 0.0;
  double inference_seconds_ = 0.0;
  // Master-stage epochs only, matching train_epoch_seconds_ (Table III
  // quotes the master stage as the training time).
  std::vector<double> epoch_seconds_;
};

}  // namespace uv::core

#endif  // UV_CORE_CMSF_DETECTOR_H_
