#include "core/config_codec.h"

#include <cstring>

namespace uv::core {
namespace {

// Bump when the field layout below changes. Independent of the UVCK
// checkpoint schema version.
constexpr uint8_t kCodecVersion = 1;

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}
  template <typename T>
  void Pod(const T& value) {
    const size_t off = out_->size();
    out_->resize(off + sizeof(T));
    std::memcpy(out_->data() + off, &value, sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& blob) : blob_(blob) {}
  template <typename T>
  bool Pod(T* value) {
    if (pos_ + sizeof(T) > blob_.size()) return false;
    std::memcpy(value, blob_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool AtEnd() const { return pos_ == blob_.size(); }

 private:
  const std::vector<uint8_t>& blob_;
  size_t pos_ = 0;
};

bool ReadAggKind(Reader* r, nn::AggKind* kind) {
  int32_t raw = 0;
  if (!r->Pod(&raw)) return false;
  if (raw < 0 || raw > static_cast<int32_t>(nn::AggKind::kAttention)) {
    return false;
  }
  *kind = static_cast<nn::AggKind>(raw);
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeCmsfConfig(const CmsfConfig& config) {
  std::vector<uint8_t> blob;
  Writer w(&blob);
  w.Pod(kCodecVersion);
  w.Pod(static_cast<int32_t>(config.image_reduce_dim));
  w.Pod(static_cast<int32_t>(config.hidden_dim));
  w.Pod(static_cast<int32_t>(config.maga_layers));
  w.Pod(static_cast<int32_t>(config.maga_heads));
  w.Pod(static_cast<int32_t>(config.maga_agg));
  w.Pod(static_cast<int32_t>(config.num_clusters));
  w.Pod(config.temperature);
  w.Pod(static_cast<int32_t>(config.gscm_agg));
  w.Pod(static_cast<int32_t>(config.classifier_hidden));
  w.Pod(static_cast<int32_t>(config.context_dim));
  w.Pod(static_cast<uint8_t>(config.use_maga ? 1 : 0));
  w.Pod(static_cast<uint8_t>(config.use_hierarchy ? 1 : 0));
  w.Pod(static_cast<uint8_t>(config.use_gate ? 1 : 0));
  w.Pod(static_cast<int32_t>(config.master_epochs));
  w.Pod(static_cast<int32_t>(config.slave_epochs));
  w.Pod(config.learning_rate);
  w.Pod(config.lr_decay_per_epoch);
  w.Pod(config.lambda);
  w.Pod(config.pos_weight);
  w.Pod(config.clip_norm);
  w.Pod(config.seed);
  w.Pod(static_cast<int32_t>(config.batch_size));
  w.Pod(static_cast<int32_t>(config.fanout));
  return blob;
}

StatusOr<CmsfConfig> DecodeCmsfConfig(const std::vector<uint8_t>& blob) {
  Reader r(blob);
  const auto bad = [] {
    return Status::InvalidArgument("malformed CmsfConfig blob");
  };
  uint8_t version = 0;
  if (!r.Pod(&version)) return bad();
  if (version != kCodecVersion) {
    return Status::InvalidArgument("unsupported CmsfConfig blob version " +
                                   std::to_string(version));
  }
  CmsfConfig config;
  int32_t i32 = 0;
  uint8_t u8 = 0;
  if (!r.Pod(&i32)) return bad();
  config.image_reduce_dim = i32;
  if (!r.Pod(&i32)) return bad();
  config.hidden_dim = i32;
  if (!r.Pod(&i32)) return bad();
  config.maga_layers = i32;
  if (!r.Pod(&i32)) return bad();
  config.maga_heads = i32;
  if (!ReadAggKind(&r, &config.maga_agg)) return bad();
  if (!r.Pod(&i32)) return bad();
  config.num_clusters = i32;
  if (!r.Pod(&config.temperature)) return bad();
  if (!ReadAggKind(&r, &config.gscm_agg)) return bad();
  if (!r.Pod(&i32)) return bad();
  config.classifier_hidden = i32;
  if (!r.Pod(&i32)) return bad();
  config.context_dim = i32;
  if (!r.Pod(&u8)) return bad();
  config.use_maga = u8 != 0;
  if (!r.Pod(&u8)) return bad();
  config.use_hierarchy = u8 != 0;
  if (!r.Pod(&u8)) return bad();
  config.use_gate = u8 != 0;
  if (!r.Pod(&i32)) return bad();
  config.master_epochs = i32;
  if (!r.Pod(&i32)) return bad();
  config.slave_epochs = i32;
  if (!r.Pod(&config.learning_rate)) return bad();
  if (!r.Pod(&config.lr_decay_per_epoch)) return bad();
  if (!r.Pod(&config.lambda)) return bad();
  if (!r.Pod(&config.pos_weight)) return bad();
  if (!r.Pod(&config.clip_norm)) return bad();
  if (!r.Pod(&config.seed)) return bad();
  if (!r.Pod(&i32)) return bad();
  config.batch_size = i32;
  if (!r.Pod(&i32)) return bad();
  config.fanout = i32;
  if (!r.AtEnd()) return bad();
  return config;
}

}  // namespace uv::core
