#include "core/cmsf_detector.h"

#include "core/config_codec.h"
#include "io/checkpoint.h"
#include "util/timer.h"

namespace uv::core {

void CmsfDetector::Train(const urg::UrbanRegionGraph& urg,
                         const std::vector<int>& train_ids,
                         const std::vector<int>& train_labels) {
  Rng rng(config_.seed);
  minibatch_ = config_.batch_size > 0;
  fingerprint_ = io::UrgFingerprint::FromUrg(urg);
  model_ = std::make_unique<CmsfModel>(config_, urg.PoiDim(), urg.ImageDim(),
                                       &rng);
  if (minibatch_) {
    // Neighborhood-sampled path: never materializes full-graph inputs.
    MasterTrainResult master =
        TrainMasterMinibatch(model_.get(), urg, train_ids, train_labels);
    frozen_ = std::move(master.frozen);
    train_epoch_seconds_ = master.seconds_per_epoch;
    epoch_seconds_ = std::move(master.epoch_seconds);
    TrainSlaveMinibatch(model_.get(), urg, frozen_, train_ids, train_labels);
    return;
  }
  inputs_ = CmsfInputs::FromUrg(urg);
  MasterTrainResult master =
      TrainMaster(model_.get(), *inputs_, train_ids, train_labels);
  frozen_ = std::move(master.frozen);
  // Table III reports the master stage as the training time: it dominates,
  // and the slave stage "only needs very few iterations" (paper VI-G).
  train_epoch_seconds_ = master.seconds_per_epoch;
  epoch_seconds_ = std::move(master.epoch_seconds);
  TrainSlave(model_.get(), *inputs_, frozen_, train_ids, train_labels);
}

std::vector<float> CmsfDetector::Score(const urg::UrbanRegionGraph& urg,
                                       const std::vector<int>& eval_ids) {
  WallTimer timer;
  const CmsfModel::FrozenAssignment* frozen =
      config_.use_hierarchy ? &frozen_ : nullptr;
  std::vector<float> scores;
  if (minibatch_) {
    scores = PredictCmsfMinibatch(*model_, urg, frozen, eval_ids);
  } else {
    (void)urg;  // Inputs were captured at Train time.
    scores = PredictCmsf(*model_, *inputs_, frozen, eval_ids);
  }
  inference_seconds_ = timer.Seconds();
  return scores;
}

Status CmsfDetector::SaveModel(const std::string& path) const {
  if (!model_) return Status::FailedPrecondition("detector is not trained");
  io::Checkpoint ck;
  ck.model_name = name_;
  ck.config = EncodeCmsfConfig(config_);
  ck.fingerprint = fingerprint_;
  for (const auto& p : model_->AllParams()) ck.tensors.push_back(p->value);
  // Frozen stage-one assignment rides along as three extra tensors.
  ck.tensors.push_back(frozen_.soft);
  Tensor hard(1, static_cast<int>(frozen_.hard.size()));
  for (size_t i = 0; i < frozen_.hard.size(); ++i) {
    hard.at(0, static_cast<int>(i)) = static_cast<float>(frozen_.hard[i]);
  }
  ck.tensors.push_back(std::move(hard));
  Tensor pseudo(1, static_cast<int>(frozen_.pseudo_labels.size()));
  for (size_t i = 0; i < frozen_.pseudo_labels.size(); ++i) {
    pseudo.at(0, static_cast<int>(i)) =
        static_cast<float>(frozen_.pseudo_labels[i]);
  }
  ck.tensors.push_back(std::move(pseudo));
  return io::SaveCheckpoint(path, ck);
}

Status CmsfDetector::LoadModel(const urg::UrbanRegionGraph& urg,
                               const std::string& path) {
  auto loaded = io::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  io::Checkpoint& ck = loaded.value();
  const io::UrgFingerprint fingerprint = io::UrgFingerprint::FromUrg(urg);
  Status valid = io::ValidateCheckpoint(ck, name_, fingerprint);
  if (!valid.ok()) return valid;
  auto config = DecodeCmsfConfig(ck.config);
  if (!config.ok()) return config.status();
  config_ = config.value();
  fingerprint_ = fingerprint;
  std::vector<Tensor>& tensors = ck.tensors;

  Rng rng(config_.seed);
  minibatch_ = config_.batch_size > 0;
  if (!minibatch_) inputs_ = CmsfInputs::FromUrg(urg);
  model_ = std::make_unique<CmsfModel>(config_, urg.PoiDim(), urg.ImageDim(),
                                       &rng);
  auto params = model_->AllParams();
  if (tensors.size() != params.size() + 3) {
    return Status::InvalidArgument("checkpoint layout mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].SameShape(params[i]->value)) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    params[i]->value = std::move(tensors[i]);
  }
  frozen_.soft = std::move(tensors[params.size()]);
  const Tensor& hard = tensors[params.size() + 1];
  frozen_.hard.resize(hard.cols());
  for (int i = 0; i < hard.cols(); ++i) {
    frozen_.hard[i] = static_cast<int>(hard.at(0, i));
  }
  const Tensor& pseudo = tensors[params.size() + 2];
  frozen_.pseudo_labels.resize(pseudo.cols());
  for (int i = 0; i < pseudo.cols(); ++i) {
    frozen_.pseudo_labels[i] = static_cast<int>(pseudo.at(0, i));
  }
  return Status::Ok();
}

int64_t CmsfDetector::NumParameters() const {
  if (!model_) return 0;
  int64_t total = 0;
  for (const auto& p : model_->AllParams()) total += p->value.size();
  return total;
}

}  // namespace uv::core
