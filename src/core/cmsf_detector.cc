#include "core/cmsf_detector.h"

#include <numeric>

#include "core/config_codec.h"
#include "io/checkpoint.h"
#include "nn/graph_context.h"
#include "obs/quality.h"
#include "util/timer.h"

namespace uv::core {

void CmsfDetector::Train(const urg::UrbanRegionGraph& urg,
                         const std::vector<int>& train_ids,
                         const std::vector<int>& train_labels) {
  Rng rng(config_.seed);
  minibatch_ = config_.batch_size > 0;
  fingerprint_ = io::UrgFingerprint::FromUrg(urg);
  // A new training run invalidates any cached quality baseline; the ids
  // and labels are retained so the baseline's calibration bins can pair
  // training scores with ground truth at save time.
  baseline_ = obs::QualityBaseline();
  train_ids_ = train_ids;
  train_labels_ = train_labels;
  model_ = std::make_unique<CmsfModel>(config_, urg.PoiDim(), urg.ImageDim(),
                                       &rng);
  if (minibatch_) {
    // Neighborhood-sampled path: never materializes full-graph inputs.
    MasterTrainResult master =
        TrainMasterMinibatch(model_.get(), urg, train_ids, train_labels);
    frozen_ = std::move(master.frozen);
    train_epoch_seconds_ = master.seconds_per_epoch;
    epoch_seconds_ = std::move(master.epoch_seconds);
    TrainSlaveMinibatch(model_.get(), urg, frozen_, train_ids, train_labels);
    return;
  }
  inputs_ = CmsfInputs::FromUrg(urg);
  MasterTrainResult master =
      TrainMaster(model_.get(), *inputs_, train_ids, train_labels);
  frozen_ = std::move(master.frozen);
  // Table III reports the master stage as the training time: it dominates,
  // and the slave stage "only needs very few iterations" (paper VI-G).
  train_epoch_seconds_ = master.seconds_per_epoch;
  epoch_seconds_ = std::move(master.epoch_seconds);
  TrainSlave(model_.get(), *inputs_, frozen_, train_ids, train_labels);
}

std::vector<float> CmsfDetector::Score(const urg::UrbanRegionGraph& urg,
                                       const std::vector<int>& eval_ids) {
  WallTimer timer;
  const CmsfModel::FrozenAssignment* frozen =
      config_.use_hierarchy ? &frozen_ : nullptr;
  std::vector<float> scores;
  if (minibatch_) {
    scores = PredictCmsfMinibatch(*model_, urg, frozen, eval_ids);
  } else {
    (void)urg;  // Inputs were captured at Train time.
    scores = PredictCmsf(*model_, *inputs_, frozen, eval_ids);
  }
  inference_seconds_ = timer.Seconds();
  return scores;
}

void CmsfDetector::EnsureBaseline(const urg::UrbanRegionGraph& urg) {
  if (!baseline_.empty() || !model_) return;
  // The baseline observes exactly what serving engines observe: the
  // grad-free trunk over the full graph (engine workspaces gather rows of
  // this matrix) and the full-graph predicted scores, which are
  // bit-identical to the engine's by the inference-engine contract. The
  // full-graph path is used even for minibatch-trained detectors — the
  // baseline is a property of the model over the whole training city, not
  // of how training happened to be batched.
  const nn::GraphContext ctx = nn::GraphContext::FromCsr(urg.adjacency);
  const Tensor trunk =
      model_->TrunkRaw(urg.poi_features, urg.image_features, ctx);
  const CmsfModel::FrozenAssignment* frozen =
      config_.use_hierarchy ? &frozen_ : nullptr;
  std::vector<int> all_ids(static_cast<size_t>(urg.num_regions()));
  std::iota(all_ids.begin(), all_ids.end(), 0);
  std::vector<float> scores;
  if (!minibatch_ && inputs_) {
    scores = PredictCmsf(*model_, *inputs_, frozen, all_ids);
  } else {
    const CmsfInputs inputs = CmsfInputs::FromUrg(urg);
    scores = PredictCmsf(*model_, inputs, frozen, all_ids);
  }
  std::vector<float> labeled_scores(train_ids_.size());
  for (size_t i = 0; i < train_ids_.size(); ++i) {
    labeled_scores[i] = scores[static_cast<size_t>(train_ids_[i])];
  }
  baseline_ = obs::BuildQualityBaseline(
      trunk.data(), trunk.rows(), trunk.cols(), scores.data(),
      static_cast<int64_t>(scores.size()), labeled_scores.data(),
      train_labels_.data(), static_cast<int64_t>(train_ids_.size()));
}

Status CmsfDetector::SaveModel(const urg::UrbanRegionGraph& urg,
                               const std::string& path) {
  if (!model_) return Status::FailedPrecondition("detector is not trained");
  EnsureBaseline(urg);
  io::Checkpoint ck;
  ck.model_name = name_;
  ck.config = EncodeCmsfConfig(config_);
  ck.fingerprint = fingerprint_;
  ck.baseline = baseline_;
  for (const auto& p : model_->AllParams()) ck.tensors.push_back(p->value);
  // Frozen stage-one assignment rides along as three extra tensors.
  ck.tensors.push_back(frozen_.soft);
  Tensor hard(1, static_cast<int>(frozen_.hard.size()));
  for (size_t i = 0; i < frozen_.hard.size(); ++i) {
    hard.at(0, static_cast<int>(i)) = static_cast<float>(frozen_.hard[i]);
  }
  ck.tensors.push_back(std::move(hard));
  Tensor pseudo(1, static_cast<int>(frozen_.pseudo_labels.size()));
  for (size_t i = 0; i < frozen_.pseudo_labels.size(); ++i) {
    pseudo.at(0, static_cast<int>(i)) =
        static_cast<float>(frozen_.pseudo_labels[i]);
  }
  ck.tensors.push_back(std::move(pseudo));
  return io::SaveCheckpoint(path, ck);
}

Status CmsfDetector::LoadModel(const urg::UrbanRegionGraph& urg,
                               const std::string& path) {
  auto loaded = io::LoadCheckpoint(path);
  if (!loaded.ok()) return loaded.status();
  io::Checkpoint& ck = loaded.value();
  const io::UrgFingerprint fingerprint = io::UrgFingerprint::FromUrg(urg);
  Status valid = io::ValidateCheckpoint(ck, name_, fingerprint);
  if (!valid.ok()) return valid;
  auto config = DecodeCmsfConfig(ck.config);
  if (!config.ok()) return config.status();
  config_ = config.value();
  fingerprint_ = fingerprint;
  std::vector<Tensor>& tensors = ck.tensors;

  Rng rng(config_.seed);
  minibatch_ = config_.batch_size > 0;
  if (!minibatch_) inputs_ = CmsfInputs::FromUrg(urg);
  model_ = std::make_unique<CmsfModel>(config_, urg.PoiDim(), urg.ImageDim(),
                                       &rng);
  auto params = model_->AllParams();
  if (tensors.size() != params.size() + 3) {
    return Status::InvalidArgument("checkpoint layout mismatch");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!tensors[i].SameShape(params[i]->value)) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    params[i]->value = std::move(tensors[i]);
  }
  frozen_.soft = std::move(tensors[params.size()]);
  const Tensor& hard = tensors[params.size() + 1];
  frozen_.hard.resize(hard.cols());
  for (int i = 0; i < hard.cols(); ++i) {
    frozen_.hard[i] = static_cast<int>(hard.at(0, i));
  }
  const Tensor& pseudo = tensors[params.size() + 2];
  frozen_.pseudo_labels.resize(pseudo.cols());
  for (int i = 0; i < pseudo.cols(); ++i) {
    frozen_.pseudo_labels[i] = static_cast<int>(pseudo.at(0, i));
  }
  // Adopt the checkpoint's baseline verbatim (never recompute: the counts
  // must stay byte-identical across save -> load -> save). The training
  // ids/labels belong to whatever run produced the file, not this process.
  baseline_ = std::move(ck.baseline);
  train_ids_.clear();
  train_labels_.clear();
  return Status::Ok();
}

int64_t CmsfDetector::NumParameters() const {
  if (!model_) return 0;
  int64_t total = 0;
  for (const auto& p : model_->AllParams()) total += p->value.size();
  return total;
}

}  // namespace uv::core
