#ifndef UV_CORE_CMSF_CONFIG_H_
#define UV_CORE_CMSF_CONFIG_H_

#include <cstdint>

#include "nn/maga.h"

namespace uv::core {

// Hyper-parameters of the Contextual Master-Slave Framework. Defaults
// follow Section VI-A of the paper where feasible on one CPU core; the
// per-city settings the paper tunes (K, tau, lambda, heads, GSCM AGG) are
// set by the benchmark harness per dataset.
struct CmsfConfig {
  // --- Architecture ------------------------------------------------------
  int image_reduce_dim = 128;  // Linear reduction of image features first.
  int hidden_dim = 64;         // Paper: hidden size 64.
  int maga_layers = 2;         // Paper: two stacked MAGA layers.
  int maga_heads = 2;          // Paper: 2 heads (SZ/FZ), 1 (BJ).
  nn::AggKind maga_agg = nn::AggKind::kAttention;  // Paper Section VI-A.
  int num_clusters = 50;       // Paper K: 50 (SZ), 500 (FZ/BJ).
  float temperature = 0.1f;    // Paper tau: 0.1 / 0.01 / 0.1.
  nn::AggKind gscm_agg = nn::AggKind::kSum;  // Paper: sum (SZ/FZ), concat (BJ).
  int classifier_hidden = 32;  // Master 2-layer MLP hidden width.
  int context_dim = 16;        // Width of the region context vector q_i.

  // --- Ablation variants (Fig. 5a) ---------------------------------------
  bool use_maga = true;       // false = CMSF-M (vanilla GAT, no inter-modal).
  bool use_hierarchy = true;  // false = CMSF-H (no GSCM, no MS-Gate).
  bool use_gate = true;       // false = CMSF-G (master model only).

  // --- Training -----------------------------------------------------------
  int master_epochs = 120;
  int slave_epochs = 15;  // Paper: "the slave stage only needs very few
                          // iterations".
  // The paper trains with Adam at 1e-4; on a single CPU core we default to
  // a higher rate with the same exponential decay to reach comparable
  // optima in fewer epochs. Both are configurable.
  double learning_rate = 2e-3;
  double lr_decay_per_epoch = 0.999;  // Paper: 0.1% exponential decay.
  double lambda = 0.01;  // Balancing weight (paper: 0.01 / 1.0 / 0.001).
  // Positive-class weight in the detection BCE; 0 = auto (num_neg/num_pos).
  // Applied identically to every trained method via TrainingUtil.
  double pos_weight = 0.0;
  double clip_norm = 5.0;
  uint64_t seed = 2023;

  // Neighborhood-sampled minibatch training (paper-scale cities): > 0
  // trains both stages on per-batch 2-hop subgraphs instead of full-graph
  // forwards. Under minibatches the GSCM cluster representations are
  // aggregated from the batch's regions only (a documented approximation);
  // the frozen stage-one assignment is still computed exactly over every
  // region with fanout-unlimited chunks.
  int batch_size = 0;
  int fanout = 16;  // Sampled in-neighbors per node; 0 keeps them all.
};

}  // namespace uv::core

#endif  // UV_CORE_CMSF_CONFIG_H_
