#ifndef UV_CORE_CMSF_MODEL_H_
#define UV_CORE_CMSF_MODEL_H_

#include <memory>
#include <vector>

#include "core/cmsf_config.h"
#include "nn/gat.h"
#include "nn/graph_context.h"
#include "nn/gscm.h"
#include "nn/linear.h"
#include "nn/ms_gate.h"
#include "urg/urban_region_graph.h"

namespace uv::core {

// Constant model inputs derived once per URG: the two feature modalities
// and the shared edge-index structures.
struct CmsfInputs {
  ag::VarPtr poi;    // (N x d_poi) constant.
  ag::VarPtr image;  // (N x d_img) constant.
  nn::GraphContext ctx;

  static CmsfInputs FromUrg(const urg::UrbanRegionGraph& urg);
};

// The Contextual Master-Slave Framework (paper Section V): a hierarchical
// GNN master model (MAGA + GSCM + MLP classifier) trained in stage one, and
// the MS-Gate slave derivation trained in stage two.
class CmsfModel {
 public:
  CmsfModel(const CmsfConfig& config, int poi_dim, int image_dim, Rng* rng);

  struct ForwardResult {
    ag::VarPtr region_repr;   // x~' fed to the classifier.
    ag::VarPtr master_logits; // (N x 1) master-model logits.
    ag::VarPtr assignment;    // Soft B (null when hierarchy disabled).
    std::vector<int> hard_assignment;
    ag::VarPtr cluster_repr;  // H' (null when hierarchy disabled).
  };

  // Full forward pass of the master path. When `frozen` is non-null the
  // GSCM membership is pinned to the given stage-one assignment (slave
  // stage semantics).
  struct FrozenAssignment {
    Tensor soft;             // B at the end of master training.
    std::vector<int> hard;   // B~ (argmax) at the end of master training.
    std::vector<int> pseudo_labels;  // Cluster pseudo labels y^h (eq. 16).
  };
  ForwardResult Forward(const CmsfInputs& inputs,
                        const FrozenAssignment* frozen) const;

  // Slave-path logits (eq. 22) given a master forward result; requires the
  // hierarchy and gate to be enabled.
  ag::VarPtr SlaveLogits(const ForwardResult& master,
                         ag::VarPtr* out_inclusion) const;

  // Parameter sets: theta_1 (master) and theta_2 \ theta_1 (gate + pseudo
  // predictor), mirroring Algorithms 1 and 2.
  std::vector<ag::VarPtr> MasterParams() const;
  std::vector<ag::VarPtr> GateParams() const;
  std::vector<ag::VarPtr> AllParams() const;

  const CmsfConfig& config() const { return config_; }
  const nn::Mlp& classifier() const { return *classifier_; }
  const nn::MsGate& gate() const { return *gate_; }
  const nn::Gscm* gscm() const { return gscm_.get(); }
  int gscm_in_dim() const { return gscm_in_dim_; }
  int classifier_in() const { return classifier_in_; }

  // Grad-free trunk forward on raw tensors, bit-identical to Trunk's value
  // (the fused x^ entering GSCM). Used by the inference engine; builds no
  // autograd graph and emits no spans.
  Tensor TrunkRaw(const Tensor& poi, const Tensor& image,
                  const nn::GraphContext& ctx) const;

 private:
  // Representation trunk shared by all variants: returns x^ (the fused
  // multi-modal representation entering GSCM).
  ag::VarPtr Trunk(const CmsfInputs& inputs) const;

  CmsfConfig config_;
  int gscm_in_dim_ = 0;      // Width of x^.
  int classifier_in_ = 0;    // Width of x~'.

  std::unique_ptr<nn::Linear> image_reduce_;
  std::vector<nn::MagaLayer> maga_;
  // CMSF-M replacement trunk: per-modality vanilla GAT stacks.
  std::vector<nn::GatLayer> gat_p_;
  std::vector<nn::GatLayer> gat_i_;
  std::unique_ptr<nn::Gscm> gscm_;
  std::unique_ptr<nn::Mlp> classifier_;
  std::unique_ptr<nn::MsGate> gate_;
};

// Stage-one training (Algorithm 1): optimizes the master model with BCE on
// the labeled training regions and returns the frozen assignment + pseudo
// labels used by stage two. Also reports mean seconds per epoch.
struct MasterTrainResult {
  CmsfModel::FrozenAssignment frozen;
  double seconds_per_epoch = 0.0;
  double final_loss = 0.0;
  // Monotonic wall time of every epoch, in order; seconds_per_epoch is the
  // mean of these. Kept per epoch so callers can report p50/p95.
  std::vector<double> epoch_seconds;
};
MasterTrainResult TrainMaster(CmsfModel* model, const CmsfInputs& inputs,
                              const std::vector<int>& train_ids,
                              const std::vector<int>& train_labels);

// Minibatch stage-one training (CmsfConfig::batch_size > 0): every step
// samples the 2-hop neighborhood of a train-id batch, gathers its features
// through the URG (feature store at paper scale), and optimizes the master
// loss on the seed rows. The returned frozen assignment is computed EXACTLY
// over all regions with fanout-unlimited chunks, so stage two sees the same
// kind of membership snapshot as full-graph training.
MasterTrainResult TrainMasterMinibatch(CmsfModel* model,
                                       const urg::UrbanRegionGraph& urg,
                                       const std::vector<int>& train_ids,
                                       const std::vector<int>& train_labels);

// Stage-two training (Algorithm 2): optimizes theta_2 with the joint loss
// L'_c + lambda * L_p. No-op when the gate is disabled.
struct SlaveTrainResult {
  double seconds_per_epoch = 0.0;
  double final_loss = 0.0;
  std::vector<double> epoch_seconds;  // As in MasterTrainResult.
};
SlaveTrainResult TrainSlave(CmsfModel* model, const CmsfInputs& inputs,
                            const CmsfModel::FrozenAssignment& frozen,
                            const std::vector<int>& train_ids,
                            const std::vector<int>& train_labels);

// Minibatch stage-two training: each batch pins the GSCM membership to the
// frozen assignment rows of its subgraph nodes. Cluster representations
// (and the PU rank loss on their inclusion scores) aggregate over the
// batch's regions only — the minibatch approximation of eq. 10/18.
SlaveTrainResult TrainSlaveMinibatch(CmsfModel* model,
                                     const urg::UrbanRegionGraph& urg,
                                     const CmsfModel::FrozenAssignment& frozen,
                                     const std::vector<int>& train_ids,
                                     const std::vector<int>& train_labels);

// Per-sample BCE weights implementing CmsfConfig::pos_weight (shared by the
// baselines so class balancing is uniform across methods).
Tensor MakeBceWeights(const std::vector<int>& labels, double pos_weight);
// Labels as an (n x 1) float tensor.
Tensor MakeLabelTensor(const std::vector<int>& labels);

// Inference (Section V-C): probabilities for eval_ids using the slave path
// when enabled, the master path otherwise.
std::vector<float> PredictCmsf(const CmsfModel& model,
                               const CmsfInputs& inputs,
                               const CmsfModel::FrozenAssignment* frozen,
                               const std::vector<int>& eval_ids);

// Minibatch inference: scores eval_ids in fanout-unlimited 2-hop chunks, so
// trunk outputs (and master logits) are exact; the slave path uses the
// chunk's frozen membership rows. O(chunk * deg^2) memory per chunk.
std::vector<float> PredictCmsfMinibatch(
    const CmsfModel& model, const urg::UrbanRegionGraph& urg,
    const CmsfModel::FrozenAssignment* frozen,
    const std::vector<int>& eval_ids);

}  // namespace uv::core

#endif  // UV_CORE_CMSF_MODEL_H_
