#include "core/cmsf_model.h"

#include <cmath>

#include <numeric>

#include <algorithm>
#include <cstring>

#include "autograd/ops.h"
#include "autograd/optimizer.h"
#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "urg/neighbor_sampler.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/timer.h"

namespace uv::core {
namespace {

// Model inputs for one sampled subgraph: features gathered through the URG
// (feature store at paper scale), context wrapping the subgraph's arrays.
CmsfInputs SubgraphInputs(const urg::UrbanRegionGraph& urg,
                          const urg::SampledSubgraph& sg) {
  CmsfInputs inputs;
  Tensor poi;
  urg.GatherPoiRows(sg.nodes, &poi);
  inputs.poi = ag::MakeConst(std::move(poi));
  Tensor image;
  urg.GatherImageRows(sg.nodes, &image);
  inputs.image = ag::MakeConst(std::move(image));
  inputs.ctx = urg::ContextFromSubgraph(sg);
  return inputs;
}

// The frozen assignment restricted to a subgraph's nodes (row i of the
// result = frozen rows of nodes[i]), as ForwardFrozen expects.
CmsfModel::FrozenAssignment SliceFrozen(
    const CmsfModel::FrozenAssignment& frozen, const std::vector<int>& nodes) {
  CmsfModel::FrozenAssignment out;
  const int k = frozen.soft.cols();
  out.soft = Tensor::Uninit(static_cast<int>(nodes.size()), k);
  out.hard.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::memcpy(out.soft.row(static_cast<int>(i)), frozen.soft.row(nodes[i]),
                sizeof(float) * static_cast<size_t>(k));
    out.hard[i] = frozen.hard[nodes[i]];
  }
  out.pseudo_labels = frozen.pseudo_labels;
  return out;
}

// Deterministic epoch order of the training set: reshuffled from the
// canonical (ascending-id) order each epoch so the permutation depends only
// on (seed, epoch), never on previous epochs.
void EpochOrder(const std::vector<int>& train_ids,
                const std::vector<int>& train_labels, uint64_t seed,
                int epoch, std::vector<std::pair<int, int>>* order) {
  order->resize(train_ids.size());
  for (size_t i = 0; i < train_ids.size(); ++i) {
    (*order)[i] = {train_ids[i], train_labels[i]};
  }
  std::sort(order->begin(), order->end());
  Rng rng(urg::MixSeed(seed ^ 0xba7c4u, epoch));
  rng.Shuffle(order);
}

// Positive-class BCE weight resolved from the FULL training set (per-batch
// balancing would make the loss depend on batch composition).
float GlobalPosWeight(const std::vector<int>& train_labels,
                      double pos_weight) {
  const Tensor w = MakeBceWeights(train_labels, pos_weight);
  for (size_t i = 0; i < train_labels.size(); ++i) {
    if (train_labels[i] > 0) return w.at(static_cast<int>(i), 0);
  }
  return 1.0f;
}

Tensor BatchWeights(const std::vector<int>& labels, float pos_w) {
  Tensor out(static_cast<int>(labels.size()), 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    out.at(static_cast<int>(i), 0) = labels[i] > 0 ? pos_w : 1.0f;
  }
  return out;
}

std::shared_ptr<const std::vector<int>> SeedRows(int num_seeds) {
  auto rows = std::make_shared<std::vector<int>>(num_seeds);
  for (int i = 0; i < num_seeds; ++i) (*rows)[i] = i;
  return rows;
}

}  // namespace

CmsfInputs CmsfInputs::FromUrg(const urg::UrbanRegionGraph& urg) {
  CmsfInputs inputs;
  inputs.poi = ag::MakeConst(urg.poi_features);
  inputs.image = ag::MakeConst(urg.image_features);
  inputs.ctx = nn::GraphContext::FromCsr(urg.adjacency);
  return inputs;
}

CmsfModel::CmsfModel(const CmsfConfig& config, int poi_dim, int image_dim,
                     Rng* rng)
    : config_(config) {
  UV_CHECK_GT(config.maga_layers, 0);
  image_reduce_ = std::make_unique<nn::Linear>(
      image_dim, config.image_reduce_dim, rng);

  int width = 0;
  if (config.use_maga) {
    int in_p = poi_dim;
    int in_i = config.image_reduce_dim;
    for (int l = 0; l < config.maga_layers; ++l) {
      maga_.emplace_back(in_p, in_i, config.hidden_dim, config.maga_heads,
                         config.maga_agg, rng);
      in_p = in_i = maga_.back().out_width();
    }
    width = maga_.back().out_width();
  } else {
    // CMSF-M: vanilla GAT stacks per modality, no inter-modal context.
    int in_p = poi_dim;
    int in_i = config.image_reduce_dim;
    for (int l = 0; l < config.maga_layers; ++l) {
      gat_p_.emplace_back(in_p, config.hidden_dim, config.maga_heads, rng);
      gat_i_.emplace_back(in_i, config.hidden_dim, config.maga_heads, rng);
      in_p = in_i = config.hidden_dim;
    }
    width = config.hidden_dim;
  }
  gscm_in_dim_ = 2 * width;  // x^ = x^P ⊕ x^I.

  if (config.use_hierarchy) {
    nn::Gscm::Options gopt;
    gopt.in_dim = gscm_in_dim_;
    gopt.num_clusters = config.num_clusters;
    gopt.temperature = config.temperature;
    gopt.agg = config.gscm_agg;
    gscm_ = std::make_unique<nn::Gscm>(gopt, rng);
    classifier_in_ = gscm_->out_width();
  } else {
    classifier_in_ = gscm_in_dim_;
  }

  classifier_ = std::make_unique<nn::Mlp>(classifier_in_,
                                          config.classifier_hidden, 1, rng);

  if (config.use_hierarchy && config.use_gate) {
    nn::MsGate::Options mopt;
    mopt.num_clusters = config.num_clusters;
    mopt.cluster_repr_dim = gscm_in_dim_;
    mopt.context_dim = config.context_dim;
    mopt.classifier_in = classifier_in_;
    mopt.classifier_hidden = config.classifier_hidden;
    gate_ = std::make_unique<nn::MsGate>(mopt, rng);
  }
}

ag::VarPtr CmsfModel::Trunk(const CmsfInputs& inputs) const {
  obs::SpanGuard span("trunk", obs::SpanLevel::kFine);
  ag::VarPtr p = inputs.poi;
  ag::VarPtr i =
      image_reduce_->Forward(inputs.image, kern::Activation::kRelu);
  if (config_.use_maga) {
    int64_t l = 0;
    for (const auto& layer : maga_) {
      obs::SpanGuard layer_span("maga_layer", obs::SpanLevel::kFine, "layer",
                                l++);
      auto out = layer.Forward(p, i, inputs.ctx);
      p = out.p;
      i = out.i;
    }
  } else {
    for (size_t l = 0; l < gat_p_.size(); ++l) {
      obs::SpanGuard layer_span("maga_layer", obs::SpanLevel::kFine, "layer",
                                static_cast<int64_t>(l));
      p = ag::Relu(gat_p_[l].Forward(p, inputs.ctx));
      i = ag::Relu(gat_i_[l].Forward(i, inputs.ctx));
    }
  }
  return ag::ConcatCols(p, i);
}

Tensor CmsfModel::TrunkRaw(const Tensor& poi, const Tensor& image,
                           const nn::GraphContext& ctx) const {
  Tensor p = poi;
  Tensor i = image_reduce_->ForwardRaw(image, kern::Activation::kRelu);
  if (config_.use_maga) {
    for (const auto& layer : maga_) {
      auto out = layer.ForwardRaw(p, i, ctx);
      p = std::move(out.p);
      i = std::move(out.i);
    }
  } else {
    for (size_t l = 0; l < gat_p_.size(); ++l) {
      p = gat_p_[l].ForwardRaw(p, ctx);
      uv::ReluInPlace(&p);
      i = gat_i_[l].ForwardRaw(i, ctx);
      uv::ReluInPlace(&i);
    }
  }
  return uv::ConcatCols(p, i);
}

CmsfModel::ForwardResult CmsfModel::Forward(
    const CmsfInputs& inputs, const FrozenAssignment* frozen) const {
  obs::SpanGuard span("forward", obs::SpanLevel::kCoarse);
  ForwardResult result;
  ag::VarPtr fused = Trunk(inputs);
  if (config_.use_hierarchy) {
    obs::SpanGuard gscm_span("gscm", obs::SpanLevel::kFine);
    nn::Gscm::Output g =
        frozen != nullptr
            ? gscm_->ForwardFrozen(fused, frozen->soft, frozen->hard)
            : gscm_->Forward(fused);
    result.region_repr = g.region_repr;
    result.assignment = g.assignment;
    result.hard_assignment = std::move(g.hard_assignment);
    result.cluster_repr = g.cluster_repr;
  } else {
    result.region_repr = fused;
  }
  {
    obs::SpanGuard cls_span("classifier", obs::SpanLevel::kFine);
    result.master_logits = classifier_->Forward(result.region_repr);
  }
  return result;
}

ag::VarPtr CmsfModel::SlaveLogits(const ForwardResult& master,
                                  ag::VarPtr* out_inclusion) const {
  obs::SpanGuard span("ms_gate", obs::SpanLevel::kFine);
  UV_CHECK(gate_ != nullptr);
  UV_CHECK(master.cluster_repr != nullptr);
  ag::VarPtr inclusion = gate_->EstimateInclusion(master.cluster_repr);
  if (out_inclusion != nullptr) *out_inclusion = inclusion;
  return gate_->Forward(master.region_repr, master.assignment, inclusion,
                        *classifier_);
}

std::vector<ag::VarPtr> CmsfModel::MasterParams() const {
  std::vector<ag::VarPtr> params = image_reduce_->Params();
  auto absorb = [&params](std::vector<ag::VarPtr> p) {
    params.insert(params.end(), p.begin(), p.end());
  };
  for (const auto& l : maga_) absorb(l.Params());
  for (const auto& l : gat_p_) absorb(l.Params());
  for (const auto& l : gat_i_) absorb(l.Params());
  if (gscm_) absorb(gscm_->Params());
  absorb(classifier_->Params());
  return params;
}

std::vector<ag::VarPtr> CmsfModel::GateParams() const {
  return gate_ ? gate_->Params() : std::vector<ag::VarPtr>{};
}

std::vector<ag::VarPtr> CmsfModel::AllParams() const {
  std::vector<ag::VarPtr> params = MasterParams();
  auto gate = GateParams();
  params.insert(params.end(), gate.begin(), gate.end());
  return params;
}

Tensor MakeLabelTensor(const std::vector<int>& labels) {
  Tensor out(static_cast<int>(labels.size()), 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    out.at(static_cast<int>(i), 0) = labels[i] > 0 ? 1.0f : 0.0f;
  }
  return out;
}

Tensor MakeBceWeights(const std::vector<int>& labels, double pos_weight) {
  int num_pos = 0;
  for (int l : labels) num_pos += (l > 0);
  const int num_neg = static_cast<int>(labels.size()) - num_pos;
  double w = pos_weight;
  if (w <= 0.0) {
    w = num_pos > 0 ? static_cast<double>(num_neg) /
                          std::max(1, num_pos)
                    : 1.0;
  }
  Tensor out(static_cast<int>(labels.size()), 1);
  for (size_t i = 0; i < labels.size(); ++i) {
    out.at(static_cast<int>(i), 0) =
        labels[i] > 0 ? static_cast<float>(w) : 1.0f;
  }
  return out;
}

MasterTrainResult TrainMaster(CmsfModel* model, const CmsfInputs& inputs,
                              const std::vector<int>& train_ids,
                              const std::vector<int>& train_labels) {
  UV_CHECK_EQ(train_ids.size(), train_labels.size());
  const CmsfConfig& cfg = model->config();
  auto ids = std::make_shared<const std::vector<int>>(train_ids);
  const Tensor labels = MakeLabelTensor(train_labels);
  const Tensor weights = MakeBceWeights(train_labels, cfg.pos_weight);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = cfg.learning_rate;
  aopt.clip_norm = cfg.clip_norm;
  ag::AdamOptimizer opt(model->MasterParams(), aopt);

  MasterTrainResult result;
  result.epoch_seconds.reserve(cfg.master_epochs);
  obs::SpanGuard stage_span("train_master", obs::SpanLevel::kCoarse, "epochs",
                            cfg.master_epochs);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < cfg.master_epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    opt.ZeroGradients();
    auto fwd = model->Forward(inputs, nullptr);
    ag::VarPtr logits = ag::GatherRows(fwd.master_logits, ids);
    ag::VarPtr loss = ag::BceWithLogits(logits, labels, &weights);
    last_loss = loss->value.at(0, 0);
    ag::Backward(loss);
    // Grad norm is an extra full pass over every parameter; only pay for
    // it when the metrics log is live (it never feeds back into training).
    const double grad_norm = obs::MetricsLogEnabled()
                                 ? ag::GlobalGradNorm(opt.params())
                                 : 0.0;
    opt.Step();
    const double lr = opt.learning_rate();
    opt.DecayLearningRate(cfg.lr_decay_per_epoch);
    result.epoch_seconds.push_back(epoch_timer.Seconds());
    obs::MetricsRecord("epoch")
        .Str("stage", "master")
        .Int("epoch", epoch)
        .Num("loss", last_loss)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", result.epoch_seconds.back())
        .Emit();
  }
  result.seconds_per_epoch =
      cfg.master_epochs > 0
          ? std::accumulate(result.epoch_seconds.begin(),
                            result.epoch_seconds.end(), 0.0) /
                cfg.master_epochs
          : 0.0;
  result.final_loss = last_loss;

  if (cfg.use_hierarchy) {
    // Freeze the learned membership and derive pseudo labels (eq. 16) from
    // the labels of *training* regions only (test labels stay unseen).
    auto fwd = model->Forward(inputs, nullptr);
    result.frozen.soft = fwd.assignment->value;
    result.frozen.hard = fwd.hard_assignment;
    std::vector<int> full_labels(fwd.master_logits->rows(), -1);
    for (size_t i = 0; i < train_ids.size(); ++i) {
      full_labels[train_ids[i]] = train_labels[i];
    }
    result.frozen.pseudo_labels = nn::ComputeClusterPseudoLabels(
        result.frozen.hard, full_labels, cfg.num_clusters);
  }
  return result;
}

MasterTrainResult TrainMasterMinibatch(CmsfModel* model,
                                       const urg::UrbanRegionGraph& urg,
                                       const std::vector<int>& train_ids,
                                       const std::vector<int>& train_labels) {
  UV_CHECK_EQ(train_ids.size(), train_labels.size());
  const CmsfConfig& cfg = model->config();
  UV_CHECK_GT(cfg.batch_size, 0);
  const urg::NeighborView view(urg);
  const int num_train = static_cast<int>(train_ids.size());
  const int bs = std::min(cfg.batch_size, num_train);
  const int num_batches = (num_train + bs - 1) / bs;
  const float pos_w = GlobalPosWeight(train_labels, cfg.pos_weight);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = cfg.learning_rate;
  aopt.clip_norm = cfg.clip_norm;
  ag::AdamOptimizer opt(model->MasterParams(), aopt);

  MasterTrainResult result;
  result.epoch_seconds.reserve(cfg.master_epochs);
  obs::SpanGuard stage_span("train_master", obs::SpanLevel::kCoarse, "epochs",
                            cfg.master_epochs);
  double last_loss = 0.0;
  std::vector<std::pair<int, int>> order;
  std::vector<int> seeds, seed_labels;
  for (int epoch = 0; epoch < cfg.master_epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    EpochOrder(train_ids, train_labels, cfg.seed, epoch, &order);
    urg::MinibatchConfig mcfg;
    mcfg.batch_size = bs;
    mcfg.fanout = cfg.fanout;
    mcfg.hops = cfg.maga_layers;
    mcfg.seed = urg::MixSeed(cfg.seed, epoch);
    double epoch_loss = 0.0;
    double grad_norm = 0.0;
    for (int b = 0; b < num_batches; ++b) {
      opt.ZeroGradients();
      const int begin = b * bs;
      const int end = std::min(num_train, begin + bs);
      seeds.clear();
      seed_labels.clear();
      for (int i = begin; i < end; ++i) {
        seeds.push_back(order[i].first);
        seed_labels.push_back(order[i].second);
      }
      const urg::SampledSubgraph sg = urg::SampleKHop(view, seeds, mcfg);
      const CmsfInputs inputs = SubgraphInputs(urg, sg);
      auto fwd = model->Forward(inputs, nullptr);
      ag::VarPtr logits =
          ag::GatherRows(fwd.master_logits, SeedRows(sg.num_seeds));
      const Tensor labels = MakeLabelTensor(seed_labels);
      const Tensor weights = BatchWeights(seed_labels, pos_w);
      ag::VarPtr loss = ag::BceWithLogits(logits, labels, &weights);
      last_loss = loss->value.at(0, 0);
      epoch_loss += last_loss;
      ag::Backward(loss);
      if (obs::MetricsLogEnabled()) {
        grad_norm = ag::GlobalGradNorm(opt.params());
      }
      opt.Step();
    }
    const double lr = opt.learning_rate();
    opt.DecayLearningRate(cfg.lr_decay_per_epoch);
    result.epoch_seconds.push_back(epoch_timer.Seconds());
    obs::MetricsRecord("epoch")
        .Str("stage", "master")
        .Int("epoch", epoch)
        .Int("batches", num_batches)
        .Num("loss", epoch_loss / num_batches)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", result.epoch_seconds.back())
        .Emit();
  }
  result.seconds_per_epoch =
      cfg.master_epochs > 0
          ? std::accumulate(result.epoch_seconds.begin(),
                            result.epoch_seconds.end(), 0.0) /
                cfg.master_epochs
          : 0.0;
  result.final_loss = last_loss;

  // Freeze the learned membership only when something downstream consumes
  // it (the slave stage / gated inference); the exact sweep below touches
  // every region and is pure overhead for gate-less variants.
  if (cfg.use_hierarchy && cfg.use_gate) {
    // Freeze the learned membership exactly: assignment rows only depend on
    // a region's own trunk output, so fanout-unlimited chunks reproduce the
    // full-graph rows bit for bit at O(chunk * deg^hops) memory.
    obs::SpanGuard freeze_span("freeze_assignment", obs::SpanLevel::kCoarse);
    const int n = urg.num_regions();
    result.frozen.soft = Tensor::Uninit(n, cfg.num_clusters);
    result.frozen.hard.assign(n, 0);
    urg::MinibatchConfig ecfg;
    ecfg.fanout = 0;
    ecfg.hops = cfg.maga_layers;
    constexpr int kChunk = 64;
    for (int begin = 0; begin < n; begin += kChunk) {
      const int end = std::min(n, begin + kChunk);
      std::vector<int> chunk(end - begin);
      std::iota(chunk.begin(), chunk.end(), begin);
      const urg::SampledSubgraph sg = urg::SampleKHop(view, chunk, ecfg);
      const CmsfInputs inputs = SubgraphInputs(urg, sg);
      auto fwd = model->Forward(inputs, nullptr);
      for (int i = 0; i < sg.num_seeds; ++i) {
        std::memcpy(result.frozen.soft.row(begin + i),
                    fwd.assignment->value.row(i),
                    sizeof(float) * static_cast<size_t>(cfg.num_clusters));
        result.frozen.hard[begin + i] = fwd.hard_assignment[i];
      }
    }
    std::vector<int> full_labels(n, -1);
    for (size_t i = 0; i < train_ids.size(); ++i) {
      full_labels[train_ids[i]] = train_labels[i];
    }
    result.frozen.pseudo_labels = nn::ComputeClusterPseudoLabels(
        result.frozen.hard, full_labels, cfg.num_clusters);
  }
  return result;
}

SlaveTrainResult TrainSlave(CmsfModel* model, const CmsfInputs& inputs,
                            const CmsfModel::FrozenAssignment& frozen,
                            const std::vector<int>& train_ids,
                            const std::vector<int>& train_labels) {
  SlaveTrainResult result;
  const CmsfConfig& cfg = model->config();
  if (!cfg.use_hierarchy || !cfg.use_gate) return result;
  UV_CHECK_EQ(frozen.pseudo_labels.size(),
              static_cast<size_t>(cfg.num_clusters));

  auto ids = std::make_shared<const std::vector<int>>(train_ids);
  const Tensor labels = MakeLabelTensor(train_labels);
  const Tensor weights = MakeBceWeights(train_labels, cfg.pos_weight);

  // Clusters with known UVs (C1) vs the rest (C0) for the PU rank loss.
  std::vector<int> positive, unlabeled;
  for (int k = 0; k < cfg.num_clusters; ++k) {
    (frozen.pseudo_labels[k] == 1 ? positive : unlabeled).push_back(k);
  }

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = cfg.learning_rate * 0.1;  // Gentle fine-tuning stage.
  aopt.clip_norm = cfg.clip_norm;
  ag::AdamOptimizer opt(model->AllParams(), aopt);

  result.epoch_seconds.reserve(cfg.slave_epochs);
  obs::SpanGuard stage_span("train_slave", obs::SpanLevel::kCoarse, "epochs",
                            cfg.slave_epochs);
  double last_loss = 0.0;
  for (int epoch = 0; epoch < cfg.slave_epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    opt.ZeroGradients();
    auto fwd = model->Forward(inputs, &frozen);
    ag::VarPtr inclusion;
    ag::VarPtr slave_logits = model->SlaveLogits(fwd, &inclusion);
    ag::VarPtr loss_c = ag::BceWithLogits(ag::GatherRows(slave_logits, ids),
                                          labels, &weights);
    ag::VarPtr loss_p = ag::PuRankLoss(inclusion, positive, unlabeled);
    ag::VarPtr loss =
        ag::Add(loss_c, ag::ScalarMul(loss_p, static_cast<float>(cfg.lambda)));
    last_loss = loss->value.at(0, 0);
    ag::Backward(loss);
    const double grad_norm = obs::MetricsLogEnabled()
                                 ? ag::GlobalGradNorm(opt.params())
                                 : 0.0;
    opt.Step();
    const double lr = opt.learning_rate();
    opt.DecayLearningRate(cfg.lr_decay_per_epoch);
    result.epoch_seconds.push_back(epoch_timer.Seconds());
    obs::MetricsRecord("epoch")
        .Str("stage", "slave")
        .Int("epoch", epoch)
        .Num("loss", last_loss)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", result.epoch_seconds.back())
        .Emit();
  }
  result.seconds_per_epoch =
      cfg.slave_epochs > 0
          ? std::accumulate(result.epoch_seconds.begin(),
                            result.epoch_seconds.end(), 0.0) /
                cfg.slave_epochs
          : 0.0;
  result.final_loss = last_loss;
  return result;
}

SlaveTrainResult TrainSlaveMinibatch(CmsfModel* model,
                                     const urg::UrbanRegionGraph& urg,
                                     const CmsfModel::FrozenAssignment& frozen,
                                     const std::vector<int>& train_ids,
                                     const std::vector<int>& train_labels) {
  SlaveTrainResult result;
  const CmsfConfig& cfg = model->config();
  if (!cfg.use_hierarchy || !cfg.use_gate) return result;
  UV_CHECK_EQ(frozen.pseudo_labels.size(),
              static_cast<size_t>(cfg.num_clusters));
  UV_CHECK_GT(cfg.batch_size, 0);

  const urg::NeighborView view(urg);
  const int num_train = static_cast<int>(train_ids.size());
  const int bs = std::min(cfg.batch_size, num_train);
  const int num_batches = (num_train + bs - 1) / bs;
  const float pos_w = GlobalPosWeight(train_labels, cfg.pos_weight);

  ag::AdamOptimizer::Options aopt;
  aopt.learning_rate = cfg.learning_rate * 0.1;  // Gentle fine-tuning stage.
  aopt.clip_norm = cfg.clip_norm;
  ag::AdamOptimizer opt(model->AllParams(), aopt);

  result.epoch_seconds.reserve(cfg.slave_epochs);
  obs::SpanGuard stage_span("train_slave", obs::SpanLevel::kCoarse, "epochs",
                            cfg.slave_epochs);
  double last_loss = 0.0;
  std::vector<std::pair<int, int>> order;
  std::vector<int> seeds, seed_labels;
  for (int epoch = 0; epoch < cfg.slave_epochs; ++epoch) {
    obs::SpanGuard epoch_span("epoch", obs::SpanLevel::kCoarse, "epoch",
                              epoch);
    WallTimer epoch_timer;
    EpochOrder(train_ids, train_labels, cfg.seed ^ 0x51a7eull, epoch, &order);
    urg::MinibatchConfig mcfg;
    mcfg.batch_size = bs;
    mcfg.fanout = cfg.fanout;
    mcfg.hops = cfg.maga_layers;
    mcfg.seed = urg::MixSeed(cfg.seed ^ 0x51a7eull, epoch);
    double epoch_loss = 0.0;
    double grad_norm = 0.0;
    for (int b = 0; b < num_batches; ++b) {
      opt.ZeroGradients();
      const int begin = b * bs;
      const int end = std::min(num_train, begin + bs);
      seeds.clear();
      seed_labels.clear();
      for (int i = begin; i < end; ++i) {
        seeds.push_back(order[i].first);
        seed_labels.push_back(order[i].second);
      }
      const urg::SampledSubgraph sg = urg::SampleKHop(view, seeds, mcfg);
      const CmsfInputs inputs = SubgraphInputs(urg, sg);
      const CmsfModel::FrozenAssignment fslice = SliceFrozen(frozen, sg.nodes);
      auto fwd = model->Forward(inputs, &fslice);
      ag::VarPtr inclusion;
      ag::VarPtr slave_logits = model->SlaveLogits(fwd, &inclusion);
      const Tensor labels = MakeLabelTensor(seed_labels);
      const Tensor weights = BatchWeights(seed_labels, pos_w);
      ag::VarPtr loss = ag::BceWithLogits(
          ag::GatherRows(slave_logits, SeedRows(sg.num_seeds)), labels,
          &weights);
      // PU rank loss over the clusters this batch actually populates; the
      // rest have all-zero (empty) cluster representations, so ranking
      // their inclusion scores would only inject noise.
      std::vector<char> present(cfg.num_clusters, 0);
      for (int h : fslice.hard) present[h] = 1;
      std::vector<int> positive, unlabeled;
      for (int k = 0; k < cfg.num_clusters; ++k) {
        if (!present[k]) continue;
        (frozen.pseudo_labels[k] == 1 ? positive : unlabeled).push_back(k);
      }
      if (!positive.empty() && !unlabeled.empty()) {
        ag::VarPtr loss_p = ag::PuRankLoss(inclusion, positive, unlabeled);
        loss = ag::Add(
            loss, ag::ScalarMul(loss_p, static_cast<float>(cfg.lambda)));
      }
      last_loss = loss->value.at(0, 0);
      epoch_loss += last_loss;
      ag::Backward(loss);
      if (obs::MetricsLogEnabled()) {
        grad_norm = ag::GlobalGradNorm(opt.params());
      }
      opt.Step();
    }
    const double lr = opt.learning_rate();
    opt.DecayLearningRate(cfg.lr_decay_per_epoch);
    result.epoch_seconds.push_back(epoch_timer.Seconds());
    obs::MetricsRecord("epoch")
        .Str("stage", "slave")
        .Int("epoch", epoch)
        .Int("batches", num_batches)
        .Num("loss", epoch_loss / num_batches)
        .Num("grad_norm", grad_norm)
        .Num("lr", lr)
        .Num("seconds", result.epoch_seconds.back())
        .Emit();
  }
  result.seconds_per_epoch =
      cfg.slave_epochs > 0
          ? std::accumulate(result.epoch_seconds.begin(),
                            result.epoch_seconds.end(), 0.0) /
                cfg.slave_epochs
          : 0.0;
  result.final_loss = last_loss;
  return result;
}

std::vector<float> PredictCmsf(const CmsfModel& model,
                               const CmsfInputs& inputs,
                               const CmsfModel::FrozenAssignment* frozen,
                               const std::vector<int>& eval_ids) {
  obs::SpanGuard span("inference", obs::SpanLevel::kCoarse);
  const CmsfConfig& cfg = model.config();
  const bool use_slave =
      cfg.use_hierarchy && cfg.use_gate && frozen != nullptr;
  auto fwd = model.Forward(inputs, use_slave ? frozen : nullptr);
  ag::VarPtr logits =
      use_slave ? model.SlaveLogits(fwd, nullptr) : fwd.master_logits;
  std::vector<float> out(eval_ids.size());
  for (size_t i = 0; i < eval_ids.size(); ++i) {
    const float z = logits->value.at(eval_ids[i], 0);
    out[i] = 1.0f / (1.0f + std::exp(-z));
  }
  return out;
}

std::vector<float> PredictCmsfMinibatch(
    const CmsfModel& model, const urg::UrbanRegionGraph& urg,
    const CmsfModel::FrozenAssignment* frozen,
    const std::vector<int>& eval_ids) {
  obs::SpanGuard span("inference", obs::SpanLevel::kCoarse);
  const CmsfConfig& cfg = model.config();
  const bool use_slave =
      cfg.use_hierarchy && cfg.use_gate && frozen != nullptr;
  const urg::NeighborView view(urg);
  urg::MinibatchConfig mcfg;
  mcfg.fanout = 0;  // Exact trunk outputs for the chunk's seed rows.
  mcfg.hops = cfg.maga_layers;
  constexpr size_t kChunk = 64;
  std::vector<float> out(eval_ids.size());
  for (size_t begin = 0; begin < eval_ids.size(); begin += kChunk) {
    const size_t end = std::min(eval_ids.size(), begin + kChunk);
    const std::vector<int> chunk(eval_ids.begin() + begin,
                                 eval_ids.begin() + end);
    const urg::SampledSubgraph sg = urg::SampleKHop(view, chunk, mcfg);
    const CmsfInputs inputs = SubgraphInputs(urg, sg);
    CmsfModel::FrozenAssignment fslice;
    if (use_slave) fslice = SliceFrozen(*frozen, sg.nodes);
    auto fwd = model.Forward(inputs, use_slave ? &fslice : nullptr);
    ag::VarPtr logits =
        use_slave ? model.SlaveLogits(fwd, nullptr) : fwd.master_logits;
    for (size_t i = begin; i < end; ++i) {
      const float z = logits->value.at(static_cast<int>(i - begin), 0);
      out[i] = 1.0f / (1.0f + std::exp(-z));
    }
  }
  return out;
}

}  // namespace uv::core
