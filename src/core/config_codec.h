#ifndef UV_CORE_CONFIG_CODEC_H_
#define UV_CORE_CONFIG_CODEC_H_

// Fixed-layout binary codec for CmsfConfig, used as the opaque config blob
// inside a UVCK checkpoint (io/checkpoint.h). The blob starts with its own
// one-byte layout version so the checkpoint schema version and the config
// layout can evolve independently; every field is written host-endian in
// declaration order. Decoding validates the exact blob length and every
// enum value, so a foreign or truncated blob never yields a half-filled
// config.

#include <cstdint>
#include <vector>

#include "core/cmsf_config.h"
#include "util/status.h"

namespace uv::core {

std::vector<uint8_t> EncodeCmsfConfig(const CmsfConfig& config);
StatusOr<CmsfConfig> DecodeCmsfConfig(const std::vector<uint8_t>& blob);

}  // namespace uv::core

#endif  // UV_CORE_CONFIG_CODEC_H_
