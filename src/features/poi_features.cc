#include "features/poi_features.h"

#include <cmath>
#include <deque>
#include <functional>
#include <limits>

#include "graph/grid.h"
#include "util/check.h"

namespace uv::features {
namespace {

using synth::City;
using synth::Poi;

// Multi-source BFS over the 4-connected grid from all cells containing an
// anchor; returns distance in metres (cell hops * cell size).
std::vector<float> GridBfsDistance(const City& city,
                                   const std::vector<uint8_t>& is_seed) {
  const auto& grid = city.grid;
  const int n = grid.num_regions();
  std::vector<float> dist(n, std::numeric_limits<float>::infinity());
  std::deque<int> queue;
  for (int id = 0; id < n; ++id) {
    if (is_seed[id]) {
      dist[id] = 0.0f;
      queue.push_back(id);
    }
  }
  const int drs[] = {-1, 1, 0, 0};
  const int dcs[] = {0, 0, -1, 1};
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    const int row = grid.RowOf(cur), col = grid.ColOf(cur);
    for (int k = 0; k < 4; ++k) {
      const int nr = row + drs[k], nc = col + dcs[k];
      if (!grid.InBounds(nr, nc)) continue;
      const int nxt = grid.RegionId(nr, nc);
      const float cand = dist[cur] + static_cast<float>(grid.cell_meters);
      if (cand < dist[nxt]) {
        dist[nxt] = cand;
        queue.push_back(nxt);
      }
    }
  }
  return dist;
}

// Paper's radius discretization: <0.5km, 0.5-1.5km, 1.5-3km, >3km.
float RadiusBucketValue(float meters) {
  if (meters < 500.0f) return 0.0f;
  if (meters < 1500.0f) return 1.0f / 3.0f;
  if (meters < 3000.0f) return 2.0f / 3.0f;
  return 1.0f;
}

float LogCount(int count) {
  // log-scaled count, roughly in [0, 1] for realistic POI densities.
  return std::log1p(static_cast<float>(count)) / std::log(64.0f);
}

}  // namespace

std::vector<float> NearestAnchorDistance(
    const City& city, const std::function<bool(const Poi&)>& is_anchor) {
  std::vector<uint8_t> seeds(city.num_regions(), 0);
  for (const Poi& poi : city.pois) {
    if (is_anchor(poi)) {
      seeds[city.grid.RegionAt(poi.x, poi.y)] = 1;
    }
  }
  return GridBfsDistance(city, seeds);
}

Tensor BuildPoiFeatures(const City& city) {
  const auto& grid = city.grid;
  const int n = city.num_regions();
  Tensor out(n, kPoiFeatureDim);

  // Per-region category counts.
  std::vector<std::vector<int>> cat_counts(
      n, std::vector<int>(synth::kNumPoiCategories, 0));
  for (int id = 0; id < n; ++id) {
    for (int pid : city.pois_by_region[id]) {
      ++cat_counts[id][static_cast<int>(city.pois[pid].category)];
    }
  }

  // Radius features per type.
  std::vector<std::vector<float>> radius_dist(synth::kNumRadiusTypes);
  for (int t = 0; t < synth::kNumRadiusTypes; ++t) {
    radius_dist[t] = NearestAnchorDistance(city, [t](const Poi& p) {
      return static_cast<int>(p.radius_type) == t;
    });
  }

  // Facility distances per facility type (for the binary index).
  std::vector<std::vector<float>> facility_dist(synth::kNumFacilityTypes);
  for (int t = 0; t < synth::kNumFacilityTypes; ++t) {
    facility_dist[t] = NearestAnchorDistance(city, [t](const Poi& p) {
      return static_cast<int>(p.facility_type) == t;
    });
  }

  for (int id = 0; id < n; ++id) {
    float* f = out.row(id);
    // Own-cell distribution + count.
    int own_total = 0;
    for (int c = 0; c < synth::kNumPoiCategories; ++c) {
      own_total += cat_counts[id][c];
    }
    if (own_total > 0) {
      for (int c = 0; c < synth::kNumPoiCategories; ++c) {
        f[c] = static_cast<float>(cat_counts[id][c]) / own_total;
      }
    }
    f[23] = LogCount(own_total);

    // 3x3-window distribution + count (paper: "additionally calculate the
    // category distribution in the 3x3 grids centred by the given region").
    int win_total = 0;
    std::vector<int> win_counts(synth::kNumPoiCategories, 0);
    for (int w : graph::WindowRegions(grid, id, 1)) {
      for (int c = 0; c < synth::kNumPoiCategories; ++c) {
        win_counts[c] += cat_counts[w][c];
      }
    }
    for (int c = 0; c < synth::kNumPoiCategories; ++c) win_total += win_counts[c];
    if (win_total > 0) {
      for (int c = 0; c < synth::kNumPoiCategories; ++c) {
        f[24 + c] = static_cast<float>(win_counts[c]) / win_total;
      }
    }
    f[47] = LogCount(win_total);

    // Radius buckets.
    for (int t = 0; t < synth::kNumRadiusTypes; ++t) {
      f[48 + t] = RadiusBucketValue(radius_dist[t][id]);
    }

    // Basic-living-facility index: all 9 within 1 km.
    bool all_close = true;
    for (int t = 0; t < synth::kNumFacilityTypes; ++t) {
      if (facility_dist[t][id] > 1000.0f) {
        all_close = false;
        break;
      }
    }
    f[63] = all_close ? 1.0f : 0.0f;
  }
  return out;
}

}  // namespace uv::features
