#include "features/image_encoder.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "autograd/variable.h"
#include "util/check.h"
#include "util/rng.h"

namespace uv::features {

ConvEncoder::ConvEncoder(const Options& options) : options_(options) {
  UV_CHECK_GE(options.image_size, 8);
  Rng rng(options.seed);
  const int s = options.image_size;

  spec1_ = {/*in_channels=*/3, s, s, /*out_channels=*/8, /*kernel=*/3,
            /*stride=*/1, /*pad=*/1};
  const int s2 = s / 2;
  spec2_ = {8, s2, s2, 16, 3, 1, 1};
  const int s4 = s2 / 2;
  spec3_ = {16, s4, s4, 32, 3, 1, 1};
  const int s8 = s4 / 2;
  flat_dim_ = 32 * s8 * s8;

  auto init_conv = [&rng](Tensor* w, Tensor* b, int out_c, int in_c, int k) {
    *w = Tensor(out_c, in_c * k * k);
    // He-style init keeps activation magnitudes stable through the stack.
    w->RandomNormal(&rng, std::sqrt(2.0f / (in_c * k * k)));
    *b = Tensor(1, out_c);
  };
  init_conv(&w1_, &b1_, 8, 3, 3);
  init_conv(&w2_, &b2_, 16, 8, 3);
  init_conv(&w3_, &b3_, 32, 16, 3);
  proj_ = Tensor(flat_dim_, options.out_dim);
  proj_.GlorotUniform(&rng);
}

Tensor ConvEncoder::Encode(const Tensor& images) const {
  UV_CHECK_EQ(images.cols(), 3 * options_.image_size * options_.image_size);
  const int n = images.rows();
  Tensor out(n, options_.out_dim);
  const int batch = std::max(1, options_.batch_size);

  const auto w1 = ag::MakeConst(w1_), b1 = ag::MakeConst(b1_);
  const auto w2 = ag::MakeConst(w2_), b2 = ag::MakeConst(b2_);
  const auto w3 = ag::MakeConst(w3_), b3 = ag::MakeConst(b3_);
  const auto proj = ag::MakeConst(proj_);

  for (int begin = 0; begin < n; begin += batch) {
    const int end = std::min(n, begin + batch);
    Tensor chunk(end - begin, images.cols());
    for (int i = begin; i < end; ++i) {
      std::copy(images.row(i), images.row(i) + images.cols(),
                chunk.row(i - begin));
    }
    auto x = ag::MakeConst(std::move(chunk));
    x = ag::Relu(ag::Conv2d(x, w1, b1, spec1_));
    x = ag::MaxPool2d(x, 8, spec1_.out_h(), spec1_.out_w(), 2, 2);
    x = ag::Relu(ag::Conv2d(x, w2, b2, spec2_));
    x = ag::MaxPool2d(x, 16, spec2_.out_h(), spec2_.out_w(), 2, 2);
    x = ag::Relu(ag::Conv2d(x, w3, b3, spec3_));
    x = ag::MaxPool2d(x, 32, spec3_.out_h(), spec3_.out_w(), 2, 2);
    x = ag::MatMul(x, proj);
    for (int i = begin; i < end; ++i) {
      std::copy(x->value.row(i - begin),
                x->value.row(i - begin) + options_.out_dim, out.row(i));
    }
  }
  return out;
}

Tensor HistogramEqualize(const Tensor& images, int channels) {
  UV_CHECK_GT(channels, 0);
  UV_CHECK_EQ(images.cols() % channels, 0);
  const int plane = images.cols() / channels;
  constexpr int kBins = 64;
  Tensor out(images.rows(), images.cols());
  std::vector<int> hist(kBins);
  for (int i = 0; i < images.rows(); ++i) {
    const float* src = images.row(i);
    float* dst = out.row(i);
    for (int c = 0; c < channels; ++c) {
      const float* p = src + static_cast<size_t>(c) * plane;
      float* q = dst + static_cast<size_t>(c) * plane;
      std::fill(hist.begin(), hist.end(), 0);
      for (int k = 0; k < plane; ++k) {
        const int bin = std::min(
            kBins - 1, static_cast<int>(std::clamp(p[k], 0.0f, 1.0f) *
                                        kBins));
        ++hist[bin];
      }
      // Cumulative distribution -> equalized intensity.
      std::vector<float> cdf(kBins);
      int acc = 0;
      for (int b = 0; b < kBins; ++b) {
        acc += hist[b];
        cdf[b] = static_cast<float>(acc) / plane;
      }
      for (int k = 0; k < plane; ++k) {
        const int bin = std::min(
            kBins - 1, static_cast<int>(std::clamp(p[k], 0.0f, 1.0f) *
                                        kBins));
        q[k] = cdf[bin];
      }
    }
  }
  return out;
}

}  // namespace uv::features
