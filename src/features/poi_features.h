#ifndef UV_FEATURES_POI_FEATURES_H_
#define UV_FEATURES_POI_FEATURES_H_

#include <functional>
#include <vector>

#include "synth/city.h"
#include "tensor/tensor.h"

namespace uv::features {

// Column layout of the 64-d POI feature vector (paper Section IV-B + the
// "64-dimension POI features" of Section VI-A):
//   [0, 23)   own-cell category distribution (ratios over 23 categories)
//   [23]      own-cell POI count, log-scaled
//   [24, 47)  3x3-window category distribution
//   [47]      3x3-window POI count, log-scaled
//   [48, 63)  radius features: discretized shortest distance to each of the
//             15 radius POI types, buckets {<0.5km, 0.5-1.5, 1.5-3, >3km}
//             encoded as {0, 1/3, 2/3, 1}
//   [63]      index of basic living facility (1 iff all 9 facility types
//             are within 1 km)
inline constexpr int kPoiFeatureDim = 64;

// Feature-group column ranges, used by the Fig. 5(b) data ablations.
struct PoiFeatureGroups {
  static constexpr int kCategoryBegin = 0;
  static constexpr int kCategoryEnd = 48;  // Both windows + counts.
  static constexpr int kRadiusBegin = 48;
  static constexpr int kRadiusEnd = 63;
  static constexpr int kIndexBegin = 63;
  static constexpr int kIndexEnd = 64;
};

// Builds the (N x 64) POI feature matrix for a generated city.
Tensor BuildPoiFeatures(const synth::City& city);

// Shortest cell-BFS distance (in metres, 4-connected grid) from every region
// to the nearest POI satisfying `is_anchor(poi)`; unreachable = +inf.
// Exposed for tests and for the facility-index computation.
std::vector<float> NearestAnchorDistance(
    const synth::City& city, const std::function<bool(const synth::Poi&)>& is_anchor);

}  // namespace uv::features

#endif  // UV_FEATURES_POI_FEATURES_H_
