#ifndef UV_FEATURES_IMAGE_ENCODER_H_
#define UV_FEATURES_IMAGE_ENCODER_H_

#include <cstdint>

#include "autograd/ops.h"
#include "tensor/tensor.h"

namespace uv::features {

// Frozen convolutional feature extractor standing in for the paper's
// ImageNet-pretrained VGG16 (with top FC layers removed). Like VGG16 in the
// paper, it is *not* trained with the detector: it is seeded once,
// independent of any city, and used purely as a fixed feature map.
//
// Architecture: [conv3x3 -> relu -> maxpool2]x3 over 3 x S x S tiles, then a
// fixed random projection of the flattened activation to `out_dim`.
// The paper's 4096-d output is reachable via out_dim=4096; the default 256
// keeps laptop-scale runtime (see DESIGN.md section 1).
class ConvEncoder {
 public:
  struct Options {
    int image_size = 32;
    int out_dim = 256;
    uint64_t seed = 7;   // Plays the role of "ImageNet pretraining".
    int batch_size = 256;  // Images encoded per forward chunk.
  };

  explicit ConvEncoder(const Options& options);

  // Encodes (N x 3*S*S) raw tiles into (N x out_dim) features.
  Tensor Encode(const Tensor& images) const;

  int out_dim() const { return options_.out_dim; }

 private:
  Options options_;
  Tensor w1_, b1_, w2_, b2_, w3_, b3_;
  Tensor proj_;
  ag::Conv2dSpec spec1_, spec2_, spec3_;
  int flat_dim_ = 0;
};

// Per-channel histogram equalization, the preprocessing UVLens applies to
// satellite imagery before its CNN backbone (paper Appendix I-A).
Tensor HistogramEqualize(const Tensor& images, int channels);

}  // namespace uv::features

#endif  // UV_FEATURES_IMAGE_ENCODER_H_
