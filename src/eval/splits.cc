#include "eval/splits.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace uv::eval {

std::vector<Fold> BlockKFold(const graph::GridSpec& grid,
                             const std::vector<int>& labeled_ids, int k,
                             int block_size, Rng* rng) {
  UV_CHECK_GT(k, 1);
  UV_CHECK_GT(block_size, 0);
  const int blocks_per_row = (grid.width + block_size - 1) / block_size;

  auto block_of = [&](int id) {
    const int br = grid.RowOf(id) / block_size;
    const int bc = grid.ColOf(id) / block_size;
    return br * blocks_per_row + bc;
  };

  // Collect the blocks that actually contain labeled regions and shuffle
  // them into k folds.
  std::unordered_map<int, std::vector<int>> ids_by_block;
  for (int id : labeled_ids) ids_by_block[block_of(id)].push_back(id);
  std::vector<int> blocks;
  blocks.reserve(ids_by_block.size());
  for (const auto& [block, ids] : ids_by_block) blocks.push_back(block);
  std::sort(blocks.begin(), blocks.end());  // Determinism before shuffling.
  rng->Shuffle(&blocks);

  std::vector<int> fold_of_block(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    fold_of_block[i] = static_cast<int>(i % k);
  }

  std::unordered_map<int, int> fold_by_block;
  for (size_t i = 0; i < blocks.size(); ++i) {
    fold_by_block[blocks[i]] = fold_of_block[i];
  }

  std::vector<Fold> folds(k);
  for (int id : labeled_ids) {
    const int f = fold_by_block.at(block_of(id));
    for (int j = 0; j < k; ++j) {
      if (j == f) {
        folds[j].test_ids.push_back(id);
      } else {
        folds[j].train_ids.push_back(id);
      }
    }
  }
  return folds;
}

std::vector<int> MaskLabeledRatio(const std::vector<int>& ids,
                                  const std::vector<int>& labels_full,
                                  double ratio, Rng* rng) {
  UV_CHECK(ratio > 0.0 && ratio <= 1.0);
  std::vector<int> shuffled = ids;
  rng->Shuffle(&shuffled);
  const int keep = std::max(1, static_cast<int>(ratio * shuffled.size()));
  std::vector<int> out(shuffled.begin(), shuffled.begin() + keep);
  // Keep at least one positive so BCE training stays well posed.
  bool has_pos = false;
  for (int id : out) has_pos |= (labels_full[id] == 1);
  if (!has_pos) {
    for (int id : shuffled) {
      if (labels_full[id] == 1) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace uv::eval
