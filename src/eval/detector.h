#ifndef UV_EVAL_DETECTOR_H_
#define UV_EVAL_DETECTOR_H_

#include <string>
#include <vector>

#include "urg/urban_region_graph.h"

namespace uv::eval {

// Common interface of every urban-village detector in the comparison (the
// CMSF model and all seven baselines). A detector is constructed fresh per
// cross-validation fold, trained on the labeled training regions, and asked
// to score arbitrary region ids with P(region is UV).
class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  // Trains on the given labeled regions of the URG. `train_ids` index into
  // the URG's regions; `train_labels` are {0,1} aligned with train_ids.
  virtual void Train(const urg::UrbanRegionGraph& urg,
                     const std::vector<int>& train_ids,
                     const std::vector<int>& train_labels) = 0;

  // Scores the given regions; higher = more likely UV. Must be callable
  // only after Train.
  virtual std::vector<float> Score(const urg::UrbanRegionGraph& urg,
                                   const std::vector<int>& eval_ids) = 0;

  // Scalar parameter count (Table III model size: 4 bytes per parameter).
  virtual int64_t NumParameters() const = 0;

  // Mean wall-clock seconds of one training epoch / of the last Score call
  // (Table III efficiency rows).
  virtual double TrainSecondsPerEpoch() const = 0;
  virtual double LastInferenceSeconds() const = 0;

  // Monotonic wall time of each training epoch, in order (the samples
  // behind TrainSecondsPerEpoch). Detectors that don't track per-epoch
  // times return empty; callers must fall back to the mean.
  virtual std::vector<double> EpochSecondsHistory() const { return {}; }
};

}  // namespace uv::eval

#endif  // UV_EVAL_DETECTOR_H_
