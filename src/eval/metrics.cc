#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace uv::eval {

double Auc(const std::vector<float>& scores, const std::vector<int>& labels) {
  UV_CHECK_EQ(scores.size(), labels.size());
  const int n = static_cast<int>(scores.size());
  int64_t num_pos = 0;
  for (int l : labels) num_pos += (l != 0);
  const int64_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Rank-sum formulation with midranks for ties.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] < scores[b]; });
  double pos_rank_sum = 0.0;
  int i = 0;
  while (i < n) {
    int j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (i + 1 + j);  // Ranks are 1-based.
    for (int k = i; k < j; ++k) {
      if (labels[order[k]] != 0) pos_rank_sum += midrank;
    }
    i = j;
  }
  const double u = pos_rank_sum - 0.5 * num_pos * (num_pos + 1);
  return u / (static_cast<double>(num_pos) * num_neg);
}

TopPercentMetrics TopPercent(const std::vector<float>& scores,
                             const std::vector<int>& labels, double percent) {
  UV_CHECK_EQ(scores.size(), labels.size());
  UV_CHECK(percent > 0.0 && percent <= 100.0);
  TopPercentMetrics out;
  const int n = static_cast<int>(scores.size());
  if (n == 0) return out;
  const int k = std::max(
      1, static_cast<int>(std::ceil(percent / 100.0 * n)));
  out.num_predicted = k;

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });
  int64_t true_pos = 0;
  for (int i = 0; i < k; ++i) true_pos += (labels[order[i]] != 0);
  int64_t total_pos = 0;
  for (int l : labels) total_pos += (l != 0);

  out.precision = static_cast<double>(true_pos) / k;
  out.recall =
      total_pos > 0 ? static_cast<double>(true_pos) / total_pos : 0.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

DetectionMetrics ComputeDetectionMetrics(const std::vector<float>& scores,
                                         const std::vector<int>& labels) {
  DetectionMetrics m;
  m.auc = Auc(scores, labels);
  m.at3 = TopPercent(scores, labels, 3.0);
  m.at5 = TopPercent(scores, labels, 5.0);
  return m;
}

MeanStd Aggregate(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / values.size();
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / values.size());
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(p / 100.0 * values.size());
  if (rank >= values.size()) rank = values.size() - 1;
  return values[rank];
}

}  // namespace uv::eval
