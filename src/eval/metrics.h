#ifndef UV_EVAL_METRICS_H_
#define UV_EVAL_METRICS_H_

#include <vector>

namespace uv::eval {

// Area under the ROC curve via the rank statistic (ties share ranks).
// Returns 0.5 when one class is absent.
double Auc(const std::vector<float>& scores, const std::vector<int>& labels);

// Top-p% screening metrics (paper Section VI-C): the ceil(p% * N) regions
// with the highest scores are predicted UVs; precision/recall/F1 follow.
struct TopPercentMetrics {
  double recall = 0.0;
  double precision = 0.0;
  double f1 = 0.0;
  int num_predicted = 0;
};
TopPercentMetrics TopPercent(const std::vector<float>& scores,
                             const std::vector<int>& labels, double percent);

// The full metric row used across tables: AUC + top-3% + top-5%.
struct DetectionMetrics {
  double auc = 0.0;
  TopPercentMetrics at3;
  TopPercentMetrics at5;
};
DetectionMetrics ComputeDetectionMetrics(const std::vector<float>& scores,
                                         const std::vector<int>& labels);

// Mean / standard deviation aggregation across repeated runs.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd Aggregate(const std::vector<double>& values);

// Nearest-rank percentile (p in [0, 100]) of the given samples; takes a
// copy so callers keep their ordering. Returns 0 on an empty input.
double Percentile(std::vector<double> values, double p);

}  // namespace uv::eval

#endif  // UV_EVAL_METRICS_H_
