#include "eval/runner.h"

#include "util/logging.h"

namespace uv::eval {

RunStats RunCrossValidation(const urg::UrbanRegionGraph& urg,
                            const DetectorFactory& factory,
                            const RunnerOptions& options) {
  std::vector<double> aucs, r3, p3, f3, r5, p5, f5;
  double train_time = 0.0, infer_time = 0.0;
  int64_t params = 0;
  int measured = 0;

  const std::vector<int> labeled = urg.LabeledIds();
  for (int run = 0; run < options.num_runs; ++run) {
    Rng rng(options.seed + 7919ull * run);
    const auto folds = BlockKFold(urg.grid, labeled, options.num_folds,
                                  options.block_size, &rng);
    for (size_t f = 0; f < folds.size(); ++f) {
      std::vector<int> train_ids = folds[f].train_ids;
      if (options.label_ratio < 1.0) {
        train_ids =
            MaskLabeledRatio(train_ids, urg.labels, options.label_ratio, &rng);
      }
      std::vector<int> train_labels(train_ids.size());
      for (size_t i = 0; i < train_ids.size(); ++i) {
        train_labels[i] = urg.labels[train_ids[i]];
      }
      std::vector<int> test_labels(folds[f].test_ids.size());
      for (size_t i = 0; i < folds[f].test_ids.size(); ++i) {
        test_labels[i] = urg.labels[folds[f].test_ids[i]];
      }

      auto detector = factory(options.seed + 104729ull * run + 31ull * f);
      detector->Train(urg, train_ids, train_labels);
      const std::vector<float> scores =
          detector->Score(urg, folds[f].test_ids);
      const DetectionMetrics m = ComputeDetectionMetrics(scores, test_labels);
      aucs.push_back(m.auc);
      r3.push_back(m.at3.recall);
      p3.push_back(m.at3.precision);
      f3.push_back(m.at3.f1);
      r5.push_back(m.at5.recall);
      p5.push_back(m.at5.precision);
      f5.push_back(m.at5.f1);
      train_time += detector->TrainSecondsPerEpoch();
      infer_time += detector->LastInferenceSeconds();
      params = detector->NumParameters();
      ++measured;
      UV_LOG_DEBUG("run %d fold %zu: auc=%.3f r3=%.3f p3=%.3f", run, f, m.auc,
                   m.at3.recall, m.at3.precision);
    }
  }

  RunStats stats;
  stats.auc = Aggregate(aucs);
  stats.recall3 = Aggregate(r3);
  stats.precision3 = Aggregate(p3);
  stats.f13 = Aggregate(f3);
  stats.recall5 = Aggregate(r5);
  stats.precision5 = Aggregate(p5);
  stats.f15 = Aggregate(f5);
  if (measured > 0) {
    stats.train_seconds_per_epoch = train_time / measured;
    stats.inference_seconds = infer_time / measured;
  }
  stats.num_parameters = params;
  return stats;
}

}  // namespace uv::eval
