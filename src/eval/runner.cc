#include "eval/runner.h"

#include <cstdio>
#include <vector>

#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace uv::eval {
namespace {

// One (run, fold) unit of work, fully materialized before any training
// starts so the shared split RNG is consumed in a fixed serial order.
struct FoldJob {
  int run = 0;
  int fold = 0;
  uint64_t detector_seed = 0;
  std::vector<int> train_ids;
  std::vector<int> train_labels;
  std::vector<int> test_ids;
  std::vector<int> test_labels;
};

struct FoldResult {
  DetectionMetrics metrics;
  double train_seconds_per_epoch = 0.0;
  double inference_seconds = 0.0;
  double job_seconds = 0.0;
  int64_t num_parameters = 0;
  std::vector<double> epoch_seconds;
};

}  // namespace

RunStats RunCrossValidation(const urg::UrbanRegionGraph& urg,
                            const DetectorFactory& factory,
                            const RunnerOptions& options) {
  const std::vector<int> labeled = urg.LabeledIds();

  // Phase 1 (serial): draw every split and label mask.
  std::vector<FoldJob> jobs;
  for (int run = 0; run < options.num_runs; ++run) {
    Rng rng(options.seed + 7919ull * run);
    const auto folds = BlockKFold(urg.grid, labeled, options.num_folds,
                                  options.block_size, &rng);
    for (size_t f = 0; f < folds.size(); ++f) {
      FoldJob job;
      job.run = run;
      job.fold = static_cast<int>(f);
      job.detector_seed = options.seed + 104729ull * run + 31ull * f;
      job.train_ids = folds[f].train_ids;
      if (options.label_ratio < 1.0) {
        job.train_ids = MaskLabeledRatio(job.train_ids, urg.labels,
                                         options.label_ratio, &rng);
      }
      job.train_labels.resize(job.train_ids.size());
      for (size_t i = 0; i < job.train_ids.size(); ++i) {
        job.train_labels[i] = urg.labels[job.train_ids[i]];
      }
      job.test_ids = folds[f].test_ids;
      job.test_labels.resize(job.test_ids.size());
      for (size_t i = 0; i < job.test_ids.size(); ++i) {
        job.test_labels[i] = urg.labels[job.test_ids[i]];
      }
      jobs.push_back(std::move(job));
    }
  }

  // Phase 2 (parallel): each job trains its own freshly seeded detector
  // and writes into its preallocated slot; nothing is shared across jobs.
  std::vector<FoldResult> results(jobs.size());
  // Peak footprint should cover this cross-validation only, not whatever
  // high-water mark URG construction left behind.
  BufferPool::ResetPeak();
  const MemStatsSnapshot mem_before = BufferPool::Stats();
  WallTimer wall;
  {
    obs::SpanGuard cv_span("cross_validation", obs::SpanLevel::kCoarse,
                           "jobs", static_cast<int>(jobs.size()));
    ParallelFor(0, static_cast<int64_t>(jobs.size()), 1,
                [&](int64_t j0, int64_t j1) {
                  for (int64_t j = j0; j < j1; ++j) {
                    const FoldJob& job = jobs[j];
                    obs::SpanGuard fold_span("fold", obs::SpanLevel::kCoarse,
                                             "run", job.run, "fold", job.fold);
                    obs::FoldScope fold_scope(job.run, job.fold);
                    WallTimer job_timer;
                    auto detector = factory(job.detector_seed);
                    detector->Train(urg, job.train_ids, job.train_labels);
                    const std::vector<float> scores =
                        detector->Score(urg, job.test_ids);
                    FoldResult& r = results[j];
                    r.metrics =
                        ComputeDetectionMetrics(scores, job.test_labels);
                    r.train_seconds_per_epoch =
                        detector->TrainSecondsPerEpoch();
                    r.inference_seconds = detector->LastInferenceSeconds();
                    r.job_seconds = job_timer.Seconds();
                    r.num_parameters = detector->NumParameters();
                    r.epoch_seconds = detector->EpochSecondsHistory();
                    obs::MetricsRecord("fold")
                        .Num("auc", r.metrics.auc)
                        .Num("recall3", r.metrics.at3.recall)
                        .Num("precision3", r.metrics.at3.precision)
                        .Num("seconds", r.job_seconds)
                        .Emit();
                  }
                });
  }
  const double wall_seconds = wall.Seconds();
  const MemStatsSnapshot mem_after = BufferPool::Stats();

  // Phase 3 (serial): aggregate in job order, independent of which worker
  // finished when.
  std::vector<double> aucs, r3, p3, f3, r5, p5, f5;
  std::vector<double> epoch_samples;
  double train_time = 0.0, infer_time = 0.0, summed_job = 0.0;
  int measured = 0;
  for (size_t j = 0; j < results.size(); ++j) {
    const DetectionMetrics& m = results[j].metrics;
    epoch_samples.insert(epoch_samples.end(),
                         results[j].epoch_seconds.begin(),
                         results[j].epoch_seconds.end());
    aucs.push_back(m.auc);
    r3.push_back(m.at3.recall);
    p3.push_back(m.at3.precision);
    f3.push_back(m.at3.f1);
    r5.push_back(m.at5.recall);
    p5.push_back(m.at5.precision);
    f5.push_back(m.at5.f1);
    train_time += results[j].train_seconds_per_epoch;
    infer_time += results[j].inference_seconds;
    summed_job += results[j].job_seconds;
    ++measured;
    UV_LOG_DEBUG("run %d fold %d: auc=%.3f r3=%.3f p3=%.3f", jobs[j].run,
                 jobs[j].fold, m.auc, m.at3.recall, m.at3.precision);
  }

  RunStats stats;
  stats.auc = Aggregate(aucs);
  stats.recall3 = Aggregate(r3);
  stats.precision3 = Aggregate(p3);
  stats.f13 = Aggregate(f3);
  stats.recall5 = Aggregate(r5);
  stats.precision5 = Aggregate(p5);
  stats.f15 = Aggregate(f5);
  if (measured > 0) {
    stats.train_seconds_per_epoch = train_time / measured;
    stats.inference_seconds = infer_time / measured;
    // Every fold builds the same architecture; count one detector, not
    // the last fold's by accident.
    stats.num_parameters = results.front().num_parameters;
  }
  stats.wall_seconds = wall_seconds;
  stats.summed_job_seconds = summed_job;
  stats.epoch_seconds_p50 = Percentile(epoch_samples, 50.0);
  stats.epoch_seconds_p95 = Percentile(epoch_samples, 95.0);
  stats.mem.acquires = mem_after.acquires - mem_before.acquires;
  stats.mem.hits = mem_after.hits - mem_before.hits;
  stats.mem.heap_allocs = mem_after.heap_allocs - mem_before.heap_allocs;
  stats.mem.heap_bytes = mem_after.heap_bytes - mem_before.heap_bytes;
  stats.mem.releases = mem_after.releases - mem_before.releases;
  stats.mem.tls_spills = mem_after.tls_spills - mem_before.tls_spills;
  // Gauges, not monotone counters: report the end-of-phase footprint and
  // the phase-local high-water mark (ResetPeak above).
  stats.mem.pool_bytes = mem_after.pool_bytes;
  stats.mem.pool_bytes_peak = mem_after.pool_bytes_peak;
  if (MemStatsRequested()) {
    // Stderr so tables and scores on stdout stay machine-comparable.
    std::fprintf(stderr, "%s\n", FormatMemStats(stats.mem).c_str());
  }
  obs::MetricsRecord("summary")
      .Num("auc_mean", stats.auc.mean)
      .Num("auc_std", stats.auc.std)
      .Num("wall_seconds", stats.wall_seconds)
      .Num("epoch_seconds_p50", stats.epoch_seconds_p50)
      .Num("epoch_seconds_p95", stats.epoch_seconds_p95)
      .Emit();
  return stats;
}

void AppendRunStats(obs::Report* report, const std::string& name,
                    const RunStats& stats) {
  obs::BenchmarkEntry& b = report->Bench(name);
  // The whole cross-validation wall clock doubles as the entry's one
  // timed repeat, so ledger diffing sees table benches too.
  b.AddRepeat(stats.wall_seconds);
  b.AddMetric("auc_mean", stats.auc.mean, obs::Direction::kHigherIsBetter);
  b.AddMetric("auc_std", stats.auc.std);
  b.AddMetric("f13_mean", stats.f13.mean, obs::Direction::kHigherIsBetter);
  b.AddMetric("f15_mean", stats.f15.mean, obs::Direction::kHigherIsBetter);
  b.AddMetric("wall_seconds", stats.wall_seconds,
              obs::Direction::kLowerIsBetter);
  b.AddMetric("summed_job_seconds", stats.summed_job_seconds);
  b.AddMetric("train_seconds_per_epoch", stats.train_seconds_per_epoch,
              obs::Direction::kLowerIsBetter);
  b.AddMetric("inference_seconds", stats.inference_seconds,
              obs::Direction::kLowerIsBetter);
  b.AddMetric("epoch_seconds_p50", stats.epoch_seconds_p50,
              obs::Direction::kLowerIsBetter);
  b.AddMetric("epoch_seconds_p95", stats.epoch_seconds_p95,
              obs::Direction::kLowerIsBetter);
  b.AddMetric("num_parameters", static_cast<double>(stats.num_parameters));
  b.AddMetric("mem.acquires", static_cast<double>(stats.mem.acquires));
  b.AddMetric("mem.pool_hits", static_cast<double>(stats.mem.hits));
  b.AddMetric("mem.heap_allocs", static_cast<double>(stats.mem.heap_allocs));
  b.AddMetric("mem.pool_bytes_peak",
              static_cast<double>(stats.mem.pool_bytes_peak));
}

}  // namespace uv::eval
