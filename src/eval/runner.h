#ifndef UV_EVAL_RUNNER_H_
#define UV_EVAL_RUNNER_H_

#include <functional>
#include <memory>

#include "eval/detector.h"
#include "eval/metrics.h"
#include "eval/splits.h"

namespace uv::eval {

// Builds a fresh detector for one (run, fold); the seed decorrelates
// repeated runs.
using DetectorFactory =
    std::function<std::unique_ptr<Detector>(uint64_t seed)>;

struct RunnerOptions {
  int num_folds = 3;    // Paper: 3-fold cross validation.
  int num_runs = 1;     // Paper reports mean/std over 5 random runs.
  int block_size = 10;  // Paper: 10x10-grid blocks as CV units.
  uint64_t seed = 1234;
  double label_ratio = 1.0;  // < 1 applies the Fig. 6(c) training mask.
};

// Aggregated cross-validation result for one detector on one dataset.
struct RunStats {
  MeanStd auc;
  MeanStd recall3, precision3, f13;
  MeanStd recall5, precision5, f15;
  double train_seconds_per_epoch = 0.0;
  double inference_seconds = 0.0;
  int64_t num_parameters = 0;
};

// Runs the paper's evaluation protocol: block-level k-fold CV repeated
// num_runs times; metrics are computed on each test fold and aggregated
// over all (run, fold) pairs.
RunStats RunCrossValidation(const urg::UrbanRegionGraph& urg,
                            const DetectorFactory& factory,
                            const RunnerOptions& options);

}  // namespace uv::eval

#endif  // UV_EVAL_RUNNER_H_
