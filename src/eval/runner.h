#ifndef UV_EVAL_RUNNER_H_
#define UV_EVAL_RUNNER_H_

#include <functional>
#include <memory>

#include "eval/detector.h"
#include "eval/metrics.h"
#include "eval/splits.h"
#include "obs/report.h"
#include "util/buffer_pool.h"

namespace uv::eval {

// Builds a fresh detector for one (run, fold); the seed decorrelates
// repeated runs.
using DetectorFactory =
    std::function<std::unique_ptr<Detector>(uint64_t seed)>;

struct RunnerOptions {
  int num_folds = 3;    // Paper: 3-fold cross validation.
  int num_runs = 1;     // Paper reports mean/std over 5 random runs.
  int block_size = 10;  // Paper: 10x10-grid blocks as CV units.
  uint64_t seed = 1234;
  double label_ratio = 1.0;  // < 1 applies the Fig. 6(c) training mask.
};

// Aggregated cross-validation result for one detector on one dataset.
struct RunStats {
  MeanStd auc;
  MeanStd recall3, precision3, f13;
  MeanStd recall5, precision5, f15;
  // Mean per-detector timings over all measured (run, fold) pairs.
  double train_seconds_per_epoch = 0.0;
  double inference_seconds = 0.0;
  // End-to-end wall clock of the whole cross-validation, which with
  // fold-level parallelism can be far below the summed per-detector time.
  double wall_seconds = 0.0;
  // Sum of each (run, fold) job's own wall clock. On one thread this
  // approaches wall_seconds (minus split drawing and aggregation); with
  // fold-level parallelism it exceeds it by roughly the speedup factor.
  // Report it next to wall_seconds — quoting either alone misleads.
  double summed_job_seconds = 0.0;
  // Parameter count of one detector (identical across folds; counted once).
  int64_t num_parameters = 0;
  // Nearest-rank percentiles of per-epoch wall times pooled over every
  // (run, fold) detector that reports an epoch history (0 when none do).
  double epoch_seconds_p50 = 0.0;
  double epoch_seconds_p95 = 0.0;
  // BufferPool activity during this cross-validation (delta of the global
  // counters across the call; counters are always maintained, UV_MEM_STATS
  // only controls whether tools print them).
  MemStatsSnapshot mem;
};

// Runs the paper's evaluation protocol: block-level k-fold CV repeated
// num_runs times; metrics are computed on each test fold and aggregated
// over all (run, fold) pairs.
//
// (run, fold) jobs execute in parallel on the UV_THREADS pool: every job
// gets an independently seeded detector, the fold splits are drawn
// serially beforehand (so RNG consumption order never depends on the
// thread count), and per-fold metrics land in a preallocated slot vector
// that is aggregated in job order — results are identical for any
// UV_THREADS value.
RunStats RunCrossValidation(const urg::UrbanRegionGraph& urg,
                            const DetectorFactory& factory,
                            const RunnerOptions& options);

// Serializes one RunStats into the named benchmark entry of a perf ledger:
// quality metrics (AUC/F1, direction "higher"), timing metrics (wall,
// per-epoch, inference — direction "lower"), and the pool-counter deltas as
// informational values. This is the single path every bench binary and the
// --json flag of the example runners use, so ledgers stay schema-uniform.
void AppendRunStats(obs::Report* report, const std::string& name,
                    const RunStats& stats);

}  // namespace uv::eval

#endif  // UV_EVAL_RUNNER_H_
