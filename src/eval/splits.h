#ifndef UV_EVAL_SPLITS_H_
#define UV_EVAL_SPLITS_H_

#include <vector>

#include "graph/grid.h"
#include "util/rng.h"

namespace uv::eval {

// One cross-validation fold over labeled region ids.
struct Fold {
  std::vector<int> train_ids;
  std::vector<int> test_ids;
};

// Coarse block-level k-fold split (paper Section VI-A): every 10x10 block of
// grids is an indivisible unit assigned to one fold, so labeled and
// unlabeled grids of the same patch never mix across train/test. Only
// labeled ids appear in the folds.
std::vector<Fold> BlockKFold(const graph::GridSpec& grid,
                             const std::vector<int>& labeled_ids, int k,
                             int block_size, Rng* rng);

// Keeps a random `ratio` fraction of the ids (Fig. 6(c) label-ratio masks);
// guarantees at least one positive survives when one exists.
std::vector<int> MaskLabeledRatio(const std::vector<int>& ids,
                                  const std::vector<int>& labels_full,
                                  double ratio, Rng* rng);

}  // namespace uv::eval

#endif  // UV_EVAL_SPLITS_H_
