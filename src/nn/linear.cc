#include "nn/linear.h"

#include "tensor/tensor_ops.h"

namespace uv::nn {

Linear::Linear(int in_dim, int out_dim, Rng* rng) {
  Tensor w(in_dim, out_dim);
  w.GlorotUniform(rng);
  w_ = ag::MakeParam(std::move(w));
  b_ = ag::MakeParam(Tensor(1, out_dim));
}

ag::VarPtr Linear::Forward(const ag::VarPtr& x) const {
  return ag::DenseBiasAct(x, w_, b_, kern::Activation::kNone);
}

ag::VarPtr Linear::Forward(const ag::VarPtr& x, kern::Activation act,
                           float leaky_slope) const {
  return ag::DenseBiasAct(x, w_, b_, act, leaky_slope);
}

Tensor Linear::ForwardRaw(const Tensor& x, kern::Activation act,
                          float leaky_slope) const {
  Tensor out = Tensor::Uninit(x.rows(), w_->value.cols());
  GemmBiasAct(false, false, 1.0f, x, w_->value, 0.0f, &out, &b_->value, act,
              leaky_slope);
  return out;
}

Mlp::Mlp(int in_dim, int hidden_dim, int out_dim, Rng* rng)
    : l1_(in_dim, hidden_dim, rng), l2_(hidden_dim, out_dim, rng) {}

ag::VarPtr Mlp::Forward(const ag::VarPtr& x) const {
  return l2_.Forward(l1_.Forward(x, kern::Activation::kRelu));
}

Tensor Mlp::ForwardRaw(const Tensor& x) const {
  return l2_.ForwardRaw(l1_.ForwardRaw(x, kern::Activation::kRelu));
}

std::vector<ag::VarPtr> Mlp::Params() const {
  return {l1_.w(), l1_.b(), l2_.w(), l2_.b()};
}

}  // namespace uv::nn
