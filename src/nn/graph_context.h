#ifndef UV_NN_GRAPH_CONTEXT_H_
#define UV_NN_GRAPH_CONTEXT_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "graph/csr_graph.h"

namespace uv::nn {

// Constant per-graph index structures shared by every message-passing layer
// operating on one URG: destination-grouped edge offsets, per-edge source
// ids and per-edge destination ids, plus symmetric-normalized edge weights
// for GCN-style aggregation. Built once per graph, reused across layers and
// epochs.
struct GraphContext {
  std::shared_ptr<const std::vector<int>> offsets;  // Size N+1.
  std::shared_ptr<const std::vector<int>> src_ids;  // Size E.
  std::shared_ptr<const std::vector<int>> dst_ids;  // Size E.
  ag::VarPtr gcn_norm;  // (E x 1) constant: 1/sqrt(deg_dst * deg_src).
  int num_nodes = 0;

  static GraphContext FromCsr(const graph::CsrGraph& g);
};

}  // namespace uv::nn

#endif  // UV_NN_GRAPH_CONTEXT_H_
