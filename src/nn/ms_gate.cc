#include "nn/ms_gate.h"

#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::nn {

MsGate::MsGate(const Options& options, Rng* rng)
    : options_(options),
      pseudo_predictor_(options.cluster_repr_dim, 1, rng) {
  const int filter_size = ag::GatedMlpFilterSize(options.classifier_in,
                                                 options.classifier_hidden);
  Tensor wq(options.num_clusters, options.context_dim);
  wq.GlorotUniform(rng);
  w_q_ = ag::MakeParam(std::move(wq));
  Tensor wf(options.context_dim, filter_size);
  wf.RandomNormal(rng, 0.05f);
  w_f_ = ag::MakeParam(std::move(wf));
  Tensor bf(1, filter_size);
  // sigmoid(3) ~ 0.95: the slave model starts as the near-unmodified master
  // and the gate learns which parameters to damp per region.
  bf.Fill(3.0f);
  b_f_ = ag::MakeParam(std::move(bf));
}

ag::VarPtr MsGate::EstimateInclusion(const ag::VarPtr& cluster_repr) const {
  UV_CHECK_EQ(cluster_repr->cols(), options_.cluster_repr_dim);
  return pseudo_predictor_.Forward(cluster_repr, kern::Activation::kSigmoid);
}

ag::VarPtr MsGate::ContextVector(const ag::VarPtr& assignment,
                                 const ag::VarPtr& inclusion) const {
  UV_CHECK_EQ(assignment->cols(), options_.num_clusters);
  UV_CHECK_EQ(inclusion->rows(), options_.num_clusters);
  UV_CHECK_EQ(inclusion->cols(), 1);
  // B_{i,*} ∘ Ŷ^h followed by W_q and sigma (eq. 19).
  ag::VarPtr weighted =
      ag::MulRowVector(assignment, ag::Transpose(inclusion));
  return ag::Sigmoid(ag::MatMul(weighted, w_q_));
}

ag::VarPtr MsGate::Forward(const ag::VarPtr& region_repr,
                           const ag::VarPtr& assignment,
                           const ag::VarPtr& inclusion,
                           const Mlp& master) const {
  UV_CHECK_EQ(region_repr->cols(), options_.classifier_in);
  ag::VarPtr context = ContextVector(assignment, inclusion);
  // Region-specific parameter filter (eq. 20), elements in (0, 1);
  // matmul, bias, and sigmoid fused into one kernel pass.
  ag::VarPtr filter =
      ag::DenseBiasAct(context, w_f_, b_f_, kern::Activation::kSigmoid);
  // Slave model prediction with gated master parameters (eq. 21-22).
  return ag::GatedMlp(region_repr, filter, master.layer1().w(),
                      master.layer1().b(), master.layer2().w(),
                      master.layer2().b());
}

Tensor MsGate::EstimateInclusionRaw(const Tensor& cluster_repr) const {
  UV_CHECK_EQ(cluster_repr.cols(), options_.cluster_repr_dim);
  return pseudo_predictor_.ForwardRaw(cluster_repr,
                                      kern::Activation::kSigmoid);
}

Tensor MsGate::ContextVectorRaw(const Tensor& assignment,
                                const Tensor& inclusion) const {
  UV_CHECK_EQ(assignment.cols(), options_.num_clusters);
  UV_CHECK_EQ(inclusion.rows(), options_.num_clusters);
  UV_CHECK_EQ(inclusion.cols(), 1);
  Tensor weighted = assignment;
  MulRowVectorInPlace(Transpose(inclusion), &weighted);
  Tensor context = MatMul(weighted, w_q_->value);
  SigmoidInPlace(&context);
  return context;
}

Tensor MsGate::ForwardRaw(const Tensor& region_repr, const Tensor& assignment,
                          const Tensor& inclusion, const Mlp& master) const {
  UV_CHECK_EQ(region_repr.cols(), options_.classifier_in);
  const Tensor context = ContextVectorRaw(assignment, inclusion);
  Tensor filter = Tensor::Uninit(context.rows(), w_f_->value.cols());
  GemmBiasAct(false, false, 1.0f, context, w_f_->value, 0.0f, &filter,
              &b_f_->value, kern::Activation::kSigmoid);
  Tensor out;
  Tensor hidden;
  GatedMlpForward(region_repr, filter, master.layer1().w()->value,
                  master.layer1().b()->value, master.layer2().w()->value,
                  master.layer2().b()->value, &out, &hidden);
  return out;
}

std::vector<ag::VarPtr> MsGate::Params() const {
  std::vector<ag::VarPtr> params = pseudo_predictor_.Params();
  params.push_back(w_q_);
  params.push_back(w_f_);
  params.push_back(b_f_);
  return params;
}

}  // namespace uv::nn
