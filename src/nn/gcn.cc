#include "nn/gcn.h"

#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"

namespace uv::nn {

ag::VarPtr GcnLayer::Forward(const ag::VarPtr& x,
                             const GraphContext& ctx) const {
  // Transform first (cheaper when out_dim <= in_dim), then aggregate.
  ag::VarPtr h = lin_.Forward(x);
  ag::VarPtr gathered = ag::GatherRows(h, ctx.src_ids);
  return ag::SegmentWeightedSum(ctx.gcn_norm, gathered, ctx.offsets);
}

Tensor GcnLayer::ForwardRaw(const Tensor& x, const GraphContext& ctx) const {
  const Tensor h = lin_.ForwardRaw(x);
  const Tensor gathered = GatherRows(h, *ctx.src_ids);
  Tensor out;
  SegmentWeightedSumInto(ctx.gcn_norm->value, gathered, *ctx.offsets, &out);
  return out;
}

}  // namespace uv::nn
