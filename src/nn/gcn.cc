#include "nn/gcn.h"

namespace uv::nn {

ag::VarPtr GcnLayer::Forward(const ag::VarPtr& x,
                             const GraphContext& ctx) const {
  // Transform first (cheaper when out_dim <= in_dim), then aggregate.
  ag::VarPtr h = lin_.Forward(x);
  ag::VarPtr gathered = ag::GatherRows(h, ctx.src_ids);
  return ag::SegmentWeightedSum(ctx.gcn_norm, gathered, ctx.offsets);
}

}  // namespace uv::nn
