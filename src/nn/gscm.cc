#include "nn/gscm.h"

#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::nn {

Gscm::Gscm(const Options& options, Rng* rng) : options_(options) {
  UV_CHECK_GT(options.num_clusters, 1);
  UV_CHECK(options.temperature > 0.0f);
  const int d = options.in_dim;
  const int k = options.num_clusters;
  Tensor wb(d, k), ew(k, k), wh(d, d), wr(d, d);
  wb.GlorotUniform(rng);
  // The complete cluster graph starts near-uniform with small noise so
  // early training does not favour arbitrary cluster pairs.
  ew.Fill(1.0f / static_cast<float>(k));
  Tensor noise(k, k);
  noise.RandomNormal(rng, 0.01f);
  Axpy(1.0f, noise, &ew);
  wh.GlorotUniform(rng);
  wr.GlorotUniform(rng);
  w_b_ = ag::MakeParam(std::move(wb));
  edge_w_ = ag::MakeParam(std::move(ew));
  w_h_ = ag::MakeParam(std::move(wh));
  w_r_ = ag::MakeParam(std::move(wr));
  if (options.agg == AggKind::kAttention) {
    Tensor q(d, 1);
    q.GlorotUniform(rng);
    agg_query_ = ag::MakeParam(std::move(q));
  }
}

Gscm::Output Gscm::Forward(const ag::VarPtr& x) const {
  UV_CHECK_EQ(x->cols(), options_.in_dim);
  ag::VarPtr logits = ag::MatMul(x, w_b_);
  ag::VarPtr soft = ag::RowSoftmax(logits, options_.temperature);
  std::vector<int> hard = RowArgmax(logits->value);
  return Finish(x, std::move(soft), std::move(hard));
}

Gscm::Output Gscm::ForwardFrozen(const ag::VarPtr& x,
                                 const Tensor& frozen_soft,
                                 const std::vector<int>& frozen_hard) const {
  UV_CHECK_EQ(frozen_soft.rows(), x->rows());
  UV_CHECK_EQ(frozen_soft.cols(), options_.num_clusters);
  return Finish(x, ag::MakeConst(frozen_soft), frozen_hard);
}

Gscm::Output Gscm::Finish(const ag::VarPtr& x, ag::VarPtr assignment,
                          std::vector<int> hard) const {
  Output out;
  out.assignment = std::move(assignment);
  out.hard_assignment = std::move(hard);

  // regions -> clusters through the binarized assignment (eq. 10).
  auto seg_ids =
      std::make_shared<const std::vector<int>>(out.hard_assignment);
  ag::VarPtr h =
      ag::SegmentSumByIds(x, seg_ids, options_.num_clusters);

  // Cluster-graph convolution over the complete learnable graph (eq. 11).
  out.cluster_repr = ag::Relu(ag::MatMul(edge_w_, ag::MatMul(h, w_h_)));

  // clusters -> regions reverse knowledge sharing with soft B (eq. 12).
  ag::VarPtr global =
      ag::Relu(ag::MatMul(out.assignment, ag::MatMul(out.cluster_repr, w_r_)));

  // Combine local and global representations (eq. 13).
  out.region_repr = AggregatePair(options_.agg, x, global, agg_query_);
  return out;
}

Gscm::RawOutput Gscm::ForwardRaw(const Tensor& x) const {
  UV_CHECK_EQ(x.cols(), options_.in_dim);
  const Tensor logits = MatMul(x, w_b_->value);
  Tensor soft = RowSoftmax(logits, options_.temperature);
  std::vector<int> hard = RowArgmax(logits);
  return FinishRaw(x, std::move(soft), std::move(hard));
}

Gscm::RawOutput Gscm::ForwardFrozenRaw(
    const Tensor& x, const Tensor& frozen_soft,
    const std::vector<int>& frozen_hard) const {
  UV_CHECK_EQ(frozen_soft.rows(), x.rows());
  UV_CHECK_EQ(frozen_soft.cols(), options_.num_clusters);
  return FinishRaw(x, frozen_soft, frozen_hard);
}

Gscm::RawOutput Gscm::FinishRaw(const Tensor& x, Tensor assignment,
                                std::vector<int> hard) const {
  RawOutput out;
  out.assignment = std::move(assignment);
  out.hard_assignment = std::move(hard);

  const SegmentDestIndex dest =
      BuildSegmentDestIndex(out.hard_assignment, options_.num_clusters);
  Tensor h;
  SegmentSumInto(x, dest, &h);

  out.cluster_repr = MatMul(edge_w_->value, MatMul(h, w_h_->value));
  ReluInPlace(&out.cluster_repr);

  Tensor global =
      MatMul(out.assignment, MatMul(out.cluster_repr, w_r_->value));
  ReluInPlace(&global);

  out.region_repr = AggregatePairRaw(options_.agg, x, global,
                                     agg_query_ ? &agg_query_->value : nullptr);
  return out;
}

std::vector<ag::VarPtr> Gscm::Params() const {
  std::vector<ag::VarPtr> params = {w_b_, edge_w_, w_h_, w_r_};
  if (options_.agg == AggKind::kAttention) params.push_back(agg_query_);
  return params;
}

std::vector<int> ComputeClusterPseudoLabels(
    const std::vector<int>& hard_assignment, const std::vector<int>& labels,
    int num_clusters) {
  UV_CHECK_EQ(hard_assignment.size(), labels.size());
  std::vector<int> pseudo(num_clusters, 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      const int k = hard_assignment[i];
      UV_CHECK_GE(k, 0);
      UV_CHECK_LT(k, num_clusters);
      pseudo[k] = 1;
    }
  }
  return pseudo;
}

}  // namespace uv::nn
