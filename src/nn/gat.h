#ifndef UV_NN_GAT_H_
#define UV_NN_GAT_H_

#include <vector>

#include "nn/graph_context.h"
#include "nn/linear.h"

namespace uv::nn {

// One graph-attention head generalized to a (destination, source) feature
// pair, which is exactly the shape of the paper's MAGA attention
// (eq. 1-7): scores come from a^T [W_d x_i ⊕ W_s x_j] with LeakyReLU,
// softmax over each destination's in-edges, and the aggregated message is
// the transformed *source* features. With x_d == x_s and a shared W this is
// a vanilla GAT head.
class AttentionHead {
 public:
  // If `share_transform` is set, in_dst must equal in_src and a single W is
  // used for both sides (the paper's intra-modal case).
  AttentionHead(int in_dst, int in_src, int out_dim, bool share_transform,
                Rng* rng);

  // Returns the aggregated messages (N x out_dim), pre-activation.
  ag::VarPtr Forward(const ag::VarPtr& x_dst, const ag::VarPtr& x_src,
                     const GraphContext& ctx) const;

  // Grad-free forward, bit-identical to Forward's value. Pass the SAME
  // object for x_dst and x_src (by address) to reuse the shared projection
  // exactly as the autograd path does for same-variable inputs.
  Tensor ForwardRaw(const Tensor& x_dst, const Tensor& x_src,
                    const GraphContext& ctx) const;

  std::vector<ag::VarPtr> Params() const;

 private:
  bool shared_;
  ag::VarPtr w_dst_;
  ag::VarPtr w_src_;   // Same object as w_dst_ when shared_.
  ag::VarPtr a_dst_;   // (out_dim x 1) attention vector, destination half.
  ag::VarPtr a_src_;   // (out_dim x 1) attention vector, source half.
};

// Multi-head GAT layer (heads concatenated), used by the GAT baseline and
// by the CMSF-M ablation variant.
class GatLayer {
 public:
  GatLayer(int in_dim, int out_dim, int num_heads, Rng* rng);

  // Returns (N x out_dim); out_dim must be divisible by num_heads.
  ag::VarPtr Forward(const ag::VarPtr& x, const GraphContext& ctx) const;

  // Grad-free forward, bit-identical to Forward's value.
  Tensor ForwardRaw(const Tensor& x, const GraphContext& ctx) const;

  std::vector<ag::VarPtr> Params() const;

 private:
  std::vector<AttentionHead> heads_;
};

}  // namespace uv::nn

#endif  // UV_NN_GAT_H_
