#ifndef UV_NN_GSCM_H_
#define UV_NN_GSCM_H_

#include <vector>

#include "nn/maga.h"

namespace uv::nn {

// Global Semantic Clustering Module (paper Section V-A2, eq. 9-13):
// soft-assigns regions to K latent clusters, collects cluster
// representations through the *binarized* assignment (eq. 10), reasons over
// a complete learnable cluster graph (eq. 11), and shares global context
// back to regions through the *soft* assignment (eq. 12-13).
class Gscm {
 public:
  struct Options {
    int in_dim = 64;
    int num_clusters = 50;     // Paper K: 50 (SZ), 500 (FZ/BJ).
    float temperature = 0.1f;  // Softmax temperature tau (Section VI-A).
    AggKind agg = AggKind::kSum;  // Paper: sum (SZ/FZ) or concat (BJ).
  };

  Gscm(const Options& options, Rng* rng);

  struct Output {
    ag::VarPtr assignment;             // Soft B (N x K).
    std::vector<int> hard_assignment;  // argmax row of B (the binarized B~).
    ag::VarPtr cluster_repr;           // H' (K x in_dim).
    ag::VarPtr region_repr;            // x~' (N x out_width()).
  };

  // Master-stage forward: the assignment is computed from x and trainable.
  Output Forward(const ag::VarPtr& x) const;

  // Slave-stage forward: region->cluster membership is frozen to the values
  // learned in the master stage (paper: "the membership of regions formed
  // by assignment matrix B is fixed").
  Output ForwardFrozen(const ag::VarPtr& x, const Tensor& frozen_soft,
                       const std::vector<int>& frozen_hard) const;

  // Grad-free forwards, bit-identical to the Output values above.
  struct RawOutput {
    Tensor assignment;
    std::vector<int> hard_assignment;
    Tensor cluster_repr;
    Tensor region_repr;
  };
  RawOutput ForwardRaw(const Tensor& x) const;
  RawOutput ForwardFrozenRaw(const Tensor& x, const Tensor& frozen_soft,
                             const std::vector<int>& frozen_hard) const;

  // Raw parameter views for the inference engine's cached tail.
  const Tensor& reverse_transform() const { return w_r_->value; }
  const Tensor* agg_query_value() const {
    return agg_query_ ? &agg_query_->value : nullptr;
  }
  AggKind agg() const { return options_.agg; }

  int out_width() const {
    return options_.agg == AggKind::kConcat ? 2 * options_.in_dim
                                            : options_.in_dim;
  }
  int num_clusters() const { return options_.num_clusters; }

  std::vector<ag::VarPtr> Params() const;

 private:
  // Shared tail of both forwards, from (B, B~) to the output struct.
  Output Finish(const ag::VarPtr& x, ag::VarPtr assignment,
                std::vector<int> hard) const;
  RawOutput FinishRaw(const Tensor& x, Tensor assignment,
                      std::vector<int> hard) const;

  Options options_;
  ag::VarPtr w_b_;     // (in_dim x K) assignment transform (eq. 9).
  ag::VarPtr edge_w_;  // (K x K) learnable complete cluster graph (eq. 11).
  ag::VarPtr w_h_;     // (in_dim x in_dim) cluster transform (eq. 11).
  ag::VarPtr w_r_;     // (in_dim x in_dim) reverse-sharing transform (eq. 12).
  ag::VarPtr agg_query_;
};

// Cluster pseudo labels (eq. 16): cluster k is positive iff it contains at
// least one labeled UV. `labels` uses -1 unlabeled / 0 non-UV / 1 UV.
std::vector<int> ComputeClusterPseudoLabels(
    const std::vector<int>& hard_assignment, const std::vector<int>& labels,
    int num_clusters);

}  // namespace uv::nn

#endif  // UV_NN_GSCM_H_
