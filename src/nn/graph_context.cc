#include "nn/graph_context.h"

#include <cmath>

#include "util/check.h"

namespace uv::nn {

GraphContext GraphContext::FromCsr(const graph::CsrGraph& g) {
  GraphContext ctx;
  ctx.num_nodes = g.num_nodes();
  ctx.offsets = g.offsets();
  ctx.src_ids = g.neighbors();

  auto dst = std::make_shared<std::vector<int>>();
  dst->reserve(g.num_edges());
  const auto& off = *ctx.offsets;
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int e = off[i]; e < off[i + 1]; ++e) dst->push_back(i);
  }
  ctx.dst_ids = std::move(dst);

  Tensor norm(static_cast<int>(g.num_edges()), 1);
  const auto& src = *ctx.src_ids;
  const auto& dsts = *ctx.dst_ids;
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    const double d1 = std::max(1, g.Degree(dsts[e]));
    const double d2 = std::max(1, g.Degree(src[e]));
    norm.at(static_cast<int>(e), 0) =
        static_cast<float>(1.0 / std::sqrt(d1 * d2));
  }
  ctx.gcn_norm = ag::MakeConst(std::move(norm));
  return ctx;
}

}  // namespace uv::nn
