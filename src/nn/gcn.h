#ifndef UV_NN_GCN_H_
#define UV_NN_GCN_H_

#include <vector>

#include "nn/graph_context.h"
#include "nn/linear.h"

namespace uv::nn {

// Graph convolution layer (Kipf & Welling): out = D^-1/2 A D^-1/2 X W + b,
// computed over the destination-grouped edge structure with precomputed
// symmetric normalization (GraphContext::gcn_norm). The activation is left
// to the caller.
class GcnLayer {
 public:
  GcnLayer(int in_dim, int out_dim, Rng* rng) : lin_(in_dim, out_dim, rng) {}

  ag::VarPtr Forward(const ag::VarPtr& x, const GraphContext& ctx) const;

  // Grad-free forward, bit-identical to Forward's value.
  Tensor ForwardRaw(const Tensor& x, const GraphContext& ctx) const;

  std::vector<ag::VarPtr> Params() const { return lin_.Params(); }

 private:
  Linear lin_;
};

}  // namespace uv::nn

#endif  // UV_NN_GCN_H_
