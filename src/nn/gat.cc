#include "nn/gat.h"

#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::nn {

namespace {
constexpr float kAttentionSlope = 0.2f;  // LeakyReLU slope for scores.
}  // namespace

AttentionHead::AttentionHead(int in_dst, int in_src, int out_dim,
                             bool share_transform, Rng* rng)
    : shared_(share_transform) {
  if (shared_) UV_CHECK_EQ(in_dst, in_src);
  {
    Tensor w(in_dst, out_dim);
    w.GlorotUniform(rng);
    w_dst_ = ag::MakeParam(std::move(w));
  }
  if (shared_) {
    w_src_ = w_dst_;
  } else {
    Tensor w(in_src, out_dim);
    w.GlorotUniform(rng);
    w_src_ = ag::MakeParam(std::move(w));
  }
  Tensor ad(out_dim, 1), as(out_dim, 1);
  ad.GlorotUniform(rng);
  as.GlorotUniform(rng);
  a_dst_ = ag::MakeParam(std::move(ad));
  a_src_ = ag::MakeParam(std::move(as));
}

ag::VarPtr AttentionHead::Forward(const ag::VarPtr& x_dst,
                                  const ag::VarPtr& x_src,
                                  const GraphContext& ctx) const {
  // Per-node projected features and score halves.
  ag::VarPtr h_dst = ag::MatMul(x_dst, w_dst_);
  ag::VarPtr h_src = shared_ && x_dst.get() == x_src.get()
                         ? h_dst
                         : ag::MatMul(x_src, w_src_);
  ag::VarPtr s_dst = ag::MatMul(h_dst, a_dst_);  // (N x 1)
  ag::VarPtr s_src = ag::MatMul(h_src, a_src_);  // (N x 1)

  // Per-edge scores: leakyrelu(s_dst[dst(e)] + s_src[src(e)]).
  ag::VarPtr e_scores = ag::LeakyRelu(
      ag::Add(ag::GatherRows(s_dst, ctx.dst_ids),
              ag::GatherRows(s_src, ctx.src_ids)),
      kAttentionSlope);
  ag::VarPtr alpha = ag::SegmentSoftmax(e_scores, ctx.offsets);
  ag::VarPtr messages = ag::GatherRows(h_src, ctx.src_ids);
  return ag::SegmentWeightedSum(alpha, messages, ctx.offsets);
}

Tensor AttentionHead::ForwardRaw(const Tensor& x_dst, const Tensor& x_src,
                                 const GraphContext& ctx) const {
  // Mirrors Forward step for step through the shared raw kernels; the
  // h_src == h_dst reuse keys on object identity like the VarPtr path.
  Tensor h_dst = MatMul(x_dst, w_dst_->value);
  const bool reuse = shared_ && &x_dst == &x_src;
  Tensor h_src_own;
  if (!reuse) h_src_own = MatMul(x_src, w_src_->value);
  const Tensor& h_src = reuse ? h_dst : h_src_own;
  const Tensor s_dst = MatMul(h_dst, a_dst_->value);  // (N x 1)
  const Tensor s_src = MatMul(h_src, a_src_->value);  // (N x 1)

  const std::vector<int>& dst_ids = *ctx.dst_ids;
  const std::vector<int>& src_ids = *ctx.src_ids;
  Tensor e_scores = Tensor::Uninit(static_cast<int>(dst_ids.size()), 1);
  const float* sd = s_dst.data();
  const float* ss = s_src.data();
  float* e = e_scores.data();
  for (size_t i = 0; i < dst_ids.size(); ++i) {
    e[i] = LeakyReluScalar(sd[dst_ids[i]] + ss[src_ids[i]], kAttentionSlope);
  }
  Tensor alpha;
  SegmentSoftmaxInto(e_scores, *ctx.offsets, &alpha);
  const Tensor messages = GatherRows(h_src, src_ids);
  Tensor out;
  SegmentWeightedSumInto(alpha, messages, *ctx.offsets, &out);
  return out;
}

std::vector<ag::VarPtr> AttentionHead::Params() const {
  std::vector<ag::VarPtr> params = {w_dst_};
  if (!shared_) params.push_back(w_src_);
  params.push_back(a_dst_);
  params.push_back(a_src_);
  return params;
}

GatLayer::GatLayer(int in_dim, int out_dim, int num_heads, Rng* rng) {
  UV_CHECK_GT(num_heads, 0);
  UV_CHECK_EQ(out_dim % num_heads, 0);
  const int head_dim = out_dim / num_heads;
  heads_.reserve(num_heads);
  for (int h = 0; h < num_heads; ++h) {
    heads_.emplace_back(in_dim, in_dim, head_dim, /*share_transform=*/true,
                        rng);
  }
}

ag::VarPtr GatLayer::Forward(const ag::VarPtr& x,
                             const GraphContext& ctx) const {
  ag::VarPtr out;
  for (const auto& head : heads_) {
    ag::VarPtr h = head.Forward(x, x, ctx);
    out = out ? ag::ConcatCols(out, h) : h;
  }
  return out;
}

Tensor GatLayer::ForwardRaw(const Tensor& x, const GraphContext& ctx) const {
  Tensor out;
  bool first = true;
  for (const auto& head : heads_) {
    Tensor h = head.ForwardRaw(x, x, ctx);
    out = first ? std::move(h) : ConcatCols(out, h);
    first = false;
  }
  return out;
}

std::vector<ag::VarPtr> GatLayer::Params() const {
  std::vector<ag::VarPtr> params;
  for (const auto& head : heads_) {
    auto p = head.Params();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace uv::nn
