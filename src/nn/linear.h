#ifndef UV_NN_LINEAR_H_
#define UV_NN_LINEAR_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace uv::nn {

// Affine layer y = xW + b with Glorot-initialized weights.
class Linear {
 public:
  Linear(int in_dim, int out_dim, Rng* rng);

  ag::VarPtr Forward(const ag::VarPtr& x) const;

  // Dense + activation in one fused kernel pass (ag::DenseBiasAct); call
  // sites that used to wrap Forward in ag::Relu/ag::Sigmoid route here.
  ag::VarPtr Forward(const ag::VarPtr& x, kern::Activation act,
                     float leaky_slope = 0.0f) const;

  // Grad-free forward on raw tensors, bit-identical to Forward's value
  // (both run the same fused GemmBiasAct kernel).
  Tensor ForwardRaw(const Tensor& x,
                    kern::Activation act = kern::Activation::kNone,
                    float leaky_slope = 0.0f) const;

  std::vector<ag::VarPtr> Params() const { return {w_, b_}; }
  const ag::VarPtr& w() const { return w_; }
  const ag::VarPtr& b() const { return b_; }

 private:
  ag::VarPtr w_;
  ag::VarPtr b_;
};

// Two-layer perceptron with ReLU, the paper's classifier shape
// ("a 2-layer Multi-Layer Perceptron").
class Mlp {
 public:
  Mlp(int in_dim, int hidden_dim, int out_dim, Rng* rng);

  ag::VarPtr Forward(const ag::VarPtr& x) const;
  Tensor ForwardRaw(const Tensor& x) const;

  std::vector<ag::VarPtr> Params() const;
  const Linear& layer1() const { return l1_; }
  const Linear& layer2() const { return l2_; }

 private:
  Linear l1_;
  Linear l2_;
};

}  // namespace uv::nn

#endif  // UV_NN_LINEAR_H_
