#ifndef UV_NN_MAGA_H_
#define UV_NN_MAGA_H_

#include <vector>

#include "nn/gat.h"
#include "nn/graph_context.h"

namespace uv::nn {

// How two representation vectors are fused (paper eq. 8's AGG; Section VI-A
// instantiates it with the attention mechanism; GSCM uses sum or concat).
enum class AggKind { kSum, kConcat, kAttention };

// Fuses u and v (same shape) according to `agg`; for kAttention the 2-way
// softmax weights come from scoring both against the learnable query q
// (pass the same q for consistent weighting). Free function so GSCM and
// MAGA share it.
ag::VarPtr AggregatePair(AggKind agg, const ag::VarPtr& u, const ag::VarPtr& v,
                         const ag::VarPtr& attention_query);

// Grad-free AggregatePair, bit-identical to AggregatePair's value. The
// query may be null for kSum/kConcat. Purely row-wise: row r of the result
// depends only on row r of u and v, so the inference engine can evaluate
// it on any row subset.
Tensor AggregatePairRaw(AggKind agg, const Tensor& u, const Tensor& v,
                        const Tensor* attention_query);

// Mutual-Attentive Graph Aggregation layer (paper Section V-A1, eq. 1-8).
// For each modality the layer aggregates neighbourhood features of the same
// modality (intra) and of the other modality (inter), each with its own
// attention parameters, then fuses both contexts with AGG.
class MagaLayer {
 public:
  // out_dim is the per-modality output width and must be divisible by
  // num_heads. With AggKind::kConcat the actual output width is 2*out_dim
  // (see out_width()).
  MagaLayer(int in_p, int in_i, int out_dim, int num_heads, AggKind agg,
            Rng* rng);

  struct Output {
    ag::VarPtr p;  // Updated POI-modality representation.
    ag::VarPtr i;  // Updated image-modality representation.
  };

  Output Forward(const ag::VarPtr& x_p, const ag::VarPtr& x_i,
                 const GraphContext& ctx) const;

  struct RawOutput {
    Tensor p;
    Tensor i;
  };
  // Grad-free forward, bit-identical to Forward's values.
  RawOutput ForwardRaw(const Tensor& x_p, const Tensor& x_i,
                       const GraphContext& ctx) const;

  // Output width per modality after AGG.
  int out_width() const;

  std::vector<ag::VarPtr> Params() const;

 private:
  AggKind agg_;
  int out_dim_;
  std::vector<AttentionHead> intra_p_;   // P <- P, shared W_P.
  std::vector<AttentionHead> intra_i_;   // I <- I, shared W_I.
  std::vector<AttentionHead> inter_pi_;  // P <- I, W'_P / W'_I.
  std::vector<AttentionHead> inter_ip_;  // I <- P.
  ag::VarPtr agg_query_p_;  // Attention-AGG queries (kAttention only).
  ag::VarPtr agg_query_i_;
};

}  // namespace uv::nn

#endif  // UV_NN_MAGA_H_
