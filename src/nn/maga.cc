#include "nn/maga.h"

#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::nn {

ag::VarPtr AggregatePair(AggKind agg, const ag::VarPtr& u, const ag::VarPtr& v,
                         const ag::VarPtr& attention_query) {
  switch (agg) {
    case AggKind::kSum:
      return ag::Add(u, v);
    case AggKind::kConcat:
      return ag::ConcatCols(u, v);
    case AggKind::kAttention: {
      UV_CHECK(attention_query != nullptr);
      // Two-way softmax over per-row scores against the shared query.
      ag::VarPtr e_u = ag::LeakyRelu(ag::MatMul(u, attention_query), 0.2f);
      ag::VarPtr e_v = ag::LeakyRelu(ag::MatMul(v, attention_query), 0.2f);
      ag::VarPtr weights = ag::RowSoftmax(ag::ConcatCols(e_u, e_v), 1.0f);
      ag::VarPtr w_u = ag::SliceCols(weights, 0, 1);
      ag::VarPtr w_v = ag::SliceCols(weights, 1, 2);
      return ag::Add(ag::MulColBroadcast(u, w_u), ag::MulColBroadcast(v, w_v));
    }
  }
  UV_CHECK(false);
  return u;
}

Tensor AggregatePairRaw(AggKind agg, const Tensor& u, const Tensor& v,
                        const Tensor* attention_query) {
  switch (agg) {
    case AggKind::kSum:
      return Add(u, v);
    case AggKind::kConcat:
      return ConcatCols(u, v);
    case AggKind::kAttention: {
      UV_CHECK(attention_query != nullptr);
      Tensor e_u = MatMul(u, *attention_query);
      LeakyReluInPlace(0.2f, &e_u);
      Tensor e_v = MatMul(v, *attention_query);
      LeakyReluInPlace(0.2f, &e_v);
      const Tensor weights = RowSoftmax(ConcatCols(e_u, e_v), 1.0f);
      Tensor a = u;
      MulColBroadcastInPlace(SliceCols(weights, 0, 1), &a);
      Tensor b = v;
      MulColBroadcastInPlace(SliceCols(weights, 1, 2), &b);
      return Add(a, b);
    }
  }
  UV_CHECK(false);
  return u;
}

MagaLayer::MagaLayer(int in_p, int in_i, int out_dim, int num_heads,
                     AggKind agg, Rng* rng)
    : agg_(agg), out_dim_(out_dim) {
  UV_CHECK_GT(num_heads, 0);
  UV_CHECK_EQ(out_dim % num_heads, 0);
  const int head_dim = out_dim / num_heads;
  for (int h = 0; h < num_heads; ++h) {
    intra_p_.emplace_back(in_p, in_p, head_dim, /*share_transform=*/true, rng);
    intra_i_.emplace_back(in_i, in_i, head_dim, /*share_transform=*/true, rng);
    inter_pi_.emplace_back(in_p, in_i, head_dim, /*share_transform=*/false,
                           rng);
    inter_ip_.emplace_back(in_i, in_p, head_dim, /*share_transform=*/false,
                           rng);
  }
  if (agg_ == AggKind::kAttention) {
    Tensor qp(out_dim, 1), qi(out_dim, 1);
    qp.GlorotUniform(rng);
    qi.GlorotUniform(rng);
    agg_query_p_ = ag::MakeParam(std::move(qp));
    agg_query_i_ = ag::MakeParam(std::move(qi));
  }
}

int MagaLayer::out_width() const {
  return agg_ == AggKind::kConcat ? 2 * out_dim_ : out_dim_;
}

namespace {

// Runs a bank of heads and concatenates their outputs.
ag::VarPtr RunHeads(const std::vector<AttentionHead>& heads,
                    const ag::VarPtr& x_dst, const ag::VarPtr& x_src,
                    const GraphContext& ctx) {
  ag::VarPtr out;
  for (const auto& head : heads) {
    ag::VarPtr h = head.Forward(x_dst, x_src, ctx);
    out = out ? ag::ConcatCols(out, h) : h;
  }
  return out;
}

// Grad-free RunHeads: same concat-left-to-right shape.
Tensor RunHeadsRaw(const std::vector<AttentionHead>& heads,
                   const Tensor& x_dst, const Tensor& x_src,
                   const GraphContext& ctx) {
  Tensor out;
  bool first = true;
  for (const auto& head : heads) {
    Tensor h = head.ForwardRaw(x_dst, x_src, ctx);
    out = first ? std::move(h) : ConcatCols(out, h);
    first = false;
  }
  return out;
}

}  // namespace

MagaLayer::Output MagaLayer::Forward(const ag::VarPtr& x_p,
                                     const ag::VarPtr& x_i,
                                     const GraphContext& ctx) const {
  // Intra-modal contexts (eq. 2, 4) and inter-modal contexts (eq. 6), with
  // the paper's sigma instantiated as ReLU.
  ag::VarPtr p_from_p = ag::Relu(RunHeads(intra_p_, x_p, x_p, ctx));
  ag::VarPtr i_from_i = ag::Relu(RunHeads(intra_i_, x_i, x_i, ctx));
  ag::VarPtr p_from_i = ag::Relu(RunHeads(inter_pi_, x_p, x_i, ctx));
  ag::VarPtr i_from_p = ag::Relu(RunHeads(inter_ip_, x_i, x_p, ctx));

  Output out;
  out.p = AggregatePair(agg_, p_from_p, p_from_i, agg_query_p_);
  out.i = AggregatePair(agg_, i_from_i, i_from_p, agg_query_i_);
  return out;
}

MagaLayer::RawOutput MagaLayer::ForwardRaw(const Tensor& x_p,
                                           const Tensor& x_i,
                                           const GraphContext& ctx) const {
  Tensor p_from_p = RunHeadsRaw(intra_p_, x_p, x_p, ctx);
  ReluInPlace(&p_from_p);
  Tensor i_from_i = RunHeadsRaw(intra_i_, x_i, x_i, ctx);
  ReluInPlace(&i_from_i);
  Tensor p_from_i = RunHeadsRaw(inter_pi_, x_p, x_i, ctx);
  ReluInPlace(&p_from_i);
  Tensor i_from_p = RunHeadsRaw(inter_ip_, x_i, x_p, ctx);
  ReluInPlace(&i_from_p);

  RawOutput out;
  out.p = AggregatePairRaw(agg_, p_from_p, p_from_i,
                           agg_query_p_ ? &agg_query_p_->value : nullptr);
  out.i = AggregatePairRaw(agg_, i_from_i, i_from_p,
                           agg_query_i_ ? &agg_query_i_->value : nullptr);
  return out;
}

std::vector<ag::VarPtr> MagaLayer::Params() const {
  std::vector<ag::VarPtr> params;
  auto absorb = [&params](const std::vector<AttentionHead>& heads) {
    for (const auto& head : heads) {
      auto p = head.Params();
      params.insert(params.end(), p.begin(), p.end());
    }
  };
  absorb(intra_p_);
  absorb(intra_i_);
  absorb(inter_pi_);
  absorb(inter_ip_);
  if (agg_ == AggKind::kAttention) {
    params.push_back(agg_query_p_);
    params.push_back(agg_query_i_);
  }
  return params;
}

}  // namespace uv::nn
