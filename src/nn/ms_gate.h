#ifndef UV_NN_MS_GATE_H_
#define UV_NN_MS_GATE_H_

#include <vector>

#include "autograd/gated_mlp.h"
#include "nn/linear.h"

namespace uv::nn {

// Contextual master-slave gating mechanism (paper Section V-B, eq. 17-22):
// estimates each cluster's UV-inclusion probability with a logistic
// pseudo-label predictor, forms the region context vector from the soft
// assignment and the inclusion probabilities, and derives a region-specific
// parameter filter that gates the master classifier into a slave model.
class MsGate {
 public:
  struct Options {
    int num_clusters = 50;
    int cluster_repr_dim = 64;  // Width of GSCM cluster representations.
    int context_dim = 16;       // Width of the region context vector q_i.
    int classifier_in = 64;     // Master classifier input width.
    int classifier_hidden = 32; // Master classifier hidden width.
  };

  MsGate(const Options& options, Rng* rng);

  // Inclusion probabilities: sigmoid LR over cluster representations
  // (eq. 17); result is (K x 1) in (0, 1).
  ag::VarPtr EstimateInclusion(const ag::VarPtr& cluster_repr) const;

  // Derives slave models and returns per-region logits (eq. 19-22).
  // `region_repr` (N x classifier_in), `assignment` soft B (N x K),
  // `inclusion` (K x 1), `master` the 2-layer master classifier whose
  // parameters are gated.
  ag::VarPtr Forward(const ag::VarPtr& region_repr,
                     const ag::VarPtr& assignment, const ag::VarPtr& inclusion,
                     const Mlp& master) const;

  // Region context vectors q_i (N x context_dim), exposed for tests.
  ag::VarPtr ContextVector(const ag::VarPtr& assignment,
                           const ag::VarPtr& inclusion) const;

  // Grad-free forwards, bit-identical to the VarPtr values above. All three
  // are row-wise in the region dimension (the inclusion column is global
  // state), so the inference engine can evaluate them on any row subset.
  Tensor EstimateInclusionRaw(const Tensor& cluster_repr) const;
  Tensor ContextVectorRaw(const Tensor& assignment,
                          const Tensor& inclusion) const;
  Tensor ForwardRaw(const Tensor& region_repr, const Tensor& assignment,
                    const Tensor& inclusion, const Mlp& master) const;

  // Raw parameter views for the inference engine's cached tail.
  const Tensor& context_transform() const { return w_q_->value; }
  const Tensor& filter_weight() const { return w_f_->value; }
  const Tensor& filter_bias() const { return b_f_->value; }

  std::vector<ag::VarPtr> Params() const;

 private:
  Options options_;
  Linear pseudo_predictor_;  // LR over cluster representations.
  ag::VarPtr w_q_;           // (K x context_dim), eq. 19.
  ag::VarPtr w_f_;           // (context_dim x P), eq. 20.
  // Bias of the filter map. Initialized positive so the initial filter is
  // close to 1 and the slave model starts as (approximately) the pre-trained
  // master, which the short slave stage then specializes per region.
  ag::VarPtr b_f_;
};

}  // namespace uv::nn

#endif  // UV_NN_MS_GATE_H_
