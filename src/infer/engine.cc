#include "infer/engine.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "nn/graph_context.h"
#include "nn/gscm.h"
#include "nn/maga.h"
#include "tensor/forward_ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace uv::infer {

std::vector<float> Engine::Score(const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  ScoreInto(ids.data(), static_cast<int>(ids.size()), out.data());
  return out;
}

namespace {

// The final probability uses the plain one-branch sigmoid because that is
// what PredictCmsf and baselines::SigmoidRows apply to logits — NOT the
// two-branch SigmoidScalar (which matches ag::Sigmoid's interior uses, e.g.
// the gate's context vector). The two forms can differ in the last bits for
// large |z|, and bit-identity with the autograd Score path is the contract.
inline float PlainSigmoid(float z) { return 1.0f / (1.0f + std::exp(-z)); }

// Copies the selected rows of `src` into `dst` (resized to n x src.cols()).
// ResizeUninit reuses the workspace slab at steady state.
void GatherRowsInto(const Tensor& src, const int* ids, int n, Tensor* dst) {
  const int d = src.cols();
  dst->ResizeUninit(n, d);
  for (int r = 0; r < n; ++r) {
    std::memcpy(dst->row(r), src.row(ids[r]),
                sizeof(float) * static_cast<size_t>(d));
  }
}

// Prepared CMSF serving state. Construction runs the full grad-free forward
// once; ScoreInto replays only the row-wise tail:
//   master: global context share (eq. 12-13), AGG, classifier MLP;
//   slave:  + context vector (eq. 19), filter (eq. 20), gated MLP (eq. 21).
class CmsfEngine final : public Engine {
 public:
  CmsfEngine(const core::CmsfModel& model,
             const core::CmsfModel::FrozenAssignment* frozen,
             const urg::UrbanRegionGraph& urg) {
    const core::CmsfConfig& cfg = model.config();
    use_hierarchy_ = cfg.use_hierarchy;
    // Mirrors PredictCmsf: the slave path needs the hierarchy, the gate,
    // and a frozen stage-one assignment.
    use_slave_ = cfg.use_hierarchy && cfg.use_gate && frozen != nullptr;

    const nn::GraphContext ctx = nn::GraphContext::FromCsr(urg.adjacency);
    trunk_ = model.TrunkRaw(urg.poi_features, urg.image_features, ctx);
    num_regions_ = trunk_.rows();

    if (use_hierarchy_) {
      const nn::Gscm* gscm = model.gscm();
      UV_CHECK(gscm != nullptr);
      nn::Gscm::RawOutput g =
          use_slave_ ? gscm->ForwardFrozenRaw(trunk_, frozen->soft,
                                              frozen->hard)
                     : gscm->ForwardRaw(trunk_);
      assign_ = std::move(g.assignment);
      // The reverse share x' = relu(B H' W_r) factors as B * (H' W_r); the
      // inner product is request-invariant, so cache it (K x in_dim).
      inner_ = MatMul(g.cluster_repr, gscm->reverse_transform());
      agg_ = gscm->agg();
      if (const Tensor* q = gscm->agg_query_value()) {
        agg_query_ = *q;
        has_agg_query_ = true;
      }
      if (use_slave_) {
        const nn::MsGate& gate = model.gate();
        const Tensor inclusion = gate.EstimateInclusionRaw(g.cluster_repr);
        inclusion_row_ = Transpose(inclusion);  // 1 x K for MulRowVector.
        w_q_ = gate.context_transform();
        w_f_ = gate.filter_weight();
        b_f_ = gate.filter_bias();
      }
    }

    const nn::Mlp& classifier = model.classifier();
    w1_ = classifier.layer1().w()->value;
    b1_ = classifier.layer1().b()->value;
    w2_ = classifier.layer2().w()->value;
    b2_ = classifier.layer2().b()->value;
  }

  int num_regions() const override { return num_regions_; }

  void ScoreInto(const int* ids, int n, float* out) override {
    if (n <= 0) return;
    for (int r = 0; r < n; ++r) {
      UV_CHECK_GE(ids[r], 0);
      UV_CHECK_LT(ids[r], num_regions_);
    }
    GatherRowsInto(trunk_, ids, n, &x_);

    const Tensor* region = &x_;
    if (use_hierarchy_) {
      // Global context share: relu(B_rows * inner), then AGG with x^.
      GatherRowsInto(assign_, ids, n, &b_);
      global_.ResizeUninit(n, inner_.cols());
      Gemm(false, false, 1.0f, b_, inner_, 0.0f, &global_);
      ReluInPlace(&global_);
      region_ = nn::AggregatePairRaw(agg_, x_, global_,
                                     has_agg_query_ ? &agg_query_ : nullptr);
      region = &region_;
    }

    if (use_slave_) {
      // Context vector q = sigmoid((B ⊙ s^T) W_q), filter, gated MLP.
      weighted_ = b_;
      MulRowVectorInPlace(inclusion_row_, &weighted_);
      context_.ResizeUninit(n, w_q_.cols());
      Gemm(false, false, 1.0f, weighted_, w_q_, 0.0f, &context_);
      SigmoidInPlace(&context_);
      filter_.ResizeUninit(n, w_f_.cols());
      GemmBiasAct(false, false, 1.0f, context_, w_f_, 0.0f, &filter_, &b_f_,
                  kern::Activation::kSigmoid);
      GatedMlpForward(*region, filter_, w1_, b1_, w2_, b2_, &logits_,
                      &hidden_);
    } else {
      hidden_.ResizeUninit(n, w1_.cols());
      GemmBiasAct(false, false, 1.0f, *region, w1_, 0.0f, &hidden_, &b1_,
                  kern::Activation::kRelu);
      logits_.ResizeUninit(n, 1);
      GemmBiasAct(false, false, 1.0f, hidden_, w2_, 0.0f, &logits_, &b2_,
                  kern::Activation::kNone);
    }

    const float* z = logits_.data();
    for (int r = 0; r < n; ++r) out[r] = PlainSigmoid(z[r]);
    // x_ still holds the gathered trunk rows — the representation the
    // checkpoint baseline sketched — so drift monitoring sees exactly the
    // features this batch was scored from.
    ObserveQuality(x_.data(), n, x_.cols(), out);
  }

 private:
  bool use_hierarchy_ = false;
  bool use_slave_ = false;
  int num_regions_ = 0;

  // Request-invariant state cached at construction.
  Tensor trunk_;          // N x gscm_in (fused x^).
  Tensor assign_;         // N x K soft assignment B.
  Tensor inner_;          // K x in_dim (H' W_r).
  Tensor inclusion_row_;  // 1 x K (s^T), slave only.
  Tensor agg_query_;      // AGG attention query copy (kAttention only).
  bool has_agg_query_ = false;
  nn::AggKind agg_ = nn::AggKind::kSum;
  Tensor w_q_, w_f_, b_f_;      // Gate parameters (slave only).
  Tensor w1_, b1_, w2_, b2_;    // Master classifier parameters.

  // Per-request workspaces; slabs are reused across calls.
  Tensor x_, b_, global_, region_;
  Tensor weighted_, context_, filter_;
  Tensor hidden_, logits_;
};

// Two-dense-layer tail over precomputed trunk features (GCN/GAT baselines).
class DenseTailEngine final : public Engine {
 public:
  DenseTailEngine(Tensor features, Tensor w1, Tensor b1,
                  kern::Activation act1, Tensor w2, Tensor b2)
      : features_(std::move(features)),
        w1_(std::move(w1)),
        b1_(std::move(b1)),
        act1_(act1),
        w2_(std::move(w2)),
        b2_(std::move(b2)) {
    UV_CHECK_EQ(features_.cols(), w1_.rows());
    UV_CHECK_EQ(w1_.cols(), w2_.rows());
  }

  int num_regions() const override { return features_.rows(); }

  void ScoreInto(const int* ids, int n, float* out) override {
    if (n <= 0) return;
    for (int r = 0; r < n; ++r) {
      UV_CHECK_GE(ids[r], 0);
      UV_CHECK_LT(ids[r], features_.rows());
    }
    GatherRowsInto(features_, ids, n, &x_);
    hidden_.ResizeUninit(n, w1_.cols());
    GemmBiasAct(false, false, 1.0f, x_, w1_, 0.0f, &hidden_, &b1_, act1_);
    logits_.ResizeUninit(n, w2_.cols());
    GemmBiasAct(false, false, 1.0f, hidden_, w2_, 0.0f, &logits_, &b2_,
                kern::Activation::kNone);
    const float* z = logits_.data();
    for (int r = 0; r < n; ++r) out[r] = PlainSigmoid(z[r]);
    ObserveQuality(x_.data(), n, x_.cols(), out);
  }

 private:
  Tensor features_, w1_, b1_;
  kern::Activation act1_;
  Tensor w2_, b2_;
  Tensor x_, hidden_, logits_;
};

}  // namespace

std::unique_ptr<Engine> MakeCmsfEngine(
    const core::CmsfModel& model,
    const core::CmsfModel::FrozenAssignment* frozen,
    const urg::UrbanRegionGraph& urg) {
  return std::make_unique<CmsfEngine>(model, frozen, urg);
}

std::unique_ptr<Engine> MakeDenseTailEngine(Tensor features, Tensor w1,
                                            Tensor b1, kern::Activation act1,
                                            Tensor w2, Tensor b2) {
  return std::make_unique<DenseTailEngine>(
      std::move(features), std::move(w1), std::move(b1), act1, std::move(w2),
      std::move(b2));
}

}  // namespace uv::infer
