#ifndef UV_INFER_ENGINE_H_
#define UV_INFER_ENGINE_H_

// Grad-free batched inference engines. An Engine is built once from a
// trained model ("Prepare"): it runs a single raw-tensor forward pass over
// the full URG — no autograd Variables, no graph nodes — and caches every
// globally-coupled intermediate (trunk representations, cluster state).
// Each scoring request then evaluates only the per-row tail for the
// requested region ids over reusable pooled workspaces, so steady-state
// scoring performs ~0 heap allocations per request (gated by
// bench_serve_alloc).
//
// Scores are bit-identical to the autograd Score path of the full-graph
// detector: both evaluate the same shared forward kernels
// (tensor/forward_ops.h), and every per-request operation is row-wise, so
// results do not depend on how requests are batched.

#include <memory>
#include <vector>

#include "core/cmsf_model.h"
#include "obs/quality.h"
#include "tensor/tensor.h"
#include "urg/urban_region_graph.h"

namespace uv::infer {

class Engine {
 public:
  virtual ~Engine() = default;

  virtual int num_regions() const = 0;

  // Scores region ids[0..n) into out[0..n). NOT thread-safe: the engine
  // owns reusable workspaces, so concurrent callers must serialize (the
  // ScoringServer's dispatcher thread is the intended single caller).
  virtual void ScoreInto(const int* ids, int n, float* out) = 0;

  // Convenience wrapper (allocates the result vector).
  std::vector<float> Score(const std::vector<int>& ids);

  // Attaches a quality monitor: every subsequent ScoreInto feeds the
  // batch's encoded region features (the gathered trunk rows — exactly
  // what the baseline in the checkpoint sketched) and scores into it.
  // nullptr detaches. The monitor must outlive the engine or be detached
  // first; observation is wait-free and allocation-free, so the serving
  // alloc gate holds with a monitor attached.
  void SetQualityMonitor(obs::QualityMonitor* monitor) { monitor_ = monitor; }
  obs::QualityMonitor* quality_monitor() const { return monitor_; }

 protected:
  // Called by implementations at the end of ScoreInto with the batch's
  // feature workspace (n x d row-major) and final scores.
  void ObserveQuality(const float* features, int n, int d,
                      const float* scores) {
    if (monitor_ != nullptr) monitor_->ObserveBatch(features, n, d, scores);
  }

 private:
  obs::QualityMonitor* monitor_ = nullptr;
};

// Engine for a trained CmsfModel over the given URG (full-graph
// semantics, matching a detector trained with batch_size == 0). Pass the
// frozen stage-one assignment to serve the slave path (the config must
// also enable hierarchy + gate, mirroring PredictCmsf); pass null to serve
// the master path. The model and URG are only read during construction.
std::unique_ptr<Engine> MakeCmsfEngine(
    const core::CmsfModel& model,
    const core::CmsfModel::FrozenAssignment* frozen,
    const urg::UrbanRegionGraph& urg);

// Generic engine for baselines whose per-region tail is two dense layers
// over precomputed trunk features: hidden = act1(rows * w1 + b1),
// logits = hidden * w2 + b2, probability = sigmoid(logits).
std::unique_ptr<Engine> MakeDenseTailEngine(Tensor features, Tensor w1,
                                            Tensor b1, kern::Activation act1,
                                            Tensor w2, Tensor b2);

}  // namespace uv::infer

#endif  // UV_INFER_ENGINE_H_
