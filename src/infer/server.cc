#include "infer/server.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/check.h"

namespace uv::infer {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions o;
  o.max_batch = EnvInt("UV_SERVE_BATCH", o.max_batch);
  o.deadline_us = EnvInt("UV_SERVE_DEADLINE_US", o.deadline_us);
  return o;
}

ScoringServer::ScoringServer(Engine* engine, const ServerOptions& options)
    : engine_(engine), options_(options) {
  UV_CHECK(engine_ != nullptr);
  UV_CHECK_GT(options_.max_batch, 0);
  UV_CHECK_GE(options_.deadline_us, 0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ScoringServer::~ScoringServer() { Shutdown(); }

void ScoringServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ScoringServer::Score(const int* ids, int n, float* out) {
  if (n <= 0) return;
  Request req;
  req.ids = ids;
  req.n = n;
  req.out = out;
  req.enqueue_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(mu_);
    UV_CHECK(!stop_);
    if (tail_ != nullptr) {
      tail_->next = &req;
    } else {
      head_ = &req;
    }
    tail_ = &req;
    pending_ids_ += n;
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&req] { return req.done; });
}

std::vector<float> ScoringServer::Score(const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  Score(ids.data(), static_cast<int>(ids.size()), out.data());
  return out;
}

void ScoringServer::DispatchLoop() {
  obs::Registry& reg = obs::Registry::Global();
  obs::Histogram& queue_wait_us = reg.GetHistogram("serve.queue_wait_us");
  obs::Histogram& batch_size = reg.GetHistogram("serve.batch_size");
  obs::Histogram& latency_us = reg.GetHistogram("serve.latency_us");

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || head_ != nullptr; });
    if (head_ == nullptr) return;  // stop_ with a drained queue.

    // Micro-batch accumulation: hold the flush until the batch is full or
    // the oldest request's deadline expires. head_ is stable here — only
    // the dispatcher pops.
    while (!stop_ && pending_ids_ < options_.max_batch) {
      const uint64_t age = NowMicros() - head_->enqueue_us;
      if (age >= static_cast<uint64_t>(options_.deadline_us)) break;
      work_cv_.wait_for(
          lock, std::chrono::microseconds(options_.deadline_us - age));
    }

    // Detach whole requests up to max_batch ids (always at least one, so
    // an oversized single request still gets served).
    batch_reqs_.clear();
    int total = 0;
    while (head_ != nullptr &&
           (batch_reqs_.empty() || total + head_->n <= options_.max_batch)) {
      batch_reqs_.push_back(head_);
      total += head_->n;
      pending_ids_ -= head_->n;
      head_ = head_->next;
    }
    if (head_ == nullptr) tail_ = nullptr;
    lock.unlock();

    const uint64_t start_us = NowMicros();
    batch_ids_.clear();
    for (const Request* r : batch_reqs_) {
      batch_ids_.insert(batch_ids_.end(), r->ids, r->ids + r->n);
    }
    if (static_cast<int>(batch_out_.size()) < total) batch_out_.resize(total);
    engine_->ScoreInto(batch_ids_.data(), total, batch_out_.data());
    const uint64_t end_us = NowMicros();

    batch_size.Record(static_cast<uint64_t>(total));
    int offset = 0;
    for (const Request* r : batch_reqs_) {
      std::memcpy(r->out, batch_out_.data() + offset,
                  sizeof(float) * static_cast<size_t>(r->n));
      offset += r->n;
      queue_wait_us.Record(start_us - r->enqueue_us);
      latency_us.Record(end_us - r->enqueue_us);
    }

    lock.lock();
    for (Request* r : batch_reqs_) r->done = true;
    done_cv_.notify_all();
  }
}

}  // namespace uv::infer
