#include "infer/server.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/metrics_log.h"
#include "obs/trace.h"
#include "util/check.h"

namespace uv::infer {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

double EnvRate(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const double parsed = std::strtod(v, nullptr);
  if (!(parsed >= 0.0)) return fallback;  // NaN/negatives keep the default.
  return parsed > 1.0 ? 1.0 : parsed;
}

// Dispatcher-state gauge values (serve.dispatcher_state).
constexpr int64_t kIdle = 0;
constexpr int64_t kBatching = 1;
constexpr int64_t kScoring = 2;

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions o;
  o.max_batch = EnvInt("UV_SERVE_BATCH", o.max_batch);
  o.deadline_us = EnvInt("UV_SERVE_DEADLINE_US", o.deadline_us);
  o.slo_window_s = EnvInt("UV_SLO_WINDOW_S", o.slo_window_s);
  o.event_capacity = EnvInt("UV_SERVE_EVENTS", o.event_capacity);
  o.shadow_sample = EnvRate("UV_SHADOW_SAMPLE", o.shadow_sample);
  return o;
}

ScoringServer::ScoringServer(Engine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : obs::DefaultClock()),
      shadow_(options.shadow),
      shadow_threshold_(obs::SampleThreshold(options.shadow_sample)),
      requests_total_(obs::Registry::Global().GetCounter("serve.requests")),
      regions_total_(obs::Registry::Global().GetCounter("serve.regions")),
      queue_depth_(obs::Registry::Global().GetGauge("serve.queue_depth")),
      inflight_(obs::Registry::Global().GetGauge("serve.inflight")),
      dispatcher_state_(
          obs::Registry::Global().GetGauge("serve.dispatcher_state")),
      queue_wait_us_(
          obs::Registry::Global().GetHistogram("serve.queue_wait_us")),
      batch_size_(obs::Registry::Global().GetHistogram("serve.batch_size")),
      latency_us_(obs::Registry::Global().GetHistogram("serve.latency_us")),
      shadow_requests_total_(
          obs::Registry::Global().GetCounter("shadow.requests")),
      shadow_regions_total_(
          obs::Registry::Global().GetCounter("shadow.regions")),
      shadow_disagree_total_(
          obs::Registry::Global().GetCounter("shadow.disagreements")),
      shadow_delta_e6_(
          obs::Registry::Global().GetHistogram("shadow.score_delta_e6")),
      queue_wait_window_reg_(obs::Registry::Global().GetWindowed(
          "serve.queue_wait_us",
          static_cast<uint64_t>(options.slo_window_s) * 1000 * 1000)),
      latency_window_reg_(obs::Registry::Global().GetWindowed(
          "serve.latency_us",
          static_cast<uint64_t>(options.slo_window_s) * 1000 * 1000)),
      queue_wait_window_(
          static_cast<uint64_t>(options.slo_window_s) * 1000 * 1000, clock_),
      latency_window_(
          static_cast<uint64_t>(options.slo_window_s) * 1000 * 1000, clock_) {
  UV_CHECK(engine_ != nullptr);
  if (shadow_ != nullptr) {
    UV_CHECK_EQ(shadow_->num_regions(), engine_->num_regions());
  }
  UV_CHECK_GT(options_.max_batch, 0);
  UV_CHECK_GE(options_.deadline_us, 0);
  UV_CHECK_GT(options_.slo_window_s, 0);
  UV_CHECK_GE(options_.event_capacity, 0);
  if (options_.event_capacity > 0) {
    events_.resize(static_cast<size_t>(options_.event_capacity));
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ScoringServer::~ScoringServer() { Shutdown(); }

void ScoringServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ScoringServer::Score(const int* ids, int n, float* out) {
  if (n <= 0) return;
  Request req;
  req.ids = ids;
  req.n = n;
  req.out = out;
  // Ids are assigned at admission, so they are monotone in enqueue order
  // and every span/record/event for one request agrees on its identity.
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  req.enqueue_us = clock_->NowMicros();
  inflight_.Add(1);
  queue_depth_.Add(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    UV_CHECK(!stop_);
    if (tail_ != nullptr) {
      tail_->next = &req;
    } else {
      head_ = &req;
    }
    tail_ = &req;
    pending_ids_ += n;
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&req] { return req.done; });
  inflight_.Add(-1);
}

std::vector<float> ScoringServer::Score(const std::vector<int>& ids) {
  std::vector<float> out(ids.size());
  Score(ids.data(), static_cast<int>(ids.size()), out.data());
  return out;
}

void ScoringServer::RecordCompletion(const Request& req) {
  // Cumulative and windowed views of the same sample, one JSONL ground-
  // truth record per request (unsampled — trace sampling only thins
  // spans), and optionally a ring slot. Caller holds mu_ for the ring.
  queue_wait_us_.Record(req.queue_wait_us);
  latency_us_.Record(req.latency_us);
  queue_wait_window_.Record(req.queue_wait_us);
  latency_window_.Record(req.latency_us);
  queue_wait_window_reg_.Record(req.queue_wait_us);
  latency_window_reg_.Record(req.latency_us);
  requests_total_.Inc();
  regions_total_.Inc(static_cast<uint64_t>(req.n));
  requests_done_.fetch_add(1, std::memory_order_relaxed);
  regions_done_.fetch_add(static_cast<uint64_t>(req.n),
                          std::memory_order_relaxed);
  if (obs::MetricsLogEnabled()) {
    obs::MetricsRecord("request")
        .Int("req", static_cast<int64_t>(req.id))
        .Int("batch", static_cast<int64_t>(req.batch))
        .Int("n", req.n)
        .Int("queue_wait_us", static_cast<int64_t>(req.queue_wait_us))
        .Int("latency_us", static_cast<int64_t>(req.latency_us))
        .Emit();
  }
  if (!events_.empty()) {
    RequestEvent& slot = events_[event_next_];
    slot.id = req.id;
    slot.batch = req.batch;
    slot.n = req.n;
    slot.enqueue_us = req.enqueue_us;
    slot.queue_wait_us = req.queue_wait_us;
    slot.latency_us = req.latency_us;
    event_next_ = (event_next_ + 1) % events_.size();
    ++event_count_;
  }
}

void ScoringServer::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    dispatcher_state_.Set(kIdle);
    work_cv_.wait(lock, [this] { return stop_ || head_ != nullptr; });
    if (head_ == nullptr) return;  // stop_ with a drained queue.

    // Micro-batch accumulation: hold the flush until the batch is full or
    // the oldest request's deadline expires. head_ is stable here — only
    // the dispatcher pops.
    dispatcher_state_.Set(kBatching);
    while (!stop_ && pending_ids_ < options_.max_batch) {
      const uint64_t age = clock_->NowMicros() - head_->enqueue_us;
      if (age >= static_cast<uint64_t>(options_.deadline_us)) break;
      work_cv_.wait_for(
          lock, std::chrono::microseconds(options_.deadline_us - age));
    }

    // Detach whole requests up to max_batch ids (always at least one, so
    // an oversized single request still gets served).
    const uint64_t batch_id =
        batches_done_.fetch_add(1, std::memory_order_relaxed) + 1;
    batch_reqs_.clear();
    int total = 0;
    while (head_ != nullptr &&
           (batch_reqs_.empty() || total + head_->n <= options_.max_batch)) {
      head_->batch = batch_id;
      batch_reqs_.push_back(head_);
      total += head_->n;
      pending_ids_ -= head_->n;
      head_ = head_->next;
    }
    if (head_ == nullptr) tail_ = nullptr;
    lock.unlock();
    queue_depth_.Add(-total);
    dispatcher_state_.Set(kScoring);

    const uint64_t start_us = clock_->NowMicros();
    batch_ids_.clear();
    for (const Request* r : batch_reqs_) {
      batch_ids_.insert(batch_ids_.end(), r->ids, r->ids + r->n);
    }
    if (static_cast<int>(batch_out_.size()) < total) batch_out_.resize(total);
    engine_->ScoreInto(batch_ids_.data(), total, batch_out_.data());
    const uint64_t score_end_us = clock_->NowMicros();

    batch_size_.Record(static_cast<uint64_t>(total));
    int offset = 0;
    for (Request* r : batch_reqs_) {
      std::memcpy(r->out, batch_out_.data() + offset,
                  sizeof(float) * static_cast<size_t>(r->n));
      offset += r->n;
      r->queue_wait_us = start_us - r->enqueue_us;
      r->latency_us = clock_->NowMicros() - r->enqueue_us;
    }

    // Stage the shadow slice now — ids and primary outputs copied into
    // dispatcher-owned buffers — because the Request structs become
    // invalid the moment done is signalled. The shadow pass itself runs
    // after clients are unblocked, so it never adds to served latency.
    bool shadow_pending = false;
    if (shadow_ != nullptr) {
      shadow_ids_.clear();
      shadow_ref_.clear();
      shadow_sampled_reqs_ = 0;
      offset = 0;
      for (const Request* r : batch_reqs_) {
        if (obs::SampleIdAgainst(r->id, shadow_threshold_)) {
          shadow_ids_.insert(shadow_ids_.end(), r->ids, r->ids + r->n);
          shadow_ref_.insert(shadow_ref_.end(), batch_out_.data() + offset,
                             batch_out_.data() + offset + r->n);
          ++shadow_sampled_reqs_;
        }
        offset += r->n;
      }
      shadow_pending = !shadow_ids_.empty();
    }

    if (obs::TraceEnabled()) {
      const uint64_t end_us = clock_->NowMicros();
      // Batch-level spans are unconditional (one pair per engine call);
      // the per-request queue-wait span is thinned by the deterministic
      // id sampler so high-QPS traces stay within the span buffers.
      obs::RecordSpan("serve.dispatch", obs::SpanLevel::kCoarse, start_us,
                      end_us, "batch", static_cast<int64_t>(batch_id), "reqs",
                      static_cast<int64_t>(batch_reqs_.size()));
      obs::RecordSpan("serve.score", obs::SpanLevel::kFine, start_us,
                      score_end_us, "batch", static_cast<int64_t>(batch_id),
                      "size", total);
      for (const Request* r : batch_reqs_) {
        if (!obs::TraceSampleForId(r->id)) continue;
        obs::RecordSpan("serve.enqueue", obs::SpanLevel::kFine, r->enqueue_us,
                        start_us, "req", static_cast<int64_t>(r->id), "batch",
                        static_cast<int64_t>(r->batch));
      }
    }

    lock.lock();
    for (Request* r : batch_reqs_) {
      RecordCompletion(*r);
      r->done = true;
    }
    done_cv_.notify_all();

    if (shadow_pending) {
      lock.unlock();
      RunShadowBatch(batch_id);
      lock.lock();
    }
  }
}

void ScoringServer::RunShadowBatch(uint64_t batch_id) {
  const int m = static_cast<int>(shadow_ids_.size());
  if (static_cast<int>(shadow_out_.size()) < m) shadow_out_.resize(m);
  const uint64_t start_us = clock_->NowMicros();
  shadow_->ScoreInto(shadow_ids_.data(), m, shadow_out_.data());
  const uint64_t end_us = clock_->NowMicros();
  uint64_t disagreements = 0;
  for (int i = 0; i < m; ++i) {
    const double delta = std::fabs(static_cast<double>(shadow_out_[i]) -
                                   static_cast<double>(shadow_ref_[i]));
    shadow_delta_e6_.Record(
        static_cast<uint64_t>(std::llround(delta * 1e6)));
    if ((shadow_out_[i] >= 0.5f) != (shadow_ref_[i] >= 0.5f)) {
      ++disagreements;
    }
  }
  shadow_requests_total_.Inc(shadow_sampled_reqs_);
  shadow_regions_total_.Inc(static_cast<uint64_t>(m));
  shadow_requests_done_.fetch_add(shadow_sampled_reqs_,
                                  std::memory_order_relaxed);
  shadow_regions_done_.fetch_add(static_cast<uint64_t>(m),
                                 std::memory_order_relaxed);
  if (disagreements > 0) {
    shadow_disagree_total_.Inc(disagreements);
    shadow_disagree_done_.fetch_add(disagreements, std::memory_order_relaxed);
  }
  if (obs::TraceEnabled()) {
    obs::RecordSpan("serve.shadow", obs::SpanLevel::kFine, start_us, end_us,
                    "batch", static_cast<int64_t>(batch_id), "size", m);
  }
}

bool ScoringServer::Feedback(const float* scores, const int* labels, int n) {
  obs::QualityMonitor* monitor = engine_->quality_monitor();
  if (monitor == nullptr) return false;
  monitor->ObserveLabels(scores, labels, n);
  return true;
}

ServerStats ScoringServer::Stats() const {
  ServerStats s;
  s.requests_total = requests_done_.load(std::memory_order_relaxed);
  s.regions_total = regions_done_.load(std::memory_order_relaxed);
  s.batches_total = batches_done_.load(std::memory_order_relaxed);
  s.queue_depth = queue_depth_.Value();
  s.inflight = inflight_.Value();
  s.dispatcher_state = dispatcher_state_.Value();
  s.shadow_requests = shadow_requests_done_.load(std::memory_order_relaxed);
  s.shadow_regions = shadow_regions_done_.load(std::memory_order_relaxed);
  s.shadow_disagreements =
      shadow_disagree_done_.load(std::memory_order_relaxed);
  const obs::WindowedHistogramSnapshot lat = latency_window_.Snapshot();
  const obs::WindowedHistogramSnapshot qw = queue_wait_window_.Snapshot();
  s.window_us = lat.window_us;
  s.window_count = lat.count;
  s.latency_p50_us = lat.p50;
  s.latency_p95_us = lat.p95;
  s.latency_p99_us = lat.p99;
  s.queue_wait_p50_us = qw.p50;
  s.queue_wait_p95_us = qw.p95;
  s.queue_wait_p99_us = qw.p99;
  return s;
}

std::vector<RequestEvent> ScoringServer::RecentEvents() const {
  std::vector<RequestEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.empty() || event_count_ == 0) return out;
  const size_t n = event_count_ < events_.size()
                       ? static_cast<size_t>(event_count_)
                       : events_.size();
  out.reserve(n);
  // Oldest first: the ring's next write slot is also its oldest entry once
  // it has wrapped.
  const size_t start =
      event_count_ < events_.size() ? 0 : event_next_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
  return out;
}

}  // namespace uv::infer
