#ifndef UV_INFER_SERVER_H_
#define UV_INFER_SERVER_H_

// Concurrent micro-batching front end over a grad-free Engine. Client
// threads block in Score(); a single dispatcher thread coalesces pending
// requests into micro-batches, flushing when `max_batch` region ids are
// queued or when the oldest request has waited `deadline_us`. Because the
// engine tail is row-wise, results are bit-identical regardless of how
// requests happen to be batched together.
//
// Request lifecycle telemetry (global obs registry):
//   serve.queue_wait_us   histogram + rolling window, enqueue -> dispatch
//   serve.batch_size      histogram, region ids per engine call
//   serve.latency_us      histogram + rolling window, enqueue -> scored
//   serve.requests        counter, Score() calls completed
//   serve.regions         counter, region ids scored
//   serve.queue_depth     gauge, region ids waiting for dispatch
//   serve.inflight        gauge, Score() calls between enqueue and done
//   serve.dispatcher_state gauge, 0 idle / 1 batching / 2 scoring
//
// Every Score() call gets a process-unique monotonically increasing
// request id, carried through queue -> dispatcher -> engine. With tracing
// on, each batch emits serve.dispatch / serve.score spans (args: batch,
// reqs/size) and each *sampled* request (TraceSampleForId, rate from
// UV_TRACE_SAMPLE) emits a serve.enqueue span covering its queue wait
// (args: req, batch). With UV_METRICS on, every completed request appends
// a {"kind":"request",...} JSONL record — unsampled ground truth that the
// windowed percentiles can be checked against post hoc.
//
// Shadow scoring (ServerOptions::shadow): an optional second engine — a
// candidate checkpoint under evaluation — re-scores a deterministic
// per-request-id sample (the same splitmix64 scheme as trace sampling,
// rate from shadow_sample / UV_SHADOW_SAMPLE) *after* the primary results
// have been returned to clients, so served results and latency are never
// affected. Disagreements against the primary at the 0.5 decision
// threshold and absolute score deltas are recorded as:
//   shadow.requests       counter, sampled requests re-scored
//   shadow.regions        counter, region ids re-scored
//   shadow.disagreements  counter, decision flips vs the primary
//   shadow.score_delta_e6 histogram, |candidate - primary| * 1e6
// With both engines loaded from the same checkpoint the delta histogram
// records only zeros — engine scoring is bit-identical by contract.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/engine.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/windowed.h"

namespace uv::infer {

struct ServerOptions {
  int max_batch = 64;     // Flush when this many ids are pending.
  int deadline_us = 200;  // Or when the oldest request is this old.
  int slo_window_s = 60;  // Rolling window for serve.*_us percentiles.

  // Per-request completion events retained in a ring for introspection
  // (RecentEvents). 0 disables the ring; the ring is preallocated, so the
  // steady-state request path stays allocation-free either way.
  int event_capacity = 0;

  // Time source for enqueue/dispatch/latency stamps. nullptr means
  // obs::DefaultClock() — the tracer's timeline, so request timestamps
  // double as span times. Tests inject a FakeClock; note the batching
  // deadline also reads this clock, so FakeClock tests should use
  // deadline_us = 0 (a frozen clock never ages the oldest request).
  const obs::Clock* clock = nullptr;

  // Candidate engine for shadow scoring (see header comment); nullptr
  // disables. Must cover the same region-id space as the primary and
  // outlive the server; the dispatcher is its only caller.
  Engine* shadow = nullptr;

  // Fraction of requests (sampled deterministically by request id) the
  // shadow engine re-scores. Clamped to [0, 1].
  double shadow_sample = 1.0;

  // Reads UV_SERVE_BATCH / UV_SERVE_DEADLINE_US / UV_SLO_WINDOW_S /
  // UV_SERVE_EVENTS / UV_SHADOW_SAMPLE (out-of-range or unset values keep
  // the defaults).
  static ServerOptions FromEnv();
};

// One completed request, as retained by the event ring.
struct RequestEvent {
  uint64_t id = 0;             // Monotonic request id (from 1).
  uint64_t batch = 0;          // Id of the batch that served it.
  int n = 0;                   // Region ids in the request.
  uint64_t enqueue_us = 0;     // Clock stamp at admission.
  uint64_t queue_wait_us = 0;  // Enqueue -> batch detach.
  uint64_t latency_us = 0;     // Enqueue -> results copied.
};

// Point-in-time introspection snapshot (Stats()).
struct ServerStats {
  uint64_t requests_total = 0;  // Completed Score() calls.
  uint64_t regions_total = 0;   // Region ids scored.
  uint64_t batches_total = 0;   // Engine calls.
  int64_t queue_depth = 0;      // Region ids awaiting dispatch.
  int64_t inflight = 0;         // Requests between enqueue and done.
  int64_t dispatcher_state = 0;  // 0 idle / 1 batching / 2 scoring.

  // Shadow-scoring totals (all zero when no shadow engine is attached).
  uint64_t shadow_requests = 0;
  uint64_t shadow_regions = 0;
  uint64_t shadow_disagreements = 0;

  // Rolling-window views (serve.latency_us / serve.queue_wait_us over the
  // last slo_window_s seconds; percentile math identical to Histogram's
  // nearest-rank bucket-lower-bound convention).
  uint64_t window_us = 0;
  uint64_t window_count = 0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double queue_wait_p99_us = 0.0;
};

class ScoringServer {
 public:
  // The engine must outlive the server; the server's dispatcher thread is
  // its only caller, satisfying the engine's single-caller contract.
  explicit ScoringServer(Engine* engine,
                         const ServerOptions& options = ServerOptions::FromEnv());
  ~ScoringServer();

  // Scores region ids[0..n) into out[0..n). Blocking; safe to call from
  // any number of threads concurrently.
  void Score(const int* ids, int n, float* out);
  std::vector<float> Score(const std::vector<int>& ids);

  // Drains pending requests and stops the dispatcher. Called by the
  // destructor; new Score() calls after shutdown are an error.
  void Shutdown();

  // Delayed ground-truth feedback: `scores` are the values this server
  // *served* earlier, paired with labels that have since arrived. Routed
  // to the primary engine's QualityMonitor for calibration (ECE) and
  // rolling precision/recall; returns false (and drops the samples) when
  // no monitor is attached. Thread-safe.
  bool Feedback(const float* scores, const int* labels, int n);

  // Live introspection: totals, queue/inflight gauges, and rolling-window
  // latency percentiles. Safe from any thread, any time.
  ServerStats Stats() const;

  // The last up-to-event_capacity completed requests, oldest first. Empty
  // when the ring is disabled.
  std::vector<RequestEvent> RecentEvents() const;

 private:
  // Stack-allocated by Score(); the queue links them intrusively so the
  // admission path performs no heap allocation.
  struct Request {
    const int* ids = nullptr;
    int n = 0;
    float* out = nullptr;
    bool done = false;
    Request* next = nullptr;
    uint64_t id = 0;
    uint64_t batch = 0;
    uint64_t enqueue_us = 0;
    uint64_t queue_wait_us = 0;
    uint64_t latency_us = 0;
  };

  void DispatchLoop();
  void RecordCompletion(const Request& req);
  // Re-scores the sampled slice of the last batch on the shadow engine and
  // records disagreement metrics. Dispatcher-only; runs after clients have
  // been notified, outside the lock.
  void RunShadowBatch(uint64_t batch_id);

  Engine* const engine_;
  const ServerOptions options_;
  const obs::Clock* const clock_;
  Engine* const shadow_;
  const uint64_t shadow_threshold_;  // Precomputed from shadow_sample.

  // Registry metrics, resolved once here: Get* takes a std::string and the
  // admission path must stay allocation-free (bench_serve_alloc gates it).
  obs::Counter& requests_total_;
  obs::Counter& regions_total_;
  obs::Gauge& queue_depth_;
  obs::Gauge& inflight_;
  obs::Gauge& dispatcher_state_;
  obs::Histogram& queue_wait_us_;
  obs::Histogram& batch_size_;
  obs::Histogram& latency_us_;
  obs::Counter& shadow_requests_total_;
  obs::Counter& shadow_regions_total_;
  obs::Counter& shadow_disagree_total_;
  obs::Histogram& shadow_delta_e6_;

  // Registry-owned rolling windows feed the exporter; they are created
  // once (first server fixes window and clock), so a server with an
  // injected clock also keeps private windows on its own timeline for
  // Stats(). With the default clock the two views see identical samples.
  obs::WindowedHistogram& queue_wait_window_reg_;
  obs::WindowedHistogram& latency_window_reg_;
  obs::WindowedHistogram queue_wait_window_;
  obs::WindowedHistogram latency_window_;

  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> requests_done_{0};
  std::atomic<uint64_t> regions_done_{0};
  std::atomic<uint64_t> batches_done_{0};
  std::atomic<uint64_t> shadow_requests_done_{0};
  std::atomic<uint64_t> shadow_regions_done_{0};
  std::atomic<uint64_t> shadow_disagree_done_{0};

  mutable std::mutex mu_;            // Also taken by const introspection.
  std::condition_variable work_cv_;  // Signals the dispatcher.
  std::condition_variable done_cv_;  // Signals waiting clients.
  Request* head_ = nullptr;          // FIFO intrusive queue.
  Request* tail_ = nullptr;
  int pending_ids_ = 0;
  bool stop_ = false;

  // Completion-event ring (mu_-guarded; preallocated in the constructor).
  std::vector<RequestEvent> events_;
  size_t event_next_ = 0;
  uint64_t event_count_ = 0;

  // Dispatcher-only batch buffers; capacity is retained across batches.
  std::vector<Request*> batch_reqs_;
  std::vector<int> batch_ids_;
  std::vector<float> batch_out_;

  // Dispatcher-only shadow buffers: ids and *copies* of the primary
  // outputs for the sampled requests. Requests are stack-allocated by
  // clients and must never be touched after done is signalled, so the
  // shadow pass works exclusively from these copies.
  std::vector<int> shadow_ids_;
  std::vector<float> shadow_ref_;
  std::vector<float> shadow_out_;
  uint64_t shadow_sampled_reqs_ = 0;

  std::thread dispatcher_;
};

}  // namespace uv::infer

#endif  // UV_INFER_SERVER_H_
