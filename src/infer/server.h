#ifndef UV_INFER_SERVER_H_
#define UV_INFER_SERVER_H_

// Concurrent micro-batching front end over a grad-free Engine. Client
// threads block in Score(); a single dispatcher thread coalesces pending
// requests into micro-batches, flushing when `max_batch` region ids are
// queued or when the oldest request has waited `deadline_us`. Because the
// engine tail is row-wise, results are bit-identical regardless of how
// requests happen to be batched together.
//
// Serving metrics are recorded into the global obs registry:
//   serve.queue_wait_us  time from enqueue to dispatch
//   serve.batch_size     region ids per engine call
//   serve.latency_us     time from enqueue to scored

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/engine.h"

namespace uv::infer {

struct ServerOptions {
  int max_batch = 64;     // Flush when this many ids are pending.
  int deadline_us = 200;  // Or when the oldest request is this old.

  // Reads UV_SERVE_BATCH / UV_SERVE_DEADLINE_US (non-positive or unset
  // values keep the defaults above).
  static ServerOptions FromEnv();
};

class ScoringServer {
 public:
  // The engine must outlive the server; the server's dispatcher thread is
  // its only caller, satisfying the engine's single-caller contract.
  explicit ScoringServer(Engine* engine,
                         const ServerOptions& options = ServerOptions::FromEnv());
  ~ScoringServer();

  // Scores region ids[0..n) into out[0..n). Blocking; safe to call from
  // any number of threads concurrently.
  void Score(const int* ids, int n, float* out);
  std::vector<float> Score(const std::vector<int>& ids);

  // Drains pending requests and stops the dispatcher. Called by the
  // destructor; new Score() calls after shutdown are an error.
  void Shutdown();

 private:
  // Stack-allocated by Score(); the queue links them intrusively so the
  // admission path performs no heap allocation.
  struct Request {
    const int* ids = nullptr;
    int n = 0;
    float* out = nullptr;
    bool done = false;
    Request* next = nullptr;
    uint64_t enqueue_us = 0;
  };

  void DispatchLoop();

  Engine* const engine_;
  const ServerOptions options_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // Signals the dispatcher.
  std::condition_variable done_cv_;  // Signals waiting clients.
  Request* head_ = nullptr;          // FIFO intrusive queue.
  Request* tail_ = nullptr;
  int pending_ids_ = 0;
  bool stop_ = false;

  // Dispatcher-only batch buffers; capacity is retained across batches.
  std::vector<Request*> batch_reqs_;
  std::vector<int> batch_ids_;
  std::vector<float> batch_out_;

  std::thread dispatcher_;
};

}  // namespace uv::infer

#endif  // UV_INFER_SERVER_H_
