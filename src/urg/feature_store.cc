#include "urg/feature_store.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace uv::urg {
namespace {

void GatherRowsInto(const Tensor& src, const std::vector<int>& ids,
                    Tensor* out) {
  out->ResizeUninit(static_cast<int>(ids.size()), src.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    UV_CHECK_GE(id, 0);
    UV_CHECK_LT(id, src.rows());
    std::memcpy(out->row(static_cast<int>(i)), src.row(id),
                sizeof(float) * static_cast<size_t>(src.cols()));
  }
}

}  // namespace

ResidentFeatureStore::ResidentFeatureStore(Tensor poi_features,
                                           Tensor image_features)
    : poi_(std::move(poi_features)), image_(std::move(image_features)) {
  UV_CHECK_EQ(poi_.rows(), image_.rows());
}

void ResidentFeatureStore::GatherPoi(const std::vector<int>& ids,
                                     Tensor* out) {
  GatherRowsInto(poi_, ids, out);
}

void ResidentFeatureStore::GatherImage(const std::vector<int>& ids,
                                       Tensor* out) {
  GatherRowsInto(image_, ids, out);
}

LazyFeatureStore::LazyFeatureStore(std::shared_ptr<const synth::City> city,
                                   Tensor poi_features,
                                   const Options& options)
    : city_(std::move(city)),
      poi_(std::move(poi_features)),
      options_(options),
      encoder_([&] {
        features::ConvEncoder::Options enc;
        enc.image_size = city_->config.image_size;
        enc.out_dim = options.image_feature_dim;
        enc.seed = options.encoder_seed;
        return features::ConvEncoder(enc);
      }()) {
  UV_CHECK(city_ != nullptr);
  UV_CHECK_EQ(poi_.rows(), city_->num_regions());
  const int n = city_->num_regions();
  const int dim = encoder_.out_dim();

  // Column statistics from a deterministic evenly-spaced sample. With
  // stats_sample >= N this is the whole city in id order — exactly the
  // population the eager path standardizes over — so small-city lazy
  // features match eager features bit for bit.
  col_mean_ = Tensor(1, dim);
  col_std_ = Tensor(1, dim);
  col_std_.Fill(1.0f);
  if (options_.standardize) {
    const int sample = std::min(n, std::max(1, options_.stats_sample));
    std::vector<int> ids(sample);
    for (int i = 0; i < sample; ++i) {
      ids[i] = static_cast<int>(static_cast<int64_t>(i) * n / sample);
    }
    Tensor encoded;
    encoded.ResizeUninit(sample, dim);
    // Temporarily mark stats as identity so EncodeRegions is a no-op map.
    EncodeRegions(ids, &encoded);
    const Tensor mean = ColumnMean(encoded);
    const Tensor std = ColumnStd(encoded, mean);
    for (int c = 0; c < dim; ++c) {
      col_mean_.at(0, c) = mean.at(0, c);
      // Same floor as StandardizeColumnsInPlace: quiet columns divide by 1.
      col_std_.at(0, c) = std.at(0, c) > 1e-6f ? std.at(0, c) : 1.0f;
    }
    // Re-encoding from here on applies (x - mean) / std.
  }

  const int rows = std::max(1, options_.cache_rows);
  cache_ = Tensor::Uninit(rows, dim);
  region_of_slot_.assign(rows, -1);
  lru_pos_.assign(rows, lru_.end());
  for (int s = rows - 1; s >= 0; --s) {
    lru_.push_front(s);
    lru_pos_[s] = lru_.begin();
  }
}

void LazyFeatureStore::GatherPoi(const std::vector<int>& ids, Tensor* out) {
  GatherRowsInto(poi_, ids, out);
}

void LazyFeatureStore::EncodeRegions(const std::vector<int>& ids,
                                     Tensor* out) {
  const int s = city_->config.image_size;
  const int dim = encoder_.out_dim();
  const int count = static_cast<int>(ids.size());
  // A plain local, NOT thread_local: the render lambda below runs on pool
  // workers, and a lambda body never captures a thread_local — each worker
  // would resolve its own (empty) instance. The slab comes from BufferPool,
  // so a fresh tensor per call is allocation-free in steady state anyway.
  Tensor tiles;
  tiles.ResizeUninit(count, 3 * s * s);
  auto& tiles_rendered =
      obs::Registry::Global().GetCounter("synth.tiles_rendered");
  ParallelFor(0, count, 16, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      city_->RenderRegionTile(ids[i], tiles.row(i));
    }
    tiles_rendered.Inc(static_cast<uint64_t>(end - begin));
  });
  const Tensor encoded = encoder_.Encode(tiles);
  for (int i = 0; i < count; ++i) {
    const float* in = encoded.row(i);
    float* dst = out->row(i);
    for (int c = 0; c < dim; ++c) {
      dst[c] = (in[c] - col_mean_.at(0, c)) / col_std_.at(0, c);
    }
  }
}

void LazyFeatureStore::GatherImage(const std::vector<int>& ids, Tensor* out) {
  const int dim = encoder_.out_dim();
  out->ResizeUninit(static_cast<int>(ids.size()), dim);
  std::lock_guard<std::mutex> lock(mu_);

  // Pass 1: find misses (deduplicated, first-seen order).
  std::vector<int> missing;
  std::unordered_map<int, int> fresh_row;  // region -> row in `fresh`.
  for (const int id : ids) {
    UV_CHECK_GE(id, 0);
    UV_CHECK_LT(id, num_regions());
    if (slot_of_region_.count(id) == 0 && fresh_row.count(id) == 0) {
      fresh_row.emplace(id, static_cast<int>(missing.size()));
      missing.push_back(id);
    }
  }

  thread_local Tensor fresh;
  if (!missing.empty()) {
    cache_misses_ += missing.size();
    fresh.ResizeUninit(static_cast<int>(missing.size()), dim);
    EncodeRegions(missing, &fresh);
  }

  // Pass 2: copy rows out — freshly encoded rows from `fresh`, the rest
  // from the cache (with an LRU touch).
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto miss_it = fresh_row.find(ids[i]);
    if (miss_it != fresh_row.end()) {
      std::memcpy(out->row(static_cast<int>(i)), fresh.row(miss_it->second),
                  sizeof(float) * static_cast<size_t>(dim));
      continue;
    }
    const int slot = slot_of_region_.at(ids[i]);
    std::memcpy(out->row(static_cast<int>(i)), cache_.row(slot),
                sizeof(float) * static_cast<size_t>(dim));
    lru_.splice(lru_.begin(), lru_, lru_pos_[slot]);
    lru_pos_[slot] = lru_.begin();
  }
  cache_hits_ += ids.size() - missing.size();

  // Pass 3: admit the fresh rows, newest last, capped at capacity (a miss
  // batch larger than the cache keeps only its tail resident).
  const size_t capacity = region_of_slot_.size();
  const size_t first =
      missing.size() > capacity ? missing.size() - capacity : 0;
  for (size_t i = first; i < missing.size(); ++i) {
    const int slot = lru_.back();
    lru_.pop_back();
    if (region_of_slot_[slot] >= 0) {
      slot_of_region_.erase(region_of_slot_[slot]);
    }
    region_of_slot_[slot] = missing[i];
    slot_of_region_[missing[i]] = slot;
    std::memcpy(cache_.row(slot), fresh.row(static_cast<int>(i)),
                sizeof(float) * static_cast<size_t>(dim));
    lru_.push_front(slot);
    lru_pos_[slot] = lru_.begin();
  }
}

}  // namespace uv::urg
