#include "urg/neighbor_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "autograd/variable.h"
#include "util/check.h"
#include "util/rng.h"

namespace uv::urg {

// splitmix64 finalizer over (seed, salt): every node gets a private fanout
// stream independent of batch composition and visit order.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

}  // namespace

MinibatchConfig MinibatchConfig::FromEnv(const MinibatchConfig& base) {
  MinibatchConfig cfg = base;
  cfg.batch_size = EnvInt("UV_BATCH", cfg.batch_size);
  cfg.fanout = EnvInt("UV_FANOUT", cfg.fanout);
  return cfg;
}

MinibatchConfig MinibatchConfig::FromEnv() {
  return FromEnv(MinibatchConfig());
}

NeighborView::NeighborView(const UrbanRegionGraph& urg) : urg_(&urg) {
  if (urg.sharded) {
    num_regions_ = urg.sharded->num_regions();
  } else {
    UV_CHECK_GT(urg.adjacency.num_nodes(), 0);
    num_regions_ = urg.adjacency.num_nodes();
  }
}

int NeighborView::GlobalDegree(int id) const {
  return urg_->sharded ? urg_->sharded->global_degree[id]
                       : urg_->adjacency.Degree(id);
}

void NeighborView::InNeighbors(int id, std::vector<int>* out) const {
  if (urg_->sharded) {
    urg_->sharded->InNeighborsGlobal(id, out);
    return;
  }
  const auto& off = *urg_->adjacency.offsets();
  const auto& nbr = *urg_->adjacency.neighbors();
  out->insert(out->end(), nbr.begin() + off[id], nbr.begin() + off[id + 1]);
}

SampledSubgraph SampleKHop(const NeighborView& view,
                           const std::vector<int>& seeds,
                           const MinibatchConfig& cfg) {
  UV_CHECK(!seeds.empty());
  UV_CHECK_GT(cfg.hops, 0);

  SampledSubgraph sg;
  sg.num_seeds = static_cast<int>(seeds.size());
  std::unordered_map<int, int> local_of;
  local_of.reserve(seeds.size() * 4);
  for (const int s : seeds) {
    UV_CHECK_GE(s, 0);
    UV_CHECK_LT(s, view.num_regions());
    const bool inserted =
        local_of.emplace(s, static_cast<int>(sg.nodes.size())).second;
    UV_CHECK(inserted);  // Seeds must be unique.
    sg.nodes.push_back(s);
  }

  auto offsets = std::make_shared<std::vector<int>>();
  auto src_ids = std::make_shared<std::vector<int>>();
  auto dst_ids = std::make_shared<std::vector<int>>();
  offsets->push_back(0);

  // Process local dsts in order; every node discovered at depth < hops gets
  // its (sampled) in-segment, so the edge stream is dst-grouped for free.
  std::vector<int> candidates;
  std::vector<int> selected;
  int level_end = static_cast<int>(sg.nodes.size());
  int depth = 0;
  for (int dst = 0; dst < static_cast<int>(sg.nodes.size()); ++dst) {
    if (dst == level_end) {
      ++depth;
      level_end = static_cast<int>(sg.nodes.size());
    }
    const int dst_global = sg.nodes[dst];
    if (depth >= cfg.hops) {
      // Beyond the last hop: a self loop keeps the node's features flowing
      // to its own row, but no further frontier is opened.
      src_ids->push_back(dst);
      dst_ids->push_back(dst);
      offsets->push_back(static_cast<int>(src_ids->size()));
      continue;
    }

    candidates.clear();
    view.InNeighbors(dst_global, &candidates);
    // The self loop is always kept; sample among the true neighbors.
    candidates.erase(
        std::remove(candidates.begin(), candidates.end(), dst_global),
        candidates.end());
    selected.clear();
    if (cfg.fanout > 0 &&
        static_cast<int>(candidates.size()) > cfg.fanout) {
      // Partial Fisher-Yates over the ascending candidate list with the
      // node's private stream: the draw depends only on (seed, node).
      Rng rng(MixSeed(cfg.seed, static_cast<uint64_t>(dst_global)));
      const int m = static_cast<int>(candidates.size());
      for (int i = 0; i < cfg.fanout; ++i) {
        const int j = i + rng.UniformInt(m - i);
        std::swap(candidates[i], candidates[j]);
      }
      selected.assign(candidates.begin(), candidates.begin() + cfg.fanout);
      std::sort(selected.begin(), selected.end());
    } else {
      selected = candidates;
    }
    selected.push_back(dst_global);  // Self loop, in sorted position below.
    std::sort(selected.begin(), selected.end());

    for (const int src_global : selected) {
      auto [it, inserted] =
          local_of.emplace(src_global, static_cast<int>(sg.nodes.size()));
      if (inserted) sg.nodes.push_back(src_global);
      src_ids->push_back(it->second);
      dst_ids->push_back(dst);
    }
    offsets->push_back(static_cast<int>(src_ids->size()));
  }

  // GCN norms from PARENT degrees: the sampled subgraph must normalize like
  // the full graph or fanout=0 would not reproduce full-graph outputs.
  const int64_t num_edges = static_cast<int64_t>(src_ids->size());
  sg.gcn_norm = Tensor::Uninit(static_cast<int>(num_edges), 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    const double d1 =
        std::max(1, view.GlobalDegree(sg.nodes[(*dst_ids)[e]]));
    const double d2 =
        std::max(1, view.GlobalDegree(sg.nodes[(*src_ids)[e]]));
    sg.gcn_norm.at(static_cast<int>(e), 0) =
        static_cast<float>(1.0 / std::sqrt(d1 * d2));
  }

  sg.offsets = std::move(offsets);
  sg.src_ids = std::move(src_ids);
  sg.dst_ids = std::move(dst_ids);
  return sg;
}

SubgraphFeatures GatherSubgraphFeatures(const UrbanRegionGraph& urg,
                                        const SampledSubgraph& sg) {
  SubgraphFeatures out;
  Tensor poi;
  urg.GatherPoiRows(sg.nodes, &poi);
  out.poi = ag::MakeConst(std::move(poi));
  Tensor image;
  urg.GatherImageRows(sg.nodes, &image);
  out.image = ag::MakeConst(std::move(image));
  return out;
}

nn::GraphContext ContextFromSubgraph(const SampledSubgraph& sg) {
  nn::GraphContext ctx;
  ctx.num_nodes = sg.num_nodes();
  ctx.offsets = sg.offsets;
  ctx.src_ids = sg.src_ids;
  ctx.dst_ids = sg.dst_ids;
  ctx.gcn_norm = ag::MakeConst(sg.gcn_norm);
  return ctx;
}

}  // namespace uv::urg
