#ifndef UV_URG_FEATURE_STORE_H_
#define UV_URG_FEATURE_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "features/image_encoder.h"
#include "synth/city.h"
#include "tensor/tensor.h"

namespace uv::urg {

// Batch-oriented access to per-region features. Minibatch training gathers
// O(batch * fanout) feature rows per step through this interface instead of
// resident-copying every region's tensors; where the rows come from —
// resident blocks or render-on-demand — is the implementation's business.
//
// Contract: GatherPoi/GatherImage return the same bytes for a given id no
// matter the call order, batch composition, or thread count, so minibatch
// training stays deterministic under any batching schedule.
class FeatureStore {
 public:
  virtual ~FeatureStore() = default;

  virtual int num_regions() const = 0;
  virtual int poi_dim() const = 0;
  virtual int image_dim() const = 0;

  // Fills `out` (resized to ids.size() x dim) with the feature rows of
  // `ids`, in order. Implementations may cache internally; they must be
  // safe to call from several fold-worker threads at once.
  virtual void GatherPoi(const std::vector<int>& ids, Tensor* out) = 0;
  virtual void GatherImage(const std::vector<int>& ids, Tensor* out) = 0;
};

// Feature store over tensors it owns: the small-city path, and the
// reference implementation the parity tests compare the lazy store to.
class ResidentFeatureStore : public FeatureStore {
 public:
  ResidentFeatureStore(Tensor poi_features, Tensor image_features);

  int num_regions() const override { return poi_.rows(); }
  int poi_dim() const override { return poi_.cols(); }
  int image_dim() const override { return image_.cols(); }
  void GatherPoi(const std::vector<int>& ids, Tensor* out) override;
  void GatherImage(const std::vector<int>& ids, Tensor* out) override;

 private:
  Tensor poi_;
  Tensor image_;
};

// Render-on-demand feature store for paper-scale cities: POI features are
// resident (their radius components need whole-city BFS anyway, and 64
// floats/region is ~90 MB at 354k — cheap), while tile images — the 12x
// larger modality plus the encode cost — are materialized per batch:
//
//   GatherImage(ids) -> LRU lookup -> miss: render tiles from the city's
//   per-region RNG streams -> ConvEncoder -> standardize -> cache row.
//
// The cache is a fixed (cache_rows x image_dim) pool-backed tensor, so the
// store's footprint is O(cache) regardless of city size. Standardization
// statistics come from a deterministic evenly-spaced region sample; when
// the sample covers the whole city the gathered rows are bit-identical to
// the eager BuildUrg pipeline.
class LazyFeatureStore : public FeatureStore {
 public:
  struct Options {
    int image_feature_dim = 256;
    uint64_t encoder_seed = 7;    // Must match UrgOptions::encoder_seed.
    int cache_rows = 32768;       // LRU capacity in encoded rows.
    int stats_sample = 4096;      // Regions sampled for column stats.
    bool standardize = true;
  };

  LazyFeatureStore(std::shared_ptr<const synth::City> city,
                   Tensor poi_features, const Options& options);

  int num_regions() const override { return poi_.rows(); }
  int poi_dim() const override { return poi_.cols(); }
  int image_dim() const override { return encoder_.out_dim(); }
  void GatherPoi(const std::vector<int>& ids, Tensor* out) override;
  void GatherImage(const std::vector<int>& ids, Tensor* out) override;

  // Cache observability (for tests and bench logging).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

 private:
  // Renders + encodes `ids` into consecutive rows of `out` (caller sizes
  // it), applying the precomputed column standardization.
  void EncodeRegions(const std::vector<int>& ids, Tensor* out);

  std::shared_ptr<const synth::City> city_;
  Tensor poi_;
  Options options_;
  features::ConvEncoder encoder_;
  Tensor col_mean_;  // 1 x image_dim.
  Tensor col_std_;   // 1 x image_dim (already floored like the eager path).

  std::mutex mu_;
  Tensor cache_;                        // cache_rows x image_dim.
  std::vector<int> region_of_slot_;     // -1 = free.
  std::unordered_map<int, int> slot_of_region_;
  std::list<int> lru_;                  // Front = most recent slot.
  std::vector<std::list<int>::iterator> lru_pos_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace uv::urg

#endif  // UV_URG_FEATURE_STORE_H_
