#ifndef UV_URG_NEIGHBOR_SAMPLER_H_
#define UV_URG_NEIGHBOR_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/graph_context.h"
#include "tensor/tensor.h"
#include "urg/urban_region_graph.h"

namespace uv::urg {

// splitmix64 finalizer combining a base seed with a salt (epoch index, node
// id, ...). Shared by the sampler and the minibatch trainers so per-epoch
// resampling streams are decorrelated but reproducible.
uint64_t MixSeed(uint64_t seed, uint64_t salt);

// Minibatch training knobs shared by every detector.
struct MinibatchConfig {
  int batch_size = 0;  // Seeds per step; <= 0 selects full-graph training.
  int fanout = 16;     // Sampled in-neighbors per node; 0 keeps them all.
  int hops = 2;        // Trunk depth: two MAGA layers = two graph hops.
  uint64_t seed = 0x5eedbeef;

  bool enabled() const { return batch_size > 0; }

  // Applies UV_BATCH / UV_FANOUT (when set and positive) over `base`.
  static MinibatchConfig FromEnv(const MinibatchConfig& base);
  static MinibatchConfig FromEnv();
};

// Uniform read access to a URG's in-neighborhoods, hiding whether the
// adjacency is the dense CSR or the district-sharded representation.
class NeighborView {
 public:
  explicit NeighborView(const UrbanRegionGraph& urg);

  int num_regions() const { return num_regions_; }

  // Global in-degree of `id`, self loop included.
  int GlobalDegree(int id) const;

  // Appends the global in-neighbors of `id` (self loop included) to *out,
  // sorted ascending — the dense CSR segment, whichever representation
  // backs it.
  void InNeighbors(int id, std::vector<int>* out) const;

 private:
  const UrbanRegionGraph* urg_;
  int num_regions_ = 0;
};

// A compact k-hop subgraph around a seed batch, with nodes remapped to
// local indices [0, num_nodes): seeds first (in the caller's order), then
// discovered neighbors in first-discovery order. Edges are dst-grouped —
// the layout every message-passing layer consumes — and carry GCN norms
// computed from PARENT-graph degrees, so a fanout=0 sample reproduces the
// full-graph forward pass on the seed rows bit-for-bit.
//
// Expansion is GraphSAGE-layered: nodes discovered at depth < hops keep
// their (sampled) full in-segments; depth == hops nodes get only a self
// loop. Their layer-1 outputs are garbage, but no seed output ever reads
// them — seeds consume exactly `hops` rounds of aggregation.
struct SampledSubgraph {
  std::vector<int> nodes;  // Global region ids; [0, num_seeds) = seeds.
  int num_seeds = 0;

  std::shared_ptr<const std::vector<int>> offsets;  // num_nodes + 1.
  std::shared_ptr<const std::vector<int>> src_ids;  // Local, size E.
  std::shared_ptr<const std::vector<int>> dst_ids;  // Local, size E.
  Tensor gcn_norm;  // E x 1, 1/sqrt(global_deg_dst * global_deg_src).

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int64_t num_edges() const {
    return src_ids ? static_cast<int64_t>(src_ids->size()) : 0;
  }
};

// Samples the k-hop neighborhood closure of `seeds` (which must be unique).
// Deterministic in (cfg.seed, cfg.fanout, cfg.hops, seeds) alone: each
// node's fanout draw uses a private RNG keyed on (cfg.seed, global id), so
// results are bit-identical across thread counts, pool settings, batch
// schedules, and the dense/sharded representations. Trainers vary cfg.seed
// per epoch to resample neighborhoods.
SampledSubgraph SampleKHop(const NeighborView& view,
                           const std::vector<int>& seeds,
                           const MinibatchConfig& cfg);

// Wraps the subgraph's index arrays into the GraphContext the GNN layers
// consume (no copies; gcn_norm becomes a constant variable).
nn::GraphContext ContextFromSubgraph(const SampledSubgraph& sg);

// The subgraph nodes' two feature modalities as constant variables, row i
// holding the features of sg.nodes[i]. Routes through the URG's feature
// store when present (pool-backed, render-on-demand at paper scale).
struct SubgraphFeatures {
  ag::VarPtr poi;
  ag::VarPtr image;
};
SubgraphFeatures GatherSubgraphFeatures(const UrbanRegionGraph& urg,
                                        const SampledSubgraph& sg);

}  // namespace uv::urg

#endif  // UV_URG_NEIGHBOR_SAMPLER_H_
