#ifndef UV_URG_URBAN_REGION_GRAPH_H_
#define UV_URG_URBAN_REGION_GRAPH_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "synth/city.h"
#include "tensor/tensor.h"

namespace uv::urg {

// Feature groups that can be removed from the URG, matching the Fig. 5(b)
// data ablations of the paper.
enum class FeatureAblation {
  kNone = 0,
  kNoImage,  // Remove satellite-image features.
  kNoCate,   // Remove POI category-distribution features.
  kNoRad,    // Remove POI radius features.
  kNoIndex,  // Remove the basic-living-facility index.
};

// URG construction options (paper Section IV).
struct UrgOptions {
  bool use_spatial_edges = true;  // Disable for the noProx ablation.
  bool use_road_edges = true;     // Disable for the noRoad ablation.
  int road_max_hops = 5;          // Paper: regions connected within 5 hops.
  FeatureAblation feature_ablation = FeatureAblation::kNone;

  // Image feature extraction (frozen VGG16 stand-in).
  int image_feature_dim = 256;
  uint64_t encoder_seed = 7;

  // Column-standardize both feature blocks.
  bool standardize_features = true;
};

// The Urban Region Graph G(V, E, A, X): fine-grained regions as nodes,
// spatial-proximity plus road-connectivity edges, and multi-modal region
// features. Also carries the labels and raw tiles so that a single object
// is a complete dataset for every detector.
struct UrbanRegionGraph {
  std::string city_name;
  graph::GridSpec grid;

  // Combined adjacency with self loops (grouped by destination, the layout
  // the attention layers consume).
  graph::CsrGraph adjacency;

  // Multi-modal region features.
  Tensor poi_features;    // N x 64.
  Tensor image_features;  // N x image_feature_dim.

  // Supervision: -1 unlabeled, 0 non-UV, 1 UV; plus full ground truth for
  // the Fig. 7 case study.
  std::vector<int> labels;
  std::vector<uint8_t> is_uv;

  // Raw tiles (shared with the generating City) for the image-based
  // baselines (UVLens, MUVFCN). May be null if tiles were not generated.
  std::shared_ptr<Tensor> images;
  int image_size = 32;

  // Edge statistics (directed counts, self loops excluded) for Table I.
  int64_t num_spatial_edges = 0;
  int64_t num_road_edges = 0;
  int64_t num_edges = 0;  // Union of the two relations.

  int num_regions() const { return grid.num_regions(); }

  // Ids of labeled regions, in ascending order.
  std::vector<int> LabeledIds() const;
};

// Assembles the URG from generated city data.
UrbanRegionGraph BuildUrg(const synth::City& city, const UrgOptions& options);

// Returns the subgrid covering `fraction` of the city's POIs with a centred
// rectangle (the paper's "main urban area" rule). The result is a pair of
// inclusive row/col bounds {row0, col0, row1, col1}.
std::array<int, 4> MainUrbanAreaBounds(const synth::City& city,
                                       double fraction);

}  // namespace uv::urg

#endif  // UV_URG_URBAN_REGION_GRAPH_H_
