#ifndef UV_URG_URBAN_REGION_GRAPH_H_
#define UV_URG_URBAN_REGION_GRAPH_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/grid.h"
#include "synth/city.h"
#include "tensor/tensor.h"
#include "urg/feature_store.h"

namespace uv::urg {

// Feature groups that can be removed from the URG, matching the Fig. 5(b)
// data ablations of the paper.
enum class FeatureAblation {
  kNone = 0,
  kNoImage,  // Remove satellite-image features.
  kNoCate,   // Remove POI category-distribution features.
  kNoRad,    // Remove POI radius features.
  kNoIndex,  // Remove the basic-living-facility index.
};

// URG construction options (paper Section IV).
struct UrgOptions {
  bool use_spatial_edges = true;  // Disable for the noProx ablation.
  bool use_road_edges = true;     // Disable for the noRoad ablation.
  int road_max_hops = 5;          // Paper: regions connected within 5 hops.
  FeatureAblation feature_ablation = FeatureAblation::kNone;

  // Image feature extraction (frozen VGG16 stand-in).
  int image_feature_dim = 256;
  uint64_t encoder_seed = 7;

  // Column-standardize both feature blocks.
  bool standardize_features = true;
};

// One rectangular district of the sharded URG: the regions of a ShardSpec
// tile plus the cross-shard "halo" sources its in-edges reference. The
// shard's adjacency is a local dst-grouped CSR over num_owned + halo.size()
// nodes — owned regions first in tile row-major order, then halo regions in
// ascending global-id order. Only owned nodes carry in-segments (halo nodes
// exist purely as edge sources), so no per-shard structure — and no union of
// shards held at once — ever materializes a global O(E) array.
struct UrgShard {
  int shard_id = 0;
  std::array<int, 4> bounds{};  // Half-open cell bounds {r0, c0, r1, c1}.
  int num_owned = 0;
  std::vector<int> halo;  // Sorted global ids of non-owned edge sources.
  graph::CsrGraph local;  // Dst-grouped; sources are local indices.
  int64_t num_spatial_edges = 0;  // Directed, into owned, self loops excluded.
  int64_t num_road_edges = 0;

  // Local index of an owned region: pure arithmetic, no table.
  int OwnedLocal(const graph::GridSpec& grid, int id) const {
    return (grid.RowOf(id) - bounds[0]) * (bounds[3] - bounds[1]) +
           (grid.ColOf(id) - bounds[1]);
  }
  // Global id of any local index (owned or halo).
  int GlobalOf(const graph::GridSpec& grid, int local) const {
    if (local < num_owned) {
      const int tile_w = bounds[3] - bounds[1];
      return grid.RegionId(bounds[0] + local / tile_w,
                           bounds[1] + local % tile_w);
    }
    return halo[local - num_owned];
  }
};

// District-sharded URG adjacency: per-shard CSRs that together represent
// exactly the edge set (plus self loops) of the dense BuildUrg adjacency.
// Shard membership is deterministic arithmetic on the grid (ShardSpec), and
// shards build independently in parallel, so construction peaks at
// O(E/shards) transient memory instead of one global edge list.
struct ShardedUrg {
  graph::GridSpec grid;
  graph::ShardSpec spec;
  std::vector<UrgShard> shards;
  // Global in-degree (self loop included) per region: subgraph GCN
  // normalization must use parent-graph degrees, not sampled ones.
  std::vector<int> global_degree;

  int num_regions() const { return static_cast<int>(global_degree.size()); }

  // Appends the global in-neighbors of `id` (self loop included) to *out,
  // sorted ascending. Equals the dense adjacency's in-segment of `id`.
  void InNeighborsGlobal(int id, std::vector<int>* out) const;
};

// Options for BuildShardedUrg.
struct ShardOptions {
  // Target shard count; <= 0 resolves UV_SHARDS from the environment and
  // falls back to the global thread-pool width. The realized tiling
  // (ShardSpec) depends only on the grid and this count — never on the
  // thread count — so the sharded graph is bit-stable across UV_THREADS.
  int num_shards = 0;
  LazyFeatureStore::Options feature_store;
};

// The Urban Region Graph G(V, E, A, X): fine-grained regions as nodes,
// spatial-proximity plus road-connectivity edges, and multi-modal region
// features. Also carries the labels and raw tiles so that a single object
// is a complete dataset for every detector.
struct UrbanRegionGraph {
  std::string city_name;
  graph::GridSpec grid;

  // Combined adjacency with self loops (grouped by destination, the layout
  // the attention layers consume).
  graph::CsrGraph adjacency;

  // Multi-modal region features.
  Tensor poi_features;    // N x 64.
  Tensor image_features;  // N x image_feature_dim.

  // Supervision: -1 unlabeled, 0 non-UV, 1 UV; plus full ground truth for
  // the Fig. 7 case study.
  std::vector<int> labels;
  std::vector<uint8_t> is_uv;

  // Raw tiles (shared with the generating City) for the image-based
  // baselines (UVLens, MUVFCN). May be null if tiles were not generated.
  std::shared_ptr<Tensor> images;
  int image_size = 32;

  // Paper-scale representation (BuildShardedUrg): district-sharded
  // adjacency plus a batch-oriented feature store. When `sharded` is set,
  // `adjacency` is empty and poi/image feature tensors live behind
  // `features` instead of the resident members above — access rows through
  // the Gather helpers below, which route either way.
  std::shared_ptr<ShardedUrg> sharded;
  std::shared_ptr<FeatureStore> features;

  // Edge statistics (directed counts, self loops excluded) for Table I.
  int64_t num_spatial_edges = 0;
  int64_t num_road_edges = 0;
  int64_t num_edges = 0;  // Union of the two relations.

  int num_regions() const { return static_cast<int>(grid.num_regions()); }

  // Ids of labeled regions, in ascending order.
  std::vector<int> LabeledIds() const;

  // Feature dimensions and batched row access, uniform across the resident
  // and feature-store representations.
  int PoiDim() const;
  int ImageDim() const;
  void GatherPoiRows(const std::vector<int>& ids, Tensor* out) const;
  void GatherImageRows(const std::vector<int>& ids, Tensor* out) const;
};

// Assembles the URG from generated city data.
UrbanRegionGraph BuildUrg(const synth::City& city, const UrgOptions& options);

// Paper-scale assembly: district-sharded adjacency (shards build in
// parallel; no global O(E) edge list is ever materialized) plus a lazy
// feature store that renders and encodes tile batches on demand. The edge
// set represented by the union of shards is exactly BuildUrg's. Requires a
// shared City because tiles are re-rendered per batch for the store's
// lifetime.
UrbanRegionGraph BuildShardedUrg(std::shared_ptr<const synth::City> city,
                                 const UrgOptions& options,
                                 const ShardOptions& shard_options);

// Returns the subgrid covering `fraction` of the city's POIs with a centred
// rectangle (the paper's "main urban area" rule). The result is a pair of
// inclusive row/col bounds {row0, col0, row1, col1}.
std::array<int, 4> MainUrbanAreaBounds(const synth::City& city,
                                       double fraction);

}  // namespace uv::urg

#endif  // UV_URG_URBAN_REGION_GRAPH_H_
