#include "urg/urban_region_graph.h"

#include <algorithm>
#include <array>

#include "features/image_encoder.h"
#include "features/poi_features.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/logging.h"

namespace uv::urg {

std::vector<int> UrbanRegionGraph::LabeledIds() const {
  std::vector<int> ids;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    if (labels[i] >= 0) ids.push_back(i);
  }
  return ids;
}

UrbanRegionGraph BuildUrg(const synth::City& city, const UrgOptions& options) {
  UrbanRegionGraph urg;
  urg.city_name = city.config.name;
  urg.grid = city.grid;
  urg.labels = city.labels;
  urg.is_uv = std::vector<uint8_t>(city.is_uv.begin(), city.is_uv.end());
  urg.images = city.images;
  urg.image_size = city.config.image_size;

  // --- Region relations (Section IV-A). ----------------------------------
  std::vector<graph::Edge> edges;
  if (options.use_spatial_edges) {
    auto spatial = graph::BuildSpatialProximityEdges(city.grid);
    urg.num_spatial_edges = static_cast<int64_t>(spatial.size());
    edges.insert(edges.end(), spatial.begin(), spatial.end());
  }
  if (options.use_road_edges) {
    auto road = city.roads.BuildRegionConnectivityEdges(city.grid,
                                                        options.road_max_hops);
    urg.num_road_edges = static_cast<int64_t>(road.size());
    edges.insert(edges.end(), road.begin(), road.end());
  }
  // Attention layers let a region attend to itself via a self loop.
  urg.adjacency = graph::CsrGraph::FromEdges(city.grid.num_regions(), edges,
                                             /*symmetrize=*/false,
                                             /*add_self_loops=*/true);
  urg.num_edges = urg.adjacency.num_edges() - city.grid.num_regions();

  // --- Region features (Section IV-B). -----------------------------------
  urg.poi_features = features::BuildPoiFeatures(city);
  switch (options.feature_ablation) {
    case FeatureAblation::kNone:
      break;
    case FeatureAblation::kNoCate:
      for (int r = 0; r < urg.poi_features.rows(); ++r) {
        for (int c = features::PoiFeatureGroups::kCategoryBegin;
             c < features::PoiFeatureGroups::kCategoryEnd; ++c) {
          urg.poi_features.at(r, c) = 0.0f;
        }
      }
      break;
    case FeatureAblation::kNoRad:
      for (int r = 0; r < urg.poi_features.rows(); ++r) {
        for (int c = features::PoiFeatureGroups::kRadiusBegin;
             c < features::PoiFeatureGroups::kRadiusEnd; ++c) {
          urg.poi_features.at(r, c) = 0.0f;
        }
      }
      break;
    case FeatureAblation::kNoIndex:
      for (int r = 0; r < urg.poi_features.rows(); ++r) {
        urg.poi_features.at(r, features::PoiFeatureGroups::kIndexBegin) = 0.0f;
      }
      break;
    case FeatureAblation::kNoImage:
      break;  // Handled below.
  }

  if (options.feature_ablation == FeatureAblation::kNoImage ||
      city.images == nullptr) {
    // Regions characterized by POI features only; keep a minimal zero block
    // so every model sees the same two-modality interface.
    urg.image_features = Tensor(city.grid.num_regions(),
                                std::max(8, options.image_feature_dim / 8));
  } else {
    features::ConvEncoder::Options enc;
    enc.image_size = city.config.image_size;
    enc.out_dim = options.image_feature_dim;
    enc.seed = options.encoder_seed;
    features::ConvEncoder encoder(enc);
    urg.image_features = encoder.Encode(*city.images);
  }

  if (options.standardize_features) {
    StandardizeColumnsInPlace(&urg.poi_features);
    if (options.feature_ablation != FeatureAblation::kNoImage &&
        city.images != nullptr) {
      StandardizeColumnsInPlace(&urg.image_features);
    }
  }

  UV_LOG_INFO("URG %s: %d regions, %lld edges (%lld spatial, %lld road)",
              urg.city_name.c_str(), urg.num_regions(),
              static_cast<long long>(urg.num_edges),
              static_cast<long long>(urg.num_spatial_edges),
              static_cast<long long>(urg.num_road_edges));
  return urg;
}

std::array<int, 4> MainUrbanAreaBounds(const synth::City& city,
                                       double fraction) {
  UV_CHECK(fraction > 0.0 && fraction <= 1.0);
  const auto& grid = city.grid;
  const int64_t total = static_cast<int64_t>(city.pois.size());
  if (total == 0) return {0, 0, grid.height - 1, grid.width - 1};

  // Count POIs per row and per column, then shrink a centred frame greedily
  // from whichever side loses the fewest POIs until just before the kept
  // fraction would drop below the target.
  std::vector<int64_t> row_count(grid.height, 0), col_count(grid.width, 0);
  for (const auto& poi : city.pois) {
    const int id = grid.RegionAt(poi.x, poi.y);
    ++row_count[grid.RowOf(id)];
    ++col_count[grid.ColOf(id)];
  }
  int r0 = 0, r1 = grid.height - 1, c0 = 0, c1 = grid.width - 1;
  int64_t kept = total;
  const int64_t min_keep =
      static_cast<int64_t>(fraction * static_cast<double>(total));
  while (true) {
    // Candidate trims and their POI cost.
    int64_t best_cost = -1;
    int which = -1;
    const int64_t costs[4] = {row_count[r0], row_count[r1], col_count[c0],
                              col_count[c1]};
    for (int k = 0; k < 4; ++k) {
      if ((k < 2 && r1 - r0 < 2) || (k >= 2 && c1 - c0 < 2)) continue;
      if (best_cost < 0 || costs[k] < best_cost) {
        best_cost = costs[k];
        which = k;
      }
    }
    if (which < 0 || kept - best_cost < min_keep) break;
    kept -= best_cost;
    if (which == 0) ++r0;
    else if (which == 1) --r1;
    else if (which == 2) ++c0;
    else --c1;
  }
  return {r0, c0, r1, c1};
}

}  // namespace uv::urg
