#include "urg/urban_region_graph.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <unordered_set>
#include <utility>

#include "features/image_encoder.h"
#include "features/poi_features.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace uv::urg {
namespace {

// Zeroes the ablated POI feature group (Fig. 5(b) data ablations); shared by
// the dense and sharded builders so both produce identical feature bytes.
void ApplyPoiAblation(FeatureAblation ablation, Tensor* poi) {
  switch (ablation) {
    case FeatureAblation::kNone:
    case FeatureAblation::kNoImage:
      break;
    case FeatureAblation::kNoCate:
      for (int r = 0; r < poi->rows(); ++r) {
        for (int c = features::PoiFeatureGroups::kCategoryBegin;
             c < features::PoiFeatureGroups::kCategoryEnd; ++c) {
          poi->at(r, c) = 0.0f;
        }
      }
      break;
    case FeatureAblation::kNoRad:
      for (int r = 0; r < poi->rows(); ++r) {
        for (int c = features::PoiFeatureGroups::kRadiusBegin;
             c < features::PoiFeatureGroups::kRadiusEnd; ++c) {
          poi->at(r, c) = 0.0f;
        }
      }
      break;
    case FeatureAblation::kNoIndex:
      for (int r = 0; r < poi->rows(); ++r) {
        poi->at(r, features::PoiFeatureGroups::kIndexBegin) = 0.0f;
      }
      break;
  }
}

int ResolveShardTarget(int requested) {
  if (requested > 0) return requested;
  if (const char* v = std::getenv("UV_SHARDS")) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return ThreadPool::Global().num_threads();
}

}  // namespace

void ShardedUrg::InNeighborsGlobal(int id, std::vector<int>* out) const {
  UV_CHECK_GE(id, 0);
  UV_CHECK_LT(id, num_regions());
  const UrgShard& shard = shards[spec.ShardOf(grid, id)];
  const int local = shard.OwnedLocal(grid, id);
  const auto& off = *shard.local.offsets();
  const auto& nbr = *shard.local.neighbors();
  const size_t first = out->size();
  for (int e = off[local]; e < off[local + 1]; ++e) {
    out->push_back(shard.GlobalOf(grid, nbr[e]));
  }
  // Segments are sorted by local index (owned first, halo after), which is
  // not global order; restore it so callers see the dense segment exactly.
  std::sort(out->begin() + static_cast<int64_t>(first), out->end());
}

std::vector<int> UrbanRegionGraph::LabeledIds() const {
  std::vector<int> ids;
  for (int i = 0; i < static_cast<int>(labels.size()); ++i) {
    if (labels[i] >= 0) ids.push_back(i);
  }
  return ids;
}

int UrbanRegionGraph::PoiDim() const {
  return features ? features->poi_dim() : poi_features.cols();
}

int UrbanRegionGraph::ImageDim() const {
  return features ? features->image_dim() : image_features.cols();
}

void UrbanRegionGraph::GatherPoiRows(const std::vector<int>& ids,
                                     Tensor* out) const {
  if (features) {
    features->GatherPoi(ids, out);
    return;
  }
  out->ResizeUninit(static_cast<int>(ids.size()), poi_features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    UV_CHECK_GE(ids[i], 0);
    UV_CHECK_LT(ids[i], poi_features.rows());
    std::memcpy(out->row(static_cast<int>(i)), poi_features.row(ids[i]),
                sizeof(float) * static_cast<size_t>(poi_features.cols()));
  }
}

void UrbanRegionGraph::GatherImageRows(const std::vector<int>& ids,
                                       Tensor* out) const {
  if (features) {
    features->GatherImage(ids, out);
    return;
  }
  out->ResizeUninit(static_cast<int>(ids.size()), image_features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    UV_CHECK_GE(ids[i], 0);
    UV_CHECK_LT(ids[i], image_features.rows());
    std::memcpy(out->row(static_cast<int>(i)), image_features.row(ids[i]),
                sizeof(float) * static_cast<size_t>(image_features.cols()));
  }
}

UrbanRegionGraph BuildUrg(const synth::City& city, const UrgOptions& options) {
  UrbanRegionGraph urg;
  urg.city_name = city.config.name;
  urg.grid = city.grid;
  urg.labels = city.labels;
  urg.is_uv = std::vector<uint8_t>(city.is_uv.begin(), city.is_uv.end());
  urg.images = city.images;
  urg.image_size = city.config.image_size;

  // --- Region relations (Section IV-A). ----------------------------------
  std::vector<graph::Edge> edges;
  if (options.use_spatial_edges) {
    auto spatial = graph::BuildSpatialProximityEdges(city.grid);
    urg.num_spatial_edges = static_cast<int64_t>(spatial.size());
    edges.insert(edges.end(), spatial.begin(), spatial.end());
  }
  if (options.use_road_edges) {
    auto road = city.roads.BuildRegionConnectivityEdges(city.grid,
                                                        options.road_max_hops);
    urg.num_road_edges = static_cast<int64_t>(road.size());
    edges.insert(edges.end(), road.begin(), road.end());
  }
  // Attention layers let a region attend to itself via a self loop.
  urg.adjacency = graph::CsrGraph::FromEdges(city.num_regions(), edges,
                                             /*symmetrize=*/false,
                                             /*add_self_loops=*/true);
  urg.num_edges = urg.adjacency.num_edges() - city.num_regions();

  // --- Region features (Section IV-B). -----------------------------------
  urg.poi_features = features::BuildPoiFeatures(city);
  ApplyPoiAblation(options.feature_ablation, &urg.poi_features);

  if (options.feature_ablation == FeatureAblation::kNoImage ||
      city.images == nullptr) {
    // Regions characterized by POI features only; keep a minimal zero block
    // so every model sees the same two-modality interface.
    urg.image_features = Tensor(city.num_regions(),
                                std::max(8, options.image_feature_dim / 8));
  } else {
    features::ConvEncoder::Options enc;
    enc.image_size = city.config.image_size;
    enc.out_dim = options.image_feature_dim;
    enc.seed = options.encoder_seed;
    features::ConvEncoder encoder(enc);
    urg.image_features = encoder.Encode(*city.images);
  }

  if (options.standardize_features) {
    StandardizeColumnsInPlace(&urg.poi_features);
    if (options.feature_ablation != FeatureAblation::kNoImage &&
        city.images != nullptr) {
      StandardizeColumnsInPlace(&urg.image_features);
    }
  }

  UV_LOG_INFO("URG %s: %d regions, %lld edges (%lld spatial, %lld road)",
              urg.city_name.c_str(), urg.num_regions(),
              static_cast<long long>(urg.num_edges),
              static_cast<long long>(urg.num_spatial_edges),
              static_cast<long long>(urg.num_road_edges));
  return urg;
}

UrbanRegionGraph BuildShardedUrg(std::shared_ptr<const synth::City> city,
                                 const UrgOptions& options,
                                 const ShardOptions& shard_options) {
  UV_CHECK(city != nullptr);
  const synth::City& c = *city;
  const graph::GridSpec& grid = c.grid;
  const int n = c.num_regions();

  UrbanRegionGraph urg;
  urg.city_name = c.config.name;
  urg.grid = grid;
  urg.labels = c.labels;
  urg.is_uv = std::vector<uint8_t>(c.is_uv.begin(), c.is_uv.end());
  urg.images = c.images;
  urg.image_size = c.config.image_size;

  auto sharded = std::make_shared<ShardedUrg>();
  sharded->grid = grid;
  sharded->spec =
      graph::MakeShardSpec(grid, ResolveShardTarget(shard_options.num_shards));
  const graph::ShardSpec& spec = sharded->spec;
  const int num_shards = spec.num_shards();
  sharded->shards.resize(num_shards);

  // Shared read-only inputs for the per-shard builders: which region (and
  // hence shard) each road intersection falls in.
  const int num_inter = c.roads.num_intersections();
  std::vector<int> region_of(num_inter);
  std::vector<std::vector<int>> inter_by_shard(num_shards);
  for (int i = 0; i < num_inter; ++i) {
    const auto& p = c.roads.intersection(i);
    region_of[i] = grid.RegionAt(p.x, p.y);
    inter_by_shard[spec.ShardOf(grid, region_of[i])].push_back(i);
  }

  // Shards build independently: each collects only the edges whose
  // destination it owns, so transient memory per worker is O(E/shards).
  ParallelFor(0, num_shards, 1, [&](int64_t begin, int64_t end) {
    for (int s = static_cast<int>(begin); s < static_cast<int>(end); ++s) {
      UrgShard& shard = sharded->shards[s];
      shard.shard_id = s;
      shard.bounds = spec.TileBounds(grid, s);
      const int r0 = shard.bounds[0], c0 = shard.bounds[1];
      const int r1 = shard.bounds[2], c1 = shard.bounds[3];
      shard.num_owned = (r1 - r0) * (c1 - c0);

      // (dst_local, src_global) pairs, self loops included.
      std::vector<std::pair<int, int>> edges;
      for (int row = r0; row < r1; ++row) {
        for (int col = c0; col < c1; ++col) {
          const int dst = grid.RegionId(row, col);
          const int dst_local = shard.OwnedLocal(grid, dst);
          edges.emplace_back(dst_local, dst);  // Self loop.
          if (options.use_spatial_edges) {
            for (int dr = -1; dr <= 1; ++dr) {
              for (int dc = -1; dc <= 1; ++dc) {
                if (dr == 0 && dc == 0) continue;
                if (!grid.InBounds(row + dr, col + dc)) continue;
                edges.emplace_back(dst_local,
                                   grid.RegionId(row + dr, col + dc));
                ++shard.num_spatial_edges;
              }
            }
          }
        }
      }

      if (options.use_road_edges && num_inter > 0) {
        // Region pairs with an owned endpoint: bounded BFS from every
        // intersection inside an owned region. Hop reachability on the
        // undirected road graph is symmetric, so every dense pair (a, b)
        // is discovered both by a's owner and by b's owner — the shard
        // union reproduces BuildRegionConnectivityEdges exactly.
        std::unordered_set<int64_t> pair_keys;
        std::vector<int> depth(num_inter, -1);
        std::vector<int> touched;
        std::deque<int> queue;
        for (const int start : inter_by_shard[s]) {
          const int ra = region_of[start];
          queue.clear();
          queue.push_back(start);
          depth[start] = 0;
          touched.push_back(start);
          while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            if (depth[u] == options.road_max_hops) continue;
            for (int v : c.roads.Neighbors(u)) {
              if (depth[v] != -1) continue;
              depth[v] = depth[u] + 1;
              touched.push_back(v);
              queue.push_back(v);
              const int rb = region_of[v];
              if (rb != ra) {
                const int lo = std::min(ra, rb);
                const int hi = std::max(ra, rb);
                pair_keys.insert(static_cast<int64_t>(lo) * n + hi);
              }
            }
          }
          for (int t : touched) depth[t] = -1;
          touched.clear();
        }
        for (const int64_t key : pair_keys) {
          const int lo = static_cast<int>(key / n);
          const int hi = static_cast<int>(key % n);
          if (spec.ShardOf(grid, lo) == s) {
            edges.emplace_back(shard.OwnedLocal(grid, lo), hi);
            ++shard.num_road_edges;
          }
          if (spec.ShardOf(grid, hi) == s) {
            edges.emplace_back(shard.OwnedLocal(grid, hi), lo);
            ++shard.num_road_edges;
          }
        }
      }

      // Halo table: sorted global ids of sources the shard does not own.
      std::vector<int> halo;
      for (const auto& e : edges) {
        if (spec.ShardOf(grid, e.second) != s) halo.push_back(e.second);
      }
      std::sort(halo.begin(), halo.end());
      halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
      shard.halo = std::move(halo);

      // Map sources to local indices, then assemble the dst-grouped CSR
      // (spatial and road relations can duplicate an edge; dedupe like the
      // dense FromEdges does).
      for (auto& e : edges) {
        if (spec.ShardOf(grid, e.second) == s) {
          e.second = shard.OwnedLocal(grid, e.second);
        } else {
          const auto it = std::lower_bound(shard.halo.begin(),
                                           shard.halo.end(), e.second);
          e.second = shard.num_owned +
                     static_cast<int>(it - shard.halo.begin());
        }
      }
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

      const int local_nodes =
          shard.num_owned + static_cast<int>(shard.halo.size());
      auto offsets = std::make_shared<std::vector<int>>(local_nodes + 1, 0);
      auto neighbors = std::make_shared<std::vector<int>>();
      neighbors->reserve(edges.size());
      for (const auto& e : edges) {
        ++(*offsets)[e.first + 1];
        neighbors->push_back(e.second);
      }
      for (int i = 0; i < local_nodes; ++i) {
        (*offsets)[i + 1] += (*offsets)[i];
      }
      shard.local = graph::CsrGraph::FromCsrArrays(local_nodes, offsets,
                                                   neighbors);
    }
  });

  // Global degrees (self loop included) for subgraph GCN normalization,
  // plus the Table I edge totals. Every directed edge is counted exactly
  // once, by its destination's owning shard.
  sharded->global_degree.assign(n, 0);
  int64_t union_edges = 0;
  for (const UrgShard& shard : sharded->shards) {
    urg.num_spatial_edges += shard.num_spatial_edges;
    urg.num_road_edges += shard.num_road_edges;
    union_edges += shard.local.num_edges();
    for (int local = 0; local < shard.num_owned; ++local) {
      sharded->global_degree[shard.GlobalOf(grid, local)] =
          shard.local.Degree(local);
    }
  }
  urg.num_edges = union_edges - n;
  urg.sharded = std::move(sharded);

  // --- Features: resident POIs, render-on-demand images. ------------------
  Tensor poi = features::BuildPoiFeatures(c);
  ApplyPoiAblation(options.feature_ablation, &poi);
  if (options.standardize_features) StandardizeColumnsInPlace(&poi);

  if (options.feature_ablation == FeatureAblation::kNoImage) {
    // POI-only ablation: a small resident zero block, like the dense path.
    urg.features = std::make_shared<ResidentFeatureStore>(
        std::move(poi),
        Tensor(n, std::max(8, options.image_feature_dim / 8)));
  } else {
    LazyFeatureStore::Options store = shard_options.feature_store;
    store.image_feature_dim = options.image_feature_dim;
    store.encoder_seed = options.encoder_seed;
    store.standardize = options.standardize_features;
    urg.features = std::make_shared<LazyFeatureStore>(city, std::move(poi),
                                                      store);
  }

  UV_LOG_INFO(
      "Sharded URG %s: %d regions, %d shards (%dx%d), %lld edges "
      "(%lld spatial, %lld road)",
      urg.city_name.c_str(), n, spec.num_shards(), spec.shards_y,
      spec.shards_x, static_cast<long long>(urg.num_edges),
      static_cast<long long>(urg.num_spatial_edges),
      static_cast<long long>(urg.num_road_edges));
  return urg;
}

std::array<int, 4> MainUrbanAreaBounds(const synth::City& city,
                                       double fraction) {
  UV_CHECK(fraction > 0.0 && fraction <= 1.0);
  const auto& grid = city.grid;
  const int64_t total = static_cast<int64_t>(city.pois.size());
  if (total == 0) return {0, 0, grid.height - 1, grid.width - 1};

  // Count POIs per row and per column, then shrink a centred frame greedily
  // from whichever side loses the fewest POIs until just before the kept
  // fraction would drop below the target.
  std::vector<int64_t> row_count(grid.height, 0), col_count(grid.width, 0);
  for (const auto& poi : city.pois) {
    const int id = grid.RegionAt(poi.x, poi.y);
    ++row_count[grid.RowOf(id)];
    ++col_count[grid.ColOf(id)];
  }
  int r0 = 0, r1 = grid.height - 1, c0 = 0, c1 = grid.width - 1;
  int64_t kept = total;
  const int64_t min_keep =
      static_cast<int64_t>(fraction * static_cast<double>(total));
  while (true) {
    // Candidate trims and their POI cost.
    int64_t best_cost = -1;
    int which = -1;
    const int64_t costs[4] = {row_count[r0], row_count[r1], col_count[c0],
                              col_count[c1]};
    for (int k = 0; k < 4; ++k) {
      if ((k < 2 && r1 - r0 < 2) || (k >= 2 && c1 - c0 < 2)) continue;
      if (best_cost < 0 || costs[k] < best_cost) {
        best_cost = costs[k];
        which = k;
      }
    }
    if (which < 0 || kept - best_cost < min_keep) break;
    kept -= best_cost;
    if (which == 0) ++r0;
    else if (which == 1) --r1;
    else if (which == 2) ++c0;
    else --c1;
  }
  return {r0, c0, r1, c1};
}

}  // namespace uv::urg
