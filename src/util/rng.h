#ifndef UV_UTIL_RNG_H_
#define UV_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace uv {

// Deterministic pseudo-random number generator (xoshiro256** seeded via
// splitmix64). All stochastic behaviour in the library flows through this
// class so that every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform draw over the full 64-bit range.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  // Standard normal via Box-Muller (cached second draw).
  double Gaussian();
  double Gaussian(double mean, double stddev);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Index drawn from unnormalized non-negative weights. Requires a positive
  // total weight.
  int Categorical(const std::vector<double>& weights);

  // Sample from a Dirichlet distribution with the given concentration
  // parameters (all > 0); result sums to 1.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  // Gamma(shape, 1) variate, shape > 0 (Marsaglia-Tsang).
  double Gamma(double shape);

  // Poisson variate with the given mean (Knuth for small, normal approx for
  // large means).
  int Poisson(double mean);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // Derives an independent child generator; used to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace uv

#endif  // UV_UTIL_RNG_H_
