#ifndef UV_UTIL_LOGGING_H_
#define UV_UTIL_LOGGING_H_

#include <cstdarg>

namespace uv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is emitted (default kInfo). Thread-compatible.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging to stderr with a level prefix.
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace uv

#define UV_LOG_DEBUG(...) ::uv::Logf(::uv::LogLevel::kDebug, __VA_ARGS__)
#define UV_LOG_INFO(...) ::uv::Logf(::uv::LogLevel::kInfo, __VA_ARGS__)
#define UV_LOG_WARN(...) ::uv::Logf(::uv::LogLevel::kWarning, __VA_ARGS__)
#define UV_LOG_ERROR(...) ::uv::Logf(::uv::LogLevel::kError, __VA_ARGS__)

#endif  // UV_UTIL_LOGGING_H_
