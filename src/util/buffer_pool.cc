#include "util/buffer_pool.h"

#include <atomic>
#include <array>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace uv {
namespace {

// Buckets are powers of two from 2^8 (256 B) to 2^30; larger requests go
// straight to the system allocator (they are far off the steady-state path
// and caching them would pin unbounded memory).
constexpr int kMinBucketBits = 8;
constexpr int kMaxBucketBits = 30;
constexpr int kNumBuckets = kMaxBucketBits - kMinBucketBits + 1;
// Per-thread cache depth per bucket; overflow spills to the global pool so
// producer/consumer thread patterns (allocate on one thread, free on
// another) cannot grow a thread's cache without bound.
constexpr size_t kTlsBucketCap = 8;

int BucketIndex(size_t bytes) {
  size_t cap = size_t{1} << kMinBucketBits;
  int idx = 0;
  while (cap < bytes) {
    cap <<= 1;
    ++idx;
  }
  return idx < kNumBuckets ? idx : -1;  // -1: unpooled jumbo allocation.
}

size_t BucketBytes(int idx) { return size_t{1} << (kMinBucketBits + idx); }

std::atomic<uint64_t> g_acquires{0};
std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_heap_allocs{0};
std::atomic<uint64_t> g_heap_bytes{0};
std::atomic<uint64_t> g_releases{0};
std::atomic<bool> g_enabled_override{false};
std::atomic<int> g_enabled_state{-1};  // -1 unset, 0 off, 1 on.

void* HeapAlloc(size_t bytes) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_heap_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return ::operator new(bytes);
}

struct GlobalPool {
  std::mutex mu;
  std::array<std::vector<void*>, kNumBuckets> free_lists;
};

// Leaky singleton: reachable at exit (so LeakSanitizer stays quiet) and
// never destroyed, which lets thread-local caches flush into it during any
// phase of thread or process teardown.
GlobalPool& Global() {
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

struct TlsCache;
// Trivially-destructible guards so Release stays safe even after this
// thread's cache object has been destroyed (thread_local teardown order is
// unspecified relative to other thread_local destructors, e.g. the kernel
// workspace tensors that release slabs from their destructors).
thread_local TlsCache* tls_cache = nullptr;
thread_local bool tls_cache_dead = false;

struct TlsCache {
  std::array<std::vector<void*>, kNumBuckets> free_lists;

  TlsCache() { tls_cache = this; }
  ~TlsCache() {
    Flush();
    tls_cache = nullptr;
    tls_cache_dead = true;
  }

  void Flush() {
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    for (int b = 0; b < kNumBuckets; ++b) {
      for (void* p : free_lists[b]) global.free_lists[b].push_back(p);
      free_lists[b].clear();
    }
  }
};

TlsCache* Cache() {
  if (tls_cache != nullptr) return tls_cache;
  if (tls_cache_dead) return nullptr;
  thread_local TlsCache storage;
  return tls_cache;
}

}  // namespace

bool BufferPool::Enabled() {
  int state = g_enabled_state.load(std::memory_order_acquire);
  if (state < 0) {
    const char* v = std::getenv("UV_POOL");
    state = (v != nullptr && v[0] == '0' && v[1] == '\0') ? 0 : 1;
    g_enabled_state.store(state, std::memory_order_release);
  }
  return state == 1;
}

void BufferPool::SetEnabled(bool enabled) {
  g_enabled_state.store(enabled ? 1 : 0, std::memory_order_release);
  if (!enabled) Trim();
}

size_t BufferPool::BucketCapacity(size_t bytes) {
  if (bytes == 0) return 0;
  const int idx = BucketIndex(bytes);
  return idx < 0 ? bytes : BucketBytes(idx);
}

void* BufferPool::Acquire(size_t bytes) {
  if (bytes == 0) return nullptr;
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  const int idx = BucketIndex(bytes);
  if (idx < 0) return HeapAlloc(bytes);
  const size_t cap = BucketBytes(idx);
  if (Enabled()) {
    if (TlsCache* cache = Cache()) {
      auto& list = cache->free_lists[idx];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return p;
      }
    }
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    auto& list = global.free_lists[idx];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      g_hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  return HeapAlloc(cap);
}

void BufferPool::Release(void* p, size_t bytes) {
  if (p == nullptr) return;
  g_releases.fetch_add(1, std::memory_order_relaxed);
  const int idx = BucketIndex(bytes);
  if (idx >= 0 && Enabled()) {
    if (TlsCache* cache = Cache()) {
      auto& list = cache->free_lists[idx];
      if (list.size() < kTlsBucketCap) {
        list.push_back(p);
        return;
      }
    }
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    global.free_lists[idx].push_back(p);
    return;
  }
  ::operator delete(p);
}

void BufferPool::Trim() {
  if (TlsCache* cache = Cache()) {
    for (auto& list : cache->free_lists) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
  }
  GlobalPool& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  for (auto& list : global.free_lists) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
}

MemStatsSnapshot BufferPool::Stats() {
  MemStatsSnapshot s;
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  s.heap_bytes = g_heap_bytes.load(std::memory_order_relaxed);
  s.releases = g_releases.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_heap_bytes.store(0, std::memory_order_relaxed);
  g_releases.store(0, std::memory_order_relaxed);
}

bool MemStatsRequested() {
  static const bool requested = [] {
    const char* v = std::getenv("UV_MEM_STATS");
    return v != nullptr && !(v[0] == '0' && v[1] == '\0');
  }();
  return requested;
}

}  // namespace uv
