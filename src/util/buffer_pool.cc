#include "util/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "obs/metrics.h"

namespace uv {
namespace {

// Buckets are powers of two from 2^8 (256 B) to 2^30; larger requests go
// straight to the system allocator (they are far off the steady-state path
// and caching them would pin unbounded memory).
constexpr int kMinBucketBits = 8;
constexpr int kMaxBucketBits = 30;
constexpr int kNumBuckets = kMaxBucketBits - kMinBucketBits + 1;
// Per-thread cache depth per bucket; overflow spills to the global pool so
// producer/consumer thread patterns (allocate on one thread, free on
// another) cannot grow a thread's cache without bound.
constexpr size_t kTlsBucketCap = 8;

int BucketIndex(size_t bytes) {
  size_t cap = size_t{1} << kMinBucketBits;
  int idx = 0;
  while (cap < bytes) {
    cap <<= 1;
    ++idx;
  }
  return idx < kNumBuckets ? idx : -1;  // -1: unpooled jumbo allocation.
}

size_t BucketBytes(int idx) { return size_t{1} << (kMinBucketBits + idx); }

std::atomic<int> g_enabled_state{-1};  // -1 unset, 0 off, 1 on.

// Allocation counters live in the shared metrics registry so UV_METRICS
// dumps and obs snapshots see them for free. References are resolved once
// (registry entries are never destroyed) and the leaky holder keeps them
// reachable from Release calls during thread/process teardown.
struct MemCounters {
  obs::Counter& acquires;
  obs::Counter& hits;
  obs::Counter& heap_allocs;
  obs::Counter& heap_bytes;
  obs::Counter& releases;
  obs::Counter& tls_spills;
  obs::Gauge& pool_bytes;       // Bucket-rounded bytes currently acquired.
  obs::Gauge& pool_bytes_peak;  // High-water mark since the last ResetPeak.
};

MemCounters& Counters() {
  auto& reg = obs::Registry::Global();
  static MemCounters* counters = new MemCounters{
      reg.GetCounter("mem.acquires"),    reg.GetCounter("mem.pool_hits"),
      reg.GetCounter("mem.heap_allocs"), reg.GetCounter("mem.heap_bytes"),
      reg.GetCounter("mem.releases"),    reg.GetCounter("mem.tls_spills"),
      reg.GetGauge("mem.pool_bytes"),    reg.GetGauge("mem.pool_bytes_peak")};
  return *counters;
}

// Outstanding (acquired-but-not-released) bucket-rounded bytes, and the
// high-water mark. The atomics here are authoritative — obs::ResetAll()
// zeroes the mirrored registry gauges, but the next update re-publishes
// the live value — so Stats() always reports the true footprint across
// per-repeat registry resets in the bench protocol.
std::atomic<int64_t> g_outstanding_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};

void TrackAcquireBytes(size_t bytes) {
  MemCounters& c = Counters();
  const int64_t now = g_outstanding_bytes.fetch_add(
                          static_cast<int64_t>(bytes),
                          std::memory_order_relaxed) +
                      static_cast<int64_t>(bytes);
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak && !g_peak_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  c.pool_bytes.Set(now);
  c.pool_bytes_peak.Set(std::max(now, peak));
}

void TrackReleaseBytes(size_t bytes) {
  const int64_t now = g_outstanding_bytes.fetch_sub(
                          static_cast<int64_t>(bytes),
                          std::memory_order_relaxed) -
                      static_cast<int64_t>(bytes);
  Counters().pool_bytes.Set(now);
}

void* HeapAlloc(size_t bytes) {
  MemCounters& c = Counters();
  c.heap_allocs.Inc();
  c.heap_bytes.Inc(bytes);
  return ::operator new(bytes);
}

struct GlobalPool {
  std::mutex mu;
  std::array<std::vector<void*>, kNumBuckets> free_lists;
};

// Leaky singleton: reachable at exit (so LeakSanitizer stays quiet) and
// never destroyed, which lets thread-local caches flush into it during any
// phase of thread or process teardown.
GlobalPool& Global() {
  static GlobalPool* pool = new GlobalPool;
  return *pool;
}

struct TlsCache;
// Trivially-destructible guards so Release stays safe even after this
// thread's cache object has been destroyed (thread_local teardown order is
// unspecified relative to other thread_local destructors, e.g. the kernel
// workspace tensors that release slabs from their destructors).
thread_local TlsCache* tls_cache = nullptr;
thread_local bool tls_cache_dead = false;

struct TlsCache {
  std::array<std::vector<void*>, kNumBuckets> free_lists;

  TlsCache() { tls_cache = this; }
  ~TlsCache() {
    Flush();
    tls_cache = nullptr;
    tls_cache_dead = true;
  }

  void Flush() {
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    for (int b = 0; b < kNumBuckets; ++b) {
      for (void* p : free_lists[b]) global.free_lists[b].push_back(p);
      free_lists[b].clear();
    }
  }
};

TlsCache* Cache() {
  if (tls_cache != nullptr) return tls_cache;
  if (tls_cache_dead) return nullptr;
  thread_local TlsCache storage;
  return tls_cache;
}

}  // namespace

bool BufferPool::Enabled() {
  int state = g_enabled_state.load(std::memory_order_acquire);
  if (state < 0) {
    const char* v = std::getenv("UV_POOL");
    state = (v != nullptr && v[0] == '0' && v[1] == '\0') ? 0 : 1;
    g_enabled_state.store(state, std::memory_order_release);
  }
  return state == 1;
}

void BufferPool::SetEnabled(bool enabled) {
  g_enabled_state.store(enabled ? 1 : 0, std::memory_order_release);
  if (!enabled) Trim();
}

size_t BufferPool::BucketCapacity(size_t bytes) {
  if (bytes == 0) return 0;
  const int idx = BucketIndex(bytes);
  return idx < 0 ? bytes : BucketBytes(idx);
}

void* BufferPool::Acquire(size_t bytes) {
  if (bytes == 0) return nullptr;
  Counters().acquires.Inc();
  const int idx = BucketIndex(bytes);
  if (idx < 0) {
    TrackAcquireBytes(bytes);
    return HeapAlloc(bytes);
  }
  const size_t cap = BucketBytes(idx);
  TrackAcquireBytes(cap);
  if (Enabled()) {
    if (TlsCache* cache = Cache()) {
      auto& list = cache->free_lists[idx];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        Counters().hits.Inc();
        return p;
      }
    }
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    auto& list = global.free_lists[idx];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      Counters().hits.Inc();
      return p;
    }
  }
  return HeapAlloc(cap);
}

void BufferPool::Release(void* p, size_t bytes) {
  if (p == nullptr) return;
  Counters().releases.Inc();
  const int idx = BucketIndex(bytes);
  TrackReleaseBytes(idx < 0 ? bytes : BucketBytes(idx));
  if (idx >= 0 && Enabled()) {
    if (TlsCache* cache = Cache()) {
      auto& list = cache->free_lists[idx];
      if (list.size() < kTlsBucketCap) {
        list.push_back(p);
        return;
      }
      Counters().tls_spills.Inc();
    }
    GlobalPool& global = Global();
    std::lock_guard<std::mutex> lock(global.mu);
    global.free_lists[idx].push_back(p);
    return;
  }
  ::operator delete(p);
}

void BufferPool::Trim() {
  if (TlsCache* cache = Cache()) {
    for (auto& list : cache->free_lists) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
  }
  GlobalPool& global = Global();
  std::lock_guard<std::mutex> lock(global.mu);
  for (auto& list : global.free_lists) {
    for (void* p : list) ::operator delete(p);
    list.clear();
  }
}

MemStatsSnapshot BufferPool::Stats() {
  MemCounters& c = Counters();
  MemStatsSnapshot s;
  s.acquires = c.acquires.Value();
  s.hits = c.hits.Value();
  s.heap_allocs = c.heap_allocs.Value();
  s.heap_bytes = c.heap_bytes.Value();
  s.releases = c.releases.Value();
  s.tls_spills = c.tls_spills.Value();
  s.pool_bytes =
      static_cast<uint64_t>(std::max<int64_t>(
          0, g_outstanding_bytes.load(std::memory_order_relaxed)));
  s.pool_bytes_peak = static_cast<uint64_t>(
      std::max<int64_t>(0, g_peak_bytes.load(std::memory_order_relaxed)));
  return s;
}

void BufferPool::ResetStats() {
  MemCounters& c = Counters();
  c.acquires.Reset();
  c.hits.Reset();
  c.heap_allocs.Reset();
  c.heap_bytes.Reset();
  c.releases.Reset();
  c.tls_spills.Reset();
  ResetPeak();
}

void BufferPool::ResetPeak() {
  // Restart the high-water mark from the current footprint, so a phase
  // measured after ResetPeak reports its own peak rather than history's.
  const int64_t now = g_outstanding_bytes.load(std::memory_order_relaxed);
  g_peak_bytes.store(now, std::memory_order_relaxed);
  MemCounters& c = Counters();
  c.pool_bytes.Set(now);
  c.pool_bytes_peak.Set(now);
}

bool MemStatsRequested() {
  static const bool requested = [] {
    const char* v = std::getenv("UV_MEM_STATS");
    return v != nullptr && !(v[0] == '0' && v[1] == '\0');
  }();
  return requested;
}

std::string FormatMemStats(const MemStatsSnapshot& s) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "[mem] pool %s: acquires=%llu hits=%llu (%.1f%%) heap_allocs=%llu "
      "heap_bytes=%.1fMB releases=%llu peak=%.1fMB",
      BufferPool::Enabled() ? "on" : "off",
      static_cast<unsigned long long>(s.acquires),
      static_cast<unsigned long long>(s.hits),
      s.acquires > 0
          ? 100.0 * static_cast<double>(s.hits) / static_cast<double>(s.acquires)
          : 0.0,
      static_cast<unsigned long long>(s.heap_allocs),
      static_cast<double>(s.heap_bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(s.releases),
      static_cast<double>(s.pool_bytes_peak) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace uv
