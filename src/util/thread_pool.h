#ifndef UV_UTIL_THREAD_POOL_H_
#define UV_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace uv {

// Non-owning reference to a callable, used instead of std::function on the
// parallel-kernel hot path: binding a capturing lambda to std::function
// heap-allocates its closure on almost every call, while a FunctionRef is
// two words on the stack. The referenced callable must outlive every call
// through the ref — RunChunks/ParallelFor only invoke it before returning,
// so passing a temporary lambda at the call site is safe.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(runtime/explicit)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

// Persistent worker pool behind every parallel kernel in the library.
//
// Determinism contract: work is split into chunks whose boundaries depend
// only on the problem size and the caller's grain — never on the thread
// count. Any worker may execute any chunk, so chunk bodies must write to
// disjoint data; reductions are done by the caller in chunk-index order.
// Under that discipline results are bit-identical for every UV_THREADS
// value (UV_THREADS=1 simply executes the same chunks in order on the
// calling thread).
class ThreadPool {
 public:
  // Spawns num_threads - 1 workers; the submitting thread is the Nth.
  explicit ThreadPool(int num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk) for every chunk in [0, num_chunks); blocks until all
  // chunks finish. The calling thread participates. Safe to call from
  // inside a running chunk (the nested call executes inline, so kernels
  // freely compose with fold-level parallelism without deadlock). The
  // first exception thrown by a chunk is rethrown on the calling thread
  // after the region drains.
  void RunChunks(int64_t num_chunks, FunctionRef<void(int64_t)> fn);

  // True while the current thread is executing a chunk (worker or caller).
  static bool InParallelRegion();

  // Process-wide pool, sized by UV_THREADS on first use (default:
  // std::thread::hardware_concurrency()).
  static ThreadPool& Global();

  // Re-sizes the global pool; used by the scaling benchmarks and the
  // determinism tests to compare thread counts inside one process.
  static void SetGlobalThreads(int num_threads);

  // UV_THREADS if set and positive, else hardware_concurrency (>= 1).
  static int NumThreadsFromEnv();

 private:
  void WorkerLoop();
  void RunChunksInline(int64_t num_chunks, FunctionRef<void(int64_t)> fn);

  std::vector<std::thread> workers_;

  // NowMicros() at region submission, read by workers to account how long
  // the region sat before each claim. 0 = profiling off (no accounting).
  std::atomic<uint64_t> submit_us_{0};

  std::mutex submit_mu_;  // Serializes concurrent external submitters.
  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a new region.
  std::condition_variable done_cv_;  // The submitter waits here for drain.
  bool shutdown_ = false;

  // State of the active parallel region, guarded by mu_ for publication;
  // chunk claiming itself uses next_chunk_ under mu_ (chunks are coarse
  // enough that the lock is not contended).
  int64_t num_chunks_ = 0;
  int64_t next_chunk_ = 0;
  int64_t claimed_chunks_ = 0;
  int64_t done_chunks_ = 0;
  const FunctionRef<void(int64_t)>* chunk_fn_ = nullptr;
  std::exception_ptr first_error_;
};

// Splits [begin, end) into ceil((end-begin)/grain) contiguous chunks and
// runs fn(chunk_begin, chunk_end) for each on the global pool. The chunk
// layout depends only on (begin, end, grain), so callers get the
// determinism contract above for free. grain must be >= 1. Ranges smaller
// than one grain run inline on the calling thread.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 FunctionRef<void(int64_t, int64_t)> fn);

}  // namespace uv

#endif  // UV_UTIL_THREAD_POOL_H_
