#ifndef UV_UTIL_CHECK_H_
#define UV_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. A failed check is a programming error inside
// this library (not a recoverable condition), so it prints the location and
// aborts. Recoverable conditions use uv::Status instead.

#define UV_CHECK(cond)                                                    \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "UV_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define UV_CHECK_OP(a, b, op)                                             \
  do {                                                                    \
    if (!((a)op(b))) {                                                    \
      std::fprintf(stderr,                                                \
                   "UV_CHECK failed at %s:%d: %s %s %s (%lld vs %lld)\n", \
                   __FILE__, __LINE__, #a, #op, #b,                       \
                   static_cast<long long>(a), static_cast<long long>(b)); \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define UV_CHECK_EQ(a, b) UV_CHECK_OP(a, b, ==)
#define UV_CHECK_NE(a, b) UV_CHECK_OP(a, b, !=)
#define UV_CHECK_LT(a, b) UV_CHECK_OP(a, b, <)
#define UV_CHECK_LE(a, b) UV_CHECK_OP(a, b, <=)
#define UV_CHECK_GT(a, b) UV_CHECK_OP(a, b, >)
#define UV_CHECK_GE(a, b) UV_CHECK_OP(a, b, >=)

#endif  // UV_UTIL_CHECK_H_
