#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace uv {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  UV_CHECK_GT(n, 0);
  return static_cast<int>(NextU64() % static_cast<uint64_t>(n));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    UV_CHECK(w >= 0.0);
    total += w;
  }
  UV_CHECK(total > 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

double Rng::Gamma(double shape) {
  UV_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw; fall back to uniform.
    for (auto& x : out) x = 1.0 / static_cast<double>(out.size());
    return out;
  }
  for (auto& x : out) x /= total;
  return out;
}

int Rng::Poisson(double mean) {
  UV_CHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = Uniform();
    int count = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation for large means.
  const int draw =
      static_cast<int>(std::lround(Gaussian(mean, std::sqrt(mean))));
  return draw < 0 ? 0 : draw;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace uv
