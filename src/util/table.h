#ifndef UV_UTIL_TABLE_H_
#define UV_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace uv {

// Fixed-width text table used by the benchmark harness to print paper-style
// result tables, with an optional CSV dump for post-processing.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the table with aligned columns and a header separator.
  std::string ToString() const;
  // Renders as comma-separated values (no escaping; cells must be simple).
  std::string ToCsv() const;

  // Convenience: prints ToString() to stdout.
  void Print() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals (e.g. 0.837).
std::string FormatDouble(double value, int decimals);

// Formats "mean (.std)" in the paper's Table II style, e.g. "0.837 (.001)".
std::string FormatMeanStd(double mean, double std);

}  // namespace uv

#endif  // UV_UTIL_TABLE_H_
